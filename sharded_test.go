package clsm

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

// TestShardOptionValidation: invalid shard counts and un-lowerable
// combinations must fail Open with a wrapped ErrInvalidOptions.
func TestShardOptionValidation(t *testing.T) {
	for _, n := range []int{0, -1, -100} {
		if _, err := OpenPath("", WithShards(n)); !errors.Is(err, ErrInvalidOptions) {
			t.Errorf("WithShards(%d): err = %v, want ErrInvalidOptions", n, err)
		}
	}
	if _, err := Open(Options{Shards: MaxShards + 1}); !errors.Is(err, ErrInvalidOptions) {
		t.Errorf("Shards over MaxShards: err = %v, want ErrInvalidOptions", err)
	}
	if _, err := Open(Options{Shards: 2, LinearizableSnapshots: true}); !errors.Is(err, ErrInvalidOptions) {
		t.Errorf("Shards+LinearizableSnapshots: err = %v, want ErrInvalidOptions", err)
	}
	// One shard plus linearizable snapshots is fine (single oracle).
	db, err := Open(Options{Shards: 1, LinearizableSnapshots: true})
	if err != nil {
		t.Fatalf("Shards=1 + LinearizableSnapshots: %v", err)
	}
	db.Close()
	// The struct zero value stays unsharded.
	db, err = Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if got := db.NumShards(); got != 1 {
		t.Errorf("unsharded NumShards = %d, want 1", got)
	}
}

// TestShardedRoundTrip opens a sharded store on disk, writes through
// the public API, and verifies reopen recovers everything — and that
// every shard-count mismatch on reopen is rejected instead of
// misrouting reads.
func TestShardedRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenSharded(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := db.NumShards(); got != 4 {
		t.Fatalf("NumShards = %d, want 4", got)
	}
	const n = 400
	for i := 0; i < n; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%04d", i)), []byte(fmt.Sprintf("v%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// A batch and a delete, to round-trip more than the Put path.
	var b Batch
	b.Put([]byte("batch-a"), []byte("1"))
	b.Put([]byte("batch-b"), []byte("2"))
	if err := db.Write(&b); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete([]byte("k0007")); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("second Close = %v, want ErrClosed", err)
	}

	// Wrong shard count, and unsharded: both rejected.
	if _, err := OpenSharded(dir, 8); !errors.Is(err, ErrInvalidOptions) {
		t.Fatalf("reopen with 8 shards: err = %v, want ErrInvalidOptions", err)
	}
	if _, err := OpenPath(dir); !errors.Is(err, ErrInvalidOptions) {
		t.Fatalf("unsharded reopen of sharded dir: err = %v, want ErrInvalidOptions", err)
	}

	db, err = OpenSharded(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("k%04d", i)
		v, ok, err := db.Get([]byte(k))
		if err != nil {
			t.Fatal(err)
		}
		if k == "k0007" {
			if ok {
				t.Fatalf("deleted key %q resurrected after reopen", k)
			}
			continue
		}
		if !ok || string(v) != fmt.Sprintf("v%04d", i) {
			t.Fatalf("after reopen Get(%q) = %q %v", k, v, ok)
		}
	}
	for _, k := range []string{"batch-a", "batch-b"} {
		if ok, _ := db.Has([]byte(k)); !ok {
			t.Fatalf("batch key %q lost across reopen", k)
		}
	}
}

// TestShardedRejectsUnshardedDir: sharding over an existing unsharded
// store must be refused (the old data would vanish behind empty
// shard directories).
func TestShardedRejectsUnshardedDir(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSharded(dir, 4); !errors.Is(err, ErrInvalidOptions) {
		t.Fatalf("sharded open of unsharded dir: err = %v, want ErrInvalidOptions", err)
	}
}

// TestShardedFacadeSurface drives the remaining public methods through
// a sharded in-memory store: snapshots, iterators, MultiGet, RMW,
// metrics, health, budgets, observers.
func TestShardedFacadeSurface(t *testing.T) {
	db, err := OpenPath("", WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	var ks [][]byte
	for i := 0; i < 200; i++ {
		k := []byte(fmt.Sprintf("k%04d", i))
		ks = append(ks, k)
		if err := db.Put(k, []byte("v1")); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := db.GetSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	for i := 0; i < 200; i++ {
		if err := db.Put(ks[i], []byte("v2")); err != nil {
			t.Fatal(err)
		}
	}
	if v, ok, _ := snap.Get(ks[0]); !ok || string(v) != "v1" {
		t.Fatalf("snapshot Get = %q %v, want v1", v, ok)
	}
	vals, err := snap.MultiGet(ks)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if !v.Exists || string(v.Data) != "v1" {
			t.Fatalf("snapshot MultiGet[%d] = %q %v", i, v.Data, v.Exists)
		}
	}
	if snap.TS() == 0 {
		t.Error("snapshot TS = 0")
	}

	it, err := db.NewIterator(IterOptions{LowerBound: []byte("k0010"), UpperBound: []byte("k0020")})
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	var prev []byte
	for it.First(); it.Valid(); it.Next() {
		if prev != nil && bytes.Compare(it.Key(), prev) <= 0 {
			t.Fatalf("merged iterator out of order: %q after %q", it.Key(), prev)
		}
		prev = append(prev[:0], it.Key()...)
		if string(it.Value()) != "v2" {
			t.Fatalf("live iterator sees %q", it.Value())
		}
		count++
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	it.Close()
	if count != 10 {
		t.Fatalf("bounded iterator saw %d keys, want 10", count)
	}

	if err := db.RMW(ks[3], func(old []byte, exists bool) []byte {
		return append(append([]byte(nil), old...), '+')
	}); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := db.Get(ks[3]); string(v) != "v2+" {
		t.Fatalf("RMW result %q", v)
	}

	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if m := db.Metrics(); m.Puts < 400 || m.Flushes == 0 {
		t.Errorf("aggregate metrics look wrong: %+v", m)
	}
	if st := db.Health(); st.State != Healthy {
		t.Errorf("health = %v", st.State)
	}
	if got := len(db.MemtableBudgets()); got != 4 {
		t.Errorf("MemtableBudgets len = %d, want 4", got)
	}
	if got := len(db.ShardObservers()); got != 4 {
		t.Errorf("ShardObservers len = %d, want 4", got)
	}
	if db.Observer().WALAppends.Load() == 0 {
		t.Error("aggregate observer shows no WAL appends")
	}
}
