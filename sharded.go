package clsm

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"clsm/internal/cache"
	"clsm/internal/core"
	"clsm/internal/obs"
	"clsm/internal/shard"
	"clsm/internal/storage"
	"clsm/internal/version"
)

// MaxShards bounds Options.Shards. The limit is a sanity rail: each
// shard is a full engine (WAL, scheduler goroutines, level hierarchy),
// so counts past this point cost memory and file descriptors without
// buying contention relief.
const MaxShards = 256

// shardMarkerFile records the shard count in the root directory of a
// sharded store. Routing (key → shard) depends on the count, so it is
// part of the on-disk layout: Open verifies the marker on every reopen
// and rejects mismatches instead of silently misrouting reads.
const shardMarkerFile = "CLSM_SHARDS"

// OpenSharded creates or opens the store at path hash-partitioned
// across shards independent engines:
//
//	db, err := clsm.OpenSharded("/srv/db", 4,
//		clsm.WithMemtableSize(32<<20))
//
// It is OpenPath plus WithShards(shards); see Options.Shards and
// docs/SHARDING.md. An empty path opens a volatile in-memory store.
func OpenSharded(path string, shards int, options ...Option) (*DB, error) {
	return OpenPath(path, append([]Option{WithShards(shards)}, options...)...)
}

// openSharded lowers the public Options onto per-shard engine options
// (one FS root, one namespaced block-cache view, and one observer per
// shard) and a governor budget, then opens the shard facade.
func openSharded(o Options) (*DB, error) {
	n := o.Shards
	if n < 1 {
		return nil, fmt.Errorf("%w: WithShards requires at least 1 shard", ErrInvalidOptions)
	}
	if n > MaxShards {
		return nil, fmt.Errorf("%w: %d shards exceeds MaxShards (%d)", ErrInvalidOptions, n, MaxShards)
	}
	if n > 1 && o.LinearizableSnapshots {
		return nil, fmt.Errorf("%w: LinearizableSnapshots requires a single shard (shard oracles are independent; there is no cross-shard timestamp)", ErrInvalidOptions)
	}
	if o.Path != "" {
		if err := checkShardMarker(o.Path, n); err != nil {
			return nil, err
		}
	}

	// Resolve the two budget knobs locally (the engine applies the same
	// defaults) so the governor's fixed total is known.
	mem := o.MemtableSize
	if mem <= 0 {
		mem = 4 << 20
	}
	cacheSize := o.BlockCacheSize
	if cacheSize <= 0 {
		cacheSize = 32 << 20
	}
	pool := cache.New(cacheSize)

	sopts := shard.Options{}
	if n > 1 {
		// One fixed byte budget for the whole store: every shard's
		// memtable quota plus the shared cache. The governor shifts
		// bytes inside it; it never grows the total.
		sopts.Governor = shard.GovernorConfig{
			TotalBytes: int64(n)*mem + cacheSize,
			Cache:      pool,
		}
	}
	for i := 0; i < n; i++ {
		var fs storage.FS
		if o.Path == "" {
			fs = storage.NewMemFS()
		} else {
			osfs, err := storage.NewOSFS(filepath.Join(o.Path, shardDir(i)))
			if err != nil {
				return nil, err
			}
			fs = osfs
		}
		observer := obs.New()
		observer.Trace.SetShard(i)
		if o.EventSink != nil {
			observer.Trace.SetSink(o.EventSink)
		}
		eng := o.engineOptions(fs, observer)
		eng.BlockCache = pool.View(i)
		sopts.Engines = append(sopts.Engines, eng)
	}
	sh, err := shard.Open(sopts)
	if err != nil {
		return nil, err
	}
	return &DB{sh: sh}, nil
}

func shardDir(i int) string { return fmt.Sprintf("shard-%03d", i) }

// checkShardMarker verifies (or, for a fresh directory, records) the
// shard count at path. It also refuses to shard over an existing
// unsharded store, whose data would silently disappear behind empty
// shard directories.
func checkShardMarker(path string, n int) error {
	marker := filepath.Join(path, shardMarkerFile)
	b, err := os.ReadFile(marker)
	switch {
	case err == nil:
		prev, perr := strconv.Atoi(strings.TrimSpace(string(b)))
		if perr != nil {
			return fmt.Errorf("%w: corrupt shard marker %s: %q", ErrInvalidOptions, marker, b)
		}
		if prev != n {
			return fmt.Errorf("%w: store at %s has %d shards, opened with %d (the shard count is part of the on-disk layout and cannot change on reopen)", ErrInvalidOptions, path, prev, n)
		}
		return nil
	case !os.IsNotExist(err):
		return err
	}
	if _, serr := os.Stat(filepath.Join(path, version.CurrentFileName)); serr == nil {
		return fmt.Errorf("%w: store at %s exists unsharded; it cannot be reopened with %d shards", ErrInvalidOptions, path, n)
	}
	if err := os.MkdirAll(path, 0o755); err != nil {
		return err
	}
	return os.WriteFile(marker, []byte(strconv.Itoa(n)+"\n"), 0o644)
}

// rejectShardedLayout guards the unsharded open path: a directory
// carrying a shard marker must be opened with the matching WithShards.
func rejectShardedLayout(path string) error {
	if path == "" {
		return nil
	}
	b, err := os.ReadFile(filepath.Join(path, shardMarkerFile))
	if err != nil {
		return nil // no marker (or unreadable): not a sharded store
	}
	return fmt.Errorf("%w: store at %s is sharded (%s shards); open it with WithShards", ErrInvalidOptions, path, strings.TrimSpace(string(b)))
}

// NumShards reports the shard count: 1 for an unsharded store.
func (db *DB) NumShards() int {
	if db.sh != nil {
		return db.sh.NumShards()
	}
	return 1
}

// ShardObservers returns the per-shard observability substrates of a
// sharded store, indexed by shard (their events carry matching shard
// labels). On an unsharded store it returns nil; DB.Observer is the
// aggregate view either way.
func (db *DB) ShardObservers() []*Observer {
	if db.sh != nil {
		return db.sh.Observers()
	}
	return nil
}

// MemtableBudgets returns each shard's current memtable quota in bytes.
// On a sharded store the memory governor moves these between shards at
// runtime (docs/SHARDING.md); unsharded stores report the single
// engine's budget.
func (db *DB) MemtableBudgets() []int64 {
	if db.sh != nil {
		return db.sh.MemtableBudgets()
	}
	return []int64{db.inner.MemtableBudget()}
}

// Snapshot is a consistent read-only view of the store; see
// DB.GetSnapshot. On a sharded store it holds one pinned view per
// shard: each shard's view is individually consistent, and since every
// key lives on exactly one shard, point reads and scans behave exactly
// like the unsharded snapshot.
type Snapshot struct {
	c *core.Snapshot
	s *shard.Snapshot
}

// TS returns the snapshot's timestamp (on a sharded store, the largest
// per-shard timestamp — an advisory progress number).
func (s *Snapshot) TS() uint64 {
	if s.s != nil {
		return s.s.TS()
	}
	return s.c.TS()
}

// Get returns the value of key as of the snapshot.
func (s *Snapshot) Get(key []byte) (value []byte, ok bool, err error) {
	if s.s != nil {
		return s.s.Get(key)
	}
	return s.c.Get(key)
}

// Has reports whether key is present as of the snapshot.
func (s *Snapshot) Has(key []byte) (bool, error) {
	if s.s != nil {
		return s.s.Has(key)
	}
	return s.c.Has(key)
}

// MultiGet reads every key as of the snapshot; results[i] corresponds
// to keys[i].
func (s *Snapshot) MultiGet(keys [][]byte) ([]Value, error) {
	if s.s != nil {
		return s.s.MultiGet(keys)
	}
	return s.c.MultiGet(keys)
}

// NewIterator returns an iterator over the snapshot, optionally bounded
// to a user-key range (see DB.NewIterator).
func (s *Snapshot) NewIterator(opts ...IterOptions) (*Iterator, error) {
	if s.s != nil {
		it, err := s.s.NewIterator(opts...)
		if err != nil {
			return nil, err
		}
		return &Iterator{s: it}, nil
	}
	it, err := s.c.NewIterator(opts...)
	if err != nil {
		return nil, err
	}
	return &Iterator{c: it}, nil
}

// Close releases the snapshot. Close it promptly: live snapshots pin
// old versions, blocking their garbage collection during merges.
func (s *Snapshot) Close() {
	if s.s != nil {
		s.s.Close()
		return
	}
	s.c.Close()
}

// Iterator walks user keys in ascending order; see DB.NewIterator. On a
// sharded store it k-way-merges the per-shard iterators — same
// contract, same snapshot semantics.
type Iterator struct {
	c *core.Iterator
	s *shard.Iterator
}

// First positions at the smallest key in range.
func (it *Iterator) First() {
	if it.s != nil {
		it.s.First()
		return
	}
	it.c.First()
}

// Last positions at the largest key in range.
func (it *Iterator) Last() {
	if it.s != nil {
		it.s.Last()
		return
	}
	it.c.Last()
}

// Seek positions at the first key >= key.
func (it *Iterator) Seek(key []byte) {
	if it.s != nil {
		it.s.Seek(key)
		return
	}
	it.c.Seek(key)
}

// SeekForPrev positions at the last key <= key.
func (it *Iterator) SeekForPrev(key []byte) {
	if it.s != nil {
		it.s.SeekForPrev(key)
		return
	}
	it.c.SeekForPrev(key)
}

// Next advances to the next larger key.
func (it *Iterator) Next() {
	if it.s != nil {
		it.s.Next()
		return
	}
	it.c.Next()
}

// Prev steps back to the next smaller key.
func (it *Iterator) Prev() {
	if it.s != nil {
		it.s.Prev()
		return
	}
	it.c.Prev()
}

// Valid reports whether the iterator is positioned at a key.
func (it *Iterator) Valid() bool {
	if it.s != nil {
		return it.s.Valid()
	}
	return it.c.Valid()
}

// Key returns the current key (valid until the next positioning call).
func (it *Iterator) Key() []byte {
	if it.s != nil {
		return it.s.Key()
	}
	return it.c.Key()
}

// Value returns the current value (valid until the next positioning
// call).
func (it *Iterator) Value() []byte {
	if it.s != nil {
		return it.s.Value()
	}
	return it.c.Value()
}

// Err returns the first error the iterator encountered, if any.
func (it *Iterator) Err() error {
	if it.s != nil {
		return it.s.Err()
	}
	return it.c.Err()
}

// Close releases the iterator (and its implicit snapshot, for iterators
// from DB.NewIterator).
func (it *Iterator) Close() {
	if it.s != nil {
		it.s.Close()
		return
	}
	it.c.Close()
}

// Range collects up to limit key/value pairs in [start, end)
// (limit <= 0 = unbounded).
func (it *Iterator) Range(start, end []byte, limit int) (ks, vs [][]byte, err error) {
	if it.s != nil {
		return it.s.Range(start, end, limit)
	}
	return it.c.Range(start, end, limit)
}
