package clsm

import (
	"clsm/internal/core"
	"clsm/internal/health"
)

// HealthState is the store's background-fault state. A store is Healthy
// until a background flush or compaction fails; the error's class then
// decides where the state machine goes:
//
//   - transient errors (disk full, injected I/O faults, timeouts) make the
//     store Degraded: the failed merge is retried with capped exponential
//     backoff, writes keep landing in the memtable until the in-memory
//     budget is exhausted, then stall for a bounded period, then fail with
//     ErrDegraded. A successful retry auto-resumes the store to Healthy.
//   - corruption (torn WAL record, bad table block, corrupt manifest edit)
//     makes the store ReadOnly: reads, snapshots, and iterators keep
//     serving the installed version; writes fail with ErrReadOnly until
//     DB.Resume.
//   - anything unclassifiable makes the store Failed, which is sticky.
//
// See docs/FAULT_TOLERANCE.md for the full policy.
type HealthState = health.State

// Health states, in escalating severity order.
const (
	Healthy  = health.Healthy
	Degraded = health.Degraded
	ReadOnly = health.ReadOnly
	Failed   = health.Failed
)

// HealthStatus is a point-in-time view of the store's health: the state
// and the background error that caused it (nil when Healthy).
type HealthStatus = core.HealthStatus

// HealthChange describes one health state transition, delivered to the
// WithHealthChange callback in commit order.
type HealthChange = health.Transition

// Health reports the store's current background-fault state. On a
// sharded store this is the worst shard's state (states are ordered by
// severity) with that shard's error; ShardObservers exposes the
// per-shard detail.
func (db *DB) Health() HealthStatus {
	if db.sh != nil {
		return db.sh.Health()
	}
	return db.inner.Health()
}

// Resume manually returns a Degraded or ReadOnly store to Healthy — call
// it after freeing disk space, or after offline repair of a corrupted
// store whose risk you accept. Resuming a Healthy store is a no-op; a
// Failed store is sticky and Resume returns its fatal cause.
func (db *DB) Resume() error {
	if db.sh != nil {
		return db.sh.Resume()
	}
	return db.inner.Resume()
}
