package clsm

import (
	"reflect"
	"testing"
	"time"

	"clsm/internal/obs"
	"clsm/internal/storage"
)

// TestOpenPathEquivalence asserts the acceptance criterion that the struct
// form and the functional-option form produce the identical engine
// configuration: both lower through Options.engineOptions, and a struct
// built field-by-field must equal one built by the With* options.
func TestOpenPathEquivalence(t *testing.T) {
	structOpts := Options{
		Path:                  "x",
		MemtableSize:          8 << 20,
		BlockCacheSize:        16 << 20,
		SyncWrites:            true,
		DisableWAL:            false,
		LinearizableSnapshots: true,
		CompactionThreads:     3,
		SnapshotTTL:           2 * time.Minute,
		Compression:           true,
		L0CompactionTrigger:   6,
		L0SlowdownTrigger:     10,
		L0StopTrigger:         14,
	}

	fnOpts := Options{Path: "x"}
	for _, apply := range []Option{
		WithMemtableSize(8 << 20),
		WithBlockCacheSize(16 << 20),
		WithSyncWrites(true),
		WithDisableWAL(false),
		WithLinearizableSnapshots(true),
		WithCompactionThreads(3),
		WithSnapshotTTL(2 * time.Minute),
		WithCompression(true),
		WithL0Triggers(6, 10, 14),
	} {
		apply(&fnOpts)
	}

	fs := storage.NewMemFS()
	o := obs.New()
	got := fnOpts.engineOptions(fs, o)
	want := structOpts.engineOptions(fs, o)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("engine options diverge:\n got %+v\nwant %+v", got, want)
	}
}

// TestWithObserverLowering checks the sink option lands in Options.EventSink
// (function values are not comparable, so it is excluded from the
// DeepEqual test above).
func TestWithObserverLowering(t *testing.T) {
	var opts Options
	called := 0
	WithObserver(func(Event) { called++ })(&opts)
	if opts.EventSink == nil {
		t.Fatal("WithObserver did not set EventSink")
	}
	opts.EventSink(Event{})
	if called != 1 {
		t.Fatal("installed sink is not the one provided")
	}
}

// TestEngineOptionDefaults pins the documented defaults: the zero Options
// must lower onto a core config whose WithDefaults resolution matches the
// table in the Options doc comment.
func TestEngineOptionDefaults(t *testing.T) {
	eng := Options{}.engineOptions(storage.NewMemFS(), obs.New()).WithDefaults()
	if eng.MemtableSize != 4<<20 {
		t.Errorf("MemtableSize default = %d, want 4 MiB", eng.MemtableSize)
	}
	if eng.BlockCacheSize != 32<<20 {
		t.Errorf("BlockCacheSize default = %d, want 32 MiB", eng.BlockCacheSize)
	}
	if eng.CompactionThreads != 1 {
		t.Errorf("CompactionThreads default = %d, want 1", eng.CompactionThreads)
	}
	if eng.L0SlowdownTrigger != 8 || eng.L0StopTrigger != 12 {
		t.Errorf("L0 triggers = %d/%d, want 8/12", eng.L0SlowdownTrigger, eng.L0StopTrigger)
	}
	disk := eng.Disk.WithDefaults()
	if disk.L0CompactionTrigger != 4 {
		t.Errorf("L0CompactionTrigger default = %d, want 4", disk.L0CompactionTrigger)
	}
	if disk.BloomBitsPerKey != 0 {
		t.Errorf("BloomBitsPerKey default = %d, want 0 (disabled)", disk.BloomBitsPerKey)
	}
}
