package clsm

import (
	"reflect"
	"testing"
	"time"

	"clsm/internal/obs"
	"clsm/internal/storage"
)

// TestOpenPathEquivalence asserts the acceptance criterion that the struct
// form and the functional-option form produce the identical engine
// configuration: both lower through Options.engineOptions, and a struct
// built field-by-field must equal one built by the With* options.
func TestOpenPathEquivalence(t *testing.T) {
	structOpts := Options{
		Path:                  "x",
		MemtableSize:          8 << 20,
		BlockCacheSize:        16 << 20,
		SyncWrites:            true,
		DisableWAL:            false,
		LinearizableSnapshots: true,
		CompactionThreads:     3,
		SnapshotTTL:           2 * time.Minute,
		Compression:           true,
		WriteRateLimit:        4 << 20,
		SchedulerProfile:      "latency",
		L0CompactionTrigger:   6,
		L0SlowdownTrigger:     10,
		L0StopTrigger:         14,
		ValueThreshold:        1024,
		ValueLogSegmentSize:   32 << 20,
		ValueLogGCRatio:       0.4,
	}

	fnOpts := Options{Path: "x"}
	for _, apply := range []Option{
		WithMemtableSize(8 << 20),
		WithBlockCacheSize(16 << 20),
		WithSyncWrites(true),
		WithDisableWAL(false),
		WithLinearizableSnapshots(true),
		WithCompactionThreads(3),
		WithSnapshotTTL(2 * time.Minute),
		WithCompression(true),
		WithWriteRateLimit(4 << 20),
		WithSchedulerProfile("latency"),
		WithL0Triggers(6, 10, 14),
		WithValueThreshold(1024),
		WithValueLogSegmentSize(32 << 20),
		WithValueLogGCRatio(0.4),
	} {
		apply(&fnOpts)
	}

	fs := storage.NewMemFS()
	o := obs.New()
	got := fnOpts.engineOptions(fs, o)
	want := structOpts.engineOptions(fs, o)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("engine options diverge:\n got %+v\nwant %+v", got, want)
	}
}

// TestWithObserverLowering checks the sink option lands in Options.EventSink
// (function values are not comparable, so it is excluded from the
// DeepEqual test above).
func TestWithObserverLowering(t *testing.T) {
	var opts Options
	called := 0
	WithObserver(func(Event) { called++ })(&opts)
	if opts.EventSink == nil {
		t.Fatal("WithObserver did not set EventSink")
	}
	opts.EventSink(Event{})
	if called != 1 {
		t.Fatal("installed sink is not the one provided")
	}
}

// TestEngineOptionDefaults pins the documented defaults: the zero Options
// must lower onto a core config whose WithDefaults resolution matches the
// table in the Options doc comment.
func TestEngineOptionDefaults(t *testing.T) {
	eng := Options{}.engineOptions(storage.NewMemFS(), obs.New()).WithDefaults()
	if eng.MemtableSize != 4<<20 {
		t.Errorf("MemtableSize default = %d, want 4 MiB", eng.MemtableSize)
	}
	if eng.BlockCacheSize != 32<<20 {
		t.Errorf("BlockCacheSize default = %d, want 32 MiB", eng.BlockCacheSize)
	}
	if eng.CompactionThreads != 1 {
		t.Errorf("CompactionThreads default = %d, want 1", eng.CompactionThreads)
	}
	if eng.L0SlowdownTrigger != 8 || eng.L0StopTrigger != 12 {
		t.Errorf("L0 triggers = %d/%d, want 8/12", eng.L0SlowdownTrigger, eng.L0StopTrigger)
	}
	disk := eng.Disk.WithDefaults()
	if disk.L0CompactionTrigger != 4 {
		t.Errorf("L0CompactionTrigger default = %d, want 4", disk.L0CompactionTrigger)
	}
	if disk.BloomBitsPerKey != 0 {
		t.Errorf("BloomBitsPerKey default = %d, want 0 (disabled)", disk.BloomBitsPerKey)
	}
}

// TestOptionRoundTrip applies every With* constructor to a zero Options and
// asserts, by reflection, that it sets exactly its declared field(s) and
// leaves every other field at the zero value — the guard against an option
// silently clobbering an unrelated knob.
func TestOptionRoundTrip(t *testing.T) {
	cases := []struct {
		name   string
		opt    Option
		fields []string // fields the option must set, and nothing else
	}{
		{"WithMemtableSize", WithMemtableSize(1), []string{"MemtableSize"}},
		{"WithBlockCacheSize", WithBlockCacheSize(1), []string{"BlockCacheSize"}},
		{"WithSyncWrites", WithSyncWrites(true), []string{"SyncWrites"}},
		{"WithDisableWAL", WithDisableWAL(true), []string{"DisableWAL"}},
		{"WithCompression", WithCompression(true), []string{"Compression"}},
		{"WithCompactionThreads", WithCompactionThreads(2), []string{"CompactionThreads"}},
		{"WithSnapshotTTL", WithSnapshotTTL(time.Second), []string{"SnapshotTTL"}},
		{"WithLinearizableSnapshots", WithLinearizableSnapshots(true), []string{"LinearizableSnapshots"}},
		{"WithWriteRateLimit", WithWriteRateLimit(1), []string{"WriteRateLimit"}},
		{"WithSchedulerProfile", WithSchedulerProfile("latency"), []string{"SchedulerProfile"}},
		{"WithL0Triggers", WithL0Triggers(1, 2, 3),
			[]string{"L0CompactionTrigger", "L0SlowdownTrigger", "L0StopTrigger"}},
		{"WithObserver", WithObserver(func(Event) {}), []string{"EventSink"}},
		{"WithHealthChange", WithHealthChange(func(HealthChange) {}), []string{"OnHealthChange"}},
	}
	for _, tc := range cases {
		var opts Options
		tc.opt(&opts)
		want := make(map[string]bool, len(tc.fields))
		for _, f := range tc.fields {
			want[f] = true
		}
		v := reflect.ValueOf(opts)
		ty := v.Type()
		for i := 0; i < ty.NumField(); i++ {
			set := !v.Field(i).IsZero()
			if set != want[ty.Field(i).Name] {
				t.Errorf("%s: field %s set=%v, want %v",
					tc.name, ty.Field(i).Name, set, want[ty.Field(i).Name])
			}
		}
	}
}
