package clsm

import (
	"clsm/internal/backup"
	"clsm/internal/core"
)

// Exported errors. The API is deliberately free of an ErrKeyNotFound
// sentinel: reads are tri-state. Get and Has report absence through their
// ok boolean with a nil error — an absent or deleted key is a normal
// outcome, not an error — and err is reserved for real failures (store
// closed, snapshot expired, I/O or corruption). The same contract holds
// across all three read surfaces: DB, Snapshot, and Iterator (where
// absence is Valid() == false).
//
// Errors returned by the store may wrap these sentinels with context
// (e.g. "snapshot read: ..."), so compare with errors.Is, not ==:
//
//	if errors.Is(err, clsm.ErrSnapshotExpired) { ... }
var (
	// ErrClosed is returned by operations on a closed store or on a
	// snapshot/iterator handle that was closed by the application.
	ErrClosed = core.ErrClosed

	// ErrSnapshotExpired is returned by reads on a snapshot handle
	// reclaimed by the TTL sweeper (Options.SnapshotTTL).
	ErrSnapshotExpired = core.ErrSnapshotExpired

	// ErrDegraded is returned by writes whose bounded stall expired while
	// the store was retrying a transient background fault (disk full,
	// intermittent I/O errors); see HealthState and DB.Health.
	ErrDegraded = core.ErrDegraded

	// ErrReadOnly is returned by writes while a corruption error has the
	// store quarantined read-only. Reads, snapshots, and iterators keep
	// serving; DB.Resume lifts the quarantine.
	ErrReadOnly = core.ErrReadOnly

	// ErrTxnConflict is returned by Txn.Commit (and DB.TxnWriteCtx) when
	// optimistic validation finds that a read- or write-set key changed
	// after the transaction's snapshot. The transaction is rolled back;
	// retry it from scratch with a fresh snapshot. The error crosses the
	// network with its identity intact and is deliberately not retried
	// automatically by the client — resending the identical request
	// re-fails by construction.
	ErrTxnConflict = core.ErrTxnConflict

	// ErrInvalidOptions is returned (wrapped, with the offending field
	// named) by Open/OpenPath when the configuration is nonsensical — a
	// negative size, count, or rate, L0StopTrigger below L0SlowdownTrigger,
	// an unknown SchedulerProfile — and by NewIterator when an iterator's
	// LowerBound sorts above its UpperBound.
	ErrInvalidOptions = core.ErrInvalidOptions

	// ErrBackupFailed wraps every error a DB.Backup run aborts on, after
	// its partial uploads have been garbage-collected from the remote
	// tier. The previous backup remains the restore point.
	ErrBackupFailed = backup.ErrBackupFailed

	// ErrNoBackup is returned by BackupEngine.Latest and Restore when the
	// remote tier holds no completed backup (or not the requested id).
	ErrNoBackup = backup.ErrNoBackup

	// ErrBackupCorrupt is returned by BackupEngine.Restore when a
	// downloaded object's content does not hash to its content-addressed
	// name — remote bit rot or a torn upload — instead of writing a
	// silently wrong store.
	ErrBackupCorrupt = backup.ErrObjectCorrupt
)
