// Benchmarks regenerating every figure of the paper's evaluation (§5) at
// smoke scale, plus micro-benchmarks of the substrates. Each figure bench
// reports throughput as Kops/s (the paper's unit) via b.ReportMetric; run
// the clsm-bench command for the full tables at realistic scales.
package clsm_test

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"clsm/internal/baseline"
	"clsm/internal/harness"
	"clsm/internal/keys"
	"clsm/internal/skiplist"
	"clsm/internal/storage"
	"clsm/internal/wal"
	"clsm/internal/workload"
)

// benchScale trims the smoke preset so the full -bench=. sweep stays fast.
func benchScale() harness.Scale {
	sc := harness.Smoke
	sc.Duration = 100 * time.Millisecond
	sc.KeySpace, sc.Preload = 20_000, 10_000
	sc.Threads = []int{4}
	sc.ReadThreads = []int{4}
	return sc
}

// metricName builds a testing.B metric unit (no whitespace allowed).
func metricName(parts ...string) string {
	return strings.ReplaceAll(strings.Join(parts, "_"), " ", "-")
}

// reportFigure runs a figure once per benchmark invocation and reports each
// series' throughput in the paper's Kops/s unit.
func reportFigure(b *testing.B, run func(harness.Scale) (*harness.Figure, error)) {
	b.Helper()
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		fig, err := run(sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, s := range fig.Series {
				last := s.Points[len(s.Points)-1]
				b.ReportMetric(last.Throughput/1000, metricName(s.Store, "Kops/s"))
			}
		}
	}
}

// BenchmarkFig1 — partitioned LevelDB/Hyper vs one shared cLSM partition.
func BenchmarkFig1(b *testing.B) { reportFigure(b, harness.Fig1) }

// BenchmarkFig5a — write throughput, 100% uniform puts (Fig. 5a).
func BenchmarkFig5a(b *testing.B) { reportFigure(b, harness.Fig5) }

// BenchmarkFig5b — write throughput vs p90 latency (Fig. 5b).
func BenchmarkFig5b(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		fig, err := harness.Fig5(sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, s := range fig.Series {
				last := s.Points[len(s.Points)-1]
				b.ReportMetric(float64(last.P90.Nanoseconds()), metricName(s.Store, "p90ns"))
			}
		}
	}
}

// BenchmarkFig6a — read throughput, 90/10 hotspot gets (Fig. 6a).
func BenchmarkFig6a(b *testing.B) { reportFigure(b, harness.Fig6) }

// BenchmarkFig6b — read throughput vs p90 latency (Fig. 6b).
func BenchmarkFig6b(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		fig, err := harness.Fig6(sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, s := range fig.Series {
				last := s.Points[len(s.Points)-1]
				b.ReportMetric(float64(last.P90.Nanoseconds()), metricName(s.Store, "p90ns"))
			}
		}
	}
}

// BenchmarkFig7a — mixed 50/50 read/write throughput (Fig. 7a).
func BenchmarkFig7a(b *testing.B) { reportFigure(b, harness.Fig7a) }

// BenchmarkFig7b — mixed scan/write throughput in keys/s (Fig. 7b).
func BenchmarkFig7b(b *testing.B) { reportFigure(b, harness.Fig7b) }

// BenchmarkFig8 — throughput vs memory-component size (Fig. 8).
func BenchmarkFig8(b *testing.B) { reportFigure(b, harness.Fig8) }

// BenchmarkFig9 — RMW throughput, Algorithm 3 vs lock striping (Fig. 9).
func BenchmarkFig9(b *testing.B) { reportFigure(b, harness.Fig9) }

// BenchmarkFig10 — production-like workloads (Fig. 10, four datasets).
func BenchmarkFig10(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		figs, err := harness.Fig10(sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, fig := range figs {
				for _, s := range fig.Series {
					last := s.Points[len(s.Points)-1]
					b.ReportMetric(last.Throughput/1000, metricName(fig.ID, s.Store, "Kops/s"))
				}
			}
		}
	}
}

// BenchmarkFig11 — disk-bound heavy compaction (Fig. 11).
func BenchmarkFig11(b *testing.B) {
	sc := benchScale()
	sc.Preload = 4000
	for i := 0; i < b.N; i++ {
		fig, err := harness.Fig11(sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, s := range fig.Series {
				last := s.Points[len(s.Points)-1]
				b.ReportMetric(last.Throughput/1000, metricName(s.Store, "Kops/s"))
			}
		}
	}
}

// --------------------------------------------------------------------------
// Substrate micro-benchmarks.

func BenchmarkSkiplistInsert(b *testing.B) {
	l := skiplist.New()
	k := make([]byte, 16)
	v := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(k, fmt.Sprintf("%016d", i))
		l.Insert(keys.Make(k, uint64(i+1), keys.KindValue), v)
	}
}

func BenchmarkSkiplistInsertParallel(b *testing.B) {
	l := skiplist.New()
	var ctr atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		k := make([]byte, 16)
		v := make([]byte, 64)
		for pb.Next() {
			i := ctr.Add(1)
			copy(k, fmt.Sprintf("%016d", i))
			l.Insert(keys.Make(k, uint64(i), keys.KindValue), v)
		}
	})
}

func BenchmarkSkiplistGet(b *testing.B) {
	l := skiplist.New()
	for i := 0; i < 100000; i++ {
		l.Insert(keys.Make([]byte(fmt.Sprintf("%016d", i)), uint64(i+1), keys.KindValue), []byte("v"))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Get([]byte(fmt.Sprintf("%016d", i%100000)), keys.MaxTimestamp)
	}
}

func BenchmarkWALAppend(b *testing.B) {
	fs := storage.NewMemFS()
	f, _ := fs.Create("l")
	w := wal.NewWriter(f, false)
	rec := make([]byte, 300)
	b.SetBytes(int64(len(rec)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStorePut(b *testing.B) {
	for _, name := range []baseline.Name{baseline.NameLevelDB, baseline.NameCLSM} {
		b.Run(string(name), func(b *testing.B) {
			s, err := baseline.New(name, benchScale().CoreOptions())
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			g := workload.New(workload.Config{KeySpace: 1 << 20, KeySize: 8, ValueSize: 256}, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := append([]byte(nil), g.NextKey()...)
				if err := s.Put(k, g.Value(int64(i))); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkStoreGetParallel(b *testing.B) {
	for _, name := range []baseline.Name{baseline.NameLevelDB, baseline.NameCLSM} {
		b.Run(string(name), func(b *testing.B) {
			s, err := baseline.New(name, benchScale().CoreOptions())
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			cfg := workload.Config{KeySpace: 50_000, KeySize: 8, ValueSize: 256, Dist: workload.Hotspot}
			if err := harness.Preload(s, cfg, 50_000, 8); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var seed atomic.Int64
			b.RunParallel(func(pb *testing.PB) {
				g := workload.New(cfg, seed.Add(1))
				for pb.Next() {
					if _, _, err := s.Get(g.NextKey()); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}
