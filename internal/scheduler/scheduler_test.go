package scheduler

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// blockGate parks the single worker so tests can stage a queue and then
// observe dispatch order.
type blockGate struct {
	entered chan struct{}
	release chan struct{}
}

func newGate() *blockGate {
	return &blockGate{entered: make(chan struct{}), release: make(chan struct{})}
}

func (g *blockGate) run() {
	close(g.entered)
	<-g.release
}

func TestPriorityOrder(t *testing.T) {
	s := New(Config{Workers: 1, CompactionSlots: 1})
	defer s.Close()

	g := newGate()
	s.Submit(Job{Key: "blocker", Band: BandFlush, Run: g.run})
	<-g.entered

	var mu sync.Mutex
	var order []string
	record := func(name string) func() {
		return func() {
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
		}
	}
	done := make(chan struct{})
	// Submit out of priority order; the worker must drain by band, then
	// by score within the level band.
	s.Submit(Job{Key: "seek", Band: BandSeek, Run: record("seek")})
	s.Submit(Job{Key: "L3", Band: BandLevel, Score: 1.1, Run: record("L3")})
	s.Submit(Job{Key: "L1", Band: BandLevel, Score: 2.5, Run: record("L1")})
	s.Submit(Job{Key: "l0", Band: BandL0, Score: 1.0, Run: record("l0")})
	s.Submit(Job{Key: "flush", Band: BandFlush, Run: func() { record("flush")() }})
	s.Submit(Job{Key: "last", Band: BandSeek, Score: -1, Run: func() {
		record("last")()
		close(done)
	}})

	close(g.release)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("queue did not drain")
	}

	want := []string{"flush", "l0", "L1", "L3", "seek", "last"}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != len(want) {
		t.Fatalf("ran %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v", order, want)
		}
	}
}

func TestSubmitDedupsQueuedKey(t *testing.T) {
	s := New(Config{Workers: 1, CompactionSlots: 1})
	defer s.Close()

	g := newGate()
	s.Submit(Job{Key: "blocker", Band: BandFlush, Run: g.run})
	<-g.entered

	var runs atomic.Int32
	done := make(chan struct{})
	if !s.Submit(Job{Key: "c", Band: BandLevel, Score: 1, Run: func() { runs.Add(1) }}) {
		t.Fatal("first submit not queued")
	}
	if s.Submit(Job{Key: "c", Band: BandLevel, Score: 9, Run: func() { runs.Add(1) }}) {
		t.Fatal("duplicate key queued a second entry")
	}
	s.Submit(Job{Key: "end", Band: BandSeek, Run: func() { close(done) }})

	close(g.release)
	<-done
	if n := runs.Load(); n != 1 {
		t.Fatalf("deduplicated job ran %d times, want 1", n)
	}
}

func TestCompactionCapIsGlobal(t *testing.T) {
	// 4 workers but a single compaction slot: two compaction jobs must
	// never overlap, while a flush runs alongside.
	s := New(Config{Workers: 4, CompactionSlots: 1})
	defer s.Close()

	var cur, peak atomic.Int32
	var wg sync.WaitGroup
	wg.Add(3)
	comp := func() {
		defer wg.Done()
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(20 * time.Millisecond)
		cur.Add(-1)
	}
	flushRan := make(chan struct{})
	s.Submit(Job{Key: "c1", Band: BandLevel, Run: comp})
	s.Submit(Job{Key: "c2", Band: BandLevel, Run: comp})
	s.Submit(Job{Key: "c3", Band: BandSeek, Run: comp})
	s.Submit(Job{Key: "f", Band: BandFlush, Run: func() { close(flushRan) }})

	select {
	case <-flushRan:
	case <-time.After(time.Second):
		t.Fatal("flush did not run while compactions were queued")
	}
	wg.Wait()
	if p := peak.Load(); p != 1 {
		t.Fatalf("peak concurrent compactions = %d, want 1", p)
	}
}

func TestRunningKeyBlocksRedispatch(t *testing.T) {
	s := New(Config{Workers: 2, CompactionSlots: 2})
	defer s.Close()

	g := newGate()
	var overlap atomic.Bool
	running := atomic.Bool{}
	s.Submit(Job{Key: "k", Band: BandLevel, Run: func() {
		running.Store(true)
		g.run()
		running.Store(false)
	}})
	<-g.entered
	done := make(chan struct{})
	s.Submit(Job{Key: "k", Band: BandLevel, Run: func() {
		if running.Load() {
			overlap.Store(true)
		}
		close(done)
	}})
	// Give the second worker a chance to (incorrectly) start the queued
	// duplicate while the first still runs.
	time.Sleep(30 * time.Millisecond)
	close(g.release)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("second job never ran")
	}
	if overlap.Load() {
		t.Fatal("two jobs with the same key ran concurrently")
	}
}

func TestPauseDropsQueueAndBlocksSubmit(t *testing.T) {
	s := New(Config{Workers: 1, CompactionSlots: 1})
	defer s.Close()

	g := newGate()
	s.Submit(Job{Key: "blocker", Band: BandFlush, Run: g.run})
	<-g.entered

	var dropped atomic.Bool
	s.Submit(Job{Key: "queued", Band: BandLevel, Run: func() { dropped.Store(true) }})
	s.Pause()
	if s.Submit(Job{Key: "rejected", Band: BandLevel, Run: func() {}}) {
		t.Fatal("Submit accepted while paused")
	}
	if d := s.QueueDepth(); d != 1 { // only the running blocker
		t.Fatalf("queue depth after pause = %d, want 1 (running job)", d)
	}
	close(g.release)

	s.Resume()
	done := make(chan struct{})
	s.Submit(Job{Key: "after", Band: BandSeek, Run: func() { close(done) }})
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("job did not run after Resume")
	}
	if dropped.Load() {
		t.Fatal("job queued before Pause ran anyway (queue was not dropped)")
	}
}

func TestCloseWaitsForRunningJob(t *testing.T) {
	s := New(Config{Workers: 1, CompactionSlots: 1})
	finished := atomic.Bool{}
	g := newGate()
	s.Submit(Job{Key: "slow", Band: BandLevel, Run: func() {
		g.run()
		finished.Store(true)
	}})
	<-g.entered
	go func() {
		time.Sleep(20 * time.Millisecond)
		close(g.release)
	}()
	s.Close()
	if !finished.Load() {
		t.Fatal("Close returned before the running job finished")
	}
	// Idempotent.
	s.Close()
}

func TestPlannerRunsOnTickAndKick(t *testing.T) {
	var calls atomic.Int32
	s := New(Config{Workers: 1, CompactionSlots: 1, Poll: time.Hour, Planner: func(*Scheduler) { calls.Add(1) }})
	defer s.Close()
	s.Kick()
	deadline := time.Now().Add(time.Second)
	for calls.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if calls.Load() == 0 {
		t.Fatal("planner did not run on Kick")
	}
}

func TestDebtSignal(t *testing.T) {
	s := New(Config{Workers: 1, CompactionSlots: 1})
	defer s.Close()
	if s.Debt() != 0 {
		t.Fatal("fresh scheduler has nonzero debt")
	}
	s.SetDebt(12345)
	if d := s.Debt(); d != 12345 {
		t.Fatalf("Debt() = %d, want 12345", d)
	}
}
