package scheduler

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Pressure summarizes the debt signal for one tuner step: how urgently the
// background work is backing up behind the write load.
type Pressure uint8

const (
	// PressureNone: the backlog is gone; the rate recovers.
	PressureNone Pressure = iota
	// PressureHold: backlog exists but is draining — the current rate
	// matches the drain rate, so the tuner neither decays nor recovers.
	// Without this state a persistent-but-draining backlog would decay the
	// rate to the floor every tick and throw away disk capacity.
	PressureHold
	// PressureSlow: L0 reached the slowdown trigger, or the memtable pair
	// is full with a merge in flight — debt is growing.
	PressureSlow
	// PressureStop: L0 reached the (historical) stop trigger — the point
	// where the old gate parked writers outright.
	PressureStop
)

// Profile is a named tuning preset for the throttle and scheduler.
type Profile struct {
	Name string

	// InitialRate is the delayed-write rate installed when the throttle
	// activates (bytes/s).
	InitialRate int64
	// MinRate floors the multiplicative decrease so writes always trickle.
	MinRate int64
	// MaxRate is the auto-recovery ceiling: once additive recovery pushes
	// the rate past it under no pressure, the throttle deactivates
	// (unless a user rate limit keeps it permanently active).
	MaxRate int64
	// DecaySlow and DecayStop are the multiplicative factors applied per
	// tuner step under PressureSlow / PressureStop.
	DecaySlow float64
	DecayStop float64
	// RecoverStep is the additive bytes/s regained per step under
	// PressureNone.
	RecoverStep int64

	// Legacy disables the auto-tuner entirely and restores the historical
	// binary gate (1ms slowdown sleep, hard L0-stop wait) in the engine's
	// write path. Kept so the stall benchmark can measure the pre-scheduler
	// cliff in the same binary.
	Legacy bool
}

// Profiles, selected by Options.SchedulerProfile. "default" balances
// recovery speed against stall smoothness; "throughput" decays gently and
// recovers fast (batch loads that tolerate latency wobble); "latency"
// decays hard and recovers cautiously (serving tiers where tail latency
// rules); "legacy" is the pre-scheduler binary gate.
func ProfileByName(name string) (Profile, error) {
	switch name {
	case "", "default":
		return Profile{
			Name:        "default",
			InitialRate: 64 << 20,
			MinRate:     256 << 10,
			MaxRate:     512 << 20,
			DecaySlow:   0.8,
			DecayStop:   0.5,
			RecoverStep: 1 << 20,
		}, nil
	case "throughput":
		return Profile{
			Name:        "throughput",
			InitialRate: 128 << 20,
			MinRate:     4 << 20,
			MaxRate:     1 << 30,
			DecaySlow:   0.9,
			DecayStop:   0.7,
			RecoverStep: 16 << 20,
		}, nil
	case "latency":
		return Profile{
			Name:        "latency",
			InitialRate: 32 << 20,
			MinRate:     256 << 10,
			MaxRate:     256 << 20,
			DecaySlow:   0.7,
			DecayStop:   0.35,
			RecoverStep: 2 << 20,
		}, nil
	case "legacy":
		return Profile{Name: "legacy", Legacy: true}, nil
	}
	return Profile{}, fmt.Errorf("unknown scheduler profile %q (want default, throughput, latency, or legacy)", name)
}

// Change reports what a tuner step did, so the engine can emit trace
// events at activation/deactivation and on large adjustments without
// flooding the trace on every 10ms step.
type Change uint8

const (
	ChangeNone   Change = iota
	ChangeOn            // throttle activated
	ChangeOff           // throttle deactivated
	ChangeAdjust        // rate moved past a 2x boundary since last report
)

// maxAdmitWait bounds a single admission wait. Keeping it well under the
// legacy gate's L0-stop parks is the point of the redesign: backpressure is
// delivered as many short delays instead of one cliff, so a writer's
// worst-case latency stays bounded even when the token deficit is deep,
// and throttled writers stay responsive to Close/Resume.
const maxAdmitWait = 250 * time.Millisecond

// Throttle is the write-path admission controller: a token bucket whose
// refill rate is auto-tuned from the scheduler's debt signal, RocksDB
// delayed-write-rate style. While inactive (rate 0) admission is a single
// atomic load — the healthy path stays O(1) and allocation-free.
type Throttle struct {
	profile Profile
	limit   int64 // user cap from Options.WriteRateLimit; 0 = none

	// rate is the admitted bytes/s; 0 means inactive (admit everything).
	rate atomic.Int64

	mu     sync.Mutex
	tokens float64 // may go negative: the current deficit
	last   time.Time
	// lastEmitted is the rate at the last ChangeOn/ChangeAdjust report;
	// adjustments are only reported when the rate doubles or halves
	// relative to it.
	lastEmitted int64
}

// NewThrottle builds the admission controller. A positive limit keeps the
// bucket permanently active at (at most) limit bytes/s; otherwise the
// bucket activates only under pressure.
func NewThrottle(p Profile, limit int64) *Throttle {
	t := &Throttle{profile: p, limit: limit}
	if limit > 0 {
		t.rate.Store(limit)
		t.lastEmitted = limit
	}
	return t
}

// Rate returns the current admitted bytes/s (0 = unthrottled).
func (t *Throttle) Rate() int64 { return t.rate.Load() }

// Active reports whether admission is currently rate-limited.
func (t *Throttle) Active() bool { return t.rate.Load() != 0 }

// Reserve charges n bytes against the bucket and returns how long the
// caller must wait before proceeding (0 = admitted immediately). The
// caller sleeps outside the bucket, so concurrent writers accumulate a
// shared deficit and later arrivals wait proportionally longer — the
// delayed-write behavior, without a queue.
func (t *Throttle) Reserve(n int) time.Duration {
	r := t.rate.Load()
	if r == 0 {
		return 0
	}
	now := time.Now()
	t.mu.Lock()
	if !t.last.IsZero() {
		t.tokens += float64(r) * now.Sub(t.last).Seconds()
	}
	t.last = now
	// Cap the burst at 1/8s of rate so an idle period does not bank an
	// unbounded allowance.
	if burst := float64(r) / 8; t.tokens > burst {
		t.tokens = burst
	}
	t.tokens -= float64(n)
	var wait time.Duration
	if t.tokens < 0 {
		wait = time.Duration(-t.tokens / float64(r) * float64(time.Second))
		if wait > maxAdmitWait {
			wait = maxAdmitWait
		}
		// Floor the deficit at half a second of refill: past maxAdmitWait
		// the waits no longer stretch, so letting the deficit grow without
		// bound would only delay recovery after the load stops.
		if floor := -float64(r) / 2; t.tokens < floor {
			t.tokens = floor
		}
	}
	t.mu.Unlock()
	return wait
}

// Tune runs one controller step against the current pressure and returns
// the new rate plus what changed. Called from the engine's planner pass
// (every ~10ms), never concurrently.
func (t *Throttle) Tune(p Pressure) (int64, Change) {
	cur := t.rate.Load()
	if t.profile.Legacy {
		// Legacy keeps the binary gate; the bucket only enforces an
		// explicit user limit, untuned.
		return cur, ChangeNone
	}
	if cur == 0 {
		if p == PressureNone || p == PressureHold {
			return 0, ChangeNone
		}
		nr := t.profile.InitialRate
		if t.limit > 0 && nr > t.limit {
			nr = t.limit
		}
		t.setRate(nr)
		t.mu.Lock()
		t.lastEmitted = nr
		t.mu.Unlock()
		return nr, ChangeOn
	}

	var nr int64
	switch p {
	case PressureStop:
		nr = int64(float64(cur) * t.profile.DecayStop)
	case PressureSlow:
		nr = int64(float64(cur) * t.profile.DecaySlow)
	case PressureHold:
		return cur, ChangeNone
	default:
		nr = cur + t.profile.RecoverStep
	}
	if nr < t.profile.MinRate {
		nr = t.profile.MinRate
	}
	if t.limit > 0 {
		if nr > t.limit {
			nr = t.limit
		}
	} else if p == PressureNone && nr >= t.profile.MaxRate {
		// Fully recovered with no user cap: deactivate.
		t.setRate(0)
		t.mu.Lock()
		t.lastEmitted = 0
		t.tokens = 0
		t.last = time.Time{}
		t.mu.Unlock()
		return 0, ChangeOff
	}
	if nr == cur {
		return cur, ChangeNone
	}
	t.setRate(nr)
	t.mu.Lock()
	emitted := t.lastEmitted
	change := ChangeNone
	if emitted > 0 && (nr >= 2*emitted || nr <= emitted/2) {
		t.lastEmitted = nr
		change = ChangeAdjust
	}
	t.mu.Unlock()
	return nr, change
}

// Reset clears auto-tuned state: the rate returns to the user limit (or
// deactivates without one) and the deficit is forgiven. Called by the
// engine's Resume — the operator's explicit override.
func (t *Throttle) Reset() {
	nr := int64(0)
	if t.limit > 0 {
		nr = t.limit
	}
	t.setRate(nr)
	t.mu.Lock()
	t.tokens = 0
	t.last = time.Time{}
	t.lastEmitted = nr
	t.mu.Unlock()
}

// setRate swaps the published rate, pro-rating the banked tokens so a rate
// change takes effect smoothly rather than instantly refilling or
// emptying the bucket.
func (t *Throttle) setRate(nr int64) {
	t.mu.Lock()
	cur := t.rate.Load()
	if cur > 0 && !t.last.IsZero() {
		// Settle the elapsed interval at the old rate before switching.
		now := time.Now()
		t.tokens += float64(cur) * now.Sub(t.last).Seconds()
		t.last = now
	}
	t.rate.Store(nr)
	t.mu.Unlock()
}
