package scheduler

import (
	"testing"
	"time"
)

func TestProfileByName(t *testing.T) {
	for _, name := range []string{"", "default", "throughput", "latency", "legacy"} {
		p, err := ProfileByName(name)
		if err != nil {
			t.Fatalf("ProfileByName(%q): %v", name, err)
		}
		if !p.Legacy && (p.InitialRate <= 0 || p.MinRate <= 0 || p.MaxRate < p.InitialRate ||
			p.DecaySlow <= 0 || p.DecaySlow >= 1 || p.DecayStop <= 0 || p.DecayStop >= p.DecaySlow ||
			p.RecoverStep <= 0) {
			t.Fatalf("profile %q has inconsistent parameters: %+v", name, p)
		}
	}
	if _, err := ProfileByName("warp-speed"); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestReserveInactiveIsFree(t *testing.T) {
	p, _ := ProfileByName("default")
	th := NewThrottle(p, 0)
	if th.Active() {
		t.Fatal("fresh throttle active without pressure or limit")
	}
	if w := th.Reserve(1 << 20); w != 0 {
		t.Fatalf("inactive Reserve returned wait %v", w)
	}
}

func TestTuneAIMD(t *testing.T) {
	p, _ := ProfileByName("default")
	th := NewThrottle(p, 0)

	// Activation on first pressure.
	r, ch := th.Tune(PressureSlow)
	if ch != ChangeOn || r != p.InitialRate {
		t.Fatalf("first pressure: rate=%d change=%d, want activation at %d", r, ch, p.InitialRate)
	}
	// Multiplicative decrease under sustained pressure, floored at MinRate.
	prev := r
	for i := 0; i < 100; i++ {
		r, _ = th.Tune(PressureStop)
		if r > prev {
			t.Fatalf("rate rose under stop pressure: %d -> %d", prev, r)
		}
		prev = r
	}
	if r != p.MinRate {
		t.Fatalf("sustained stop pressure floored at %d, want MinRate %d", r, p.MinRate)
	}
	// Additive recovery, strictly increasing.
	for i := 0; i < 3; i++ {
		nr, _ := th.Tune(PressureNone)
		if nr != r+p.RecoverStep {
			t.Fatalf("recovery step %d: %d -> %d, want +%d", i, r, nr, p.RecoverStep)
		}
		r = nr
	}
	// Full recovery deactivates.
	for i := 0; i < 1000 && th.Active(); i++ {
		th.Tune(PressureNone)
	}
	if th.Active() {
		t.Fatal("throttle never deactivated after pressure cleared")
	}
}

func TestTuneRespectsUserLimit(t *testing.T) {
	p, _ := ProfileByName("default")
	limit := int64(1 << 20)
	th := NewThrottle(p, limit)
	if r := th.Rate(); r != limit {
		t.Fatalf("rate with user limit = %d, want %d", r, limit)
	}
	// Decay below the limit, then recover: the rate must cap at the limit
	// and stay active forever.
	th.Tune(PressureStop)
	for i := 0; i < 1000; i++ {
		th.Tune(PressureNone)
	}
	if r := th.Rate(); r != limit {
		t.Fatalf("recovered rate = %d, want capped at user limit %d", r, limit)
	}
	if !th.Active() {
		t.Fatal("user-limited throttle deactivated")
	}
}

func TestLegacyProfileNeverAutoActivates(t *testing.T) {
	p, _ := ProfileByName("legacy")
	th := NewThrottle(p, 0)
	for i := 0; i < 10; i++ {
		if r, ch := th.Tune(PressureStop); r != 0 || ch != ChangeNone {
			t.Fatalf("legacy tuner activated: rate=%d change=%d", r, ch)
		}
	}
}

func TestReserveAccumulatesDeficit(t *testing.T) {
	p, _ := ProfileByName("default")
	th := NewThrottle(p, 1<<20) // 1 MiB/s

	// Drain the initial burst allowance, then successive reservations must
	// wait, each longer than the last (shared deficit), capped at
	// maxAdmitWait.
	th.Reserve(128 << 10) // exactly the burst cap (rate/8)
	w1 := th.Reserve(64 << 10)
	w2 := th.Reserve(64 << 10)
	if w1 <= 0 {
		t.Fatalf("deficit reservation waited %v, want > 0", w1)
	}
	if w2 <= w1 {
		t.Fatalf("later reservation waited %v, want more than earlier %v", w2, w1)
	}
	for i := 0; i < 100; i++ {
		if w := th.Reserve(1 << 20); w > maxAdmitWait {
			t.Fatalf("wait %v exceeds maxAdmitWait %v", w, maxAdmitWait)
		}
	}
}

func TestReserveRefillsOverTime(t *testing.T) {
	p, _ := ProfileByName("default")
	th := NewThrottle(p, 8<<20) // 8 MiB/s => 1 MiB burst cap
	th.Reserve(4 << 20)         // deep deficit
	time.Sleep(50 * time.Millisecond)
	// ~400 KiB refilled; a tiny reservation should wait far less than the
	// earlier deficit implied.
	w := th.Reserve(1)
	if w > maxAdmitWait {
		t.Fatalf("wait %v not reduced by refill", w)
	}
}

func TestResetClearsAutoState(t *testing.T) {
	p, _ := ProfileByName("default")
	th := NewThrottle(p, 0)
	th.Tune(PressureStop)
	th.Reserve(1 << 30)
	th.Reset()
	if th.Active() {
		t.Fatal("Reset left an auto-tuned throttle active")
	}
	if w := th.Reserve(1 << 20); w != 0 {
		t.Fatalf("Reserve after Reset waited %v", w)
	}

	// With a user limit, Reset returns to the limit, not to inactive.
	th2 := NewThrottle(p, 42)
	th2.Tune(PressureStop)
	th2.Reset()
	if r := th2.Rate(); r != 42 {
		t.Fatalf("Reset with user limit left rate %d, want 42", r)
	}
}
