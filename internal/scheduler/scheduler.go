// Package scheduler is the engine's unified background-work executor: one
// priority queue and one bounded worker pool own every flush and compaction,
// replacing the per-loop goroutines that each enforced their own concurrency
// cap. Jobs are ordered by band — memtable flushes first, then L0→L1
// compactions, then deeper levels by score, seek-triggered compactions last —
// and the CompactionThreads cap is enforced globally across all compaction
// bands instead of per loop.
//
// The scheduler also carries the engine's debt signal: the byte volume of
// pending flush and compaction work, published by the planner on every pass.
// The write-path admission controller (Throttle, in this package) tunes its
// token-bucket refill rate from that signal so foreground latency degrades
// smoothly as background work backs up.
//
// The package is deliberately policy-free: a Planner callback owned by the
// engine inspects engine state and submits jobs; the scheduler only orders,
// deduplicates, and runs them. Stdlib-only, like the rest of the tree.
package scheduler

import (
	"sync"
	"sync/atomic"
	"time"
)

// Band is a job's priority class. Lower bands run first; within a band,
// higher Score runs first.
type Band uint8

// Priority bands, most urgent first. Flushes unblock writers stalled on a
// full memtable pair, so they always preempt compactions in queue order
// (a reserved worker slot guarantees one can also always run). L0→L1
// compactions relieve write backpressure next; deeper levels are ordered by
// their score; seek-triggered compactions are pure read optimization and
// run only when nothing else is queued.
const (
	BandFlush Band = iota
	BandL0
	BandLevel
	BandSeek
	// BandVlogGC is value-log garbage collection: live-ratio-driven segment
	// rewrites. Like backup it has its own slot budget (VlogGCSlots) — a
	// segment rewrite is long-running, space-driven rather than
	// write-pressure-driven work, and must never occupy a compaction slot.
	BandVlogGC
	// BandBackup is the lowest class: long-running checkpoint/backup
	// shipping. It has its own slot budget (BackupSlots) so a backup in
	// flight never occupies a compaction slot — and conversely a full
	// compaction complement never blocks the backup from starting.
	BandBackup
	numBands
)

// String names the band for logs and tests.
func (b Band) String() string {
	switch b {
	case BandFlush:
		return "flush"
	case BandL0:
		return "l0"
	case BandLevel:
		return "level"
	case BandSeek:
		return "seek"
	case BandVlogGC:
		return "vlog-gc"
	case BandBackup:
		return "backup"
	}
	return "unknown"
}

// Job is one unit of background work. Run executes on a scheduler worker
// and must contain its own error handling (retries, health reporting); the
// scheduler never interprets job outcomes.
type Job struct {
	// Key deduplicates queued work: submitting a job whose Key is already
	// queued refreshes that entry's Score and Debt instead of queueing a
	// duplicate. A job with the same Key as a running job may still queue
	// (the state may have changed since the running job picked its work),
	// but will not start until the running one finishes.
	Key string
	// Band is the priority class.
	Band Band
	// Score orders jobs within a band, higher first (compaction scores).
	Score float64
	// Debt is the byte volume of pending work this job represents; the
	// planner aggregates it into the scheduler's debt signal.
	Debt uint64
	// Run does the work.
	Run func()
}

// Config sizes the scheduler.
type Config struct {
	// Workers is the size of the worker pool. The engine uses
	// CompactionThreads+1 so a flush can always run alongside a full
	// complement of compactions.
	Workers int
	// CompactionSlots caps concurrently running non-flush jobs — the
	// global CompactionThreads budget.
	CompactionSlots int
	// FlushSlots caps concurrently running flush-band jobs (default 1:
	// rotation cycles are serialized by the engine anyway).
	FlushSlots int
	// BackupSlots caps concurrently running backup-band jobs (default 1:
	// a store ships one backup at a time).
	BackupSlots int
	// VlogGCSlots caps concurrently running value-log GC jobs (default 1:
	// segment rewrites are serialized per store).
	VlogGCSlots int
	// Poll is the planner cadence (default 10ms). The planner also runs
	// on every Kick and after every job completion.
	Poll time.Duration
	// Planner inspects engine state and submits jobs to the scheduler it
	// receives. It runs on a dedicated goroutine, never concurrently with
	// itself, and may fire before New returns — hence the argument: the
	// owner cannot rely on its own scheduler field being assigned yet. It
	// must be cheap when there is no work: it runs on every poll tick.
	Planner func(*Scheduler)
}

// Scheduler owns the queue and worker pool. Create with New, stop with
// Close.
type Scheduler struct {
	cfg Config

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []*Job
	running map[string]bool
	nFlush  int // running flush-band jobs
	nComp   int // running compaction-band jobs
	nBackup int // running backup-band jobs
	nVlogGC int // running vlog-gc-band jobs
	paused  bool
	closed  bool

	kickC chan struct{}
	done  chan struct{}
	wg    sync.WaitGroup

	debt atomic.Uint64
}

// New starts a scheduler with cfg's workers and planner loop.
func New(cfg Config) *Scheduler {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.CompactionSlots <= 0 {
		cfg.CompactionSlots = 1
	}
	if cfg.FlushSlots <= 0 {
		cfg.FlushSlots = 1
	}
	if cfg.BackupSlots <= 0 {
		cfg.BackupSlots = 1
	}
	if cfg.VlogGCSlots <= 0 {
		cfg.VlogGCSlots = 1
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 10 * time.Millisecond
	}
	s := &Scheduler{
		cfg:     cfg,
		running: make(map[string]bool),
		kickC:   make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	if cfg.Planner != nil {
		s.wg.Add(1)
		go s.plannerLoop()
	}
	return s
}

// Submit queues j (or refreshes the queued entry with its Key). Reports
// whether a new entry was queued. Safe to call from the planner, job Run
// functions, and foreground goroutines.
func (s *Scheduler) Submit(j Job) bool {
	if j.Run == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.paused {
		return false
	}
	if j.Key != "" {
		for _, q := range s.queue {
			if q.Key == j.Key {
				q.Score = j.Score
				q.Debt = j.Debt
				return false
			}
		}
	}
	jc := j
	s.queue = append(s.queue, &jc)
	s.cond.Signal()
	return true
}

// Kick asks the planner to run soon (non-blocking).
func (s *Scheduler) Kick() {
	select {
	case s.kickC <- struct{}{}:
	default:
	}
}

// Pause stops dispatching and drops all queued jobs (the planner simply
// regenerates them from engine state after Resume). Running jobs finish.
// Used by the read-only and failed health states, where background merges
// must not touch the disk.
func (s *Scheduler) Pause() {
	s.mu.Lock()
	s.paused = true
	s.queue = s.queue[:0]
	s.mu.Unlock()
}

// Resume re-enables dispatching and asks the planner to repopulate the
// queue.
func (s *Scheduler) Resume() {
	s.mu.Lock()
	s.paused = false
	s.mu.Unlock()
	s.Kick()
}

// Paused reports whether dispatching is paused.
func (s *Scheduler) Paused() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.paused
}

// QueueDepth counts jobs queued or running — the sched_queue_depth gauge.
func (s *Scheduler) QueueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue) + s.nFlush + s.nComp + s.nBackup + s.nVlogGC
}

// SetDebt publishes the pending-work byte volume (planner aggregate).
func (s *Scheduler) SetDebt(bytes uint64) { s.debt.Store(bytes) }

// Debt reads the pending-work byte volume. One atomic load.
func (s *Scheduler) Debt() uint64 { return s.debt.Load() }

// Close stops the planner, discards queued jobs, and waits for running
// jobs and workers to finish.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.queue = nil
	s.cond.Broadcast()
	s.mu.Unlock()
	close(s.done)
	s.wg.Wait()
}

// worker is the dispatch loop: wait for a runnable job, run it, notify the
// planner, repeat.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		var j *Job
		for {
			if s.closed {
				s.mu.Unlock()
				return
			}
			if !s.paused {
				if j = s.popLocked(); j != nil {
					break
				}
			}
			s.cond.Wait()
		}
		switch j.Band {
		case BandFlush:
			s.nFlush++
		case BandBackup:
			s.nBackup++
		case BandVlogGC:
			s.nVlogGC++
		default:
			s.nComp++
		}
		if j.Key != "" {
			s.running[j.Key] = true
		}
		s.mu.Unlock()

		j.Run()

		s.mu.Lock()
		switch j.Band {
		case BandFlush:
			s.nFlush--
		case BandBackup:
			s.nBackup--
		case BandVlogGC:
			s.nVlogGC--
		default:
			s.nComp--
		}
		if j.Key != "" {
			delete(s.running, j.Key)
		}
		// A slot and possibly a key freed up: other workers may now have
		// runnable work.
		s.cond.Broadcast()
		s.mu.Unlock()
		// Completing a job changes engine state (L0 drained, level moved);
		// let the planner re-evaluate immediately rather than on the next
		// tick.
		s.Kick()
	}
}

// popLocked removes and returns the best runnable job: lowest band first,
// then highest score. A job is runnable when its band has a free slot and
// no job with the same key is currently running. Caller holds mu.
func (s *Scheduler) popLocked() *Job {
	best := -1
	for i, j := range s.queue {
		switch {
		case j.Band == BandFlush:
			if s.nFlush >= s.cfg.FlushSlots {
				continue
			}
		case j.Band == BandBackup:
			if s.nBackup >= s.cfg.BackupSlots {
				continue
			}
		case j.Band == BandVlogGC:
			if s.nVlogGC >= s.cfg.VlogGCSlots {
				continue
			}
		default:
			if s.nComp >= s.cfg.CompactionSlots {
				continue
			}
		}
		if j.Key != "" && s.running[j.Key] {
			continue
		}
		if best < 0 {
			best = i
			continue
		}
		b := s.queue[best]
		if j.Band < b.Band || (j.Band == b.Band && j.Score > b.Score) {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	j := s.queue[best]
	s.queue = append(s.queue[:best], s.queue[best+1:]...)
	return j
}

// plannerLoop runs the planner on a fixed cadence and on every Kick. The
// planner always runs (even while paused): pausing gates dispatch, not
// planning, and the admission tuner piggybacks on the planner pass.
func (s *Scheduler) plannerLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.Poll)
	defer ticker.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-ticker.C:
		case <-s.kickC:
		}
		s.cfg.Planner(s)
	}
}
