package version

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Edit is one durable mutation of the version state, serialized as a
// MANIFEST record (the record framing reuses the WAL block format).
type Edit struct {
	// LogNum, when set, records that WALs below it are fully merged.
	LogNum    uint64
	hasLogNum bool
	// NextFileNum, when set, persists the file-number allocator.
	NextFileNum    uint64
	hasNextFileNum bool
	// LastTS, when set, persists the timestamp high-water mark.
	LastTS    uint64
	hasLastTS bool

	Added   []AddedFile
	Deleted []DeletedFile
}

// AddedFile places a new table in a level.
type AddedFile struct {
	Level int
	Meta  FileDesc
}

// DeletedFile removes a table from a level.
type DeletedFile struct {
	Level int
	Num   uint64
}

// SetLogNum marks WALs below num as merged.
func (e *Edit) SetLogNum(num uint64) { e.LogNum, e.hasLogNum = num, true }

// SetNextFileNum persists the file allocator position.
func (e *Edit) SetNextFileNum(num uint64) { e.NextFileNum, e.hasNextFileNum = num, true }

// SetLastTS persists the timestamp high-water mark.
func (e *Edit) SetLastTS(ts uint64) { e.LastTS, e.hasLastTS = ts, true }

// AddFile schedules meta for level.
func (e *Edit) AddFile(level int, meta FileDesc) {
	e.Added = append(e.Added, AddedFile{Level: level, Meta: meta})
}

// DeleteFile schedules removal of file num from level.
func (e *Edit) DeleteFile(level int, num uint64) {
	e.Deleted = append(e.Deleted, DeletedFile{Level: level, Num: num})
}

// Edit record field tags.
const (
	tagLogNum      = 1
	tagNextFileNum = 2
	tagLastTS      = 3
	tagAddFile     = 4
	tagDeleteFile  = 5
)

// ErrCorruptEdit reports a malformed manifest record.
var ErrCorruptEdit = errors.New("version: corrupt manifest edit")

// Encode serializes the edit.
func (e *Edit) Encode(dst []byte) []byte {
	if e.hasLogNum {
		dst = binary.AppendUvarint(dst, tagLogNum)
		dst = binary.AppendUvarint(dst, e.LogNum)
	}
	if e.hasNextFileNum {
		dst = binary.AppendUvarint(dst, tagNextFileNum)
		dst = binary.AppendUvarint(dst, e.NextFileNum)
	}
	if e.hasLastTS {
		dst = binary.AppendUvarint(dst, tagLastTS)
		dst = binary.AppendUvarint(dst, e.LastTS)
	}
	for _, a := range e.Added {
		dst = binary.AppendUvarint(dst, tagAddFile)
		dst = binary.AppendUvarint(dst, uint64(a.Level))
		dst = binary.AppendUvarint(dst, a.Meta.Num)
		dst = binary.AppendUvarint(dst, a.Meta.Size)
		dst = binary.AppendUvarint(dst, uint64(a.Meta.Entries))
		dst = appendBytes(dst, a.Meta.Smallest)
		dst = appendBytes(dst, a.Meta.Largest)
	}
	for _, d := range e.Deleted {
		dst = binary.AppendUvarint(dst, tagDeleteFile)
		dst = binary.AppendUvarint(dst, uint64(d.Level))
		dst = binary.AppendUvarint(dst, d.Num)
	}
	return dst
}

// DecodeEdit parses a serialized edit.
func DecodeEdit(data []byte) (*Edit, error) {
	e := &Edit{}
	for len(data) > 0 {
		tag, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, ErrCorruptEdit
		}
		data = data[n:]
		switch tag {
		case tagLogNum, tagNextFileNum, tagLastTS:
			v, n := binary.Uvarint(data)
			if n <= 0 {
				return nil, ErrCorruptEdit
			}
			data = data[n:]
			switch tag {
			case tagLogNum:
				e.SetLogNum(v)
			case tagNextFileNum:
				e.SetNextFileNum(v)
			case tagLastTS:
				e.SetLastTS(v)
			}
		case tagAddFile:
			var a AddedFile
			vals := make([]uint64, 4)
			for i := range vals {
				v, n := binary.Uvarint(data)
				if n <= 0 {
					return nil, ErrCorruptEdit
				}
				vals[i] = v
				data = data[n:]
			}
			a.Level = int(vals[0])
			if a.Level < 0 || a.Level >= NumLevels {
				return nil, fmt.Errorf("%w: level %d", ErrCorruptEdit, a.Level)
			}
			a.Meta.Num = vals[1]
			a.Meta.Size = vals[2]
			a.Meta.Entries = int(vals[3])
			var ok bool
			if a.Meta.Smallest, data, ok = takeBytes(data); !ok {
				return nil, ErrCorruptEdit
			}
			if a.Meta.Largest, data, ok = takeBytes(data); !ok {
				return nil, ErrCorruptEdit
			}
			e.Added = append(e.Added, a)
		case tagDeleteFile:
			lvl, n := binary.Uvarint(data)
			if n <= 0 {
				return nil, ErrCorruptEdit
			}
			data = data[n:]
			num, n := binary.Uvarint(data)
			if n <= 0 {
				return nil, ErrCorruptEdit
			}
			data = data[n:]
			if lvl >= NumLevels {
				return nil, fmt.Errorf("%w: level %d", ErrCorruptEdit, lvl)
			}
			e.Deleted = append(e.Deleted, DeletedFile{Level: int(lvl), Num: num})
		default:
			return nil, fmt.Errorf("%w: unknown tag %d", ErrCorruptEdit, tag)
		}
	}
	return e, nil
}

func appendBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

func takeBytes(data []byte) (b, rest []byte, ok bool) {
	l, n := binary.Uvarint(data)
	if n <= 0 || l > uint64(len(data)-n) {
		return nil, nil, false
	}
	out := make([]byte, l)
	copy(out, data[n:n+int(l)])
	return out, data[n+int(l):], true
}
