package version

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Edit is one durable mutation of the version state, serialized as a
// MANIFEST record (the record framing reuses the WAL block format).
type Edit struct {
	// LogNum, when set, records that WALs below it are fully merged.
	LogNum    uint64
	hasLogNum bool
	// NextFileNum, when set, persists the file-number allocator.
	NextFileNum    uint64
	hasNextFileNum bool
	// LastTS, when set, persists the timestamp high-water mark.
	LastTS    uint64
	hasLastTS bool

	Added   []AddedFile
	Deleted []DeletedFile

	// Value-log segment lifecycle. A segment is added to the manifest
	// before its first value lands (so recovery never meets a durable
	// pointer into an unrecorded segment), sealed with its final size at
	// rotation, accumulates garbage-byte deltas as compactions drop
	// pointers into it, and is deleted when GC retires it.
	VlogAdded   []uint64
	VlogDeleted []uint64
	VlogSealed  []VlogSegSize
	VlogGarbage []VlogSegSize
}

// VlogSegSize pairs a value-log segment with a byte figure: the final
// segment size for seal records, a garbage-byte delta for garbage records.
type VlogSegSize struct {
	Num   uint64
	Bytes uint64
}

// AddedFile places a new table in a level.
type AddedFile struct {
	Level int
	Meta  FileDesc
}

// DeletedFile removes a table from a level.
type DeletedFile struct {
	Level int
	Num   uint64
}

// SetLogNum marks WALs below num as merged.
func (e *Edit) SetLogNum(num uint64) { e.LogNum, e.hasLogNum = num, true }

// SetNextFileNum persists the file allocator position.
func (e *Edit) SetNextFileNum(num uint64) { e.NextFileNum, e.hasNextFileNum = num, true }

// SetLastTS persists the timestamp high-water mark.
func (e *Edit) SetLastTS(ts uint64) { e.LastTS, e.hasLastTS = ts, true }

// AddFile schedules meta for level.
func (e *Edit) AddFile(level int, meta FileDesc) {
	e.Added = append(e.Added, AddedFile{Level: level, Meta: meta})
}

// DeleteFile schedules removal of file num from level.
func (e *Edit) DeleteFile(level int, num uint64) {
	e.Deleted = append(e.Deleted, DeletedFile{Level: level, Num: num})
}

// AddVlogSegment records a new value-log segment in the live set.
func (e *Edit) AddVlogSegment(num uint64) {
	e.VlogAdded = append(e.VlogAdded, num)
}

// DeleteVlogSegment removes a retired value-log segment from the live set.
func (e *Edit) DeleteVlogSegment(num uint64) {
	e.VlogDeleted = append(e.VlogDeleted, num)
}

// SealVlogSegment records a segment's final size (no further appends).
func (e *Edit) SealVlogSegment(num, size uint64) {
	e.VlogSealed = append(e.VlogSealed, VlogSegSize{Num: num, Bytes: size})
}

// AddVlogGarbage accumulates dead bytes against a segment (compaction
// dropped pointers into it), feeding the GC live-ratio picker.
func (e *Edit) AddVlogGarbage(num, bytes uint64) {
	e.VlogGarbage = append(e.VlogGarbage, VlogSegSize{Num: num, Bytes: bytes})
}

// Edit record field tags.
const (
	tagLogNum      = 1
	tagNextFileNum = 2
	tagLastTS      = 3
	tagAddFile     = 4
	tagDeleteFile  = 5
	tagAddVlogSeg  = 6
	tagDelVlogSeg  = 7
	tagSealVlogSeg = 8
	tagVlogGarbage = 9
)

// ErrCorruptEdit reports a malformed manifest record.
var ErrCorruptEdit = errors.New("version: corrupt manifest edit")

// Encode serializes the edit.
func (e *Edit) Encode(dst []byte) []byte {
	if e.hasLogNum {
		dst = binary.AppendUvarint(dst, tagLogNum)
		dst = binary.AppendUvarint(dst, e.LogNum)
	}
	if e.hasNextFileNum {
		dst = binary.AppendUvarint(dst, tagNextFileNum)
		dst = binary.AppendUvarint(dst, e.NextFileNum)
	}
	if e.hasLastTS {
		dst = binary.AppendUvarint(dst, tagLastTS)
		dst = binary.AppendUvarint(dst, e.LastTS)
	}
	for _, a := range e.Added {
		dst = binary.AppendUvarint(dst, tagAddFile)
		dst = binary.AppendUvarint(dst, uint64(a.Level))
		dst = binary.AppendUvarint(dst, a.Meta.Num)
		dst = binary.AppendUvarint(dst, a.Meta.Size)
		dst = binary.AppendUvarint(dst, uint64(a.Meta.Entries))
		dst = appendBytes(dst, a.Meta.Smallest)
		dst = appendBytes(dst, a.Meta.Largest)
	}
	for _, d := range e.Deleted {
		dst = binary.AppendUvarint(dst, tagDeleteFile)
		dst = binary.AppendUvarint(dst, uint64(d.Level))
		dst = binary.AppendUvarint(dst, d.Num)
	}
	for _, num := range e.VlogAdded {
		dst = binary.AppendUvarint(dst, tagAddVlogSeg)
		dst = binary.AppendUvarint(dst, num)
	}
	for _, num := range e.VlogDeleted {
		dst = binary.AppendUvarint(dst, tagDelVlogSeg)
		dst = binary.AppendUvarint(dst, num)
	}
	for _, s := range e.VlogSealed {
		dst = binary.AppendUvarint(dst, tagSealVlogSeg)
		dst = binary.AppendUvarint(dst, s.Num)
		dst = binary.AppendUvarint(dst, s.Bytes)
	}
	for _, g := range e.VlogGarbage {
		dst = binary.AppendUvarint(dst, tagVlogGarbage)
		dst = binary.AppendUvarint(dst, g.Num)
		dst = binary.AppendUvarint(dst, g.Bytes)
	}
	return dst
}

// DecodeEdit parses a serialized edit.
func DecodeEdit(data []byte) (*Edit, error) {
	e := &Edit{}
	for len(data) > 0 {
		tag, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, ErrCorruptEdit
		}
		data = data[n:]
		switch tag {
		case tagLogNum, tagNextFileNum, tagLastTS:
			v, n := binary.Uvarint(data)
			if n <= 0 {
				return nil, ErrCorruptEdit
			}
			data = data[n:]
			switch tag {
			case tagLogNum:
				e.SetLogNum(v)
			case tagNextFileNum:
				e.SetNextFileNum(v)
			case tagLastTS:
				e.SetLastTS(v)
			}
		case tagAddFile:
			var a AddedFile
			vals := make([]uint64, 4)
			for i := range vals {
				v, n := binary.Uvarint(data)
				if n <= 0 {
					return nil, ErrCorruptEdit
				}
				vals[i] = v
				data = data[n:]
			}
			a.Level = int(vals[0])
			if a.Level < 0 || a.Level >= NumLevels {
				return nil, fmt.Errorf("%w: level %d", ErrCorruptEdit, a.Level)
			}
			a.Meta.Num = vals[1]
			a.Meta.Size = vals[2]
			a.Meta.Entries = int(vals[3])
			var ok bool
			if a.Meta.Smallest, data, ok = takeBytes(data); !ok {
				return nil, ErrCorruptEdit
			}
			if a.Meta.Largest, data, ok = takeBytes(data); !ok {
				return nil, ErrCorruptEdit
			}
			e.Added = append(e.Added, a)
		case tagDeleteFile:
			lvl, n := binary.Uvarint(data)
			if n <= 0 {
				return nil, ErrCorruptEdit
			}
			data = data[n:]
			num, n := binary.Uvarint(data)
			if n <= 0 {
				return nil, ErrCorruptEdit
			}
			data = data[n:]
			if lvl >= NumLevels {
				return nil, fmt.Errorf("%w: level %d", ErrCorruptEdit, lvl)
			}
			e.Deleted = append(e.Deleted, DeletedFile{Level: int(lvl), Num: num})
		case tagAddVlogSeg, tagDelVlogSeg:
			num, n := binary.Uvarint(data)
			if n <= 0 {
				return nil, ErrCorruptEdit
			}
			data = data[n:]
			if tag == tagAddVlogSeg {
				e.VlogAdded = append(e.VlogAdded, num)
			} else {
				e.VlogDeleted = append(e.VlogDeleted, num)
			}
		case tagSealVlogSeg, tagVlogGarbage:
			num, n := binary.Uvarint(data)
			if n <= 0 {
				return nil, ErrCorruptEdit
			}
			data = data[n:]
			b, n := binary.Uvarint(data)
			if n <= 0 {
				return nil, ErrCorruptEdit
			}
			data = data[n:]
			if tag == tagSealVlogSeg {
				e.VlogSealed = append(e.VlogSealed, VlogSegSize{Num: num, Bytes: b})
			} else {
				e.VlogGarbage = append(e.VlogGarbage, VlogSegSize{Num: num, Bytes: b})
			}
		default:
			return nil, fmt.Errorf("%w: unknown tag %d", ErrCorruptEdit, tag)
		}
	}
	return e, nil
}

func appendBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

func takeBytes(data []byte) (b, rest []byte, ok bool) {
	l, n := binary.Uvarint(data)
	if n <= 0 || l > uint64(len(data)-n) {
		return nil, nil, false
	}
	out := make([]byte, l)
	copy(out, data[n:n+int(l)])
	return out, data[n+int(l):], true
}
