package version

import (
	"testing"

	"clsm/internal/storage"
)

// TestCheckpointSetSnapshot: the checkpointed manifest + linked tables
// open as an independent Set with the same files at the same levels.
func TestCheckpointSetSnapshot(t *testing.T) {
	fs := storage.NewMemFS()
	s := testSet(t, fs)
	defer s.Close()
	var e Edit
	e.AddFile(0, writeTable(t, fs, s, 0, 49, 2))
	e.AddFile(1, writeTable(t, fs, s, 0, 99, 1))
	if err := s.LogAndApply(&e); err != nil {
		t.Fatal(err)
	}

	dst := storage.NewMemFS()
	n, err := s.Checkpoint(dst)
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if n != 2 {
		t.Fatalf("linked %d tables, want 2", n)
	}

	re, err := Open(dst, nil, Options{BaseLevelBytes: 64 << 10, TableFileSize: 16 << 10})
	if err != nil {
		t.Fatalf("open checkpoint: %v", err)
	}
	defer re.Close()
	v := re.Current()
	defer v.Unref()
	src := s.Current()
	defer src.Unref()
	for level := 0; level < NumLevels; level++ {
		if len(v.Levels[level]) != len(src.Levels[level]) {
			t.Fatalf("level %d: checkpoint has %d files, source %d",
				level, len(v.Levels[level]), len(src.Levels[level]))
		}
		for i, f := range v.Levels[level] {
			if f.Num != src.Levels[level][i].Num {
				t.Fatalf("level %d file %d: num %d != %d",
					level, i, f.Num, src.Levels[level][i].Num)
			}
			if _, err := dst.Open(TableFileName(f.Num)); err != nil {
				t.Fatalf("checkpoint missing table %d: %v", f.Num, err)
			}
		}
	}
	// The checkpoint's next-file counter must clear the source's at
	// checkpoint time, so file numbering never collides with the tables
	// it inherited.
	if re.NewFileNum() <= 2 {
		t.Fatal("checkpoint file counter overlaps inherited tables")
	}
}

// TestCheckpointPinDefersDeletion: a table made obsolete while pinned by
// a checkpoint survives until the pin drops, then the deferred deletion
// replays.
func TestCheckpointPinDefersDeletion(t *testing.T) {
	fs := storage.NewMemFS()
	s := testSet(t, fs)
	defer s.Close()
	fd := writeTable(t, fs, s, 0, 10, 1)
	var e Edit
	e.AddFile(0, fd)
	if err := s.LogAndApply(&e); err != nil {
		t.Fatal(err)
	}

	s.protect([]uint64{fd.Num})
	var del Edit
	del.DeleteFile(0, fd.Num)
	if err := s.LogAndApply(&del); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Open(TableFileName(fd.Num)); err != nil {
		t.Fatalf("pinned table deleted underneath checkpoint: %v", err)
	}
	s.unprotect([]uint64{fd.Num})
	if _, err := fs.Open(TableFileName(fd.Num)); err != storage.ErrNotExist {
		t.Fatalf("deferred deletion not replayed after unpin: %v", err)
	}
}
