package version

import (
	"fmt"
	"strings"
	"testing"

	"clsm/internal/keys"
	"clsm/internal/storage"
)

// The MANIFEST must be rewritten as a snapshot once it grows past the roll
// threshold, and the database must recover cleanly from the rolled file.
func TestManifestRollover(t *testing.T) {
	fs := storage.NewMemFS()
	s := testSet(t, fs)

	// Drive many edits; each add+delete pair leaves one live file but
	// appends two records to the manifest.
	live := writeTable(t, fs, s, 0, 9, 1)
	var e0 Edit
	e0.AddFile(1, live)
	if err := s.LogAndApply(&e0); err != nil {
		t.Fatal(err)
	}
	bigKey := strings.Repeat("x", 2048) // fat bounds inflate edit records
	for i := 0; i < 400; i++ {
		num := s.NewFileNum()
		var add Edit
		add.AddFile(2, FileDesc{
			Num: num, Size: 1, Entries: 1,
			Smallest: keys.Make([]byte(bigKey+fmt.Sprint(i)), 1, keys.KindValue),
			Largest:  keys.Make([]byte(bigKey+fmt.Sprint(i)), 1, keys.KindValue),
		})
		if err := s.LogAndApply(&add); err != nil {
			t.Fatal(err)
		}
		var del Edit
		del.DeleteFile(2, num)
		if err := s.LogAndApply(&del); err != nil {
			t.Fatal(err)
		}
	}

	// The manifest must have rolled at least once: only one MANIFEST file
	// remains and it is small (a snapshot, not 800 edits).
	names, _ := fs.List()
	var manifests []string
	for _, n := range names {
		if kind, _, ok := ParseFileName(n); ok && kind == KindManifest {
			manifests = append(manifests, n)
		}
	}
	if len(manifests) != 1 {
		t.Fatalf("expected exactly one manifest, got %v", manifests)
	}
	data, _ := fs.ReadFile(manifests[0])
	if len(data) > manifestRollSize {
		t.Fatalf("manifest did not roll: %d bytes", len(data))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery from the rolled manifest sees the live state.
	s2 := testSet(t, fs)
	defer s2.Close()
	v := s2.Current()
	defer v.Unref()
	if len(v.Levels[1]) != 1 || v.Levels[1][0].Num != live.Num {
		t.Fatalf("recovered state wrong: L1=%v", v.Levels[1])
	}
	if len(v.Levels[2]) != 0 {
		t.Fatalf("deleted files resurrected: L2 has %d", len(v.Levels[2]))
	}
}
