package version

import (
	"errors"

	"clsm/internal/storage"
	"clsm/internal/wal"
)

// Checkpoint materializes a consistent, independently openable image of
// the current version in dst: every live sstable linked (hard links when
// the media allow, copies otherwise), plus a fresh MANIFEST holding a
// single snapshot edit and a CURRENT pointing at it. The image carries no
// WAL — the caller is expected to flush the memtable first, so recovery
// on the checkpoint is a pure manifest replay.
//
// While the checkpoint is in flight its tables are pinned against
// obsolete-file deletion, so compactions proceed normally underneath it;
// deletions they trigger are deferred and replayed when the pin drops.
//
// The write order makes partial checkpoints detectable: CURRENT is
// written last, after the manifest and every table link succeeded, so a
// crash mid-checkpoint leaves a directory without CURRENT — which Open
// treats as an empty store, never as a silently truncated image.
//
// Checkpoint returns the number of tables linked.
func (s *Set) Checkpoint(dst storage.FS) (int, error) {
	// Pin a consistent (version, lastTS) pair under mu: lastTS only
	// grows, so reading it with the version guarantees it covers every
	// timestamp in the pinned tables.
	s.mu.Lock()
	v := s.current.Load()
	if v == nil {
		s.mu.Unlock()
		return 0, errors.New("version: checkpoint on closed set")
	}
	v.Ref()
	logNum := s.logNum
	lastTS := s.lastTS
	s.mu.Unlock()
	defer v.Unref()

	var nums []uint64
	for _, level := range v.Levels {
		for _, f := range level {
			nums = append(nums, f.Num)
		}
	}
	// Value-log segments are part of the image: pointers in the pinned
	// tables resolve into them. GC only retires a segment after the
	// relinked values are flushed into the disk component, so every
	// segment a pinned-version pointer references is still in the live
	// set here; pinning defers physical removal until the links land.
	vsegs := s.VlogSegments()
	var vnums []uint64
	for _, m := range vsegs {
		vnums = append(vnums, m.Num)
	}
	nums = append(nums, vnums...)
	s.protect(nums)
	defer s.unprotect(nums)

	// Snapshot manifest first (its name is allocated from the source's
	// counter, so checkpoint and source numbering never collide), then
	// the tables, then CURRENT.
	num := s.NewFileNum()
	name := ManifestFileName(num)
	f, err := dst.Create(name)
	if err != nil {
		return 0, err
	}
	w := wal.NewWriter(f, false)
	var snap Edit
	snap.SetNextFileNum(s.nextFile.Load())
	snap.SetLogNum(logNum)
	snap.SetLastTS(lastTS)
	for level := 0; level < NumLevels; level++ {
		for _, fm := range v.Levels[level] {
			snap.AddFile(level, fm.FileDesc)
		}
	}
	for _, m := range vsegs {
		snap.AddVlogSegment(m.Num)
		// Every segment is sealed in the image — the restored store never
		// appends to a recovered segment. The active segment's size is
		// whatever the link captures; recording its current size is only
		// a lower bound, so the restored open re-stats unsealed segments.
		if m.Sealed {
			snap.SealVlogSegment(m.Num, m.Size)
		}
		if m.Garbage > 0 {
			snap.AddVlogGarbage(m.Num, m.Garbage)
		}
	}
	if err := w.Append(snap.Encode(nil)); err != nil {
		w.Close()
		return 0, err
	}
	if err := w.Close(); err != nil {
		return 0, err
	}

	linked := 0
	for _, m := range vsegs {
		if err := s.fs.Link(VlogFileName(m.Num), dst, VlogFileName(m.Num)); err != nil {
			return linked, err
		}
	}
	for _, level := range v.Levels {
		for _, f := range level {
			if err := s.fs.Link(TableFileName(f.Num), dst, TableFileName(f.Num)); err != nil {
				return linked, err
			}
			linked++
		}
	}

	if err := dst.WriteFile(CurrentFileName, []byte(name+"\n")); err != nil {
		return linked, err
	}
	return linked, nil
}
