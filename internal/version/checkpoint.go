package version

import (
	"errors"

	"clsm/internal/storage"
	"clsm/internal/wal"
)

// Checkpoint materializes a consistent, independently openable image of
// the current version in dst: every live sstable linked (hard links when
// the media allow, copies otherwise), plus a fresh MANIFEST holding a
// single snapshot edit and a CURRENT pointing at it. The image carries no
// WAL — the caller is expected to flush the memtable first, so recovery
// on the checkpoint is a pure manifest replay.
//
// While the checkpoint is in flight its tables are pinned against
// obsolete-file deletion, so compactions proceed normally underneath it;
// deletions they trigger are deferred and replayed when the pin drops.
//
// The write order makes partial checkpoints detectable: CURRENT is
// written last, after the manifest and every table link succeeded, so a
// crash mid-checkpoint leaves a directory without CURRENT — which Open
// treats as an empty store, never as a silently truncated image.
//
// Checkpoint returns the number of tables linked.
func (s *Set) Checkpoint(dst storage.FS) (int, error) {
	// Pin a consistent (version, lastTS) pair under mu: lastTS only
	// grows, so reading it with the version guarantees it covers every
	// timestamp in the pinned tables.
	s.mu.Lock()
	v := s.current.Load()
	if v == nil {
		s.mu.Unlock()
		return 0, errors.New("version: checkpoint on closed set")
	}
	v.Ref()
	logNum := s.logNum
	lastTS := s.lastTS
	s.mu.Unlock()
	defer v.Unref()

	var nums []uint64
	for _, level := range v.Levels {
		for _, f := range level {
			nums = append(nums, f.Num)
		}
	}
	s.protect(nums)
	defer s.unprotect(nums)

	// Snapshot manifest first (its name is allocated from the source's
	// counter, so checkpoint and source numbering never collide), then
	// the tables, then CURRENT.
	num := s.NewFileNum()
	name := ManifestFileName(num)
	f, err := dst.Create(name)
	if err != nil {
		return 0, err
	}
	w := wal.NewWriter(f, false)
	var snap Edit
	snap.SetNextFileNum(s.nextFile.Load())
	snap.SetLogNum(logNum)
	snap.SetLastTS(lastTS)
	for level := 0; level < NumLevels; level++ {
		for _, fm := range v.Levels[level] {
			snap.AddFile(level, fm.FileDesc)
		}
	}
	if err := w.Append(snap.Encode(nil)); err != nil {
		w.Close()
		return 0, err
	}
	if err := w.Close(); err != nil {
		return 0, err
	}

	linked := 0
	for _, n := range nums {
		if err := s.fs.Link(TableFileName(n), dst, TableFileName(n)); err != nil {
			return linked, err
		}
		linked++
	}

	if err := dst.WriteFile(CurrentFileName, []byte(name+"\n")); err != nil {
		return linked, err
	}
	return linked, nil
}
