package version

import (
	"fmt"
	"sync"

	"clsm/internal/cache"
	"clsm/internal/sstable"
	"clsm/internal/storage"
)

// TableCache keeps SSTable readers open and shared between gets, scans, and
// compactions. Readers are immutable and internally thread-safe, so the
// cache only synchronizes the open/close bookkeeping.
type TableCache struct {
	fs     storage.FS
	blocks *cache.Cache

	mu     sync.RWMutex
	tables map[uint64]*sstable.Reader
}

// NewTableCache returns an empty cache over fs; blocks may be nil to
// disable block caching.
func NewTableCache(fs storage.FS, blocks *cache.Cache) *TableCache {
	return &TableCache{fs: fs, blocks: blocks, tables: make(map[uint64]*sstable.Reader)}
}

// Get returns the open reader for file num, opening it on first use.
func (tc *TableCache) Get(num uint64) (*sstable.Reader, error) {
	tc.mu.RLock()
	r, ok := tc.tables[num]
	tc.mu.RUnlock()
	if ok {
		return r, nil
	}
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if r, ok := tc.tables[num]; ok {
		return r, nil
	}
	src, err := tc.fs.Open(TableFileName(num))
	if err != nil {
		return nil, fmt.Errorf("version: open table %d: %w", num, err)
	}
	r, err = sstable.NewReader(src, num, tc.blocks)
	if err != nil {
		src.Close()
		return nil, err
	}
	tc.tables[num] = r
	return r, nil
}

// Evict closes the reader for file num and drops its cached blocks. Called
// when the file's last reference is gone, just before deletion.
func (tc *TableCache) Evict(num uint64) {
	tc.mu.Lock()
	r, ok := tc.tables[num]
	delete(tc.tables, num)
	tc.mu.Unlock()
	if ok {
		r.Close()
	}
	if tc.blocks != nil {
		tc.blocks.EvictFile(num)
	}
}

// Close releases every open reader.
func (tc *TableCache) Close() {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	for num, r := range tc.tables {
		r.Close()
		delete(tc.tables, num)
	}
}
