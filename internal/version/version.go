package version

import (
	"bytes"
	"sort"

	"clsm/internal/iterator"
	"clsm/internal/keys"
	"clsm/internal/syncutil"
)

// Version is one immutable snapshot of the leveled file set. Readers hold a
// reference while searching so compactions can retire files underneath
// them safely.
type Version struct {
	syncutil.RefCounted
	set *Set

	// Levels[0] is ordered newest file first (files may overlap);
	// Levels[1..] are ordered by Smallest with disjoint user-key ranges.
	Levels [NumLevels][]*FileMeta
}

func newVersion(s *Set) *Version {
	v := &Version{set: s}
	v.InitRef(func() {
		for _, level := range v.Levels {
			for _, f := range level {
				f.unref()
			}
		}
	})
	return v
}

// NumFiles returns the total file count (metrics).
func (v *Version) NumFiles() int {
	n := 0
	for _, l := range v.Levels {
		n += len(l)
	}
	return n
}

// SizeBytes returns the total on-disk byte volume.
func (v *Version) SizeBytes() uint64 {
	var n uint64
	for _, l := range v.Levels {
		for _, f := range l {
			n += f.Size
		}
	}
	return n
}

// Get searches the disk component for the newest visible version at seek
// key ikey (user key + read timestamp). kind discriminates the hit: a
// KindDelete tombstone terminates the whole lookup, a KindValuePtr's
// value bytes are an encoded vlog pointer the caller dereferences. ts is
// the timestamp of the version found (zero when found is false);
// transaction commit validation uses it to detect versions written after
// a snapshot even once they are flushed.
func (v *Version) Get(ikey []byte) (value []byte, ts uint64, kind keys.Kind, found bool, err error) {
	uk := keys.UserKey(ikey)
	var firstSeekFile *FileMeta
	firstSeekLevel := -1
	searched := 0

	search := func(f *FileMeta, level int) (done bool) {
		// Charge the seek-compaction budget: if a get touches more than
		// one file, the first file wastes a seek.
		searched++
		if searched == 2 && firstSeekFile != nil {
			if firstSeekFile.AllowedSeeks.Add(-1) == 0 {
				v.set.recordSeekCompaction(firstSeekFile, firstSeekLevel)
			}
		}
		if searched == 1 {
			firstSeekFile, firstSeekLevel = f, level
		}
		r, e := v.set.tables.Get(f.Num)
		if e != nil {
			err = e
			return true
		}
		val, vts, vkind, ok, e := r.Get(ikey)
		if e != nil {
			err = e
			return true
		}
		if !ok {
			return false
		}
		ts, kind, found = vts, vkind, true
		if vkind != keys.KindDelete {
			value = val
		}
		return true
	}

	// L0: files may overlap; newest first. Successive flushes carry
	// disjoint, increasing timestamp ranges per key (rotation is a write
	// barrier), so the first hit is the newest visible version.
	for _, f := range v.Levels[0] {
		if !f.overlapsUser(uk, uk) {
			continue
		}
		if search(f, 0) {
			return value, ts, kind, found, err
		}
	}
	for level := 1; level < NumLevels; level++ {
		files := v.Levels[level]
		i := sort.Search(len(files), func(i int) bool {
			return bytes.Compare(keys.UserKey(files[i].Largest), uk) >= 0
		})
		if i >= len(files) || !files[i].overlapsUser(uk, uk) {
			continue
		}
		if search(files[i], level) {
			return value, ts, kind, found, err
		}
	}
	return nil, 0, 0, false, nil
}

// ApproximateSize estimates the byte volume of tables overlapping the
// user-key range [start, end); nil end means unbounded. Fully contained
// files count in full, boundary files count half — a cheap estimate in the
// spirit of LevelDB's GetApproximateSizes.
func (v *Version) ApproximateSize(start, end []byte) uint64 {
	var hi []byte
	if end != nil {
		hi = end
	}
	var total uint64
	for _, level := range v.Levels {
		for _, f := range level {
			// overlapsUser's hi is inclusive; a file touching only the
			// exclusive end is still counted — at half weight below, which
			// keeps the estimate conservative.
			if !f.overlapsUser(start, hi) {
				continue
			}
			contained := (start == nil || bytes.Compare(keys.UserKey(f.Smallest), start) >= 0) &&
				(hi == nil || bytes.Compare(keys.UserKey(f.Largest), hi) < 0)
			if contained {
				total += f.Size
			} else {
				total += f.Size / 2
			}
		}
	}
	return total
}

// overlappingInputs returns the files in level whose user-key ranges
// intersect [lo, hi]. For level 0 the range is expanded transitively, since
// L0 files may mutually overlap.
func (v *Version) overlappingInputs(level int, lo, hi []byte) []*FileMeta {
	var out []*FileMeta
	for i := 0; i < len(v.Levels[level]); i++ {
		f := v.Levels[level][i]
		if !f.overlapsUser(lo, hi) {
			continue
		}
		out = append(out, f)
		if level == 0 {
			// Expand the range and restart if this file widens it.
			grew := false
			if fLo := keys.UserKey(f.Smallest); lo != nil && bytes.Compare(fLo, lo) < 0 {
				lo, grew = fLo, true
			}
			if fHi := keys.UserKey(f.Largest); hi != nil && bytes.Compare(fHi, hi) > 0 {
				hi, grew = fHi, true
			}
			if grew {
				out = out[:0]
				i = -1
			}
		}
	}
	return out
}

// Iterators appends, to dst, iterators that together cover the whole disk
// component: one per L0 file, one concatenating iterator per deeper level.
// The caller must hold a reference on v while using them.
func (v *Version) Iterators(dst []iterator.Iterator) ([]iterator.Iterator, error) {
	for _, f := range v.Levels[0] {
		r, err := v.set.tables.Get(f.Num)
		if err != nil {
			return dst, err
		}
		dst = append(dst, r.NewIterator())
	}
	for level := 1; level < NumLevels; level++ {
		if len(v.Levels[level]) > 0 {
			dst = append(dst, newLevelIter(v.set.tables, v.Levels[level]))
		}
	}
	return dst, nil
}

// IteratorsBounded is Iterators restricted to files overlapping the
// user-key range [lo, hi); nil means unbounded on that side. Whole
// sstables outside the bounds never open: L0 files are filtered by
// individual overlap, deeper (disjoint, sorted) levels are narrowed to the
// contiguous overlapping run by binary search. overlapsUser treats hi as
// inclusive, so the exclusive upper bound can admit at most one boundary
// file whose entries the bounded iterator clamps away.
func (v *Version) IteratorsBounded(dst []iterator.Iterator, lo, hi []byte) ([]iterator.Iterator, error) {
	if lo == nil && hi == nil {
		return v.Iterators(dst)
	}
	for _, f := range v.Levels[0] {
		if !f.overlapsUser(lo, hi) {
			continue
		}
		r, err := v.set.tables.Get(f.Num)
		if err != nil {
			return dst, err
		}
		dst = append(dst, r.NewIterator())
	}
	for level := 1; level < NumLevels; level++ {
		files := v.Levels[level]
		start := 0
		if lo != nil {
			start = sort.Search(len(files), func(i int) bool {
				return bytes.Compare(keys.UserKey(files[i].Largest), lo) >= 0
			})
		}
		end := len(files)
		if hi != nil {
			end = start + sort.Search(len(files)-start, func(i int) bool {
				return bytes.Compare(keys.UserKey(files[start+i].Smallest), hi) >= 0
			})
		}
		if end > start {
			dst = append(dst, newLevelIter(v.set.tables, files[start:end]))
		}
	}
	return dst, nil
}

// levelIter concatenates the file iterators of one disjoint level, opening
// each file lazily.
type levelIter struct {
	tables *TableCache
	files  []*FileMeta
	idx    int
	cur    iterator.Iterator
	err    error
}

func newLevelIter(tables *TableCache, files []*FileMeta) *levelIter {
	return &levelIter{tables: tables, files: files, idx: -1}
}

func (it *levelIter) open(i int) {
	it.idx = i
	it.cur = nil
	if i < 0 || i >= len(it.files) {
		return
	}
	r, err := it.tables.Get(it.files[i].Num)
	if err != nil {
		it.err = err
		return
	}
	it.cur = r.NewIterator()
}

func (it *levelIter) First() {
	if len(it.files) == 0 {
		return
	}
	it.open(0)
	if it.cur != nil {
		it.cur.First()
		it.skipForward()
	}
}

func (it *levelIter) SeekGE(ikey []byte) {
	uk := keys.UserKey(ikey)
	i := sort.Search(len(it.files), func(i int) bool {
		return bytes.Compare(keys.UserKey(it.files[i].Largest), uk) >= 0
	})
	// The file's Largest may equal uk with an older timestamp; comparing
	// full internal keys refines the choice.
	for i < len(it.files) && keys.Compare(it.files[i].Largest, ikey) < 0 {
		i++
	}
	if i >= len(it.files) {
		it.cur = nil
		it.idx = len(it.files)
		return
	}
	it.open(i)
	if it.cur != nil {
		it.cur.SeekGE(ikey)
		it.skipForward()
	}
}

func (it *levelIter) Next() {
	if it.cur == nil {
		return
	}
	it.cur.Next()
	it.skipForward()
}

func (it *levelIter) skipForward() {
	for it.err == nil && it.cur != nil && !it.cur.Valid() {
		if err := it.cur.Err(); err != nil {
			it.err = err
			it.cur = nil
			return
		}
		if it.idx+1 >= len(it.files) {
			it.cur = nil
			return
		}
		it.open(it.idx + 1)
		if it.cur != nil {
			it.cur.First()
		}
	}
}

// Last positions at the final entry of the level.
func (it *levelIter) Last() {
	if len(it.files) == 0 {
		return
	}
	it.open(len(it.files) - 1)
	if it.cur != nil {
		it.cur.(iterator.Bidirectional).Last()
		it.skipBackward()
	}
}

// Prev steps to the predecessor entry, crossing file boundaries.
func (it *levelIter) Prev() {
	if it.cur == nil {
		return
	}
	it.cur.(iterator.Bidirectional).Prev()
	it.skipBackward()
}

func (it *levelIter) skipBackward() {
	for it.err == nil && it.cur != nil && !it.cur.Valid() {
		if err := it.cur.Err(); err != nil {
			it.err = err
			it.cur = nil
			return
		}
		if it.idx == 0 {
			it.cur = nil
			it.idx = -1
			return
		}
		it.open(it.idx - 1)
		if it.cur != nil {
			it.cur.(iterator.Bidirectional).Last()
		}
	}
}

func (it *levelIter) Valid() bool {
	return it.err == nil && it.cur != nil && it.cur.Valid()
}
func (it *levelIter) Key() []byte   { return it.cur.Key() }
func (it *levelIter) Value() []byte { return it.cur.Value() }
func (it *levelIter) Err() error {
	if it.err != nil {
		return it.err
	}
	if it.cur != nil {
		return it.cur.Err()
	}
	return nil
}
