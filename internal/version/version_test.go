package version

import (
	"fmt"
	"sort"
	"testing"

	"clsm/internal/keys"
	"clsm/internal/sstable"
	"clsm/internal/storage"
)

func testSet(t *testing.T, fs storage.FS) *Set {
	t.Helper()
	s, err := Open(fs, nil, Options{
		BaseLevelBytes: 64 << 10,
		TableFileSize:  16 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// writeTable materializes a small SSTable and returns its descriptor.
func writeTable(t *testing.T, fs storage.FS, s *Set, lo, hi int, ts uint64) FileDesc {
	t.Helper()
	num := s.NewFileNum()
	f, err := fs.Create(TableFileName(num))
	if err != nil {
		t.Fatal(err)
	}
	w := sstable.NewWriter(f, sstable.WriterOptions{BloomBitsPerKey: 10})
	var smallest, largest []byte
	for i := lo; i <= hi; i++ {
		ik := keys.Make([]byte(fmt.Sprintf("k%04d", i)), ts, keys.KindValue)
		if smallest == nil {
			smallest = append([]byte(nil), ik...)
		}
		largest = append(largest[:0], ik...)
		if err := w.Add(ik, []byte(fmt.Sprintf("v%d@%d", i, ts))); err != nil {
			t.Fatal(err)
		}
	}
	meta, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return FileDesc{
		Num: num, Size: meta.Size, Entries: meta.Entries,
		Smallest: append([]byte(nil), smallest...),
		Largest:  append([]byte(nil), largest...),
	}
}

func TestFileNames(t *testing.T) {
	cases := []struct {
		name string
		kind FileKind
		num  uint64
		ok   bool
	}{
		{"000012.sst", KindTable, 12, true},
		{"000003.log", KindLog, 3, true},
		{"MANIFEST-000007", KindManifest, 7, true},
		{"CURRENT", KindCurrent, 0, true},
		{"garbage", 0, 0, false},
		{"000012.tmp", 0, 0, false},
	}
	for _, c := range cases {
		kind, num, ok := ParseFileName(c.name)
		if ok != c.ok || (ok && (kind != c.kind || num != c.num)) {
			t.Errorf("ParseFileName(%q) = %v,%d,%v", c.name, kind, num, ok)
		}
	}
	if TableFileName(12) != "000012.sst" || LogFileName(3) != "000003.log" {
		t.Error("file name round trip broken")
	}
}

func TestEditEncodeDecodeRoundTrip(t *testing.T) {
	var e Edit
	e.SetLogNum(9)
	e.SetNextFileNum(42)
	e.SetLastTS(1 << 40)
	e.AddFile(2, FileDesc{Num: 7, Size: 1234, Entries: 56,
		Smallest: keys.Make([]byte("a"), 1, keys.KindValue),
		Largest:  keys.Make([]byte("z"), 9, keys.KindValue)})
	e.DeleteFile(1, 3)

	dec, err := DecodeEdit(e.Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if dec.LogNum != 9 || dec.NextFileNum != 42 || dec.LastTS != 1<<40 {
		t.Fatalf("scalar fields: %+v", dec)
	}
	if len(dec.Added) != 1 || dec.Added[0].Level != 2 || dec.Added[0].Meta.Num != 7 ||
		dec.Added[0].Meta.Size != 1234 || dec.Added[0].Meta.Entries != 56 {
		t.Fatalf("added: %+v", dec.Added)
	}
	if len(dec.Deleted) != 1 || dec.Deleted[0] != (DeletedFile{Level: 1, Num: 3}) {
		t.Fatalf("deleted: %+v", dec.Deleted)
	}
}

func TestEditDecodeCorrupt(t *testing.T) {
	for i, bad := range [][]byte{
		{99},             // unknown tag
		{tagLogNum},      // missing value
		{tagAddFile, 50}, // level out of range (after more fields) — truncated
	} {
		if _, err := DecodeEdit(bad); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestLogAndApplyAndRecover(t *testing.T) {
	fs := storage.NewMemFS()
	s := testSet(t, fs)
	fd1 := writeTable(t, fs, s, 0, 99, 10)
	fd2 := writeTable(t, fs, s, 100, 199, 10)

	var e Edit
	e.AddFile(0, fd1)
	e.AddFile(1, fd2)
	e.SetLogNum(5)
	e.SetLastTS(777)
	if err := s.LogAndApply(&e); err != nil {
		t.Fatal(err)
	}
	v := s.Current()
	if len(v.Levels[0]) != 1 || len(v.Levels[1]) != 1 {
		t.Fatalf("levels: %d/%d", len(v.Levels[0]), len(v.Levels[1]))
	}
	if v.NumFiles() != 2 || v.SizeBytes() == 0 {
		t.Fatalf("NumFiles=%d Size=%d", v.NumFiles(), v.SizeBytes())
	}
	v.Unref()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Recover from the manifest.
	s2 := testSet(t, fs)
	defer s2.Close()
	if s2.LogNum() != 5 || s2.LastTS() != 777 {
		t.Fatalf("recovered LogNum=%d LastTS=%d", s2.LogNum(), s2.LastTS())
	}
	v2 := s2.Current()
	defer v2.Unref()
	if v2.NumFiles() != 2 {
		t.Fatalf("recovered NumFiles = %d", v2.NumFiles())
	}
	// Reads must work after recovery.
	val, _, kind, found, err := v2.Get(keys.SeekKey([]byte("k0150"), keys.MaxTimestamp))
	if err != nil || !found || kind == keys.KindDelete || string(val) != "v150@10" {
		t.Fatalf("Get after recovery = %q,%v,%v,%v", val, kind, found, err)
	}
}

func TestVersionGetSemantics(t *testing.T) {
	fs := storage.NewMemFS()
	s := testSet(t, fs)
	defer s.Close()
	// L0: two overlapping files; the newer one (higher num) has newer ts.
	old := writeTable(t, fs, s, 0, 50, 10)
	newer := writeTable(t, fs, s, 25, 75, 20)
	var e Edit
	e.AddFile(0, old)
	e.AddFile(0, newer)
	if err := s.LogAndApply(&e); err != nil {
		t.Fatal(err)
	}
	v := s.Current()
	defer v.Unref()

	// Key in both files: newest version wins, and its timestamp is surfaced
	// (the commit-validation path depends on it).
	val, ts, _, found, err := v.Get(keys.SeekKey([]byte("k0030"), keys.MaxTimestamp))
	if err != nil || !found || string(val) != "v30@20" {
		t.Fatalf("Get = %q,%v,%v", val, found, err)
	}
	if ts != 20 {
		t.Fatalf("Get ts = %d, want 20", ts)
	}
	// Timestamp-bounded read sees the old version.
	val, ts, _, found, _ = v.Get(keys.SeekKey([]byte("k0030"), 15))
	if !found || string(val) != "v30@10" {
		t.Fatalf("Get@15 = %q,%v", val, found)
	}
	if ts != 10 {
		t.Fatalf("Get@15 ts = %d, want 10", ts)
	}
	// Key only in the old file.
	val, _, _, found, _ = v.Get(keys.SeekKey([]byte("k0010"), keys.MaxTimestamp))
	if !found || string(val) != "v10@10" {
		t.Fatalf("Get(k0010) = %q,%v", val, found)
	}
	// Absent key.
	if _, _, _, found, _ := v.Get(keys.SeekKey([]byte("zzz"), keys.MaxTimestamp)); found {
		t.Fatal("absent key found")
	}
}

func TestOverlappingInputsL0Transitive(t *testing.T) {
	fs := storage.NewMemFS()
	s := testSet(t, fs)
	defer s.Close()
	// Three L0 files: [0,10], [8,20], [18,30] — seeding from [0,10] must
	// transitively pull in all three.
	var e Edit
	e.AddFile(0, writeTable(t, fs, s, 0, 10, 1))
	e.AddFile(0, writeTable(t, fs, s, 8, 20, 2))
	e.AddFile(0, writeTable(t, fs, s, 18, 30, 3))
	if err := s.LogAndApply(&e); err != nil {
		t.Fatal(err)
	}
	v := s.Current()
	defer v.Unref()
	got := v.overlappingInputs(0, []byte("k0000"), []byte("k0010"))
	if len(got) != 3 {
		t.Fatalf("transitive expansion found %d files, want 3", len(got))
	}
}

func TestPickCompactionL0Trigger(t *testing.T) {
	fs := storage.NewMemFS()
	s, err := Open(fs, nil, Options{L0CompactionTrigger: 2, BaseLevelBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.NeedsCompaction() {
		t.Fatal("empty set needs compaction")
	}
	if c := s.PickCompaction(); c != nil {
		t.Fatal("picked compaction on empty set")
	}
	var e Edit
	e.AddFile(0, writeTable(t, fs, s, 0, 10, 1))
	e.AddFile(0, writeTable(t, fs, s, 5, 15, 2))
	if err := s.LogAndApply(&e); err != nil {
		t.Fatal(err)
	}
	if !s.NeedsCompaction() {
		t.Fatal("L0 at trigger but NeedsCompaction is false")
	}
	c := s.PickCompaction()
	if c == nil || c.Level != 0 || len(c.Inputs[0]) != 2 {
		t.Fatalf("pick = %+v", c)
	}
	if c.TrivialMove() {
		t.Fatal("L0 compaction must not be a trivial move")
	}
	if c.InputBytes() == 0 {
		t.Fatal("InputBytes = 0")
	}
	c.Release()
}

func TestPickCompactionFilteredSkips(t *testing.T) {
	fs := storage.NewMemFS()
	s, err := Open(fs, nil, Options{L0CompactionTrigger: 1, BaseLevelBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var e Edit
	e.AddFile(0, writeTable(t, fs, s, 0, 10, 1))
	if err := s.LogAndApply(&e); err != nil {
		t.Fatal(err)
	}
	if c := s.PickCompactionFiltered(func(level int) bool { return level == 0 }); c != nil {
		t.Fatal("filter ignored")
	}
	if c := s.PickCompactionFiltered(func(level int) bool { return level == 1 }); c != nil {
		t.Fatal("level+1 filter ignored")
	}
	c := s.PickCompactionFiltered(func(level int) bool { return level > 1 })
	if c == nil {
		t.Fatal("unrelated filter blocked pick")
	}
	c.Release()
}

func TestMaxBytesForLevelGeometric(t *testing.T) {
	fs := storage.NewMemFS()
	s, err := Open(fs, nil, Options{BaseLevelBytes: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	want := []int64{10, 10, 100, 1000}
	for l := 1; l < 4; l++ {
		if got := s.MaxBytesForLevel(l); got != want[l] {
			t.Errorf("MaxBytesForLevel(%d) = %d, want %d", l, got, want[l])
		}
	}
}

func TestObsoleteFileDeletedOnlyWhenUnreferenced(t *testing.T) {
	fs := storage.NewMemFS()
	s := testSet(t, fs)
	defer s.Close()
	fd := writeTable(t, fs, s, 0, 10, 1)
	var e Edit
	e.AddFile(0, fd)
	if err := s.LogAndApply(&e); err != nil {
		t.Fatal(err)
	}
	// A reader pins the version containing the file.
	pinned := s.Current()

	var del Edit
	del.DeleteFile(0, fd.Num)
	if err := s.LogAndApply(&del); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Open(TableFileName(fd.Num)); err != nil {
		t.Fatal("file deleted while a version still references it")
	}
	pinned.Unref()
	if _, err := fs.Open(TableFileName(fd.Num)); err != storage.ErrNotExist {
		t.Fatalf("file not deleted after last reference: %v", err)
	}
}

func TestLevelIteratorConcatenation(t *testing.T) {
	fs := storage.NewMemFS()
	s := testSet(t, fs)
	defer s.Close()
	var e Edit
	e.AddFile(1, writeTable(t, fs, s, 0, 49, 1))
	e.AddFile(1, writeTable(t, fs, s, 50, 99, 1))
	e.AddFile(1, writeTable(t, fs, s, 100, 149, 1))
	if err := s.LogAndApply(&e); err != nil {
		t.Fatal(err)
	}
	v := s.Current()
	defer v.Unref()
	its, err := v.Iterators(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(its) != 1 {
		t.Fatalf("disjoint level should yield 1 concat iterator, got %d", len(its))
	}
	it := its[0]
	var seen []string
	for it.First(); it.Valid(); it.Next() {
		seen = append(seen, string(keys.UserKey(it.Key())))
	}
	if len(seen) != 150 || !sort.StringsAreSorted(seen) {
		t.Fatalf("concat iterator saw %d keys (sorted=%v)", len(seen), sort.StringsAreSorted(seen))
	}
	it.SeekGE(keys.SeekKey([]byte("k0120"), keys.MaxTimestamp))
	if !it.Valid() || string(keys.UserKey(it.Key())) != "k0120" {
		t.Fatalf("SeekGE across files landed on %s", it.Key())
	}
}

func TestCleanupObsoleteRemovesStrays(t *testing.T) {
	fs := storage.NewMemFS()
	s := testSet(t, fs)
	// A stray table not referenced by any edit (crash leftover).
	stray := writeTable(t, fs, s, 0, 5, 1)
	s.Close()

	s2 := testSet(t, fs) // recovery runs cleanupObsolete
	defer s2.Close()
	if _, err := fs.Open(TableFileName(stray.Num)); err != storage.ErrNotExist {
		t.Fatalf("stray table survived recovery: %v", err)
	}
}
