// Package version manages the disk component (the paper's Cd): the leveled
// set of SSTable files, durable MANIFEST edits describing how it evolves,
// reference-counted Version snapshots of the file set, and compaction
// picking. A Version is immutable once published, so readers acquire it
// with the same RCU-style reference protocol as memtables.
package version

import (
	"fmt"
	"sync/atomic"

	"clsm/internal/keys"
)

// NumLevels is the depth of the level hierarchy (matches LevelDB and the
// paper's 6-level Fig. 11 configuration, plus L0).
const NumLevels = 7

// FileDesc is the durable description of one SSTable, as persisted in
// MANIFEST edits.
type FileDesc struct {
	Num      uint64
	Size     uint64
	Entries  int
	Smallest []byte // internal key bounds
	Largest  []byte
}

// FileMeta is a FileDesc plus runtime state. Instances are shared across
// Versions and reference-counted; the last release deletes the file from
// disk.
type FileMeta struct {
	FileDesc

	refs     atomic.Int32
	obsolete atomic.Bool // retired from the live version; delete on last unref
	deleter  func(*FileMeta)
	// AllowedSeeks implements LevelDB's seek-triggered compaction budget.
	AllowedSeeks atomic.Int64
}

func (f *FileMeta) ref() { f.refs.Add(1) }

// unref releases one reference. The backing file is removed only when the
// file has been retired from the live version (obsolete) AND no reader can
// still touch it — dropping references at engine shutdown must not delete
// live data.
func (f *FileMeta) unref() {
	if n := f.refs.Add(-1); n == 0 {
		if f.deleter != nil && f.obsolete.Load() {
			f.deleter(f)
		}
	} else if n < 0 {
		panic("version: negative file refcount")
	}
}

// markObsolete flags the file for deletion once its last reference drops.
func (f *FileMeta) markObsolete() { f.obsolete.Store(true) }

// overlapsUser reports whether the file's user-key range intersects
// [lo, hi] (nil bounds are unbounded).
func (f *FileMeta) overlapsUser(lo, hi []byte) bool {
	if hi != nil && string(keys.UserKey(f.Smallest)) > string(hi) {
		return false
	}
	if lo != nil && string(keys.UserKey(f.Largest)) < string(lo) {
		return false
	}
	return true
}

func (f *FileMeta) String() string {
	return fmt.Sprintf("#%d[%s..%s]", f.Num, keys.String(f.Smallest), keys.String(f.Largest))
}

// FileName helpers: every engine artifact lives in one flat directory.

// TableFileName returns the name of SSTable num.
func TableFileName(num uint64) string { return fmt.Sprintf("%06d.sst", num) }

// LogFileName returns the name of WAL num.
func LogFileName(num uint64) string { return fmt.Sprintf("%06d.log", num) }

// VlogFileName returns the name of value-log segment num.
func VlogFileName(num uint64) string { return fmt.Sprintf("%06d.vlg", num) }

// ManifestFileName returns the name of manifest num.
func ManifestFileName(num uint64) string { return fmt.Sprintf("MANIFEST-%06d", num) }

// CurrentFileName is the pointer file naming the live manifest.
const CurrentFileName = "CURRENT"

// ParseFileName recognizes engine file names, returning the kind and number.
func ParseFileName(name string) (kind FileKind, num uint64, ok bool) {
	switch {
	case name == CurrentFileName:
		return KindCurrent, 0, true
	case len(name) > 9 && name[:9] == "MANIFEST-":
		if _, err := fmt.Sscanf(name[9:], "%d", &num); err == nil {
			return KindManifest, num, true
		}
	case len(name) == 10 && name[6:] == ".sst":
		if _, err := fmt.Sscanf(name[:6], "%d", &num); err == nil {
			return KindTable, num, true
		}
	case len(name) == 10 && name[6:] == ".log":
		if _, err := fmt.Sscanf(name[:6], "%d", &num); err == nil {
			return KindLog, num, true
		}
	case len(name) == 10 && name[6:] == ".vlg":
		if _, err := fmt.Sscanf(name[:6], "%d", &num); err == nil {
			return KindValueLog, num, true
		}
	}
	return 0, 0, false
}

// FileKind classifies engine files.
type FileKind int

// File kinds recognized by ParseFileName.
const (
	KindCurrent FileKind = iota
	KindManifest
	KindTable
	KindLog
	KindValueLog
)
