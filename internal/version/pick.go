package version

import (
	"bytes"

	"clsm/internal/keys"
)

// Compaction describes one unit of background merge work: the files of
// Level and the overlapping files of Level+1. The embedded Version is
// referenced and must be released via Release.
type Compaction struct {
	Level   int
	Inputs  [2][]*FileMeta
	Version *Version
}

// Release drops the version reference held by the compaction.
func (c *Compaction) Release() {
	if c.Version != nil {
		c.Version.Unref()
		c.Version = nil
	}
}

// TrivialMove reports whether the compaction can be satisfied by moving a
// single input file down one level without rewriting it.
func (c *Compaction) TrivialMove() bool {
	return c.Level > 0 && len(c.Inputs[0]) == 1 && len(c.Inputs[1]) == 0
}

// InputBytes totals the byte volume to be read.
func (c *Compaction) InputBytes() uint64 {
	var n uint64
	for _, side := range c.Inputs {
		for _, f := range side {
			n += f.Size
		}
	}
	return n
}

// IsBaseLevelForKey reports that no level below the compaction output
// contains the user key, allowing deletion markers to be dropped.
func (c *Compaction) IsBaseLevelForKey(uk []byte) bool {
	for level := c.Level + 2; level < NumLevels; level++ {
		for _, f := range c.Version.Levels[level] {
			if f.overlapsUser(uk, uk) {
				return false
			}
		}
	}
	return true
}

// MaxBytesForLevel returns the byte budget of a level (10x per level, as in
// LevelDB and the paper's 6-level configuration).
func (s *Set) MaxBytesForLevel(level int) int64 {
	max := s.opts.BaseLevelBytes
	for l := 1; l < level; l++ {
		max *= 10
	}
	return max
}

// Score computes the compaction urgency of each level in v; values >= 1
// demand work. Exposed for tests and metrics.
func (s *Set) Score(v *Version, level int) float64 {
	if level == 0 {
		return float64(len(v.Levels[0])) / float64(s.opts.L0CompactionTrigger)
	}
	var bytes int64
	for _, f := range v.Levels[level] {
		bytes += int64(f.Size)
	}
	return float64(bytes) / float64(s.MaxBytesForLevel(level))
}

// NeedsCompaction reports whether any level's score reaches 1 or a seek
// hint is pending.
func (s *Set) NeedsCompaction() bool {
	v := s.Current()
	if v == nil {
		return false
	}
	defer v.Unref()
	for level := 0; level < NumLevels-1; level++ {
		if s.Score(v, level) >= 1 {
			return true
		}
	}
	return s.pendingSeeks.Len() > 0
}

// PickCompaction selects the most urgent compaction, or nil when the tree
// is in shape. The returned compaction holds a version reference.
func (s *Set) PickCompaction() *Compaction {
	return s.PickCompactionFiltered(nil)
}

// PickCompactionFiltered is PickCompaction restricted to levels for which
// skip returns false (both the input level and the level below must be
// free). Multi-threaded compaction schedulers use the filter to keep
// concurrent compactions on disjoint level pairs.
func (s *Set) PickCompactionFiltered(skip func(level int) bool) *Compaction {
	blocked := func(level int) bool {
		return skip != nil && (skip(level) || skip(level+1))
	}
	v := s.Current()
	if v == nil {
		return nil
	}
	bestLevel, bestScore := -1, 0.99
	for level := 0; level < NumLevels-1; level++ {
		if blocked(level) {
			continue
		}
		if sc := s.Score(v, level); sc > bestScore {
			bestLevel, bestScore = level, sc
		}
	}
	if bestLevel < 0 {
		// Fall back to a pending seek-triggered compaction.
		for {
			hint, ok := s.pendingSeeks.Dequeue()
			if !ok {
				break
			}
			if hint.level >= NumLevels-1 || blocked(hint.level) {
				continue
			}
			// The file must still be live at that level.
			for _, f := range v.Levels[hint.level] {
				if f == hint.file {
					return s.buildCompaction(v, hint.level, []*FileMeta{f})
				}
			}
		}
		v.Unref()
		return nil
	}

	seeds := s.seedsForLevel(v, bestLevel)
	if len(seeds) == 0 {
		v.Unref()
		return nil
	}
	return s.buildCompaction(v, bestLevel, seeds)
}

// seedsForLevel selects the input seed files for a compaction at level: all
// of L0 (its files overlap; the trigger bounds the count), or the next file
// past the round-robin pointer for deeper levels so every key range is
// eventually compacted.
func (s *Set) seedsForLevel(v *Version, level int) []*FileMeta {
	var seeds []*FileMeta
	if level == 0 {
		return append(seeds, v.Levels[0]...)
	}
	s.mu.Lock()
	ptr := s.compactPtr[level]
	s.mu.Unlock()
	files := v.Levels[level]
	for _, f := range files {
		if ptr == nil || keys.Compare(f.Largest, ptr) > 0 {
			seeds = append(seeds, f)
			break
		}
	}
	if len(seeds) == 0 && len(files) > 0 {
		seeds = append(seeds, files[0]) // wrap around
	}
	return seeds
}

// PickCompactionAt builds the compaction for one specific level, or nil
// when the level's score no longer demands work (the backlog drained
// between planning and execution) or the level is out of range. This is
// the execution half of the plan/run split: the scheduler orders levels by
// their planned scores, and the job re-picks concrete inputs at run time
// against the then-current version. The returned compaction holds a
// version reference.
func (s *Set) PickCompactionAt(level int) *Compaction {
	if level < 0 || level >= NumLevels-1 {
		return nil
	}
	v := s.Current()
	if v == nil {
		return nil
	}
	if s.Score(v, level) <= 0.99 {
		v.Unref()
		return nil
	}
	seeds := s.seedsForLevel(v, level)
	if len(seeds) == 0 {
		v.Unref()
		return nil
	}
	return s.buildCompaction(v, level, seeds)
}

// PickSeekCompaction dequeues pending seek hints until one names a file
// still live at its level whose level pair is not blocked, and builds a
// single-file compaction for it. Hints for dead files or blocked levels
// are dropped (the seek budget refills; a still-hot file will re-trigger).
// blocked is consulted for both the input level and the level below; nil
// means nothing is blocked.
func (s *Set) PickSeekCompaction(blocked func(level int) bool) *Compaction {
	v := s.Current()
	if v == nil {
		return nil
	}
	for {
		hint, ok := s.pendingSeeks.Dequeue()
		if !ok {
			break
		}
		if hint.level >= NumLevels-1 {
			continue
		}
		if blocked != nil && (blocked(hint.level) || blocked(hint.level+1)) {
			continue
		}
		for _, f := range v.Levels[hint.level] {
			if f == hint.file {
				return s.buildCompaction(v, hint.level, []*FileMeta{f})
			}
		}
	}
	v.Unref()
	return nil
}

// PendingSeeks reports the number of queued seek-compaction hints.
func (s *Set) PendingSeeks() int { return s.pendingSeeks.Len() }

// DebtBytes estimates the byte volume of compaction work pending at level:
// the whole of L0 once it reaches the compaction trigger (every L0 byte
// must be rewritten to reach L1), or the overage past the level's byte
// budget for deeper levels. This is the per-level component of the debt
// signal driving write admission.
func (s *Set) DebtBytes(v *Version, level int) uint64 {
	if level == 0 {
		if len(v.Levels[0]) < s.opts.L0CompactionTrigger {
			return 0
		}
		var n uint64
		for _, f := range v.Levels[0] {
			n += f.Size
		}
		return n
	}
	var total int64
	for _, f := range v.Levels[level] {
		total += int64(f.Size)
	}
	if over := total - s.MaxBytesForLevel(level); over > 0 {
		return uint64(over)
	}
	return 0
}

// buildCompaction completes input selection: expand L0 seeds transitively,
// then pull in the overlapping files one level down. Takes ownership of
// the version reference.
func (s *Set) buildCompaction(v *Version, level int, seeds []*FileMeta) *Compaction {
	lo, hi := userRange(seeds)
	inputs0 := seeds
	if level == 0 {
		inputs0 = v.overlappingInputs(0, lo, hi)
		lo, hi = userRange(inputs0)
	}
	inputs1 := v.overlappingInputs(level+1, lo, hi)

	c := &Compaction{Level: level, Version: v}
	c.Inputs[0] = inputs0
	c.Inputs[1] = inputs1

	// Advance the round-robin pointer past this range.
	if level > 0 {
		s.mu.Lock()
		s.compactPtr[level] = append([]byte(nil), maxLargest(inputs0)...)
		s.mu.Unlock()
	}
	return c
}

// PickForcedCompaction builds a compaction over every file at level,
// regardless of score (CompactRange's level-by-level sweep). Returns nil
// when the level is empty or out of range.
func (s *Set) PickForcedCompaction(level int) *Compaction {
	if level < 0 || level >= NumLevels-1 {
		return nil
	}
	v := s.Current()
	if v == nil {
		return nil
	}
	if len(v.Levels[level]) == 0 {
		v.Unref()
		return nil
	}
	seeds := append([]*FileMeta(nil), v.Levels[level]...)
	return s.buildCompaction(v, level, seeds)
}

func userRange(files []*FileMeta) (lo, hi []byte) {
	for _, f := range files {
		if s := keys.UserKey(f.Smallest); lo == nil || bytes.Compare(s, lo) < 0 {
			lo = s
		}
		if l := keys.UserKey(f.Largest); hi == nil || bytes.Compare(l, hi) > 0 {
			hi = l
		}
	}
	return lo, hi
}

func maxLargest(files []*FileMeta) []byte {
	var out []byte
	for _, f := range files {
		if out == nil || keys.Compare(f.Largest, out) > 0 {
			out = f.Largest
		}
	}
	return out
}
