package version

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"clsm/internal/cache"
	"clsm/internal/keys"
	"clsm/internal/storage"
	"clsm/internal/syncutil"
	"clsm/internal/wal"
)

// Options tunes the shape of the disk component.
type Options struct {
	// L0CompactionTrigger is the L0 file count that starts a compaction.
	L0CompactionTrigger int
	// BaseLevelBytes is the byte budget of L1; each deeper level gets 10x.
	BaseLevelBytes int64
	// TableFileSize caps compaction output files.
	TableFileSize int64
	// BlockSize is the SSTable block size.
	BlockSize int
	// BloomBitsPerKey sizes table filters (0 disables).
	BloomBitsPerKey int
	// Compress enables DEFLATE compression of SSTable data blocks.
	Compress bool
	// AllowSeekCompaction enables LevelDB's read-triggered compactions.
	AllowSeekCompaction bool
}

// WithDefaults fills unset fields with LevelDB-like values.
func (o Options) WithDefaults() Options {
	if o.L0CompactionTrigger <= 0 {
		o.L0CompactionTrigger = 4
	}
	if o.BaseLevelBytes <= 0 {
		o.BaseLevelBytes = 10 << 20
	}
	if o.TableFileSize <= 0 {
		o.TableFileSize = 2 << 20
	}
	if o.BlockSize <= 0 {
		o.BlockSize = 4 << 10
	}
	return o
}

// Set owns the current Version, the MANIFEST, and file-number allocation.
type Set struct {
	fs     storage.FS
	opts   Options
	tables *TableCache

	// current is the published Version; readers use syncutil.Acquire.
	current atomic.Pointer[Version]

	// l0 mirrors len(current.Levels[0]), updated at every version install,
	// so write-path backpressure checks (makeRoomForWrite) read one atomic
	// instead of taking a version reference per write.
	l0 atomic.Int32

	mu          sync.Mutex // serializes LogAndApply and manifest writes
	manifest    *wal.Writer
	manifestNum uint64
	// manifestDirty is set when a manifest append or sync fails: the file
	// tail may hold a torn (or complete but unsynced) record for an edit
	// that was never installed. Appending more records behind it would let
	// a later sync make that stale tail durable, so the next LogAndApply
	// must first roll to a fresh manifest snapshotted from the installed
	// state. Guarded by mu.
	manifestDirty bool
	nextFile      atomic.Uint64
	logNum        uint64 // WALs below this are fully merged
	lastTS        uint64 // recovered timestamp high-water mark
	compactPtr    [NumLevels][]byte
	pendingSeeks  *syncutil.Queue[seekHint]

	// orphans counts unreferenced files deleted during Open (crash
	// leftovers: sstables written but never installed, superseded
	// manifests). tornTails counts manifests whose final record was cut
	// short by a crash and logically truncated during recovery. The
	// engine folds both into obs on startup.
	orphans   atomic.Uint64
	tornTails atomic.Uint64

	// protMu guards the checkpoint pins: protected maps a table number to
	// the count of in-flight checkpoints linking it, and deferred records
	// tables whose obsolete-deletion fired while pinned — the delete is
	// replayed when the last pin drops. deleteFile runs on arbitrary
	// unref paths (some already under s.mu), so the pins take their own
	// lock.
	protMu    sync.Mutex
	protected map[uint64]int
	deferred  map[uint64]bool
	// deferredVlog mirrors deferred for value-log segments: a retired
	// segment whose physical removal fired while a checkpoint pinned it.
	deferredVlog map[uint64]bool

	// vlogMu guards vlogSegs, the durable value-log segment set recovered
	// from (and maintained through) manifest edits. It is a leaf lock:
	// builder.apply takes it while holding mu, accessors take it alone.
	vlogMu   sync.Mutex
	vlogSegs map[uint64]*VlogSegMeta
}

// VlogSegMeta is the manifest-recorded state of one value-log segment.
type VlogSegMeta struct {
	Num     uint64
	Size    uint64 // final size once sealed; 0 while the segment is active
	Garbage uint64 // dead bytes accumulated by compaction drop accounting
	Sealed  bool
}

type seekHint struct {
	file  *FileMeta
	level int
}

// Open recovers (or initializes) the version state in fs.
func Open(fs storage.FS, blocks *cache.Cache, opts Options) (*Set, error) {
	s := &Set{
		fs:           fs,
		opts:         opts.WithDefaults(),
		tables:       NewTableCache(fs, blocks),
		pendingSeeks: syncutil.NewQueue[seekHint](),
		protected:    map[uint64]int{},
		deferred:     map[uint64]bool{},
		deferredVlog: map[uint64]bool{},
		vlogSegs:     map[uint64]*VlogSegMeta{},
	}
	cur, err := fs.ReadFile(CurrentFileName)
	if err == storage.ErrNotExist {
		return s, s.createFresh()
	}
	if err != nil {
		return nil, err
	}
	return s, s.recover(strings.TrimSpace(string(cur)))
}

func (s *Set) createFresh() error {
	v := newVersion(s)
	s.current.Store(v)
	if err := s.rollManifest(); err != nil {
		return err
	}
	// A crash between writing an sstable (or manifest) and making CURRENT
	// durable leaves orphans in a directory with no CURRENT; sweep them so
	// they cannot collide with freshly allocated file numbers.
	s.cleanupObsolete()
	return nil
}

// recover replays the named manifest into a fresh Version.
func (s *Set) recover(manifestName string) error {
	src, err := s.fs.Open(manifestName)
	if err != nil {
		return fmt.Errorf("version: open manifest %q: %w", manifestName, err)
	}
	defer src.Close()

	var b builder
	b.init(s)
	r := wal.NewReader(src)
	sawAny := false
	for {
		rec, err := r.Next()
		if err == io.EOF {
			if _, torn := r.TornTail(); torn {
				s.tornTails.Add(1)
			}
			break
		}
		if err != nil {
			return fmt.Errorf("version: read manifest: %w", err)
		}
		edit, err := DecodeEdit(rec)
		if err != nil {
			return err
		}
		b.apply(edit)
		sawAny = true
	}
	if !sawAny {
		return fmt.Errorf("version: empty manifest %q", manifestName)
	}
	v := b.finish()
	s.current.Store(v)
	s.l0.Store(int32(len(v.Levels[0])))
	if kind, num, ok := ParseFileName(manifestName); ok && kind == KindManifest {
		s.manifestNum = num
	}
	// Resume appends on a fresh manifest so a crash mid-recovery never
	// corrupts the old one.
	if err := s.rollManifest(); err != nil {
		return err
	}
	s.cleanupObsolete()
	return nil
}

// rollManifest writes a new manifest holding a full snapshot edit and
// repoints CURRENT at it.
func (s *Set) rollManifest() error {
	num := s.NewFileNum()
	name := ManifestFileName(num)
	f, err := s.fs.Create(name)
	if err != nil {
		return err
	}
	w := wal.NewWriter(f, false)
	var snap Edit
	snap.SetNextFileNum(s.nextFile.Load())
	snap.SetLogNum(s.logNum)
	snap.SetLastTS(s.lastTS)
	v := s.current.Load()
	for level := 0; level < NumLevels; level++ {
		for _, fm := range v.Levels[level] {
			snap.AddFile(level, fm.FileDesc)
		}
	}
	s.appendVlogSnapshot(&snap)
	if err := w.Append(snap.Encode(nil)); err != nil {
		return err
	}
	if err := w.Sync(); err != nil {
		return err
	}
	old := s.manifest
	oldNum := s.manifestNum
	s.manifest = w
	s.manifestNum = num
	if err := s.fs.WriteFile(CurrentFileName, []byte(name+"\n")); err != nil {
		return err
	}
	if old != nil {
		old.Close()
		s.fs.Remove(ManifestFileName(oldNum))
	}
	return nil
}

// appendVlogSnapshot folds the live value-log segment set into a snapshot
// edit (fresh-manifest rolls and checkpoints both need it): each segment's
// existence, seal state, and accumulated garbage, re-expressed as one
// delta on top of an empty state.
func (s *Set) appendVlogSnapshot(snap *Edit) {
	s.vlogMu.Lock()
	defer s.vlogMu.Unlock()
	for _, m := range s.vlogSegs {
		snap.AddVlogSegment(m.Num)
		if m.Sealed {
			snap.SealVlogSegment(m.Num, m.Size)
		}
		if m.Garbage > 0 {
			snap.AddVlogGarbage(m.Num, m.Garbage)
		}
	}
}

// VlogSegments returns a point-in-time copy of the manifest-recorded
// value-log segment set, sorted by segment number.
func (s *Set) VlogSegments() []VlogSegMeta {
	s.vlogMu.Lock()
	out := make([]VlogSegMeta, 0, len(s.vlogSegs))
	for _, m := range s.vlogSegs {
		out = append(out, *m)
	}
	s.vlogMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Num < out[j].Num })
	return out
}

// VlogGCCandidate returns the sealed segment with the highest garbage
// ratio at or above ratio (excluding segments in skip), if any. It is
// allocation-light and safe to call from the scheduler's planner loop.
func (s *Set) VlogGCCandidate(ratio float64, skip func(uint64) bool) (num uint64, ok bool) {
	s.vlogMu.Lock()
	defer s.vlogMu.Unlock()
	best := ratio
	for _, m := range s.vlogSegs {
		if !m.Sealed || m.Size == 0 || (skip != nil && skip(m.Num)) {
			continue
		}
		if r := float64(m.Garbage) / float64(m.Size); r >= best {
			best, num, ok = r, m.Num, true
		}
	}
	return num, ok
}

// VlogStats sums the segment set: segment count, total sealed bytes, and
// total garbage bytes.
func (s *Set) VlogStats() (segments int, sizeBytes, garbageBytes uint64) {
	s.vlogMu.Lock()
	defer s.vlogMu.Unlock()
	for _, m := range s.vlogSegs {
		segments++
		sizeBytes += m.Size
		garbageBytes += m.Garbage
	}
	return segments, sizeBytes, garbageBytes
}

// Current acquires a reference to the live Version (RCU protocol). The
// caller must Unref it.
func (s *Set) Current() *Version {
	return syncutil.Acquire[Version](&s.current)
}

// L0Count returns the current level-0 file count without touching the
// version reference count — the write path's fast backpressure probe.
func (s *Set) L0Count() int { return int(s.l0.Load()) }

// NewFileNum allocates a fresh file number.
func (s *Set) NewFileNum() uint64 { return s.nextFile.Add(1) }

// LogNum returns the lowest WAL number that may still hold unmerged writes.
func (s *Set) LogNum() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.logNum
}

// LastTS returns the persisted timestamp high-water mark.
func (s *Set) LastTS() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastTS
}

// OrphansRemoved reports how many unreferenced files Open deleted.
func (s *Set) OrphansRemoved() uint64 { return s.orphans.Load() }

// TornTailsTruncated reports how many torn manifest tails recovery cut.
func (s *Set) TornTailsTruncated() uint64 { return s.tornTails.Load() }

// Tables exposes the shared table cache.
func (s *Set) Tables() *TableCache { return s.tables }

// Options exposes the effective options.
func (s *Set) Options() Options { return s.opts }

// manifestRollSize bounds MANIFEST growth: once the edit log exceeds this
// size it is rewritten as a single snapshot edit in a fresh file, so
// recovery time stays proportional to the live file count rather than the
// database's whole history.
const manifestRollSize = 1 << 20

// LogAndApply durably appends edit to the MANIFEST, then publishes the
// resulting Version. It is the only mutation point of the disk component
// (the paper's afterMerge updates Pd with its result).
func (s *Set) LogAndApply(edit *Edit) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.manifestDirty {
		// A previous append failed partway, leaving a possibly-torn record
		// in the manifest for an edit that was never installed. Start over
		// on a fresh manifest (a snapshot of the installed state) so this
		// edit is never written behind garbage.
		if err := s.rollManifest(); err != nil {
			return fmt.Errorf("version: roll dirty manifest: %w", err)
		}
		s.manifestDirty = false
	}
	// s.logNum and s.lastTS are advanced by builder.apply only after the
	// record is durable: bumping them before the append would let a dirty
	// roll snapshot a logNum that declares a still-unmerged WAL merged.
	edit.SetNextFileNum(s.nextFile.Load())

	if err := s.manifest.Append(edit.Encode(nil)); err != nil {
		s.manifestDirty = true
		return err
	}
	if err := s.manifest.Sync(); err != nil {
		s.manifestDirty = true
		return err
	}

	var b builder
	b.init(s)
	b.base = s.current.Load()
	b.apply(edit)
	v := b.finish()
	old := s.current.Swap(v)
	s.l0.Store(int32(len(v.Levels[0])))
	if old != nil {
		old.Unref()
	}
	if s.manifest.Size() > manifestRollSize {
		if err := s.rollManifest(); err != nil {
			// The edit is already durable and installed; a failed roll only
			// leaves the manifest writer in an ambiguous spot (CURRENT and
			// s.manifest may disagree). Flag it so the next append re-rolls
			// instead of failing an already-applied edit.
			s.manifestDirty = true
		}
	}
	return nil
}

// builder accumulates edits on top of a base version.
type builder struct {
	set     *Set
	base    *Version
	added   [NumLevels][]*FileMeta
	deleted [NumLevels]map[uint64]bool
}

func (b *builder) init(s *Set) {
	b.set = s
	for i := range b.deleted {
		b.deleted[i] = make(map[uint64]bool)
	}
}

func (b *builder) apply(e *Edit) {
	if e.hasNextFileNum && e.NextFileNum > b.set.nextFile.Load() {
		b.set.nextFile.Store(e.NextFileNum)
	}
	if e.hasLogNum && e.LogNum > b.set.logNum {
		b.set.logNum = e.LogNum
	}
	if e.hasLastTS && e.LastTS > b.set.lastTS {
		b.set.lastTS = e.LastTS
	}
	for _, d := range e.Deleted {
		b.deleted[d.Level][d.Num] = true
	}
	for _, a := range e.Added {
		// A file moved between levels (trivial move) must keep its
		// existing FileMeta so the reference count spans both versions;
		// a fresh instance would delete the file when the old version
		// retires it from its former level.
		if fm := b.lookupBase(a.Meta.Num); fm != nil {
			b.added[a.Level] = append(b.added[a.Level], fm)
			continue
		}
		fm := &FileMeta{FileDesc: a.Meta}
		fm.deleter = b.set.deleteFile
		// LevelDB's heuristic: one seek is worth compacting ~40 KB.
		seeks := int64(fm.Size / 16384)
		if seeks < 100 {
			seeks = 100
		}
		fm.AllowedSeeks.Store(seeks)
		delete(b.deleted[a.Level], fm.Num)
		b.added[a.Level] = append(b.added[a.Level], fm)
	}
	b.applyVlog(e)
}

// applyVlog folds an edit's value-log records into the set's segment map.
func (b *builder) applyVlog(e *Edit) {
	if len(e.VlogAdded)+len(e.VlogDeleted)+len(e.VlogSealed)+len(e.VlogGarbage) == 0 {
		return
	}
	s := b.set
	s.vlogMu.Lock()
	defer s.vlogMu.Unlock()
	for _, num := range e.VlogAdded {
		if s.vlogSegs[num] == nil {
			s.vlogSegs[num] = &VlogSegMeta{Num: num}
		}
	}
	for _, sl := range e.VlogSealed {
		if m := s.vlogSegs[sl.Num]; m != nil {
			m.Size, m.Sealed = sl.Bytes, true
		}
	}
	for _, g := range e.VlogGarbage {
		if m := s.vlogSegs[g.Num]; m != nil {
			if m.Garbage += g.Bytes; m.Sealed && m.Garbage > m.Size {
				m.Garbage = m.Size
			}
		}
	}
	for _, num := range e.VlogDeleted {
		delete(s.vlogSegs, num)
	}
}

// lookupBase finds a live FileMeta by number in the base version.
func (b *builder) lookupBase(num uint64) *FileMeta {
	if b.base == nil {
		return nil
	}
	for _, level := range b.base.Levels {
		for _, f := range level {
			if f.Num == num {
				return f
			}
		}
	}
	return nil
}

func (b *builder) finish() *Version {
	v := newVersion(b.set)
	// Files re-added at another level (trivial moves) are not obsolete.
	addedNums := make(map[uint64]bool)
	for level := range b.added {
		for _, f := range b.added[level] {
			addedNums[f.Num] = true
		}
	}
	for level := 0; level < NumLevels; level++ {
		var files []*FileMeta
		if b.base != nil {
			for _, f := range b.base.Levels[level] {
				if b.deleted[level][f.Num] {
					if !addedNums[f.Num] {
						f.markObsolete()
					}
					continue
				}
				files = append(files, f)
			}
		}
		// A file added and then deleted within the applied edit sequence
		// (flushed, then compacted away, during recovery replay) never
		// joins the version.
		for _, f := range b.added[level] {
			if !b.deleted[level][f.Num] {
				files = append(files, f)
			}
		}
		if level == 0 {
			sort.Slice(files, func(i, j int) bool { return files[i].Num > files[j].Num })
		} else {
			sort.Slice(files, func(i, j int) bool {
				return keys.Compare(files[i].Smallest, files[j].Smallest) < 0
			})
		}
		for _, f := range files {
			f.ref()
		}
		v.Levels[level] = files
	}
	return v
}

// deleteFile is the FileMeta finalizer: close, evict, remove. A table
// pinned by an in-flight checkpoint is not removed now; the deletion is
// deferred until the last pin drops (unprotect replays it).
func (s *Set) deleteFile(f *FileMeta) {
	s.protMu.Lock()
	if s.protected[f.Num] > 0 {
		s.deferred[f.Num] = true
		s.protMu.Unlock()
		return
	}
	s.protMu.Unlock()
	s.removeTable(f.Num)
}

func (s *Set) removeTable(num uint64) {
	s.tables.Evict(num)
	s.fs.Remove(TableFileName(num))
}

// protect pins a set of table numbers against obsolete-file deletion for
// the duration of a checkpoint.
func (s *Set) protect(nums []uint64) {
	s.protMu.Lock()
	defer s.protMu.Unlock()
	for _, n := range nums {
		s.protected[n]++
	}
}

// unprotect drops checkpoint pins and replays any deletions that were
// deferred while the tables were pinned.
func (s *Set) unprotect(nums []uint64) {
	s.protMu.Lock()
	var doomed []uint64
	var doomedVlog []uint64
	for _, n := range nums {
		if s.protected[n]--; s.protected[n] <= 0 {
			delete(s.protected, n)
			if s.deferred[n] {
				delete(s.deferred, n)
				doomed = append(doomed, n)
			}
			if s.deferredVlog[n] {
				delete(s.deferredVlog, n)
				doomedVlog = append(doomedVlog, n)
			}
		}
	}
	s.protMu.Unlock()
	for _, n := range doomed {
		s.removeTable(n)
	}
	for _, n := range doomedVlog {
		s.fs.Remove(VlogFileName(n))
	}
}

// RemoveVlogFile physically deletes a retired value-log segment, honoring
// checkpoint pins the same way table deletion does: if a checkpoint is
// linking the segment the removal is deferred until the pin drops. The
// caller must already have logged the segment's retirement (the segment
// is out of the manifest set, so a crash before the deferred removal is
// reconciled by the next Open's orphan sweep).
func (s *Set) RemoveVlogFile(num uint64) {
	s.protMu.Lock()
	if s.protected[num] > 0 {
		s.deferredVlog[num] = true
		s.protMu.Unlock()
		return
	}
	s.protMu.Unlock()
	s.fs.Remove(VlogFileName(num))
}

// recordSeekCompaction notes a file whose seek budget is exhausted.
func (s *Set) recordSeekCompaction(f *FileMeta, level int) {
	if s.opts.AllowSeekCompaction {
		s.pendingSeeks.Enqueue(seekHint{file: f, level: level})
	}
}

// cleanupObsolete removes files on disk not referenced by the live version
// (crash leftovers). WAL cleanup is the engine's job since it knows which
// logs are still replaying.
func (s *Set) cleanupObsolete() {
	names, err := s.fs.List()
	if err != nil {
		return
	}
	live := make(map[uint64]bool)
	v := s.current.Load()
	for _, level := range v.Levels {
		for _, f := range level {
			live[f.Num] = true
		}
	}
	s.protMu.Lock()
	for num := range s.protected {
		live[num] = true
	}
	s.protMu.Unlock()
	for _, name := range names {
		kind, num, ok := ParseFileName(name)
		if !ok {
			continue
		}
		switch kind {
		case KindTable:
			if !live[num] {
				if s.fs.Remove(name) == nil {
					s.orphans.Add(1)
				}
			}
		case KindManifest:
			if num != s.manifestNum {
				if s.fs.Remove(name) == nil {
					s.orphans.Add(1)
				}
			}
		case KindValueLog:
			// A segment file absent from the manifest set is either a
			// crash leftover (created but its add-record never became
			// durable — by the manifest-before-first-value rule no durable
			// pointer references it) or a retired segment whose physical
			// removal was lost in a crash. Both delete safely.
			s.vlogMu.Lock()
			_, liveSeg := s.vlogSegs[num]
			s.vlogMu.Unlock()
			if !liveSeg {
				if s.fs.Remove(name) == nil {
					s.orphans.Add(1)
				}
			}
		}
	}
}

// Close releases the manifest and open tables. The caller must have
// quiesced all readers and compactions.
func (s *Set) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var err error
	if s.manifest != nil {
		err = s.manifest.Close()
		s.manifest = nil
	}
	if v := s.current.Swap(nil); v != nil {
		v.Unref()
	}
	s.tables.Close()
	return err
}
