// Package obs is the engine's observability substrate: striped atomic
// counters, lock-free latency histograms, and an event trace, all
// stdlib-only and allocation-free on the record path. The paper's whole
// contribution is concurrency scalability, so the instrumentation itself
// must not introduce the cache-line contention it is meant to expose —
// counters are striped per goroutine and histograms are arrays of atomic
// buckets.
//
// One Observer instance belongs to one engine. The engine records
// operation latencies around Put/Get/Delete/Write/RMW/GetSnapshot and
// iterator Next, bumps cache/WAL/compaction counters, and appends typed
// events (flush, compaction, write stall, snapshot reclaim) to the trace.
// Snapshot/Publish/Handler export everything over expvar's /debug/vars.
package obs

import "time"

// Op enumerates the instrumented engine operations.
type Op uint8

// Instrumented operations. NumOps sizes per-op arrays.
const (
	OpPut Op = iota
	OpGet
	OpDelete
	OpWrite
	OpRMW
	OpGetSnapshot
	OpIterNext
	OpMultiGet
	NumOps
)

// String names the op for export.
func (op Op) String() string {
	switch op {
	case OpPut:
		return "put"
	case OpGet:
		return "get"
	case OpDelete:
		return "delete"
	case OpWrite:
		return "write"
	case OpRMW:
		return "rmw"
	case OpGetSnapshot:
		return "get_snapshot"
	case OpIterNext:
		return "iter_next"
	case OpMultiGet:
		return "multiget"
	}
	return "unknown"
}

// Observer aggregates one engine's instrumentation. All methods are safe
// for concurrent use and nil-receiver safe, so call sites need no guards.
type Observer struct {
	ops [NumOps]Histogram

	// Counters bumped by the substrates the engine wires up.
	CacheHits         Counter // block cache hits
	CacheMisses       Counter // block cache misses
	WALAppends        Counter // records enqueued to the write-ahead log
	WALSyncs          Counter // device syncs performed by the log drain
	WriteStalls       Counter // stall episodes entered by makeRoomForWrite
	CompactionTables  Counter // output tables written by flushes+compactions
	CompactionDropped Counter // entries garbage-collected during merges

	// Recovery counters, bumped while Open replays the previous
	// incarnation's state (see docs/CRASH_CONSISTENCY.md).
	WALTornTails       Counter // torn WAL/manifest tails truncated during replay
	RecoveryRecords    Counter // WAL entries replayed into the recovery memtable
	OrphanFilesRemoved Counter // unreferenced files (sstables, manifests, stale WALs) deleted on open

	// Background fault-tolerance counters (see docs/FAULT_TOLERANCE.md).
	// BGRetries counts retry attempts scheduled after transient background
	// errors; BGAutoResumes counts Degraded→Healthy transitions performed
	// by a successful retry (manual Resume calls are not counted);
	// BGBytesReclaimed totals the bytes of partial sstable outputs deleted
	// when a failed flush/compaction attempt is cleaned up at retry time.
	BGRetries        Counter
	BGAutoResumes    Counter
	BGBytesReclaimed Counter

	// HealthState mirrors the engine's health state machine: 0 healthy,
	// 1 degraded, 2 read-only, 3 failed (health.State numbering).
	HealthState Gauge

	// Background-scheduler gauges (see docs/SCHEDULING.md). SchedQueueDepth
	// is the number of background jobs queued or running; CompactionDebt is
	// the byte volume of pending flush + compaction work (the admission
	// controller's input); ThrottleRate is the current admitted write rate
	// in bytes/s (0 = unthrottled).
	SchedQueueDepth Gauge
	CompactionDebt  Gauge
	ThrottleRate    Gauge

	// WriteThrottle distributes the admission waits the write-path
	// token bucket imposed, in microseconds (RecordValue; a count-valued
	// histogram like WALGroupSize). Count is the number of throttled
	// writes; an empty histogram means the throttle never engaged.
	WriteThrottle Histogram

	// WALGroupSize distributes the number of records committed per WAL
	// group: the amortization factor of group commit. A p50 near 1 means
	// the drain is keeping up record-by-record; large values mean heavy
	// batching (and, in sync mode, proportionally fewer device syncs).
	WALGroupSize Histogram

	// Network-server metrics (cmd/clsm-server, internal/server; see
	// docs/NETWORK.md). ServerConns is the number of currently connected
	// clients; ServerInflight is the number of requests being served at
	// this instant across all connections.
	ServerConns    Gauge
	ServerInflight Gauge

	// Backup-subsystem counters (see docs/BACKUP.md). BackupBytesShipped
	// totals the object bytes uploaded to the remote tier;
	// BackupFilesSkipped counts sstables an incremental backup did not
	// re-ship because the previous backup's manifest already named their
	// content; CheckpointLiveLinks counts live tables linked into
	// checkpoint directories.
	BackupBytesShipped  Counter
	BackupFilesSkipped  Counter
	CheckpointLiveLinks Counter

	// BackupUpload distributes per-object upload latencies in
	// microseconds (RecordValue; count-valued like WriteThrottle),
	// including retried attempts.
	BackupUpload Histogram

	// Value-log counters (see docs/VALUELOG.md). VlogBytesWritten totals
	// the entry bytes appended to value-log segments (user values plus
	// per-entry framing); VlogBytesReclaimed totals the segment bytes
	// freed by GC segment retirement; VlogGCRewrites counts live values
	// relinked (re-appended and re-pointed) by GC segment rewrites.
	VlogBytesWritten   Counter
	VlogBytesReclaimed Counter
	VlogGCRewrites     Counter

	// VlogDeref distributes value-log pointer dereference latencies in
	// microseconds (RecordValue; count-valued like BackupUpload): the
	// extra read the LSM pays for each large value it points at.
	VlogDeref Histogram

	// ServerWriteBatch distributes the number of entries per coalesced
	// engine write submission (RecordValue; count-valued like
	// WALGroupSize): the server merges concurrent in-flight writes from
	// all connections into one atomic engine batch, so values above 1
	// mean cross-connection group commit is engaging. ServerReadBatch is
	// the analogous distribution of point reads coalesced into one
	// engine MultiGet.
	ServerWriteBatch Histogram
	ServerReadBatch  Histogram

	// Trace is the engine event timeline.
	Trace Trace
}

// New returns an empty Observer.
func New() *Observer { return &Observer{} }

// Record adds one latency sample for op.
func (o *Observer) Record(op Op, d time.Duration) {
	if o == nil {
		return
	}
	o.ops[op].Record(d)
}

// Op returns the histogram for one operation (nil on a nil Observer).
func (o *Observer) Op(op Op) *Histogram {
	if o == nil {
		return nil
	}
	return &o.ops[op]
}

// Event appends an event to the trace.
func (o *Observer) Event(e Event) {
	if o == nil {
		return
	}
	o.Trace.Record(e)
}
