package obs

import "sort"

// Aggregate builds a point-in-time merged Observer over srcs — the
// cross-shard view of a sharded store. Histograms are bucket-merged
// (percentiles stay exact within bucket resolution), counters are
// summed, and gauges combine by meaning: queue depth, debt, and
// throttle rate sum across shards while the health state takes the
// worst shard. The event timelines are interleaved in time order into
// the result's trace (events keep their shard labels), capped at the
// default trace capacity.
//
// The result is a snapshot, not a live view: it does not update as the
// sources record, and recording into it affects nothing. Call again for
// fresh numbers.
func Aggregate(srcs ...*Observer) *Observer {
	dst := New()
	var events []Event
	for _, src := range srcs {
		if src == nil {
			continue
		}
		for op := Op(0); op < NumOps; op++ {
			dst.ops[op].Merge(&src.ops[op])
		}
		dst.CacheHits.Add(src.CacheHits.Load())
		dst.CacheMisses.Add(src.CacheMisses.Load())
		dst.WALAppends.Add(src.WALAppends.Load())
		dst.WALSyncs.Add(src.WALSyncs.Load())
		dst.WriteStalls.Add(src.WriteStalls.Load())
		dst.CompactionTables.Add(src.CompactionTables.Load())
		dst.CompactionDropped.Add(src.CompactionDropped.Load())
		dst.WALTornTails.Add(src.WALTornTails.Load())
		dst.RecoveryRecords.Add(src.RecoveryRecords.Load())
		dst.OrphanFilesRemoved.Add(src.OrphanFilesRemoved.Load())
		dst.BGRetries.Add(src.BGRetries.Load())
		dst.BGAutoResumes.Add(src.BGAutoResumes.Load())
		dst.BGBytesReclaimed.Add(src.BGBytesReclaimed.Load())
		dst.VlogBytesWritten.Add(src.VlogBytesWritten.Load())
		dst.VlogBytesReclaimed.Add(src.VlogBytesReclaimed.Load())
		dst.VlogGCRewrites.Add(src.VlogGCRewrites.Load())
		if hs := src.HealthState.Load(); hs > dst.HealthState.Load() {
			dst.HealthState.Store(hs)
		}
		dst.SchedQueueDepth.Add(int64(src.SchedQueueDepth.Load()))
		dst.CompactionDebt.Add(int64(src.CompactionDebt.Load()))
		dst.ThrottleRate.Add(int64(src.ThrottleRate.Load()))
		dst.ServerConns.Add(int64(src.ServerConns.Load()))
		dst.ServerInflight.Add(int64(src.ServerInflight.Load()))
		dst.WriteThrottle.Merge(&src.WriteThrottle)
		dst.WALGroupSize.Merge(&src.WALGroupSize)
		dst.VlogDeref.Merge(&src.VlogDeref)
		dst.ServerWriteBatch.Merge(&src.ServerWriteBatch)
		dst.ServerReadBatch.Merge(&src.ServerReadBatch)
		events = append(events, src.Trace.Events()...)
	}
	sort.SliceStable(events, func(i, j int) bool {
		return events[i].Time.Before(events[j].Time)
	})
	if len(events) > DefaultTraceCap {
		events = events[len(events)-DefaultTraceCap:]
	}
	for _, e := range events {
		e.Seq = 0 // restamped in merged order
		dst.Trace.Record(e)
	}
	return dst
}
