package obs

import (
	"sync/atomic"
	"unsafe"
)

// counterStripes is the fan-out of a striped counter. 16 cache lines is
// enough to keep the paper's 16-thread write ladders from serializing on
// one line while keeping the zero-value Counter at 1 KiB.
const counterStripes = 16

// counterStripe pads each cell to a cache line so neighboring stripes do
// not false-share.
type counterStripe struct {
	v atomic.Uint64
	_ [56]byte
}

// Counter is a striped monotonic counter for hot-path instrumentation:
// increments land on one of several cache-line-padded cells chosen by a
// cheap per-goroutine hash, so many writer goroutines bumping the same
// logical counter do not contend on one cache line (the same reason the
// engine's block cache is sharded). The zero value is ready to use.
//
// Load sums the stripes and is O(stripes); it is meant for metric export,
// not hot paths.
type Counter struct {
	stripes [counterStripes]counterStripe
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	c.stripes[stripeIndex()].v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current total.
func (c *Counter) Load() uint64 {
	var sum uint64
	for i := range c.stripes {
		sum += c.stripes[i].v.Load()
	}
	return sum
}

// Gauge is a last-value metric (e.g. the engine health state). Unlike
// Counter it is not striped: gauges are written on rare transitions, not
// hot paths. The zero value reads 0.
type Gauge struct {
	v atomic.Uint64
}

// Store sets the gauge.
func (g *Gauge) Store(v uint64) { g.v.Store(v) }

// Add moves the gauge by delta (negative deltas decrement). Used by
// level-style gauges (connection and inflight-request counts) that rise
// and fall instead of being overwritten on transitions.
func (g *Gauge) Add(delta int64) { g.v.Add(uint64(delta)) }

// Load returns the last stored value.
func (g *Gauge) Load() uint64 { return g.v.Load() }

// stripeIndex picks a stripe for the calling goroutine without allocating.
// Goroutine stacks are distinct memory regions, so the address of a stack
// variable is a cheap goroutine-stable discriminator; a multiplicative
// hash spreads the high (stack-identity) bits into the stripe index. The
// conversion to uintptr keeps b from escaping, so the fast path stays
// allocation-free (verified by TestRecordPathAllocs).
func stripeIndex() int {
	var b byte
	h := uint64(uintptr(unsafe.Pointer(&b)))
	h *= 0x9e3779b97f4a7c15
	return int(h>>59) & (counterStripes - 1)
}
