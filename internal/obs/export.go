package obs

import (
	"expvar"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Snapshot is a point-in-time export of an Observer, shaped for JSON.
type Snapshot struct {
	Ops          map[string]HistogramSnapshot `json:"ops"`
	Counters     map[string]uint64            `json:"counters"`
	WALGroupSize ValueSnapshot                `json:"wal_group_size"`
	// WriteThrottle distributes write-admission waits in microseconds.
	WriteThrottle ValueSnapshot `json:"write_throttle_micros"`
	// ServerWriteBatch and ServerReadBatch distribute the network
	// server's cross-connection coalescing factors (entries per engine
	// batch, keys per engine MultiGet).
	ServerWriteBatch ValueSnapshot `json:"server_write_batch"`
	ServerReadBatch  ValueSnapshot `json:"server_read_batch"`
	// BackupUpload distributes per-object remote upload latencies.
	BackupUpload ValueSnapshot `json:"backup_upload_micros"`
	// Vlog carries value-log activity (docs/VALUELOG.md). The block is
	// additive and omitted while the value log is untouched, so decoders
	// of the pre-separation Stats shape keep working unchanged.
	Vlog   *VlogSnapshot `json:"vlog,omitempty"`
	Events []Event       `json:"events"`
}

// VlogSnapshot is the value-log section of a Snapshot.
type VlogSnapshot struct {
	BytesWritten   uint64 `json:"bytes_written"`
	BytesReclaimed uint64 `json:"bytes_reclaimed"`
	GCRewrites     uint64 `json:"gc_rewrites"`
	// DerefMicros distributes pointer dereference latencies.
	DerefMicros ValueSnapshot `json:"deref_micros"`
}

// Snapshot captures the observer's current state.
func (o *Observer) Snapshot() Snapshot {
	s := Snapshot{
		Ops:      make(map[string]HistogramSnapshot, NumOps),
		Counters: make(map[string]uint64, 8),
	}
	if o == nil {
		return s
	}
	for op := Op(0); op < NumOps; op++ {
		if h := &o.ops[op]; h.Count() > 0 {
			s.Ops[op.String()] = h.Snapshot()
		}
	}
	s.Counters["cache_hits"] = o.CacheHits.Load()
	s.Counters["cache_misses"] = o.CacheMisses.Load()
	s.Counters["wal_appends"] = o.WALAppends.Load()
	s.Counters["wal_syncs"] = o.WALSyncs.Load()
	s.Counters["write_stalls"] = o.WriteStalls.Load()
	s.Counters["compaction_tables"] = o.CompactionTables.Load()
	s.Counters["compaction_dropped"] = o.CompactionDropped.Load()
	s.Counters["wal_torn_tail_truncated"] = o.WALTornTails.Load()
	s.Counters["recovery_records_replayed"] = o.RecoveryRecords.Load()
	s.Counters["orphan_files_removed"] = o.OrphanFilesRemoved.Load()
	s.Counters["bg_retries"] = o.BGRetries.Load()
	s.Counters["bg_auto_resumes"] = o.BGAutoResumes.Load()
	s.Counters["bg_bytes_reclaimed"] = o.BGBytesReclaimed.Load()
	s.Counters["health_state"] = o.HealthState.Load()
	s.Counters["sched_queue_depth"] = o.SchedQueueDepth.Load()
	s.Counters["compaction_debt_bytes"] = o.CompactionDebt.Load()
	s.Counters["throttle_rate_bytes_per_sec"] = o.ThrottleRate.Load()
	s.Counters["server_conns"] = o.ServerConns.Load()
	s.Counters["server_inflight"] = o.ServerInflight.Load()
	s.Counters["backup_bytes_shipped"] = o.BackupBytesShipped.Load()
	s.Counters["backup_files_skipped"] = o.BackupFilesSkipped.Load()
	s.Counters["checkpoint_live_links"] = o.CheckpointLiveLinks.Load()
	s.WALGroupSize = o.WALGroupSize.ValueSnapshot()
	s.WriteThrottle = o.WriteThrottle.ValueSnapshot()
	s.ServerWriteBatch = o.ServerWriteBatch.ValueSnapshot()
	s.ServerReadBatch = o.ServerReadBatch.ValueSnapshot()
	s.BackupUpload = o.BackupUpload.ValueSnapshot()
	if w, r, g := o.VlogBytesWritten.Load(), o.VlogBytesReclaimed.Load(), o.VlogGCRewrites.Load(); w|r|g != 0 || o.VlogDeref.Count() > 0 {
		s.Vlog = &VlogSnapshot{
			BytesWritten:   w,
			BytesReclaimed: r,
			GCRewrites:     g,
			DerefMicros:    o.VlogDeref.ValueSnapshot(),
		}
	}
	s.Events = o.Trace.Events()
	return s
}

// published maps expvar names to re-pointable observer slots, because
// expvar.Publish is permanent: republishing under the same name (a store
// reopened in one process) just swaps the slot's target.
var (
	pubMu     sync.Mutex
	published = map[string]*atomic.Pointer[Observer]{}
)

// Publish exports the observer's Snapshot under name on expvar's
// /debug/vars. Publishing a second observer under the same name redirects
// the export to it.
func (o *Observer) Publish(name string) {
	pubMu.Lock()
	defer pubMu.Unlock()
	slot, ok := published[name]
	if !ok {
		slot = new(atomic.Pointer[Observer])
		published[name] = slot
		expvar.Publish(name, expvar.Func(func() any {
			return slot.Load().Snapshot()
		}))
	}
	slot.Store(o)
}

// Handler returns the expvar HTTP handler serving every published
// observer (plus the standard memstats/cmdline vars) as JSON. Mount it at
// /debug/vars, the conventional expvar path.
func Handler() http.Handler { return expvar.Handler() }

// WriteSummary renders the per-op latency table: count, mean, p50, p95,
// p99, max for every operation with at least one sample, then the
// substrate counters.
func (o *Observer) WriteSummary(w io.Writer) {
	fmt.Fprintf(w, "%-14s %12s %10s %10s %10s %10s %10s\n",
		"op", "count", "mean", "p50", "p95", "p99", "max")
	for op := Op(0); op < NumOps; op++ {
		h := &o.ops[op]
		if h.Count() == 0 {
			continue
		}
		s := h.Snapshot()
		fmt.Fprintf(w, "%-14s %12d %10s %10s %10s %10s %10s\n",
			op, s.Count, fmtDur(s.Mean), fmtDur(s.P50), fmtDur(s.P95),
			fmtDur(s.P99), fmtDur(s.Max))
	}
	snap := o.Snapshot()
	names := make([]string, 0, len(snap.Counters))
	for name := range snap.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "%-22s %12d\n", name, snap.Counters[name])
	}
	if g := snap.WALGroupSize; g.Count > 0 {
		fmt.Fprintf(w, "%-22s %12d  mean=%.1f p50=%d p99=%d max=%d\n",
			"wal_group_size", g.Count, g.Mean, g.P50, g.P99, g.Max)
	}
	if g := snap.WriteThrottle; g.Count > 0 {
		fmt.Fprintf(w, "%-22s %12d  mean=%.1fus p50=%dus p99=%dus max=%dus\n",
			"write_throttle_micros", g.Count, g.Mean, g.P50, g.P99, g.Max)
	}
	if g := snap.ServerWriteBatch; g.Count > 0 {
		fmt.Fprintf(w, "%-22s %12d  mean=%.1f p50=%d p99=%d max=%d\n",
			"server_write_batch", g.Count, g.Mean, g.P50, g.P99, g.Max)
	}
	if g := snap.ServerReadBatch; g.Count > 0 {
		fmt.Fprintf(w, "%-22s %12d  mean=%.1f p50=%d p99=%d max=%d\n",
			"server_read_batch", g.Count, g.Mean, g.P50, g.P99, g.Max)
	}
	if g := snap.BackupUpload; g.Count > 0 {
		fmt.Fprintf(w, "%-22s %12d  mean=%.1fus p50=%dus p99=%dus max=%dus\n",
			"backup_upload_micros", g.Count, g.Mean, g.P50, g.P99, g.Max)
	}
	if v := snap.Vlog; v != nil {
		fmt.Fprintf(w, "%-22s written=%d reclaimed=%d rewrites=%d\n",
			"vlog_bytes", v.BytesWritten, v.BytesReclaimed, v.GCRewrites)
		if g := v.DerefMicros; g.Count > 0 {
			fmt.Fprintf(w, "%-22s %12d  mean=%.1fus p50=%dus p99=%dus max=%dus\n",
				"vlog_deref_micros", g.Count, g.Mean, g.P50, g.P99, g.Max)
		}
	}
}

// WriteEvents renders the event timeline: an aggregate per-type summary
// (episode counts, bytes, cumulative durations) followed by the last max
// raw events with timestamps relative to the first shown (max <= 0 shows
// everything buffered).
func (o *Observer) WriteEvents(w io.Writer, max int) {
	events := o.Trace.Events()
	if len(events) == 0 {
		fmt.Fprintln(w, "(no engine events recorded)")
		return
	}

	type agg struct {
		n     int
		bytes uint64
		dur   time.Duration
	}
	byType := map[EventType]*agg{}
	for _, e := range events {
		a := byType[e.Type]
		if a == nil {
			a = &agg{}
			byType[e.Type] = a
		}
		a.n++
		a.bytes += e.Bytes
		a.dur += e.Dur
	}
	fmt.Fprintf(w, "%-18s %8s %14s %12s\n", "event", "count", "bytes", "time")
	for t := EvFlushStart; t <= evLast; t++ {
		a := byType[t]
		if a == nil {
			continue
		}
		fmt.Fprintf(w, "%-18s %8d %14d %12s\n", t, a.n, a.bytes, fmtDur(a.dur))
	}

	if max > 0 && len(events) > max {
		events = events[len(events)-max:]
	}
	base := events[0].Time
	fmt.Fprintf(w, "timeline (last %d events):\n", len(events))
	for _, e := range events {
		fmt.Fprintf(w, "  +%-10s %-18s", fmtDur(e.Time.Sub(base)), e.Type)
		switch e.Type {
		case EvCompactionStart, EvCompactionEnd:
			fmt.Fprintf(w, " L%d->L%d", e.Level, e.Level+1)
		case EvStallBegin, EvStallEnd:
			fmt.Fprintf(w, " cause=%s", e.Cause)
		case EvSnapshotReclaim:
			fmt.Fprintf(w, " handles=%d", e.Bytes)
		case EvDegraded, EvReadOnly, EvBackupFailed:
			fmt.Fprintf(w, " cause=%q", e.Msg)
		case EvThrottleOn, EvThrottleAdjust:
			fmt.Fprintf(w, " rate=%dB/s", e.Bytes)
		}
		if e.Bytes > 0 && e.Type != EvSnapshotReclaim &&
			e.Type != EvThrottleOn && e.Type != EvThrottleAdjust {
			fmt.Fprintf(w, " bytes=%d", e.Bytes)
		}
		if e.Dur > 0 {
			fmt.Fprintf(w, " dur=%s", fmtDur(e.Dur))
		}
		fmt.Fprintln(w)
	}
}

// fmtDur rounds a duration for table display.
func fmtDur(d time.Duration) string {
	switch {
	case d == 0:
		return "0"
	case d < 10*time.Microsecond:
		return d.Round(time.Nanosecond).String()
	case d < 10*time.Millisecond:
		return d.Round(time.Microsecond).String()
	case d < 10*time.Second:
		return d.Round(time.Millisecond).String()
	}
	return d.Round(time.Second).String()
}
