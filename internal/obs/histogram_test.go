package obs

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

func TestBucketIndexMonotonic(t *testing.T) {
	prevIdx := -1
	var values []uint64
	for v := uint64(0); v < 4096; v++ {
		values = append(values, v)
	}
	for shift := uint(12); shift < 63; shift++ {
		values = append(values, 1<<shift, 1<<shift+1, 1<<shift-1)
	}
	sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
	for _, v := range values {
		idx := histBucketIndex(v)
		if idx < prevIdx {
			t.Fatalf("bucket index not monotonic at v=%d: %d < %d", v, idx, prevIdx)
		}
		if idx < 0 || idx >= histNumBuckets {
			t.Fatalf("bucket index out of range at v=%d: %d", v, idx)
		}
		// The bucket's lower bound must not exceed the value, and the
		// value must fall short of the next bucket's lower bound.
		if lb := histBucketValue(idx); lb > v {
			t.Fatalf("bucket %d lower bound %d exceeds value %d", idx, lb, v)
		}
		if idx+1 < histNumBuckets {
			if nb := histBucketValue(idx + 1); nb <= v && histBucketIndex(nb) != idx {
				t.Fatalf("value %d at bucket %d overlaps next bound %d", v, idx, nb)
			}
		}
		prevIdx = idx
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 1..1000 microseconds, uniformly.
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	if got := h.Count(); got != 1000 {
		t.Fatalf("count = %d, want 1000", got)
	}
	checks := []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 500 * time.Microsecond},
		{0.95, 950 * time.Microsecond},
		{0.99, 990 * time.Microsecond},
	}
	for _, c := range checks {
		got := h.Quantile(c.q)
		// Bucket resolution bounds the error at 12.5 %.
		lo := c.want - c.want/8
		hi := c.want + c.want/8
		if got < lo || got > hi {
			t.Errorf("q%.2f = %v, want within [%v, %v]", c.q, got, lo, hi)
		}
	}
	if got := h.Max(); got != time.Millisecond {
		t.Errorf("max = %v, want 1ms (max is exact)", got)
	}
	if got := h.Min(); got != time.Microsecond {
		t.Errorf("min = %v, want 1µs (min is exact)", got)
	}
	if got, want := h.Mean(), 500500*time.Nanosecond; got != want {
		t.Errorf("mean = %v, want %v (mean is exact)", got, want)
	}
}

func TestHistogramEmptyAndClamp(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Max() != 0 || h.Min() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.Record(-time.Second) // clamps to zero, must not panic or underflow
	if h.Count() != 1 || h.Max() != 0 {
		t.Fatalf("negative sample mishandled: count=%d max=%v", h.Count(), h.Max())
	}
	if got := h.Quantile(2.0); got != 0 {
		t.Fatalf("out-of-range quantile = %v, want clamp to max", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 500; i++ {
		a.Record(time.Duration(i+1) * time.Microsecond)
		b.Record(time.Duration(i+501) * time.Microsecond)
	}
	var m Histogram
	m.Merge(&a)
	m.Merge(&b)
	m.Merge(nil) // no-op
	if got := m.Count(); got != 1000 {
		t.Fatalf("merged count = %d, want 1000", got)
	}
	if got := m.Min(); got != time.Microsecond {
		t.Errorf("merged min = %v, want 1µs", got)
	}
	if got := m.Max(); got != time.Millisecond {
		t.Errorf("merged max = %v, want 1ms", got)
	}
	med := m.Quantile(0.5)
	want := 500 * time.Microsecond
	if med < want-want/8 || med > want+want/8 {
		t.Errorf("merged median = %v, want ~%v", med, want)
	}
}

// TestConcurrentRecording hammers one observer from many goroutines while
// a reader polls quantiles and snapshots; run under -race (scripts/
// check.sh does) to verify the record path is data-race free.
func TestConcurrentRecording(t *testing.T) {
	o := New()
	const workers = 8
	const perWorker = 20_000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent reader
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = o.Op(OpGet).Quantile(0.99)
			_ = o.Snapshot()
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWorker; i++ {
				o.Record(OpGet, time.Duration(rng.Intn(1<<20)))
				o.Record(OpPut, time.Duration(rng.Intn(1<<20)))
				o.CacheHits.Inc()
				o.WALAppends.Add(2)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	close(stop)
	<-done

	if got := o.Op(OpGet).Count(); got != workers*perWorker {
		t.Fatalf("get samples = %d, want %d", got, workers*perWorker)
	}
	if got := o.CacheHits.Load(); got != workers*perWorker {
		t.Fatalf("cache hits = %d, want %d", got, workers*perWorker)
	}
	if got := o.WALAppends.Load(); got != 2*workers*perWorker {
		t.Fatalf("wal appends = %d, want %d", got, 2*workers*perWorker)
	}
}

// TestRecordPathAllocs pins the acceptance criterion: zero allocations on
// the Get/Put record path (histogram record + striped counter add).
func TestRecordPathAllocs(t *testing.T) {
	o := New()
	if n := testing.AllocsPerRun(1000, func() {
		o.Record(OpGet, 1234*time.Nanosecond)
		o.Record(OpPut, 5678*time.Nanosecond)
		o.CacheHits.Inc()
	}); n != 0 {
		t.Fatalf("record path allocates %v times per op, want 0", n)
	}
}

func TestCounterStriping(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10_000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != 160_000 {
		t.Fatalf("counter = %d, want 160000", got)
	}
}

// TestValueSnapshot pins the unitless snapshot used for count-valued
// histograms (e.g. WAL commit-group sizes): quantiles are raw recorded
// values, not durations.
func TestValueSnapshot(t *testing.T) {
	var h Histogram
	for i := uint64(1); i <= 100; i++ {
		h.RecordValue(i)
	}
	s := h.ValueSnapshot()
	if s.Count != 100 {
		t.Fatalf("Count = %d, want 100", s.Count)
	}
	if s.Mean < 45 || s.Mean > 56 {
		t.Errorf("Mean = %.1f, want ≈ 50.5", s.Mean)
	}
	// Log-linear buckets are exact below the linear range's top, so the
	// small-count quantiles land on the recorded values.
	if s.P50 < 45 || s.P50 > 56 {
		t.Errorf("P50 = %d, want ≈ 50", s.P50)
	}
	if s.Max < 95 {
		t.Errorf("Max = %d, want ≈ 100", s.Max)
	}
	var empty Histogram
	if s := empty.ValueSnapshot(); s.Count != 0 || s.Mean != 0 {
		t.Errorf("empty snapshot = %+v", s)
	}
}
