package obs

import (
	"encoding/json"
	"expvar"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceRingOrderAndWrap(t *testing.T) {
	var tr Trace
	tr.SetCapacity(8)
	for i := 0; i < 20; i++ {
		tr.Record(Event{Type: EvFlushStart, Bytes: uint64(i)})
	}
	events := tr.Events()
	if len(events) != 8 {
		t.Fatalf("ring holds %d events, want 8", len(events))
	}
	for i, e := range events {
		if e.Bytes != uint64(12+i) {
			t.Fatalf("event %d has bytes %d, want %d (oldest-first after wrap)", i, e.Bytes, 12+i)
		}
		if i > 0 && e.Seq != events[i-1].Seq+1 {
			t.Fatalf("event %d seq %d does not follow %d", i, e.Seq, events[i-1].Seq)
		}
		if i > 0 && e.Time.Before(events[i-1].Time) {
			t.Fatalf("event %d time precedes its predecessor", i)
		}
	}
}

func TestTraceSinkOrder(t *testing.T) {
	var tr Trace
	var seen []uint64
	tr.SetSink(func(e Event) { seen = append(seen, e.Seq) })
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Record(Event{Type: EvCompactionStart, Level: 1})
			}
		}()
	}
	wg.Wait()
	if len(seen) != 400 {
		t.Fatalf("sink saw %d events, want 400", len(seen))
	}
	for i, s := range seen {
		if s != uint64(i+1) {
			t.Fatalf("sink order broken at %d: seq %d", i, s)
		}
	}
	tr.SetSink(nil)
	tr.Record(Event{Type: EvFlushEnd})
	if len(seen) != 400 {
		t.Fatal("sink invoked after removal")
	}
}

func TestTraceZeroValueAndExplicitTime(t *testing.T) {
	var tr Trace
	at := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	tr.Record(Event{Type: EvStallBegin, Cause: CauseL0Stop, Time: at})
	events := tr.Events()
	if len(events) != 1 || !events[0].Time.Equal(at) {
		t.Fatalf("explicit time not preserved: %+v", events)
	}
	if events[0].Seq != 1 {
		t.Fatalf("seq = %d, want 1", events[0].Seq)
	}
	var nilTrace *Trace
	nilTrace.Record(Event{Type: EvFlushStart}) // must not panic
}

func TestStringers(t *testing.T) {
	types := []EventType{EvFlushStart, EvFlushEnd, EvCompactionStart,
		EvCompactionEnd, EvStallBegin, EvStallEnd, EvSnapshotReclaim}
	for _, ty := range types {
		if ty.String() == "unknown" {
			t.Errorf("event type %d has no name", ty)
		}
	}
	for op := Op(0); op < NumOps; op++ {
		if op.String() == "unknown" {
			t.Errorf("op %d has no name", op)
		}
	}
	for _, c := range []StallCause{CauseL0Slowdown, CauseL0Stop, CauseMemtableWait} {
		if c.String() == "none" {
			t.Errorf("stall cause %d has no name", c)
		}
	}
}

func TestPublishAndHandler(t *testing.T) {
	o := New()
	o.Record(OpGet, 100*time.Microsecond)
	o.CacheHits.Add(3)
	o.Event(Event{Type: EvFlushStart})
	o.Publish("clsm-test")

	// Republishing under the same name redirects to a new observer
	// instead of panicking (expvar.Publish is once-only underneath).
	o2 := New()
	o2.CacheHits.Add(7)
	o2.Publish("clsm-test")

	v := expvar.Get("clsm-test")
	if v == nil {
		t.Fatal("expvar name not published")
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(v.String()), &snap); err != nil {
		t.Fatalf("published value is not JSON: %v", err)
	}
	if snap.Counters["cache_hits"] != 7 {
		t.Fatalf("republish did not redirect: hits=%d, want 7", snap.Counters["cache_hits"])
	}

	rr := httptest.NewRecorder()
	Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/vars", nil))
	if !strings.Contains(rr.Body.String(), "clsm-test") {
		t.Fatal("handler output missing published observer")
	}
}

func TestWriteSummaryAndEvents(t *testing.T) {
	o := New()
	for i := 1; i <= 100; i++ {
		o.Record(OpPut, time.Duration(i)*time.Microsecond)
		o.Record(OpIterNext, time.Duration(i)*time.Nanosecond)
	}
	o.Event(Event{Type: EvFlushStart, Level: 0, Bytes: 1 << 20})
	o.Event(Event{Type: EvFlushEnd, Level: 0, Bytes: 1 << 19, Dur: 5 * time.Millisecond})
	o.Event(Event{Type: EvStallBegin, Cause: CauseMemtableWait})
	o.Event(Event{Type: EvStallEnd, Cause: CauseMemtableWait, Dur: time.Millisecond})

	var sb strings.Builder
	o.WriteSummary(&sb)
	out := sb.String()
	for _, want := range []string{"put", "iter_next", "p50", "p99", "cache_hits"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "rmw") {
		t.Errorf("summary includes op with no samples:\n%s", out)
	}

	sb.Reset()
	o.WriteEvents(&sb, 10)
	out = sb.String()
	for _, want := range []string{"flush-start", "flush-end", "stall-begin", "memtable-wait", "timeline"} {
		if !strings.Contains(out, want) {
			t.Errorf("events missing %q:\n%s", want, out)
		}
	}

	sb.Reset()
	New().WriteEvents(&sb, 10)
	if !strings.Contains(sb.String(), "no engine events") {
		t.Error("empty trace should say so")
	}
}
