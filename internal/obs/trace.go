package obs

import (
	"encoding/json"
	"sync"
	"time"
)

// EventType classifies engine trace events.
type EventType uint8

// Engine event types, in the order the background machinery emits them.
const (
	EvFlushStart EventType = iota + 1
	EvFlushEnd
	EvCompactionStart
	EvCompactionEnd
	EvStallBegin
	EvStallEnd
	EvSnapshotReclaim
	EvDegraded
	EvResumed
	EvReadOnly
	// Write-throttle lifecycle: the admission controller activated
	// (EvThrottleOn), crossed a 2x rate boundary while tuning
	// (EvThrottleAdjust), or deactivated (EvThrottleOff). Bytes carries
	// the admitted rate in bytes/s. Per-step adjustments are deliberately
	// not traced — the tuner runs every ~10ms.
	EvThrottleOn
	EvThrottleAdjust
	EvThrottleOff
	// Backup lifecycle: a checkpoint+ship cycle started (EvBackupStart),
	// completed with its manifest durable on the remote tier
	// (EvBackupEnd, Bytes = object bytes shipped), or aborted on a fatal
	// remote error after garbage-collecting its partial uploads
	// (EvBackupFailed, Msg = error text).
	EvBackupStart
	EvBackupEnd
	EvBackupFailed
	// EvVlogGC records a completed value-log segment rewrite: Bytes is the
	// retired segment's size, Dur the rewrite's elapsed time.
	EvVlogGC
)

// evLast is the highest defined event type (export iteration bound).
const evLast = EvVlogGC

// String names the event type for timelines and JSON export.
func (t EventType) String() string {
	switch t {
	case EvFlushStart:
		return "flush-start"
	case EvFlushEnd:
		return "flush-end"
	case EvCompactionStart:
		return "compaction-start"
	case EvCompactionEnd:
		return "compaction-end"
	case EvStallBegin:
		return "stall-begin"
	case EvStallEnd:
		return "stall-end"
	case EvSnapshotReclaim:
		return "snapshot-reclaim"
	case EvDegraded:
		return "degraded"
	case EvResumed:
		return "resumed"
	case EvReadOnly:
		return "read-only"
	case EvThrottleOn:
		return "throttle-on"
	case EvThrottleAdjust:
		return "throttle-adjust"
	case EvThrottleOff:
		return "throttle-off"
	case EvBackupStart:
		return "backup-start"
	case EvBackupEnd:
		return "backup-end"
	case EvBackupFailed:
		return "backup-failed"
	case EvVlogGC:
		return "vlog-gc"
	}
	return "unknown"
}

// MarshalJSON exports the type by name, so /debug/vars consumers see
// "flush-start" rather than an opaque code.
func (t EventType) MarshalJSON() ([]byte, error) {
	return json.Marshal(t.String())
}

// StallCause says why a writer stalled (EvStallBegin/EvStallEnd).
type StallCause uint8

// Stall causes, mirroring the three wait sites in makeRoomForWrite.
const (
	CauseNone         StallCause = iota
	CauseL0Slowdown              // soft backpressure: L0 at the slowdown trigger
	CauseL0Stop                  // hard backpressure: L0 at the stop trigger
	CauseMemtableWait            // both memtables full, waiting for the merge
)

// String names the stall cause.
func (c StallCause) String() string {
	switch c {
	case CauseL0Slowdown:
		return "l0-slowdown"
	case CauseL0Stop:
		return "l0-stop"
	case CauseMemtableWait:
		return "memtable-wait"
	}
	return "none"
}

// MarshalJSON exports the cause by name.
func (c StallCause) MarshalJSON() ([]byte, error) {
	return json.Marshal(c.String())
}

// Event is one entry of the engine trace. Fields beyond Seq/Time/Type are
// populated where they make sense: Level for compactions (0 for memtable
// flushes, whose outputs land in L0), Bytes for bytes written by a
// finished flush/compaction (or handles reclaimed for EvSnapshotReclaim),
// Dur for the elapsed time of end events, Cause for stalls, Msg for the
// error text of health transitions (EvDegraded, EvReadOnly).
type Event struct {
	Seq   uint64        `json:"seq"`
	Time  time.Time     `json:"time"`
	Type  EventType     `json:"type"`
	Level int           `json:"level"`
	Bytes uint64        `json:"bytes,omitempty"`
	Dur   time.Duration `json:"dur_ns,omitempty"`
	Cause StallCause    `json:"cause,omitempty"`
	Msg   string        `json:"msg,omitempty"`
	// Shard labels events of a sharded store with the emitting shard's
	// index (Trace.SetShard); 0 on unsharded stores and on shard 0.
	Shard int `json:"shard,omitempty"`
}

// EventSink receives every trace event synchronously, in record order
// (the trace lock is held across the callback to guarantee it). It must
// be fast and must not call back into the store or the trace, or it will
// hold up — or deadlock — flushes and compactions.
type EventSink func(Event)

// DefaultTraceCap is the ring capacity used by a zero-value Trace.
const DefaultTraceCap = 1024

// Trace is a fixed-capacity ring buffer of engine events. Events are rare
// (per flush/compaction/stall episode, not per operation), so a mutex is
// fine here; the sink is invoked under the lock so it observes events in
// record order. The zero value is ready to use.
type Trace struct {
	mu    sync.Mutex
	buf   []Event
	head  int // index of the oldest event
	n     int
	seq   uint64
	sink  EventSink
	shard int
}

// SetShard labels every subsequently recorded event with shard index i
// (sharded stores give each per-shard observer its own label, so an
// aggregated or sink-merged timeline stays attributable).
func (t *Trace) SetShard(i int) {
	t.mu.Lock()
	t.shard = i
	t.mu.Unlock()
}

// SetSink installs (or, with nil, removes) the event callback.
func (t *Trace) SetSink(s EventSink) {
	t.mu.Lock()
	t.sink = s
	t.mu.Unlock()
}

// SetCapacity resizes the ring, dropping buffered events. Calling it after
// events have been recorded is allowed but loses history.
func (t *Trace) SetCapacity(n int) {
	if n < 1 {
		n = 1
	}
	t.mu.Lock()
	t.buf = make([]Event, n)
	t.head, t.n = 0, 0
	t.mu.Unlock()
}

// Record appends an event, stamping Seq and (when unset) Time, and then
// delivers it to the sink, if any.
func (t *Trace) Record(e Event) {
	if t == nil {
		return
	}
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	t.mu.Lock()
	if t.buf == nil {
		t.buf = make([]Event, DefaultTraceCap)
	}
	t.seq++
	e.Seq = t.seq
	if e.Shard == 0 {
		e.Shard = t.shard
	}
	if t.n < len(t.buf) {
		t.buf[(t.head+t.n)%len(t.buf)] = e
		t.n++
	} else {
		t.buf[t.head] = e
		t.head = (t.head + 1) % len(t.buf)
	}
	if t.sink != nil {
		t.sink(e)
	}
	t.mu.Unlock()
}

// Events returns the buffered events, oldest first.
func (t *Trace) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, t.n)
	for i := 0; i < t.n; i++ {
		out[i] = t.buf[(t.head+i)%len(t.buf)]
	}
	return out
}

// Len returns the number of buffered events.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}
