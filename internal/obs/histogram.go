package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket geometry: values below 2^histSubBits get exact unit
// buckets; above that, each power of two is split into 2^histSubBits
// log-linear sub-buckets (HdrHistogram's scheme), bounding quantile error
// at 1/2^histSubBits = 12.5 % across the full uint64 nanosecond range.
const (
	histSubBits  = 3
	histSubCount = 1 << histSubBits
	// Largest index produced by histBucketIndex: exp max = 64-1-histSubBits
	// = 60, sub max = 2*histSubCount-1, so 60*8+15 = 495.
	histNumBuckets = 496
)

// Histogram is a fixed-bucket, log-scaled latency histogram safe for
// concurrent recording without locks: every bucket is an atomic counter,
// so the record path is wait-free apart from the min/max CAS refinement
// and never allocates. The zero value is ready to use.
//
// Quantile reads race benignly with concurrent records — they see some
// consistent-enough prefix of the stream, which is what a monitoring
// export wants.
type Histogram struct {
	counts [histNumBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // nanoseconds
	max    atomic.Uint64 // nanoseconds, exact
	min    atomic.Uint64 // nanoseconds+1 so zero means "no samples yet"
}

// histBucketIndex maps a nanosecond value to its bucket.
func histBucketIndex(v uint64) int {
	if v < histSubCount {
		return int(v)
	}
	exp := bits.Len64(v) - 1 - histSubBits
	sub := v >> uint(exp) // in [histSubCount, 2*histSubCount)
	return exp*histSubCount + int(sub)
}

// histBucketValue returns the lower bound of bucket i (the value reported
// for quantiles falling in it).
func histBucketValue(i int) uint64 {
	if i < 2*histSubCount {
		return uint64(i)
	}
	exp := i/histSubCount - 1
	sub := uint64(i%histSubCount + histSubCount)
	return sub << uint(exp)
}

// Record adds one duration sample. Negative durations clamp to zero.
func (h *Histogram) Record(d time.Duration) {
	v := uint64(0)
	if d > 0 {
		v = uint64(d)
	}
	h.RecordValue(v)
}

// RecordValue adds one raw nanosecond sample.
func (h *Histogram) RecordValue(v uint64) {
	h.counts[histBucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.min.Load()
		if (cur != 0 && v+1 >= cur) || h.min.CompareAndSwap(cur, v+1) {
			break
		}
	}
}

// Merge folds other's buckets into h. It tolerates concurrent recording on
// either side (sums may be mid-flight, never corrupted).
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	for i := range other.counts {
		if c := other.counts[i].Load(); c != 0 {
			h.counts[i].Add(c)
		}
	}
	h.count.Add(other.count.Load())
	h.sum.Add(other.sum.Load())
	if m := other.max.Load(); m > h.max.Load() {
		h.max.Store(m)
	}
	if m := other.min.Load(); m != 0 {
		for {
			cur := h.min.Load()
			if (cur != 0 && m >= cur) || h.min.CompareAndSwap(cur, m) {
				break
			}
		}
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Quantile returns the latency at quantile q in [0, 1]. Out-of-range q is
// clamped; an empty histogram reports zero.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(q * float64(total))
	if target >= total {
		return h.Max()
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum > target {
			return time.Duration(histBucketValue(i))
		}
	}
	return h.Max()
}

// Mean returns the exact mean of recorded samples.
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Max returns the largest recorded sample (exact).
func (h *Histogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// Min returns the smallest recorded sample (exact), zero when empty.
func (h *Histogram) Min() time.Duration {
	m := h.min.Load()
	if m == 0 {
		return 0
	}
	return time.Duration(m - 1)
}

// HistogramSnapshot is a point-in-time summary of a histogram, in a form
// that marshals cleanly through expvar/JSON.
type HistogramSnapshot struct {
	Count uint64        `json:"count"`
	Mean  time.Duration `json:"mean_ns"`
	P50   time.Duration `json:"p50_ns"`
	P95   time.Duration `json:"p95_ns"`
	P99   time.Duration `json:"p99_ns"`
	Max   time.Duration `json:"max_ns"`
}

// Snapshot summarizes the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	return HistogramSnapshot{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
		Max:   h.Max(),
	}
}

// ValueSnapshot is the unitless counterpart of HistogramSnapshot, for
// histograms that record raw values (e.g. WAL commit group sizes) rather
// than durations.
type ValueSnapshot struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   uint64  `json:"p50"`
	P95   uint64  `json:"p95"`
	P99   uint64  `json:"p99"`
	Max   uint64  `json:"max"`
}

// ValueSnapshot summarizes a raw-value histogram without the duration
// typing.
func (h *Histogram) ValueSnapshot() ValueSnapshot {
	n := h.count.Load()
	var mean float64
	if n > 0 {
		mean = float64(h.sum.Load()) / float64(n)
	}
	return ValueSnapshot{
		Count: n,
		Mean:  mean,
		P50:   uint64(h.Quantile(0.50)),
		P95:   uint64(h.Quantile(0.95)),
		P99:   uint64(h.Quantile(0.99)),
		Max:   uint64(h.Max()),
	}
}
