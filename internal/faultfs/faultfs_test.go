package faultfs

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"clsm/internal/storage"
)

// runScript drives a fixed operation sequence against fs and returns the
// per-op results as strings ("ok" or the error), so two filesystems can be
// compared op for op.
func runScript(fs storage.FS) []string {
	var out []string
	rec := func(err error) {
		if err != nil {
			out = append(out, err.Error())
		} else {
			out = append(out, "ok")
		}
	}
	f, err := fs.Create("000001.log")
	rec(err)
	if err == nil {
		_, werr := f.Write([]byte("hello"))
		rec(werr)
		rec(f.Sync())
		_, werr = f.Write([]byte("world"))
		rec(werr)
		rec(f.Close())
	}
	rec(fs.WriteFile("CURRENT", []byte("MANIFEST-000002\n")))
	rec(fs.Rename("000001.log", "000003.log"))
	data, err := fs.ReadFile("000003.log")
	rec(err)
	out = append(out, string(data))
	rec(fs.Remove("000003.log"))
	names, err := fs.List()
	rec(err)
	out = append(out, fmt.Sprint(names))
	return out
}

// TestTransparentWhenUnarmed proves the wrapper is behaviorally identical
// to the raw filesystem when no fault plan is armed.
func TestTransparentWhenUnarmed(t *testing.T) {
	raw := runScript(storage.NewMemFS())
	wrapped := runScript(Wrap(storage.NewMemFS()))
	if len(raw) != len(wrapped) {
		t.Fatalf("result lengths differ: %d vs %d", len(raw), len(wrapped))
	}
	for i := range raw {
		if raw[i] != wrapped[i] {
			t.Errorf("op %d: raw=%q wrapped=%q", i, raw[i], wrapped[i])
		}
	}
}

// TestFaultKindsDeterministic is the table-driven proof that every fault
// kind fires on exactly the Nth matching op, with parameters derived from a
// fixed seed, across repeated runs.
func TestFaultKindsDeterministic(t *testing.T) {
	const seed = 7
	rng := rand.New(rand.NewSource(seed))
	n := rng.Intn(3) + 2       // error-at-N target: 2..4
	tornLen := rng.Intn(2) + 1 // torn prefix: 1..2 bytes (writes below are 2 bytes)
	flipBit := rng.Intn(32)

	type result struct {
		failedAt int    // 1-based write index that returned an error, 0 = none
		content  string // final file content
	}
	run := func(rules ...Rule) result {
		fs := Wrap(storage.NewMemFS())
		fs.Arm(rules...)
		f, err := fs.Create("000001.log")
		if err != nil {
			return result{failedAt: -1}
		}
		var res result
		for i := 1; i <= 6; i++ {
			if _, err := f.Write([]byte(fmt.Sprintf("w%d", i))); err != nil {
				if res.failedAt == 0 {
					res.failedAt = i
				}
				if !errors.Is(err, ErrInjected) {
					res.failedAt = -1
				}
			}
		}
		data, _ := fs.ReadFile("000001.log")
		res.content = string(data)
		return res
	}

	cases := []struct {
		name string
		rule Rule
		want result
	}{
		{
			"error-at-N",
			Rule{Op: OpWrite, Pattern: "*.log", N: n, Kind: FaultErr},
			result{failedAt: n, content: "w1w2w3w4w5w6"[:2*(n-1)] + func() string {
				s := ""
				for i := n + 1; i <= 6; i++ {
					s += fmt.Sprintf("w%d", i)
				}
				return s
			}()},
		},
		{
			"torn-write",
			Rule{Op: OpWrite, Pattern: "*.log", N: n, Kind: FaultTornWrite, TornLen: tornLen},
			result{failedAt: n, content: "w1w2w3w4w5w6"[:2*(n-1)] + fmt.Sprintf("w%d", n)[:tornLen] + func() string {
				s := ""
				for i := n + 1; i <= 6; i++ {
					s += fmt.Sprintf("w%d", i)
				}
				return s
			}()},
		},
		{
			"bit-flip",
			Rule{Op: OpWrite, Pattern: "*.log", N: n, Kind: FaultBitFlip, FlipBit: flipBit},
			result{failedAt: 0, content: func() string {
				b := []byte("w1w2w3w4w5w6")
				chunk := b[2*(n-1) : 2*n]
				chunk[(flipBit/8)%2] ^= 1 << (flipBit % 8)
				return string(b)
			}()},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			first := run(tc.rule)
			if first.failedAt != tc.want.failedAt {
				t.Errorf("failedAt = %d, want %d", first.failedAt, tc.want.failedAt)
			}
			if first.content != tc.want.content {
				t.Errorf("content = %q, want %q", first.content, tc.want.content)
			}
			// Determinism: an identical run produces the identical outcome.
			if again := run(tc.rule); again != first {
				t.Errorf("nondeterministic: first %+v, again %+v", first, again)
			}
		})
	}
}

// TestFaultOtherOps covers error injection on create/sync/rename/remove/
// writefile, including pattern mismatches leaving other files untouched.
func TestFaultOtherOps(t *testing.T) {
	cases := []struct {
		name string
		rule Rule
		op   func(fs *FS) error
	}{
		{"create", Rule{Op: OpCreate, Pattern: "*.sst", N: 1, Kind: FaultErr},
			func(fs *FS) error { _, err := fs.Create("000002.sst"); return err }},
		{"sync", Rule{Op: OpSync, Pattern: "*.log", N: 1, Kind: FaultErr},
			func(fs *FS) error {
				f, _ := fs.Create("000001.log")
				f.Write([]byte("x"))
				return f.Sync()
			}},
		{"rename", Rule{Op: OpRename, N: 1, Kind: FaultErr},
			func(fs *FS) error {
				fs.WriteFile("a", []byte("1"))
				return fs.Rename("a", "b")
			}},
		{"remove", Rule{Op: OpRemove, N: 1, Kind: FaultErr},
			func(fs *FS) error {
				fs.WriteFile("a", []byte("1"))
				return fs.Remove("a")
			}},
		{"writefile", Rule{Op: OpWriteFile, Pattern: "CURRENT", N: 1, Kind: FaultErr},
			func(fs *FS) error { return fs.WriteFile("CURRENT", []byte("x")) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs := Wrap(storage.NewMemFS())
			fs.Arm(tc.rule)
			if err := tc.op(fs); !errors.Is(err, ErrInjected) {
				t.Errorf("got %v, want ErrInjected", err)
			}
			// A pattern-mismatching file is untouched by the spent rule.
			if err := fs.WriteFile("unrelated", []byte("y")); err != nil {
				t.Errorf("unrelated op failed: %v", err)
			}
		})
	}
}

// TestPowerCutSemantics pins the durability model: unsynced bytes and
// unbarriered directory operations vanish from the durable image; a sync
// makes the synced file's content and all pending directory ops durable.
func TestPowerCutSemantics(t *testing.T) {
	fs := Wrap(storage.NewMemFS())

	f, _ := fs.Create("000001.log")
	f.Write([]byte("aaaa"))
	if img := fs.DurableSnapshot(); len(img) != 0 {
		t.Fatalf("before any sync, durable image should be empty, got %v", names(img))
	}

	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	img := fs.DurableSnapshot()
	if !bytes.Equal(img["000001.log"], []byte("aaaa")) {
		t.Fatalf("synced content not durable: %q", img["000001.log"])
	}

	// Post-sync appends are volatile until the next sync.
	f.Write([]byte("bbbb"))
	fs.WriteFile("CURRENT", []byte("M2"))
	fs.Remove("stale") // fails (absent); no pending op recorded
	img = fs.DurableSnapshot()
	if !bytes.Equal(img["000001.log"], []byte("aaaa")) {
		t.Fatalf("unsynced append leaked into durable image: %q", img["000001.log"])
	}
	if _, ok := img["CURRENT"]; ok {
		t.Fatal("unbarriered WriteFile leaked into durable image")
	}

	// Any sync is a barrier: directory ops and this file's content land.
	g, _ := fs.Create("000002.sst")
	g.Write([]byte("sst"))
	if err := g.Sync(); err != nil {
		t.Fatal(err)
	}
	img = fs.DurableSnapshot()
	if !bytes.Equal(img["CURRENT"], []byte("M2")) {
		t.Fatalf("barrier did not commit WriteFile: %v", img["CURRENT"])
	}
	if !bytes.Equal(img["000002.sst"], []byte("sst")) {
		t.Fatalf("synced file missing: %v", names(img))
	}
	if !bytes.Equal(img["000001.log"], []byte("aaaa")) {
		t.Fatal("barrier must not make another file's unsynced content durable")
	}
}

// TestCaptureTorn verifies torn crash images: pending directory ops
// applied, partial delta appended, optional bit flip confined to the tail.
func TestCaptureTorn(t *testing.T) {
	fs := Wrap(storage.NewMemFS())
	var torn, flipped map[string][]byte
	fs.SetHook(func(p Point) {
		if p.PreSync && torn == nil {
			torn = p.CaptureTorn(2, -1)
			flipped = p.CaptureTorn(len(p.SyncDelta), 0)
		}
	})
	f, _ := fs.Create("000001.log")
	f.Write([]byte("abcdef"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if torn == nil {
		t.Fatal("pre-sync hook never fired")
	}
	if !bytes.Equal(torn["000001.log"], []byte("ab")) {
		t.Fatalf("torn image content = %q, want %q", torn["000001.log"], "ab")
	}
	want := []byte("abcdef")
	want[0] ^= 1
	if !bytes.Equal(flipped["000001.log"], want) {
		t.Fatalf("flipped image content = %q, want %q", flipped["000001.log"], want)
	}
	// The real durable image is unaffected by captures.
	if img := fs.DurableSnapshot(); !bytes.Equal(img["000001.log"], []byte("abcdef")) {
		t.Fatalf("durable image damaged by capture: %q", img["000001.log"])
	}
}

// TestStepMonotone checks crash-point ids increase across ops and files.
func TestStepMonotone(t *testing.T) {
	fs := Wrap(storage.NewMemFS())
	var steps []uint64
	fs.SetHook(func(p Point) { steps = append(steps, p.Step) })
	f, _ := fs.Create("a")
	f.Write([]byte("1"))
	f.Sync()
	fs.WriteFile("b", []byte("2"))
	fs.Remove("b")
	for i := 1; i < len(steps); i++ {
		if steps[i] < steps[i-1] {
			t.Fatalf("steps not monotone: %v", steps)
		}
	}
	if fs.Step() != steps[len(steps)-1] {
		t.Fatalf("Step() = %d, want %d", fs.Step(), steps[len(steps)-1])
	}
}

func names(img map[string][]byte) []string {
	var out []string
	for n := range img {
		out = append(out, n)
	}
	return out
}
