// Package faultfs wraps a storage.FS with deterministic fault injection
// and power-loss simulation for crash-consistency testing.
//
// Two orthogonal mechanisms are provided:
//
//   - Fault plans: Arm installs rules that fire on the Nth operation of a
//     given kind matching a file-name pattern — an injected error, a torn
//     write (only a prefix reaches the file), or a silent bit flip. Rules
//     are counted deterministically, so a (seed → rules) derivation replays
//     exactly.
//
//   - Power-cut tracking: the wrapper maintains, alongside the live inner
//     filesystem, the durable image — what would survive if power were cut
//     right now. File content becomes durable only when the file is synced;
//     directory operations (create, rename, remove, whole-file writes)
//     become durable at the next successful Sync of ANY file (the "sync
//     barrier", modeling a journaling filesystem that orders metadata on
//     flush). A hook observes every mutating operation as a crash point and
//     can capture the durable image, including torn variants in which the
//     tail being synced reaches the medium only partially or corrupted.
//
// The wrapper is transparent when no rules are armed: every operation is
// forwarded to the inner FS unchanged (power-cut bookkeeping is passive).
package faultfs

import (
	"path"
	"sync"
	"sync/atomic"
	"time"

	"clsm/internal/storage"
)

// injectedError is the concrete type behind ErrInjected. It reports
// Temporary() true — the net.Error convention for a condition that may
// clear on retry — so the engine's health classifier treats injected
// faults like the flaky-device errors they model (transient, retried with
// backoff) rather than as unknown fatal errors.
type injectedError struct{}

func (injectedError) Error() string   { return "faultfs: injected fault" }
func (injectedError) Temporary() bool { return true }

// ErrInjected is the error returned by operations failed by a fault rule.
// Compare with errors.Is.
var ErrInjected error = injectedError{}

// Op enumerates the intercepted mutating filesystem operations.
type Op uint8

// Intercepted operations. Read-side operations (Open, ReadFile, List) pass
// through unfaulted: the engine's durability story is about writes.
const (
	OpCreate Op = iota
	OpWrite
	OpSync
	OpRename
	OpRemove
	OpWriteFile
	NumOps
)

// String names the op for labels and test output.
func (o Op) String() string {
	switch o {
	case OpCreate:
		return "create"
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpRename:
		return "rename"
	case OpRemove:
		return "remove"
	case OpWriteFile:
		return "writefile"
	}
	return "unknown"
}

// FaultKind selects what an armed rule does when it fires.
type FaultKind uint8

const (
	// FaultErr fails the operation with ErrInjected; no state changes.
	FaultErr FaultKind = iota
	// FaultTornWrite (OpWrite only) persists the first TornLen bytes of
	// the write, then fails with ErrInjected — a write the device cut
	// short.
	FaultTornWrite
	// FaultBitFlip (OpWrite only) persists the full write with bit FlipBit
	// inverted and reports success — silent medium corruption.
	FaultBitFlip
)

// Rule arms one deterministic fault: the Nth operation of kind Op whose
// file name matches Pattern (a path.Match glob; empty matches everything)
// fires Kind. A fired rule is spent and never fires again.
type Rule struct {
	Op      Op
	Pattern string
	N       int // 1-based match count at which the rule fires
	Kind    FaultKind
	TornLen int // FaultTornWrite: bytes of the write that reach the file
	FlipBit int // FaultBitFlip: bit index within the write buffer to invert

	hits  int
	spent bool
}

// Point describes one mutating filesystem operation as a crash point. For
// Sync operations the hook is called twice: once with PreSync set, before
// the sync takes effect (the torn-write window — SyncDelta holds the
// not-yet-durable tail of the file, valid only during the call), and once
// after the barrier applied.
type Point struct {
	Step      uint64
	Op        Op
	Name      string
	PreSync   bool
	SyncDelta []byte
	fs        *FS
}

// Hook observes crash points. It is invoked synchronously with the
// filesystem's mutex held: it may call the Point capture methods (and slow
// work like reopening a different FS is fine), but it must not call back
// into this FS.
type Hook func(Point)

// CaptureDurable deep-copies the durable image at this point: exactly the
// files and bytes that survive a power cut here.
func (p Point) CaptureDurable() map[string][]byte {
	return p.fs.captureLocked(false, "", nil)
}

// CaptureTorn builds a torn crash image for a PreSync point: the durable
// image with pending directory operations applied (the barrier was
// mid-flight) and only the first keep bytes of the sync's delta appended to
// the file; flipBit >= 0 additionally inverts that bit within the appended
// tail. It returns nil for non-PreSync points or an empty delta.
func (p Point) CaptureTorn(keep, flipBit int) map[string][]byte {
	if !p.PreSync || len(p.SyncDelta) == 0 {
		return nil
	}
	if keep < 0 {
		keep = 0
	}
	if keep > len(p.SyncDelta) {
		keep = len(p.SyncDelta)
	}
	tail := append([]byte(nil), p.SyncDelta[:keep]...)
	if flipBit >= 0 && len(tail) > 0 {
		tail[(flipBit/8)%len(tail)] ^= 1 << (flipBit % 8)
	}
	return p.fs.captureLocked(true, p.Name, tail)
}

// fileState mirrors one live file's content and its synced prefix.
type fileState struct {
	data      []byte
	syncedLen int
}

// dirOp is a directory operation awaiting a sync barrier.
type dirOp struct {
	op            Op
	name, newname string
	data          []byte // OpWriteFile payload
}

// FS is the fault-injecting wrapper. All methods are safe for concurrent
// use; a single mutex serializes mutating operations, which also gives
// crash points a total order (the step counter).
type FS struct {
	inner storage.FS

	mu      sync.Mutex
	step    atomic.Uint64
	state   map[string]*fileState
	durable map[string][]byte
	pending []dirOp
	rules   []*Rule
	hook    Hook

	// Delay rules live under their own mutex and the sleep happens before
	// fs.mu is taken: a slowed sstable write must not stall unrelated
	// operations (WAL appends) that share the filesystem.
	delayMu sync.Mutex
	delays  []delayRule
}

// delayRule slows every operation of one kind matching a name pattern.
type delayRule struct {
	op      Op
	pattern string
	d       time.Duration
}

// SetDelay makes every subsequent operation of kind op whose file name
// matches pattern (a path.Match glob; empty matches everything) sleep d
// before executing — a deterministic slow-device model for backpressure
// tests. The sleep happens outside the filesystem's operation lock, so only
// matching operations are slowed. Setting the same (op, pattern) again
// replaces the delay; d <= 0 removes it.
func (fs *FS) SetDelay(op Op, pattern string, d time.Duration) {
	fs.delayMu.Lock()
	defer fs.delayMu.Unlock()
	for i := range fs.delays {
		if fs.delays[i].op == op && fs.delays[i].pattern == pattern {
			if d <= 0 {
				fs.delays = append(fs.delays[:i], fs.delays[i+1:]...)
			} else {
				fs.delays[i].d = d
			}
			return
		}
	}
	if d > 0 {
		fs.delays = append(fs.delays, delayRule{op: op, pattern: pattern, d: d})
	}
}

// delay sleeps out the configured delay for (op, name), if any. Must be
// called before fs.mu is acquired.
func (fs *FS) delay(op Op, name string) {
	fs.delayMu.Lock()
	var d time.Duration
	for _, r := range fs.delays {
		if r.op != op {
			continue
		}
		if r.pattern != "" {
			if ok, _ := path.Match(r.pattern, name); !ok {
				continue
			}
		}
		if r.d > d {
			d = r.d
		}
	}
	fs.delayMu.Unlock()
	if d > 0 {
		time.Sleep(d)
	}
}

// Wrap builds a fault-injecting wrapper around inner. Existing files are
// imported as fully durable.
func Wrap(inner storage.FS) *FS {
	fs := &FS{
		inner:   inner,
		state:   map[string]*fileState{},
		durable: map[string][]byte{},
	}
	if names, err := inner.List(); err == nil {
		for _, name := range names {
			if data, err := inner.ReadFile(name); err == nil {
				fs.state[name] = &fileState{data: data, syncedLen: len(data)}
				fs.durable[name] = append([]byte(nil), data...)
			}
		}
	}
	return fs
}

// Arm installs fault rules (appending to any already armed).
func (fs *FS) Arm(rules ...Rule) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for i := range rules {
		r := rules[i]
		fs.rules = append(fs.rules, &r)
	}
}

// SetHook installs (or with nil removes) the crash-point hook.
func (fs *FS) SetHook(h Hook) {
	fs.mu.Lock()
	fs.hook = h
	fs.mu.Unlock()
}

// Step returns the id of the most recent crash point. Monotone; safe to
// read without holding any lock.
func (fs *FS) Step() uint64 { return fs.step.Load() }

// DurableSnapshot captures the current durable image (what a power cut
// right now would leave behind).
func (fs *FS) DurableSnapshot() map[string][]byte {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.captureLocked(false, "", nil)
}

// nextStep allocates the next crash-point id. Caller holds fs.mu.
func (fs *FS) nextStep() uint64 { return fs.step.Add(1) }

// match counts op against the armed rules and returns the rule that fires
// now, if any. Caller holds fs.mu.
func (fs *FS) match(op Op, name string) *Rule {
	for _, r := range fs.rules {
		if r.spent || r.Op != op {
			continue
		}
		if r.Pattern != "" {
			if ok, _ := path.Match(r.Pattern, name); !ok {
				continue
			}
		}
		r.hits++
		if r.hits == r.N {
			r.spent = true
			return r
		}
	}
	return nil
}

// fire invokes the hook. Caller holds fs.mu.
func (fs *FS) fire(p Point) {
	if fs.hook != nil {
		p.fs = fs
		fs.hook(p)
	}
}

// applyBarrierLocked makes every pending directory operation durable, in
// order. Caller holds fs.mu.
func (fs *FS) applyBarrierLocked() {
	applyDirOps(fs.durable, fs.pending)
	fs.pending = fs.pending[:0]
}

func applyDirOps(durable map[string][]byte, pending []dirOp) {
	for _, op := range pending {
		switch op.op {
		case OpCreate:
			durable[op.name] = []byte{}
		case OpRename:
			if d, ok := durable[op.name]; ok {
				durable[op.newname] = d
				delete(durable, op.name)
			}
		case OpRemove:
			delete(durable, op.name)
		case OpWriteFile:
			durable[op.name] = append([]byte(nil), op.data...)
		}
	}
}

// captureLocked deep-copies the durable image. With applyPending set it
// additionally applies the pending directory operations to the copy and,
// when tornName is non-empty, appends tornTail to that file's content (the
// CaptureTorn semantics). Called from hook context or under fs.mu.
func (fs *FS) captureLocked(applyPending bool, tornName string, tornTail []byte) map[string][]byte {
	out := make(map[string][]byte, len(fs.durable)+1)
	for name, data := range fs.durable {
		out[name] = append([]byte(nil), data...)
	}
	if applyPending {
		applyDirOps(out, fs.pending)
	}
	if tornName != "" {
		out[tornName] = append(out[tornName], tornTail...)
	}
	return out
}

// ---------------------------------------------------------------------------
// storage.FS implementation

// Create implements storage.FS.
func (fs *FS) Create(name string) (storage.File, error) {
	fs.delay(OpCreate, name)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	step := fs.nextStep()
	if r := fs.match(OpCreate, name); r != nil {
		return nil, ErrInjected
	}
	f, err := fs.inner.Create(name)
	if err != nil {
		return nil, err
	}
	st := &fileState{}
	fs.state[name] = st
	fs.pending = append(fs.pending, dirOp{op: OpCreate, name: name})
	fs.fire(Point{Step: step, Op: OpCreate, Name: name})
	return &file{fs: fs, name: name, f: f, st: st}, nil
}

// Open implements storage.FS (pass-through: reads see the live state).
func (fs *FS) Open(name string) (storage.RandomReader, error) { return fs.inner.Open(name) }

// ReadFile implements storage.FS (pass-through).
func (fs *FS) ReadFile(name string) ([]byte, error) { return fs.inner.ReadFile(name) }

// List implements storage.FS (pass-through).
func (fs *FS) List() ([]string, error) { return fs.inner.List() }

// Remove implements storage.FS.
func (fs *FS) Remove(name string) error {
	fs.delay(OpRemove, name)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	step := fs.nextStep()
	if r := fs.match(OpRemove, name); r != nil {
		return ErrInjected
	}
	if err := fs.inner.Remove(name); err != nil {
		return err
	}
	delete(fs.state, name)
	fs.pending = append(fs.pending, dirOp{op: OpRemove, name: name})
	fs.fire(Point{Step: step, Op: OpRemove, Name: name})
	return nil
}

// Rename implements storage.FS.
func (fs *FS) Rename(oldname, newname string) error {
	fs.delay(OpRename, oldname)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	step := fs.nextStep()
	if r := fs.match(OpRename, oldname); r != nil {
		return ErrInjected
	}
	if err := fs.inner.Rename(oldname, newname); err != nil {
		return err
	}
	if st, ok := fs.state[oldname]; ok {
		fs.state[newname] = st
		delete(fs.state, oldname)
	}
	fs.pending = append(fs.pending, dirOp{op: OpRename, name: oldname, newname: newname})
	fs.fire(Point{Step: step, Op: OpRename, Name: oldname})
	return nil
}

// WriteFile implements storage.FS. The write is atomic (the durable image
// holds either the old or the new content, never a mix) but not durable
// until the next sync barrier — the rename-into-place contract of a real
// filesystem without a directory fsync.
func (fs *FS) WriteFile(name string, data []byte) error {
	fs.delay(OpWriteFile, name)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	step := fs.nextStep()
	if r := fs.match(OpWriteFile, name); r != nil {
		return ErrInjected
	}
	if err := fs.inner.WriteFile(name, data); err != nil {
		return err
	}
	cp := append([]byte(nil), data...)
	fs.state[name] = &fileState{data: cp, syncedLen: len(cp)}
	fs.pending = append(fs.pending, dirOp{op: OpWriteFile, name: name, data: cp})
	fs.fire(Point{Step: step, Op: OpWriteFile, Name: name})
	return nil
}

// Link implements storage.FS by copying: the source read passes through
// (reads are never faulted), and the destination write goes through dst's
// own WriteFile — so when dst is itself a fault-injecting wrapper (the
// remote tier in the backup crash matrix), its armed rules and durable
// image govern the copy exactly like any other whole-file write.
func (fs *FS) Link(oldname string, dst storage.FS, newname string) error {
	data, err := fs.ReadFile(oldname)
	if err != nil {
		return err
	}
	return dst.WriteFile(newname, data)
}

// file wraps one sequential-write handle.
type file struct {
	fs   *FS
	name string
	f    storage.File
	st   *fileState
}

// Write implements storage.File.
func (f *file) Write(p []byte) (int, error) {
	fs := f.fs
	fs.delay(OpWrite, f.name)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	step := fs.nextStep()
	if r := fs.match(OpWrite, f.name); r != nil {
		switch r.Kind {
		case FaultTornWrite:
			keep := r.TornLen
			if keep > len(p) {
				keep = len(p)
			}
			if keep > 0 {
				n, err := f.f.Write(p[:keep])
				f.st.data = append(f.st.data, p[:n]...)
				if err != nil {
					return n, err
				}
			}
			return keep, ErrInjected
		case FaultBitFlip:
			c := append([]byte(nil), p...)
			c[(r.FlipBit/8)%len(c)] ^= 1 << (r.FlipBit % 8)
			n, err := f.f.Write(c)
			f.st.data = append(f.st.data, c[:n]...)
			if err != nil {
				return n, err
			}
			// Silent corruption: the caller sees success.
			fs.fire(Point{Step: step, Op: OpWrite, Name: f.name})
			return len(p), nil
		default:
			return 0, ErrInjected
		}
	}
	n, err := f.f.Write(p)
	f.st.data = append(f.st.data, p[:n]...)
	if err != nil {
		return n, err
	}
	fs.fire(Point{Step: step, Op: OpWrite, Name: f.name})
	return n, nil
}

// Sync implements storage.File: on success the file's full content becomes
// durable and every pending directory operation is committed (the sync
// barrier).
func (f *file) Sync() error {
	fs := f.fs
	fs.delay(OpSync, f.name)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	step := fs.nextStep()
	if r := fs.match(OpSync, f.name); r != nil {
		return ErrInjected
	}
	fs.fire(Point{
		Step: step, Op: OpSync, Name: f.name,
		PreSync: true, SyncDelta: f.st.data[f.st.syncedLen:],
	})
	if err := f.f.Sync(); err != nil {
		return err
	}
	fs.applyBarrierLocked()
	fs.durable[f.name] = append([]byte(nil), f.st.data...)
	f.st.syncedLen = len(f.st.data)
	fs.fire(Point{Step: step, Op: OpSync, Name: f.name})
	return nil
}

// Close implements storage.File (pass-through; closing does not sync).
func (f *file) Close() error { return f.f.Close() }
