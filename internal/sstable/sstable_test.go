package sstable

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"clsm/internal/cache"
	"clsm/internal/keys"
	"clsm/internal/storage"
)

type kv struct {
	ik []byte
	v  []byte
}

func buildTable(t *testing.T, fs *storage.MemFS, name string, entries []kv, opts WriterOptions) Meta {
	t.Helper()
	f, err := fs.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(f, opts)
	for _, e := range entries {
		if err := w.Add(e.ik, e.v); err != nil {
			t.Fatalf("Add(%s): %v", keys.String(e.ik), err)
		}
	}
	meta, err := w.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return meta
}

func openTable(t *testing.T, fs *storage.MemFS, name string, c *cache.Cache) *Reader {
	t.Helper()
	src, err := fs.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(src, 1, c)
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	return r
}

func genEntries(n int, versions int) []kv {
	var out []kv
	ts := uint64(1)
	for i := 0; i < n; i++ {
		for v := 0; v < versions; v++ {
			k := fmt.Sprintf("key%06d", i)
			out = append(out, kv{
				ik: keys.Make([]byte(k), ts, keys.KindValue),
				v:  []byte(fmt.Sprintf("val-%d-%d", i, ts)),
			})
			ts++
		}
	}
	sort.Slice(out, func(i, j int) bool { return keys.Compare(out[i].ik, out[j].ik) < 0 })
	return out
}

func TestBuildAndIterate(t *testing.T) {
	fs := storage.NewMemFS()
	entries := genEntries(2000, 2)
	meta := buildTable(t, fs, "t", entries, WriterOptions{BlockSize: 512, BloomBitsPerKey: 10})
	if meta.Entries != len(entries) {
		t.Fatalf("meta.Entries = %d, want %d", meta.Entries, len(entries))
	}
	if !bytes.Equal(meta.Smallest, entries[0].ik) || !bytes.Equal(meta.Largest, entries[len(entries)-1].ik) {
		t.Fatal("meta bounds wrong")
	}

	r := openTable(t, fs, "t", cache.New(1<<20))
	defer r.Close()
	it := r.NewIterator()
	i := 0
	for it.First(); it.Valid(); it.Next() {
		if !bytes.Equal(it.Key(), entries[i].ik) || !bytes.Equal(it.Value(), entries[i].v) {
			t.Fatalf("entry %d mismatch: got %s", i, keys.String(it.Key()))
		}
		i++
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if i != len(entries) {
		t.Fatalf("iterated %d entries, want %d", i, len(entries))
	}
}

func TestSeekGE(t *testing.T) {
	fs := storage.NewMemFS()
	entries := genEntries(500, 1)
	buildTable(t, fs, "t", entries, WriterOptions{BlockSize: 256})
	r := openTable(t, fs, "t", nil)
	defer r.Close()
	it := r.NewIterator()
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 500; trial++ {
		target := entries[rng.Intn(len(entries))].ik
		it.SeekGE(target)
		if !it.Valid() {
			t.Fatalf("SeekGE(%s) exhausted", keys.String(target))
		}
		if !bytes.Equal(it.Key(), target) {
			t.Fatalf("SeekGE(%s) landed on %s", keys.String(target), keys.String(it.Key()))
		}
	}
	// Seek between keys.
	it.SeekGE(keys.Make([]byte("key000100x"), 1, keys.KindValue))
	if !it.Valid() || string(keys.UserKey(it.Key())) != "key000101" {
		t.Fatalf("between-key seek landed on %s", keys.String(it.Key()))
	}
	// Seek past the end.
	it.SeekGE(keys.Make([]byte("zzz"), 1, keys.KindValue))
	if it.Valid() {
		t.Fatal("seek past end is valid")
	}
}

func TestGetVersions(t *testing.T) {
	fs := storage.NewMemFS()
	var entries []kv
	for _, ts := range []uint64{90, 50, 10} { // descending order within key
		entries = append(entries, kv{
			ik: keys.Make([]byte("k"), ts, keys.KindValue),
			v:  []byte(fmt.Sprintf("v%d", ts)),
		})
	}
	buildTable(t, fs, "t", entries, WriterOptions{BloomBitsPerKey: 10})
	r := openTable(t, fs, "t", nil)
	defer r.Close()

	for _, tc := range []struct {
		ts   uint64
		want string
		ok   bool
	}{
		{100, "v90", true},
		{90, "v90", true},
		{89, "v50", true},
		{50, "v50", true},
		{49, "v10", true},
		{10, "v10", true},
		{9, "", false},
	} {
		v, vts, kind, ok, err := r.Get(keys.SeekKey([]byte("k"), tc.ts))
		if err != nil {
			t.Fatal(err)
		}
		if ok != tc.ok {
			t.Fatalf("Get@%d ok=%v want %v", tc.ts, ok, tc.ok)
		}
		if ok && kind != keys.KindValue {
			t.Fatalf("Get@%d kind=%d, want KindValue", tc.ts, kind)
		}
		if ok && string(v) != tc.want {
			t.Fatalf("Get@%d = %q, want %q", tc.ts, v, tc.want)
		}
		if ok && vts > tc.ts {
			t.Fatalf("Get@%d returned version ts %d from the future", tc.ts, vts)
		}
	}
	// Absent key, filtered by bloom.
	if _, _, _, ok, _ := r.Get(keys.SeekKey([]byte("absent"), 100)); ok {
		t.Fatal("found absent key")
	}
}

func TestBloomSkipsAbsent(t *testing.T) {
	fs := storage.NewMemFS()
	entries := genEntries(1000, 1)
	buildTable(t, fs, "t", entries, WriterOptions{BloomBitsPerKey: 10})
	r := openTable(t, fs, "t", nil)
	defer r.Close()
	misses := 0
	for i := 0; i < 1000; i++ {
		if !r.MayContain([]byte(fmt.Sprintf("nosuch%d", i))) {
			misses++
		}
	}
	if misses < 950 {
		t.Errorf("bloom rejected only %d/1000 absent keys", misses)
	}
	for i := 0; i < 1000; i++ {
		if !r.MayContain([]byte(fmt.Sprintf("key%06d", i))) {
			t.Fatal("bloom false negative")
		}
	}
}

func TestBlockCacheUsed(t *testing.T) {
	fs := storage.NewMemFS()
	entries := genEntries(2000, 1)
	buildTable(t, fs, "t", entries, WriterOptions{BlockSize: 512})
	c := cache.New(1 << 20)
	r := openTable(t, fs, "t", c)
	defer r.Close()
	it := r.NewIterator()
	for it.First(); it.Valid(); it.Next() {
	}
	if c.Len() == 0 {
		t.Fatal("block cache unused after full scan")
	}
	before := c.Len()
	it2 := r.NewIterator()
	for it2.First(); it2.Valid(); it2.Next() {
	}
	if c.Len() != before {
		t.Errorf("second scan changed cache population: %d -> %d", before, c.Len())
	}
}

func TestOutOfOrderAddRejected(t *testing.T) {
	fs := storage.NewMemFS()
	f, _ := fs.Create("t")
	w := NewWriter(f, WriterOptions{})
	if err := w.Add(keys.Make([]byte("b"), 1, keys.KindValue), nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Add(keys.Make([]byte("a"), 1, keys.KindValue), nil); err == nil {
		t.Fatal("out-of-order Add accepted")
	}
	// Same user key, newer timestamp must also be rejected (it sorts first).
	if err := w.Add(keys.Make([]byte("b"), 9, keys.KindValue), nil); err == nil {
		t.Fatal("newer version after older accepted")
	}
}

func TestCorruptionDetected(t *testing.T) {
	fs := storage.NewMemFS()
	entries := genEntries(100, 1)
	buildTable(t, fs, "t", entries, WriterOptions{BlockSize: 256})
	data, _ := fs.ReadFile("t")

	// Flip a byte in the middle of the first data block.
	bad := append([]byte(nil), data...)
	bad[50] ^= 0xff
	fs.WriteFile("bad", bad)
	src, _ := fs.Open("bad")
	r, err := NewReader(src, 2, nil)
	if err == nil {
		it := r.NewIterator()
		for it.First(); it.Valid(); it.Next() {
		}
		if it.Err() == nil {
			t.Fatal("corruption not detected by iterator")
		}
	}

	// Corrupt the magic.
	bad2 := append([]byte(nil), data...)
	bad2[len(bad2)-1] ^= 0xff
	fs.WriteFile("bad2", bad2)
	src2, _ := fs.Open("bad2")
	if _, err := NewReader(src2, 3, nil); err == nil {
		t.Fatal("bad magic accepted")
	}

	// Truncated file.
	fs.WriteFile("tiny", []byte("short"))
	src3, _ := fs.Open("tiny")
	if _, err := NewReader(src3, 4, nil); err == nil {
		t.Fatal("tiny file accepted")
	}
}

func TestEmptyTable(t *testing.T) {
	fs := storage.NewMemFS()
	meta := buildTable(t, fs, "t", nil, WriterOptions{})
	if meta.Entries != 0 {
		t.Fatalf("Entries = %d", meta.Entries)
	}
	r := openTable(t, fs, "t", nil)
	defer r.Close()
	it := r.NewIterator()
	it.First()
	if it.Valid() {
		t.Fatal("empty table iterator valid")
	}
	if _, _, _, ok, _ := r.Get(keys.SeekKey([]byte("x"), 1)); ok {
		t.Fatal("Get on empty table found something")
	}
}

// Round-trip with random keys/values and random block size.
func TestRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		fs := storage.NewMemFS()
		m := map[string]string{}
		for i := 0; i < 500; i++ {
			k := make([]byte, rng.Intn(20)+1)
			for j := range k {
				k[j] = byte('a' + rng.Intn(6))
			}
			v := make([]byte, rng.Intn(100))
			rng.Read(v)
			m[string(k)] = string(v)
		}
		var entries []kv
		ts := uint64(1)
		for k, v := range m {
			entries = append(entries, kv{ik: keys.Make([]byte(k), ts, keys.KindValue), v: []byte(v)})
			ts++
		}
		sort.Slice(entries, func(i, j int) bool { return keys.Compare(entries[i].ik, entries[j].ik) < 0 })
		buildTable(t, fs, "t", entries, WriterOptions{BlockSize: 128 << rng.Intn(6), BloomBitsPerKey: 10})
		r := openTable(t, fs, "t", nil)
		for k, v := range m {
			got, _, _, ok, err := r.Get(keys.SeekKey([]byte(k), keys.MaxTimestamp))
			if err != nil || !ok || string(got) != v {
				t.Fatalf("trial %d: Get(%q) = %q,%v,%v", trial, k, got, ok, err)
			}
		}
		r.Close()
	}
}
