// Package sstable implements the immutable sorted-table file format of the
// disk component: prefix-compressed data blocks with restart points, a
// whole-table Bloom filter, an index block, and a fixed-size footer —
// structurally the LevelDB table format, rebuilt from scratch.
package sstable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"clsm/internal/keys"
)

// restartInterval is the number of entries between full (uncompressed)
// keys within a block.
const restartInterval = 16

// ErrCorrupt reports a structurally invalid block or table.
var ErrCorrupt = errors.New("sstable: corrupt table")

// blockBuilder assembles one block: entries with shared-prefix key
// compression plus a restart-point array.
type blockBuilder struct {
	buf      []byte
	restarts []uint32
	count    int
	lastKey  []byte
}

func (b *blockBuilder) add(ikey, value []byte) {
	shared := 0
	if b.count%restartInterval == 0 {
		b.restarts = append(b.restarts, uint32(len(b.buf)))
	} else {
		n := len(ikey)
		if len(b.lastKey) < n {
			n = len(b.lastKey)
		}
		for shared < n && ikey[shared] == b.lastKey[shared] {
			shared++
		}
	}
	b.buf = binary.AppendUvarint(b.buf, uint64(shared))
	b.buf = binary.AppendUvarint(b.buf, uint64(len(ikey)-shared))
	b.buf = binary.AppendUvarint(b.buf, uint64(len(value)))
	b.buf = append(b.buf, ikey[shared:]...)
	b.buf = append(b.buf, value...)
	b.lastKey = append(b.lastKey[:0], ikey...)
	b.count++
}

func (b *blockBuilder) estimatedSize() int {
	return len(b.buf) + 4*len(b.restarts) + 4
}

func (b *blockBuilder) empty() bool { return b.count == 0 }

// finish appends the restart array and count, returning the block contents.
func (b *blockBuilder) finish() []byte {
	if len(b.restarts) == 0 {
		b.restarts = append(b.restarts, 0)
	}
	for _, r := range b.restarts {
		b.buf = binary.LittleEndian.AppendUint32(b.buf, r)
	}
	b.buf = binary.LittleEndian.AppendUint32(b.buf, uint32(len(b.restarts)))
	return b.buf
}

func (b *blockBuilder) reset() {
	b.buf = b.buf[:0]
	b.restarts = b.restarts[:0]
	b.count = 0
	b.lastKey = b.lastKey[:0]
}

// blockIter iterates one decoded block.
type blockIter struct {
	data     []byte // entry region (restart array stripped)
	restarts []uint32
	off      int // offset of current entry within data
	nextOff  int
	key      []byte
	val      []byte
	valid    bool
	err      error
}

func newBlockIter(block []byte) (*blockIter, error) {
	it := &blockIter{}
	if err := it.init(block); err != nil {
		return nil, err
	}
	return it, nil
}

// init (re)binds the iterator to a decoded block, reusing the restart and
// key scratch from any previous binding so pooled iterators decode blocks
// without allocating.
func (it *blockIter) init(block []byte) error {
	it.off, it.nextOff = 0, 0
	it.key = it.key[:0]
	it.val = nil
	it.valid = false
	it.err = nil
	if len(block) < 4 {
		return fmt.Errorf("%w: block too small", ErrCorrupt)
	}
	n := int(binary.LittleEndian.Uint32(block[len(block)-4:]))
	restartsOff := len(block) - 4 - 4*n
	if n <= 0 || restartsOff < 0 {
		return fmt.Errorf("%w: bad restart count %d", ErrCorrupt, n)
	}
	if cap(it.restarts) < n {
		it.restarts = make([]uint32, n)
	}
	it.restarts = it.restarts[:n]
	for i := 0; i < n; i++ {
		it.restarts[i] = binary.LittleEndian.Uint32(block[restartsOff+4*i:])
		if int(it.restarts[i]) > restartsOff {
			return fmt.Errorf("%w: restart beyond entries", ErrCorrupt)
		}
	}
	it.data = block[:restartsOff]
	return nil
}

func (it *blockIter) First() {
	it.nextOff = 0
	it.key = it.key[:0]
	it.valid = false
	it.Next()
}

// Next is also the initial step after First/seekToRestart.
func (it *blockIter) Next() {
	if it.err != nil || it.nextOff >= len(it.data) {
		it.valid = false
		return
	}
	it.off = it.nextOff
	shared, n1 := binary.Uvarint(it.data[it.nextOff:])
	if n1 <= 0 {
		it.fail()
		return
	}
	p := it.nextOff + n1
	unshared, n2 := binary.Uvarint(it.data[p:])
	if n2 <= 0 {
		it.fail()
		return
	}
	p += n2
	vlen, n3 := binary.Uvarint(it.data[p:])
	if n3 <= 0 {
		it.fail()
		return
	}
	p += n3
	if int(shared) > len(it.key) || p+int(unshared)+int(vlen) > len(it.data) {
		it.fail()
		return
	}
	it.key = append(it.key[:shared], it.data[p:p+int(unshared)]...)
	p += int(unshared)
	it.val = it.data[p : p+int(vlen)]
	it.nextOff = p + int(vlen)
	it.valid = true
}

func (it *blockIter) fail() {
	it.err = fmt.Errorf("%w: bad entry at offset %d", ErrCorrupt, it.nextOff)
	it.valid = false
}

func (it *blockIter) seekToRestart(i int) {
	it.nextOff = int(it.restarts[i])
	it.key = it.key[:0]
	it.Next()
}

// SeekGE positions at the first entry >= ikey.
func (it *blockIter) SeekGE(ikey []byte) {
	// Binary-search restart points for the last restart whose key < ikey.
	i := sort.Search(len(it.restarts), func(i int) bool {
		k, ok := it.restartKey(i)
		return !ok || keys.Compare(k, ikey) >= 0
	})
	if it.err != nil {
		it.valid = false
		return
	}
	if i > 0 {
		i--
	}
	it.seekToRestart(i)
	for it.valid && keys.Compare(it.key, ikey) < 0 {
		it.Next()
	}
}

// restartKey decodes the full key stored at restart i.
func (it *blockIter) restartKey(i int) ([]byte, bool) {
	off := int(it.restarts[i])
	_, n1 := binary.Uvarint(it.data[off:])
	if n1 <= 0 {
		it.err = fmt.Errorf("%w: bad restart entry", ErrCorrupt)
		return nil, false
	}
	p := off + n1
	unshared, n2 := binary.Uvarint(it.data[p:])
	if n2 <= 0 {
		it.err = fmt.Errorf("%w: bad restart entry", ErrCorrupt)
		return nil, false
	}
	p += n2
	vlen, n3 := binary.Uvarint(it.data[p:])
	if n3 <= 0 || p+n3+int(unshared) > len(it.data) {
		it.err = fmt.Errorf("%w: bad restart entry", ErrCorrupt)
		return nil, false
	}
	_ = vlen
	p += n3
	return it.data[p : p+int(unshared)], true
}

// Last positions at the final entry of the block.
func (it *blockIter) Last() {
	if it.err != nil || len(it.data) == 0 {
		it.valid = false
		return
	}
	it.seekToRestart(len(it.restarts) - 1)
	for it.valid && it.nextOff < len(it.data) {
		it.Next()
	}
}

// Prev steps to the predecessor entry by replaying forward from the
// nearest restart point — the standard technique for prefix-compressed
// blocks (entries cannot be decoded backwards).
func (it *blockIter) Prev() {
	if it.err != nil || !it.valid {
		it.valid = false
		return
	}
	target := it.off
	if target == 0 {
		it.valid = false // caller moves to the previous block
		return
	}
	// Largest restart strictly before the current entry.
	i := sort.Search(len(it.restarts), func(i int) bool {
		return int(it.restarts[i]) >= target
	}) - 1
	if i < 0 {
		i = 0
	}
	it.seekToRestart(i)
	for it.valid && it.nextOff < target {
		it.Next()
	}
}

func (it *blockIter) Valid() bool   { return it.valid }
func (it *blockIter) Key() []byte   { return it.key }
func (it *blockIter) Value() []byte { return it.val }
func (it *blockIter) Err() error    { return it.err }
