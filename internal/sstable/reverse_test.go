package sstable

import (
	"bytes"
	"math/rand"
	"testing"

	"clsm/internal/iterator"
	"clsm/internal/keys"
	"clsm/internal/storage"
)

func TestTableReverseIteration(t *testing.T) {
	fs := storage.NewMemFS()
	entries := genEntries(1500, 2)
	buildTable(t, fs, "t", entries, WriterOptions{BlockSize: 512})
	r := openTable(t, fs, "t", nil)
	defer r.Close()
	it := r.NewIterator().(iterator.Bidirectional)

	// Last + Prev must visit everything in exact reverse.
	i := len(entries) - 1
	for it.Last(); it.Valid(); it.Prev() {
		if !bytes.Equal(it.Key(), entries[i].ik) || !bytes.Equal(it.Value(), entries[i].v) {
			t.Fatalf("reverse position %d: got %s", i, keys.String(it.Key()))
		}
		i--
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if i != -1 {
		t.Fatalf("reverse iteration stopped at %d", i)
	}
}

func TestTableSeekThenPrev(t *testing.T) {
	fs := storage.NewMemFS()
	entries := genEntries(500, 1)
	buildTable(t, fs, "t", entries, WriterOptions{BlockSize: 256})
	r := openTable(t, fs, "t", nil)
	defer r.Close()
	it := r.NewIterator().(iterator.Bidirectional)

	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 300; trial++ {
		i := rng.Intn(len(entries))
		it.SeekGE(entries[i].ik)
		if !bytes.Equal(it.Key(), entries[i].ik) {
			t.Fatalf("SeekGE landed on %s", keys.String(it.Key()))
		}
		it.Prev()
		if i == 0 {
			if it.Valid() {
				t.Fatal("Prev before first entry valid")
			}
			continue
		}
		if !bytes.Equal(it.Key(), entries[i-1].ik) {
			t.Fatalf("Prev from %d landed on %s", i, keys.String(it.Key()))
		}
		// And forward again.
		it.Next()
		if !bytes.Equal(it.Key(), entries[i].ik) {
			t.Fatalf("Next after Prev landed on %s", keys.String(it.Key()))
		}
	}
}

func TestEmptyTableReverse(t *testing.T) {
	fs := storage.NewMemFS()
	buildTable(t, fs, "t", nil, WriterOptions{})
	r := openTable(t, fs, "t", nil)
	defer r.Close()
	it := r.NewIterator().(iterator.Bidirectional)
	it.Last()
	if it.Valid() {
		t.Fatal("empty table Last valid")
	}
}
