package sstable

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sync"

	"clsm/internal/bloom"
	"clsm/internal/cache"
	"clsm/internal/iterator"
	"clsm/internal/keys"
)

// Reader provides random access to a finished table. It is safe for
// concurrent use: all state after construction is immutable, and block
// loads go through the shared cache.
type Reader struct {
	src     readerSource
	fileNum uint64
	cache   *cache.Cache
	index   []byte // decoded index block contents
	filter  bloom.Filter
}

// readerSource is the subset of storage.RandomReader the reader needs.
type readerSource interface {
	io.ReaderAt
	Size() int64
	Close() error
}

// NewReader opens a table. fileNum keys the block cache; pass a nil cache
// to bypass caching.
func NewReader(src readerSource, fileNum uint64, c *cache.Cache) (*Reader, error) {
	size := src.Size()
	if size < footerSize {
		return nil, fmt.Errorf("%w: file too small (%d bytes)", ErrCorrupt, size)
	}
	var footer [footerSize]byte
	if _, err := src.ReadAt(footer[:], size-footerSize); err != nil && err != io.EOF {
		return nil, fmt.Errorf("sstable: read footer: %w", err)
	}
	if binary.LittleEndian.Uint64(footer[32:]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	r := &Reader{src: src, fileNum: fileNum, cache: c}
	filterHandle := blockHandle{
		offset: binary.LittleEndian.Uint64(footer[0:]),
		length: binary.LittleEndian.Uint64(footer[8:]),
	}
	indexHandle := blockHandle{
		offset: binary.LittleEndian.Uint64(footer[16:]),
		length: binary.LittleEndian.Uint64(footer[24:]),
	}
	idx, err := r.readBlockRaw(indexHandle)
	if err != nil {
		return nil, err
	}
	r.index = idx
	if filterHandle.length > 0 {
		f, err := r.readBlockRaw(filterHandle)
		if err != nil {
			return nil, err
		}
		r.filter = bloom.Filter(f)
	}
	return r, nil
}

// Close releases the underlying file.
func (r *Reader) Close() error { return r.src.Close() }

// readBlockRaw reads and verifies a block without touching the cache.
func (r *Reader) readBlockRaw(h blockHandle) ([]byte, error) {
	buf := make([]byte, h.length+blockTrailerSize)
	if _, err := r.src.ReadAt(buf, int64(h.offset)); err != nil && err != io.EOF {
		return nil, fmt.Errorf("sstable: read block @%d: %w", h.offset, err)
	}
	n := int(h.length)
	wantCRC := binary.LittleEndian.Uint32(buf[n+1:])
	if crc32.Checksum(buf[:n+1], castagnoli) != wantCRC {
		return nil, fmt.Errorf("%w: block checksum mismatch @%d", ErrCorrupt, h.offset)
	}
	switch buf[n] {
	case blockTypeRaw:
		return buf[:n:n], nil
	case blockTypeFlate:
		fr := flate.NewReader(bytes.NewReader(buf[:n]))
		out, err := io.ReadAll(fr)
		fr.Close()
		if err != nil {
			return nil, fmt.Errorf("%w: flate block @%d: %v", ErrCorrupt, h.offset, err)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("%w: unknown block type %d", ErrCorrupt, buf[n])
	}
}

// readBlock reads a data block through the cache.
func (r *Reader) readBlock(h blockHandle) ([]byte, error) {
	if r.cache == nil {
		return r.readBlockRaw(h)
	}
	key := cache.Key{File: r.fileNum, Offset: h.offset}
	if b, ok := r.cache.Get(key); ok {
		return b, nil
	}
	b, err := r.readBlockRaw(h)
	if err != nil {
		return nil, err
	}
	r.cache.Put(key, b)
	return b, nil
}

// decodeHandle parses an index-entry value.
func decodeHandle(v []byte) (blockHandle, error) {
	off, n1 := binary.Uvarint(v)
	if n1 <= 0 {
		return blockHandle{}, fmt.Errorf("%w: bad block handle", ErrCorrupt)
	}
	length, n2 := binary.Uvarint(v[n1:])
	if n2 <= 0 {
		return blockHandle{}, fmt.Errorf("%w: bad block handle", ErrCorrupt)
	}
	return blockHandle{offset: off, length: length}, nil
}

// MayContain consults the Bloom filter for a user key. Tables built without
// a filter always report true.
func (r *Reader) MayContain(userKey []byte) bool {
	if r.filter == nil {
		return true
	}
	return r.filter.MayContain(bloom.Hash(userKey))
}

// pointIter is the reusable scratch for Reader.Get: an index iterator and
// one data-block iterator whose restart/key buffers survive between gets.
// Pooling it makes the table point-read path allocation-free when the data
// block is cache-resident.
type pointIter struct {
	idx  blockIter
	data blockIter
}

var pointIterPool = sync.Pool{New: func() any { return new(pointIter) }}

// Get returns the value, timestamp, and kind of the first entry with
// internal key >= ikey whose user key matches ikey's — i.e. the newest
// visible version when ikey is a seek key. ok is false when the table holds
// no such entry. The value aliases the (cached) block and must be copied if
// retained.
//
// Unlike a full iterator, the lookup never crosses data blocks: the index
// separator for the candidate block sorts >= every key in it, so a seek
// that exhausts the block proves the table holds no entry for that user
// key at or below the seek timestamp.
func (r *Reader) Get(ikey []byte) (value []byte, ts uint64, kind keys.Kind, ok bool, err error) {
	uk := keys.UserKey(ikey)
	if !r.MayContain(uk) {
		return nil, 0, 0, false, nil
	}
	pi := pointIterPool.Get().(*pointIter)
	defer pointIterPool.Put(pi)
	if err := pi.idx.init(r.index); err != nil {
		return nil, 0, 0, false, err
	}
	pi.idx.SeekGE(ikey)
	if err := pi.idx.Err(); err != nil {
		return nil, 0, 0, false, err
	}
	if !pi.idx.Valid() {
		return nil, 0, 0, false, nil
	}
	h, err := decodeHandle(pi.idx.Value())
	if err != nil {
		return nil, 0, 0, false, err
	}
	b, err := r.readBlock(h)
	if err != nil {
		return nil, 0, 0, false, err
	}
	if err := pi.data.init(b); err != nil {
		return nil, 0, 0, false, err
	}
	pi.data.SeekGE(ikey)
	if err := pi.data.Err(); err != nil {
		return nil, 0, 0, false, err
	}
	if !pi.data.Valid() {
		return nil, 0, 0, false, nil
	}
	fk := pi.data.Key()
	if string(keys.UserKey(fk)) != string(uk) {
		return nil, 0, 0, false, nil
	}
	return pi.data.Value(), keys.Timestamp(fk), keys.KindOf(fk), true, nil
}

// tableIter is the two-level iterator: index block -> data blocks.
type tableIter struct {
	r    *Reader
	idx  *blockIter
	data *blockIter
	err  error
}

// NewIterator returns an iterator over the whole table.
func (r *Reader) NewIterator() iterator.Iterator {
	idx, err := newBlockIter(r.index)
	if err != nil {
		return &tableIter{r: r, err: err}
	}
	return &tableIter{r: r, idx: idx}
}

func (it *tableIter) loadData() {
	it.data = nil
	if !it.idx.Valid() {
		return
	}
	h, err := decodeHandle(it.idx.Value())
	if err != nil {
		it.err = err
		return
	}
	b, err := it.r.readBlock(h)
	if err != nil {
		it.err = err
		return
	}
	d, err := newBlockIter(b)
	if err != nil {
		it.err = err
		return
	}
	it.data = d
}

func (it *tableIter) First() {
	if it.err != nil {
		return
	}
	it.idx.First()
	it.loadData()
	if it.data != nil {
		it.data.First()
		it.skipEmptyForward()
	}
}

func (it *tableIter) SeekGE(ikey []byte) {
	if it.err != nil {
		return
	}
	// Index entries are separators >= every key in their block, so the
	// first index entry >= ikey names the candidate block.
	it.idx.SeekGE(ikey)
	it.loadData()
	if it.data != nil {
		it.data.SeekGE(ikey)
		it.skipEmptyForward()
	}
}

func (it *tableIter) Next() {
	if it.err != nil || it.data == nil {
		return
	}
	it.data.Next()
	it.skipEmptyForward()
}

// skipEmptyForward advances to the next non-exhausted data block.
func (it *tableIter) skipEmptyForward() {
	for it.data != nil && !it.data.Valid() {
		if err := it.data.Err(); err != nil {
			it.err = err
			it.data = nil
			return
		}
		it.idx.Next()
		if !it.idx.Valid() {
			if err := it.idx.Err(); err != nil {
				it.err = err
			}
			it.data = nil
			return
		}
		it.loadData()
		if it.data != nil {
			it.data.First()
		}
	}
}

// Last positions at the final entry of the table.
func (it *tableIter) Last() {
	if it.err != nil {
		return
	}
	it.idx.Last()
	it.loadData()
	if it.data != nil {
		it.data.Last()
		it.skipEmptyBackward()
	}
}

// Prev steps to the predecessor entry, crossing into the previous data
// block when the current one is exhausted.
func (it *tableIter) Prev() {
	if it.err != nil || it.data == nil {
		return
	}
	it.data.Prev()
	it.skipEmptyBackward()
}

// skipEmptyBackward retreats to the last entry of the previous non-empty
// data block.
func (it *tableIter) skipEmptyBackward() {
	for it.data != nil && !it.data.Valid() {
		if err := it.data.Err(); err != nil {
			it.err = err
			it.data = nil
			return
		}
		it.idx.Prev()
		if !it.idx.Valid() {
			if err := it.idx.Err(); err != nil {
				it.err = err
			}
			it.data = nil
			return
		}
		it.loadData()
		if it.data != nil {
			it.data.Last()
		}
	}
}

func (it *tableIter) Valid() bool {
	return it.err == nil && it.data != nil && it.data.Valid()
}

func (it *tableIter) Key() []byte {
	return it.data.Key()
}

func (it *tableIter) Value() []byte {
	return it.data.Value()
}

func (it *tableIter) Err() error {
	if it.err != nil {
		return it.err
	}
	if it.idx != nil && it.idx.Err() != nil {
		return it.idx.Err()
	}
	if it.data != nil && it.data.Err() != nil {
		return it.data.Err()
	}
	return nil
}
