package sstable

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"clsm/internal/bloom"
	"clsm/internal/keys"
	"clsm/internal/storage"
)

const (
	// DefaultBlockSize matches the paper's 64 KB block configuration for
	// the disk-bound benchmark; flush/compaction callers may override.
	DefaultBlockSize = 64 * 1024

	// footerSize: filter handle (16) + index handle (16) + magic (8).
	footerSize = 40
	magic      = 0xc15b11f0c15b11f0

	blockTrailerSize = 5 // type byte + crc32
	blockTypeRaw     = 0
	blockTypeFlate   = 1
	// minCompressionGain: keep the block raw unless compression saves at
	// least 1/8 of its size (LevelDB's policy for snappy).
	minCompressionRatio = 8
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// blockHandle locates a physical block within the file.
type blockHandle struct {
	offset uint64
	length uint64 // logical block length, excluding trailer
}

// Compression selects the data-block encoding.
type Compression int

// Compression codecs.
const (
	// NoCompression stores blocks raw.
	NoCompression Compression = iota
	// FlateCompression compresses data blocks with DEFLATE (stdlib),
	// falling back to raw storage when a block does not compress well.
	FlateCompression
)

// WriterOptions configures table construction.
type WriterOptions struct {
	// BlockSize is the approximate uncompressed size of each data block.
	BlockSize int
	// BloomBitsPerKey sizes the table's Bloom filter; 0 disables it.
	BloomBitsPerKey int
	// Compression selects the data-block codec (filter and index blocks
	// stay raw for cheap startup).
	Compression Compression
}

func (o WriterOptions) withDefaults() WriterOptions {
	if o.BlockSize <= 0 {
		o.BlockSize = DefaultBlockSize
	}
	return o
}

// Meta summarizes a finished table.
type Meta struct {
	Size     uint64 // file size in bytes
	Entries  int
	Smallest []byte // first internal key
	Largest  []byte // last internal key
}

// Writer builds an SSTable from internal keys added in ascending order.
type Writer struct {
	f       storage.File
	opts    WriterOptions
	data    blockBuilder
	index   blockBuilder
	offset  uint64
	hashes  []uint64 // user-key hashes for the Bloom filter
	lastUK  []byte
	meta    Meta
	pending struct {
		ready  bool
		handle blockHandle
		lastK  []byte
	}
	scratch []byte
}

// NewWriter starts a table on the given file.
func NewWriter(f storage.File, opts WriterOptions) *Writer {
	return &Writer{f: f, opts: opts.withDefaults()}
}

// Add appends an entry. Internal keys must be strictly ascending.
func (w *Writer) Add(ikey, value []byte) error {
	if w.meta.Entries > 0 && keys.Compare(ikey, w.meta.Largest) <= 0 {
		return fmt.Errorf("sstable: keys out of order: %s after %s",
			keys.String(ikey), keys.String(w.meta.Largest))
	}
	w.flushPendingIndex(ikey)
	if w.meta.Entries == 0 {
		w.meta.Smallest = append([]byte(nil), ikey...)
	}
	w.meta.Largest = append(w.meta.Largest[:0], ikey...)
	w.meta.Entries++

	uk := keys.UserKey(ikey)
	if w.opts.BloomBitsPerKey > 0 && string(uk) != string(w.lastUK) {
		w.hashes = append(w.hashes, bloom.Hash(uk))
		w.lastUK = append(w.lastUK[:0], uk...)
	}

	w.data.add(ikey, value)
	if w.data.estimatedSize() >= w.opts.BlockSize {
		if err := w.finishDataBlock(); err != nil {
			return err
		}
	}
	return nil
}

// flushPendingIndex emits the deferred index entry for the previous block,
// shortening the separator using the first key of the upcoming block.
func (w *Writer) flushPendingIndex(upcoming []byte) {
	if !w.pending.ready {
		return
	}
	var sep []byte
	if upcoming != nil {
		sep = keys.Separator(nil, w.pending.lastK, upcoming)
	} else {
		sep = keys.Successor(nil, w.pending.lastK)
	}
	var hbuf [2 * binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hbuf[:], w.pending.handle.offset)
	n += binary.PutUvarint(hbuf[n:], w.pending.handle.length)
	w.index.add(sep, hbuf[:n])
	w.pending.ready = false
}

func (w *Writer) finishDataBlock() error {
	if w.data.empty() {
		return nil
	}
	contents := w.data.finish()
	h, err := w.writeBlockCompressed(contents)
	if err != nil {
		return err
	}
	w.pending.ready = true
	w.pending.handle = h
	w.pending.lastK = append(w.pending.lastK[:0], w.data.lastKey...)
	w.data.reset()
	return nil
}

// writeBlock emits contents raw plus the [type|crc] trailer.
func (w *Writer) writeBlock(contents []byte) (blockHandle, error) {
	return w.emitBlock(contents, blockTypeRaw)
}

// writeBlockCompressed applies the configured codec when it pays off.
func (w *Writer) writeBlockCompressed(contents []byte) (blockHandle, error) {
	if w.opts.Compression == FlateCompression {
		var buf bytes.Buffer
		fw, err := flate.NewWriter(&buf, flate.BestSpeed)
		if err == nil {
			if _, err := fw.Write(contents); err == nil && fw.Close() == nil &&
				buf.Len() < len(contents)-len(contents)/minCompressionRatio {
				return w.emitBlock(buf.Bytes(), blockTypeFlate)
			}
		}
	}
	return w.emitBlock(contents, blockTypeRaw)
}

func (w *Writer) emitBlock(contents []byte, blockType byte) (blockHandle, error) {
	h := blockHandle{offset: w.offset, length: uint64(len(contents))}
	w.scratch = append(w.scratch[:0], contents...)
	w.scratch = append(w.scratch, blockType)
	crc := crc32.Checksum(w.scratch[:len(contents)+1], castagnoli)
	w.scratch = binary.LittleEndian.AppendUint32(w.scratch, crc)
	if _, err := w.f.Write(w.scratch); err != nil {
		return blockHandle{}, fmt.Errorf("sstable: write block: %w", err)
	}
	w.offset += uint64(len(contents)) + blockTrailerSize
	return h, nil
}

// Finish completes the table: final data block, filter, index, footer.
func (w *Writer) Finish() (Meta, error) {
	if err := w.finishDataBlock(); err != nil {
		return Meta{}, err
	}
	w.flushPendingIndex(nil)

	var filterHandle blockHandle
	if w.opts.BloomBitsPerKey > 0 {
		f := bloom.NewWithBits(w.hashes, w.opts.BloomBitsPerKey)
		h, err := w.writeBlock(f)
		if err != nil {
			return Meta{}, err
		}
		filterHandle = h
	}

	indexContents := w.index.finish()
	indexHandle, err := w.writeBlock(indexContents)
	if err != nil {
		return Meta{}, err
	}

	var footer [footerSize]byte
	binary.LittleEndian.PutUint64(footer[0:], filterHandle.offset)
	binary.LittleEndian.PutUint64(footer[8:], filterHandle.length)
	binary.LittleEndian.PutUint64(footer[16:], indexHandle.offset)
	binary.LittleEndian.PutUint64(footer[24:], indexHandle.length)
	binary.LittleEndian.PutUint64(footer[32:], magic)
	if _, err := w.f.Write(footer[:]); err != nil {
		return Meta{}, fmt.Errorf("sstable: write footer: %w", err)
	}
	w.offset += footerSize
	w.meta.Size = w.offset
	if err := w.f.Sync(); err != nil {
		return Meta{}, err
	}
	if err := w.f.Close(); err != nil {
		return Meta{}, err
	}
	return w.meta, nil
}

// Abandon closes the underlying file without finishing the table — the
// cleanup path of a failed merge attempt, whose partial output is about to
// be removed. The writer is unusable afterwards.
func (w *Writer) Abandon() error { return w.f.Close() }

// EstimatedSize returns the bytes emitted so far plus the current block.
func (w *Writer) EstimatedSize() uint64 {
	return w.offset + uint64(w.data.estimatedSize())
}

// Entries returns the number of entries added so far.
func (w *Writer) Entries() int { return w.meta.Entries }
