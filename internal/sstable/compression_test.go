package sstable

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"clsm/internal/keys"
	"clsm/internal/storage"
)

func newTestRand() *rand.Rand { return rand.New(rand.NewSource(77)) }

func TestFlateRoundTrip(t *testing.T) {
	fs := storage.NewMemFS()
	// Highly compressible values.
	entries := make([]kv, 0, 1000)
	for i := 0; i < 1000; i++ {
		entries = append(entries, kv{
			ik: keys.Make([]byte(fmt.Sprintf("key%06d", i)), uint64(i+1), keys.KindValue),
			v:  bytes.Repeat([]byte("abcdef"), 40),
		})
	}
	buildTable(t, fs, "raw", entries, WriterOptions{BlockSize: 2048})
	buildTable(t, fs, "flate", entries, WriterOptions{BlockSize: 2048, Compression: FlateCompression})

	rawData, _ := fs.ReadFile("raw")
	flateData, _ := fs.ReadFile("flate")
	if len(flateData) >= len(rawData)/2 {
		t.Errorf("compression ineffective: raw=%d flate=%d", len(rawData), len(flateData))
	}

	r := openTable(t, fs, "flate", nil)
	defer r.Close()
	it := r.NewIterator()
	i := 0
	for it.First(); it.Valid(); it.Next() {
		if !bytes.Equal(it.Key(), entries[i].ik) || !bytes.Equal(it.Value(), entries[i].v) {
			t.Fatalf("entry %d corrupted by compression", i)
		}
		i++
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if i != len(entries) {
		t.Fatalf("iterated %d entries", i)
	}
	// Point reads through compressed blocks.
	for i := 0; i < 1000; i += 111 {
		v, _, _, ok, err := r.Get(keys.SeekKey([]byte(fmt.Sprintf("key%06d", i)), keys.MaxTimestamp))
		if err != nil || !ok || !bytes.Equal(v, entries[i].v) {
			t.Fatalf("Get(%d) through flate block failed: %v %v", i, ok, err)
		}
	}
}

// Incompressible data must fall back to raw blocks transparently.
func TestFlateFallbackToRaw(t *testing.T) {
	fs := storage.NewMemFS()
	rng := newTestRand()
	entries := make([]kv, 0, 200)
	for i := 0; i < 200; i++ {
		v := make([]byte, 256)
		rng.Read(v)
		entries = append(entries, kv{
			ik: keys.Make([]byte(fmt.Sprintf("key%06d", i)), uint64(i+1), keys.KindValue),
			v:  v,
		})
	}
	buildTable(t, fs, "t", entries, WriterOptions{BlockSize: 1024, Compression: FlateCompression})
	r := openTable(t, fs, "t", nil)
	defer r.Close()
	it := r.NewIterator()
	n := 0
	for it.First(); it.Valid(); it.Next() {
		if !bytes.Equal(it.Value(), entries[n].v) {
			t.Fatalf("entry %d mismatch", n)
		}
		n++
	}
	if n != 200 || it.Err() != nil {
		t.Fatalf("n=%d err=%v", n, it.Err())
	}
}

// Corruption inside a compressed block must be detected (CRC covers the
// compressed bytes).
func TestFlateCorruptionDetected(t *testing.T) {
	fs := storage.NewMemFS()
	entries := []kv{{ik: keys.Make([]byte("k"), 1, keys.KindValue), v: bytes.Repeat([]byte("z"), 4096)}}
	buildTable(t, fs, "t", entries, WriterOptions{Compression: FlateCompression})
	data, _ := fs.ReadFile("t")
	data[3] ^= 0xff
	fs.WriteFile("bad", data)
	src, _ := fs.Open("bad")
	r, err := NewReader(src, 9, nil)
	if err != nil {
		return // index/footer parse caught it: fine
	}
	it := r.NewIterator()
	for it.First(); it.Valid(); it.Next() {
	}
	if it.Err() == nil {
		t.Fatal("corrupted compressed block not detected")
	}
}
