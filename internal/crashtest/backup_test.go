package crashtest

import (
	"testing"

	"clsm/internal/faultfs"
)

// TestBackupMatrix is the backup tier's crash matrix: a scripted workload
// with incremental backups taken mid-stream, each completed backup
// restored from the remote tier and held to the crash invariants at its
// cutoff — every write acked before the backup began is served, nothing
// fabricated, no batch split. The clean scenario additionally proves
// incrementality: with multiple backups, later ones must skip tables the
// remote already holds.
func TestBackupMatrix(t *testing.T) {
	seed := envInt("CRASHTEST_SEED", 1)
	ops := int(envInt("CRASHTEST_OPS", 240))
	rep, err := RunBackup(BackupConfig{Seed: seed, Ops: ops})
	if err != nil {
		t.Fatalf("harness: %v", err)
	}
	t.Logf("seed=%d ops=%d: %d backups completed, %d aborted, %d restores verified; %d files skipped, %d bytes shipped",
		seed, ops, len(rep.Completed), rep.Aborted, rep.Restores, rep.FilesSkipped, rep.BytesShipped)
	for _, f := range rep.Failures {
		t.Errorf("invariant violation (replay with CRASHTEST_SEED=%d CRASHTEST_OPS=%d): %s", seed, ops, f)
	}
	if len(rep.Completed) < 2 {
		t.Fatalf("only %d backups completed, want >= 2 (raise CRASHTEST_OPS)", len(rep.Completed))
	}
	if rep.Restores != len(rep.Completed) {
		t.Errorf("restored %d of %d completed backups", rep.Restores, len(rep.Completed))
	}
	if rep.Aborted != 0 {
		t.Errorf("clean run aborted %d backups", rep.Aborted)
	}
	if rep.FilesSkipped == 0 {
		t.Error("incremental backups skipped no files — every backup re-shipped everything")
	}
	if rep.BytesShipped == 0 {
		t.Error("backup_bytes_shipped = 0")
	}
}

// TestBackupMatrixFaults re-runs the backup matrix under injected faults
// on both sides of the ship: remote transients that must be retried,
// remote faults that must abort cleanly (partial uploads GC'd, previous
// backup still the restore point), torn multipart uploads that leave
// partial objects under full-content names, and local faults that can
// kill the flush inside a checkpoint. Every completed backup must restore
// exactly regardless.
func TestBackupMatrixFaults(t *testing.T) {
	seed := envInt("CRASHTEST_SEED", 1)
	cases := []struct {
		name string
		cfg  BackupConfig
	}{
		{"remote-transient-retried", BackupConfig{
			RemoteFaults: []faultfs.Rule{
				{Op: faultfs.OpWriteFile, N: 2, Kind: faultfs.FaultErr},
				{Op: faultfs.OpWriteFile, N: 5, Kind: faultfs.FaultErr},
				{Op: faultfs.OpWriteFile, N: 9, Kind: faultfs.FaultErr},
			},
		}},
		{"remote-fault-aborts", BackupConfig{
			// MaxAttempts 1: the first injected error aborts that backup.
			MaxAttempts: 1,
			RemoteFaults: []faultfs.Rule{
				{Op: faultfs.OpWriteFile, Pattern: "obj-*", N: 4, Kind: faultfs.FaultErr},
			},
		}},
		{"torn-uploads", BackupConfig{TornUploads: true}},
		{"local-faults-during-checkpoint", BackupConfig{
			LocalFaults: []faultfs.Rule{
				{Op: faultfs.OpSync, Pattern: "*.log", N: 25, Kind: faultfs.FaultErr},
				{Op: faultfs.OpWrite, Pattern: "*.sst", N: 9, Kind: faultfs.FaultErr},
			},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg
			cfg.Seed = seed
			cfg.Ops = 240
			rep, err := RunBackup(cfg)
			if err != nil {
				t.Fatalf("harness: %v", err)
			}
			t.Logf("seed=%d: %d completed, %d aborted, %d restores verified under %s",
				seed, len(rep.Completed), rep.Aborted, rep.Restores, tc.name)
			for _, f := range rep.Failures {
				t.Errorf("invariant violation under %s (CRASHTEST_SEED=%d): %s", tc.name, seed, f)
			}
			if len(rep.Completed) == 0 {
				t.Error("no backup ever completed under faults")
			}
			if rep.Restores != len(rep.Completed) {
				t.Errorf("restored %d of %d completed backups", rep.Restores, len(rep.Completed))
			}
		})
	}
	// The abort scenario must actually abort at least once, or the matrix
	// stopped exercising the GC path.
	t.Run("abort-scenario-control", func(t *testing.T) {
		rep, err := RunBackup(BackupConfig{
			Seed: seed, Ops: 240, MaxAttempts: 1,
			RemoteFaults: []faultfs.Rule{
				{Op: faultfs.OpWriteFile, Pattern: "obj-*", N: 4, Kind: faultfs.FaultErr},
			},
		})
		if err != nil {
			t.Fatalf("harness: %v", err)
		}
		if rep.Aborted == 0 {
			t.Error("fault plan never aborted a backup — the abort/GC path went unexercised")
		}
	})
}
