package crashtest

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"clsm/internal/backup"
	"clsm/internal/batch"
	"clsm/internal/core"
	"clsm/internal/faultfs"
	"clsm/internal/obs"
	"clsm/internal/oracle"
	"clsm/internal/storage"
	"clsm/internal/version"
)

// BackupConfig parameterizes one backup crash-matrix run: a scripted
// workload over a fault-injecting local store, with incremental backups
// taken mid-workload through a fault-injecting remote tier, and every
// completed backup restored and verified against the oracle model.
type BackupConfig struct {
	// Seed drives the workload.
	Seed int64
	// Ops is the number of workload operations (default 240).
	Ops int
	// BackupEvery takes a backup after every Nth workload op (default 80).
	BackupEvery int
	// MemtableSize for the workload engine (default 2 KiB).
	MemtableSize int64
	// LocalFaults arms error injection on the workload store — failures
	// here can abort the flush inside a checkpoint (the crash-during-
	// checkpoint leg of the matrix) or quarantine the engine entirely;
	// the harness tolerates both and keeps verifying what completed.
	LocalFaults []faultfs.Rule
	// RemoteFaults arms error injection on the remote object store. The
	// injected error is transient, so with MaxAttempts > 1 it exercises
	// the retry path and with MaxAttempts == 1 the abort-and-GC path.
	RemoteFaults []faultfs.Rule
	// TornUploads makes every 5th new-object PUT tear mid-upload: half
	// the object lands under its full-content name before the PUT fails
	// with a transient error, the way a crashed multipart upload leaves a
	// stale partial. Retries must overwrite it; aborts must remove it.
	TornUploads bool
	// MaxAttempts caps per-object upload attempts (default 3).
	MaxAttempts int
	// ValueThreshold enables key-value separation on the workload engine
	// and pads roughly half the written values past the threshold, so
	// backups ship value-log segments alongside sstables and restores
	// prove the pointers they contain dereference on the other side.
	ValueThreshold int
}

func (cfg BackupConfig) withDefaults() BackupConfig {
	if cfg.Ops <= 0 {
		cfg.Ops = 240
	}
	if cfg.BackupEvery <= 0 {
		cfg.BackupEvery = 80
	}
	if cfg.MemtableSize <= 0 {
		cfg.MemtableSize = 2 << 10
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	return cfg
}

// BackupPoint records one completed backup: its manifest and the local
// crash-step cutoff at the moment the backup began. Everything the model
// acked at or before Cutoff must be served by this backup's restore.
type BackupPoint struct {
	Manifest *backup.Manifest
	Cutoff   uint64
}

// BackupReport summarizes one backup matrix run.
type BackupReport struct {
	Completed []BackupPoint
	Aborted   int // backups that failed (fault-injected or quarantined)
	Restores  int // completed backups restored and verified

	// FilesSkipped / BytesShipped are the engine's incremental-shipping
	// counters across the whole run.
	FilesSkipped uint64
	BytesShipped uint64

	Failures []Failure
}

// tornFS tears every 5th new-object PUT: it writes the first half of the
// payload under the object's (full-content) name, then fails with a
// transient error — the visible aftermath of a multipart upload whose
// client died. Everything else passes through.
type tornFS struct {
	storage.FS
	puts int
}

type errTorn struct{}

func (errTorn) Error() string   { return "torn upload: connection reset mid-object" }
func (errTorn) Temporary() bool { return true }

func (t *tornFS) WriteFile(name string, data []byte) error {
	if strings.HasPrefix(name, "obj-") {
		t.puts++
		if t.puts%5 == 0 {
			t.FS.WriteFile(name, data[:len(data)/2])
			return errTorn{}
		}
	}
	return t.FS.WriteFile(name, data)
}

// RunBackup executes one backup crash-matrix run. The error return is
// reserved for harness setup problems; invariant violations are reported
// in the report's Failures.
func RunBackup(cfg BackupConfig) (*BackupReport, error) {
	cfg = cfg.withDefaults()
	rep := &BackupReport{}
	fail := func(step uint64, label string, err error) {
		if len(rep.Failures) < maxFailures {
			rep.Failures = append(rep.Failures, Failure{Step: step, Label: label, Err: err})
		}
	}

	local := faultfs.Wrap(storage.NewMemFS())
	local.Arm(cfg.LocalFaults...)
	model := oracle.NewModel()

	db, err := core.Open(core.Options{
		FS:             local,
		SyncWrites:     true,
		MemtableSize:   cfg.MemtableSize,
		ValueThreshold: cfg.ValueThreshold,
		// Small segments so multi-segment value logs are what backups ship.
		ValueLogSegmentSize: 4 << 10,
		Disk: version.Options{
			// A lazier L0 than the main matrix: tables must survive
			// across backups for incremental shipping to have anything
			// to skip; the scripted CompactRange still churns the tree.
			L0CompactionTrigger: 8,
			BaseLevelBytes:      16 << 10,
			TableFileSize:       8 << 10,
		},
	})
	if err != nil {
		return nil, fmt.Errorf("crashtest: open workload engine: %w", err)
	}

	var remote storage.FS = storage.NewMemFS()
	if cfg.TornUploads {
		remote = &tornFS{FS: remote}
	}
	rfs := faultfs.Wrap(remote)
	rfs.Arm(cfg.RemoteFaults...)
	bobs := obs.New()
	eng := backup.New(rfs, backup.Options{
		Observer:    bobs,
		MaxAttempts: cfg.MaxAttempts,
		// Real but fast retries: the matrix injects transients on purpose.
		RetryBase: time.Millisecond,
		RetryCap:  4 * time.Millisecond,
	})

	rng := rand.New(rand.NewSource(cfg.Seed))
	keyPool := make([]string, 24)
	for i := range keyPool {
		keyPool[i] = fmt.Sprintf("key-%02d", i)
	}
	// grow pads a value past the separation threshold when one is
	// configured (see Config.ValueThreshold in crashtest.go).
	grow := func(val []byte) []byte {
		if cfg.ValueThreshold <= 0 || rng.Intn(2) == 1 {
			return val
		}
		n := cfg.ValueThreshold + rng.Intn(2*cfg.ValueThreshold)
		for len(val) < n {
			val = append(val, byte('A'+len(val)%26))
		}
		return val
	}

	for i := 0; i < cfg.Ops; i++ {
		switch r := rng.Intn(100); {
		case r < 55: // put
			key := keyPool[rng.Intn(len(keyPool))]
			val := grow([]byte(fmt.Sprintf("v-%d-%06d", cfg.Seed, i)))
			pend := model.Begin(local.Step(), oracle.Op{Key: key, Value: val})
			if db.Put([]byte(key), val) == nil {
				pend.Ack(local.Step())
			}
		case r < 75: // delete
			key := keyPool[rng.Intn(len(keyPool))]
			pend := model.Begin(local.Step(), oracle.Op{Key: key, Tombstone: true})
			if db.Delete([]byte(key)) == nil {
				pend.Ack(local.Step())
			}
		default: // atomic batch over 2–4 distinct keys
			n := 2 + rng.Intn(3)
			var ops []oracle.Op
			var b batch.Batch
			for j, ki := range rng.Perm(len(keyPool))[:n] {
				key := keyPool[ki]
				if rng.Intn(4) == 0 {
					b.Delete([]byte(key))
					ops = append(ops, oracle.Op{Key: key, Tombstone: true})
				} else {
					val := []byte(fmt.Sprintf("b-%d-%06d-%d", cfg.Seed, i, j))
					b.Put([]byte(key), val)
					ops = append(ops, oracle.Op{Key: key, Value: val})
				}
			}
			pend := model.Begin(local.Step(), ops...)
			if db.Write(&b) == nil {
				pend.Ack(local.Step())
			}
		}
		// Structural churn between backups so incremental runs have both
		// new tables to ship and obsoleted tables to drop.
		if i > 0 && i%60 == 0 {
			db.Flush() // errors tolerated in fault runs
		}
		if i > 0 && i%150 == 0 {
			db.CompactRange()
		}

		if (i+1)%cfg.BackupEvery == 0 {
			// The workload is paused here, so everything acked so far is
			// exactly the state the checkpoint inside the backup will pin.
			cutoff := local.Step()
			var m *backup.Manifest
			var berr error
			jerr := db.RunBackupJob(func() {
				m, berr = eng.Backup(backup.Source{DB: db})
			})
			switch {
			case jerr != nil: // closed or quarantined: no backup ran
				rep.Aborted++
			case berr != nil:
				rep.Aborted++
				if !errors.Is(berr, backup.ErrBackupFailed) {
					fail(cutoff, "backup-abort", fmt.Errorf("abort did not wrap ErrBackupFailed: %w", berr))
				}
			default:
				rep.Completed = append(rep.Completed, BackupPoint{Manifest: m, Cutoff: cutoff})
			}
		}
	}
	db.Close() // errors tolerated: verification reads only the remote

	rep.FilesSkipped = bobs.BackupFilesSkipped.Load()
	rep.BytesShipped = bobs.BackupBytesShipped.Load()

	// The remote tier must hold no objects outside the completed backups'
	// manifests: aborted runs GC their uploads, torn partials included.
	live := map[string]bool{}
	for _, bp := range rep.Completed {
		for _, st := range bp.Manifest.Stores {
			live[st.Manifest.Object] = true
			for _, t := range st.Tables {
				live[t.Object] = true
			}
		}
	}
	names, err := rfs.List()
	if err != nil {
		return nil, fmt.Errorf("crashtest: list remote: %w", err)
	}
	for _, name := range names {
		if strings.HasPrefix(name, "obj-") && !live[name] {
			fail(0, "remote-gc", fmt.Errorf("object %s not referenced by any completed backup", name))
		}
	}
	if len(rep.Completed) > 0 {
		last := rep.Completed[len(rep.Completed)-1].Manifest.ID
		if id, _, err := eng.Latest(); err != nil || id != last {
			fail(0, "latest-pointer", fmt.Errorf("LATEST = %d (%v), want %d", id, err, last))
		}
	}

	// Restore every completed backup and hold it to the crash invariants
	// at its cutoff: every op acked before the backup began is present
	// with the right value, nothing fabricated, no half-applied batch.
	for _, bp := range rep.Completed {
		target := storage.NewMemFS()
		if _, err := eng.Restore(bp.Manifest.ID, func(string) (storage.FS, error) { return target, nil }); err != nil {
			fail(bp.Cutoff, "restore", fmt.Errorf("restore backup %d: %w", bp.Manifest.ID, err))
			continue
		}
		rdb, err := core.Open(core.Options{FS: target, MemtableSize: 8 << 20})
		if err != nil {
			fail(bp.Cutoff, "restore-open", fmt.Errorf("open restored backup %d: %w", bp.Manifest.ID, err))
			continue
		}
		match := make(map[string]int)
		for _, key := range model.Keys() {
			got, ok, err := rdb.Get([]byte(key))
			if err != nil {
				fail(bp.Cutoff, "restore-get", fmt.Errorf("backup %d key %q: %w", bp.Manifest.ID, key, err))
				continue
			}
			idx, verr := model.CheckCrash(key, got, ok, bp.Cutoff)
			if verr != nil {
				fail(bp.Cutoff, "restore-verify", fmt.Errorf("backup %d: %w", bp.Manifest.ID, verr))
				continue
			}
			match[key] = idx
		}
		for _, berr := range model.CheckBatchAtomicity(match) {
			fail(bp.Cutoff, "restore-atomicity", fmt.Errorf("backup %d: %w", bp.Manifest.ID, berr))
		}
		rdb.Close()
		rep.Restores++
	}
	return rep, nil
}
