// Package crashtest is the crash-consistency harness: it drives a scripted
// workload against an engine running on a fault-injecting filesystem
// (internal/faultfs), captures the would-survive-a-power-cut file state at
// every interesting I/O point, reopens a fresh engine from each captured
// image, and checks the recovered contents against a mirrored reference
// model (internal/oracle.Model).
//
// Two invariants are enforced at every crash point (docs/CRASH_CONSISTENCY.md):
//
//  1. durability — every operation whose WAL sync completed before the
//     crash is present with the right value;
//  2. no fabrication — recovery never surfaces a value that was never
//     written: no torn-record garbage, no half-applied atomic batch.
//
// Crash points include torn variants of every sampled sync: the not-yet-
// durable tail of the file reaches the medium only partially, or with a
// flipped bit — the failure modes a real device exhibits on power loss.
package crashtest

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"clsm/internal/batch"
	"clsm/internal/core"
	"clsm/internal/faultfs"
	"clsm/internal/obs"
	"clsm/internal/oracle"
	"clsm/internal/storage"
	"clsm/internal/version"
)

// Config parameterizes one harness run. The zero value is usable; Run
// fills defaults.
type Config struct {
	// Seed drives the workload and every sampling decision derived from it.
	Seed int64
	// Ops is the number of workload operations (default 300).
	Ops int
	// WriteSampling checks every Nth write crash point (default 5; writes
	// are by far the most frequent point and individually least
	// interesting — nothing new became durable).
	WriteSampling int
	// SyncSampling checks every Nth sync crash point per file class and
	// side (default 2). Sampled pre-sync points also get torn variants.
	SyncSampling int
	// MemtableSize for the workload engine (default 2 KiB, small enough
	// that the run exercises flushes, manifest installs and compactions).
	MemtableSize int64
	// StrictWALTail configures the recovery engines opened at every crash
	// point to reject torn WAL tails — the deliberately broken recovery
	// used as the harness's negative control.
	StrictWALTail bool
	// Txns replaces the atomic-batch workload slice with multi-key
	// optimistic transactions (BeginTxn/Get/Put/Commit), so the matrix
	// proves a txn commit record is all-or-nothing at every crash point:
	// an acked commit must survive whole, a torn one must vanish whole.
	Txns bool
	// ValueThreshold enables key-value separation on the workload engine
	// and makes roughly half the written values exceed the threshold, so
	// the matrix covers value-log appends, syncs, segment rotations and
	// GC rewrites. Recovery engines are opened WITHOUT the threshold:
	// reading pointers back must not depend on the write-side knob.
	ValueThreshold int
	// Faults arms an error-injection plan on the workload filesystem.
	// Injected errors may fail workload operations or poison the engine;
	// the harness tolerates both and keeps checking the invariants.
	Faults []faultfs.Rule
}

func (cfg Config) withDefaults() Config {
	if cfg.Ops <= 0 {
		cfg.Ops = 300
	}
	if cfg.WriteSampling <= 0 {
		cfg.WriteSampling = 5
	}
	if cfg.SyncSampling <= 0 {
		cfg.SyncSampling = 2
	}
	if cfg.MemtableSize <= 0 {
		cfg.MemtableSize = 2 << 10
	}
	return cfg
}

// Failure is one invariant violation found at a crash point.
type Failure struct {
	Step  uint64 // crash-point id (faultfs step counter)
	Label string // point classification, e.g. "wal-sync-torn"
	Err   error
}

func (f Failure) String() string {
	return fmt.Sprintf("step %d [%s]: %v", f.Step, f.Label, f.Err)
}

// maxFailures bounds the report; checking stops once it is reached.
const maxFailures = 25

// Report summarizes one harness run.
type Report struct {
	Points   int            // crash images checked (durable captures)
	Torn     int            // torn/bit-flipped variants checked
	Coverage map[string]int // crash points observed, by label
	Failures []Failure

	// TxnCommits counts acknowledged transaction commits in a Txns run —
	// the population whose atomicity every crash point then checks.
	TxnCommits int

	// Aggregated recovery counters across every reopened engine,
	// proving the repair paths actually ran.
	TornTailsTruncated uint64
	RecordsReplayed    uint64
	OrphansRemoved     uint64
}

// checker holds the mutable state shared by the hook and the workload.
type checker struct {
	cfg   Config
	model *oracle.Model

	mu      sync.Mutex
	report  Report
	sampled map[string]int // per-label sampling counters

	compacting atomic.Int64 // workload compactions in flight
}

func (c *checker) fail(step uint64, label string, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.report.Failures) < maxFailures {
		c.report.Failures = append(c.report.Failures, Failure{Step: step, Label: label, Err: err})
	}
}

func (c *checker) failed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.report.Failures) >= maxFailures
}

// classify maps a file name to its role in the engine's on-disk layout.
func classify(name string) string {
	if name == version.CurrentFileName {
		return "current"
	}
	kind, _, ok := version.ParseFileName(name)
	if !ok {
		return "other"
	}
	switch kind {
	case version.KindLog:
		return "wal"
	case version.KindTable:
		return "sst"
	case version.KindManifest:
		return "manifest"
	case version.KindCurrent:
		return "current"
	case version.KindValueLog:
		return "vlog"
	}
	return "other"
}

// hook is the faultfs crash-point callback: label the point, decide by
// per-label counters whether to check it, and run the reopen-and-verify
// cycle on captured images. It runs with the filesystem mutex held and
// never calls back into the workload FS.
func (c *checker) hook(p faultfs.Point) {
	label := classify(p.Name) + "-" + p.Op.String()

	c.mu.Lock()
	c.report.Coverage[label]++
	if c.compacting.Load() > 0 {
		c.report.Coverage["during-compaction"]++
	}
	sampling := 1
	counterKey := label
	switch p.Op {
	case faultfs.OpWrite:
		sampling = c.cfg.WriteSampling
	case faultfs.OpSync:
		sampling = c.cfg.SyncSampling
		if p.PreSync {
			counterKey += "|pre"
		} else {
			counterKey += "|post"
		}
	}
	n := c.sampled[counterKey]
	c.sampled[counterKey] = n + 1
	c.mu.Unlock()

	if n%sampling != 0 || c.failed() {
		return
	}

	if p.PreSync {
		// Power cut an instant before the sync took effect: the durable
		// image excludes this file's tail and any unbarriered dir ops.
		c.verify(p.CaptureDurable(), p.Step-1, p.Step, label+"-pre", false)
		// Torn variants: the device persisted only part of the tail, or
		// all of it with a flipped bit.
		if delta := len(p.SyncDelta); delta > 0 {
			c.verify(p.CaptureTorn(delta/2, -1), p.Step-1, p.Step, label+"-torn", true)
			c.verify(p.CaptureTorn(delta, int(p.Step*13)%(delta*8)), p.Step-1, p.Step, label+"-flip", true)
		}
		return
	}
	// Power cut right after the operation (for syncs: after the barrier).
	c.verify(p.CaptureDurable(), p.Step, p.Step, label, false)
}

// verify reopens an engine from one captured crash image and checks both
// invariants for every key the model has seen. cutoff is the step bound
// used for the required/allowed version sets; step and label identify the
// point in failure reports.
func (c *checker) verify(image map[string][]byte, cutoff, step uint64, label string, torn bool) {
	if image == nil {
		return
	}
	db, err := core.Open(core.Options{
		FS:            storage.NewMemFSFromSnapshot(image),
		SyncWrites:    true,
		StrictWALTail: c.cfg.StrictWALTail,
		// Large memtable: recovery checking should not trigger its own
		// background churn.
		MemtableSize: 8 << 20,
	})
	if err != nil {
		c.fail(step, label, fmt.Errorf("recovery open: %w", err))
		return
	}
	defer db.Close()

	o := db.Observer()
	c.mu.Lock()
	c.report.TornTailsTruncated += o.WALTornTails.Load()
	c.report.RecordsReplayed += o.RecoveryRecords.Load()
	c.report.OrphansRemoved += o.OrphanFilesRemoved.Load()
	if torn {
		c.report.Torn++
	} else {
		c.report.Points++
	}
	c.mu.Unlock()

	match := make(map[string]int)
	for _, key := range c.model.Keys() {
		got, ok, err := db.Get([]byte(key))
		if err != nil {
			c.fail(step, label, fmt.Errorf("recovered get %q: %w", key, err))
			return
		}
		idx, verr := c.model.CheckCrash(key, got, ok, cutoff)
		if verr != nil {
			c.fail(step, label, verr)
			continue
		}
		match[key] = idx
	}
	for _, berr := range c.model.CheckBatchAtomicity(match) {
		c.fail(step, label, berr)
	}
}

// Run executes one harness run and returns its report. The error return is
// reserved for harness setup problems; invariant violations are reported
// in Report.Failures.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	fs := faultfs.Wrap(storage.NewMemFS())
	c := &checker{
		cfg:     cfg,
		model:   oracle.NewModel(),
		sampled: map[string]int{},
	}
	c.report.Coverage = map[string]int{}
	// The hook is armed before Open so the bootstrap sequence (manifest
	// creation, CURRENT install) is part of the matrix too.
	fs.SetHook(c.hook)
	fs.Arm(cfg.Faults...)

	observer := obs.New()
	observer.Trace.SetSink(func(e obs.Event) {
		switch e.Type {
		case obs.EvCompactionStart:
			c.compacting.Add(1)
		case obs.EvCompactionEnd:
			c.compacting.Add(-1)
		}
	})
	db, err := core.Open(core.Options{
		FS:             fs,
		SyncWrites:     true,
		MemtableSize:   cfg.MemtableSize,
		Observer:       observer,
		ValueThreshold: cfg.ValueThreshold,
		// Tiny segments so a few hundred ops rotate the value log and give
		// live-ratio GC retirable candidates; an eager ratio so it fires.
		ValueLogSegmentSize: 4 << 10,
		ValueLogGCRatio:     0.3,
		Disk: version.Options{
			// Small tables and an eager L0 trigger so a few hundred ops
			// reach flushes, manifest installs, and compactions.
			L0CompactionTrigger: 2,
			BaseLevelBytes:      16 << 10,
			TableFileSize:       8 << 10,
		},
	})
	if err != nil {
		return nil, fmt.Errorf("crashtest: open workload engine: %w", err)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	keyPool := make([]string, 24)
	for i := range keyPool {
		keyPool[i] = fmt.Sprintf("key-%02d", i)
	}
	// grow pads a value past the separation threshold (when one is
	// configured) so roughly half the workload takes the value-log path.
	// The padding is deterministic, keeping the model's byte-for-byte
	// comparison exact.
	grow := func(val []byte) []byte {
		if cfg.ValueThreshold <= 0 || rng.Intn(2) == 1 {
			return val
		}
		n := cfg.ValueThreshold + rng.Intn(2*cfg.ValueThreshold)
		for len(val) < n {
			val = append(val, byte('A'+len(val)%26))
		}
		return val
	}
	// Injected faults can land a write in the memtable yet fail the call,
	// so live reads are only compared against the model in fault-free runs.
	checkLive := len(cfg.Faults) == 0

	for i := 0; i < cfg.Ops; i++ {
		switch r := rng.Intn(100); {
		case r < 50: // put
			key := keyPool[rng.Intn(len(keyPool))]
			val := grow([]byte(fmt.Sprintf("v-%d-%06d", cfg.Seed, i)))
			pend := c.model.Begin(fs.Step(), oracle.Op{Key: key, Value: val})
			if db.Put([]byte(key), val) == nil {
				pend.Ack(fs.Step())
			}
		case r < 65: // delete
			key := keyPool[rng.Intn(len(keyPool))]
			pend := c.model.Begin(fs.Step(), oracle.Op{Key: key, Tombstone: true})
			if db.Delete([]byte(key)) == nil {
				pend.Ack(fs.Step())
			}
		case r < 80 && cfg.Txns: // multi-key optimistic transaction
			txn, err := db.BeginTxn()
			if err != nil {
				break
			}
			// Reads join the read set, so commit-time validation runs for
			// real; the workload is single-threaded, so it never conflicts —
			// commit atomicity is the invariant under test here.
			for _, ki := range rng.Perm(len(keyPool))[:2] {
				if _, _, err := txn.Get([]byte(keyPool[ki])); err != nil {
					break
				}
			}
			n := 2 + rng.Intn(3)
			var ops []oracle.Op
			for j, ki := range rng.Perm(len(keyPool))[:n] {
				key := keyPool[ki]
				if rng.Intn(4) == 0 {
					txn.Delete([]byte(key))
					ops = append(ops, oracle.Op{Key: key, Tombstone: true})
				} else {
					val := []byte(fmt.Sprintf("t-%d-%06d-%d", cfg.Seed, i, j))
					txn.Put([]byte(key), val)
					ops = append(ops, oracle.Op{Key: key, Value: val})
				}
			}
			pend := c.model.Begin(fs.Step(), ops...)
			if txn.Commit() == nil {
				pend.Ack(fs.Step())
				c.mu.Lock()
				c.report.TxnCommits++
				c.mu.Unlock()
			}
		case r < 80: // atomic batch over 2–4 distinct keys
			n := 2 + rng.Intn(3)
			var ops []oracle.Op
			var b batch.Batch
			for j, ki := range rng.Perm(len(keyPool))[:n] {
				key := keyPool[ki]
				if rng.Intn(4) == 0 {
					b.Delete([]byte(key))
					ops = append(ops, oracle.Op{Key: key, Tombstone: true})
				} else {
					val := grow([]byte(fmt.Sprintf("b-%d-%06d-%d", cfg.Seed, i, j)))
					b.Put([]byte(key), val)
					ops = append(ops, oracle.Op{Key: key, Value: val})
				}
			}
			pend := c.model.Begin(fs.Step(), ops...)
			if db.Write(&b) == nil {
				pend.Ack(fs.Step())
			}
		case r < 92: // live read, checked against the model
			key := keyPool[rng.Intn(len(keyPool))]
			got, ok, err := db.Get([]byte(key))
			if checkLive && err == nil {
				want, wok := c.model.Get(key)
				if ok != wok || (ok && !bytes.Equal(got, want)) {
					c.fail(fs.Step(), "live-get",
						fmt.Errorf("key %q: live read %q,%v, model %q,%v", key, got, ok, want, wok))
				}
			}
		default: // snapshot spot check on a few keys
			snap, err := db.GetSnapshot()
			if err != nil {
				break
			}
			for _, ki := range rng.Perm(len(keyPool))[:3] {
				key := keyPool[ki]
				got, ok, err := snap.Get([]byte(key))
				if checkLive && err == nil {
					want, wok := c.model.Get(key)
					if ok != wok || (ok && !bytes.Equal(got, want)) {
						c.fail(fs.Step(), "snapshot-get",
							fmt.Errorf("key %q: snapshot read %q,%v, model %q,%v", key, got, ok, want, wok))
					}
				}
			}
			snap.Close()
		}
		// Scripted structural operations so the matrix reliably covers
		// flush and full-compaction I/O regardless of the random mix.
		if i > 0 && i%60 == 0 {
			db.Flush() // errors tolerated in fault runs
		}
		if i > 0 && i%130 == 0 {
			db.CompactRange()
		}
	}
	db.Close() // errors tolerated: a poisoned engine still left a valid image

	// The final durable image must recover like any other crash point.
	c.verify(fs.DurableSnapshot(), fs.Step(), fs.Step(), "final", false)
	return &c.report, nil
}
