package crashtest

import (
	"fmt"
	"math/rand"
	"strings"

	"clsm/internal/batch"
	"clsm/internal/core"
	"clsm/internal/faultfs"
	"clsm/internal/obs"
	"clsm/internal/oracle"
	"clsm/internal/shard"
	"clsm/internal/storage"
	"clsm/internal/version"
)

// shardPrefix names shard i's namespace on the shared crash filesystem.
func shardPrefix(i int) string { return fmt.Sprintf("s%d-", i) }

// splitShard recovers (shard, plain name) from a prefixed file name, so
// crash points can be classified per shard. ok is false for names
// outside any shard namespace.
func splitShard(name string) (int, string, bool) {
	if !strings.HasPrefix(name, "s") {
		return 0, "", false
	}
	dash := strings.IndexByte(name, '-')
	if dash < 2 {
		return 0, "", false
	}
	var s int
	if _, err := fmt.Sscanf(name[1:dash], "%d", &s); err != nil {
		return 0, "", false
	}
	return s, name[dash+1:], true
}

// shardChecker runs the reopen-and-verify cycle for a sharded store:
// every captured image is reopened as a full shard.DB (each shard
// recovering from its own WAL and manifest inside the shared image) and
// checked against the same two invariants. Because a sync only ever
// belongs to one shard's file, torn variants directly prove recovery
// independence: tearing shard i's WAL tail must not cost any other
// shard an acknowledged write.
type shardChecker struct {
	checker
	shards int
}

func (c *shardChecker) hook(p faultfs.Point) {
	s, plain, ok := splitShard(p.Name)
	if !ok {
		plain = p.Name
		s = -1
	}
	label := classify(plain) + "-" + p.Op.String()
	if s >= 0 {
		label = fmt.Sprintf("s%d-%s", s, label)
	}

	c.mu.Lock()
	c.report.Coverage[label]++
	sampling := 1
	counterKey := label
	switch p.Op {
	case faultfs.OpWrite:
		sampling = c.cfg.WriteSampling
	case faultfs.OpSync:
		sampling = c.cfg.SyncSampling
		if p.PreSync {
			counterKey += "|pre"
		} else {
			counterKey += "|post"
		}
	}
	n := c.sampled[counterKey]
	c.sampled[counterKey] = n + 1
	c.mu.Unlock()

	if n%sampling != 0 || c.failed() {
		return
	}

	if p.PreSync {
		c.verify(p.CaptureDurable(), p.Step-1, p.Step, label+"-pre", false)
		if delta := len(p.SyncDelta); delta > 0 {
			c.verify(p.CaptureTorn(delta/2, -1), p.Step-1, p.Step, label+"-torn", true)
			c.verify(p.CaptureTorn(delta, int(p.Step*13)%(delta*8)), p.Step-1, p.Step, label+"-flip", true)
		}
		return
	}
	c.verify(p.CaptureDurable(), p.Step, p.Step, label, false)
}

// verify reopens a sharded store from one crash image and checks
// durability and no-fabrication for every key the model has seen —
// including, critically, keys owned by shards other than the one whose
// file the crash point touched.
func (c *shardChecker) verify(image map[string][]byte, cutoff, step uint64, label string, torn bool) {
	if image == nil {
		return
	}
	base := storage.NewMemFSFromSnapshot(image)
	var opts shard.Options
	for i := 0; i < c.shards; i++ {
		opts.Engines = append(opts.Engines, core.Options{
			FS:            storage.NewPrefixFS(base, shardPrefix(i)),
			SyncWrites:    true,
			StrictWALTail: c.cfg.StrictWALTail,
			MemtableSize:  8 << 20,
		})
	}
	db, err := shard.Open(opts)
	if err != nil {
		c.fail(step, label, fmt.Errorf("sharded recovery open: %w", err))
		return
	}
	defer db.Close()

	c.mu.Lock()
	for i := 0; i < c.shards; i++ {
		o := db.Shard(i).Observer()
		c.report.TornTailsTruncated += o.WALTornTails.Load()
		c.report.RecordsReplayed += o.RecoveryRecords.Load()
		c.report.OrphansRemoved += o.OrphanFilesRemoved.Load()
	}
	if torn {
		c.report.Torn++
	} else {
		c.report.Points++
	}
	c.mu.Unlock()

	match := make(map[string]int)
	for _, key := range c.model.Keys() {
		got, ok, err := db.Get([]byte(key))
		if err != nil {
			c.fail(step, label, fmt.Errorf("recovered get %q: %w", key, err))
			return
		}
		idx, verr := c.model.CheckCrash(key, got, ok, cutoff)
		if verr != nil {
			c.fail(step, label, verr)
			continue
		}
		match[key] = idx
	}
	for _, berr := range c.model.CheckBatchAtomicity(match) {
		c.fail(step, label, berr)
	}
}

// RunSharded executes the crash matrix against a sharded store: N
// engines over one fault-injecting filesystem (each in its own file
// namespace), so every shard's WAL appends, syncs, flushes, and
// manifest installs become crash points in a single matrix, and every
// captured image is recovered as a whole sharded store. shards < 2 is a
// setup error — the point of the matrix is cross-shard independence.
func RunSharded(cfg Config, shards int) (*Report, error) {
	if shards < 2 {
		return nil, fmt.Errorf("crashtest: sharded run needs >= 2 shards, got %d", shards)
	}
	cfg = cfg.withDefaults()
	fs := faultfs.Wrap(storage.NewMemFS())
	c := &shardChecker{
		checker: checker{
			cfg:     cfg,
			model:   oracle.NewModel(),
			sampled: map[string]int{},
		},
		shards: shards,
	}
	c.report.Coverage = map[string]int{}
	fs.SetHook(c.hook)
	fs.Arm(cfg.Faults...)

	var opts shard.Options
	for i := 0; i < shards; i++ {
		observer := obs.New()
		observer.Trace.SetShard(i)
		opts.Engines = append(opts.Engines, core.Options{
			FS:           storage.NewPrefixFS(fs, shardPrefix(i)),
			SyncWrites:   true,
			MemtableSize: cfg.MemtableSize,
			Observer:     observer,
			Disk: version.Options{
				L0CompactionTrigger: 2,
				BaseLevelBytes:      16 << 10,
				TableFileSize:       8 << 10,
			},
		})
	}
	db, err := shard.Open(opts)
	if err != nil {
		return nil, fmt.Errorf("crashtest: open sharded workload store: %w", err)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	keyPool := make([]string, 24)
	for i := range keyPool {
		keyPool[i] = fmt.Sprintf("key-%02d", i)
	}

	// beginPerShard registers a cross-shard batch as one model batch per
	// touched shard: the store's contract is per-shard atomicity, so the
	// model must not demand more (or a crash between two shards' commits
	// would be misreported as a torn batch).
	beginPerShard := func(start uint64, ops []oracle.Op) []*oracle.Pending {
		groups := make([][]oracle.Op, shards)
		for _, op := range ops {
			s := shard.IndexOf([]byte(op.Key), shards)
			groups[s] = append(groups[s], op)
		}
		var pend []*oracle.Pending
		for _, g := range groups {
			if len(g) > 0 {
				pend = append(pend, c.model.Begin(start, g...))
			}
		}
		return pend
	}

	for i := 0; i < cfg.Ops; i++ {
		switch r := rng.Intn(100); {
		case r < 50: // put
			key := keyPool[rng.Intn(len(keyPool))]
			val := []byte(fmt.Sprintf("v-%d-%06d", cfg.Seed, i))
			pend := c.model.Begin(fs.Step(), oracle.Op{Key: key, Value: val})
			if db.Put([]byte(key), val) == nil {
				pend.Ack(fs.Step())
			}
		case r < 62: // delete
			key := keyPool[rng.Intn(len(keyPool))]
			pend := c.model.Begin(fs.Step(), oracle.Op{Key: key, Tombstone: true})
			if db.Delete([]byte(key)) == nil {
				pend.Ack(fs.Step())
			}
		default: // cross-shard atomic batch over 2–4 distinct keys
			n := 2 + rng.Intn(3)
			var ops []oracle.Op
			var b batch.Batch
			for j, ki := range rng.Perm(len(keyPool))[:n] {
				key := keyPool[ki]
				if rng.Intn(4) == 0 {
					b.Delete([]byte(key))
					ops = append(ops, oracle.Op{Key: key, Tombstone: true})
				} else {
					val := []byte(fmt.Sprintf("b-%d-%06d-%d", cfg.Seed, i, j))
					b.Put([]byte(key), val)
					ops = append(ops, oracle.Op{Key: key, Value: val})
				}
			}
			pend := beginPerShard(fs.Step(), ops)
			if db.Write(&b) == nil {
				step := fs.Step()
				for _, p := range pend {
					p.Ack(step)
				}
			}
		}
		if i > 0 && i%60 == 0 {
			db.Flush()
		}
		if i > 0 && i%130 == 0 {
			db.CompactRange()
		}
	}
	db.Close()

	c.verify(fs.DurableSnapshot(), fs.Step(), fs.Step(), "final", false)
	return &c.report, nil
}
