package crashtest

import "testing"

// TestShardedCrashMatrix runs the crash matrix against a 2-shard store:
// both shards' WAL/SST/manifest I/O feeds one crash-point stream, every
// captured image recovers as a whole sharded store, and the model check
// covers all keys — so a torn WAL tail on one shard that cost the other
// shard an acknowledged write would fail the durability invariant.
func TestShardedCrashMatrix(t *testing.T) {
	seed := envInt("CRASHTEST_SEED", 1)
	ops := int(envInt("CRASHTEST_OPS", 300))
	if testing.Short() && ops > 200 {
		ops = 200
	}
	rep, err := RunSharded(Config{Seed: seed, Ops: ops}, 2)
	if err != nil {
		t.Fatalf("harness: %v", err)
	}
	t.Logf("seed=%d ops=%d: %d crash points + %d torn variants checked; %d torn tails truncated, %d records replayed, %d orphans removed; coverage=%v",
		seed, ops, rep.Points, rep.Torn, rep.TornTailsTruncated, rep.RecordsReplayed, rep.OrphansRemoved, rep.Coverage)
	for _, f := range rep.Failures {
		t.Errorf("invariant violation (replay with CRASHTEST_SEED=%d CRASHTEST_OPS=%d): %s", seed, ops, f)
	}
	if total := rep.Points + rep.Torn; total < 150 {
		t.Errorf("only %d crash points checked, want >= 150 (raise CRASHTEST_OPS)", total)
	}
	// Recovery independence needs crash points on BOTH shards' logs and
	// structural files — a matrix that only ever tore one shard proves
	// nothing about the other.
	for _, label := range []string{
		"s0-wal-write", "s1-wal-write",
		"s0-wal-sync", "s1-wal-sync",
		"s0-sst-write", "s1-sst-write",
		"s0-manifest-sync", "s1-manifest-sync",
		"s0-current-writefile", "s1-current-writefile",
	} {
		if rep.Coverage[label] == 0 {
			t.Errorf("sharded crash matrix never hit %q", label)
		}
	}
	if rep.TornTailsTruncated == 0 {
		t.Error("no recovery ever truncated a torn tail — torn variants not exercised")
	}
	if rep.RecordsReplayed == 0 {
		t.Error("no recovery ever replayed a WAL record")
	}
}

// TestShardedCrashMatrixRejectsSingleShard pins the guard: the sharded
// matrix exists to prove cross-shard independence, so shards < 2 is a
// setup error, not a degenerate run.
func TestShardedCrashMatrixRejectsSingleShard(t *testing.T) {
	if _, err := RunSharded(Config{}, 1); err == nil {
		t.Fatal("RunSharded accepted a single shard")
	}
}
