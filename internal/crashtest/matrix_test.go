package crashtest

import (
	"os"
	"strconv"
	"testing"

	"clsm/internal/faultfs"
)

// envInt reads an integer knob (CRASHTEST_SEED, CRASHTEST_OPS) so a failing
// seed printed by a CI run can be replayed locally:
//
//	CRASHTEST_SEED=42 CRASHTEST_OPS=500 go test ./internal/crashtest -run CrashMatrix
func envInt(name string, def int64) int64 {
	if s := os.Getenv(name); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil {
			return v
		}
	}
	return def
}

// TestCrashMatrix is the harness's main entry point: one scripted workload,
// a crash image captured and verified at every sampled I/O point (plus torn
// and bit-flipped variants at sync boundaries), all checked against the
// reference model.
func TestCrashMatrix(t *testing.T) {
	seed := envInt("CRASHTEST_SEED", 1)
	ops := int(envInt("CRASHTEST_OPS", 300))
	if testing.Short() && ops > 200 {
		ops = 200
	}
	rep, err := Run(Config{Seed: seed, Ops: ops})
	if err != nil {
		t.Fatalf("harness: %v", err)
	}
	t.Logf("seed=%d ops=%d: %d crash points + %d torn variants checked; %d torn tails truncated, %d records replayed, %d orphans removed; coverage=%v",
		seed, ops, rep.Points, rep.Torn, rep.TornTailsTruncated, rep.RecordsReplayed, rep.OrphansRemoved, rep.Coverage)
	for _, f := range rep.Failures {
		t.Errorf("invariant violation (replay with CRASHTEST_SEED=%d CRASHTEST_OPS=%d): %s", seed, ops, f)
	}
	if total := rep.Points + rep.Torn; total < 200 {
		t.Errorf("only %d crash points checked, want >= 200 (raise CRASHTEST_OPS)", total)
	}
	for _, label := range []string{
		"wal-write", "wal-sync", "sst-write", "sst-sync",
		"manifest-write", "manifest-sync", "current-writefile",
		"during-compaction",
	} {
		if rep.Coverage[label] == 0 {
			t.Errorf("crash matrix never hit %q", label)
		}
	}
	if rep.TornTailsTruncated == 0 {
		t.Error("no recovery ever truncated a torn tail — torn variants not exercised")
	}
	if rep.RecordsReplayed == 0 {
		t.Error("no recovery ever replayed a WAL record")
	}
	if rep.OrphansRemoved == 0 {
		t.Error("no recovery ever removed an orphan file")
	}
}

// TestCrashMatrixWithInjectedErrors re-runs the matrix under error-injection
// plans that fail a WAL sync, an sstable write mid-flush, and a manifest
// sync mid-install. The engine may fail operations or poison itself — the
// recovery invariants must hold at every crash point regardless.
func TestCrashMatrixWithInjectedErrors(t *testing.T) {
	seed := envInt("CRASHTEST_SEED", 1)
	cases := []struct {
		name  string
		rules []faultfs.Rule
	}{
		{"wal-sync-error", []faultfs.Rule{
			{Op: faultfs.OpSync, Pattern: "*.log", N: 10, Kind: faultfs.FaultErr}}},
		{"sst-write-error", []faultfs.Rule{
			{Op: faultfs.OpWrite, Pattern: "*.sst", N: 3, Kind: faultfs.FaultErr}}},
		{"manifest-sync-error", []faultfs.Rule{
			{Op: faultfs.OpSync, Pattern: "MANIFEST-*", N: 2, Kind: faultfs.FaultErr}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep, err := Run(Config{Seed: seed, Ops: 120, Faults: tc.rules})
			if err != nil {
				t.Fatalf("harness: %v", err)
			}
			t.Logf("seed=%d: %d points + %d torn checked under %s", seed, rep.Points, rep.Torn, tc.name)
			for _, f := range rep.Failures {
				t.Errorf("invariant violation under %s (CRASHTEST_SEED=%d): %s", tc.name, seed, f)
			}
		})
	}
}

// TestCrashMatrixDetectsBrokenRecovery is the harness's negative control: a
// recovery deliberately misconfigured to reject torn WAL tails (instead of
// truncating them) must fail the matrix. If this test ever finds zero
// failures, the harness has stopped generating the crash states it claims
// to check.
func TestCrashMatrixDetectsBrokenRecovery(t *testing.T) {
	seed := envInt("CRASHTEST_SEED", 1)
	rep, err := Run(Config{Seed: seed, Ops: 80, StrictWALTail: true})
	if err != nil {
		t.Fatalf("harness: %v", err)
	}
	if len(rep.Failures) == 0 {
		t.Fatal("strict-tail recovery passed the crash matrix — the harness is not generating torn crash states")
	}
	t.Logf("broken recovery correctly caught: %d failures, first: %s", len(rep.Failures), rep.Failures[0])
}
