package crashtest

import (
	"testing"

	"clsm/internal/faultfs"
)

// TestCrashMatrixTxn runs the crash matrix with the transactional
// workload: multi-key optimistic commits instead of plain batches. The
// model mirrors each transaction's write set as one atomic group, so
// CheckBatchAtomicity at every crash point — including torn and
// bit-flipped WAL tails — is exactly the all-or-nothing proof for txn
// commit records: an acknowledged transaction survives whole, a torn one
// vanishes whole, and no recovered state ever shows part of one.
func TestCrashMatrixTxn(t *testing.T) {
	seed := envInt("CRASHTEST_SEED", 1)
	ops := int(envInt("CRASHTEST_OPS", 300))
	if testing.Short() && ops > 200 {
		ops = 200
	}
	rep, err := Run(Config{Seed: seed, Ops: ops, Txns: true})
	if err != nil {
		t.Fatalf("harness: %v", err)
	}
	t.Logf("seed=%d ops=%d: %d txn commits; %d crash points + %d torn variants checked; %d torn tails truncated, %d records replayed",
		seed, ops, rep.TxnCommits, rep.Points, rep.Torn, rep.TornTailsTruncated, rep.RecordsReplayed)
	for _, f := range rep.Failures {
		t.Errorf("txn atomicity violation (replay with CRASHTEST_SEED=%d CRASHTEST_OPS=%d): %s", seed, ops, f)
	}
	if rep.TxnCommits < 20 {
		t.Errorf("only %d transactions committed — the txn workload barely ran", rep.TxnCommits)
	}
	if total := rep.Points + rep.Torn; total < 200 {
		t.Errorf("only %d crash points checked, want >= 200", total)
	}
	// Torn-tail coverage is the heart of the all-or-nothing claim: a
	// commit record persisted only partially must disappear entirely.
	if rep.Torn == 0 {
		t.Error("no torn variants checked — txn commit tearing not exercised")
	}
	if rep.TornTailsTruncated == 0 {
		t.Error("no recovery ever truncated a torn tail")
	}
	if rep.RecordsReplayed == 0 {
		t.Error("no recovery ever replayed a WAL record")
	}
}

// TestCrashMatrixTxnWithInjectedErrors: the transactional workload under
// error injection — failed WAL syncs may fail commits or poison the
// engine, but no crash image may ever recover a partial transaction.
func TestCrashMatrixTxnWithInjectedErrors(t *testing.T) {
	seed := envInt("CRASHTEST_SEED", 1)
	rep, err := Run(Config{Seed: seed, Ops: 120, Txns: true, Faults: []faultfs.Rule{
		{Op: faultfs.OpSync, Pattern: "*.log", N: 10, Kind: faultfs.FaultErr},
	}})
	if err != nil {
		t.Fatalf("harness: %v", err)
	}
	t.Logf("seed=%d: %d txn commits, %d points + %d torn checked under wal-sync errors",
		seed, rep.TxnCommits, rep.Points, rep.Torn)
	for _, f := range rep.Failures {
		t.Errorf("txn atomicity violation under faults (CRASHTEST_SEED=%d): %s", seed, f)
	}
}
