package crashtest

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"clsm/internal/batch"
	"clsm/internal/core"
	"clsm/internal/oracle"
)

// TestConcurrentOracle runs N goroutines of randomized Put/Delete/Get/
// batch/RMW/Snapshot traffic against one engine, each goroutine mirroring
// its operations into a private reference model over a disjoint key range
// (so per-key histories stay exact without cross-goroutine ordering
// assumptions). Run under -race by scripts/check.sh; the seed is logged so
// any failure replays with CRASHTEST_SEED.
func TestConcurrentOracle(t *testing.T) {
	seed := envInt("CRASHTEST_SEED", 1)
	ops := int(envInt("CRASHTEST_OPS", 300))
	if testing.Short() && ops > 150 {
		ops = 150
	}
	const goroutines = 4

	db, err := core.Open(core.Options{
		// A small memtable keeps flushes and compactions running under
		// the reads, which is the interleaving worth stressing.
		MemtableSize: 16 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	errc := make(chan error, goroutines*8)
	report := func(err error) {
		select {
		case errc <- err:
		default:
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(g)*7919))
			model := oracle.NewModel()
			keys := make([]string, 16)
			for i := range keys {
				keys[i] = fmt.Sprintf("g%d-k%02d", g, i)
			}
			check := func(ctx, key string, got []byte, ok bool, want []byte, wok bool) {
				if ok != wok || (ok && !bytes.Equal(got, want)) {
					report(fmt.Errorf("goroutine %d %s key %q: engine %q,%v, model %q,%v (CRASHTEST_SEED=%d)",
						g, ctx, key, got, ok, want, wok, seed))
				}
			}
			for i := 0; i < ops; i++ {
				key := keys[rng.Intn(len(keys))]
				switch r := rng.Intn(100); {
				case r < 40: // put
					val := []byte(fmt.Sprintf("g%d-v%06d", g, i))
					if db.Put([]byte(key), val) != nil {
						return
					}
					model.Begin(0, oracle.Op{Key: key, Value: val})
				case r < 55: // delete
					if db.Delete([]byte(key)) != nil {
						return
					}
					model.Begin(0, oracle.Op{Key: key, Tombstone: true})
				case r < 65: // atomic batch over own keys
					var b batch.Batch
					var mops []oracle.Op
					for j, ki := range rng.Perm(len(keys))[:3] {
						val := []byte(fmt.Sprintf("g%d-b%06d-%d", g, i, j))
						b.Put([]byte(keys[ki]), val)
						mops = append(mops, oracle.Op{Key: keys[ki], Value: val})
					}
					if db.Write(&b) != nil {
						return
					}
					model.Begin(0, mops...)
				case r < 75: // read-modify-write
					val := []byte(fmt.Sprintf("g%d-r%06d", g, i))
					if db.RMW([]byte(key), func([]byte, bool) []byte { return val }) != nil {
						return
					}
					model.Begin(0, oracle.Op{Key: key, Value: val})
				case r < 92: // live get
					got, ok, err := db.Get([]byte(key))
					if err != nil {
						return
					}
					want, wok := model.Get(key)
					check("get", key, got, ok, want, wok)
				default: // snapshot: own keys must read at their current state
					type kv struct {
						key string
						val []byte
						ok  bool
					}
					var expected []kv
					for _, ki := range rng.Perm(len(keys))[:4] {
						v, ok := model.Get(keys[ki])
						expected = append(expected, kv{keys[ki], v, ok})
					}
					snap, err := db.GetSnapshot()
					if err != nil {
						return
					}
					for _, e := range expected {
						got, ok, err := snap.Get([]byte(e.key))
						if err != nil {
							break
						}
						check("snapshot", e.key, got, ok, e.val, e.ok)
					}
					snap.Close()
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
