package crashtest

import (
	"strings"
	"testing"

	"clsm/internal/faultfs"
)

// TestCrashMatrixVlog runs the crash matrix with key-value separation
// enabled: roughly half the workload values route through the segmented
// value log, tiny segments force rotations and live-ratio GC rewrites
// mid-workload, and every sampled crash image — including torn and
// bit-flipped value-log tails — must recover to a state satisfying the
// durability and no-fabrication invariants. Recovery engines run WITHOUT
// the threshold configured, proving pointer dereference is independent
// of the write-side knob.
func TestCrashMatrixVlog(t *testing.T) {
	seed := envInt("CRASHTEST_SEED", 1)
	ops := int(envInt("CRASHTEST_OPS", 300))
	if testing.Short() && ops > 200 {
		ops = 200
	}
	rep, err := Run(Config{Seed: seed, Ops: ops, ValueThreshold: 48})
	if err != nil {
		t.Fatalf("harness: %v", err)
	}
	t.Logf("seed=%d ops=%d: %d crash points + %d torn variants checked; coverage=%v",
		seed, ops, rep.Points, rep.Torn, rep.Coverage)
	for _, f := range rep.Failures {
		t.Errorf("invariant violation (replay with CRASHTEST_SEED=%d CRASHTEST_OPS=%d): %s", seed, ops, f)
	}
	// The matrix must actually have exercised the value log, or this test
	// silently degenerates into a rerun of TestCrashMatrix.
	for _, label := range []string{"vlog-write", "vlog-sync"} {
		if rep.Coverage[label] == 0 {
			t.Errorf("vlog crash matrix never hit %q", label)
		}
	}
	if rep.OrphansRemoved == 0 {
		t.Error("no recovery ever removed an orphan file")
	}
}

// TestCrashMatrixVlogFaults reruns the vlog matrix under an injected
// value-log sync error: the engine may fail puts or quarantine itself,
// but no crash image may ever serve a value whose vlog entry did not
// become durable.
func TestCrashMatrixVlogFaults(t *testing.T) {
	seed := envInt("CRASHTEST_SEED", 1)
	rep, err := Run(Config{
		Seed: seed, Ops: 120, ValueThreshold: 48,
		Faults: []faultfs.Rule{
			{Op: faultfs.OpSync, Pattern: "*.vlg", N: 8, Kind: faultfs.FaultErr}},
	})
	if err != nil {
		t.Fatalf("harness: %v", err)
	}
	t.Logf("seed=%d: %d points + %d torn checked under vlog-sync-error", seed, rep.Points, rep.Torn)
	for _, f := range rep.Failures {
		t.Errorf("invariant violation under vlog-sync-error (CRASHTEST_SEED=%d): %s", seed, f)
	}
}

// TestBackupMatrixVlog proves backup/restore round-trips a store with
// key-value separation enabled: completed backups must ship value-log
// segments alongside sstables, and every restore must dereference the
// pointers those segments back — held to the same cutoff invariants as
// the plain matrix.
func TestBackupMatrixVlog(t *testing.T) {
	seed := envInt("CRASHTEST_SEED", 1)
	ops := int(envInt("CRASHTEST_OPS", 240))
	rep, err := RunBackup(BackupConfig{Seed: seed, Ops: ops, ValueThreshold: 48})
	if err != nil {
		t.Fatalf("harness: %v", err)
	}
	t.Logf("seed=%d ops=%d: %d backups completed, %d restores verified",
		seed, ops, len(rep.Completed), rep.Restores)
	for _, f := range rep.Failures {
		t.Errorf("invariant violation (replay with CRASHTEST_SEED=%d CRASHTEST_OPS=%d): %s", seed, ops, f)
	}
	if len(rep.Completed) < 2 {
		t.Fatalf("only %d backups completed, want >= 2", len(rep.Completed))
	}
	if rep.Restores != len(rep.Completed) {
		t.Errorf("restored %d of %d completed backups", rep.Restores, len(rep.Completed))
	}
	shippedVlog := false
	for _, bp := range rep.Completed {
		for _, st := range bp.Manifest.Stores {
			for _, obj := range st.Tables {
				if strings.HasSuffix(obj.Name, ".vlg") {
					shippedVlog = true
				}
			}
		}
	}
	if !shippedVlog {
		t.Error("no completed backup shipped a value-log segment")
	}
}
