package memtable

import (
	"fmt"
	"sync/atomic"
	"testing"

	"clsm/internal/keys"
)

func TestAddGetVersions(t *testing.T) {
	mt := New(7)
	defer mt.Unref()
	if mt.LogNum != 7 {
		t.Fatalf("LogNum = %d", mt.LogNum)
	}
	mt.Add([]byte("k"), 5, keys.KindValue, []byte("v5"))
	mt.Add([]byte("k"), 9, keys.KindValue, []byte("v9"))

	v, deleted, found := mt.Get([]byte("k"), keys.MaxTimestamp)
	if !found || deleted || string(v) != "v9" {
		t.Fatalf("Get = %q,%v,%v", v, deleted, found)
	}
	v, _, found = mt.Get([]byte("k"), 6)
	if !found || string(v) != "v5" {
		t.Fatalf("Get@6 = %q,%v", v, found)
	}
	if _, _, found := mt.Get([]byte("k"), 4); found {
		t.Fatal("Get@4 should miss")
	}
	if _, _, found := mt.Get([]byte("x"), keys.MaxTimestamp); found {
		t.Fatal("absent key found")
	}
}

func TestTombstoneStopsSearch(t *testing.T) {
	mt := New(1)
	defer mt.Unref()
	mt.Add([]byte("k"), 5, keys.KindValue, []byte("v"))
	mt.Add([]byte("k"), 8, keys.KindDelete, nil)

	_, deleted, found := mt.Get([]byte("k"), keys.MaxTimestamp)
	if !found || !deleted {
		t.Fatalf("tombstone not surfaced: deleted=%v found=%v", deleted, found)
	}
	// Below the tombstone the old value is visible.
	v, deleted, found := mt.Get([]byte("k"), 6)
	if !found || deleted || string(v) != "v" {
		t.Fatalf("Get@6 = %q,%v,%v", v, deleted, found)
	}
}

func TestGetWithTS(t *testing.T) {
	mt := New(1)
	defer mt.Unref()
	mt.Add([]byte("k"), 42, keys.KindValue, []byte("v"))
	v, ts, deleted, found := mt.GetWithTS([]byte("k"), keys.MaxTimestamp)
	if !found || deleted || ts != 42 || string(v) != "v" {
		t.Fatalf("GetWithTS = %q,%d,%v,%v", v, ts, deleted, found)
	}
}

func TestInsertRMWThroughMemtable(t *testing.T) {
	mt := New(1)
	defer mt.Unref()
	if !mt.InsertRMW([]byte("k"), 5, []byte("a"), 0) {
		t.Fatal("first RMW insert failed")
	}
	if mt.InsertRMW([]byte("k"), 7, []byte("b"), 0) {
		t.Fatal("conflicting RMW insert succeeded")
	}
	if !mt.InsertRMW([]byte("k"), 7, []byte("b"), 5) {
		t.Fatal("RMW with fresh read failed")
	}
}

func TestIteratorAndSize(t *testing.T) {
	mt := New(1)
	defer mt.Unref()
	if mt.ApproximateSize() != 0 || mt.Len() != 0 {
		t.Fatal("fresh memtable not empty")
	}
	for i := 0; i < 100; i++ {
		mt.Add([]byte(fmt.Sprintf("k%03d", i)), uint64(i+1), keys.KindValue, []byte("v"))
	}
	if mt.Len() != 100 || mt.ApproximateSize() <= 0 {
		t.Fatalf("Len=%d size=%d", mt.Len(), mt.ApproximateSize())
	}
	it := mt.NewIterator()
	n := 0
	for it.First(); it.Valid(); it.Next() {
		n++
	}
	if n != 100 || it.Err() != nil {
		t.Fatalf("iterated %d err=%v", n, it.Err())
	}
	it.SeekGE(keys.SeekKey([]byte("k050"), keys.MaxTimestamp))
	if !it.Valid() || string(keys.UserKey(it.Key())) != "k050" {
		t.Fatal("SeekGE failed")
	}
}

func TestRefCountedLifetime(t *testing.T) {
	mt := New(1)
	var finalized atomic.Bool
	// Re-init with a finalizer to observe the drop (tests only).
	mt.InitRef(func() { finalized.Store(true) })
	mt.Ref()
	mt.Unref()
	if finalized.Load() {
		t.Fatal("finalized with a live reference")
	}
	mt.Unref()
	if !finalized.Load() {
		t.Fatal("finalizer did not run")
	}
}
