// Package memtable provides the in-memory component (the paper's Cm / C'm):
// a reference-counted, multi-versioned sorted map over the lock-free skip
// list. Rotation (beforeMerge) freezes the table by publishing a fresh one;
// the frozen table serves reads until its merge completes and the last
// reader drops its reference.
package memtable

import (
	"sync"

	"clsm/internal/iterator"
	"clsm/internal/keys"
	"clsm/internal/skiplist"
	"clsm/internal/syncutil"
)

// ikeyScratch pools the transient internal-key encodings built by Add and
// InsertRMW. The skip list copies the key into its arena, so the scratch
// can be recycled the moment Insert returns — making the write path free of
// per-operation allocations.
var ikeyScratch = sync.Pool{New: func() any { return new([]byte) }}

// Table is one in-memory component.
type Table struct {
	syncutil.RefCounted
	list *skiplist.List
	// LogNum is the WAL file absorbing this table's writes; the log can be
	// deleted once the table is merged into the disk component.
	LogNum uint64
}

// New returns an empty memtable backed by WAL file logNum, holding one
// reference for the creator.
func New(logNum uint64) *Table {
	t := &Table{list: skiplist.New(), LogNum: logNum}
	t.InitRef(nil)
	return t
}

// Add inserts a version. Safe for concurrent use.
func (t *Table) Add(key []byte, ts uint64, kind keys.Kind, value []byte) {
	buf := ikeyScratch.Get().(*[]byte)
	*buf = keys.Encode((*buf)[:0], key, ts, kind)
	t.list.Insert(*buf, value)
	ikeyScratch.Put(buf)
}

// Get returns the newest version of key visible at ts.
// found=false means the table holds no visible version; deleted=true means
// that version is a tombstone (the search must NOT continue to older
// components).
func (t *Table) Get(key []byte, ts uint64) (value []byte, deleted, found bool) {
	v, _, kind, ok := t.list.Get(key, ts)
	if !ok {
		return nil, false, false
	}
	if kind == keys.KindDelete {
		return nil, true, true
	}
	return v, false, true
}

// GetWithTS additionally reports the version's timestamp — the read step of
// Algorithm 3.
func (t *Table) GetWithTS(key []byte, ts uint64) (value []byte, valTS uint64, deleted, found bool) {
	v, vts, kind, ok := t.list.Get(key, ts)
	if !ok {
		return nil, 0, false, false
	}
	if kind == keys.KindDelete {
		return nil, vts, true, true
	}
	return v, vts, false, true
}

// GetKind is Get surfacing the raw entry kind: the value-log read path
// needs to distinguish an inline value (KindValue) from an encoded vlog
// pointer (KindValuePtr) without decoding heuristics.
func (t *Table) GetKind(key []byte, ts uint64) (value []byte, valTS uint64, kind keys.Kind, found bool) {
	return t.list.Get(key, ts)
}

// InsertRMW attempts one conflict-checked insert (Algorithm 3) of kind
// KindValue; see skiplist.List.InsertRMW.
func (t *Table) InsertRMW(key []byte, ts uint64, value []byte, readTS uint64) bool {
	return t.InsertRMWKind(key, ts, keys.KindValue, value, readTS)
}

// InsertRMWKind is InsertRMW with an explicit kind: value-log GC relinks
// insert KindValuePtr entries through the same conflict check.
func (t *Table) InsertRMWKind(key []byte, ts uint64, kind keys.Kind, value []byte, readTS uint64) bool {
	buf := ikeyScratch.Get().(*[]byte)
	*buf = keys.Encode((*buf)[:0], key, ts, kind)
	ok := t.list.InsertRMW(*buf, value, readTS)
	ikeyScratch.Put(buf)
	return ok
}

// ApproximateSize returns the bytes retained by entries, the memtable
// spill metric.
func (t *Table) ApproximateSize() int64 { return t.list.MemoryUsage() }

// Len returns the number of entries (all versions).
func (t *Table) Len() int { return t.list.Len() }

// iter adapts the skip-list iterator to the shared iterator contract.
type iter struct {
	*skiplist.Iterator
}

func (iter) Err() error { return nil }

// NewIterator returns a weakly consistent iterator over the table.
func (t *Table) NewIterator() iterator.Iterator {
	return iter{t.list.NewIterator()}
}
