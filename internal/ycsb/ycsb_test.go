package ycsb

import (
	"testing"

	"clsm/internal/baseline"
	"clsm/internal/harness"
)

func smallConfig(w Workload) Config {
	return Config{
		Workload:    w,
		RecordCount: 2000,
		OpCount:     4000,
		Threads:     4,
		KeySize:     16,
		ValueSize:   100,
		Seed:        7,
	}
}

func TestParseWorkload(t *testing.T) {
	for _, s := range []string{"a", "B", "f"} {
		if _, err := ParseWorkload(s); err != nil {
			t.Errorf("ParseWorkload(%q): %v", s, err)
		}
	}
	for _, s := range []string{"", "g", "ab"} {
		if _, err := ParseWorkload(s); err == nil {
			t.Errorf("ParseWorkload(%q) accepted", s)
		}
	}
}

func TestAllWorkloadsRun(t *testing.T) {
	for _, w := range []Workload{WorkloadA, WorkloadB, WorkloadC, WorkloadD, WorkloadE, WorkloadF} {
		t.Run(string(w), func(t *testing.T) {
			s, err := baseline.New(baseline.NameCLSM, harness.Smoke.CoreOptions())
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			cfg := smallConfig(w)
			if err := Load(s, cfg); err != nil {
				t.Fatal(err)
			}
			res, err := Run(s, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Total != uint64(cfg.OpCount) {
				t.Fatalf("ran %d ops, want %d", res.Total, cfg.OpCount)
			}
			if res.Throughput <= 0 {
				t.Fatal("zero throughput")
			}
		})
	}
}

func TestWorkloadMixRatios(t *testing.T) {
	s, err := baseline.New(baseline.NameCLSM, harness.Smoke.CoreOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	cfg := smallConfig(WorkloadA)
	cfg.OpCount = 20000
	if err := Load(s, cfg); err != nil {
		t.Fatal(err)
	}
	res, err := Run(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	reads := float64(res.PerOp["read"].Count) / float64(res.Total)
	if reads < 0.45 || reads > 0.55 {
		t.Fatalf("workload A read ratio = %.3f, want ~0.5", reads)
	}
	if res.PerOp["update"].Count == 0 {
		t.Fatal("no updates in workload A")
	}
	if res.PerOp["read"].Hist.Count() == 0 {
		t.Fatal("no read latencies recorded")
	}
}

func TestWorkloadDInsertsGrowKeySpace(t *testing.T) {
	s, err := baseline.New(baseline.NameCLSM, harness.Smoke.CoreOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	cfg := smallConfig(WorkloadD)
	if err := Load(s, cfg); err != nil {
		t.Fatal(err)
	}
	res, err := Run(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.PerOp["insert"].Count == 0 {
		t.Fatal("workload D made no inserts")
	}
}

func TestWorkloadEScans(t *testing.T) {
	s, err := baseline.New(baseline.NameCLSM, harness.Smoke.CoreOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	cfg := smallConfig(WorkloadE)
	if err := Load(s, cfg); err != nil {
		t.Fatal(err)
	}
	res, err := Run(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.PerOp["scan"].Count == 0 {
		t.Fatal("workload E made no scans")
	}
	scans := float64(res.PerOp["scan"].Count) / float64(res.Total)
	if scans < 0.9 {
		t.Fatalf("workload E scan ratio = %.3f, want ~0.95", scans)
	}
}
