// Package ycsb implements the six core YCSB workloads (Cooper et al.,
// SoCC 2010 — the benchmark suite of the key-value-store literature the
// paper builds on) against any baseline.Store. It complements the paper's
// figure harness with the industry-standard mix definitions:
//
//	A  update heavy   50/50 read/update, zipfian
//	B  read mostly    95/5 read/update, zipfian
//	C  read only      100% read, zipfian
//	D  read latest    95/5 read/insert, skewed to recent inserts
//	E  short ranges   95/5 scan/insert, zipfian, scans of 1-100 keys
//	F  read-modify-write  50/50 read/RMW, zipfian
package ycsb

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"clsm/internal/baseline"
	"clsm/internal/harness"
	"clsm/internal/workload"
)

// Workload identifies one of the six core mixes.
type Workload byte

// The six core YCSB workloads.
const (
	WorkloadA Workload = 'a'
	WorkloadB Workload = 'b'
	WorkloadC Workload = 'c'
	WorkloadD Workload = 'd'
	WorkloadE Workload = 'e'
	WorkloadF Workload = 'f'
)

// ParseWorkload accepts "a".."f" (case-insensitive).
func ParseWorkload(s string) (Workload, error) {
	if len(s) == 1 {
		c := s[0] | 0x20
		if c >= 'a' && c <= 'f' {
			return Workload(c), nil
		}
	}
	return 0, fmt.Errorf("ycsb: unknown workload %q (a-f)", s)
}

// Value size distributions (Config.ValueDist).
const (
	// DistFixed writes every value at exactly ValueSize bytes (default).
	DistFixed = "fixed"
	// DistUniform draws sizes uniformly from [ValueSize, ValueMax].
	DistUniform = "uniform"
	// DistZipf skews sizes toward ValueSize with a heavy tail up to
	// ValueMax — the mixed small/large shape key-value separation targets.
	DistZipf = "zipf"
)

// ParseValueDist validates a -value-dist flag value.
func ParseValueDist(s string) (string, error) {
	switch s {
	case "", DistFixed:
		return DistFixed, nil
	case DistUniform, DistZipf:
		return s, nil
	}
	return "", fmt.Errorf("ycsb: unknown value distribution %q (fixed|uniform|zipf)", s)
}

// Config parameterizes a run.
type Config struct {
	Workload    Workload
	RecordCount int64 // preloaded records
	OpCount     int64 // total operations across threads
	Threads     int
	KeySize     int // default 23 ("user" + 20 digits), per YCSB
	ValueSize   int // default 1000 (10 fields x 100 bytes)
	// ValueDist picks the per-write value size distribution (DistFixed,
	// DistUniform, DistZipf); ValueMax bounds the variable distributions
	// (default 4x ValueSize).
	ValueDist string
	ValueMax  int
	Seed      int64
}

func (c Config) withDefaults() Config {
	if c.RecordCount <= 0 {
		c.RecordCount = 100_000
	}
	if c.OpCount <= 0 {
		c.OpCount = 100_000
	}
	if c.Threads <= 0 {
		c.Threads = 1
	}
	if c.KeySize <= 0 {
		c.KeySize = 23
	}
	if c.ValueSize <= 0 {
		c.ValueSize = 1000
	}
	if c.ValueDist == "" {
		c.ValueDist = DistFixed
	}
	if c.ValueMax < c.ValueSize {
		c.ValueMax = 4 * c.ValueSize
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// OpResult aggregates one operation type's measurements.
type OpResult struct {
	Count uint64
	Hist  *harness.Histogram
}

// Result is the outcome of a run.
type Result struct {
	Workload   Workload
	Elapsed    time.Duration
	Total      uint64
	PerOp      map[string]*OpResult
	Throughput float64 // ops/sec
}

// Load preloads the record set (the YCSB load phase).
func Load(s baseline.Store, cfg Config) error {
	cfg = cfg.withDefaults()
	return harness.Preload(s, workload.Config{
		KeySpace:  cfg.RecordCount,
		KeySize:   cfg.KeySize,
		ValueSize: cfg.ValueSize,
	}, cfg.RecordCount, cfg.Threads)
}

// Run executes the transaction phase.
func Run(s baseline.Store, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	res := &Result{
		Workload: cfg.Workload,
		PerOp: map[string]*OpResult{
			"read":   {Hist: harness.NewHistogram()},
			"update": {Hist: harness.NewHistogram()},
			"insert": {Hist: harness.NewHistogram()},
			"scan":   {Hist: harness.NewHistogram()},
			"rmw":    {Hist: harness.NewHistogram()},
		},
	}

	// insertCursor tracks the growing key space (workload D inserts).
	var insertCursor atomic.Int64
	insertCursor.Store(cfg.RecordCount)

	perThread := cfg.OpCount / int64(cfg.Threads)
	var wg sync.WaitGroup
	var firstErr atomic.Pointer[error]
	workers := make([]*worker, cfg.Threads)
	for t := 0; t < cfg.Threads; t++ {
		workers[t] = newWorker(cfg, int64(t), &insertCursor)
	}

	start := time.Now()
	for t := 0; t < cfg.Threads; t++ {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			for i := int64(0); i < perThread; i++ {
				if err := w.step(s); err != nil {
					firstErr.CompareAndSwap(nil, &err)
					return
				}
			}
		}(workers[t])
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	if e := firstErr.Load(); e != nil {
		return nil, *e
	}

	for _, w := range workers {
		for op, h := range w.hists {
			r := res.PerOp[op]
			r.Hist.Merge(h)
			r.Count += w.counts[op]
			res.Total += w.counts[op]
		}
	}
	if res.Elapsed > 0 {
		res.Throughput = float64(res.Total) / res.Elapsed.Seconds()
	}
	return res, nil
}

// worker holds one thread's generators and measurement state.
type worker struct {
	cfg      Config
	rng      *rand.Rand
	zipf     *rand.Zipf
	sizeZipf *rand.Zipf // value-size tail generator (DistZipf)
	cursor   *atomic.Int64
	keyBuf   []byte
	valBuf   []byte
	hists    map[string]*harness.Histogram
	counts   map[string]uint64
}

func newWorker(cfg Config, id int64, cursor *atomic.Int64) *worker {
	rng := rand.New(rand.NewSource(cfg.Seed*131 + id))
	w := &worker{
		cfg:    cfg,
		rng:    rng,
		zipf:   rand.NewZipf(rng, 1.1, 1, uint64(cfg.RecordCount-1)),
		cursor: cursor,
		valBuf: make([]byte, cfg.ValueMax),
		hists:  map[string]*harness.Histogram{},
		counts: map[string]uint64{},
	}
	if cfg.ValueDist == DistZipf && cfg.ValueMax > cfg.ValueSize {
		w.sizeZipf = rand.NewZipf(rng, 1.1, 1, uint64(cfg.ValueMax-cfg.ValueSize))
	}
	for _, op := range []string{"read", "update", "insert", "scan", "rmw"} {
		w.hists[op] = harness.NewHistogram()
	}
	for i := range w.valBuf {
		w.valBuf[i] = byte('A' + (i*13)%26)
	}
	return w
}

// value draws one write's value per the configured size distribution.
func (w *worker) value() []byte {
	n := w.cfg.ValueSize
	switch w.cfg.ValueDist {
	case DistUniform:
		if w.cfg.ValueMax > n {
			n += w.rng.Intn(w.cfg.ValueMax - n + 1)
		}
	case DistZipf:
		if w.sizeZipf != nil {
			n += int(w.sizeZipf.Uint64())
		}
	}
	return w.valBuf[:n]
}

// key formats record index i in YCSB's hashed style.
func (w *worker) key(i int64) []byte {
	w.keyBuf = workload.FormatKey(w.keyBuf, i, w.cfg.KeySize)
	return w.keyBuf
}

// zipfIndex draws a record index over the current key space.
func (w *worker) zipfIndex() int64 { return int64(w.zipf.Uint64()) }

// latestIndex skews toward recently inserted records (workload D).
func (w *worker) latestIndex() int64 {
	max := w.cursor.Load()
	off := int64(w.zipf.Uint64())
	idx := max - 1 - off
	if idx < 0 {
		idx = 0
	}
	return idx
}

func (w *worker) step(s baseline.Store) error {
	switch w.cfg.Workload {
	case WorkloadA:
		if w.rng.Float64() < 0.5 {
			return w.read(s, w.zipfIndex())
		}
		return w.update(s, w.zipfIndex())
	case WorkloadB:
		if w.rng.Float64() < 0.95 {
			return w.read(s, w.zipfIndex())
		}
		return w.update(s, w.zipfIndex())
	case WorkloadC:
		return w.read(s, w.zipfIndex())
	case WorkloadD:
		if w.rng.Float64() < 0.95 {
			return w.read(s, w.latestIndex())
		}
		return w.insert(s)
	case WorkloadE:
		if w.rng.Float64() < 0.95 {
			return w.scan(s, w.zipfIndex(), 1+w.rng.Intn(100))
		}
		return w.insert(s)
	case WorkloadF:
		if w.rng.Float64() < 0.5 {
			return w.read(s, w.zipfIndex())
		}
		return w.rmw(s, w.zipfIndex())
	default:
		return fmt.Errorf("ycsb: bad workload %q", w.cfg.Workload)
	}
}

func (w *worker) measure(op string, f func() error) error {
	t0 := time.Now()
	err := f()
	w.hists[op].Record(time.Since(t0))
	w.counts[op]++
	return err
}

func (w *worker) read(s baseline.Store, idx int64) error {
	return w.measure("read", func() error {
		_, _, err := s.Get(w.key(idx))
		return err
	})
}

func (w *worker) update(s baseline.Store, idx int64) error {
	return w.measure("update", func() error {
		k := append([]byte(nil), w.key(idx)...)
		return s.Put(k, w.value())
	})
}

func (w *worker) insert(s baseline.Store) error {
	return w.measure("insert", func() error {
		idx := w.cursor.Add(1) - 1
		k := append([]byte(nil), w.key(idx)...)
		return s.Put(k, w.value())
	})
}

func (w *worker) scan(s baseline.Store, idx int64, n int) error {
	return w.measure("scan", func() error {
		_, err := s.Scan(w.key(idx), n)
		return err
	})
}

func (w *worker) rmw(s baseline.Store, idx int64) error {
	return w.measure("rmw", func() error {
		k := append([]byte(nil), w.key(idx)...)
		return s.RMW(k, func(old []byte, exists bool) []byte {
			return w.value()
		})
	})
}
