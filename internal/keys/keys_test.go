package keys

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []struct {
		key  string
		ts   uint64
		kind Kind
	}{
		{"", 0, KindDelete},
		{"a", 1, KindValue},
		{"hello world", 12345678, KindValue},
		{"\x00\xff", MaxTimestamp, KindDelete},
	}
	for _, c := range cases {
		ik := Make([]byte(c.key), c.ts, c.kind)
		k, ts, kind, ok := Decode(ik)
		if !ok {
			t.Fatalf("Decode(%x) failed", ik)
		}
		if string(k) != c.key || ts != c.ts || kind != c.kind {
			t.Errorf("round trip (%q,%d,%d) -> (%q,%d,%d)", c.key, c.ts, c.kind, k, ts, kind)
		}
	}
}

func TestDecodeTooShort(t *testing.T) {
	if _, _, _, ok := Decode([]byte("short")); ok {
		t.Error("Decode of 5-byte input should fail")
	}
}

func TestUserKeyAndAccessors(t *testing.T) {
	ik := Make([]byte("k1"), 42, KindValue)
	if string(UserKey(ik)) != "k1" {
		t.Errorf("UserKey = %q", UserKey(ik))
	}
	if Timestamp(ik) != 42 {
		t.Errorf("Timestamp = %d", Timestamp(ik))
	}
	if KindOf(ik) != KindValue {
		t.Errorf("KindOf = %d", KindOf(ik))
	}
}

func TestUserKeyPanicsOnShort(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	UserKey([]byte("x"))
}

func TestCompareOrdering(t *testing.T) {
	// user key ascending, ts descending, kind descending
	ordered := [][]byte{
		Make([]byte("a"), 9, KindValue),
		Make([]byte("a"), 5, KindValue),
		Make([]byte("a"), 5, KindDelete),
		Make([]byte("a"), 1, KindValue),
		Make([]byte("b"), 100, KindValue),
		Make([]byte("b"), 2, KindDelete),
		Make([]byte("ba"), 50, KindValue),
	}
	for i := 0; i < len(ordered); i++ {
		for j := 0; j < len(ordered); j++ {
			got := Compare(ordered[i], ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%s, %s) = %d, want %d", String(ordered[i]), String(ordered[j]), got, want)
			}
		}
	}
}

func TestSeekKeyFindsNewestVisible(t *testing.T) {
	// SeekKey(k, ts) must sort <= every version of k with timestamp <= ts
	// and > every version with timestamp > ts.
	sk := SeekKey([]byte("k"), 10)
	if Compare(sk, Make([]byte("k"), 10, KindValue)) > 0 {
		t.Error("seek key must not sort after version at ts=10")
	}
	if Compare(sk, Make([]byte("k"), 11, KindValue)) <= 0 {
		t.Error("seek key must sort after version at ts=11")
	}
}

// Property: Compare is order-isomorphic to comparing (userKey asc, ts desc).
func TestCompareQuick(t *testing.T) {
	f := func(k1, k2 []byte, t1, t2 uint64) bool {
		t1 &= MaxTimestamp
		t2 &= MaxTimestamp
		a := Make(k1, t1, KindValue)
		b := Make(k2, t2, KindValue)
		want := bytes.Compare(k1, k2)
		if want == 0 {
			switch {
			case t1 > t2:
				want = -1
			case t1 < t2:
				want = 1
			}
		}
		return Compare(a, b) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: a <= Separator(a, b) < b for internal keys with distinct user keys.
func TestSeparatorQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		k1 := randKey(rng)
		k2 := randKey(rng)
		switch bytes.Compare(k1, k2) {
		case 0:
			continue
		case 1:
			k1, k2 = k2, k1
		}
		a := Make(k1, uint64(rng.Intn(1000)+1), KindValue)
		b := Make(k2, uint64(rng.Intn(1000)+1), KindValue)
		sep := Separator(nil, a, b)
		if Compare(a, sep) > 0 {
			t.Fatalf("a > sep: a=%s sep=%s", String(a), String(sep))
		}
		if Compare(sep, b) >= 0 {
			t.Fatalf("sep >= b: sep=%s b=%s", String(sep), String(b))
		}
		if len(sep) > len(a) {
			t.Fatalf("separator longer than a: %d > %d", len(sep), len(a))
		}
	}
}

func TestSuccessor(t *testing.T) {
	a := Make([]byte("abc"), 5, KindValue)
	s := Successor(nil, a)
	if Compare(a, s) > 0 {
		t.Error("successor sorts before key")
	}
}

func randKey(rng *rand.Rand) []byte {
	n := rng.Intn(6) + 1
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + rng.Intn(4))
	}
	return b
}

func TestSortStability(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var ks [][]byte
	for i := 0; i < 500; i++ {
		ks = append(ks, Make(randKey(rng), uint64(rng.Intn(100)+1), KindValue))
	}
	sort.Slice(ks, func(i, j int) bool { return Compare(ks[i], ks[j]) < 0 })
	for i := 1; i < len(ks); i++ {
		if Compare(ks[i-1], ks[i]) > 0 {
			t.Fatalf("not sorted at %d", i)
		}
	}
}
