// Package keys defines the internal key encoding shared by the memtable,
// write-ahead log, and SSTables.
//
// An internal key is a user key extended with a 64-bit trailer packing a
// timestamp (56 bits) and a value kind (8 bits):
//
//	| user key ... | ts<<8 | kind  (8 bytes, big-endian) |
//
// Internal keys order by user key ascending and timestamp descending, so a
// seek for (k, ts) lands on the newest version of k that is not newer than
// ts. This is the ordering assumed throughout the engine; Algorithm 3 of the
// paper is adapted to it (see DESIGN.md).
package keys

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrCorruptKey reports an internal key too short to carry a trailer.
var ErrCorruptKey = errors.New("keys: corrupt internal key")

// Kind discriminates the payload of an internal key.
type Kind uint8

const (
	// KindDelete marks a deletion (the paper's ⊥ value).
	KindDelete Kind = 0
	// KindValue marks a regular key/value pair.
	KindValue Kind = 1
	// KindValuePtr marks a key whose value lives in the value log: the
	// entry's value bytes are a fixed-size vlog pointer (segment, offset,
	// length, checksum), not the user value. Everything between the write
	// path and the read path — memtable, WAL, sstables, compaction —
	// treats it exactly like KindValue; only the boundary layers
	// (core read path, vlog GC) dereference it.
	KindValuePtr Kind = 2
)

// MaxTimestamp is the largest encodable timestamp (56 bits).
const MaxTimestamp = uint64(1)<<56 - 1

// TrailerSize is the number of bytes the trailer adds to a user key.
const TrailerSize = 8

// PackTrailer combines a timestamp and kind into the 64-bit trailer.
// Timestamps above MaxTimestamp are truncated to 56 bits.
func PackTrailer(ts uint64, kind Kind) uint64 {
	return (ts&MaxTimestamp)<<8 | uint64(kind)
}

// UnpackTrailer splits a trailer into its timestamp and kind.
func UnpackTrailer(t uint64) (ts uint64, kind Kind) {
	return t >> 8, Kind(t & 0xff)
}

// Encode appends the internal encoding of (key, ts, kind) to dst.
func Encode(dst, key []byte, ts uint64, kind Kind) []byte {
	dst = append(dst, key...)
	var tr [TrailerSize]byte
	binary.BigEndian.PutUint64(tr[:], PackTrailer(ts, kind))
	return append(dst, tr[:]...)
}

// Make returns the internal encoding of (key, ts, kind) as a new slice.
func Make(key []byte, ts uint64, kind Kind) []byte {
	return Encode(make([]byte, 0, len(key)+TrailerSize), key, ts, kind)
}

// Decode splits an internal key into its parts. It returns false if ik is
// too short to contain a trailer.
func Decode(ik []byte) (key []byte, ts uint64, kind Kind, ok bool) {
	if len(ik) < TrailerSize {
		return nil, 0, 0, false
	}
	n := len(ik) - TrailerSize
	ts, kind = UnpackTrailer(binary.BigEndian.Uint64(ik[n:]))
	return ik[:n], ts, kind, true
}

// UserKey returns the user-key prefix of an internal key. It panics on
// malformed input, which indicates corruption upstream.
func UserKey(ik []byte) []byte {
	if len(ik) < TrailerSize {
		panic(fmt.Sprintf("keys: internal key too short: %d bytes", len(ik)))
	}
	return ik[:len(ik)-TrailerSize]
}

// Timestamp returns the timestamp of an internal key.
func Timestamp(ik []byte) uint64 {
	ts, _ := mustTrailer(ik)
	return ts
}

// KindOf returns the kind of an internal key.
func KindOf(ik []byte) Kind {
	_, kind := mustTrailer(ik)
	return kind
}

func mustTrailer(ik []byte) (uint64, Kind) {
	if len(ik) < TrailerSize {
		panic(fmt.Sprintf("keys: internal key too short: %d bytes", len(ik)))
	}
	return UnpackTrailer(binary.BigEndian.Uint64(ik[len(ik)-TrailerSize:]))
}

// Compare orders internal keys by user key ascending, then timestamp
// descending, then kind descending. The trailer comparison is achieved by
// comparing packed trailers in reverse, so newer versions sort first.
func Compare(a, b []byte) int {
	ak, atr := split(a)
	bk, btr := split(b)
	if c := bytes.Compare(ak, bk); c != 0 {
		return c
	}
	switch {
	case atr > btr:
		return -1
	case atr < btr:
		return 1
	}
	return 0
}

func split(ik []byte) ([]byte, uint64) {
	if len(ik) < TrailerSize {
		// Treat malformed keys as (ik, oldest) so corruption surfaces as
		// mis-ordering in tests rather than a panic during comparison.
		return ik, 0
	}
	n := len(ik) - TrailerSize
	return ik[:n], binary.BigEndian.Uint64(ik[n:])
}

// SeekKey returns the internal key that positions an iterator at the newest
// version of key visible at timestamp ts.
func SeekKey(key []byte, ts uint64) []byte {
	return Make(key, ts, Kind(0xff))
}

// AppendSeek appends the seek encoding of (key, ts) to dst, the in-place
// form of SeekKey for callers that reuse a scratch buffer.
func AppendSeek(dst, key []byte, ts uint64) []byte {
	return Encode(dst, key, ts, Kind(0xff))
}

// SeekTrailer returns the packed trailer a seek for timestamp ts carries:
// kind 0xff, which sorts before every real kind at the same timestamp.
func SeekTrailer(ts uint64) uint64 {
	return PackTrailer(ts, Kind(0xff))
}

// CompareSeek orders the internal key ik against the *virtual* internal
// key (userKey, trailer) without materializing it — the allocation-free
// equivalent of Compare(ik, AppendSeek(nil, userKey, ts)) with
// trailer = SeekTrailer(ts).
func CompareSeek(ik, userKey []byte, trailer uint64) int {
	ku, ktr := split(ik)
	if c := bytes.Compare(ku, userKey); c != 0 {
		return c
	}
	switch {
	case ktr > trailer:
		return -1
	case ktr < trailer:
		return 1
	}
	return 0
}

// Separator returns a short internal key sep such that a <= sep < b in the
// internal ordering, used to shorten index-block entries. a and b are
// internal keys with UserKey(a) < UserKey(b).
func Separator(dst, a, b []byte) []byte {
	au, bu := UserKey(a), UserKey(b)
	n := sharedPrefixLen(au, bu)
	if n < len(au) && n < len(bu) && au[n]+1 < bu[n] {
		u := make([]byte, n+1)
		copy(u, au[:n+1])
		u[n]++
		return Encode(dst, u, MaxTimestamp, Kind(0xff))
	}
	return append(dst, a...)
}

func sharedPrefixLen(a, b []byte) int {
	n := 0
	for n < len(a) && n < len(b) && a[n] == b[n] {
		n++
	}
	return n
}

// Successor returns a short internal key s >= a used as the final index
// entry of a table.
func Successor(dst, a []byte) []byte {
	return append(dst, a...)
}

// String renders an internal key for debugging.
func String(ik []byte) string {
	k, ts, kind, ok := Decode(ik)
	if !ok {
		return fmt.Sprintf("corrupt(%x)", ik)
	}
	return fmt.Sprintf("%q@%d#%d", k, ts, kind)
}
