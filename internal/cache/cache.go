// Package cache provides the sharded LRU block cache that backs SSTable
// reads. The paper's CPU-bound read experiments (§5.1) depend on the disk
// component serving hot blocks from RAM; this cache plays that role. It is
// sharded 16 ways so concurrent readers do not serialize on one mutex.
//
// A Cache value is a handle onto a shared store. View derives additional
// handles that namespace block identities, so several independent engines
// (the shards of a sharded store) can pool one fixed byte budget without
// file-number collisions, while Resize lets a memory governor grow or
// shrink that budget at runtime.
package cache

import (
	"container/list"
	"sync"
	"sync/atomic"

	"clsm/internal/obs"
)

const shards = 16

// nsShift positions a view's namespace above the file-number bits. File
// numbers are allocated sequentially per engine and stay far below 2^40
// in any realistic lifetime.
const nsShift = 40

// Key identifies a cached block by file number and block offset.
type Key struct {
	File   uint64
	Offset uint64
}

// Cache is a handle onto a fixed-capacity sharded LRU cache of byte
// blocks. Handles derived with View share the same memory pool but keep
// their own namespace and hit/miss counters.
type Cache struct {
	s  *store
	ns uint64

	// hits and misses, when wired via SetMetrics, count lookups on the
	// owning engine's observer. Striped counters keep the bump off the
	// shard mutexes' cache lines.
	hits, misses *obs.Counter
}

type store struct {
	capacityPerShard atomic.Int64
	shard            [shards]lruShard
}

type lruShard struct {
	mu    sync.Mutex
	order *list.List // front = most recent
	items map[Key]*list.Element
	used  int64
}

type entry struct {
	key   Key
	value []byte
}

// New returns a cache bounded at roughly capacity bytes total.
func New(capacity int64) *Cache {
	st := &store{}
	st.capacityPerShard.Store(perShard(capacity))
	for i := range st.shard {
		st.shard[i].order = list.New()
		st.shard[i].items = make(map[Key]*list.Element)
	}
	return &Cache{s: st}
}

func perShard(capacity int64) int64 {
	p := capacity / shards
	if p < 1 {
		p = 1
	}
	return p
}

// View returns a handle that shares this cache's memory pool but maps
// block identities into namespace ns, so independent engines can share
// one budget without their file numbers colliding. Metrics wired on the
// returned handle are independent of the parent's. ns must fit in 24
// bits.
func (c *Cache) View(ns int) *Cache {
	return &Cache{s: c.s, ns: uint64(ns) << nsShift}
}

func (c *Cache) key(k Key) Key {
	k.File |= c.ns
	return k
}

func (s *store) shardFor(k Key) *lruShard {
	h := k.File*0x9e3779b97f4a7c15 + k.Offset
	return &s.shard[h%shards]
}

// SetMetrics wires hit/miss counters (typically the owning engine's
// observer counters). Call before the handle is shared between
// goroutines.
func (c *Cache) SetMetrics(hits, misses *obs.Counter) {
	c.hits, c.misses = hits, misses
}

// Get returns the cached block and whether it was present.
func (c *Cache) Get(k Key) ([]byte, bool) {
	k = c.key(k)
	s := c.s.shardFor(k)
	s.mu.Lock()
	if el, ok := s.items[k]; ok {
		s.order.MoveToFront(el)
		v := el.Value.(*entry).value
		s.mu.Unlock()
		if c.hits != nil {
			c.hits.Inc()
		}
		return v, true
	}
	s.mu.Unlock()
	if c.misses != nil {
		c.misses.Inc()
	}
	return nil, false
}

// Put inserts a block, evicting LRU entries to stay within capacity.
// Blocks are immutable once inserted; callers must not modify value.
func (c *Cache) Put(k Key, value []byte) {
	k = c.key(k)
	s := c.s.shardFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[k]; ok {
		old := el.Value.(*entry)
		s.used += int64(len(value)) - int64(len(old.value))
		old.value = value
		s.order.MoveToFront(el)
	} else {
		el := s.order.PushFront(&entry{key: k, value: value})
		s.items[k] = el
		s.used += int64(len(value))
	}
	s.evict(c.s.capacityPerShard.Load())
}

// evict drops LRU entries until the shard fits within limit bytes,
// always keeping at least one entry. Caller holds s.mu.
func (s *lruShard) evict(limit int64) {
	for s.used > limit && s.order.Len() > 1 {
		tail := s.order.Back()
		e := tail.Value.(*entry)
		s.order.Remove(tail)
		delete(s.items, e.key)
		s.used -= int64(len(e.value))
	}
}

// Resize rebounds the pool at roughly capacity bytes total. Shrinking
// evicts LRU entries immediately; growth takes effect as blocks are
// inserted. Safe to call concurrently with readers; all handles sharing
// the pool observe the new bound.
func (c *Cache) Resize(capacity int64) {
	per := perShard(capacity)
	c.s.capacityPerShard.Store(per)
	for i := range c.s.shard {
		s := &c.s.shard[i]
		s.mu.Lock()
		s.evict(per)
		s.mu.Unlock()
	}
}

// Capacity returns the pool's current total byte bound.
func (c *Cache) Capacity() int64 {
	return c.s.capacityPerShard.Load() * shards
}

// EvictFile drops every cached block of a deleted table file (file is
// interpreted in this handle's namespace).
func (c *Cache) EvictFile(file uint64) {
	file |= c.ns
	for i := range c.s.shard {
		s := &c.s.shard[i]
		s.mu.Lock()
		for k, el := range s.items {
			if k.File == file {
				s.order.Remove(el)
				s.used -= int64(len(el.Value.(*entry).value))
				delete(s.items, k)
			}
		}
		s.mu.Unlock()
	}
}

// Len returns the number of cached blocks across the whole pool (tests,
// metrics).
func (c *Cache) Len() int {
	n := 0
	for i := range c.s.shard {
		s := &c.s.shard[i]
		s.mu.Lock()
		n += s.order.Len()
		s.mu.Unlock()
	}
	return n
}

// Used returns the cached byte volume across the whole pool.
func (c *Cache) Used() int64 {
	var n int64
	for i := range c.s.shard {
		s := &c.s.shard[i]
		s.mu.Lock()
		n += s.used
		s.mu.Unlock()
	}
	return n
}
