// Package cache provides the sharded LRU block cache that backs SSTable
// reads. The paper's CPU-bound read experiments (§5.1) depend on the disk
// component serving hot blocks from RAM; this cache plays that role. It is
// sharded 16 ways so concurrent readers do not serialize on one mutex.
package cache

import (
	"container/list"
	"sync"

	"clsm/internal/obs"
)

const shards = 16

// Key identifies a cached block by file number and block offset.
type Key struct {
	File   uint64
	Offset uint64
}

// Cache is a fixed-capacity sharded LRU cache of byte blocks.
type Cache struct {
	capacityPerShard int64
	shard            [shards]lruShard

	// hits and misses, when wired via SetMetrics, count lookups on the
	// engine's observer. Striped counters keep the bump off the shard
	// mutexes' cache lines.
	hits, misses *obs.Counter
}

type lruShard struct {
	mu    sync.Mutex
	order *list.List // front = most recent
	items map[Key]*list.Element
	used  int64
}

type entry struct {
	key   Key
	value []byte
}

// New returns a cache bounded at roughly capacity bytes total.
func New(capacity int64) *Cache {
	c := &Cache{capacityPerShard: capacity / shards}
	if c.capacityPerShard < 1 {
		c.capacityPerShard = 1
	}
	for i := range c.shard {
		c.shard[i].order = list.New()
		c.shard[i].items = make(map[Key]*list.Element)
	}
	return c
}

func (c *Cache) shardFor(k Key) *lruShard {
	h := k.File*0x9e3779b97f4a7c15 + k.Offset
	return &c.shard[h%shards]
}

// SetMetrics wires hit/miss counters (typically the owning engine's
// observer counters). Call before the cache is shared between goroutines.
func (c *Cache) SetMetrics(hits, misses *obs.Counter) {
	c.hits, c.misses = hits, misses
}

// Get returns the cached block and whether it was present.
func (c *Cache) Get(k Key) ([]byte, bool) {
	s := c.shardFor(k)
	s.mu.Lock()
	if el, ok := s.items[k]; ok {
		s.order.MoveToFront(el)
		v := el.Value.(*entry).value
		s.mu.Unlock()
		if c.hits != nil {
			c.hits.Inc()
		}
		return v, true
	}
	s.mu.Unlock()
	if c.misses != nil {
		c.misses.Inc()
	}
	return nil, false
}

// Put inserts a block, evicting LRU entries to stay within capacity.
// Blocks are immutable once inserted; callers must not modify value.
func (c *Cache) Put(k Key, value []byte) {
	s := c.shardFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[k]; ok {
		old := el.Value.(*entry)
		s.used += int64(len(value)) - int64(len(old.value))
		old.value = value
		s.order.MoveToFront(el)
	} else {
		el := s.order.PushFront(&entry{key: k, value: value})
		s.items[k] = el
		s.used += int64(len(value))
	}
	for s.used > c.capacityPerShard && s.order.Len() > 1 {
		tail := s.order.Back()
		e := tail.Value.(*entry)
		s.order.Remove(tail)
		delete(s.items, e.key)
		s.used -= int64(len(e.value))
	}
}

// EvictFile drops every cached block of a deleted table file.
func (c *Cache) EvictFile(file uint64) {
	for i := range c.shard {
		s := &c.shard[i]
		s.mu.Lock()
		for k, el := range s.items {
			if k.File == file {
				s.order.Remove(el)
				s.used -= int64(len(el.Value.(*entry).value))
				delete(s.items, k)
			}
		}
		s.mu.Unlock()
	}
}

// Len returns the number of cached blocks (tests, metrics).
func (c *Cache) Len() int {
	n := 0
	for i := range c.shard {
		s := &c.shard[i]
		s.mu.Lock()
		n += s.order.Len()
		s.mu.Unlock()
	}
	return n
}

// Used returns the cached byte volume.
func (c *Cache) Used() int64 {
	var n int64
	for i := range c.shard {
		s := &c.shard[i]
		s.mu.Lock()
		n += s.used
		s.mu.Unlock()
	}
	return n
}
