package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestGetPut(t *testing.T) {
	c := New(1 << 20)
	k := Key{File: 1, Offset: 0}
	if _, ok := c.Get(k); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(k, []byte("block"))
	v, ok := c.Get(k)
	if !ok || string(v) != "block" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
}

func TestUpdateExisting(t *testing.T) {
	c := New(1 << 20)
	k := Key{File: 1, Offset: 7}
	c.Put(k, []byte("old"))
	c.Put(k, []byte("newer"))
	v, _ := c.Get(k)
	if string(v) != "newer" {
		t.Fatalf("Get = %q", v)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestEviction(t *testing.T) {
	c := New(16 * 100) // 100 bytes per shard
	// Fill one shard far past capacity.
	var lastKeys []Key
	for i := 0; i < 50; i++ {
		k := Key{File: 0, Offset: uint64(i) * 16} // same shard when hash collides is not guaranteed; use many
		c.Put(k, make([]byte, 40))
		lastKeys = append(lastKeys, k)
	}
	if c.Used() > 16*100+40*16 {
		t.Errorf("cache exceeded capacity: used=%d", c.Used())
	}
	// Most recently inserted key must survive.
	if _, ok := c.Get(lastKeys[len(lastKeys)-1]); !ok {
		t.Error("most recent entry evicted")
	}
}

func TestLRUOrder(t *testing.T) {
	c := New(16 * 100)
	// Keys in the same shard: craft by trial.
	var same []Key
	target := c.s.shardFor(Key{File: 9, Offset: 0})
	for off := uint64(0); len(same) < 3; off++ {
		k := Key{File: 9, Offset: off}
		if c.s.shardFor(k) == target {
			same = append(same, k)
		}
	}
	c.Put(same[0], make([]byte, 40))
	c.Put(same[1], make([]byte, 40))
	c.Get(same[0])                   // touch 0 so 1 is LRU
	c.Put(same[2], make([]byte, 40)) // evicts 1
	if _, ok := c.Get(same[1]); ok {
		t.Error("LRU entry survived eviction")
	}
	if _, ok := c.Get(same[0]); !ok {
		t.Error("recently used entry evicted")
	}
}

func TestEvictFile(t *testing.T) {
	c := New(1 << 20)
	for i := uint64(0); i < 10; i++ {
		c.Put(Key{File: 1, Offset: i}, []byte("a"))
		c.Put(Key{File: 2, Offset: i}, []byte("b"))
	}
	c.EvictFile(1)
	for i := uint64(0); i < 10; i++ {
		if _, ok := c.Get(Key{File: 1, Offset: i}); ok {
			t.Fatal("file-1 block survived EvictFile")
		}
		if _, ok := c.Get(Key{File: 2, Offset: i}); !ok {
			t.Fatal("file-2 block wrongly evicted")
		}
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(1 << 16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				k := Key{File: uint64(w), Offset: uint64(i % 100)}
				if v, ok := c.Get(k); ok {
					if string(v) != fmt.Sprintf("%d-%d", w, i%100) {
						t.Errorf("cross-thread corruption: %q", v)
						return
					}
				}
				c.Put(k, []byte(fmt.Sprintf("%d-%d", w, i%100)))
			}
		}(w)
	}
	wg.Wait()
}

func TestViewNamespacing(t *testing.T) {
	pool := New(1 << 20)
	a, b := pool.View(1), pool.View(2)
	k := Key{File: 7, Offset: 0}
	a.Put(k, []byte("from-a"))
	b.Put(k, []byte("from-b"))
	if v, _ := a.Get(k); string(v) != "from-a" {
		t.Fatalf("view a sees %q", v)
	}
	if v, _ := b.Get(k); string(v) != "from-b" {
		t.Fatalf("view b sees %q", v)
	}
	// EvictFile is namespaced too: dropping file 7 in a must not touch b.
	a.EvictFile(7)
	if _, ok := a.Get(k); ok {
		t.Fatal("view-a block survived EvictFile")
	}
	if _, ok := b.Get(k); !ok {
		t.Fatal("view-b block wrongly evicted")
	}
	// Both views draw from one pool.
	if pool.Len() != 1 {
		t.Fatalf("pool Len = %d, want 1", pool.Len())
	}
}

func TestResize(t *testing.T) {
	c := New(1 << 20)
	for i := uint64(0); i < 64; i++ {
		c.Put(Key{File: 1, Offset: i}, make([]byte, 1024))
	}
	if c.Used() < 32<<10 {
		t.Fatalf("setup: used = %d", c.Used())
	}
	c.Resize(16 * 100) // shrink hard: immediate eviction
	if got := c.Used(); got > 16*100+1024*16 {
		t.Fatalf("Used after shrink = %d", got)
	}
	if got := c.Capacity(); got != 16*100 {
		t.Fatalf("Capacity = %d, want %d", got, 16*100)
	}
	// Growing again lets new inserts stick around.
	c.Resize(1 << 20)
	for i := uint64(0); i < 64; i++ {
		c.Put(Key{File: 2, Offset: i}, make([]byte, 1024))
	}
	if c.Used() < 32<<10 {
		t.Fatalf("used after regrow = %d", c.Used())
	}
}

func TestTinyCapacity(t *testing.T) {
	c := New(0) // degenerate; must still hold at least one entry per shard
	c.Put(Key{File: 1, Offset: 1}, []byte("xxxx"))
	if c.Len() < 1 {
		t.Error("tiny cache refuses all entries")
	}
}
