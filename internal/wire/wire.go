// Package wire is the cLSM network protocol: the length-prefixed binary
// frame both cmd/clsm-server and the clsmclient SDK speak, the per-opcode
// payload encodings, and the stable error-code table that carries the
// engine's error sentinels across the connection (errcode.go).
//
// Frame layout (all integers big-endian; lengths within payloads are
// unsigned varints):
//
//	length   uint32   bytes that follow (id + op + payload); <= MaxFrame
//	id       uint64   request id, echoed verbatim on the response
//	op       byte     request: opcode (OpPut..OpStats)
//	                  response: status (0 = OK, else an ErrorCode)
//	payload  ...      opcode-specific body
//
// Request ids exist for pipelining: a client may have many requests in
// flight on one connection, and the server completes them out of order
// (reads overtake group-committed writes and vice versa); the id is the
// only correlation between the two directions. Ids are chosen by the
// client and must be unique among its in-flight requests; the server
// echoes them blindly.
//
// Every decoder in this package is total: arbitrary input returns an
// error, never a panic or an oversized allocation (FuzzDecode holds this).
// See docs/NETWORK.md for the full protocol contract.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"slices"
)

// MaxFrame bounds a frame's post-length-prefix size (id + op + payload).
// Both sides reject larger announcements before allocating, so a garbage
// length prefix cannot balloon memory.
const MaxFrame = 16 << 20

// frameHeader is the fixed-size part after the length prefix.
const frameHeader = 8 + 1 // id + op

// Op is a request opcode.
type Op byte

// Request opcodes. The zero value is deliberately invalid.
const (
	OpPut      Op = 1 // key, value            -> empty
	OpGet      Op = 2 // key                   -> exists byte [, value]
	OpDelete   Op = 3 // key                   -> empty
	OpWrite    Op = 4 // entry list            -> empty (atomic batch)
	OpMultiGet Op = 5 // key list              -> value list
	OpScan     Op = 6 // start key, limit      -> key/value pair list
	OpStats    Op = 7 // empty                 -> health + obs JSON
	OpTxnWrite Op = 8 // read checks, entries  -> empty (validated commit)
	opMax         = OpTxnWrite
)

// String names the opcode for logs and errors.
func (op Op) String() string {
	switch op {
	case OpPut:
		return "put"
	case OpGet:
		return "get"
	case OpDelete:
		return "delete"
	case OpWrite:
		return "write"
	case OpMultiGet:
		return "multiget"
	case OpScan:
		return "scan"
	case OpStats:
		return "stats"
	case OpTxnWrite:
		return "txnwrite"
	}
	return fmt.Sprintf("op(%d)", byte(op))
}

// Valid reports whether op is a defined request opcode.
func (op Op) Valid() bool { return op >= OpPut && op <= opMax }

// Protocol errors. ErrFrame covers every malformed-input case; decoders
// wrap it with detail. Match with errors.Is.
var (
	ErrFrame    = errors.New("wire: malformed frame")
	ErrTooLarge = fmt.Errorf("%w: frame exceeds MaxFrame", ErrFrame)
)

// AppendFrame appends a complete frame (length prefix, id, op/status,
// payload) to dst and returns the extended slice.
func AppendFrame(dst []byte, id uint64, op byte, payload []byte) []byte {
	dst = slices.Grow(dst, 4+frameHeader+len(payload))
	dst = binary.BigEndian.AppendUint32(dst, uint32(frameHeader+len(payload)))
	dst = binary.BigEndian.AppendUint64(dst, id)
	dst = append(dst, op)
	return append(dst, payload...)
}

// ReadFrame reads one frame from r. The returned payload is freshly
// allocated and owned by the caller. A length announcement above MaxFrame
// (or below the fixed header) fails with ErrFrame before any allocation.
// io.EOF is returned untouched when the stream ends cleanly between
// frames; a stream cut mid-frame is io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader) (id uint64, op byte, payload []byte, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return 0, 0, nil, fmt.Errorf("%w (%d bytes)", ErrTooLarge, n)
	}
	if n < frameHeader {
		return 0, 0, nil, fmt.Errorf("%w: body %d bytes, need >= %d", ErrFrame, n, frameHeader)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, 0, nil, err
	}
	return binary.BigEndian.Uint64(body), body[8], body[frameHeader:], nil
}

// DecodeFrame parses one frame from the front of data, returning the rest
// for the next frame. It is ReadFrame for in-memory buffers (and the fuzz
// entry point); the payload aliases data.
func DecodeFrame(data []byte) (id uint64, op byte, payload, rest []byte, err error) {
	if len(data) < 4 {
		return 0, 0, nil, nil, fmt.Errorf("%w: short length prefix", ErrFrame)
	}
	n := binary.BigEndian.Uint32(data)
	if n > MaxFrame {
		return 0, 0, nil, nil, fmt.Errorf("%w (%d bytes)", ErrTooLarge, n)
	}
	if n < frameHeader {
		return 0, 0, nil, nil, fmt.Errorf("%w: body %d bytes, need >= %d", ErrFrame, n, frameHeader)
	}
	if uint32(len(data)-4) < n {
		return 0, 0, nil, nil, fmt.Errorf("%w: truncated body (%d of %d bytes)", ErrFrame, len(data)-4, n)
	}
	body := data[4 : 4+n]
	return binary.BigEndian.Uint64(body), body[8], body[frameHeader:], data[4+n:], nil
}

// --- payload primitives -------------------------------------------------

// AppendBytes appends a uvarint-length-prefixed byte string.
func AppendBytes(dst, b []byte) []byte {
	dst = slices.Grow(dst, binary.MaxVarintLen32+len(b))
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// ConsumeBytes splits one length-prefixed byte string off the front of
// data. The returned slice aliases data.
func ConsumeBytes(data []byte) (b, rest []byte, err error) {
	l, n := binary.Uvarint(data)
	if n <= 0 || l > uint64(len(data)-n) {
		return nil, nil, fmt.Errorf("%w: bad byte-string length", ErrFrame)
	}
	return data[n : n+int(l)], data[n+int(l):], nil
}

// consumeCount reads a uvarint element count and sanity-bounds it against
// the remaining payload (each element costs at least min bytes), so a
// hostile count cannot drive an oversized allocation.
func consumeCount(data []byte, min int) (count int, rest []byte, err error) {
	c, n := binary.Uvarint(data)
	if n <= 0 || c > uint64(len(data)-n)/uint64(min) {
		return 0, nil, fmt.Errorf("%w: implausible element count", ErrFrame)
	}
	return int(c), data[n:], nil
}

// --- request payloads ---------------------------------------------------

// Entry is one write in an OpWrite batch.
type Entry struct {
	Delete bool // tombstone instead of a value write
	Key    []byte
	Value  []byte // nil for deletes
}

// AppendPut encodes an OpPut payload.
func AppendPut(dst, key, value []byte) []byte {
	dst = slices.Grow(dst, 2*binary.MaxVarintLen32+len(key)+len(value))
	dst = AppendBytes(dst, key)
	return AppendBytes(dst, value)
}

// DecodePut parses an OpPut payload.
func DecodePut(p []byte) (key, value []byte, err error) {
	key, p, err = ConsumeBytes(p)
	if err != nil {
		return nil, nil, err
	}
	value, p, err = ConsumeBytes(p)
	if err != nil {
		return nil, nil, err
	}
	if len(p) != 0 {
		return nil, nil, fmt.Errorf("%w: %d trailing bytes", ErrFrame, len(p))
	}
	return key, value, nil
}

// AppendKey encodes the single-key payload of OpGet and OpDelete.
func AppendKey(dst, key []byte) []byte { return AppendBytes(dst, key) }

// DecodeKey parses a single-key payload.
func DecodeKey(p []byte) (key []byte, err error) {
	key, p, err = ConsumeBytes(p)
	if err != nil {
		return nil, err
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrFrame, len(p))
	}
	return key, nil
}

// AppendWrite encodes an OpWrite payload: count, then per entry a kind
// byte (0 put, 1 delete), the key, and — for puts — the value.
func AppendWrite(dst []byte, entries []Entry) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(entries)))
	for i := range entries {
		e := &entries[i]
		if e.Delete {
			dst = append(dst, 1)
			dst = AppendBytes(dst, e.Key)
		} else {
			dst = append(dst, 0)
			dst = AppendBytes(dst, e.Key)
			dst = AppendBytes(dst, e.Value)
		}
	}
	return dst
}

// DecodeWrite parses an OpWrite payload. Entries alias p.
func DecodeWrite(p []byte) ([]Entry, error) {
	count, p, err := consumeCount(p, 2) // kind byte + 1-byte length minimum
	if err != nil {
		return nil, err
	}
	entries := make([]Entry, 0, count)
	for i := 0; i < count; i++ {
		if len(p) < 1 {
			return nil, fmt.Errorf("%w: truncated entry", ErrFrame)
		}
		kind := p[0]
		if kind > 1 {
			return nil, fmt.Errorf("%w: bad entry kind %d", ErrFrame, kind)
		}
		p = p[1:]
		var e Entry
		e.Key, p, err = ConsumeBytes(p)
		if err != nil {
			return nil, err
		}
		if kind == 1 {
			e.Delete = true
		} else {
			e.Value, p, err = ConsumeBytes(p)
			if err != nil {
				return nil, err
			}
		}
		entries = append(entries, e)
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrFrame, len(p))
	}
	return entries, nil
}

// ReadExpect is one read-set assertion in an OpTxnWrite payload: the
// client read Key and observed Value (or absence when Exists is false),
// and the server must commit the entries only if that observation still
// holds. The protocol is stateless — no snapshot survives a round trip —
// so validation ships by value.
type ReadExpect struct {
	Key    []byte
	Value  []byte // nil when Exists is false
	Exists bool
}

// AppendTxnWrite encodes an OpTxnWrite payload: the read-check count, then
// per check a marker byte (0 absent, 1 present), the key, and — for
// present checks — the expected value; then the write entries in the
// OpWrite encoding.
func AppendTxnWrite(dst []byte, reads []ReadExpect, entries []Entry) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(reads)))
	for i := range reads {
		r := &reads[i]
		if r.Exists {
			dst = append(dst, 1)
			dst = AppendBytes(dst, r.Key)
			dst = AppendBytes(dst, r.Value)
		} else {
			dst = append(dst, 0)
			dst = AppendBytes(dst, r.Key)
		}
	}
	return AppendWrite(dst, entries)
}

// DecodeTxnWrite parses an OpTxnWrite payload. Reads and entries alias p.
func DecodeTxnWrite(p []byte) (reads []ReadExpect, entries []Entry, err error) {
	count, p, err := consumeCount(p, 2) // marker byte + 1-byte length minimum
	if err != nil {
		return nil, nil, err
	}
	reads = make([]ReadExpect, 0, count)
	for i := 0; i < count; i++ {
		if len(p) < 1 {
			return nil, nil, fmt.Errorf("%w: truncated read check", ErrFrame)
		}
		marker := p[0]
		if marker > 1 {
			return nil, nil, fmt.Errorf("%w: bad read-check marker %d", ErrFrame, marker)
		}
		p = p[1:]
		var r ReadExpect
		r.Key, p, err = ConsumeBytes(p)
		if err != nil {
			return nil, nil, err
		}
		if marker == 1 {
			r.Exists = true
			r.Value, p, err = ConsumeBytes(p)
			if err != nil {
				return nil, nil, err
			}
		}
		reads = append(reads, r)
	}
	entries, err = DecodeWrite(p)
	if err != nil {
		return nil, nil, err
	}
	return reads, entries, nil
}

// AppendKeys encodes an OpMultiGet payload.
func AppendKeys(dst []byte, keys [][]byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(keys)))
	for _, k := range keys {
		dst = AppendBytes(dst, k)
	}
	return dst
}

// DecodeKeys parses an OpMultiGet payload. Keys alias p.
func DecodeKeys(p []byte) ([][]byte, error) {
	count, p, err := consumeCount(p, 1)
	if err != nil {
		return nil, err
	}
	keys := make([][]byte, 0, count)
	for i := 0; i < count; i++ {
		var k []byte
		k, p, err = ConsumeBytes(p)
		if err != nil {
			return nil, err
		}
		keys = append(keys, k)
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrFrame, len(p))
	}
	return keys, nil
}

// AppendScan encodes an OpScan payload: the inclusive start key and the
// maximum number of pairs to return.
func AppendScan(dst, start []byte, limit int) []byte {
	dst = AppendBytes(dst, start)
	return binary.AppendUvarint(dst, uint64(limit))
}

// DecodeScan parses an OpScan payload.
func DecodeScan(p []byte) (start []byte, limit int, err error) {
	start, p, err = ConsumeBytes(p)
	if err != nil {
		return nil, 0, err
	}
	l, n := binary.Uvarint(p)
	if n <= 0 || len(p) != n {
		return nil, 0, fmt.Errorf("%w: bad scan limit", ErrFrame)
	}
	const maxScanLimit = 1 << 20
	if l > maxScanLimit {
		return nil, 0, fmt.Errorf("%w: scan limit %d exceeds %d", ErrFrame, l, maxScanLimit)
	}
	return start, int(l), nil
}

// --- response payloads --------------------------------------------------

// AppendGetReply encodes an OpGet response: an exists byte, then the value
// when present.
func AppendGetReply(dst, value []byte, ok bool) []byte {
	if !ok {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	return AppendBytes(dst, value)
}

// DecodeGetReply parses an OpGet response.
func DecodeGetReply(p []byte) (value []byte, ok bool, err error) {
	if len(p) < 1 || p[0] > 1 {
		return nil, false, fmt.Errorf("%w: bad get reply", ErrFrame)
	}
	if p[0] == 0 {
		if len(p) != 1 {
			return nil, false, fmt.Errorf("%w: %d trailing bytes", ErrFrame, len(p)-1)
		}
		return nil, false, nil
	}
	value, err = DecodeKey(p[1:])
	return value, err == nil, err
}

// Value is one OpMultiGet result: the value bytes and whether the key was
// present. It mirrors the engine's MultiGet result shape.
type Value struct {
	Data   []byte
	Exists bool
}

// AppendValues encodes an OpMultiGet response.
func AppendValues(dst []byte, vals []Value) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(vals)))
	for i := range vals {
		if !vals[i].Exists {
			dst = append(dst, 0)
			continue
		}
		dst = append(dst, 1)
		dst = AppendBytes(dst, vals[i].Data)
	}
	return dst
}

// DecodeValues parses an OpMultiGet response. Values alias p.
func DecodeValues(p []byte) ([]Value, error) {
	count, p, err := consumeCount(p, 1)
	if err != nil {
		return nil, err
	}
	vals := make([]Value, 0, count)
	for i := 0; i < count; i++ {
		if len(p) < 1 || p[0] > 1 {
			return nil, fmt.Errorf("%w: bad value marker", ErrFrame)
		}
		exists := p[0] == 1
		p = p[1:]
		var v Value
		if exists {
			v.Data, p, err = ConsumeBytes(p)
			if err != nil {
				return nil, err
			}
			v.Exists = true
		}
		vals = append(vals, v)
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrFrame, len(p))
	}
	return vals, nil
}

// KV is one OpScan result pair.
type KV struct {
	Key   []byte
	Value []byte
}

// AppendPairs encodes an OpScan response.
func AppendPairs(dst []byte, pairs []KV) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(pairs)))
	for i := range pairs {
		dst = AppendBytes(dst, pairs[i].Key)
		dst = AppendBytes(dst, pairs[i].Value)
	}
	return dst
}

// DecodePairs parses an OpScan response. Pairs alias p.
func DecodePairs(p []byte) ([]KV, error) {
	count, p, err := consumeCount(p, 2)
	if err != nil {
		return nil, err
	}
	pairs := make([]KV, 0, count)
	for i := 0; i < count; i++ {
		var kv KV
		kv.Key, p, err = ConsumeBytes(p)
		if err != nil {
			return nil, err
		}
		kv.Value, p, err = ConsumeBytes(p)
		if err != nil {
			return nil, err
		}
		pairs = append(pairs, kv)
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrFrame, len(p))
	}
	return pairs, nil
}

// Status is the OpStats response: the store's health position and the
// observability snapshot, wired straight from DB.Health and the expvar/obs
// export (Observer.Snapshot serialized as JSON).
type Status struct {
	Health    uint8  // health.State numbering: 0 healthy .. 3 failed
	HealthMsg string // cause of a non-healthy state, "" otherwise
	Obs       []byte // JSON obs.Snapshot
}

// AppendStatus encodes an OpStats response.
func AppendStatus(dst []byte, s Status) []byte {
	dst = append(dst, s.Health)
	dst = AppendBytes(dst, []byte(s.HealthMsg))
	return AppendBytes(dst, s.Obs)
}

// DecodeStatus parses an OpStats response.
func DecodeStatus(p []byte) (Status, error) {
	var s Status
	if len(p) < 1 {
		return s, fmt.Errorf("%w: empty status", ErrFrame)
	}
	s.Health = p[0]
	msg, p, err := ConsumeBytes(p[1:])
	if err != nil {
		return s, err
	}
	s.HealthMsg = string(msg)
	s.Obs, p, err = ConsumeBytes(p)
	if err != nil {
		return s, err
	}
	if len(p) != 0 {
		return s, fmt.Errorf("%w: %d trailing bytes", ErrFrame, len(p))
	}
	return s, nil
}
