package wire

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"

	"clsm/internal/core"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf []byte
	buf = AppendFrame(buf, 7, byte(OpPut), AppendPut(nil, []byte("k"), []byte("v")))
	buf = AppendFrame(buf, 8, byte(OpGet), AppendKey(nil, []byte("k")))
	buf = AppendFrame(buf, 9, byte(OpStats), nil)

	// Stream form.
	r := bytes.NewReader(buf)
	for want := uint64(7); want <= 9; want++ {
		id, _, _, err := ReadFrame(r)
		if err != nil {
			t.Fatal(err)
		}
		if id != want {
			t.Fatalf("id = %d, want %d", id, want)
		}
	}
	if _, _, _, err := ReadFrame(r); err != io.EOF {
		t.Fatalf("end of stream = %v, want io.EOF", err)
	}

	// In-memory form.
	rest := buf
	var ids []uint64
	for len(rest) > 0 {
		var id uint64
		var err error
		id, _, _, rest, err = DecodeFrame(rest)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if len(ids) != 3 || ids[0] != 7 || ids[2] != 9 {
		t.Fatalf("DecodeFrame ids = %v", ids)
	}
}

func TestFrameMalformed(t *testing.T) {
	// Truncated everywhere: every prefix of a valid frame must error (or
	// hit clean EOF at zero bytes), never panic.
	full := AppendFrame(nil, 1, byte(OpPut), AppendPut(nil, []byte("key"), []byte("value")))
	for cut := 0; cut < len(full); cut++ {
		if _, _, _, err := ReadFrame(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("ReadFrame accepted a %d-byte prefix of a %d-byte frame", cut, len(full))
		}
		if _, _, _, _, err := DecodeFrame(full[:cut]); err == nil {
			t.Fatalf("DecodeFrame accepted a %d-byte prefix", cut)
		}
	}

	// Oversized announcement: rejected before allocation.
	huge := []byte{0xff, 0xff, 0xff, 0xff}
	if _, _, _, err := ReadFrame(bytes.NewReader(huge)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized frame = %v, want ErrTooLarge", err)
	}
	if _, _, _, _, err := DecodeFrame(huge); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized frame = %v, want ErrTooLarge", err)
	}

	// Body shorter than the fixed header.
	short := []byte{0, 0, 0, 2, 1, 2}
	if _, _, _, err := ReadFrame(bytes.NewReader(short)); !errors.Is(err, ErrFrame) {
		t.Fatalf("short body = %v, want ErrFrame", err)
	}
}

func TestPayloadRoundTrips(t *testing.T) {
	k, v := []byte("key"), []byte("value")

	if gotK, gotV, err := DecodePut(AppendPut(nil, k, v)); err != nil ||
		!bytes.Equal(gotK, k) || !bytes.Equal(gotV, v) {
		t.Fatalf("put: %q %q %v", gotK, gotV, err)
	}
	if gotK, err := DecodeKey(AppendKey(nil, k)); err != nil || !bytes.Equal(gotK, k) {
		t.Fatalf("key: %q %v", gotK, err)
	}

	entries := []Entry{
		{Key: []byte("a"), Value: []byte("1")},
		{Delete: true, Key: []byte("b")},
		{Key: []byte("c"), Value: nil}, // empty value put
	}
	got, err := DecodeWrite(AppendWrite(nil, entries))
	if err != nil || len(got) != 3 {
		t.Fatalf("write: %v %v", got, err)
	}
	if !got[1].Delete || got[1].Value != nil || string(got[0].Value) != "1" {
		t.Fatalf("write entries = %+v", got)
	}

	keys := [][]byte{[]byte("x"), nil, []byte("z")}
	gotKeys, err := DecodeKeys(AppendKeys(nil, keys))
	if err != nil || len(gotKeys) != 3 || string(gotKeys[2]) != "z" {
		t.Fatalf("keys: %v %v", gotKeys, err)
	}

	start, limit, err := DecodeScan(AppendScan(nil, []byte("s"), 42))
	if err != nil || string(start) != "s" || limit != 42 {
		t.Fatalf("scan: %q %d %v", start, limit, err)
	}

	if gv, ok, err := DecodeGetReply(AppendGetReply(nil, v, true)); err != nil || !ok || !bytes.Equal(gv, v) {
		t.Fatalf("get reply hit: %q %v %v", gv, ok, err)
	}
	if _, ok, err := DecodeGetReply(AppendGetReply(nil, nil, false)); err != nil || ok {
		t.Fatalf("get reply miss: %v %v", ok, err)
	}

	vals := []Value{{Data: []byte("1"), Exists: true}, {}, {Data: nil, Exists: true}}
	gotVals, err := DecodeValues(AppendValues(nil, vals))
	if err != nil || len(gotVals) != 3 || gotVals[1].Exists || !gotVals[2].Exists {
		t.Fatalf("values: %+v %v", gotVals, err)
	}

	pairs := []KV{{Key: k, Value: v}, {Key: []byte("k2"), Value: nil}}
	gotPairs, err := DecodePairs(AppendPairs(nil, pairs))
	if err != nil || len(gotPairs) != 2 || !bytes.Equal(gotPairs[0].Value, v) {
		t.Fatalf("pairs: %+v %v", gotPairs, err)
	}

	st := Status{Health: 2, HealthMsg: "corrupt block", Obs: []byte(`{"x":1}`)}
	gotSt, err := DecodeStatus(AppendStatus(nil, st))
	if err != nil || gotSt.Health != 2 || gotSt.HealthMsg != st.HealthMsg ||
		!bytes.Equal(gotSt.Obs, st.Obs) {
		t.Fatalf("status: %+v %v", gotSt, err)
	}
}

func TestPayloadDecodersRejectGarbage(t *testing.T) {
	garbage := [][]byte{
		nil,
		{0xff},
		{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}, // huge uvarint
		bytes.Repeat([]byte{0x80}, 16),                               // non-terminating uvarint
		{2, 0},                                                       // count 2, one byte of body
		{1, 9, 0, 0},                                                 // kind 9 / length overrun shapes
	}
	for _, g := range garbage {
		if _, _, err := DecodePut(g); err == nil && g != nil {
			t.Errorf("DecodePut(%x) accepted garbage", g)
		}
		if _, err := DecodeWrite(g); err == nil {
			t.Errorf("DecodeWrite(%x) accepted garbage", g)
		}
		if _, err := DecodeKeys(g); err == nil {
			t.Errorf("DecodeKeys(%x) accepted garbage", g)
		}
		if _, err := DecodeValues(g); err == nil {
			t.Errorf("DecodeValues(%x) accepted garbage", g)
		}
		if _, err := DecodePairs(g); err == nil {
			t.Errorf("DecodePairs(%x) accepted garbage", g)
		}
		if _, err := DecodeStatus(g); err == nil {
			t.Errorf("DecodeStatus(%x) accepted garbage", g)
		}
	}
	// Trailing bytes after a well-formed body are a framing bug: reject.
	if _, err := DecodeKey(append(AppendKey(nil, []byte("k")), 0)); err == nil {
		t.Error("DecodeKey accepted trailing bytes")
	}
}

// TestErrorCodeExhaustive pins the code ↔ sentinel table: every public
// engine sentinel maps to a distinct stable code, every code rehydrates to
// an error that errors.Is-matches its sentinel (wrapped or bare), and the
// table covers the full code range — a new sentinel or code added without
// updating the mapping fails here.
func TestErrorCodeExhaustive(t *testing.T) {
	// The complete list of public sentinels a remote operation can
	// surface. Keep in sync with errors.go at the repo root.
	publicSentinels := []error{
		core.ErrClosed,
		core.ErrReadOnly,
		core.ErrDegraded,
		core.ErrInvalidOptions,
		core.ErrSnapshotExpired,
		core.ErrTxnConflict,
	}
	if len(sentinels) != len(publicSentinels) {
		t.Fatalf("wire maps %d sentinels, engine exposes %d — update the table", len(sentinels), len(publicSentinels))
	}
	seen := map[ErrorCode]bool{}
	for _, s := range publicSentinels {
		c := Code(s)
		if c == CodeOK || c == CodeInternal {
			t.Errorf("sentinel %v has no dedicated code (got %s)", s, c)
		}
		if seen[c] {
			t.Errorf("code %s assigned to two sentinels", c)
		}
		seen[c] = true
		if c.Sentinel() != s {
			t.Errorf("code %s rehydrates to %v, want %v", c, c.Sentinel(), s)
		}
		// Wrapped errors (the engine always wraps with context) map too.
		if got := Code(fmt.Errorf("snapshot read: %w", s)); got != c {
			t.Errorf("wrapped %v → %s, want %s", s, got, c)
		}
		// The client-side rehydration preserves the errors.Is identity
		// and the remote message.
		re := RemoteError(c, "disk exploded")
		if !errors.Is(re, s) {
			t.Errorf("errors.Is(RemoteError(%s), %v) = false", c, s)
		}
		if re.Error() == "" {
			t.Errorf("RemoteError(%s) has empty message", c)
		}
	}
	// Full range: every code in [0, codeMax] is either OK, a mapped
	// sentinel, or one of the two deliberately sentinel-less codes.
	for c := ErrorCode(0); c <= codeMax; c++ {
		_, mapped := sentinels[c]
		switch {
		case c == CodeOK || c == CodeInternal || c == CodeBadRequest:
			if mapped {
				t.Errorf("code %s must not carry a sentinel", c)
			}
		case !mapped:
			t.Errorf("code %s has no sentinel and is not a known sentinel-less code", c)
		}
	}
	// Unmapped errors fall back to CodeInternal, and sentinel-less codes
	// rehydrate without an identity but keep the message.
	if Code(errors.New("some io error")) != CodeInternal {
		t.Error("unmapped error did not map to CodeInternal")
	}
	re := RemoteError(CodeInternal, "open /x: no space")
	if errors.Is(re, core.ErrClosed) || re.Unwrap() != nil {
		t.Error("CodeInternal must not carry a sentinel identity")
	}
	if Code(nil) != CodeOK {
		t.Error("Code(nil) != CodeOK")
	}
	if !CodeDegraded.Transient() || CodeReadOnly.Transient() || CodeClosed.Transient() {
		t.Error("Transient classification wrong")
	}
	// A conflict is not transient: blindly resending the identical TxnWrite
	// re-fails; the caller must re-read first.
	if CodeTxnConflict.Transient() {
		t.Error("CodeTxnConflict must not be transient")
	}
}

// TestTxnWriteCodec pins the OpTxnWrite payload encoding.
func TestTxnWriteCodec(t *testing.T) {
	reads := []ReadExpect{
		{Key: []byte("a"), Value: []byte("va"), Exists: true},
		{Key: []byte("gone"), Exists: false},
		{Key: []byte("empty"), Value: []byte{}, Exists: true},
	}
	entries := []Entry{
		{Key: []byte("a"), Value: []byte("new")},
		{Delete: true, Key: []byte("b")},
	}
	p := AppendTxnWrite(nil, reads, entries)
	gotReads, gotEntries, err := DecodeTxnWrite(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotReads) != len(reads) || len(gotEntries) != len(entries) {
		t.Fatalf("decoded %d reads, %d entries", len(gotReads), len(gotEntries))
	}
	for i := range reads {
		if gotReads[i].Exists != reads[i].Exists ||
			!bytes.Equal(gotReads[i].Key, reads[i].Key) ||
			!bytes.Equal(gotReads[i].Value, reads[i].Value) {
			t.Fatalf("read %d: %+v != %+v", i, gotReads[i], reads[i])
		}
	}
	for i := range entries {
		if gotEntries[i].Delete != entries[i].Delete ||
			!bytes.Equal(gotEntries[i].Key, entries[i].Key) ||
			!bytes.Equal(gotEntries[i].Value, entries[i].Value) {
			t.Fatalf("entry %d: %+v != %+v", i, gotEntries[i], entries[i])
		}
	}

	// Empty checks and empty batch are legal (a pure existence probe).
	if r, e, err := DecodeTxnWrite(AppendTxnWrite(nil, nil, nil)); err != nil || len(r) != 0 || len(e) != 0 {
		t.Fatalf("empty TxnWrite: %v %v %v", r, e, err)
	}

	// Malformed payloads are rejected, never panic.
	for _, bad := range [][]byte{
		nil,
		{0x80},            // non-terminating count
		{1},               // count without body
		{1, 2, 1, 'k'},    // bad marker
		{1, 1, 1, 'k'},    // present check missing value
		append(p, 0),      // trailing byte
		p[:len(p)-1],      // truncated batch section
		{1, 0, 1, 'k'},    // checks ok, missing write section
		{0, 1, 0, 1, 'k'}, // write entry missing value
		{0, 1, 2, 1, 'k'}, // bad entry kind
	} {
		if _, _, err := DecodeTxnWrite(bad); err == nil {
			t.Errorf("DecodeTxnWrite(%x) accepted malformed payload", bad)
		}
	}
}
