package wire

import (
	"bytes"
	"testing"
)

// FuzzDecodeFrame drives the full decode surface — frame splitting plus
// every payload decoder — over arbitrary bytes. Decoders are total: any
// input must produce (result, nil) or (zero, error); a panic or a hang on
// hostile input (huge announced lengths, non-terminating uvarints,
// truncated bodies) is the bug this harness exists to catch.
func FuzzDecodeFrame(f *testing.F) {
	// Well-formed frames for every opcode, so the fuzzer starts from
	// inputs that reach deep into each payload decoder before mutating.
	f.Add(AppendFrame(nil, 1, byte(OpPut), AppendPut(nil, []byte("key"), []byte("value"))))
	f.Add(AppendFrame(nil, 2, byte(OpGet), AppendKey(nil, []byte("key"))))
	f.Add(AppendFrame(nil, 3, byte(OpDelete), AppendKey(nil, []byte("key"))))
	f.Add(AppendFrame(nil, 4, byte(OpWrite), AppendWrite(nil, []Entry{
		{Key: []byte("a"), Value: []byte("1")},
		{Delete: true, Key: []byte("b")},
	})))
	f.Add(AppendFrame(nil, 5, byte(OpMultiGet), AppendKeys(nil, [][]byte{[]byte("x"), []byte("y")})))
	f.Add(AppendFrame(nil, 6, byte(OpScan), AppendScan(nil, []byte("start"), 100)))
	f.Add(AppendFrame(nil, 7, byte(OpStats), nil))
	f.Add(AppendFrame(nil, 12, byte(OpTxnWrite), AppendTxnWrite(nil,
		[]ReadExpect{
			{Key: []byte("seen"), Value: []byte("v0"), Exists: true},
			{Key: []byte("absent")},
		},
		[]Entry{
			{Key: []byte("a"), Value: []byte("1")},
			{Delete: true, Key: []byte("b")},
		})))
	// Responses flow through the same decoders on the client side.
	f.Add(AppendFrame(nil, 8, byte(CodeOK), AppendGetReply(nil, []byte("v"), true)))
	f.Add(AppendFrame(nil, 9, byte(CodeOK), AppendValues(nil, []Value{{Data: []byte("v"), Exists: true}, {}})))
	f.Add(AppendFrame(nil, 10, byte(CodeOK), AppendPairs(nil, []KV{{Key: []byte("k"), Value: []byte("v")}})))
	f.Add(AppendFrame(nil, 11, byte(CodeOK), AppendStatus(nil, Status{Health: 1, HealthMsg: "m", Obs: []byte("{}")})))
	// Hostile shapes.
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})                                   // oversized announcement
	f.Add([]byte{0, 0, 0, 1, 0})                                            // body < header
	f.Add(bytes.Repeat([]byte{0x80}, 32))                                   // non-terminating uvarint
	f.Add([]byte{0, 0, 0, 12, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0xff, 0xff, 0x7f}) // huge inner count

	f.Fuzz(func(t *testing.T, data []byte) {
		// Split frames until the input is exhausted or rejected.
		rest := data
		for len(rest) > 0 {
			_, op, payload, next, err := DecodeFrame(rest)
			if err != nil {
				// ReadFrame must agree with DecodeFrame on rejection
				// (modulo EOF flavor).
				if _, _, _, rerr := ReadFrame(bytes.NewReader(rest)); rerr == nil {
					t.Fatalf("DecodeFrame rejected (%v) what ReadFrame accepted", err)
				}
				break
			}
			if len(next) >= len(rest) {
				t.Fatal("DecodeFrame made no progress")
			}
			// Feed the payload to every decoder: none may panic.
			DecodePut(payload)
			DecodeKey(payload)
			DecodeWrite(payload)
			DecodeTxnWrite(payload)
			DecodeKeys(payload)
			DecodeScan(payload)
			DecodeGetReply(payload)
			DecodeValues(payload)
			DecodePairs(payload)
			DecodeStatus(payload)
			_ = op
			rest = next
		}
	})
}

// FuzzWriteRoundTrip: any entry list that decodes must re-encode and decode
// to the same entries (canonical encoding).
func FuzzWriteRoundTrip(f *testing.F) {
	f.Add(AppendWrite(nil, []Entry{{Key: []byte("a"), Value: []byte("1")}, {Delete: true, Key: []byte("b")}}))
	f.Add([]byte{0})
	f.Fuzz(func(t *testing.T, data []byte) {
		entries, err := DecodeWrite(data)
		if err != nil {
			return
		}
		again, err := DecodeWrite(AppendWrite(nil, entries))
		if err != nil {
			t.Fatalf("re-decode of re-encode failed: %v", err)
		}
		if len(again) != len(entries) {
			t.Fatalf("round trip changed entry count: %d != %d", len(again), len(entries))
		}
		for i := range entries {
			if entries[i].Delete != again[i].Delete ||
				!bytes.Equal(entries[i].Key, again[i].Key) ||
				!bytes.Equal(entries[i].Value, again[i].Value) {
				t.Fatalf("entry %d changed: %+v != %+v", i, entries[i], again[i])
			}
		}
	})
}

// FuzzTxnWriteRoundTrip: any OpTxnWrite payload that decodes must re-encode
// and decode to the same read checks and entries (canonical encoding).
func FuzzTxnWriteRoundTrip(f *testing.F) {
	f.Add(AppendTxnWrite(nil,
		[]ReadExpect{{Key: []byte("k"), Value: []byte("v"), Exists: true}, {Key: []byte("m")}},
		[]Entry{{Key: []byte("a"), Value: []byte("1")}, {Delete: true, Key: []byte("b")}}))
	f.Add(AppendTxnWrite(nil, nil, nil))
	f.Add([]byte{0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		reads, entries, err := DecodeTxnWrite(data)
		if err != nil {
			return
		}
		r2, e2, err := DecodeTxnWrite(AppendTxnWrite(nil, reads, entries))
		if err != nil {
			t.Fatalf("re-decode of re-encode failed: %v", err)
		}
		if len(r2) != len(reads) || len(e2) != len(entries) {
			t.Fatalf("round trip changed counts: %d/%d != %d/%d", len(r2), len(e2), len(reads), len(entries))
		}
		for i := range reads {
			if reads[i].Exists != r2[i].Exists ||
				!bytes.Equal(reads[i].Key, r2[i].Key) ||
				!bytes.Equal(reads[i].Value, r2[i].Value) {
				t.Fatalf("read %d changed: %+v != %+v", i, reads[i], r2[i])
			}
		}
		for i := range entries {
			if entries[i].Delete != e2[i].Delete ||
				!bytes.Equal(entries[i].Key, e2[i].Key) ||
				!bytes.Equal(entries[i].Value, e2[i].Value) {
				t.Fatalf("entry %d changed: %+v != %+v", i, entries[i], e2[i])
			}
		}
	})
}
