// Error codes: the stable numeric identities of the engine's error
// sentinels on the wire. The server maps an engine error to a code with
// Code; the client rehydrates the code into an error that wraps the same
// sentinel, so errors.Is(err, clsm.ErrReadOnly) (and the rest) holds on
// the far side of the connection exactly as it does in-process.
//
// The numeric values are part of the protocol — never renumber an
// existing code; append new ones. TestErrorCodeExhaustive pins the table.
package wire

import (
	"errors"
	"fmt"

	"clsm/internal/core"
)

// ErrorCode is a wire-stable error identity, carried in the status byte of
// an error response (the response payload is the remote error's message).
type ErrorCode uint8

// Error codes. CodeOK is the success status and never an error;
// CodeInternal is every engine/server error without a public sentinel
// (I/O failures, corruption details) — the message still crosses the
// wire, only the errors.Is identity is lost.
const (
	CodeOK ErrorCode = 0

	CodeInternal        ErrorCode = 1 // no sentinel; message only
	CodeClosed          ErrorCode = 2 // core.ErrClosed
	CodeReadOnly        ErrorCode = 3 // core.ErrReadOnly
	CodeDegraded        ErrorCode = 4 // core.ErrDegraded
	CodeInvalidOptions  ErrorCode = 5 // core.ErrInvalidOptions
	CodeSnapshotExpired ErrorCode = 6 // core.ErrSnapshotExpired
	CodeBadRequest      ErrorCode = 7 // protocol violation; no sentinel
	CodeTxnConflict     ErrorCode = 8 // core.ErrTxnConflict
	codeMax                       = CodeTxnConflict
)

// String names the code for logs.
func (c ErrorCode) String() string {
	switch c {
	case CodeOK:
		return "ok"
	case CodeInternal:
		return "internal"
	case CodeClosed:
		return "closed"
	case CodeReadOnly:
		return "read_only"
	case CodeDegraded:
		return "degraded"
	case CodeInvalidOptions:
		return "invalid_options"
	case CodeSnapshotExpired:
		return "snapshot_expired"
	case CodeBadRequest:
		return "bad_request"
	case CodeTxnConflict:
		return "txn_conflict"
	}
	return fmt.Sprintf("code(%d)", uint8(c))
}

// sentinels is the single source of truth of the code ↔ sentinel pairing.
// Every public engine sentinel a remote operation can surface must appear
// here; TestErrorCodeExhaustive fails when the engine grows one that
// doesn't.
var sentinels = map[ErrorCode]error{
	CodeClosed:          core.ErrClosed,
	CodeReadOnly:        core.ErrReadOnly,
	CodeDegraded:        core.ErrDegraded,
	CodeInvalidOptions:  core.ErrInvalidOptions,
	CodeSnapshotExpired: core.ErrSnapshotExpired,
	CodeTxnConflict:     core.ErrTxnConflict,
}

// Code maps an engine error onto its wire code: the code of the first
// sentinel the error wraps, or CodeInternal when it wraps none. A nil
// error is CodeOK.
func Code(err error) ErrorCode {
	if err == nil {
		return CodeOK
	}
	for c := ErrorCode(1); c <= codeMax; c++ {
		if s, ok := sentinels[c]; ok && errors.Is(err, s) {
			return c
		}
	}
	return CodeInternal
}

// Sentinel returns the engine sentinel behind a code, or nil for codes
// without one (CodeOK, CodeInternal, CodeBadRequest, unknown future
// codes).
func (c ErrorCode) Sentinel() error { return sentinels[c] }

// Transient reports whether an operation failing with this code is worth
// retrying: the condition is expected to clear on its own (a degraded
// store auto-resumes when its background retry succeeds). Read-only and
// closed states need operator action; invalid input never heals. A txn
// conflict is deliberately NOT transient — resending the identical request
// re-fails by construction; the caller must re-read and rebuild it.
func (c ErrorCode) Transient() bool { return c == CodeDegraded }

// Error is a remote engine error rehydrated client-side: it carries the
// wire code and the server's message, and unwraps to the code's sentinel
// so errors.Is works across the connection.
type Error struct {
	Code ErrorCode
	Msg  string // the remote error's Error() text
}

// RemoteError builds the client-side error for an error response frame.
func RemoteError(code ErrorCode, msg string) *Error {
	return &Error{Code: code, Msg: msg}
}

// Error formats the remote failure with its wire code.
func (e *Error) Error() string {
	if e.Msg == "" {
		return fmt.Sprintf("remote error (%s)", e.Code)
	}
	return fmt.Sprintf("remote: %s", e.Msg)
}

// Unwrap exposes the sentinel identity (nil for sentinel-less codes, which
// errors.Is treats as "wraps nothing").
func (e *Error) Unwrap() error { return e.Code.Sentinel() }
