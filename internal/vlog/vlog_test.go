package vlog

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"clsm/internal/storage"
	"clsm/internal/version"
)

// openTestLog builds a Log over a fresh in-memory store with a small
// segment size so tests rotate cheaply.
func openTestLog(t *testing.T, fs storage.FS, segSize int64) (*Log, *version.Set) {
	t.Helper()
	set, err := version.Open(fs, nil, version.Options{})
	if err != nil {
		t.Fatalf("version.Open: %v", err)
	}
	l, err := Open(Config{FS: fs, Set: set, SegmentSize: segSize, SyncWrites: true})
	if err != nil {
		t.Fatalf("vlog.Open: %v", err)
	}
	return l, set
}

func TestPointerRoundTrip(t *testing.T) {
	p := Pointer{Seg: 7, Off: 1 << 40, Len: 4096, CRC: 0xdeadbeef}
	b := AppendPointer(nil, p)
	if len(b) != PointerSize {
		t.Fatalf("encoded pointer is %d bytes, want %d", len(b), PointerSize)
	}
	got, ok := DecodePointer(b)
	if !ok || got != p {
		t.Fatalf("DecodePointer = %+v, %v; want %+v", got, ok, p)
	}
	if _, ok := DecodePointer(b[:PointerSize-1]); ok {
		t.Fatal("DecodePointer accepted a truncated encoding")
	}
}

func TestAppendGetRoundTrip(t *testing.T) {
	fs := storage.NewMemFS()
	l, _ := openTestLog(t, fs, 1<<20)
	defer l.Close()

	type rec struct {
		key, val []byte
		ts       uint64
		p        Pointer
	}
	var recs []rec
	for i := 0; i < 20; i++ {
		r := rec{
			key: []byte(fmt.Sprintf("key-%03d", i)),
			val: bytes.Repeat([]byte{byte('a' + i)}, 100+i*37),
			ts:  uint64(i + 1),
		}
		p, err := l.Append(r.key, r.ts, r.val)
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		r.p = p
		recs = append(recs, r)
	}
	if err := l.WaitSync(); err != nil {
		t.Fatalf("WaitSync: %v", err)
	}
	for i, r := range recs {
		got, err := l.Get(r.p, nil)
		if err != nil {
			t.Fatalf("Get %d: %v", i, err)
		}
		if !bytes.Equal(got, r.val) {
			t.Fatalf("Get %d: value mismatch (%d vs %d bytes)", i, len(got), len(r.val))
		}
	}
	// Get must append to dst, not replace it.
	prefix := []byte("prefix:")
	got, err := l.Get(recs[0].p, prefix)
	if err != nil {
		t.Fatalf("Get with dst: %v", err)
	}
	if !bytes.Equal(got[:7], prefix) || !bytes.Equal(got[7:], recs[0].val) {
		t.Fatal("Get did not append to dst")
	}
}

func TestSegmentRotationAndSeal(t *testing.T) {
	fs := storage.NewMemFS()
	l, set := openTestLog(t, fs, 512) // tiny: a few appends per segment
	defer l.Close()

	val := bytes.Repeat([]byte{'v'}, 200)
	segs := map[uint64]bool{}
	for i := 0; i < 12; i++ {
		p, err := l.Append([]byte("k"), uint64(i+1), val)
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		segs[p.Seg] = true
	}
	if len(segs) < 3 {
		t.Fatalf("12 appends of 200B at 512B segments used %d segments, want >= 3", len(segs))
	}
	metas := set.VlogSegments()
	if len(metas) != len(segs) {
		t.Fatalf("manifest records %d segments, log used %d", len(metas), len(segs))
	}
	sealed, active := 0, 0
	for _, m := range metas {
		if !segs[m.Num] {
			t.Fatalf("manifest segment %d never used by the log", m.Num)
		}
		if m.Sealed {
			sealed++
			if m.Size == 0 {
				t.Fatalf("sealed segment %d has size 0", m.Num)
			}
		} else {
			active++
		}
	}
	if active != 1 {
		t.Fatalf("%d active (unsealed) segments, want exactly 1", active)
	}
	if sealed != len(metas)-1 {
		t.Fatalf("%d sealed segments of %d", sealed, len(metas))
	}
	if got := l.ActiveSegment(); !segs[got] {
		t.Fatalf("ActiveSegment() = %d, not a segment the log wrote to", got)
	}
}

func TestScanSegment(t *testing.T) {
	fs := storage.NewMemFS()
	l, _ := openTestLog(t, fs, 1<<20)
	defer l.Close()

	var want []Pointer
	for i := 0; i < 5; i++ {
		p, err := l.Append([]byte(fmt.Sprintf("k%d", i)), uint64(i+1), bytes.Repeat([]byte{'x'}, 64))
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		want = append(want, p)
	}
	if err := l.WaitSync(); err != nil {
		t.Fatal(err)
	}
	var got []Pointer
	err := l.ScanSegment(l.ActiveSegment(), func(key []byte, ts uint64, p Pointer, value []byte) error {
		if string(key) != fmt.Sprintf("k%d", ts-1) {
			t.Errorf("entry ts=%d has key %q", ts, key)
		}
		if len(value) != 64 {
			t.Errorf("entry ts=%d has %d value bytes", ts, len(value))
		}
		got = append(got, p)
		return nil
	})
	if err != nil {
		t.Fatalf("ScanSegment: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("scan yielded %d entries, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("entry %d: scan pointer %+v != append pointer %+v", i, got[i], want[i])
		}
	}
}

func TestScanSegmentStopsAtTornTail(t *testing.T) {
	fs := storage.NewMemFS()
	l, _ := openTestLog(t, fs, 1<<20)

	for i := 0; i < 3; i++ {
		if _, err := l.Append([]byte("k"), uint64(i+1), bytes.Repeat([]byte{'x'}, 64)); err != nil {
			t.Fatal(err)
		}
	}
	seg := l.ActiveSegment()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the file mid-entry: the scan must stop cleanly before it.
	name := version.VlogFileName(seg)
	data, err := fs.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(name, data[:len(data)-20]); err != nil {
		t.Fatal(err)
	}

	l2, _ := openTestLog(t, fs, 1<<20)
	defer l2.Close()
	n := 0
	if err := l2.ScanSegment(seg, func([]byte, uint64, Pointer, []byte) error {
		n++
		return nil
	}); err != nil {
		t.Fatalf("ScanSegment on torn file: %v", err)
	}
	if n != 2 {
		t.Fatalf("scan of torn segment yielded %d entries, want 2 (third is torn)", n)
	}
}

func TestGetDetectsCorruption(t *testing.T) {
	fs := storage.NewMemFS()
	l, _ := openTestLog(t, fs, 1<<20)

	p, err := l.Append([]byte("k"), 1, bytes.Repeat([]byte{'x'}, 128))
	if err != nil {
		t.Fatal(err)
	}
	seg := l.ActiveSegment()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	name := version.VlogFileName(seg)
	data, _ := fs.ReadFile(name)
	data[int(p.Off)+headerSize+10] ^= 0x40 // flip a payload bit
	if err := fs.WriteFile(name, data); err != nil {
		t.Fatal(err)
	}

	l2, _ := openTestLog(t, fs, 1<<20)
	defer l2.Close()
	if _, err := l2.Get(p, nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get on flipped payload = %v, want ErrCorrupt", err)
	}
	// A pointer whose CRC does not match the (intact) entry is also corrupt.
	data[int(p.Off)+headerSize+10] ^= 0x40 // restore
	if err := fs.WriteFile(name, data); err != nil {
		t.Fatal(err)
	}
	bad := p
	bad.CRC ^= 1
	if _, err := l2.Get(bad, nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get with wrong pointer CRC = %v, want ErrCorrupt", err)
	}
}

func TestRetireAndReap(t *testing.T) {
	fs := storage.NewMemFS()
	l, _ := openTestLog(t, fs, 1<<20)
	defer l.Close()

	p, err := l.Append([]byte("k"), 1, bytes.Repeat([]byte{'x'}, 64))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.WaitSync(); err != nil {
		t.Fatal(err)
	}
	seg := l.ActiveSegment()

	l.Retire(seg, 100, 64)
	if got := l.RetiredPending(); got != 1 {
		t.Fatalf("RetiredPending = %d, want 1", got)
	}
	// A snapshot older than retireTS pins the file.
	if n := l.ReapRetired(50); n != 0 {
		t.Fatalf("ReapRetired(50) removed %d segments under a pinning snapshot", n)
	}
	if _, err := l.Get(p, nil); err != nil {
		t.Fatalf("Get while pinned: %v", err)
	}
	// Snapshot released (or newer than retirement): the file goes.
	if n := l.ReapRetired(0); n != 1 {
		t.Fatalf("ReapRetired(0) removed %d segments, want 1", n)
	}
	if _, err := l.Get(p, nil); !errors.Is(err, ErrRetired) {
		t.Fatalf("Get after reap = %v, want ErrRetired", err)
	}
	if err := l.ScanSegment(seg, func([]byte, uint64, Pointer, []byte) error { return nil }); !errors.Is(err, ErrRetired) {
		t.Fatalf("ScanSegment after reap = %v, want ErrRetired", err)
	}
}

// TestReopenSealsRecoveredActiveSegment covers the recovery contract: the
// previous incarnation's active (unsealed) segment is sealed at its
// on-disk size and never appended to again.
func TestReopenSealsRecoveredActiveSegment(t *testing.T) {
	fs := storage.NewMemFS()
	l, _ := openTestLog(t, fs, 1<<20)
	p, err := l.Append([]byte("k"), 1, bytes.Repeat([]byte{'x'}, 64))
	if err != nil {
		t.Fatal(err)
	}
	old := l.ActiveSegment()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, set2 := openTestLog(t, fs, 1<<20)
	defer l2.Close()
	for _, m := range set2.VlogSegments() {
		if m.Num == old && (!m.Sealed || m.Size == 0) {
			t.Fatalf("recovered segment %d not sealed with its size: %+v", old, m)
		}
	}
	// Old entries stay readable; new appends go to a fresh segment.
	if _, err := l2.Get(p, nil); err != nil {
		t.Fatalf("Get of recovered entry: %v", err)
	}
	p2, err := l2.Append([]byte("k"), 2, []byte("fresh"))
	if err != nil {
		t.Fatal(err)
	}
	if p2.Seg == old {
		t.Fatalf("append after reopen landed in recovered segment %d", old)
	}
}
