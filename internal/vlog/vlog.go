// Package vlog implements a WiscKey-style segmented value log: an
// append-only sequence of segment files holding large values, with the
// LSM storing fixed-size pointers in their place. Separating values from
// keys cuts compaction write amplification to the pointer size — values
// are written once and never ride a merge.
//
// Segment lifecycle is manifest-recorded (see internal/version): a
// segment is added to the manifest before its first value lands, sealed
// with its final size at rotation, accumulates garbage-byte counters as
// compactions drop pointers into it, and is deleted when GC retires it —
// so crash recovery reconciles orphan segments exactly like orphan
// sstables.
//
// Durability ordering is the package's central invariant: in sync mode a
// value's segment bytes are group-synced (WaitSync) before the WAL record
// carrying its pointer is appended, so a durable pointer always implies a
// durable value. The converse — durable value bytes with no WAL record —
// is harmless garbage reclaimed by GC.
package vlog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"

	"clsm/internal/obs"
	"clsm/internal/storage"
	"clsm/internal/version"
)

// ErrCorrupt reports a value-log entry whose framing or checksum does not
// match its pointer — corruption, a torn tail, or a stale pointer.
var ErrCorrupt = errors.New("vlog: corrupt value-log entry")

// ErrRetired reports a dereference into a segment that no longer exists:
// GC retired it after relinking its live values. The newest version of
// the key carries the relocated pointer, so callers retry the lookup.
var ErrRetired = errors.New("vlog: segment retired")

// castagnoli is the CRC32-C table shared by entry checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// PointerSize is the encoded size of a Pointer: the fixed "value" the LSM
// stores for a KindValuePtr entry.
const PointerSize = 24

// headerSize frames each segment entry: crc32c + payload length.
const headerSize = 8

// Pointer locates one value inside the log.
type Pointer struct {
	Seg uint64 // segment file number
	Off uint64 // entry offset inside the segment
	Len uint32 // total entry length (header + payload)
	CRC uint32 // entry payload checksum, cross-checked at dereference
}

// AppendPointer appends the 24-byte encoding of p to dst.
func AppendPointer(dst []byte, p Pointer) []byte {
	var b [PointerSize]byte
	binary.BigEndian.PutUint64(b[0:8], p.Seg)
	binary.BigEndian.PutUint64(b[8:16], p.Off)
	binary.BigEndian.PutUint32(b[16:20], p.Len)
	binary.BigEndian.PutUint32(b[20:24], p.CRC)
	return append(dst, b[:]...)
}

// DecodePointer parses an encoded pointer.
func DecodePointer(b []byte) (Pointer, bool) {
	if len(b) != PointerSize {
		return Pointer{}, false
	}
	return Pointer{
		Seg: binary.BigEndian.Uint64(b[0:8]),
		Off: binary.BigEndian.Uint64(b[8:16]),
		Len: binary.BigEndian.Uint32(b[16:20]),
		CRC: binary.BigEndian.Uint32(b[20:24]),
	}, true
}

// Config configures a Log.
type Config struct {
	FS storage.FS
	// Set is the manifest authority: segment numbers come from its
	// allocator and lifecycle transitions are logged through it.
	Set *version.Set
	// SegmentSize caps segment files; appends past it rotate.
	SegmentSize int64
	// SyncWrites selects the group-sync discipline (WaitSync).
	SyncWrites bool
	// Observer receives vlog counters; may be nil.
	Observer *obs.Observer
}

// Log is one store's value log. Append/WaitSync/Get/ScanSegment are safe
// for concurrent use.
type Log struct {
	fs   storage.FS
	set  *version.Set
	obs  *obs.Observer
	size int64
	sync bool

	mu      sync.Mutex // append + rotation critical section
	actNum  uint64     // 0 = no active segment yet
	actFile storage.File
	actOff  int64
	// actPub mirrors actNum for lock-free readers: GC candidate selection
	// consults ActiveSegment while holding the version-set mutex, which a
	// rotating appender needs with l.mu held — taking l.mu there would
	// deadlock (planner: set mutex → l.mu; appender: l.mu → set mutex).
	actPub atomic.Uint64
	buf    []byte // entry scratch, reused under mu
	werr   error  // sticky append error

	pending atomic.Pointer[syncWaiter]
	wake    chan struct{}
	closing chan struct{}
	drained chan struct{}

	readMu  sync.Mutex
	readers map[uint64]*segReader

	retMu   sync.Mutex
	retired map[uint64]retiredSeg
}

type syncWaiter struct {
	next *syncWaiter
	err  chan error
}

type segReader struct {
	r    storage.RandomReader
	refs int
	dead bool
}

type retiredSeg struct {
	retireTS uint64 // snapshots older than this may still read the segment
	size     uint64
}

// Open builds the Log over the segment set recovered from the manifest.
// Recovered unsealed segments (the previous incarnation's active segment)
// are sealed at their on-disk size — the log never appends to a recovered
// segment, so a possibly-torn tail is never built upon.
func Open(cfg Config) (*Log, error) {
	l := &Log{
		fs:      cfg.FS,
		set:     cfg.Set,
		obs:     cfg.Observer,
		size:    cfg.SegmentSize,
		sync:    cfg.SyncWrites,
		wake:    make(chan struct{}, 1),
		closing: make(chan struct{}),
		drained: make(chan struct{}),
		readers: map[uint64]*segReader{},
		retired: map[uint64]retiredSeg{},
	}
	var seal version.Edit
	dirty := false
	for _, m := range cfg.Set.VlogSegments() {
		if m.Sealed {
			continue
		}
		var size uint64
		if r, err := cfg.FS.Open(version.VlogFileName(m.Num)); err == nil {
			size = uint64(r.Size())
			r.Close()
		}
		seal.SealVlogSegment(m.Num, size)
		dirty = true
	}
	if dirty {
		if err := cfg.Set.LogAndApply(&seal); err != nil {
			return nil, err
		}
	}
	go l.syncLoop()
	return l, nil
}

// ActiveSegment returns the current append segment's number (0 if no
// append has happened yet). Lock-free; safe to call from code already
// holding the version-set mutex.
func (l *Log) ActiveSegment() uint64 { return l.actPub.Load() }

// Append writes one (key, ts, value) entry to the active segment and
// returns its pointer. The entry is buffered in the OS (readable
// immediately, durable only after WaitSync or rotation); in sync mode the
// caller must WaitSync before logging the pointer to the WAL.
func (l *Log) Append(key []byte, ts uint64, value []byte) (Pointer, error) {
	l.mu.Lock()
	if l.werr != nil {
		err := l.werr
		l.mu.Unlock()
		return Pointer{}, err
	}
	if err := l.ensureActiveLocked(); err != nil {
		l.mu.Unlock()
		return Pointer{}, err
	}
	// payload: klen uvarint | ts uvarint | key | value
	b := l.buf[:0]
	b = append(b, 0, 0, 0, 0, 0, 0, 0, 0) // header placeholder
	b = binary.AppendUvarint(b, uint64(len(key)))
	b = binary.AppendUvarint(b, ts)
	b = append(b, key...)
	b = append(b, value...)
	payload := b[headerSize:]
	crc := crc32.Checksum(payload, castagnoli)
	binary.LittleEndian.PutUint32(b[0:4], crc)
	binary.LittleEndian.PutUint32(b[4:8], uint32(len(payload)))
	l.buf = b

	off := l.actOff
	if _, err := l.actFile.Write(b); err != nil {
		l.werr = err
		l.mu.Unlock()
		return Pointer{}, err
	}
	l.actOff += int64(len(b))
	p := Pointer{Seg: l.actNum, Off: uint64(off), Len: uint32(len(b)), CRC: crc}
	l.mu.Unlock()

	if l.obs != nil {
		l.obs.VlogBytesWritten.Add(uint64(len(b)))
	}
	return p, nil
}

// ensureActiveLocked rotates when there is no active segment or the
// active one is full. Caller holds mu.
func (l *Log) ensureActiveLocked() error {
	if l.actFile != nil && l.actOff < l.size {
		return nil
	}
	return l.rotateLocked()
}

// rotateLocked opens a fresh segment, recording it in the manifest before
// any value can land in it (so a durable pointer never references an
// unrecorded segment) and sealing the previous segment — synced first, so
// the seal record never outlives its bytes.
func (l *Log) rotateLocked() error {
	num := l.set.NewFileNum()
	name := version.VlogFileName(num)
	f, err := l.fs.Create(name)
	if err != nil {
		return err
	}
	var e version.Edit
	e.AddVlogSegment(num)
	if l.actFile != nil {
		if err := l.actFile.Sync(); err != nil {
			f.Close()
			l.fs.Remove(name)
			l.werr = err
			return err
		}
		e.SealVlogSegment(l.actNum, uint64(l.actOff))
	}
	if err := l.set.LogAndApply(&e); err != nil {
		f.Close()
		l.fs.Remove(name)
		return err
	}
	if l.actFile != nil {
		l.actFile.Close()
	}
	l.actNum, l.actFile, l.actOff = num, f, 0
	l.actPub.Store(num)
	return nil
}

// WaitSync blocks until every previously appended entry is durable. Waits
// are group-committed: one device sync completes every waiter enqueued
// since the last, mirroring the WAL group-commit discipline.
func (l *Log) WaitSync() error {
	w := &syncWaiter{err: make(chan error, 1)}
	for {
		old := l.pending.Load()
		w.next = old
		if l.pending.CompareAndSwap(old, w) {
			break
		}
	}
	select {
	case l.wake <- struct{}{}:
	default:
	}
	return <-w.err
}

func (l *Log) syncLoop() {
	defer close(l.drained)
	for {
		select {
		case <-l.closing:
			l.drainSync()
			return
		case <-l.wake:
			l.drainSync()
		}
	}
}

// drainSync completes one sync group. Syncing the current active file
// covers every waiter: a waiter's bytes are either in this file or in a
// predecessor that rotation already synced.
func (l *Log) drainSync() {
	head := l.pending.Swap(nil)
	if head == nil {
		return
	}
	l.mu.Lock()
	err := l.werr
	if err == nil && l.actFile != nil {
		if err = l.actFile.Sync(); err != nil {
			l.werr = err
		}
	}
	l.mu.Unlock()
	for w := head; w != nil; w = w.next {
		w.err <- err
	}
}

// Get dereferences p, verifying framing and checksum, and returns the
// value appended to dst. ErrRetired means the segment is gone (GC) and
// the caller should re-read the key; ErrCorrupt means the pointer does
// not match the bytes on disk.
func (l *Log) Get(p Pointer, dst []byte) ([]byte, error) {
	if p.Len < headerSize {
		return nil, fmt.Errorf("%w: implausible entry length %d", ErrCorrupt, p.Len)
	}
	sr, err := l.acquire(p.Seg)
	if err != nil {
		return nil, err
	}
	defer l.release(p.Seg)
	buf := entryBufs.Get().(*[]byte)
	defer entryBufs.Put(buf)
	if cap(*buf) < int(p.Len) {
		*buf = make([]byte, p.Len)
	}
	b := (*buf)[:p.Len]
	if _, err := sr.r.ReadAt(b, int64(p.Off)); err != nil {
		return nil, fmt.Errorf("%w: read seg %d off %d: %v", ErrCorrupt, p.Seg, p.Off, err)
	}
	_, _, value, err := decodeEntry(b, p.CRC)
	if err != nil {
		return nil, err
	}
	return append(dst, value...), nil
}

var entryBufs = sync.Pool{New: func() any { b := make([]byte, 0, 8<<10); return &b }}

// decodeEntry validates one framed entry (optionally against a pointer's
// checksum; pass wantCRC 0 to skip) and splits out its fields.
func decodeEntry(b []byte, wantCRC uint32) (key []byte, ts uint64, value []byte, err error) {
	if len(b) < headerSize {
		return nil, 0, nil, ErrCorrupt
	}
	crc := binary.LittleEndian.Uint32(b[0:4])
	plen := binary.LittleEndian.Uint32(b[4:8])
	if int(plen) != len(b)-headerSize {
		return nil, 0, nil, fmt.Errorf("%w: payload length %d != %d", ErrCorrupt, plen, len(b)-headerSize)
	}
	payload := b[headerSize:]
	if wantCRC != 0 && crc != wantCRC {
		return nil, 0, nil, fmt.Errorf("%w: pointer crc mismatch", ErrCorrupt)
	}
	if crc32.Checksum(payload, castagnoli) != crc {
		return nil, 0, nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	klen, n := binary.Uvarint(payload)
	if n <= 0 {
		return nil, 0, nil, ErrCorrupt
	}
	payload = payload[n:]
	ts, n = binary.Uvarint(payload)
	if n <= 0 {
		return nil, 0, nil, ErrCorrupt
	}
	payload = payload[n:]
	if klen > uint64(len(payload)) {
		return nil, 0, nil, ErrCorrupt
	}
	return payload[:klen], ts, payload[klen:], nil
}

// acquire returns a refcounted reader for segment num, opening and
// caching it on first use.
func (l *Log) acquire(num uint64) (*segReader, error) {
	l.readMu.Lock()
	defer l.readMu.Unlock()
	if sr, ok := l.readers[num]; ok && !sr.dead {
		sr.refs++
		return sr, nil
	}
	r, err := l.fs.Open(version.VlogFileName(num))
	if err != nil {
		if errors.Is(err, storage.ErrNotExist) {
			return nil, ErrRetired
		}
		return nil, err
	}
	sr := &segReader{r: r, refs: 1}
	l.readers[num] = sr
	return sr, nil
}

func (l *Log) release(num uint64) {
	l.readMu.Lock()
	sr, ok := l.readers[num]
	if ok {
		if sr.refs--; sr.dead && sr.refs == 0 {
			delete(l.readers, num)
			defer sr.r.Close()
		}
	}
	l.readMu.Unlock()
}

// dropReader retires a cached reader; the close is deferred past
// in-flight dereferences.
func (l *Log) dropReader(num uint64) {
	l.readMu.Lock()
	sr, ok := l.readers[num]
	if ok {
		sr.dead = true
		if sr.refs == 0 {
			delete(l.readers, num)
			defer sr.r.Close()
		}
	}
	l.readMu.Unlock()
}

// ScanSegment walks segment num's entries in file order, calling fn with
// each entry's key, timestamp, pointer, and value. The walk stops cleanly
// at the first torn or corrupt entry: bytes past it are unreachable by
// any acked pointer (sync ordering), so GC treats them as garbage.
func (l *Log) ScanSegment(num uint64, fn func(key []byte, ts uint64, ptr Pointer, value []byte) error) error {
	r, err := l.fs.Open(version.VlogFileName(num))
	if err != nil {
		if errors.Is(err, storage.ErrNotExist) {
			return ErrRetired
		}
		return err
	}
	defer r.Close()
	size := r.Size()
	var hdr [headerSize]byte
	var buf []byte
	for off := int64(0); off+headerSize <= size; {
		if _, err := r.ReadAt(hdr[:], off); err != nil {
			return nil // torn tail
		}
		plen := binary.LittleEndian.Uint32(hdr[4:8])
		total := int64(headerSize) + int64(plen)
		if off+total > size {
			return nil // torn tail
		}
		if int64(cap(buf)) < total {
			buf = make([]byte, total)
		}
		b := buf[:total]
		if _, err := r.ReadAt(b, off); err != nil {
			return nil
		}
		key, ts, value, err := decodeEntry(b, 0)
		if err != nil {
			return nil // corrupt entry: stop, the tail is unreachable
		}
		p := Pointer{Seg: num, Off: uint64(off), Len: uint32(total), CRC: binary.LittleEndian.Uint32(hdr[0:4])}
		if err := fn(key, ts, p, value); err != nil {
			return err
		}
		off += total
	}
	return nil
}

// Retire registers a segment whose manifest retirement is durable for
// deferred physical removal: snapshots installed before retireTS may
// still resolve old pointers into it, so the file is removed by
// ReapRetired once no such snapshot remains.
func (l *Log) Retire(num, retireTS, size uint64) {
	l.retMu.Lock()
	l.retired[num] = retiredSeg{retireTS: retireTS, size: size}
	l.retMu.Unlock()
}

// ReapRetired removes retired segments no live snapshot can reference:
// those whose retireTS is at or below the oldest installed snapshot
// (minSnapshot 0 = no snapshots). Returns the number of segments removed.
func (l *Log) ReapRetired(minSnapshot uint64) int {
	l.retMu.Lock()
	var doomed []uint64
	var bytes uint64
	for num, rs := range l.retired {
		if minSnapshot == 0 || minSnapshot >= rs.retireTS {
			doomed = append(doomed, num)
			bytes += rs.size
			delete(l.retired, num)
		}
	}
	l.retMu.Unlock()
	for _, num := range doomed {
		l.dropReader(num)
		l.set.RemoveVlogFile(num)
	}
	if l.obs != nil && bytes > 0 {
		l.obs.VlogBytesReclaimed.Add(bytes)
	}
	return len(doomed)
}

// RetiredPending reports how many retired segments still await removal.
func (l *Log) RetiredPending() int {
	l.retMu.Lock()
	defer l.retMu.Unlock()
	return len(l.retired)
}

// Close seals nothing (the next Open re-seals the active segment at its
// recovered size) but syncs and closes the active file and every cached
// reader. Appends racing Close are the caller's bug, as with the WAL.
func (l *Log) Close() error {
	close(l.closing)
	<-l.drained
	l.mu.Lock()
	var err error
	if l.actFile != nil {
		if serr := l.actFile.Sync(); serr != nil && err == nil {
			err = serr
		}
		if cerr := l.actFile.Close(); cerr != nil && err == nil {
			err = cerr
		}
		l.actFile = nil
	}
	if l.werr != nil && err == nil {
		err = l.werr
	}
	l.mu.Unlock()
	l.readMu.Lock()
	for num, sr := range l.readers {
		sr.r.Close()
		delete(l.readers, num)
	}
	l.readMu.Unlock()
	return err
}
