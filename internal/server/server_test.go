package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"clsm"
	"clsm/clsmclient"
	"clsm/internal/batch"
	"clsm/internal/core"
	"clsm/internal/faultfs"
	"clsm/internal/obs"
	"clsm/internal/oracle"
	"clsm/internal/shard"
	"clsm/internal/storage"
	"clsm/internal/wire"
)

// coreEngine adapts a bare *core.DB to Engine for the tests (the same
// two-line bridge cmd/clsm-server uses for *clsm.DB).
type coreEngine struct{ *core.DB }

func (e coreEngine) NewIterator(opts ...core.IterOptions) (Iterator, error) {
	it, err := e.DB.NewIterator(opts...)
	if err != nil {
		return nil, err
	}
	return it, nil
}

// startServer serves eng on an ephemeral port and returns its address
// plus a shutdown func.
func startServer(t *testing.T, eng Engine, cfg Config) (addr string, shutdown func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := New(eng, cfg)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	return ln.Addr().String(), func() {
		if err := srv.Close(); err != nil {
			t.Errorf("server close: %v", err)
		}
		if err := <-serveErr; err != nil {
			t.Errorf("serve returned: %v", err)
		}
	}
}

// TestServerPipelinedClientsOracle is the concurrency acceptance test:
// eight clients pipeline mixed Put/Delete/Write/Get/MultiGet traffic into
// one server (run it with -race); each goroutine owns a key shard, so an
// oracle model is exact, and the final state must match the model key by
// key.
func TestServerPipelinedClientsOracle(t *testing.T) {
	before := runtime.NumGoroutine()

	db, err := core.Open(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	addr, shutdown := startServer(t, coreEngine{db}, Config{})

	const (
		goroutines = 8
		opsPerG    = 300
	)
	model := oracle.NewModel()
	ctx := context.Background()

	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := clsmclient.Dial(addr, clsmclient.WithMaxInflight(64))
			if err != nil {
				errCh <- err
				return
			}
			defer c.Close()
			key := func(i int) string { return fmt.Sprintf("g%d-k%04d", g, i%50) }
			for i := 0; i < opsPerG; i++ {
				k := key(i)
				switch i % 5 {
				case 0, 1, 2: // put
					v := []byte(fmt.Sprintf("v%d-%d", g, i))
					p := model.Begin(0, oracle.Op{Key: k, Value: v})
					if err := c.Put(ctx, []byte(k), v); err != nil {
						errCh <- fmt.Errorf("put: %w", err)
						return
					}
					p.Ack(1)
				case 3: // atomic batch across two shard keys
					var b clsmclient.Batch
					v1 := []byte(fmt.Sprintf("b%d-%d", g, i))
					b.Put([]byte(k), v1)
					b.Delete([]byte(key(i + 1)))
					p := model.Begin(0,
						oracle.Op{Key: k, Value: v1},
						oracle.Op{Key: key(i + 1), Tombstone: true})
					if err := c.Write(ctx, &b); err != nil {
						errCh <- fmt.Errorf("write: %w", err)
						return
					}
					p.Ack(1)
				case 4: // read own shard back
					want, wantOK := model.Get(k)
					got, ok, err := c.Get(ctx, []byte(k))
					if err != nil {
						errCh <- fmt.Errorf("get: %w", err)
						return
					}
					if ok != wantOK || (ok && string(got) != string(want)) {
						errCh <- fmt.Errorf("get %q = %q,%v want %q,%v", k, got, ok, want, wantOK)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Final state: every model key, via one remote MultiGet.
	check, err := clsmclient.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	keys := model.Keys()
	bkeys := make([][]byte, len(keys))
	for i, k := range keys {
		bkeys[i] = []byte(k)
	}
	vals, err := check.MultiGet(ctx, bkeys)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		want, wantOK := model.Get(k)
		if vals[i].Exists != wantOK || (wantOK && string(vals[i].Data) != string(want)) {
			t.Errorf("final %q = %q,%v want %q,%v", k, vals[i].Data, vals[i].Exists, want, wantOK)
		}
	}

	// Scan must agree with the model on a shard prefix and come back
	// ordered.
	kvs, err := check.Scan(ctx, []byte("g3-"), 1000)
	if err != nil {
		t.Fatal(err)
	}
	last := ""
	for _, kv := range kvs {
		if !strings.HasPrefix(string(kv.Key), "g3-") {
			break
		}
		if string(kv.Key) <= last {
			t.Fatalf("scan out of order: %q after %q", kv.Key, last)
		}
		last = string(kv.Key)
		want, wantOK := model.Get(string(kv.Key))
		if !wantOK || string(kv.Value) != string(want) {
			t.Errorf("scan %q = %q want %q (ok=%v)", kv.Key, kv.Value, want, wantOK)
		}
	}

	// The write coalescer must have actually merged concurrent writes:
	// with 8 pipelining clients, mean ops per engine commit > 1.
	snap := db.Observer().Snapshot()
	if snap.ServerWriteBatch.Count == 0 {
		t.Fatal("no coalesced write batches recorded")
	}
	check.Close()
	shutdown()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	assertNoLeakedGoroutines(t, before)
}

// assertNoLeakedGoroutines waits (bounded) for the goroutine count to
// return to its pre-test level — the stdlib-only leak check the selftest
// gate also uses.
func assertNoLeakedGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// errEngine scripts every engine call to fail with a configured error —
// the harness for proving sentinel identity survives the network.
type errEngine struct {
	err error
	o   *obs.Observer
}

func (e *errEngine) PutCtx(ctx context.Context, key, value []byte) error { return e.err }
func (e *errEngine) DeleteCtx(ctx context.Context, key []byte) error     { return e.err }
func (e *errEngine) WriteCtx(ctx context.Context, b *batch.Batch) error  { return e.err }
func (e *errEngine) TxnWriteCtx(ctx context.Context, checks []core.ReadCheck, b *batch.Batch) error {
	return e.err
}
func (e *errEngine) GetCtx(ctx context.Context, key []byte) ([]byte, bool, error) {
	return nil, false, e.err
}
func (e *errEngine) MultiGetCtx(ctx context.Context, keys [][]byte) ([]core.Value, error) {
	return nil, e.err
}
func (e *errEngine) NewIterator(opts ...core.IterOptions) (Iterator, error) {
	return nil, e.err
}
func (e *errEngine) Health() core.HealthStatus { return core.HealthStatus{} }
func (e *errEngine) Observer() *obs.Observer   { return e.o }

// TestSentinelsAcrossWire is the api_redesign acceptance criterion:
// errors.Is against every public sentinel must hold on the client side of
// the connection, with the server's message preserved.
func TestSentinelsAcrossWire(t *testing.T) {
	ctx := context.Background()
	for _, sentinel := range []error{
		core.ErrReadOnly,
		core.ErrDegraded,
		core.ErrClosed,
		core.ErrInvalidOptions,
		core.ErrSnapshotExpired,
		core.ErrTxnConflict,
	} {
		eng := &errEngine{err: fmt.Errorf("flush table 7: %w", sentinel), o: obs.New()}
		addr, shutdown := startServer(t, eng, Config{})
		c, err := clsmclient.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}

		if err := c.Put(ctx, []byte("k"), []byte("v")); !errors.Is(err, sentinel) {
			t.Errorf("Put over wire: errors.Is(%v, %v) = false", err, sentinel)
		}
		_, _, err = c.Get(ctx, []byte("k"))
		if !errors.Is(err, sentinel) {
			t.Errorf("Get over wire: errors.Is(%v, %v) = false", err, sentinel)
		}
		var b clsmclient.Batch
		b.Put([]byte("k"), []byte("v"))
		if err := c.Write(ctx, &b); !errors.Is(err, sentinel) {
			t.Errorf("Write over wire: errors.Is(%v, %v) = false", err, sentinel)
		}
		_, err = c.Scan(ctx, nil, 10)
		if !errors.Is(err, sentinel) {
			t.Errorf("Scan over wire: errors.Is(%v, %v) = false", err, sentinel)
		}
		// The server-side message crosses too.
		if err := c.Delete(ctx, []byte("k")); err == nil ||
			!strings.Contains(err.Error(), "flush table 7") {
			t.Errorf("remote message lost: %v", err)
		}

		c.Close()
		shutdown()
	}

	// An error without a public sentinel arrives as a plain remote error:
	// message intact, no false sentinel identity.
	eng := &errEngine{err: errors.New("open 000042.sst: no space left"), o: obs.New()}
	addr, shutdown := startServer(t, eng, Config{})
	defer shutdown()
	c, err := clsmclient.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Put(ctx, []byte("k"), []byte("v"))
	if err == nil || !strings.Contains(err.Error(), "no space left") {
		t.Fatalf("internal error message lost: %v", err)
	}
	var re *wire.Error
	if !errors.As(err, &re) || re.Code != wire.CodeInternal {
		t.Fatalf("internal error code = %v", err)
	}
	if errors.Is(err, core.ErrReadOnly) || errors.Is(err, core.ErrDegraded) {
		t.Fatal("internal error gained a sentinel identity")
	}
}

// TestClientRetryDegraded drives the full fault path end to end: flushes
// fail on injected faults until the store degrades and its write budget
// fills, so a plain client sees ErrDegraded across the wire — and a
// client with WithRetry rides the degraded window out and succeeds once
// the store's own background retry drains it.
func TestClientRetryDegraded(t *testing.T) {
	ffs := faultfs.Wrap(storage.NewMemFS())
	db, err := core.Open(core.Options{
		FS:                   ffs,
		MemtableSize:         4 << 10,
		RetryBaseDelay:       20 * time.Millisecond,
		RetryMaxDelay:        50 * time.Millisecond,
		DegradedStallTimeout: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	addr, shutdown := startServer(t, coreEngine{db}, Config{})
	defer shutdown()

	// Twelve flush attempts die at their first table write; the store's
	// background retry (20–50ms backoff) spends them in roughly half a
	// second, then the thirteenth attempt succeeds and the store resumes.
	rules := make([]faultfs.Rule, 12)
	for i := range rules {
		rules[i] = faultfs.Rule{Op: faultfs.OpWrite, Pattern: "*.sst", N: 1, Kind: faultfs.FaultErr}
	}
	ffs.Arm(rules...)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// A client with no retry policy must surface ErrDegraded — with its
	// errors.Is identity — once the in-memory budget is exhausted.
	plain, err := clsmclient.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	pad := strings.Repeat("x", 256)
	var degradedErr error
	for i := 0; i < 5000 && degradedErr == nil && ctx.Err() == nil; i++ {
		degradedErr = plain.Put(ctx, []byte(fmt.Sprintf("fill-%05d", i)), []byte(pad))
	}
	if degradedErr == nil {
		t.Fatal("write budget never filled — no ErrDegraded observed")
	}
	if !errors.Is(degradedErr, core.ErrDegraded) {
		t.Fatalf("degraded write error = %v, want errors.Is ErrDegraded", degradedErr)
	}
	var re *wire.Error
	if !errors.As(degradedErr, &re) || !re.Code.Transient() {
		t.Fatalf("degraded error not classified transient on the wire: %v", degradedErr)
	}

	// A retrying client issued during the degraded window must outlast it.
	retrying, err := clsmclient.Dial(addr,
		clsmclient.WithRetry(60, 10*time.Millisecond, 200*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer retrying.Close()
	if err := retrying.Put(ctx, []byte("survivor"), []byte("made-it")); err != nil {
		t.Fatalf("retrying Put failed: %v", err)
	}
	v, ok, err := retrying.Get(ctx, []byte("survivor"))
	if err != nil || !ok || string(v) != "made-it" {
		t.Fatalf("survivor readback = %q,%v,%v", v, ok, err)
	}
}

// TestBadRequestKeepsConnection: an undecodable payload fails that one
// request with a bad-request error while the connection (and requests
// after it) keep working.
func TestBadRequestKeepsConnection(t *testing.T) {
	db, err := core.Open(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	addr, shutdown := startServer(t, coreEngine{db}, Config{})
	defer shutdown()

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()

	// Frame is well-formed; the Put payload inside is garbage.
	bad := wire.AppendFrame(nil, 1, byte(wire.OpPut), []byte{0xff, 0xff})
	good := wire.AppendFrame(nil, 2, byte(wire.OpPut), wire.AppendPut(nil, []byte("k"), []byte("v")))
	unknown := wire.AppendFrame(nil, 3, 0xEE, nil)
	if _, err := nc.Write(append(append(bad, good...), unknown...)); err != nil {
		t.Fatal(err)
	}

	replies := map[uint64]byte{}
	for i := 0; i < 3; i++ {
		id, status, _, err := wire.ReadFrame(nc)
		if err != nil {
			t.Fatalf("reply %d: %v", i, err)
		}
		replies[id] = status
	}
	if wire.ErrorCode(replies[1]) != wire.CodeBadRequest {
		t.Errorf("bad payload reply = %s", wire.ErrorCode(replies[1]))
	}
	if wire.ErrorCode(replies[2]) != wire.CodeOK {
		t.Errorf("good request after bad = %s", wire.ErrorCode(replies[2]))
	}
	if wire.ErrorCode(replies[3]) != wire.CodeBadRequest {
		t.Errorf("unknown op reply = %s", wire.ErrorCode(replies[3]))
	}
	if v, ok, _ := db.Get([]byte("k")); !ok || string(v) != "v" {
		t.Errorf("good put did not land: %q %v", v, ok)
	}
}

// TestTxnWriteOverShardedWire: remote transactions against a sharded
// engine — single-shard requests commit, cross-shard requests are
// rejected with ErrInvalidOptions identity intact across the wire, and
// nothing from a rejected request lands.
func TestTxnWriteOverShardedWire(t *testing.T) {
	db, err := clsm.OpenPath("", clsm.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	addr, shutdown := startServer(t, shardedEngine{db}, Config{})
	defer shutdown()

	c, err := clsmclient.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	// Find two keys on the same shard and one on a different shard.
	var same1, same2, other string
	for i := 0; same2 == "" || other == ""; i++ {
		k := fmt.Sprintf("txk-%03d", i)
		switch s := shard.IndexOf([]byte(k), 4); {
		case same1 == "":
			same1 = k
		case s == shard.IndexOf([]byte(same1), 4) && same2 == "":
			same2 = k
		case s != shard.IndexOf([]byte(same1), 4) && other == "":
			other = k
		}
	}

	// Single-shard txn commits.
	var b clsmclient.Batch
	b.Put([]byte(same1), []byte("v1"))
	b.Put([]byte(same2), []byte("v2"))
	checks := []clsmclient.ReadExpect{{Key: []byte(same1), Exists: false}}
	if err := c.TxnWrite(ctx, checks, &b); err != nil {
		t.Fatalf("single-shard TxnWrite: %v", err)
	}
	if v, ok, _ := c.Get(ctx, []byte(same2)); !ok || string(v) != "v2" {
		t.Fatalf("%s = %q,%v after single-shard txn", same2, v, ok)
	}

	// Cross-shard txn is rejected atomically.
	b.Reset()
	b.Put([]byte(same1), []byte("vX"))
	b.Put([]byte(other), []byte("vY"))
	err = c.TxnWrite(ctx, nil, &b)
	if !errors.Is(err, core.ErrInvalidOptions) {
		t.Fatalf("cross-shard TxnWrite = %v, want ErrInvalidOptions identity", err)
	}
	if v, _, _ := c.Get(ctx, []byte(same1)); string(v) == "vX" {
		t.Fatal("rejected cross-shard txn leaked a write")
	}
	if _, ok, _ := c.Get(ctx, []byte(other)); ok {
		t.Fatal("rejected cross-shard txn leaked a write to the other shard")
	}
}

// shardedEngine bridges *clsm.DB (sharded or not) to Engine, exactly
// like cmd/clsm-server's adapter.
type shardedEngine struct{ *clsm.DB }

func (e shardedEngine) NewIterator(opts ...core.IterOptions) (Iterator, error) {
	it, err := e.DB.NewIterator(opts...)
	if err != nil {
		return nil, err
	}
	return it, nil
}

// TestShardedEngineOverWire serves a 4-shard store and checks that the
// wire protocol is oblivious to sharding: writes, reads, ordered scans,
// and a Stats payload that still decodes with the same top-level shape
// plus a per-shard snapshot list.
func TestShardedEngineOverWire(t *testing.T) {
	db, err := clsm.OpenPath("", clsm.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	addr, shutdown := startServer(t, shardedEngine{db}, Config{})
	defer shutdown()

	c, err := clsmclient.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	const n = 200
	for i := 0; i < n; i++ {
		if err := c.Put(ctx, []byte(fmt.Sprintf("k%04d", i)), []byte(fmt.Sprintf("v%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Point reads and a cross-shard MultiGet.
	var keys [][]byte
	for i := 0; i < n; i++ {
		keys = append(keys, []byte(fmt.Sprintf("k%04d", i)))
	}
	vals, err := c.MultiGet(ctx, keys)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if !v.Exists || string(v.Data) != fmt.Sprintf("v%04d", i) {
			t.Fatalf("MultiGet[%d] = %q %v", i, v.Data, v.Exists)
		}
	}
	// Scan must come back globally ordered despite the k-way merge.
	kvs, err := c.Scan(ctx, nil, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != n {
		t.Fatalf("scan returned %d pairs, want %d", len(kvs), n)
	}
	for i := 1; i < len(kvs); i++ {
		if string(kvs[i].Key) <= string(kvs[i-1].Key) {
			t.Fatalf("scan out of order: %q after %q", kvs[i].Key, kvs[i-1].Key)
		}
	}
	// Stats: same top-level shape (WALAppends etc. present and summed)
	// plus a "shards" list with one snapshot per shard.
	st, err := c.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Counters map[string]uint64 `json:"counters"`
		Shards   []struct {
			Counters map[string]uint64 `json:"counters"`
		} `json:"shards"`
	}
	if err := json.Unmarshal(st.Obs, &decoded); err != nil {
		t.Fatalf("stats payload does not decode: %v\n%s", err, st.Obs)
	}
	if len(decoded.Shards) != 4 {
		t.Fatalf("stats carries %d shard snapshots, want 4", len(decoded.Shards))
	}
	var sum uint64
	for _, s := range decoded.Shards {
		sum += s.Counters["wal_appends"]
	}
	if sum == 0 {
		t.Fatal("no WAL appends across shard snapshots")
	}
	if decoded.Counters["wal_appends"] != sum {
		t.Fatalf("aggregate wal_appends %d != per-shard sum %d", decoded.Counters["wal_appends"], sum)
	}
}

// slowEngine parks every read until released — the harness for proving
// Shutdown drains in-flight requests instead of severing them. Writes
// succeed immediately; reads signal arrival on started (once) and then
// block until release closes or the engine context dies.
type slowEngine struct {
	o         *obs.Observer
	started   chan struct{} // closed when the first read reaches the engine
	release   chan struct{} // close to let parked reads complete
	startOnce sync.Once
}

func newSlowEngine() *slowEngine {
	return &slowEngine{
		o:       obs.New(),
		started: make(chan struct{}),
		release: make(chan struct{}),
	}
}

func (e *slowEngine) block(ctx context.Context) error {
	e.startOnce.Do(func() { close(e.started) })
	select {
	case <-e.release:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (e *slowEngine) PutCtx(ctx context.Context, key, value []byte) error { return nil }
func (e *slowEngine) DeleteCtx(ctx context.Context, key []byte) error     { return nil }
func (e *slowEngine) WriteCtx(ctx context.Context, b *batch.Batch) error  { return nil }
func (e *slowEngine) TxnWriteCtx(ctx context.Context, checks []core.ReadCheck, b *batch.Batch) error {
	return nil
}
func (e *slowEngine) GetCtx(ctx context.Context, key []byte) ([]byte, bool, error) {
	if err := e.block(ctx); err != nil {
		return nil, false, err
	}
	return []byte("drained"), true, nil
}
func (e *slowEngine) MultiGetCtx(ctx context.Context, keys [][]byte) ([]core.Value, error) {
	if err := e.block(ctx); err != nil {
		return nil, err
	}
	vals := make([]core.Value, len(keys))
	for i := range vals {
		vals[i] = core.Value{Data: []byte("drained"), Exists: true}
	}
	return vals, nil
}
func (e *slowEngine) NewIterator(opts ...core.IterOptions) (Iterator, error) {
	return nil, errors.New("no iterators")
}
func (e *slowEngine) Health() core.HealthStatus { return core.HealthStatus{} }
func (e *slowEngine) Observer() *obs.Observer   { return e.o }

// TestShutdownDrainsInflightGet is the graceful-drain acceptance test
// (run with -race): a Get is parked inside the engine when Shutdown
// begins; Shutdown must wait for it, the response must reach the client,
// and only then may Shutdown return — with no error, because the drain
// beat the deadline.
func TestShutdownDrainsInflightGet(t *testing.T) {
	eng := newSlowEngine()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := New(eng, Config{})
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	c, err := clsmclient.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	type getResult struct {
		v   []byte
		ok  bool
		err error
	}
	got := make(chan getResult, 1)
	go func() {
		v, ok, gerr := c.Get(context.Background(), []byte("slow"))
		got <- getResult{v, ok, gerr}
	}()
	select {
	case <-eng.started:
	case <-time.After(5 * time.Second):
		t.Fatal("Get never reached the engine")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	shutdownErr := make(chan error, 1)
	go func() { shutdownErr <- srv.Shutdown(ctx) }()

	// The drain must not complete — and the client must not see a
	// response or a reset — while the request is still parked.
	select {
	case err := <-shutdownErr:
		t.Fatalf("Shutdown returned %v with a request still in flight", err)
	case r := <-got:
		t.Fatalf("Get returned early: %q,%v,%v", r.v, r.ok, r.err)
	case <-time.After(100 * time.Millisecond):
	}

	close(eng.release)
	r := <-got
	if r.err != nil || !r.ok || string(r.v) != "drained" {
		t.Fatalf("in-flight Get across shutdown = %q,%v,%v; want drained,true,nil", r.v, r.ok, r.err)
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("graceful Shutdown returned %v, want nil", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve returned %v after Shutdown", err)
	}
	// The listener is gone: new connections are refused, not queued.
	if _, err := net.DialTimeout("tcp", ln.Addr().String(), time.Second); err == nil {
		t.Fatal("dial succeeded after Shutdown closed the listener")
	}
}

// TestShutdownDeadlineSevers: when the drain deadline expires with a
// request still parked in the engine, Shutdown severs the stragglers,
// reports ctx.Err(), and still joins every goroutine.
func TestShutdownDeadlineSevers(t *testing.T) {
	eng := newSlowEngine()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := New(eng, Config{})
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	c, err := clsmclient.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got := make(chan error, 1)
	go func() {
		_, _, gerr := c.Get(context.Background(), []byte("stuck"))
		got <- gerr
	}()
	select {
	case <-eng.started:
	case <-time.After(5 * time.Second):
		t.Fatal("Get never reached the engine")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown past deadline = %v, want DeadlineExceeded", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve returned %v after Shutdown", err)
	}
	if err := <-got; err == nil {
		t.Fatal("severed Get returned no error")
	}
}
