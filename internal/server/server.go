// Package server is the network front end of the store: a TCP server
// speaking the length-prefixed binary protocol of internal/wire
// (docs/NETWORK.md documents the frame layout and semantics).
//
// The design goal is that the paper's single-process concurrency wins —
// group-committed writes, batched reads — survive the hop onto the
// network. Three mechanisms carry that:
//
//   - Pipelining. Every request carries a client-chosen id; each
//     connection runs one reader and one writer goroutine, and requests
//     are handled by a bounded pool of per-request goroutines, so
//     responses complete out of order and a slow Scan never blocks the
//     Puts queued behind it.
//
//   - Cross-connection write coalescing. All mutations (Put, Delete,
//     Write) from all connections funnel into one committer goroutine
//     that merges whatever is currently queued into a single engine
//     batch and commits it with one WriteCtx call — the WAL group commit
//     then amortizes one fsync over every client in the merge, so
//     syncs/op drops below one as soon as two clients write concurrently.
//
//   - Read coalescing. Concurrent point Gets are merged the same way
//     into one engine MultiGet, which pins the component set once for
//     the whole batch.
//
// Engine errors cross the wire as stable wire.ErrorCode values, so
// clsmclient callers keep their errors.Is(err, clsm.ErrReadOnly)
// switches.
package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"

	"clsm/internal/batch"
	"clsm/internal/core"
	"clsm/internal/obs"
	"clsm/internal/wire"
)

// Engine is the store surface the server needs. *clsm.DB satisfies it
// up to NewIterator, whose concrete return type differs — a two-line
// adapter in the caller bridges it (see cmd/clsm-server); tests
// substitute fakes to script error paths.
type Engine interface {
	PutCtx(ctx context.Context, key, value []byte) error
	DeleteCtx(ctx context.Context, key []byte) error
	WriteCtx(ctx context.Context, b *batch.Batch) error
	TxnWriteCtx(ctx context.Context, checks []core.ReadCheck, b *batch.Batch) error
	GetCtx(ctx context.Context, key []byte) (value []byte, ok bool, err error)
	MultiGetCtx(ctx context.Context, keys [][]byte) ([]core.Value, error)
	NewIterator(opts ...core.IterOptions) (Iterator, error)
	Health() core.HealthStatus
	Observer() *obs.Observer
}

// Iterator is the scan cursor surface the server needs — satisfied by
// both the single-engine and the sharded merged iterator.
type Iterator interface {
	First()
	Seek(key []byte)
	Next()
	Valid() bool
	Key() []byte
	Value() []byte
	Err() error
	Close()
}

// ShardedEngine is the optional capability a hash-partitioned engine
// exposes: per-shard observability substrates. When the engine
// implements it (and reports more than one shard), the Stats opcode
// carries a per-shard snapshot list alongside the aggregate, and the
// server keeps its own substrate for server-side instrumentation
// (a sharded engine's Observer() is a point-in-time aggregate, not a
// live recording target).
type ShardedEngine interface {
	ShardObservers() []*obs.Observer
}

// Config tunes the server. The zero value is ready to use.
type Config struct {
	// MaxBatch caps how many queued requests one committer pass merges
	// into a single engine commit (default 128). Larger batches amortize
	// the WAL sync further but add latency under sustained load.
	MaxBatch int

	// MaxInflight caps concurrently executing requests per connection
	// (default 256). It bounds per-connection memory and is the
	// pipelining depth a client can usefully exceed it.
	MaxInflight int
}

func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 128
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 256
	}
	return c
}

// Server serves the wire protocol over TCP for one engine.
type Server struct {
	eng Engine
	cfg Config
	o   *obs.Observer

	// shardObs holds the per-shard observers of a sharded engine (nil
	// for single-engine stores); stats() aggregates them on demand.
	shardObs []*obs.Observer

	baseCtx context.Context
	cancel  context.CancelFunc

	writeCh chan *writeReq
	readCh  chan *readReq

	mu     sync.Mutex
	lns    map[net.Listener]struct{}
	conns  map[net.Conn]struct{}
	closed bool

	wg     sync.WaitGroup // connections + coalescer goroutines
	connWG sync.WaitGroup // connections only — Shutdown's drain barrier
}

// New builds a server around eng. Call Serve to accept connections and
// Close to shut down.
func New(eng Engine, cfg Config) *Server {
	ctx, cancel := context.WithCancel(context.Background())
	var shardObs []*obs.Observer
	o := eng.Observer()
	if se, ok := eng.(ShardedEngine); ok {
		if so := se.ShardObservers(); len(so) > 0 {
			// Sharded store: record server-side instrumentation into a
			// dedicated substrate; the engine's per-shard observers are
			// aggregated fresh per Stats request.
			shardObs = so
			o = obs.New()
		}
	}
	s := &Server{
		eng:      eng,
		cfg:      cfg.withDefaults(),
		o:        o,
		shardObs: shardObs,
		baseCtx:  ctx,
		cancel:   cancel,
		writeCh:  make(chan *writeReq),
		readCh:   make(chan *readReq),
		lns:      make(map[net.Listener]struct{}),
		conns:    make(map[net.Conn]struct{}),
	}
	s.wg.Add(2)
	go s.writeCoalescer()
	go s.readCoalescer()
	return s
}

// Serve accepts connections on ln until Close (which returns nil) or a
// listener error (returned). Multiple Serve calls on different listeners
// are allowed.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return core.ErrClosed
	}
	s.lns[ln] = struct{}{}
	s.mu.Unlock()

	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			return nil
		}
		s.conns[nc] = struct{}{}
		s.wg.Add(1)
		s.connWG.Add(1)
		s.mu.Unlock()
		s.o.ServerConns.Add(1)
		go s.serveConn(nc)
	}
}

// Close stops accepting, severs every connection, cancels all in-flight
// engine calls, and waits for every goroutine the server started.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	for ln := range s.lns {
		ln.Close()
	}
	for nc := range s.conns {
		nc.Close()
	}
	s.mu.Unlock()
	s.cancel()
	s.wg.Wait()
	return nil
}

// Shutdown drains the server gracefully: it stops accepting, half-closes
// every connection's read side so no new requests arrive, and waits for
// the requests already in flight to finish and their responses to reach
// the wire. When every connection has drained — or ctx expires, in which
// case the stragglers are severed the Close way and ctx.Err() is
// returned — the coalescers are stopped and all goroutines joined.
// Clients see a clean EOF after their last response instead of a reset
// mid-pipeline.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	for ln := range s.lns {
		ln.Close()
	}
	// Half-close: CloseRead makes the connection's pending ReadFrame
	// return EOF (ending its reading loop) while the write side stays
	// open for the responses still in flight. Connections that cannot
	// half-close (pipes, TLS wrappers) are severed outright — correct,
	// just less graceful.
	for nc := range s.conns {
		if hc, ok := nc.(interface{ CloseRead() error }); ok {
			hc.CloseRead()
		} else {
			nc.Close()
		}
	}
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.connWG.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err()
		// Deadline passed: abandon grace. Cancel first so handler
		// goroutines parked in submitWrite/submitRead unblock, then
		// sever the sockets under the slow requests.
		s.cancel()
		s.mu.Lock()
		for nc := range s.conns {
			nc.Close()
		}
		s.mu.Unlock()
		<-drained
	}
	s.cancel()
	s.wg.Wait()
	return err
}

// ---- cross-connection coalescers ----

// writeReq is one mutation queued for the shared committer: the entries
// of a Put (one), Delete (one tombstone), or Write (the whole batch —
// merged contiguously, so the engine batch keeps it atomic).
type writeReq struct {
	entries []wire.Entry
	done    chan error // buffered(1); committer never blocks sending
}

// writeCoalescer is the single committer: it merges every mutation
// queued at the moment it wakes — across all connections — into one
// engine batch and commits it with one WriteCtx call, so the WAL group
// commit pays one sync for the whole merge.
func (s *Server) writeCoalescer() {
	defer s.wg.Done()
	for {
		var first *writeReq
		select {
		case <-s.baseCtx.Done():
			return
		case first = <-s.writeCh:
		}
		reqs := []*writeReq{first}
		var b batch.Batch
		appendEntries(&b, first.entries)
	fill:
		for b.Len() < s.cfg.MaxBatch {
			select {
			case r := <-s.writeCh:
				reqs = append(reqs, r)
				appendEntries(&b, r.entries)
			default:
				break fill
			}
		}
		err := s.eng.WriteCtx(s.baseCtx, &b)
		s.o.ServerWriteBatch.RecordValue(uint64(b.Len()))
		for _, r := range reqs {
			r.done <- err
		}
	}
}

func appendEntries(b *batch.Batch, entries []wire.Entry) {
	for _, e := range entries {
		if e.Delete {
			b.Delete(e.Key)
		} else {
			b.Put(e.Key, e.Value)
		}
	}
}

// readReq is one group of point Gets queued for the shared read
// coalescer.
type readReq struct {
	keys [][]byte
	done chan readReply // buffered(1)
}

type readReply struct {
	vals []core.Value // parallel to the request's keys
	err  error
}

// readCoalescer merges concurrent point-Get groups into one engine
// MultiGet, which pins the component set once for the whole merged
// batch, then splits the results back per group.
func (s *Server) readCoalescer() {
	defer s.wg.Done()
	for {
		var first *readReq
		select {
		case <-s.baseCtx.Done():
			return
		case first = <-s.readCh:
		}
		reqs := []*readReq{first}
		n := len(first.keys)
	fill:
		for n < s.cfg.MaxBatch {
			select {
			case r := <-s.readCh:
				reqs = append(reqs, r)
				n += len(r.keys)
			default:
				break fill
			}
		}
		keys := make([][]byte, 0, n)
		for _, r := range reqs {
			keys = append(keys, r.keys...)
		}
		vals, err := s.eng.MultiGetCtx(s.baseCtx, keys)
		s.o.ServerReadBatch.RecordValue(uint64(len(keys)))
		off := 0
		for _, r := range reqs {
			if err != nil {
				r.done <- readReply{err: err}
			} else {
				r.done <- readReply{vals: vals[off : off+len(r.keys)]}
			}
			off += len(r.keys)
		}
	}
}

// submitWrite queues entries on the committer and waits for the merged
// commit; it fails with ErrClosed when the server shuts down first.
func (s *Server) submitWrite(entries []wire.Entry) error {
	req := &writeReq{entries: entries, done: make(chan error, 1)}
	select {
	case s.writeCh <- req:
	case <-s.baseCtx.Done():
		return core.ErrClosed
	}
	select {
	case err := <-req.done:
		return err
	case <-s.baseCtx.Done():
		return core.ErrClosed
	}
}

// submitRead queues a group of point Gets on the read coalescer.
func (s *Server) submitRead(keys [][]byte) ([]core.Value, error) {
	req := &readReq{keys: keys, done: make(chan readReply, 1)}
	select {
	case s.readCh <- req:
	case <-s.baseCtx.Done():
		return nil, core.ErrClosed
	}
	select {
	case rep := <-req.done:
		return rep.vals, rep.err
	case <-s.baseCtx.Done():
		return nil, core.ErrClosed
	}
}

// ---- per-connection machinery ----

// serveConn runs one connection: this goroutine is the frame reader;
// responses fan in through out to a dedicated writer goroutine, and
// request execution happens in goroutines bounded by the inflight
// semaphore — that is what makes completion out-of-order.
//
// The reader batches aggressively: mutations and point Gets are decoded
// inline and accumulated into groups, and a group is submitted — as one
// coalescer handoff, one engine call, and one response buffer — when the
// connection's receive buffer runs dry (the next read would block) or
// the group reaches MaxBatch. A client that pipelines N puts in one
// network chunk therefore costs the server one commit handshake, not N.
// Slow or rare operations (Scan, MultiGet, Stats, undecodable frames)
// each get their own goroutine so they never hold up the groups.
func (s *Server) serveConn(nc net.Conn) {
	defer s.wg.Done()
	defer s.connWG.Done()
	defer s.o.ServerConns.Add(-1)

	out := make(chan []byte, s.cfg.MaxInflight)
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		s.connWriter(nc, out)
	}()

	sem := make(chan struct{}, s.cfg.MaxInflight)
	var handlers sync.WaitGroup
	r := bufio.NewReaderSize(nc, 64<<10)
	var g reqGroup
reading:
	for {
		id, op, payload, err := wire.ReadFrame(r)
		if err != nil {
			break // EOF, peer gone, or an unrecoverable framing error
		}
		inline := true
		switch wire.Op(op) {
		case wire.OpPut:
			if k, v, derr := wire.DecodePut(payload); derr == nil {
				g.wids = append(g.wids, id)
				g.entries = append(g.entries, wire.Entry{Key: k, Value: v})
			} else {
				inline = false
			}
		case wire.OpDelete:
			if k, derr := wire.DecodeKey(payload); derr == nil {
				g.wids = append(g.wids, id)
				g.entries = append(g.entries, wire.Entry{Delete: true, Key: k})
			} else {
				inline = false
			}
		case wire.OpWrite:
			if entries, derr := wire.DecodeWrite(payload); derr == nil {
				g.wids = append(g.wids, id)
				g.entries = append(g.entries, entries...)
			} else {
				inline = false
			}
		case wire.OpGet:
			if k, derr := wire.DecodeKey(payload); derr == nil {
				g.rids = append(g.rids, id)
				g.keys = append(g.keys, k)
			} else {
				inline = false
			}
		default:
			inline = false
		}
		if !inline {
			// The generic path re-decodes and maps failures to
			// CodeBadRequest.
			if !s.spawn(sem, &handlers, func() {
				s.deliver(out, s.handle(id, op, payload))
			}) {
				break reading
			}
		}
		if r.Buffered() == 0 || len(g.entries) >= s.cfg.MaxBatch || len(g.rids) >= s.cfg.MaxBatch {
			if !s.flushGroups(&g, sem, &handlers, out) {
				break reading
			}
		}
	}
	s.flushGroups(&g, sem, &handlers, out)

	handlers.Wait()
	close(out)
	writerWG.Wait()
	nc.Close()

	s.mu.Lock()
	delete(s.conns, nc)
	s.mu.Unlock()
}

// reqGroup accumulates one connection's inline-decoded requests between
// submissions: mutations (flattened entries, one response id per
// request) and point Gets (one key and response id per request).
type reqGroup struct {
	wids    []uint64
	entries []wire.Entry
	rids    []uint64
	keys    [][]byte
}

// spawn runs fn in a handler goroutine, bounded by the connection's
// inflight semaphore. It reports false when the server is shutting down.
func (s *Server) spawn(sem chan struct{}, handlers *sync.WaitGroup, fn func()) bool {
	select {
	case sem <- struct{}{}:
	case <-s.baseCtx.Done():
		return false
	}
	handlers.Add(1)
	go func() {
		defer func() {
			<-sem
			handlers.Done()
		}()
		fn()
	}()
	return true
}

// flushGroups submits the accumulated write and read groups (each in its
// own bounded goroutine, so the reader keeps reading while they commit)
// and resets the group. It reports false when the server is shutting
// down.
func (s *Server) flushGroups(g *reqGroup, sem chan struct{}, handlers *sync.WaitGroup, out chan<- []byte) bool {
	if len(g.wids) > 0 {
		wids, entries := g.wids, g.entries
		g.wids, g.entries = nil, nil
		if !s.spawn(sem, handlers, func() { s.commitWrites(out, wids, entries) }) {
			return false
		}
	}
	if len(g.rids) > 0 {
		rids, keys := g.rids, g.keys
		g.rids, g.keys = nil, nil
		if !s.spawn(sem, handlers, func() { s.commitReads(out, rids, keys) }) {
			return false
		}
	}
	return true
}

// commitWrites submits one connection's group of mutations to the shared
// committer and answers every member with the group's outcome in a
// single response buffer.
func (s *Server) commitWrites(out chan<- []byte, wids []uint64, entries []wire.Entry) {
	s.o.ServerInflight.Add(int64(len(wids)))
	defer s.o.ServerInflight.Add(int64(-len(wids)))
	err := s.submitWrite(entries)
	code, msg := byte(wire.CodeOK), []byte(nil)
	if err != nil {
		code, msg = byte(wire.Code(err)), []byte(err.Error())
	}
	buf := make([]byte, 0, len(wids)*(9+4+len(msg)))
	for _, id := range wids {
		buf = wire.AppendFrame(buf, id, code, msg)
	}
	s.deliver(out, buf)
}

// commitReads submits one connection's group of point Gets to the shared
// read coalescer and answers every member in a single response buffer.
func (s *Server) commitReads(out chan<- []byte, rids []uint64, keys [][]byte) {
	s.o.ServerInflight.Add(int64(len(rids)))
	defer s.o.ServerInflight.Add(int64(-len(rids)))
	vals, err := s.submitRead(keys)
	buf := make([]byte, 0, len(rids)*32)
	var scratch []byte
	if err != nil {
		code, msg := byte(wire.Code(err)), []byte(err.Error())
		for _, id := range rids {
			buf = wire.AppendFrame(buf, id, code, msg)
		}
	} else {
		for i, id := range rids {
			scratch = wire.AppendGetReply(scratch[:0], vals[i].Data, vals[i].Exists)
			buf = wire.AppendFrame(buf, id, byte(wire.CodeOK), scratch)
		}
	}
	s.deliver(out, buf)
}

// deliver hands a finished response to the writer, giving up when the
// server shuts down (the connection is being torn down anyway).
func (s *Server) deliver(out chan<- []byte, frame []byte) {
	select {
	case out <- frame:
		return
	default:
	}
	select {
	case out <- frame:
	case <-s.baseCtx.Done():
	}
}

// connWriter drains the response channel onto the socket, flushing
// whenever the channel runs empty so pipelined responses batch into few
// syscalls. After a write error it keeps draining (discarding) so
// handlers never block on a dead connection.
func (s *Server) connWriter(nc net.Conn, out <-chan []byte) {
	w := bufio.NewWriterSize(nc, 64<<10)
	var werr error
	for frame := range out {
		if werr == nil {
			_, werr = w.Write(frame)
		}
		if werr == nil && len(out) == 0 {
			werr = w.Flush()
		}
	}
	if werr == nil {
		w.Flush()
	}
}

// ---- request handling ----

// handle executes one decoded request and returns the encoded response
// frame. The response status byte is the wire.ErrorCode; error responses
// carry the error text as payload.
func (s *Server) handle(id uint64, op byte, payload []byte) []byte {
	body, err := s.dispatch(wire.Op(op), payload)
	if err != nil {
		code := wire.Code(err)
		if errors.Is(err, errBadRequest) {
			code = wire.CodeBadRequest
		}
		return wire.AppendFrame(nil, id, byte(code), []byte(err.Error()))
	}
	return wire.AppendFrame(nil, id, byte(wire.CodeOK), body)
}

// errBadRequest marks protocol-level failures (unknown op, undecodable
// payload) so handle maps them to CodeBadRequest rather than
// CodeInternal.
var errBadRequest = errors.New("bad request")

func badRequest(err error) error {
	return fmt.Errorf("%w: %w", errBadRequest, err)
}

// dispatch decodes and executes one operation, returning the encoded
// success payload.
func (s *Server) dispatch(op wire.Op, payload []byte) ([]byte, error) {
	switch op {
	case wire.OpPut:
		k, v, err := wire.DecodePut(payload)
		if err != nil {
			return nil, badRequest(err)
		}
		return nil, s.submitWrite([]wire.Entry{{Key: k, Value: v}})

	case wire.OpDelete:
		k, err := wire.DecodeKey(payload)
		if err != nil {
			return nil, badRequest(err)
		}
		return nil, s.submitWrite([]wire.Entry{{Delete: true, Key: k}})

	case wire.OpWrite:
		entries, err := wire.DecodeWrite(payload)
		if err != nil {
			return nil, badRequest(err)
		}
		if len(entries) == 0 {
			return nil, nil // empty batch: trivially committed
		}
		return nil, s.submitWrite(entries)

	case wire.OpGet:
		k, err := wire.DecodeKey(payload)
		if err != nil {
			return nil, badRequest(err)
		}
		vals, err := s.submitRead([][]byte{k})
		if err != nil {
			return nil, err
		}
		return wire.AppendGetReply(nil, vals[0].Data, vals[0].Exists), nil

	case wire.OpMultiGet:
		keys, err := wire.DecodeKeys(payload)
		if err != nil {
			return nil, badRequest(err)
		}
		vals, err := s.eng.MultiGetCtx(s.baseCtx, keys)
		if err != nil {
			return nil, err
		}
		wvals := make([]wire.Value, len(vals))
		for i, v := range vals {
			wvals[i] = wire.Value{Data: v.Data, Exists: v.Exists}
		}
		return wire.AppendValues(nil, wvals), nil

	case wire.OpTxnWrite:
		// Validated commits bypass the write coalescer: coalescing would
		// batch them with unvalidated writes and lose the conflict
		// atomicity (the check and the commit must share one engine txn).
		reads, entries, err := wire.DecodeTxnWrite(payload)
		if err != nil {
			return nil, badRequest(err)
		}
		checks := make([]core.ReadCheck, len(reads))
		for i, r := range reads {
			checks[i] = core.ReadCheck{Key: r.Key, Value: r.Value, Exists: r.Exists}
		}
		var b batch.Batch
		for _, e := range entries {
			if e.Delete {
				b.Delete(e.Key)
			} else {
				b.Put(e.Key, e.Value)
			}
		}
		return nil, s.eng.TxnWriteCtx(s.baseCtx, checks, &b)

	case wire.OpScan:
		start, limit, err := wire.DecodeScan(payload)
		if err != nil {
			return nil, badRequest(err)
		}
		return s.scan(start, limit)

	case wire.OpStats:
		return s.stats()

	default:
		return nil, badRequest(fmt.Errorf("unknown op %d", byte(op)))
	}
}

// scan streams up to limit pairs from start out of a fresh implicit
// snapshot. The whole result is one response frame; wire.MaxFrame bounds
// it, which is why DecodeScan caps limit.
func (s *Server) scan(start []byte, limit int) ([]byte, error) {
	it, err := s.eng.NewIterator()
	if err != nil {
		return nil, err
	}
	defer it.Close()
	pairs := make([]wire.KV, 0, min(limit, 64))
	if len(start) > 0 {
		it.Seek(start)
	} else {
		it.First()
	}
	for ; it.Valid() && len(pairs) < limit; it.Next() {
		k := append([]byte(nil), it.Key()...)
		v := append([]byte(nil), it.Value()...)
		pairs = append(pairs, wire.KV{Key: k, Value: v})
	}
	return wire.AppendPairs(nil, pairs), nil
}

// stats reports the engine's health state plus the full observability
// snapshot as JSON, so a remote client sees exactly what the in-process
// debug endpoint serves. For a sharded engine the top-level snapshot is
// the cross-shard aggregate (server counters included) and a "shards"
// key carries the per-shard snapshots; the top-level shape is unchanged,
// so existing decoders keep working.
func (s *Server) stats() ([]byte, error) {
	st := s.eng.Health()
	msg := ""
	if st.Err != nil {
		msg = st.Err.Error()
	}
	var payload any
	if len(s.shardObs) > 0 {
		perShard := make([]obs.Snapshot, len(s.shardObs))
		for i, so := range s.shardObs {
			perShard[i] = so.Snapshot()
		}
		all := append([]*obs.Observer{s.o}, s.shardObs...)
		payload = struct {
			obs.Snapshot
			Shards []obs.Snapshot `json:"shards,omitempty"`
		}{obs.Aggregate(all...).Snapshot(), perShard}
	} else {
		payload = s.o.Snapshot()
	}
	snap, err := json.Marshal(payload)
	if err != nil {
		return nil, err
	}
	return wire.AppendStatus(nil, wire.Status{
		Health:    uint8(st.State),
		HealthMsg: msg,
		Obs:       snap,
	}), nil
}
