package baseline

import (
	"fmt"
	"sync"
	"testing"

	"clsm/internal/core"
	"clsm/internal/storage"
	"clsm/internal/version"
)

func testOpts() core.Options {
	return core.Options{
		FS:           storage.NewMemFS(),
		MemtableSize: 64 << 10,
		Disk: version.Options{
			BaseLevelBytes: 256 << 10,
			TableFileSize:  32 << 10,
		},
	}
}

var allWithStriped = append(append([]Name(nil), AllModels...), NameStriped)

// Every model must provide correct KV semantics; only performance differs.
func TestAllModelsCorrectness(t *testing.T) {
	for _, name := range allWithStriped {
		t.Run(string(name), func(t *testing.T) {
			s, err := New(name, testOpts())
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()

			for i := 0; i < 500; i++ {
				k := []byte(fmt.Sprintf("k%04d", i))
				if err := s.Put(k, []byte(fmt.Sprintf("v%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 500; i += 17 {
				k := []byte(fmt.Sprintf("k%04d", i))
				v, ok, err := s.Get(k)
				if err != nil || !ok || string(v) != fmt.Sprintf("v%d", i) {
					t.Fatalf("Get(%s) = %q,%v,%v", k, v, ok, err)
				}
			}
			if err := s.Delete([]byte("k0100")); err != nil {
				t.Fatal(err)
			}
			if _, ok, _ := s.Get([]byte("k0100")); ok {
				t.Fatal("delete failed")
			}
			n, err := s.Scan([]byte("k0000"), 50)
			if err != nil || n != 50 {
				t.Fatalf("Scan = %d,%v", n, err)
			}
			if m := s.Metrics(); m.Puts == 0 {
				t.Fatal("metrics not wired")
			}
		})
	}
}

// RMW atomicity must hold in every model (each uses a different mechanism:
// Algorithm 3, global mutex, or lock striping).
func TestAllModelsRMWAtomic(t *testing.T) {
	for _, name := range allWithStriped {
		t.Run(string(name), func(t *testing.T) {
			s, err := New(name, testOpts())
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			incr := func(old []byte, exists bool) []byte {
				n := 0
				if exists {
					fmt.Sscanf(string(old), "%d", &n)
				}
				return []byte(fmt.Sprintf("%d", n+1))
			}
			const workers = 4
			const per = 200
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < per; i++ {
						if err := s.RMW([]byte("ctr"), incr); err != nil {
							t.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
			v, ok, _ := s.Get([]byte("ctr"))
			if !ok {
				t.Fatal("counter missing")
			}
			var got int
			fmt.Sscanf(string(v), "%d", &got)
			if got != workers*per {
				t.Fatalf("counter = %d, want %d", got, workers*per)
			}
		})
	}
}

// Concurrent mixed traffic must be linearizable enough to never corrupt
// data under any model.
func TestAllModelsConcurrentMix(t *testing.T) {
	for _, name := range AllModels {
		t.Run(string(name), func(t *testing.T) {
			s, err := New(name, testOpts())
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < 500; i++ {
						k := []byte(fmt.Sprintf("w%d-%04d", w, i))
						if err := s.Put(k, k); err != nil {
							t.Error(err)
							return
						}
						if v, ok, err := s.Get(k); err != nil || !ok || string(v) != string(k) {
							t.Errorf("read-your-write failed: %q %v %v", v, ok, err)
							return
						}
						if i%50 == 0 {
							if _, err := s.Scan(k, 10); err != nil {
								t.Error(err)
								return
							}
						}
					}
				}(w)
			}
			wg.Wait()
		})
	}
}

func TestUnknownModel(t *testing.T) {
	if _, err := New(Name("nope"), testOpts()); err == nil {
		t.Fatal("unknown model accepted")
	}
}
