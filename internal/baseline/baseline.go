// Package baseline re-creates the concurrency architectures of the four
// open-source stores the paper evaluates against (§5): LevelDB,
// HyperLevelDB, RocksDB (2014), and bLSM — plus the lock-striping
// read-modify-write competitor of Fig. 9.
//
// Every model runs on the same substrates as cLSM (identical memtable,
// WAL, SSTables, cache, and compaction), with its characteristic
// synchronization discipline layered on the operation paths. Differences
// measured between models therefore isolate the synchronization design —
// which is exactly the comparison the paper makes. See DESIGN.md for the
// fidelity notes of each model.
package baseline

import (
	"sync"
	"time"

	"clsm/internal/core"
	"clsm/internal/syncutil"
)

// Store is the uniform interface the benchmark harness drives. CLSM and
// every baseline model implement it.
type Store interface {
	// Put stores a key/value pair.
	Put(key, value []byte) error
	// Get retrieves the newest value of key.
	Get(key []byte) (value []byte, ok bool, err error)
	// Delete removes key.
	Delete(key []byte) error
	// RMW atomically applies f to key's current value.
	RMW(key []byte, f func(old []byte, exists bool) []byte) error
	// Scan iterates up to n keys starting at start under a consistent
	// snapshot, returning the number of keys visited.
	Scan(start []byte, n int) (int, error)
	// Metrics exposes the underlying engine counters.
	Metrics() core.Metrics
	// Close releases the store.
	Close() error
}

// Name identifies a store model in benchmark output.
type Name string

// Store model names, matching the paper's figure legends.
const (
	NameCLSM    Name = "cLSM"
	NameLevelDB Name = "LevelDB"
	NameHyper   Name = "HyperLevelDB"
	NameRocksDB Name = "RocksDB"
	NameBLSM    Name = "bLSM"
	NameStriped Name = "LevelDB+striping" // Fig. 9 RMW competitor
)

// AllModels lists the models in the order the paper's figures use.
var AllModels = []Name{NameRocksDB, NameBLSM, NameLevelDB, NameHyper, NameCLSM}

// New constructs a store of the given model over opts.
func New(name Name, opts core.Options) (Store, error) {
	db, err := core.Open(opts)
	if err != nil {
		return nil, err
	}
	switch name {
	case NameCLSM:
		return &clsmStore{db: db}, nil
	case NameLevelDB:
		return &levelDBStore{db: db}, nil
	case NameHyper:
		return &hyperStore{db: db, stripes: syncutil.NewStripedLock(256)}, nil
	case NameRocksDB:
		return &rocksStore{db: db}, nil
	case NameBLSM:
		return &blsmStore{db: db, memSize: opts.WithDefaults().MemtableSize}, nil
	case NameStriped:
		return &stripedStore{db: db, stripes: syncutil.NewStripedLock(1024)}, nil
	default:
		db.Close()
		return nil, errUnknownModel(name)
	}
}

type errUnknownModel string

func (e errUnknownModel) Error() string { return "baseline: unknown model " + string(e) }

// scan is the shared snapshot-scan implementation.
func scan(db *core.DB, start []byte, n int) (int, error) {
	it, err := db.NewIterator()
	if err != nil {
		return 0, err
	}
	defer it.Close()
	count := 0
	for it.Seek(start); it.Valid() && count < n; it.Next() {
		count++
	}
	return count, it.Err()
}

// ---------------------------------------------------------------------------
// cLSM: the engine as designed — no overlay.

type clsmStore struct{ db *core.DB }

func (s *clsmStore) Put(k, v []byte) error                 { return s.db.Put(k, v) }
func (s *clsmStore) Get(k []byte) ([]byte, bool, error)    { return s.db.Get(k) }
func (s *clsmStore) Delete(k []byte) error                 { return s.db.Delete(k) }
func (s *clsmStore) Scan(start []byte, n int) (int, error) { return scan(s.db, start, n) }
func (s *clsmStore) Metrics() core.Metrics                 { return s.db.Metrics() }
func (s *clsmStore) Close() error                          { return s.db.Close() }
func (s *clsmStore) RMW(k []byte, f func([]byte, bool) []byte) error {
	return s.db.RMW(k, f)
}

// ---------------------------------------------------------------------------
// LevelDB model: a global mutex serializes all writers (the writers queue
// admits one group at a time), and every read acquires the same mutex
// briefly to reference the current components — the behaviour the paper
// attributes to LevelDB's coarse-grained synchronization ("read operations
// blocking even when data is available in memory").

type levelDBStore struct {
	db *core.DB
	mu sync.Mutex
}

func (s *levelDBStore) Put(k, v []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.db.Put(k, v)
}

func (s *levelDBStore) Delete(k []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.db.Delete(k)
}

func (s *levelDBStore) Get(k []byte) ([]byte, bool, error) {
	// The mutex protects the component-reference step only; the search
	// itself runs outside, exactly like LevelDB's DBImpl::Get.
	s.mu.Lock()
	//nolint:staticcheck // intentional: model the reference critical section
	s.mu.Unlock()
	return s.db.Get(k)
}

func (s *levelDBStore) RMW(k []byte, f func([]byte, bool) []byte) error {
	// Stock LevelDB has no atomic RMW; serialize via the global mutex.
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok, err := s.db.Get(k)
	if err != nil {
		return err
	}
	return s.db.Put(k, f(v, ok))
}

func (s *levelDBStore) Scan(start []byte, n int) (int, error) {
	s.mu.Lock()
	//nolint:staticcheck // snapshot acquisition under the global mutex
	s.mu.Unlock()
	return scan(s.db, start, n)
}

func (s *levelDBStore) Metrics() core.Metrics { return s.db.Metrics() }
func (s *levelDBStore) Close() error          { return s.db.Close() }

// ---------------------------------------------------------------------------
// HyperLevelDB model: fine-grained locking increases write concurrency —
// writers take a shared rotation lock plus a per-key stripe, so disjoint
// keys proceed in parallel but pay two lock handoffs; reads behave like
// LevelDB's (brief global-mutex acquisition).

type hyperStore struct {
	db      *core.DB
	rw      sync.RWMutex
	stripes *syncutil.StripedLock
	readMu  sync.Mutex
}

func (s *hyperStore) Put(k, v []byte) error {
	s.rw.RLock()
	s.stripes.Lock(k)
	err := s.db.Put(k, v)
	s.stripes.Unlock(k)
	s.rw.RUnlock()
	return err
}

func (s *hyperStore) Delete(k []byte) error {
	s.rw.RLock()
	s.stripes.Lock(k)
	err := s.db.Delete(k)
	s.stripes.Unlock(k)
	s.rw.RUnlock()
	return err
}

func (s *hyperStore) Get(k []byte) ([]byte, bool, error) {
	s.readMu.Lock()
	//nolint:staticcheck // intentional: model the reference critical section
	s.readMu.Unlock()
	return s.db.Get(k)
}

func (s *hyperStore) RMW(k []byte, f func([]byte, bool) []byte) error {
	s.rw.RLock()
	defer s.rw.RUnlock()
	s.stripes.Lock(k)
	defer s.stripes.Unlock(k)
	v, ok, err := s.db.Get(k)
	if err != nil {
		return err
	}
	return s.db.Put(k, f(v, ok))
}

func (s *hyperStore) Scan(start []byte, n int) (int, error) {
	s.readMu.Lock()
	//nolint:staticcheck
	s.readMu.Unlock()
	return scan(s.db, start, n)
}

func (s *hyperStore) Metrics() core.Metrics { return s.db.Metrics() }
func (s *hyperStore) Close() error          { return s.db.Close() }

// ---------------------------------------------------------------------------
// RocksDB (2014) model: reads avoid locks by caching component references
// in thread-local storage (lock-free in steady state), while writers are
// still admitted one at a time through the write queue.

type rocksStore struct {
	db *core.DB
	mu sync.Mutex
}

func (s *rocksStore) Put(k, v []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.db.Put(k, v)
}

func (s *rocksStore) Delete(k []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.db.Delete(k)
}

// Get is lock-free: the engine's RCU component acquisition stands in for
// RocksDB's thread-local super-version caching.
func (s *rocksStore) Get(k []byte) ([]byte, bool, error) { return s.db.Get(k) }

func (s *rocksStore) RMW(k []byte, f func([]byte, bool) []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok, err := s.db.Get(k)
	if err != nil {
		return err
	}
	return s.db.Put(k, f(v, ok))
}

func (s *rocksStore) Scan(start []byte, n int) (int, error) { return scan(s.db, start, n) }
func (s *rocksStore) Metrics() core.Metrics                 { return s.db.Metrics() }
func (s *rocksStore) Close() error                          { return s.db.Close() }

// ---------------------------------------------------------------------------
// bLSM model: a single-writer store whose spring-and-gear merge scheduler
// bounds write latency by throttling writers in proportion to how far the
// memtable has filled while a merge is still in progress.

type blsmStore struct {
	db      *core.DB
	mu      sync.Mutex
	memSize int64
}

func (s *blsmStore) Put(k, v []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.springAndGear()
	return s.db.Put(k, v)
}

func (s *blsmStore) Delete(k []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.springAndGear()
	return s.db.Delete(k)
}

// springAndGear delays the writer proportionally to memtable fill when a
// merge is in flight, so the memtable never slams into the hard limit —
// bLSM's bounded write-latency discipline.
func (s *blsmStore) springAndGear() {
	fill := s.db.MemtableFillFraction()
	if fill > 0.5 && s.db.MergeInFlight() {
		// Delay grows as the memtable approaches full: zero at 50 % fill,
		// ~100 microseconds per put near 100 %.
		time.Sleep(time.Duration((fill - 0.5) * float64(200*time.Microsecond)))
	}
}

func (s *blsmStore) Get(k []byte) ([]byte, bool, error)    { return s.db.Get(k) }
func (s *blsmStore) Scan(start []byte, n int) (int, error) { return scan(s.db, start, n) }
func (s *blsmStore) Metrics() core.Metrics                 { return s.db.Metrics() }
func (s *blsmStore) Close() error                          { return s.db.Close() }

func (s *blsmStore) RMW(k []byte, f func([]byte, bool) []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok, err := s.db.Get(k)
	if err != nil {
		return err
	}
	return s.db.Put(k, f(v, ok))
}

// ---------------------------------------------------------------------------
// Lock-striped RMW (Fig. 9 competitor): the textbook implementation from
// Gray & Reuter layered on the LevelDB model — every RMW and write takes
// an exclusive per-key-stripe lock; reads and writes otherwise behave like
// LevelDB's.

type stripedStore struct {
	db      *core.DB
	mu      sync.Mutex
	stripes *syncutil.StripedLock
}

func (s *stripedStore) Put(k, v []byte) error {
	s.stripes.Lock(k)
	defer s.stripes.Unlock(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.db.Put(k, v)
}

func (s *stripedStore) Delete(k []byte) error {
	s.stripes.Lock(k)
	defer s.stripes.Unlock(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.db.Delete(k)
}

func (s *stripedStore) Get(k []byte) ([]byte, bool, error) {
	s.mu.Lock()
	//nolint:staticcheck
	s.mu.Unlock()
	return s.db.Get(k)
}

func (s *stripedStore) RMW(k []byte, f func([]byte, bool) []byte) error {
	s.stripes.Lock(k)
	defer s.stripes.Unlock(k)
	v, ok, err := s.db.Get(k)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.db.Put(k, f(v, ok))
}

func (s *stripedStore) Scan(start []byte, n int) (int, error) { return scan(s.db, start, n) }
func (s *stripedStore) Metrics() core.Metrics                 { return s.db.Metrics() }
func (s *stripedStore) Close() error                          { return s.db.Close() }
