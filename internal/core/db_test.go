package core

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"clsm/internal/batch"
	"clsm/internal/storage"
	"clsm/internal/version"
)

func testOptions(fs storage.FS) Options {
	return Options{
		FS:           fs,
		MemtableSize: 64 << 10, // small so tests exercise the merge pipeline
		Disk: version.Options{
			BaseLevelBytes: 256 << 10,
			TableFileSize:  32 << 10,
			BlockSize:      1 << 10,
		},
	}
}

func mustOpen(t *testing.T, fs storage.FS) *DB {
	t.Helper()
	db, err := Open(testOptions(fs))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return db
}

func TestPutGetDelete(t *testing.T) {
	db := mustOpen(t, storage.NewMemFS())
	defer db.Close()

	if err := db.Put([]byte("k"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := db.Get([]byte("k"))
	if err != nil || !ok || string(v) != "v1" {
		t.Fatalf("Get = %q,%v,%v", v, ok, err)
	}
	if err := db.Put([]byte("k"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	v, ok, _ = db.Get([]byte("k"))
	if !ok || string(v) != "v2" {
		t.Fatalf("Get after overwrite = %q,%v", v, ok)
	}
	if err := db.Delete([]byte("k")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := db.Get([]byte("k")); ok {
		t.Fatal("deleted key still visible")
	}
	if _, ok, _ := db.Get([]byte("absent")); ok {
		t.Fatal("absent key found")
	}
}

func TestFillFlushCompactVerify(t *testing.T) {
	db := mustOpen(t, storage.NewMemFS())
	defer db.Close()

	const n = 20000
	val := bytes.Repeat([]byte("x"), 64)
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key%06d", i))
		if err := db.Put(k, append(val, k...)); err != nil {
			t.Fatal(err)
		}
	}
	m := db.Metrics()
	if m.Flushes == 0 {
		t.Fatal("no flush happened despite tiny memtable")
	}
	// Every key must be readable through the full mem/imm/disk stack.
	for i := 0; i < n; i += 97 {
		k := []byte(fmt.Sprintf("key%06d", i))
		v, ok, err := db.Get(k)
		if err != nil || !ok {
			t.Fatalf("Get(%s) = %v,%v (metrics %+v)", k, ok, err, m)
		}
		if !bytes.HasSuffix(v, k) {
			t.Fatalf("Get(%s) returned wrong value", k)
		}
	}
	if err := db.CompactRange(); err != nil {
		t.Fatal(err)
	}
	m = db.Metrics()
	if m.Compactions == 0 {
		t.Fatal("CompactRange did no compactions")
	}
	if m.LevelSize[0] > 4 {
		t.Errorf("L0 still has %d files after full compaction", m.LevelSize[0])
	}
	for i := 0; i < n; i += 97 {
		k := []byte(fmt.Sprintf("key%06d", i))
		if _, ok, _ := db.Get(k); !ok {
			t.Fatalf("key %s lost after compaction", k)
		}
	}
}

func TestOverwritesAndTombstonesAcrossFlush(t *testing.T) {
	db := mustOpen(t, storage.NewMemFS())
	defer db.Close()
	for i := 0; i < 100; i++ {
		k := []byte(fmt.Sprintf("k%03d", i))
		db.Put(k, []byte("old"))
	}
	if err := db.CompactRange(); err != nil {
		t.Fatal(err)
	}
	// Overwrite half, delete a quarter, then flush again.
	for i := 0; i < 100; i += 2 {
		db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("new"))
	}
	for i := 0; i < 100; i += 4 {
		db.Delete([]byte(fmt.Sprintf("k%03d", i)))
	}
	if err := db.CompactRange(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		k := []byte(fmt.Sprintf("k%03d", i))
		v, ok, _ := db.Get(k)
		switch {
		case i%4 == 0:
			if ok {
				t.Fatalf("%s should be deleted", k)
			}
		case i%2 == 0:
			if !ok || string(v) != "new" {
				t.Fatalf("%s = %q,%v want new", k, v, ok)
			}
		default:
			if !ok || string(v) != "old" {
				t.Fatalf("%s = %q,%v want old", k, v, ok)
			}
		}
	}
}

func TestReopenRecoversWAL(t *testing.T) {
	fs := storage.NewMemFS()
	db := mustOpen(t, fs)
	for i := 0; i < 500; i++ {
		db.Put([]byte(fmt.Sprintf("k%04d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	db.Delete([]byte("k0100"))
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := mustOpen(t, fs)
	defer db2.Close()
	for i := 0; i < 500; i++ {
		k := []byte(fmt.Sprintf("k%04d", i))
		v, ok, err := db2.Get(k)
		if err != nil {
			t.Fatal(err)
		}
		if i == 100 {
			if ok {
				t.Fatal("tombstone lost in recovery")
			}
			continue
		}
		if !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("recovered Get(%s) = %q,%v", k, v, ok)
		}
	}
}

func TestReopenAfterFlushAndCompact(t *testing.T) {
	fs := storage.NewMemFS()
	db := mustOpen(t, fs)
	const n = 5000
	for i := 0; i < n; i++ {
		db.Put([]byte(fmt.Sprintf("key%06d", i)), []byte(fmt.Sprintf("val%d", i)))
	}
	if err := db.CompactRange(); err != nil {
		t.Fatal(err)
	}
	// More writes after compaction stay in the WAL.
	for i := 0; i < 100; i++ {
		db.Put([]byte(fmt.Sprintf("fresh%03d", i)), []byte("w"))
	}
	db.Close()

	db2 := mustOpen(t, fs)
	defer db2.Close()
	for i := 0; i < n; i += 131 {
		k := []byte(fmt.Sprintf("key%06d", i))
		v, ok, _ := db2.Get(k)
		if !ok || string(v) != fmt.Sprintf("val%d", i) {
			t.Fatalf("Get(%s) = %q,%v", k, v, ok)
		}
	}
	for i := 0; i < 100; i++ {
		if _, ok, _ := db2.Get([]byte(fmt.Sprintf("fresh%03d", i))); !ok {
			t.Fatalf("post-compaction write fresh%03d lost", i)
		}
	}
}

func TestTruncatedWALTail(t *testing.T) {
	fs := storage.NewMemFS()
	db := mustOpen(t, fs)
	for i := 0; i < 200; i++ {
		db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v"))
	}
	db.Close()

	// Simulate a crash that tore the last few bytes of the newest WAL.
	names, _ := fs.List()
	for _, name := range names {
		if kind, _, ok := version.ParseFileName(name); ok && kind == version.KindLog {
			data, _ := fs.ReadFile(name)
			if len(data) > 10 {
				fs.WriteFile(name, data[:len(data)-7])
			}
		}
	}
	db2, err := Open(testOptions(fs))
	if err != nil {
		t.Fatalf("reopen with torn WAL: %v", err)
	}
	defer db2.Close()
	// The intact prefix must be recovered.
	found := 0
	for i := 0; i < 200; i++ {
		if _, ok, _ := db2.Get([]byte(fmt.Sprintf("k%03d", i))); ok {
			found++
		}
	}
	if found < 190 {
		t.Fatalf("only %d/200 keys survived torn-tail recovery", found)
	}
}

func TestAtomicBatch(t *testing.T) {
	db := mustOpen(t, storage.NewMemFS())
	defer db.Close()
	var b batch.Batch
	b.Put([]byte("a"), []byte("1"))
	b.Put([]byte("b"), []byte("2"))
	b.Delete([]byte("a"))
	if err := db.Write(&b); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := db.Get([]byte("a")); ok {
		t.Fatal("batch delete did not apply last")
	}
	if v, ok, _ := db.Get([]byte("b")); !ok || string(v) != "2" {
		t.Fatal("batch put lost")
	}
}

// Snapshot isolation: a snapshot never observes writes after its creation,
// and atomic batches are never observed torn.
func TestSnapshotConsistency(t *testing.T) {
	db := mustOpen(t, storage.NewMemFS())
	defer db.Close()

	db.Put([]byte("x"), []byte("0"))
	db.Put([]byte("y"), []byte("0"))

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer keeps x and y equal via atomic batches
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			i++
			var b batch.Batch
			val := []byte(fmt.Sprintf("%d", i))
			b.Put([]byte("x"), val)
			b.Put([]byte("y"), val)
			if err := db.Write(&b); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	for round := 0; round < 300; round++ {
		snap, err := db.GetSnapshot()
		if err != nil {
			t.Fatal(err)
		}
		vx, okx, _ := snap.Get([]byte("x"))
		vy, oky, _ := snap.Get([]byte("y"))
		if !okx || !oky || !bytes.Equal(vx, vy) {
			t.Fatalf("torn snapshot: x=%q(%v) y=%q(%v)", vx, okx, vy, oky)
		}
		// Repeated reads within a snapshot are stable.
		vx2, _, _ := snap.Get([]byte("x"))
		if !bytes.Equal(vx, vx2) {
			t.Fatalf("snapshot read not repeatable: %q then %q", vx, vx2)
		}
		snap.Close()
	}
	close(stop)
	wg.Wait()
}

func TestSnapshotIgnoresLaterWrites(t *testing.T) {
	db := mustOpen(t, storage.NewMemFS())
	defer db.Close()
	db.Put([]byte("k"), []byte("before"))
	snap, _ := db.GetSnapshot()
	defer snap.Close()
	db.Put([]byte("k"), []byte("after"))
	db.Put([]byte("new"), []byte("n"))

	if v, ok, _ := snap.Get([]byte("k")); !ok || string(v) != "before" {
		t.Fatalf("snapshot sees %q", v)
	}
	if _, ok, _ := snap.Get([]byte("new")); ok {
		t.Fatal("snapshot sees later insert")
	}
	// Live reads see the new state.
	if v, ok, _ := db.Get([]byte("k")); !ok || string(v) != "after" {
		t.Fatalf("live read sees %q", v)
	}
}

func TestIteratorBasics(t *testing.T) {
	db := mustOpen(t, storage.NewMemFS())
	defer db.Close()
	for i := 0; i < 100; i++ {
		db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	db.Delete([]byte("k050"))

	it, err := db.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	count := 0
	var last []byte
	for it.First(); it.Valid(); it.Next() {
		if last != nil && bytes.Compare(last, it.Key()) >= 0 {
			t.Fatal("iterator keys not strictly ascending")
		}
		if string(it.Key()) == "k050" {
			t.Fatal("iterator exposed deleted key")
		}
		last = append(last[:0], it.Key()...)
		count++
	}
	if count != 99 {
		t.Fatalf("iterated %d keys, want 99", count)
	}

	it.Seek([]byte("k042"))
	if !it.Valid() || string(it.Key()) != "k042" {
		t.Fatalf("Seek landed on %q", it.Key())
	}
	it.Seek([]byte("k04x"))
	if !it.Valid() || string(it.Key()) != "k051" { // k050 deleted -> k051
		t.Fatalf("Seek(k04x) landed on %q", it.Key())
	}
}

func TestIteratorAcrossComponents(t *testing.T) {
	db := mustOpen(t, storage.NewMemFS())
	defer db.Close()
	// disk layer
	for i := 0; i < 100; i++ {
		db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("disk"))
	}
	if err := db.CompactRange(); err != nil {
		t.Fatal(err)
	}
	// newer versions in memtable for a subset
	for i := 0; i < 100; i += 3 {
		db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("mem"))
	}
	it, _ := db.NewIterator()
	defer it.Close()
	n := 0
	for it.First(); it.Valid(); it.Next() {
		want := "disk"
		var idx int
		fmt.Sscanf(string(it.Key()), "k%d", &idx)
		if idx%3 == 0 {
			want = "mem"
		}
		if string(it.Value()) != want {
			t.Fatalf("%s = %q, want %q", it.Key(), it.Value(), want)
		}
		n++
	}
	if n != 100 {
		t.Fatalf("saw %d keys", n)
	}
}

func TestRangeQuery(t *testing.T) {
	db := mustOpen(t, storage.NewMemFS())
	defer db.Close()
	for i := 0; i < 50; i++ {
		db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v"))
	}
	it, _ := db.NewIterator()
	defer it.Close()
	ks, _, err := it.Range([]byte("k010"), []byte("k020"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ks) != 10 || string(ks[0]) != "k010" || string(ks[9]) != "k019" {
		t.Fatalf("Range returned %d keys [%s..]", len(ks), ks[0])
	}
	ks, _, _ = it.Range([]byte("k000"), nil, 5)
	if len(ks) != 5 {
		t.Fatalf("limited Range returned %d keys", len(ks))
	}
}

func TestRMWCounter(t *testing.T) {
	db := mustOpen(t, storage.NewMemFS())
	defer db.Close()
	incr := func(old []byte, exists bool) []byte {
		n := 0
		if exists {
			fmt.Sscanf(string(old), "%d", &n)
		}
		return []byte(fmt.Sprintf("%d", n+1))
	}
	const workers = 8
	const per = 300
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := db.RMW([]byte("counter"), incr); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	v, ok, _ := db.Get([]byte("counter"))
	if !ok {
		t.Fatal("counter missing")
	}
	var got int
	fmt.Sscanf(string(v), "%d", &got)
	if got != workers*per {
		t.Fatalf("counter = %d, want %d (lost RMW updates)", got, workers*per)
	}
}

// RMW must stay atomic across memtable rotations and when the base value
// lives on disk.
func TestRMWAcrossFlush(t *testing.T) {
	db := mustOpen(t, storage.NewMemFS())
	defer db.Close()
	db.Put([]byte("acc"), []byte("0"))
	if err := db.CompactRange(); err != nil { // value now on disk
		t.Fatal(err)
	}
	incr := func(old []byte, exists bool) []byte {
		n := 0
		if exists {
			fmt.Sscanf(string(old), "%d", &n)
		}
		return []byte(fmt.Sprintf("%d", n+1))
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // background noise to force rotations
		defer wg.Done()
		filler := bytes.Repeat([]byte("f"), 512)
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			i++
			db.Put([]byte(fmt.Sprintf("noise%08d", i)), filler)
		}
	}()
	const workers = 4
	const per = 200
	var rmwWG sync.WaitGroup
	for w := 0; w < workers; w++ {
		rmwWG.Add(1)
		go func() {
			defer rmwWG.Done()
			for i := 0; i < per; i++ {
				if err := db.RMW([]byte("acc"), incr); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	rmwWG.Wait()
	close(stop)
	wg.Wait()
	v, ok, _ := db.Get([]byte("acc"))
	if !ok {
		t.Fatal("acc missing")
	}
	var got int
	fmt.Sscanf(string(v), "%d", &got)
	if got != workers*per {
		t.Fatalf("acc = %d, want %d", got, workers*per)
	}
}

func TestConcurrentReadersWritersScanners(t *testing.T) {
	db := mustOpen(t, storage.NewMemFS())
	defer db.Close()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var writes atomic.Uint64

	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				i++
				k := []byte(fmt.Sprintf("w%d-%06d", w, i))
				if err := db.Put(k, k); err != nil {
					t.Error(err)
					return
				}
				writes.Add(1)
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := []byte(fmt.Sprintf("w0-%06d", 1))
				if v, ok, err := db.Get(k); err != nil {
					t.Error(err)
					return
				} else if ok && !bytes.Equal(v, k) {
					t.Errorf("Get returned wrong value %q", v)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			it, err := db.NewIterator()
			if err != nil {
				t.Error(err)
				return
			}
			var last []byte
			for it.First(); it.Valid(); it.Next() {
				if last != nil && bytes.Compare(last, it.Key()) >= 0 {
					t.Error("scan order violation")
					it.Close()
					return
				}
				last = append(last[:0], it.Key()...)
			}
			if err := it.Err(); err != nil {
				t.Error(err)
			}
			it.Close()
		}
	}()
	time.Sleep(500 * time.Millisecond)
	close(stop)
	wg.Wait()
	if err := db.backgroundErr(); err != nil {
		t.Fatal(err)
	}
	if writes.Load() == 0 {
		t.Fatal("no writes happened")
	}
}

func TestCloseIsIdempotentAndRejectsOps(t *testing.T) {
	db := mustOpen(t, storage.NewMemFS())
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != ErrClosed {
		t.Fatalf("second Close = %v", err)
	}
	if err := db.Put([]byte("k"), []byte("v")); err != ErrClosed {
		t.Fatalf("Put after Close = %v", err)
	}
	if _, _, err := db.Get([]byte("k")); err != ErrClosed {
		t.Fatalf("Get after Close = %v", err)
	}
}

func TestSnapshotPinsVersionsAcrossMerge(t *testing.T) {
	db := mustOpen(t, storage.NewMemFS())
	defer db.Close()
	db.Put([]byte("pin"), []byte("old"))
	snap, _ := db.GetSnapshot()
	defer snap.Close()

	db.Put([]byte("pin"), []byte("new"))
	// Force rotation+flush+compaction; the merge must keep the snapshot's
	// version alive.
	if err := db.CompactRange(); err != nil {
		t.Fatal(err)
	}
	if err := db.CompactRange(); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := snap.Get([]byte("pin")); !ok || string(v) != "old" {
		t.Fatalf("snapshot lost pinned version: %q,%v", v, ok)
	}
	if v, _, _ := db.Get([]byte("pin")); string(v) != "new" {
		t.Fatalf("live read = %q", v)
	}
}

func TestMergeDropsObsoleteVersions(t *testing.T) {
	db := mustOpen(t, storage.NewMemFS())
	defer db.Close()
	for round := 0; round < 10; round++ {
		for i := 0; i < 50; i++ {
			db.Put([]byte(fmt.Sprintf("k%02d", i)), []byte(fmt.Sprintf("r%d", round)))
		}
		if err := db.CompactRange(); err != nil {
			t.Fatal(err)
		}
	}
	// After repeated full compactions with no snapshots, at most one
	// version per key should survive on disk.
	m := db.Metrics()
	v := db.versions.Current()
	defer v.Unref()
	total := 0
	for _, level := range v.Levels {
		for _, f := range level {
			total += f.Entries
		}
	}
	if total > 60 { // 50 keys + slack for racing flushes
		t.Fatalf("disk holds %d entries for 50 keys; version GC failed (metrics %+v)", total, m)
	}
}

func TestLinearizableSnapshotOption(t *testing.T) {
	opts := testOptions(storage.NewMemFS())
	opts.LinearizableSnapshots = true
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.Put([]byte("k"), []byte("v1"))
	now := db.Oracle().Now()
	snap, _ := db.GetSnapshot()
	defer snap.Close()
	if snap.TS() < now {
		t.Fatalf("linearizable snapshot ts %d below counter %d", snap.TS(), now)
	}
	if v, ok, _ := snap.Get([]byte("k")); !ok || string(v) != "v1" {
		t.Fatalf("linearizable snapshot missed committed write: %q,%v", v, ok)
	}
}

func TestDisableWAL(t *testing.T) {
	opts := testOptions(storage.NewMemFS())
	opts.DisableWAL = true
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 1000; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%04d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok, _ := db.Get([]byte("k0500")); !ok {
		t.Fatal("read-your-write failed with WAL disabled")
	}
}

func TestSyncWrites(t *testing.T) {
	fs := storage.NewMemFS()
	opts := testOptions(fs)
	opts.SyncWrites = true
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	db.Put([]byte("durable"), []byte("yes"))
	db.Close()
	db2 := mustOpen(t, fs)
	defer db2.Close()
	if v, ok, _ := db2.Get([]byte("durable")); !ok || string(v) != "yes" {
		t.Fatalf("sync write lost: %q,%v", v, ok)
	}
}
