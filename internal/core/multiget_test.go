package core

import (
	"errors"
	"fmt"
	"testing"

	"clsm/internal/storage"
)

// TestMultiGetMatchesGet reads a batch spanning every component — disk,
// L0, memtable — plus deleted and absent keys, and checks each result
// against the single-key path.
func TestMultiGetMatchesGet(t *testing.T) {
	db := boundedTestDB(t) // layered: disk + L0 (with deletes) + memtable

	var ks [][]byte
	for i := 0; i < 200; i += 2 {
		ks = append(ks, []byte(fmt.Sprintf("k%04d", i)))
	}
	ks = append(ks, []byte("nope"), []byte("k9999"))

	got, err := db.MultiGet(ks)
	if err != nil {
		t.Fatalf("MultiGet: %v", err)
	}
	if len(got) != len(ks) {
		t.Fatalf("MultiGet returned %d results for %d keys", len(got), len(ks))
	}
	for i, k := range ks {
		v, ok, err := db.Get(k)
		if err != nil {
			t.Fatalf("Get(%q): %v", k, err)
		}
		if got[i].Exists != ok {
			t.Errorf("key %q: MultiGet exists=%v, Get ok=%v", k, got[i].Exists, ok)
		}
		if string(got[i].Data) != string(v) {
			t.Errorf("key %q: MultiGet=%q, Get=%q", k, got[i].Data, v)
		}
		if !got[i].Exists && got[i].Data != nil {
			t.Errorf("key %q: absent result carries data %q", k, got[i].Data)
		}
	}
}

// TestMultiGetSnapshotConsistency pins the batch to the snapshot time:
// writes and deletes after the snapshot stay invisible to the snapshot
// batch while the live batch sees them.
func TestMultiGetSnapshotConsistency(t *testing.T) {
	db := mustOpen(t, storage.NewMemFS())
	defer db.Close()
	db.Put([]byte("a"), []byte("old-a"))
	db.Put([]byte("b"), []byte("old-b"))

	snap, err := db.GetSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()

	db.Put([]byte("a"), []byte("new-a"))
	db.Delete([]byte("b"))
	db.Put([]byte("c"), []byte("new-c"))

	ks := [][]byte{[]byte("a"), []byte("b"), []byte("c")}
	old, err := snap.MultiGet(ks)
	if err != nil {
		t.Fatal(err)
	}
	if string(old[0].Data) != "old-a" || !old[1].Exists || string(old[1].Data) != "old-b" || old[2].Exists {
		t.Fatalf("snapshot batch saw post-snapshot state: %+v", old)
	}
	now, err := db.MultiGet(ks)
	if err != nil {
		t.Fatal(err)
	}
	if string(now[0].Data) != "new-a" || now[1].Exists || !now[2].Exists {
		t.Fatalf("live batch missed post-snapshot state: %+v", now)
	}
}

// TestMultiGetEdgeCases covers the degenerate inputs and the error
// contract on dead handles.
func TestMultiGetEdgeCases(t *testing.T) {
	db := mustOpen(t, storage.NewMemFS())
	db.Put([]byte("a"), []byte("v"))

	if out, err := db.MultiGet(nil); err != nil || out != nil {
		t.Fatalf("MultiGet(nil) = (%v, %v), want (nil, nil)", out, err)
	}
	// Duplicate keys each get their own slot.
	dup, err := db.MultiGet([][]byte{[]byte("a"), []byte("a")})
	if err != nil {
		t.Fatal(err)
	}
	if !dup[0].Exists || !dup[1].Exists || string(dup[1].Data) != "v" {
		t.Fatalf("duplicate keys: %+v", dup)
	}

	snap, err := db.GetSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	snap.Close()
	if _, err := snap.MultiGet([][]byte{[]byte("a")}); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed snapshot MultiGet = %v, want ErrClosed", err)
	}

	db.Close()
	if _, err := db.MultiGet([][]byte{[]byte("a")}); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed DB MultiGet = %v, want ErrClosed", err)
	}
}
