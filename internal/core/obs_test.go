package core

import (
	"fmt"
	"testing"
	"time"

	"clsm/internal/obs"
	"clsm/internal/storage"
)

// TestEventOrdering drives the engine through flushes and compactions and
// asserts the trace is well-formed: a flush end never precedes its start,
// per-level compaction starts/ends alternate, stall begin/end pair up,
// and sequence numbers/timestamps are monotone.
func TestEventOrdering(t *testing.T) {
	o := obs.New()
	opts := testOptions(storage.NewMemFS())
	opts.Observer = o
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}

	val := make([]byte, 512)
	for i := 0; i < 2000; i++ {
		if err := db.Put([]byte(fmt.Sprintf("key-%06d", i)), val); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.CompactRange(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	events := o.Trace.Events()
	if len(events) == 0 {
		t.Fatal("no events recorded across flushes and compactions")
	}

	var flushes, compactions int
	flushOpen := false
	compactOpen := map[int]bool{}
	stallOpen := map[obs.StallCause]int{}
	var lastSeq uint64
	var lastTime time.Time
	for i, e := range events {
		if e.Seq <= lastSeq {
			t.Fatalf("event %d: seq %d not increasing (prev %d)", i, e.Seq, lastSeq)
		}
		lastSeq = e.Seq
		if e.Time.Before(lastTime) {
			t.Fatalf("event %d: time moves backward", i)
		}
		lastTime = e.Time

		switch e.Type {
		case obs.EvFlushStart:
			if flushOpen {
				t.Fatalf("event %d: flush start while a flush is open", i)
			}
			flushOpen = true
		case obs.EvFlushEnd:
			if !flushOpen {
				t.Fatalf("event %d: flush end precedes its start", i)
			}
			flushOpen = false
			flushes++
			if e.Bytes == 0 {
				t.Errorf("event %d: flush end carries no bytes", i)
			}
		case obs.EvCompactionStart:
			if compactOpen[e.Level] {
				t.Fatalf("event %d: L%d compaction start while one is open", i, e.Level)
			}
			compactOpen[e.Level] = true
		case obs.EvCompactionEnd:
			if !compactOpen[e.Level] {
				t.Fatalf("event %d: L%d compaction end precedes its start", i, e.Level)
			}
			compactOpen[e.Level] = false
			compactions++
		case obs.EvStallBegin:
			stallOpen[e.Cause]++
		case obs.EvStallEnd:
			if stallOpen[e.Cause] == 0 {
				t.Fatalf("event %d: stall end (%s) precedes its begin", i, e.Cause)
			}
			stallOpen[e.Cause]--
		}
	}
	if flushes == 0 {
		t.Error("no flush episodes recorded")
	}
	if compactions == 0 {
		t.Error("no compaction episodes recorded (CompactRange ran)")
	}
}

// TestObserverRecordsOps checks the per-op histograms and substrate
// counters actually tick when the corresponding surfaces are exercised.
func TestObserverRecordsOps(t *testing.T) {
	db := mustOpen(t, storage.NewMemFS())
	defer db.Close()
	o := db.Observer()

	if err := db.Put([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Get([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := db.RMW([]byte("c"), func(old []byte, ok bool) []byte { return []byte("x") }); err != nil {
		t.Fatal(err)
	}
	snap, err := db.GetSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	snap.Close()
	db.Put([]byte("d"), []byte("1"))
	db.Put([]byte("e"), []byte("2"))
	it, err := db.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	for it.First(); it.Valid(); it.Next() {
	}
	it.Close()

	checks := []struct {
		op   obs.Op
		want uint64
	}{
		{obs.OpPut, 3}, {obs.OpGet, 1}, {obs.OpDelete, 1}, {obs.OpRMW, 1},
		{obs.OpGetSnapshot, 2}, // explicit + iterator's implicit snapshot
	}
	for _, c := range checks {
		if got := o.Op(c.op).Count(); got != c.want {
			t.Errorf("%s samples = %d, want %d", c.op, got, c.want)
		}
	}
	if got := o.Op(obs.OpIterNext).Count(); got < 2 {
		t.Errorf("iter_next samples = %d, want >= 2", got)
	}
	if got := o.WALAppends.Load(); got == 0 {
		t.Error("WAL appends not counted")
	}
	m := db.Metrics()
	if m.CacheHits != o.CacheHits.Load() || m.CacheMisses != o.CacheMisses.Load() {
		t.Error("Metrics cache counters diverge from observer")
	}
}

// TestEventSinkDelivery wires a sink through core options and checks
// events arrive synchronously and in order.
func TestEventSinkDelivery(t *testing.T) {
	o := obs.New()
	var seqs []uint64
	o.Trace.SetSink(func(e obs.Event) { seqs = append(seqs, e.Seq) })
	opts := testOptions(storage.NewMemFS())
	opts.Observer = o
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	val := make([]byte, 512)
	for i := 0; i < 500; i++ {
		db.Put([]byte(fmt.Sprintf("k%05d", i)), val)
	}
	db.CompactRange()
	db.Close()
	if len(seqs) == 0 {
		t.Fatal("sink saw no events")
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] != seqs[i-1]+1 {
			t.Fatalf("sink order broken at %d: %d after %d", i, seqs[i], seqs[i-1])
		}
	}
}
