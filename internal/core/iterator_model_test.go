package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"clsm/internal/storage"
)

// modelIter is a reference implementation of the iterator semantics over a
// sorted snapshot of the model map.
type modelIter struct {
	keys []string
	vals map[string]string
	pos  int // index into keys; -1 before first, len(keys) after last
	ok   bool
}

func newModelIter(m map[string]string) *modelIter {
	it := &modelIter{vals: m}
	for k := range m {
		it.keys = append(it.keys, k)
	}
	sort.Strings(it.keys)
	return it
}

func (m *modelIter) First() { m.pos = 0; m.ok = m.pos < len(m.keys) }
func (m *modelIter) Last()  { m.pos = len(m.keys) - 1; m.ok = m.pos >= 0 }
func (m *modelIter) Seek(k string) {
	m.pos = sort.SearchStrings(m.keys, k)
	m.ok = m.pos < len(m.keys)
}
func (m *modelIter) SeekForPrev(k string) {
	i := sort.SearchStrings(m.keys, k)
	if i < len(m.keys) && m.keys[i] == k {
		m.pos = i
	} else {
		m.pos = i - 1
	}
	m.ok = m.pos >= 0 && m.pos < len(m.keys)
}
func (m *modelIter) Next() {
	if m.ok {
		m.pos++
		m.ok = m.pos < len(m.keys)
	}
}
func (m *modelIter) Prev() {
	if m.ok {
		m.pos--
		m.ok = m.pos >= 0
	}
}
func (m *modelIter) Valid() bool { return m.ok }
func (m *modelIter) Key() string { return m.keys[m.pos] }
func (m *modelIter) Val() string { return m.vals[m.keys[m.pos]] }

// TestIteratorOpSequenceModel drives random positioning-op sequences
// against both the engine iterator and the reference model and demands
// identical observations after every step — the strongest check on the
// bidirectional iterator's direction-switch logic.
func TestIteratorOpSequenceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	for trial := 0; trial < 6; trial++ {
		db := mustOpen(t, storage.NewMemFS())
		model := map[string]string{}
		// Data spread across all components with deletes and overwrites.
		nKeys := 50 + rng.Intn(300)
		for i := 0; i < nKeys*4; i++ {
			k := fmt.Sprintf("k%04d", rng.Intn(nKeys)*3) // gaps between keys
			if rng.Intn(8) == 0 {
				db.Delete([]byte(k))
				delete(model, k)
			} else {
				v := fmt.Sprintf("v%d-%d", trial, i)
				db.Put([]byte(k), []byte(v))
				model[k] = v
			}
			switch rng.Intn(50) {
			case 0:
				db.CompactRange()
			case 1:
				db.forceFlush()
			}
		}

		it, err := db.NewIterator()
		if err != nil {
			t.Fatal(err)
		}
		ref := newModelIter(model)
		started := false

		check := func(op string) {
			t.Helper()
			if it.Valid() != ref.Valid() {
				t.Fatalf("trial %d after %s: valid=%v model=%v", trial, op, it.Valid(), ref.Valid())
			}
			if it.Valid() {
				if string(it.Key()) != ref.Key() || string(it.Value()) != ref.Val() {
					t.Fatalf("trial %d after %s: got %s=%s, model %s=%s",
						trial, op, it.Key(), it.Value(), ref.Key(), ref.Val())
				}
			}
		}

		for step := 0; step < 400; step++ {
			var op string
			switch r := rng.Intn(10); {
			case r < 1 || !started:
				op = "First"
				it.First()
				ref.First()
				started = true
			case r < 2:
				op = "Last"
				it.Last()
				ref.Last()
			case r < 4:
				probe := fmt.Sprintf("k%04d", rng.Intn(nKeys*3))
				op = "Seek(" + probe + ")"
				it.Seek([]byte(probe))
				ref.Seek(probe)
			case r < 5:
				probe := fmt.Sprintf("k%04d", rng.Intn(nKeys*3))
				op = "SeekForPrev(" + probe + ")"
				it.SeekForPrev([]byte(probe))
				ref.SeekForPrev(probe)
			case r < 8:
				if !it.Valid() {
					continue
				}
				op = "Next"
				it.Next()
				ref.Next()
			default:
				if !it.Valid() {
					continue
				}
				op = "Prev"
				it.Prev()
				ref.Prev()
			}
			check(op)
		}
		it.Close()
		db.Close()
	}
}
