package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"clsm/internal/cache"
	"clsm/internal/compaction"
	"clsm/internal/health"
	"clsm/internal/memtable"
	"clsm/internal/obs"
	"clsm/internal/oracle"
	"clsm/internal/scheduler"
	"clsm/internal/sstable"
	"clsm/internal/storage"
	"clsm/internal/syncutil"
	"clsm/internal/version"
	"clsm/internal/vlog"
	"clsm/internal/wal"
)

// ErrClosed is returned by operations on a closed engine.
var ErrClosed = errors.New("clsm: database closed")

// DB is the cLSM engine. All methods are safe for concurrent use.
type DB struct {
	opts Options
	fs   storage.FS

	// obs is the engine's observability substrate (always non-nil after
	// Open): per-op latency histograms, substrate counters, event trace.
	obs *obs.Observer

	// lock is the paper's shared-exclusive Lock: shared by puts, RMWs and
	// getSnap; exclusive in beforeMerge/afterMerge and atomic batches.
	lock syncutil.SharedExclusive

	oracle *oracle.Oracle

	// mem and imm are the paper's Pm and P'm; versions.Current() is Pd.
	mem atomic.Pointer[memtable.Table]
	imm atomic.Pointer[memtable.Table]

	// log is the WAL front end of the current memtable. Swapped together
	// with mem under the exclusive lock; accessed under the shared lock.
	log atomic.Pointer[wal.Logger]

	versions  *version.Set
	compactor *compaction.Compactor
	blocks    *cache.Cache

	// vlog is the segmented value log (docs/VALUELOG.md). Always open —
	// a store whose threshold was lowered to 0 must still dereference the
	// pointers earlier incarnations wrote — but appends only happen when
	// Options.ValueThreshold > 0. vlogGCMu serializes GC segment rewrites
	// (the scheduler's single vlog-gc slot and the synchronous
	// CompactValueLog entry point contend on it).
	vlog     *vlog.Log
	vlogGCMu sync.Mutex

	// memBudget is the memtable spill threshold. It starts at
	// Options.MemtableSize and can be moved at runtime by an external
	// memory governor (SetMemtableBudget) arbitrating one byte budget
	// across shards and the shared block cache.
	memBudget atomic.Int64

	// Background machinery. sched is the unified scheduler owning every
	// flush and compaction worker; throttle is the write-path admission
	// token bucket its planner auto-tunes. legacyGate selects the
	// historical binary L0 slowdown/stop gate instead of the throttle
	// (SchedulerProfile "legacy").
	sched      *scheduler.Scheduler
	throttle   *scheduler.Throttle
	legacyGate bool
	// lastPlanDebt is the previous planner pass's debt signal; its trend
	// (growing vs draining) picks decay vs hold in tuneThrottle. wallTicks
	// counts consecutive passes spent at the memtable wall, distinguishing
	// a rotation-edge graze from a held wall. Both owned by the planner
	// goroutine.
	lastPlanDebt uint64
	wallTicks    int
	// drainEWMA estimates the disk's recent flush drain rate (bytes/s,
	// exponentially smoothed); it ceilings rate recovery while a backlog
	// remains so the controller cannot climb far past what the disk
	// absorbs. lastFlushBytes/lastDrainAt are its sampling state. All
	// owned by the planner goroutine.
	drainEWMA      float64
	lastFlushBytes uint64
	lastDrainAt    time.Time
	flushMu        sync.Mutex // serializes memtable rotation cycles
	closing        chan struct{}
	bg             sync.WaitGroup
	closed         atomic.Bool
	bgErr          atomic.Pointer[error]
	levelBusy      [version.NumLevels]bool
	busyMu         sync.Mutex

	// Per-origin retry backoffs. Each is owned by at most one running job
	// at a time (the scheduler serializes same-key jobs; Backoff is not
	// concurrency-safe).
	flushBoff *health.Backoff
	levelBoff [version.NumLevels]*health.Backoff
	seekBoff  *health.Backoff
	vlogBoff  *health.Backoff

	// Prebuilt job closures, so the planner submits without allocating a
	// fresh closure per pass (the Job copy itself only allocates when new
	// work is actually queued). vlogGCSkip exempts the active value-log
	// segment from GC candidate selection.
	flushRun    func()
	seekRun     func()
	vlogGCRun   func()
	vlogGCSkip  func(num uint64) bool
	compactRuns [version.NumLevels]func()

	// health is the background-error state machine: transient faults
	// degrade (retry with backoff), corruption quarantines to read-only,
	// fatal errors keep the historical sticky poisoning via bgErr.
	// classifier is the monitor's error taxonomy, kept for foreground
	// paths that must classify without driving the state machine.
	health     *health.Monitor
	classifier health.Classifier

	// immGone is broadcast (closed and replaced) whenever the immutable
	// memtable finishes merging, waking stalled writers.
	immGone   atomic.Pointer[chan struct{}]
	l0Relaxed atomic.Pointer[chan struct{}]

	// resumed is broadcast on every return to Healthy (auto-resume or an
	// explicit Resume call) so workers parked in a backoff wait retry
	// immediately instead of sleeping out their delay.
	resumed atomic.Pointer[chan struct{}]

	// TTL-tracked snapshot handles (Options.SnapshotTTL).
	snapMu   sync.Mutex
	ttlSnaps []*Snapshot

	metrics struct {
		puts, gets, deletes, rmws, rmwRetries atomic.Uint64
		txns, txnConflicts                    atomic.Uint64
		snapshots, flushes, compactions       atomic.Uint64
		flushBytes, compactionBytes           atomic.Uint64
		stallNanos, flushNanos                atomic.Int64
		// writeBytes is the cumulative logical user-write volume
		// (key+value bytes of puts, deletes, batches, RMWs) — the
		// governor's per-shard write-pressure signal.
		writeBytes atomic.Uint64
		// vlogGCRuns counts completed value-log GC segment rewrites.
		vlogGCRuns atomic.Uint64
	}
}

// Open creates or recovers an engine. Nonsensical options fail fast with a
// wrapped ErrInvalidOptions before any file is touched.
func Open(opts Options) (*DB, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts = opts.WithDefaults()
	// Validate ran on the raw options; a trigger pair can also invert when
	// only one side was set and the default fills the other.
	if opts.L0StopTrigger < opts.L0SlowdownTrigger {
		return nil, fmt.Errorf("%w: L0StopTrigger (%d) < L0SlowdownTrigger (%d) after defaults",
			ErrInvalidOptions, opts.L0StopTrigger, opts.L0SlowdownTrigger)
	}
	prof, err := scheduler.ProfileByName(opts.SchedulerProfile)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidOptions, err)
	}
	db := &DB{
		opts:       opts,
		fs:         opts.FS,
		obs:        opts.Observer,
		oracle:     oracle.New(),
		closing:    make(chan struct{}),
		legacyGate: prof.Legacy,
	}
	db.throttle = scheduler.NewThrottle(prof, opts.WriteRateLimit)
	// A user rate limit pre-activates the bucket; mirror it into the gauge
	// so the export is correct before the tuner's first change.
	db.obs.ThrottleRate.Store(uint64(db.throttle.Rate()))
	db.memBudget.Store(opts.MemtableSize)
	if opts.BlockCache != nil {
		db.blocks = opts.BlockCache
	} else {
		db.blocks = cache.New(opts.BlockCacheSize)
	}
	db.blocks.SetMetrics(&db.obs.CacheHits, &db.obs.CacheMisses)
	vs, err := version.Open(opts.FS, db.blocks, opts.Disk)
	if err != nil {
		return nil, err
	}
	db.versions = vs
	db.compactor = compaction.NewCompactor(opts.FS, vs)
	db.compactor.SetObserver(db.obs)
	db.classifier = health.Classifier{
		Corrupt: []error{wal.ErrCorrupt, sstable.ErrCorrupt, version.ErrCorruptEdit},
	}
	db.health = health.NewMonitor(db.classifier, db.onHealthChange)
	db.storeBroadcast(&db.immGone)
	db.storeBroadcast(&db.l0Relaxed)
	db.storeBroadcast(&db.resumed)

	db.obs.OrphanFilesRemoved.Add(vs.OrphansRemoved())
	db.obs.WALTornTails.Add(vs.TornTailsTruncated())
	db.oracle.Advance(vs.LastTS())
	// The value log opens before WAL replay: recovery validates every
	// replayed pointer record against it, dropping records whose value
	// bytes never became durable (necessarily unacknowledged in sync mode).
	db.vlog, err = vlog.Open(vlog.Config{
		FS:          opts.FS,
		Set:         vs,
		SegmentSize: opts.ValueLogSegmentSize,
		SyncWrites:  opts.SyncWrites,
		Observer:    db.obs,
	})
	if err != nil {
		vs.Close()
		return nil, err
	}
	if err := db.recoverWAL(); err != nil {
		db.vlog.Close()
		vs.Close()
		return nil, err
	}
	if db.mem.Load() == nil {
		if err := db.installFreshMemtable(); err != nil {
			db.vlog.Close()
			vs.Close()
			return nil, err
		}
	}

	// Per-origin backoffs and prebuilt job closures (see schedule.go).
	db.flushBoff = db.newBackoff()
	db.seekBoff = db.newBackoff()
	db.vlogBoff = db.newBackoff()
	db.flushRun = db.runFlushJob
	db.seekRun = db.runSeekJob
	db.vlogGCRun = db.runVlogGCJob
	db.vlogGCSkip = func(num uint64) bool { return num == db.vlog.ActiveSegment() }
	for l := 0; l < version.NumLevels; l++ {
		level := l
		db.levelBoff[l] = db.newBackoff()
		db.compactRuns[l] = func() { db.runCompactionJob(level) }
	}
	// Three extra workers beyond the compaction slots so a flush, a
	// long-running backup ship, and a value-log GC rewrite can always run
	// alongside a full complement of compactions.
	db.sched = scheduler.New(scheduler.Config{
		Workers:         opts.CompactionThreads + 3,
		CompactionSlots: opts.CompactionThreads,
		FlushSlots:      1,
		BackupSlots:     1,
		VlogGCSlots:     1,
		Poll:            10 * time.Millisecond,
		Planner:         db.plan,
	})
	if opts.SnapshotTTL > 0 {
		db.bg.Add(1)
		go db.snapshotSweepLoop()
	}
	return db, nil
}

func (db *DB) storeBroadcast(p *atomic.Pointer[chan struct{}]) {
	ch := make(chan struct{})
	p.Store(&ch)
}

// installFreshMemtable creates a new WAL + memtable pair and publishes them.
// Callers must ensure no concurrent writers (startup, or exclusive lock).
func (db *DB) installFreshMemtable() error {
	logNum := db.versions.NewFileNum()
	var logger *wal.Logger
	if !db.opts.DisableWAL {
		f, err := db.fs.Create(version.LogFileName(logNum))
		if err != nil {
			return err
		}
		logger = wal.NewLogger(f, db.opts.SyncWrites)
		logger.Instrument(&db.obs.WALAppends, &db.obs.WALSyncs, &db.obs.WALGroupSize)
	}
	db.mem.Store(memtable.New(logNum))
	db.log.Store(logger)
	return nil
}

// Close stops background work, drains the WAL, and releases every
// resource. Pending writes are durable in the WAL and recovered on the
// next Open.
func (db *DB) Close() error {
	if !db.closed.CompareAndSwap(false, true) {
		return ErrClosed
	}
	// closing first, so jobs parked in backoff waits and writers parked in
	// throttle waits unblock before the scheduler drains its running work.
	close(db.closing)
	db.sched.Close()
	db.bg.Wait()

	var firstErr error
	if l := db.log.Swap(nil); l != nil {
		if err := l.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if m := db.mem.Swap(nil); m != nil {
		m.Unref()
	}
	if m := db.imm.Swap(nil); m != nil {
		m.Unref()
	}
	if db.vlog != nil {
		if err := db.vlog.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := db.versions.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	if e := db.bgErr.Load(); e != nil && firstErr == nil {
		firstErr = *e
	}
	return firstErr
}

// Oracle exposes the timestamp oracle (tests, tools).
func (db *DB) Oracle() *oracle.Oracle { return db.oracle }

// Observer exposes the engine's observability substrate: latency
// histograms, substrate counters, and the event trace. Never nil.
func (db *DB) Observer() *obs.Observer { return db.obs }

// MemtableFillFraction reports how full the mutable memtable is relative
// to its spill threshold (used by merge-aware write schedulers).
func (db *DB) MemtableFillFraction() float64 {
	mt := db.mem.Load()
	if mt == nil {
		return 0
	}
	return float64(mt.ApproximateSize()) / float64(db.memBudget.Load())
}

// MemtableBudget returns the current memtable spill threshold.
func (db *DB) MemtableBudget() int64 { return db.memBudget.Load() }

// SetMemtableBudget moves the memtable spill threshold at runtime. An
// external memory governor uses it to shift quota between shards and
// the shared block cache; the engine clamps the floor so a starved
// shard still batches writes usefully. Shrinking kicks the scheduler so
// an over-budget memtable rotates promptly.
func (db *DB) SetMemtableBudget(n int64) {
	const floor = 256 << 10
	if n < floor {
		n = floor
	}
	old := db.memBudget.Swap(n)
	if n < old && db.sched != nil {
		db.sched.Kick()
	}
}

// Pressure is a point-in-time report of one engine's memory pressure,
// consumed by the cross-shard memory governor.
type Pressure struct {
	// MemBytes is the mutable memtable's fill; ImmBytes the frozen
	// memtable still merging (0 when none).
	MemBytes, ImmBytes int64
	// Budget is the current memtable spill threshold.
	Budget int64
	// Debt is the scheduler's backlog signal (flush + compaction bytes).
	Debt uint64
	// WriteBytes is the cumulative logical user-write volume; its delta
	// between samples is the shard's write arrival rate.
	WriteBytes uint64
	// CacheHits and CacheMisses are this engine's block cache counters;
	// their deltas give the shard's read pressure.
	CacheHits, CacheMisses uint64
}

// Pressure samples the engine's memory-pressure signals.
func (db *DB) Pressure() Pressure {
	p := Pressure{
		Budget:      db.memBudget.Load(),
		Debt:        db.obs.CompactionDebt.Load(),
		WriteBytes:  db.metrics.writeBytes.Load(),
		CacheHits:   db.obs.CacheHits.Load(),
		CacheMisses: db.obs.CacheMisses.Load(),
	}
	if mt := db.mem.Load(); mt != nil {
		p.MemBytes = int64(mt.ApproximateSize())
	}
	if imm := db.imm.Load(); imm != nil {
		p.ImmBytes = int64(imm.ApproximateSize())
	}
	return p
}

// MergeInFlight reports whether an immutable memtable is currently being
// merged into the disk component.
func (db *DB) MergeInFlight() bool { return db.imm.Load() != nil }

// Metrics returns a snapshot of engine counters.
func (db *DB) Metrics() Metrics {
	var m Metrics
	m.Puts = db.metrics.puts.Load()
	m.Gets = db.metrics.gets.Load()
	m.Deletes = db.metrics.deletes.Load()
	m.RMWs = db.metrics.rmws.Load()
	m.RMWRetries = db.metrics.rmwRetries.Load()
	m.Txns = db.metrics.txns.Load()
	m.TxnConflicts = db.metrics.txnConflicts.Load()
	m.Snapshots = db.metrics.snapshots.Load()
	m.Flushes = db.metrics.flushes.Load()
	m.Compactions = db.metrics.compactions.Load()
	m.FlushBytes = db.metrics.flushBytes.Load()
	m.CompactionBytes = db.metrics.compactionBytes.Load()
	m.StallTime = time.Duration(db.metrics.stallNanos.Load())
	m.WriteStalls = db.obs.WriteStalls.Load()
	m.CacheHits = db.obs.CacheHits.Load()
	m.CacheMisses = db.obs.CacheMisses.Load()
	if v := db.versions.Current(); v != nil {
		m.DiskBytes = v.SizeBytes()
		m.DiskFiles = v.NumFiles()
		for i := range v.Levels {
			m.LevelSize[i] = len(v.Levels[i])
		}
		v.Unref()
	}
	segs, _, garbage := db.versions.VlogStats()
	m.VlogSegments = segs
	m.VlogGarbageBytes = garbage
	m.VlogGCRuns = db.metrics.vlogGCRuns.Load()
	return m
}

// ApproximateSize estimates the on-disk bytes holding keys in
// [start, end) — file sizes of fully covered tables plus halves of the
// boundary-overlapping ones. Memtable contents are excluded (they have no
// stable on-disk representation yet).
func (db *DB) ApproximateSize(start, end []byte) uint64 {
	v := db.versions.Current()
	if v == nil {
		return 0
	}
	defer v.Unref()
	return v.ApproximateSize(start, end)
}

// background error capture: a failed flush/compaction poisons the engine.
func (db *DB) setBGErr(err error) {
	if err != nil {
		db.bgErr.CompareAndSwap(nil, &err)
	}
}

func (db *DB) backgroundErr() error {
	if e := db.bgErr.Load(); e != nil {
		return *e
	}
	return nil
}
