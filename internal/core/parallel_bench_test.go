package core

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"clsm/internal/storage"
)

// slowSyncFS injects a realistic fsync latency into an in-memory
// filesystem, so sync-mode benchmarks measure the group-commit
// amortization instead of MemFS's free syncs. Only files created through
// it (the WAL) pay the delay; reads are untouched.
type slowSyncFS struct {
	storage.FS
	delay time.Duration
	syncs atomic.Uint64
}

func (fs *slowSyncFS) Create(name string) (storage.File, error) {
	f, err := fs.FS.Create(name)
	if err != nil {
		return nil, err
	}
	return &slowSyncFile{File: f, fs: fs}, nil
}

type slowSyncFile struct {
	storage.File
	fs *slowSyncFS
}

func (f *slowSyncFile) Sync() error {
	f.fs.syncs.Add(1)
	time.Sleep(f.fs.delay)
	return f.File.Sync()
}

func benchDB(b *testing.B, opts Options) *DB {
	b.Helper()
	db, err := Open(opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	return db
}

// BenchmarkPutParallel measures async (non-durable-sync) puts under
// contention: the shared-lock write path with pooled WAL buffers.
func BenchmarkPutParallel(b *testing.B) {
	opts := testOptions(storage.NewMemFS())
	opts.MemtableSize = 64 << 20
	opts.Disk.TableFileSize = 8 << 20
	opts.Disk.BaseLevelBytes = 64 << 20
	db := benchDB(b, opts)

	value := []byte("benchmark-value-0123456789abcdef")
	var seq atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		key := make([]byte, 0, 24)
		for pb.Next() {
			n := seq.Add(1)
			key = fmt.Appendf(key[:0], "key%016d", n)
			if err := db.Put(key, value); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPutSyncParallel is the tentpole benchmark: durable puts against
// a device with a 100µs fsync. Group commit batches concurrent writers
// behind a single sync, so throughput scales with the group size rather
// than being capped at 1/fsync-latency. The syncs/op metric is the
// amortization factor (1.0 would be one fsync per record).
func BenchmarkPutSyncParallel(b *testing.B) {
	fs := &slowSyncFS{FS: storage.NewMemFS(), delay: 100 * time.Microsecond}
	opts := testOptions(fs)
	opts.SyncWrites = true
	opts.MemtableSize = 64 << 20
	opts.Disk.TableFileSize = 8 << 20
	opts.Disk.BaseLevelBytes = 64 << 20
	db := benchDB(b, opts)

	value := []byte("benchmark-value-0123456789abcdef")
	var seq atomic.Uint64
	syncs0 := db.Observer().WALSyncs.Load()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		key := make([]byte, 0, 24)
		for pb.Next() {
			n := seq.Add(1)
			key = fmt.Appendf(key[:0], "key%016d", n)
			if err := db.Put(key, value); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	syncs := db.Observer().WALSyncs.Load() - syncs0
	b.ReportMetric(float64(syncs)/float64(b.N), "syncs/op")
}

// BenchmarkGetParallel measures cache-hit Pd point reads under
// contention: pooled seek keys and pooled SSTable iterators over cached
// blocks.
func BenchmarkGetParallel(b *testing.B) {
	opts := testOptions(storage.NewMemFS())
	db := benchDB(b, opts)

	const n = 4096
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key%06d", i)
		if err := db.Put([]byte(k), []byte("value-"+k)); err != nil {
			b.Fatal(err)
		}
	}
	if err := db.CompactRange(); err != nil {
		b.Fatal(err)
	}
	// Warm the block cache so the steady state is a pure cache-hit read.
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key%06d", i)
		if _, ok, err := db.Get([]byte(k)); err != nil || !ok {
			b.Fatalf("warmup Get(%s) = %v, %v", k, ok, err)
		}
	}
	var seq atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		key := make([]byte, 0, 16)
		for pb.Next() {
			i := seq.Add(1) % n
			key = fmt.Appendf(key[:0], "key%06d", i)
			if _, ok, err := db.Get(key); err != nil || !ok {
				b.Fatal("miss on present key")
			}
		}
	})
}
