package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"clsm/internal/batch"
	"clsm/internal/faultfs"
	"clsm/internal/health"
	"clsm/internal/storage"
)

// TestCtxVariantsEquivalence: with a live (background) context the *Ctx
// entry points behave exactly like their plain counterparts.
func TestCtxVariantsEquivalence(t *testing.T) {
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ctx := context.Background()

	if err := db.PutCtx(ctx, []byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := db.GetCtx(ctx, []byte("a"))
	if err != nil || !ok || string(v) != "1" {
		t.Fatalf("GetCtx = %q, %v, %v", v, ok, err)
	}
	var b batch.Batch
	b.Put([]byte("b"), []byte("2"))
	b.Delete([]byte("a"))
	if err := db.WriteCtx(ctx, &b); err != nil {
		t.Fatal(err)
	}
	vals, err := db.MultiGetCtx(ctx, [][]byte{[]byte("a"), []byte("b")})
	if err != nil {
		t.Fatal(err)
	}
	if vals[0].Exists || !vals[1].Exists || string(vals[1].Data) != "2" {
		t.Fatalf("MultiGetCtx = %+v", vals)
	}
	if err := db.DeleteCtx(ctx, []byte("b")); err != nil {
		t.Fatal(err)
	}
	if ok, _ := db.Has([]byte("b")); ok {
		t.Fatal("b survived DeleteCtx")
	}
}

// TestCtxCanceledFailsFast: an already-done context fails every variant
// with ctx.Err() without touching the store.
func TestCtxCanceledFailsFast(t *testing.T) {
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if err := db.PutCtx(ctx, []byte("k"), []byte("v")); !errors.Is(err, context.Canceled) {
		t.Fatalf("PutCtx = %v, want context.Canceled", err)
	}
	if _, _, err := db.GetCtx(ctx, []byte("k")); !errors.Is(err, context.Canceled) {
		t.Fatalf("GetCtx = %v, want context.Canceled", err)
	}
	if _, err := db.MultiGetCtx(ctx, [][]byte{[]byte("k")}); !errors.Is(err, context.Canceled) {
		t.Fatalf("MultiGetCtx = %v, want context.Canceled", err)
	}
	if err := db.DeleteCtx(ctx, []byte("k")); !errors.Is(err, context.Canceled) {
		t.Fatalf("DeleteCtx = %v, want context.Canceled", err)
	}
	var b batch.Batch
	b.Put([]byte("k"), []byte("v"))
	if err := db.WriteCtx(ctx, &b); !errors.Is(err, context.Canceled) {
		t.Fatalf("WriteCtx = %v, want context.Canceled", err)
	}
	if ok, _ := db.Has([]byte("k")); ok {
		t.Fatal("canceled write reached the store")
	}
}

// TestPutCtxDegradedStallHonorsCancel is the satellite acceptance test:
// while the store is Degraded (flushes failing on injected faults) and the
// in-memory budget is exhausted, a write parks in the bounded degraded
// stall — DegradedStallTimeout here is 30s, far beyond the test budget.
// The context deadline must cut that stall short: the blocked write has to
// return ctx.Err() within the deadline's order of magnitude, not after the
// stall timeout.
func TestPutCtxDegradedStallHonorsCancel(t *testing.T) {
	ffs := faultfs.Wrap(storage.NewMemFS())
	db, err := Open(Options{
		FS:                   ffs,
		MemtableSize:         4 << 10,
		RetryBaseDelay:       20 * time.Millisecond,
		RetryMaxDelay:        100 * time.Millisecond,
		DegradedStallTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	// Every flush attempt dies at its first table write for the whole
	// test: the store degrades and cannot drain its memtables.
	rules := make([]faultfs.Rule, 400)
	for i := range rules {
		rules[i] = faultfs.Rule{Op: faultfs.OpWrite, Pattern: "*.sst", N: 1, Kind: faultfs.FaultErr}
	}
	ffs.Arm(rules...)

	// Fill until a write blocks long enough to trip its 250ms deadline.
	// Writes that are admitted succeed (degraded stores keep accepting
	// writes while the budget lasts); the first one to park must come back
	// with ctx.Err() instead of sleeping toward the 30s stall timeout.
	pad := strings.Repeat("v", 256)
	deadline := time.Now().Add(20 * time.Second)
	var blockedErr error
	var blockedFor time.Duration
	for i := 0; blockedErr == nil; i++ {
		if time.Now().After(deadline) {
			t.Fatalf("no write ever blocked (health=%v after %d writes)", db.health.State(), i)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
		start := time.Now()
		err := db.PutCtx(ctx, []byte(fmt.Sprintf("key-%06d", i)), []byte(pad))
		cancel()
		if err != nil {
			blockedErr, blockedFor = err, time.Since(start)
		}
	}
	if !errors.Is(blockedErr, context.DeadlineExceeded) {
		t.Fatalf("blocked write failed with %v, want context.DeadlineExceeded", blockedErr)
	}
	if blockedFor > 5*time.Second {
		t.Fatalf("blocked write took %v to honor its 250ms deadline", blockedFor)
	}
	if st := db.health.State(); st != health.Degraded {
		t.Fatalf("health = %v, want Degraded", st)
	}

	// An explicit cancel (not a deadline) unparks a stalled writer too.
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err = db.PutCtx(ctx, []byte("parked"), []byte(pad))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled parked write = %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("cancel took %v to unpark the writer", d)
	}
}
