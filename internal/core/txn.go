package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"time"

	"clsm/internal/batch"
	"clsm/internal/keys"
	"clsm/internal/memtable"
	"clsm/internal/obs"
	"clsm/internal/wal"
)

// ErrTxnConflict is returned by Commit when optimistic validation finds a
// version of a read- or write-set key written after the transaction's
// snapshot. The transaction is rolled back; the caller may retry it from
// scratch (re-reading through a fresh snapshot).
var ErrTxnConflict = errors.New("clsm: transaction conflict")

// Txn is a multi-key optimistic transaction: Algorithm 3's single-key OCC
// generalized over the snapshot oracle. Reads are served at a snapshot
// timestamp taken at Begin and recorded in a read set; writes are buffered.
// Commit validates, under the exclusive lock, that no key in the read or
// write set has a version in the interval (snapshot, now] — across all
// three components Pm → P'm → Pd, which is why the disk lookup surfaces
// version timestamps — and then applies the write set exactly like an
// atomic batch: one contiguous timestamp range, one WAL record, exposed
// all-or-nothing.
//
// A Txn is not safe for concurrent use by multiple goroutines. It pins the
// snapshot's versions until Commit or Rollback, so it must always be
// finished (the TTL sweeper does not cover transactions).
type Txn struct {
	db       *DB
	ts       uint64 // snapshot timestamp; reads pinned here
	commitTS uint64 // first timestamp of the commit batch; 0 until committed
	reads    map[string]struct{}
	writes   []txnWrite
	widx     map[string]int // user key -> index in writes (last-write-wins)
	done     bool
}

// txnWrite is one buffered write. Key and value are owned copies: the
// batch codec stores slices by reference, so buffering caller memory would
// let a post-Put mutation tear the commit record.
type txnWrite struct {
	kind  keys.Kind
	key   []byte
	value []byte
}

// BeginTxn starts a transaction (see Txn). It follows GetSnapshot's
// acquisition: shared lock, snapshot timestamp below every active write,
// registered with the oracle so merges cannot reclaim the versions it
// reads.
func (db *DB) BeginTxn() (*Txn, error) {
	return db.BeginTxnCtx(nil)
}

// BeginTxnCtx is BeginTxn with a context, checked once at entry (begin
// never blocks beyond the shared lock).
func (db *DB) BeginTxnCtx(ctx context.Context) (*Txn, error) {
	if db.closed.Load() {
		return nil, ErrClosed
	}
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	db.lock.LockShared()
	ts := db.oracle.SnapshotTS()
	db.oracle.InstallSnapshot(ts)
	db.lock.UnlockShared()
	return &Txn{
		db:    db,
		ts:    ts,
		reads: make(map[string]struct{}),
		widx:  make(map[string]int),
	}, nil
}

// errTxnFinished wraps ErrClosed so finished-handle misuse matches the
// same sentinel as closed-store misuse.
func errTxnFinished() error {
	return fmt.Errorf("transaction already finished: %w", ErrClosed)
}

// SnapshotTS exposes the transaction's snapshot timestamp (tests, the
// serializability checker).
func (t *Txn) SnapshotTS() uint64 { return t.ts }

// CommitTS returns the first timestamp of the committed write batch (the
// batch occupies a contiguous range starting there), or 0 if the
// transaction has not committed, was read-only, or conflicted.
func (t *Txn) CommitTS() uint64 { return t.commitTS }

// Pending returns the number of buffered writes.
func (t *Txn) Pending() int { return len(t.writes) }

// Get reads key at the transaction's snapshot, seeing the transaction's
// own buffered writes first (read-your-writes). External reads are added
// to the read set and will be validated at commit.
func (t *Txn) Get(key []byte) (value []byte, ok bool, err error) {
	if t.done {
		return nil, false, errTxnFinished()
	}
	if i, hit := t.widx[string(key)]; hit {
		w := &t.writes[i]
		if w.kind == keys.KindDelete {
			return nil, false, nil
		}
		return w.value, true, nil
	}
	// Check-before-insert keeps repeat reads of the same key free of the
	// map-key allocation (the alloc gate pins this path at <=1 alloc/op).
	if _, tracked := t.reads[string(key)]; !tracked {
		t.reads[string(key)] = struct{}{}
	}
	return t.db.GetAt(key, t.ts)
}

// Has reports whether key is visible to the transaction (see Get).
func (t *Txn) Has(key []byte) (bool, error) {
	_, ok, err := t.Get(key)
	return ok, err
}

// Put buffers (key, value); nothing is visible outside the transaction
// until Commit. Key and value are copied.
func (t *Txn) Put(key, value []byte) error {
	return t.buffer(keys.KindValue, key, value)
}

// Delete buffers a deletion marker for key (see Put).
func (t *Txn) Delete(key []byte) error {
	return t.buffer(keys.KindDelete, key, nil)
}

func (t *Txn) buffer(kind keys.Kind, key, value []byte) error {
	if t.done {
		return errTxnFinished()
	}
	k := append([]byte(nil), key...)
	var v []byte
	if kind == keys.KindValue {
		v = append([]byte(nil), value...)
	}
	if i, hit := t.widx[string(key)]; hit {
		t.writes[i] = txnWrite{kind: kind, key: k, value: v}
		return nil
	}
	t.widx[string(k)] = len(t.writes)
	t.writes = append(t.writes, txnWrite{kind: kind, key: k, value: v})
	return nil
}

// Rollback discards the transaction and releases its snapshot. It is a
// no-op on a finished transaction, so `defer txn.Rollback()` is always
// safe.
func (t *Txn) Rollback() {
	if t.done {
		return
	}
	t.done = true
	t.db.oracle.ReleaseSnapshot(t.ts)
}

// Commit validates and applies the transaction. On conflict it returns a
// wrapped ErrTxnConflict naming the offending key; the transaction is
// finished either way (retry by beginning a new one). A read-only
// transaction commits trivially: all its reads happened atomically at the
// snapshot timestamp, which is its serialization point.
func (t *Txn) Commit() error {
	return t.CommitCtx(nil)
}

// CommitCtx is Commit with cancellation for the pre-admission waits (see
// PutCtx). Once validation starts the commit runs to completion;
// cancellation never splits a committed batch.
func (t *Txn) CommitCtx(ctx context.Context) error {
	if t.done {
		return errTxnFinished()
	}
	t.done = true
	db := t.db
	defer db.oracle.ReleaseSnapshot(t.ts)

	if db.closed.Load() {
		return ErrClosed
	}
	if len(t.writes) == 0 {
		db.metrics.txns.Add(1)
		return nil
	}
	if err := db.writeGate(); err != nil {
		return err
	}
	start := time.Now()
	defer func() { db.obs.Record(obs.OpWrite, time.Since(start)) }()
	n := 0
	for i := range t.writes {
		n += len(t.writes[i].key) + len(t.writes[i].value)
	}
	if err := db.admitWrite(ctx, n); err != nil {
		return err
	}
	if err := db.makeRoomForWrite(ctx); err != nil {
		return err
	}

	// Build the commit batch outside the lock; entries reference the
	// transaction's owned copies.
	var b batch.Batch
	for i := range t.writes {
		w := &t.writes[i]
		if w.kind == keys.KindDelete {
			b.Delete(w.key)
		} else {
			b.Put(w.key, w.value)
		}
	}

	db.lock.LockExclusive()
	mt := db.mem.Load()
	logger := db.log.Load()

	// Validation: no read- or write-set key may have a version in
	// (snapshot, now]. The exclusive lock excludes concurrent writers and
	// rotations, so the newest version visible now is the newest, period.
	if key, vts, err := db.validateIntervalLocked(mt, t); err != nil {
		db.lock.UnlockExclusive()
		return err
	} else if key != "" {
		db.lock.UnlockExclusive()
		db.metrics.txnConflicts.Add(1)
		return fmt.Errorf("key %q has version %d newer than snapshot %d: %w",
			key, vts, t.ts, ErrTxnConflict)
	}

	// Apply: identical to the atomic-batch path — contiguous timestamp
	// range, one WAL record (the crash harness checks its atomicity),
	// memtable insertion, all under the exclusive lock.
	first, slot := db.oracle.GetTSBatch(uint64(b.Len()))
	b.SetTimestamps(first)
	if logger != nil {
		buf := wal.GetBuf()
		*buf = b.Encode((*buf)[:0])
		if err := logger.AppendOwned(buf); err != nil {
			db.oracle.Done(slot)
			db.lock.UnlockExclusive()
			return err
		}
	}
	for _, e := range b.Entries() {
		mt.Add(e.Key, e.TS, e.Kind, e.Value)
	}
	db.oracle.Done(slot)
	db.lock.UnlockExclusive()

	t.commitTS = first
	db.metrics.txns.Add(1)
	db.metrics.puts.Add(uint64(b.Len()))
	db.metrics.writeBytes.Add(uint64(n))
	db.maybeTriggerFlush(mt)
	return nil
}

// validateIntervalLocked returns the first key in the transaction's read
// or write set whose newest version is newer than the snapshot ("" if
// none). Caller holds the exclusive lock. Components are checked in
// data-flow order Pm → P'm → Pd; rotation is a write barrier, so the first
// component holding the key holds its newest version.
//
// A key that is absent everywhere validates trivially: tombstones are only
// elided by compaction when no older version remains, so "absent" cannot
// mask a version written inside the interval.
func (db *DB) validateIntervalLocked(mt *memtable.Table, t *Txn) (key string, vts uint64, err error) {
	sk := seekScratch.Get().(*[]byte)
	defer seekScratch.Put(sk)
	check := func(k string) (uint64, error) {
		kb := []byte(k)
		if _, ts, _, found := mt.GetWithTS(kb, keys.MaxTimestamp); found {
			return ts, nil
		}
		if imm := db.imm.Load(); imm != nil {
			if _, ts, _, found := imm.GetWithTS(kb, keys.MaxTimestamp); found {
				return ts, nil
			}
		}
		cur := db.versions.Current()
		if cur == nil {
			return 0, ErrClosed
		}
		defer cur.Unref()
		*sk = keys.AppendSeek((*sk)[:0], kb, keys.MaxTimestamp)
		_, ts, _, found, err := cur.Get(*sk)
		if err != nil || !found {
			return 0, err
		}
		return ts, nil
	}
	for k := range t.reads {
		ts, err := check(k)
		if err != nil {
			return "", 0, err
		}
		if ts > t.ts {
			return k, ts, nil
		}
	}
	for i := range t.writes {
		ts, err := check(string(t.writes[i].key))
		if err != nil {
			return "", 0, err
		}
		if ts > t.ts {
			return string(t.writes[i].key), ts, nil
		}
	}
	return "", 0, nil
}

// Txn runs fn inside a transaction: commit if fn returns nil, roll back
// (returning fn's error) otherwise. Conflicts surface as a wrapped
// ErrTxnConflict; retry loops belong to the caller, whose fn must be safe
// to re-run.
func (db *DB) Txn(fn func(*Txn) error) error {
	return db.TxnCtx(nil, fn)
}

// TxnCtx is Txn with cancellation (see CommitCtx).
func (db *DB) TxnCtx(ctx context.Context, fn func(*Txn) error) error {
	t, err := db.BeginTxnCtx(ctx)
	if err != nil {
		return err
	}
	if err := fn(t); err != nil {
		t.Rollback()
		return err
	}
	return t.CommitCtx(ctx)
}

// ReadCheck is one read-set assertion of a stateless remote transaction
// (the wire protocol's TxnWrite): the client read Key and observed Value
// (or absence, Exists=false) and asks the server to commit only if that
// observation still holds.
type ReadCheck struct {
	Key    []byte
	Value  []byte
	Exists bool
}

// TxnWriteCtx is the server-side half of a single-round-trip remote
// transaction: begin a transaction, re-read every check key and compare
// against the client's observation (value-based validation — the remote
// protocol is stateless, so the client cannot hold a snapshot timestamp
// across round trips), then commit b's entries through the normal
// OCC path. A failed check or a commit-time conflict returns a wrapped
// ErrTxnConflict; the caller should re-read and retry, not blindly resend.
func (db *DB) TxnWriteCtx(ctx context.Context, checks []ReadCheck, b *batch.Batch) error {
	t, err := db.BeginTxnCtx(ctx)
	if err != nil {
		return err
	}
	for i := range checks {
		c := &checks[i]
		v, ok, err := t.Get(c.Key)
		if err != nil {
			t.Rollback()
			return err
		}
		if ok != c.Exists || (ok && !bytes.Equal(v, c.Value)) {
			t.Rollback()
			db.metrics.txnConflicts.Add(1)
			return fmt.Errorf("key %q changed since the client read it: %w",
				c.Key, ErrTxnConflict)
		}
	}
	if b != nil {
		for _, e := range b.Entries() {
			if e.Kind == keys.KindDelete {
				t.Delete(e.Key)
			} else {
				t.Put(e.Key, e.Value)
			}
		}
	}
	return t.CommitCtx(ctx)
}
