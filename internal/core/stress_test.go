package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"clsm/internal/storage"
)

// TestStressSoak runs all operation types at full concurrency for a few
// seconds, checking invariants throughout. Skipped under -short.
func TestStressSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	db := mustOpen(t, storage.NewMemFS())
	defer db.Close()

	const dur = 3 * time.Second
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var fail atomic.Bool

	// Invariant A: keys "inv:N" always hold a value equal to their key
	// (writers re-put the same contract; readers verify).
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := []byte(fmt.Sprintf("inv:%03d", rng.Intn(200)))
				if err := db.Put(k, k); err != nil {
					t.Error(err)
					fail.Store(true)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		for {
			select {
			case <-stop:
				return
			default:
			}
			k := []byte(fmt.Sprintf("inv:%03d", rng.Intn(200)))
			v, ok, err := db.Get(k)
			if err != nil {
				t.Error(err)
				fail.Store(true)
				return
			}
			if ok && !bytes.Equal(v, k) {
				t.Errorf("invariant broken: %s holds %q", k, v)
				fail.Store(true)
				return
			}
		}
	}()

	// Invariant B: RMW counter increments are never lost (verified at end).
	var rmwOps atomic.Int64
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				err := db.RMW([]byte("soak:counter"), func(old []byte, exists bool) []byte {
					var n int64
					if exists {
						fmt.Sscanf(string(old), "%d", &n)
					}
					return []byte(fmt.Sprintf("%d", n+1))
				})
				if err != nil {
					t.Error(err)
					fail.Store(true)
					return
				}
				rmwOps.Add(1)
			}
		}()
	}

	// Invariant C: scans are sorted and tear-free snapshots.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			it, err := db.NewIterator()
			if err != nil {
				t.Error(err)
				fail.Store(true)
				return
			}
			var prev []byte
			for it.First(); it.Valid(); it.Next() {
				if prev != nil && bytes.Compare(prev, it.Key()) >= 0 {
					t.Error("scan order violated")
					fail.Store(true)
					it.Close()
					return
				}
				prev = append(prev[:0], it.Key()...)
			}
			if err := it.Err(); err != nil {
				t.Error(err)
				fail.Store(true)
			}
			it.Close()
			time.Sleep(10 * time.Millisecond)
		}
	}()

	// Churn: bulk filler traffic to drive flushes and compactions.
	wg.Add(1)
	go func() {
		defer wg.Done()
		filler := bytes.Repeat([]byte("f"), 256)
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			i++
			if err := db.Put([]byte(fmt.Sprintf("fill:%08d", i)), filler); err != nil {
				t.Error(err)
				fail.Store(true)
				return
			}
		}
	}()

	time.Sleep(dur)
	close(stop)
	wg.Wait()
	if fail.Load() {
		t.Fatal("soak failed")
	}

	// Verify invariant B.
	v, ok, err := db.Get([]byte("soak:counter"))
	if err != nil || !ok {
		t.Fatalf("counter missing: %v %v", ok, err)
	}
	var got int64
	fmt.Sscanf(string(v), "%d", &got)
	if got != rmwOps.Load() {
		t.Fatalf("counter = %d, want %d (lost RMW updates)", got, rmwOps.Load())
	}
	m := db.Metrics()
	if m.Flushes == 0 || m.Compactions == 0 {
		t.Fatalf("soak did not exercise the merge pipeline: %+v", m)
	}
	if err := db.backgroundErr(); err != nil {
		t.Fatal(err)
	}
}
