package core

import (
	"errors"
	"testing"
	"time"

	"clsm/internal/storage"
)

func TestSnapshotTTLExpiry(t *testing.T) {
	opts := testOptions(storage.NewMemFS())
	opts.SnapshotTTL = 50 * time.Millisecond
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	db.Put([]byte("k"), []byte("v"))
	snap, err := db.GetSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := snap.Get([]byte("k")); err != nil || !ok {
		t.Fatalf("fresh snapshot read failed: %v %v", ok, err)
	}

	// Wait past the TTL; the sweeper must reclaim the handle.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, _, err := snap.Get([]byte("k")); errors.Is(err, ErrSnapshotExpired) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("snapshot never expired")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The oracle must have released the handle so merges can reclaim.
	if m := db.Oracle().MinSnapshot(); m != 0 {
		t.Fatalf("expired snapshot still installed (min=%d)", m)
	}
	// Closing an expired handle is a harmless no-op.
	snap.Close()
	if _, _, err := snap.Get([]byte("k")); !errors.Is(err, ErrSnapshotExpired) {
		t.Fatalf("post-close error = %v, want ErrSnapshotExpired", err)
	}
}

func TestSnapshotTTLDoesNotExpireClosed(t *testing.T) {
	opts := testOptions(storage.NewMemFS())
	opts.SnapshotTTL = 20 * time.Millisecond
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	snap, _ := db.GetSnapshot()
	snap.Close() // user closed before TTL
	time.Sleep(80 * time.Millisecond)
	// Registry must have been drained and the error must stay ErrClosed,
	// not ErrSnapshotExpired.
	if _, _, err := snap.Get([]byte("k")); !errors.Is(err, ErrClosed) {
		t.Fatalf("error = %v, want ErrClosed", err)
	}
	db.snapMu.Lock()
	n := len(db.ttlSnaps)
	db.snapMu.Unlock()
	if n != 0 {
		t.Fatalf("ttl registry holds %d stale handles", n)
	}
}

func TestSnapshotWithoutTTLNeverExpires(t *testing.T) {
	db := mustOpen(t, storage.NewMemFS())
	defer db.Close()
	db.Put([]byte("k"), []byte("v"))
	snap, _ := db.GetSnapshot()
	defer snap.Close()
	time.Sleep(50 * time.Millisecond)
	if _, ok, err := snap.Get([]byte("k")); err != nil || !ok {
		t.Fatalf("TTL-less snapshot failed: %v %v", ok, err)
	}
}
