// Package core implements the cLSM engine: Algorithms 1–3 of the paper
// wired to the substrates. It provides non-blocking gets, mostly
// non-blocking puts guarded by a writer-preferring shared-exclusive lock,
// serializable snapshot scans via the timestamp oracle, and optimistic
// lock-free read-modify-write on the skip-list memtable.
package core

import (
	"errors"
	"fmt"
	"time"

	"clsm/internal/cache"
	"clsm/internal/health"
	"clsm/internal/obs"
	"clsm/internal/scheduler"
	"clsm/internal/storage"
	"clsm/internal/version"
)

// ErrInvalidOptions is returned (wrapped, with the offending field named)
// by Open when the options are nonsensical — a negative size or trigger,
// L0StopTrigger below L0SlowdownTrigger, a negative rate limit, an unknown
// scheduler profile. Zero values are not errors: they select the documented
// defaults. Match with errors.Is.
var ErrInvalidOptions = errors.New("clsm: invalid options")

// Options configures an engine instance.
type Options struct {
	// FS is the storage medium. Defaults to an in-memory filesystem.
	FS storage.FS

	// MemtableSize is the soft spill threshold of the mutable memtable
	// (the paper's default is 128 MB; the engine default is smaller so
	// examples and tests exercise the full merge pipeline quickly).
	MemtableSize int64

	// BlockCacheSize bounds the SSTable block cache.
	BlockCacheSize int64

	// BlockCache, when non-nil, is an externally provided block cache
	// handle — typically a namespaced View of a pool shared across the
	// shards of a sharded store — and BlockCacheSize is ignored. The
	// engine wires its own hit/miss counters onto the handle. When nil,
	// the engine creates a private cache of BlockCacheSize bytes.
	BlockCache *cache.Cache

	// SyncWrites makes every put wait for WAL durability. The paper's
	// (and LevelDB's) default is asynchronous logging.
	SyncWrites bool

	// DisableWAL turns logging off entirely (benchmark ablations only).
	DisableWAL bool

	// LinearizableSnapshots makes getSnap wait for a snapshot timestamp
	// at or above the time counter observed at call time, trading
	// blocking for linearizability (§3.2.1's variant; the default is the
	// serializable, possibly-in-the-past snapshot).
	LinearizableSnapshots bool

	// L0SlowdownTrigger and L0StopTrigger throttle writers when L0 backs
	// up, as in LevelDB.
	L0SlowdownTrigger int
	L0StopTrigger     int

	// SnapshotTTL, when positive, reclaims snapshot handles the
	// application forgot to Close after this duration (§3.2.1 of the
	// paper); reads on a reclaimed handle fail with ErrSnapshotExpired.
	// Zero disables the sweeper.
	SnapshotTTL time.Duration

	// StrictWALTail makes recovery treat a torn WAL tail (the normal
	// debris of a crash mid-append) as hard corruption instead of
	// truncating it and continuing. Open then fails on any crash image
	// with a partial final record. This exists as a negative control for
	// the crash-consistency harness (a correct recovery must tolerate
	// torn tails, and the harness proves the matrix catches this
	// misconfiguration); never set it in production.
	StrictWALTail bool

	// CompactionThreads is the number of concurrent background
	// compactors (1 everywhere in the paper except the RocksDB-style
	// Fig. 11 configuration).
	CompactionThreads int

	// RetryBaseDelay and RetryMaxDelay bound the exponential backoff a
	// background worker applies between retries of a transiently failing
	// flush or compaction (health.DefaultBackoffBase/Cap when zero).
	RetryBaseDelay time.Duration
	RetryMaxDelay  time.Duration

	// DegradedStallTimeout bounds how long a single write stalls while
	// the engine is Degraded and the memtable/L0 budget is exhausted;
	// past it the write fails with ErrDegraded instead of blocking
	// indefinitely on a disk that may never recover.
	DegradedStallTimeout time.Duration

	// WriteRateLimit, when positive, caps admitted user-write volume at
	// this many bytes per second: the admission token bucket stays
	// permanently active at (at most) this rate, and the auto-tuner can
	// only lower it under backlog pressure. Zero means no cap — the
	// bucket engages only while background debt demands it.
	WriteRateLimit int64

	// SchedulerProfile selects the background scheduler and write-throttle
	// tuning preset: "default" (balanced), "throughput" (gentle decay,
	// fast recovery), "latency" (hard decay, cautious recovery), or
	// "legacy" (the historical binary L0 slowdown/stop gate, no
	// auto-tuning — kept for A/B measurement). Empty selects "default".
	SchedulerProfile string

	// PanicOnBGFault disables the background panic recovery (debug mode):
	// a panicking flush or compaction crashes the process with its
	// original stack instead of being recorded as a fatal health error.
	PanicOnBGFault bool

	// OnHealthChange, when set, receives every health state transition
	// (Healthy/Degraded/ReadOnly/Failed), delivered one at a time in
	// commit order. It runs on a background goroutine and must not call
	// back into the engine.
	OnHealthChange func(health.Transition)

	// ValueThreshold routes values of at least this many bytes to the
	// value log (docs/VALUELOG.md): the LSM then stores a fixed-size
	// pointer in their place and compactions never rewrite the value
	// bytes. Zero (the default) disables key-value separation — every
	// value stays inline, the historical behavior.
	ValueThreshold int

	// ValueLogSegmentSize caps value-log segment files; appends past it
	// rotate to a fresh segment (default 64 MB). Segments are the unit of
	// value-log GC.
	ValueLogSegmentSize int64

	// ValueLogGCRatio is the garbage fraction (garbage bytes / segment
	// size, in (0, 1]) past which a sealed segment becomes a GC rewrite
	// candidate (default 0.5). Lower values reclaim space more eagerly at
	// the cost of more relink writes.
	ValueLogGCRatio float64

	// Observer receives the engine's instrumentation: per-op latency
	// histograms, substrate counters, and the flush/compaction/stall
	// event trace. When nil, WithDefaults installs a fresh one — the
	// engine always records, so Metrics and the debug export work out of
	// the box; pass a shared Observer to aggregate or to attach an event
	// sink before Open.
	Observer *obs.Observer

	// Disk tunes the disk component.
	Disk version.Options
}

// WithDefaults fills unset fields.
func (o Options) WithDefaults() Options {
	if o.FS == nil {
		o.FS = storage.NewMemFS()
	}
	if o.MemtableSize <= 0 {
		o.MemtableSize = 4 << 20
	}
	if o.BlockCacheSize <= 0 {
		o.BlockCacheSize = 32 << 20
	}
	if o.L0SlowdownTrigger <= 0 {
		o.L0SlowdownTrigger = 8
	}
	if o.L0StopTrigger <= 0 {
		o.L0StopTrigger = 12
	}
	if o.CompactionThreads <= 0 {
		o.CompactionThreads = 1
	}
	if o.RetryBaseDelay <= 0 {
		o.RetryBaseDelay = health.DefaultBackoffBase
	}
	if o.RetryMaxDelay <= 0 {
		o.RetryMaxDelay = health.DefaultBackoffCap
	}
	if o.DegradedStallTimeout <= 0 {
		o.DegradedStallTimeout = time.Second
	}
	if o.ValueLogSegmentSize <= 0 {
		o.ValueLogSegmentSize = 64 << 20
	}
	if o.ValueLogGCRatio <= 0 {
		o.ValueLogGCRatio = 0.5
	}
	if o.Observer == nil {
		o.Observer = obs.New()
	}
	o.Disk = o.Disk.WithDefaults()
	return o
}

// Validate rejects nonsensical configurations before WithDefaults papers
// over them. The zero value of every field remains valid (it means "use
// the default"); what Validate catches is actively contradictory input:
// negative sizes, counts, or durations, an inverted L0 trigger pair, a
// negative rate limit, an unknown scheduler profile. Every error wraps
// ErrInvalidOptions.
func (o Options) Validate() error {
	bad := func(field string, v any) error {
		return fmt.Errorf("%w: %s = %v", ErrInvalidOptions, field, v)
	}
	if o.MemtableSize < 0 {
		return bad("MemtableSize", o.MemtableSize)
	}
	if o.BlockCacheSize < 0 {
		return bad("BlockCacheSize", o.BlockCacheSize)
	}
	if o.L0SlowdownTrigger < 0 {
		return bad("L0SlowdownTrigger", o.L0SlowdownTrigger)
	}
	if o.L0StopTrigger < 0 {
		return bad("L0StopTrigger", o.L0StopTrigger)
	}
	if o.L0SlowdownTrigger > 0 && o.L0StopTrigger > 0 && o.L0StopTrigger < o.L0SlowdownTrigger {
		return fmt.Errorf("%w: L0StopTrigger (%d) < L0SlowdownTrigger (%d)",
			ErrInvalidOptions, o.L0StopTrigger, o.L0SlowdownTrigger)
	}
	if o.CompactionThreads < 0 {
		return bad("CompactionThreads", o.CompactionThreads)
	}
	if o.SnapshotTTL < 0 {
		return bad("SnapshotTTL", o.SnapshotTTL)
	}
	if o.RetryBaseDelay < 0 {
		return bad("RetryBaseDelay", o.RetryBaseDelay)
	}
	if o.RetryMaxDelay < 0 {
		return bad("RetryMaxDelay", o.RetryMaxDelay)
	}
	if o.DegradedStallTimeout < 0 {
		return bad("DegradedStallTimeout", o.DegradedStallTimeout)
	}
	if o.WriteRateLimit < 0 {
		return bad("WriteRateLimit", o.WriteRateLimit)
	}
	if _, err := scheduler.ProfileByName(o.SchedulerProfile); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidOptions, err)
	}
	if o.ValueThreshold < 0 {
		return bad("ValueThreshold", o.ValueThreshold)
	}
	if o.ValueLogSegmentSize < 0 {
		return bad("ValueLogSegmentSize", o.ValueLogSegmentSize)
	}
	if o.ValueLogGCRatio < 0 || o.ValueLogGCRatio > 1 {
		return bad("ValueLogGCRatio", o.ValueLogGCRatio)
	}
	if o.ValueThreshold > 0 {
		// A threshold past the memtable's spill size can never trigger
		// before the write itself forces a rotation: the configuration is
		// contradictory, not merely conservative.
		memSize := o.MemtableSize
		if memSize <= 0 {
			memSize = 4 << 20
		}
		if int64(o.ValueThreshold) > memSize {
			return fmt.Errorf("%w: ValueThreshold (%d) > MemtableSize (%d)",
				ErrInvalidOptions, o.ValueThreshold, memSize)
		}
		if o.DisableWAL && o.SyncWrites {
			// SyncWrites promises durability-on-ack through the WAL; with
			// the WAL disabled a synced value-log entry's pointer is not
			// durable, so the combination would silently lie.
			return fmt.Errorf("%w: ValueThreshold with DisableWAL and SyncWrites (no log to make pointers durable)",
				ErrInvalidOptions)
		}
	}
	if o.Disk.L0CompactionTrigger < 0 {
		return bad("Disk.L0CompactionTrigger", o.Disk.L0CompactionTrigger)
	}
	if o.Disk.BaseLevelBytes < 0 {
		return bad("Disk.BaseLevelBytes", o.Disk.BaseLevelBytes)
	}
	if o.Disk.TableFileSize < 0 {
		return bad("Disk.TableFileSize", o.Disk.TableFileSize)
	}
	if o.Disk.BlockSize < 0 {
		return bad("Disk.BlockSize", o.Disk.BlockSize)
	}
	if o.Disk.BloomBitsPerKey < 0 {
		return bad("Disk.BloomBitsPerKey", o.Disk.BloomBitsPerKey)
	}
	return nil
}

// Metrics exposes engine counters. All fields are cumulative.
type Metrics struct {
	Puts       uint64
	Gets       uint64
	Deletes    uint64
	RMWs       uint64
	RMWRetries uint64
	// Txns counts committed transactions (including read-only ones);
	// TxnConflicts counts commit attempts rejected by OCC validation.
	Txns         uint64
	TxnConflicts uint64
	Snapshots    uint64
	Flushes      uint64
	Compactions  uint64
	// FlushBytes and CompactionBytes are the cumulative volumes written
	// by memtable flushes and level compactions (write amplification =
	// (FlushBytes+CompactionBytes) / logical bytes written).
	FlushBytes      uint64
	CompactionBytes uint64
	StallTime       time.Duration
	// WriteStalls counts stall episodes writers entered (slowdown, stop,
	// or memtable waits); the event trace has the per-episode timeline.
	WriteStalls uint64
	// CacheHits and CacheMisses are block cache counters.
	CacheHits   uint64
	CacheMisses uint64
	// Disk shape.
	DiskBytes uint64
	DiskFiles int
	LevelSize [version.NumLevels]int
	// Value-log shape (docs/VALUELOG.md): live segment count, manifest-
	// accounted garbage bytes awaiting GC, and completed GC segment
	// rewrites.
	VlogSegments     int
	VlogGarbageBytes uint64
	VlogGCRuns       uint64
}
