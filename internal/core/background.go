package core

import (
	"sync/atomic"
	"time"

	"clsm/internal/health"
	"clsm/internal/memtable"
	"clsm/internal/obs"
	"clsm/internal/version"
	"clsm/internal/wal"
)

// The flush and compaction drivers live in schedule.go: the unified
// scheduler's planner submits one job per pending unit of work and the job
// bodies below (rotateAndFlush, flushImm, runCompaction) execute it. This
// file keeps the merge mechanics themselves plus the synchronous entry
// points (Flush, CompactRange).

// rotateAndFlush performs one full memtable merge cycle. The caller holds
// flushMu and has verified that no immutable memtable is in flight.
func (db *DB) rotateAndFlush() error {
	if err := db.rotate(); err != nil {
		return err
	}
	if db.imm.Load() == nil {
		return nil // rotation was a no-op: nothing to merge
	}
	return db.flushImm()
}

// rotate freezes the mutable memtable into P'm and publishes a fresh
// Pm/WAL pair (beforeMerge). The caller holds flushMu with no immutable
// memtable in flight. On return with a nil error and a non-nil imm, the
// frozen table is ready for flushImm; an error after the swap leaves imm
// set and is retried through flushImm (the frozen table's WAL stays on
// disk, so no acknowledged write is lost either way).
func (db *DB) rotate() error {
	// A concurrent flush may have drained the memtable between the
	// caller's size check and its flushMu acquisition; rotating an empty
	// table would churn WAL files and emit zero-byte flush events.
	if db.memLen() == 0 {
		return nil
	}
	// Prepare the successor memtable and WAL outside the critical section.
	logNum := db.versions.NewFileNum()
	var newLogger *wal.Logger
	if !db.opts.DisableWAL {
		f, err := db.fs.Create(version.LogFileName(logNum))
		if err != nil {
			return err
		}
		newLogger = wal.NewLogger(f, db.opts.SyncWrites)
		newLogger.Instrument(&db.obs.WALAppends, &db.obs.WALSyncs, &db.obs.WALGroupSize)
	}
	newMem := memtable.New(logNum)

	// beforeMerge (Algorithm 2 lines 25-31): under the exclusive lock,
	// freeze Pm into P'm and publish the fresh Pm. Pointer order matters
	// for lock-free readers: P'm must be set before Pm is replaced.
	db.lock.LockExclusive()
	old := db.mem.Load()
	db.imm.Store(old)
	db.mem.Store(newMem)
	oldLogger := db.log.Swap(newLogger)
	db.lock.UnlockExclusive()

	// Every writer that used the old memtable has released the shared
	// lock, so the old WAL queue is complete; drain and close it.
	if oldLogger != nil {
		if err := oldLogger.Close(); err != nil {
			return err
		}
	}
	return nil
}

// flushImm merges the frozen memtable into L0 and installs the result (the
// merge proper plus afterMerge). The caller holds flushMu with imm set. It
// is the retry unit of the flush path: every failure exit leaves the frozen
// table and its WAL intact, so calling it again is always safe. A failure
// while building the tables deletes the partial outputs immediately; a
// failure while installing the edit keeps them (crash recovery may need
// them — see the LogAndApply call below).
func (db *DB) flushImm() error {
	old := db.imm.Load()
	if old == nil {
		return nil
	}
	// The version-GC horizon is re-read under the exclusive lock on every
	// attempt; it only moves forward, which is exactly "the merge started
	// later" and preserves the snapshot-visibility argument.
	db.lock.LockExclusive()
	dropBelow := db.mergeHorizonLocked()
	db.lock.UnlockExclusive()

	start := time.Now()
	db.obs.Event(obs.Event{Type: obs.EvFlushStart, Level: 0, Bytes: uint64(old.ApproximateSize())})
	edit, stats, err := db.compactor.FlushMemtable(old, dropBelow)
	if err != nil {
		return err
	}
	// The mutable memtable's WAL number is the recovery cutoff: logs below
	// it are fully merged once this edit lands. mem cannot rotate here
	// (flushMu is held).
	edit.SetLogNum(db.mem.Load().LogNum)
	edit.SetLastTS(db.oracle.Now())

	// Any value-log entries the frozen memtable points at must be durable
	// before the edit publishes the tables: a crash after the manifest
	// install would otherwise recover sstable pointers whose values never
	// reached the medium (async writes and GC relinks insert pointers
	// ahead of the vlog sync). Sealed segments were synced at rotation,
	// so one active-segment sync covers every referenced entry; when the
	// value log is idle this is a no-op.
	if err := db.vlog.WaitSync(); err != nil {
		return err
	}

	// afterMerge first half: publish the new disk component (Pd). On
	// failure the outputs are deliberately kept: the aborted append may
	// have left a complete copy of this edit in the manifest, and
	// written-but-unsynced bytes can survive a crash — recovery would then
	// install the edit and need the tables it names. The version set
	// starts the retry on a fresh manifest that never references them, so
	// if they stay unpublished the next Open's orphan sweep reclaims them.
	if err := db.versions.LogAndApply(edit); err != nil {
		return err
	}
	db.metrics.flushBytes.Add(stats.BytesWritten)

	// afterMerge second half (Algorithm 1 lines 13-17): drop P'm. Readers
	// that still hold references keep the table alive until they finish.
	db.lock.LockExclusive()
	db.imm.Store(nil)
	db.lock.UnlockExclusive()
	old.Unref()

	// The frozen table's WAL is fully merged; remove it.
	if !db.opts.DisableWAL {
		db.fs.Remove(version.LogFileName(old.LogNum))
	}

	db.metrics.flushes.Add(1)
	elapsed := time.Since(start)
	db.metrics.flushNanos.Add(int64(elapsed))
	db.obs.Event(obs.Event{Type: obs.EvFlushEnd, Level: 0, Bytes: stats.BytesWritten, Dur: elapsed})
	db.wakeStalled(&db.immGone)
	db.wakeStalled(&db.l0Relaxed)
	return nil
}

// mergeHorizonLocked computes the timestamp below which shadowed versions
// are invisible to every current and future observer. It must run under
// the exclusive lock: with no put or getSnap in flight, any snapshot
// installed later is guaranteed a timestamp at or above the current
// counter (see DESIGN.md, correctness notes).
func (db *DB) mergeHorizonLocked() uint64 {
	if ts := db.oracle.MinSnapshot(); ts != 0 {
		return ts
	}
	return db.oracle.Now()
}

// wakeStalled replaces and closes a broadcast channel, releasing every
// writer parked in makeRoomForWrite. The atomic swap guarantees each
// channel is closed exactly once even when flusher and compactors race.
func (db *DB) wakeStalled(p *atomic.Pointer[chan struct{}]) {
	fresh := make(chan struct{})
	old := p.Swap(&fresh)
	close(*old)
}

// snapshotSweepLoop reclaims snapshot handles past their TTL.
func (db *DB) snapshotSweepLoop() {
	defer db.bg.Done()
	period := db.opts.SnapshotTTL / 4
	if period < time.Millisecond {
		period = time.Millisecond
	}
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	for {
		select {
		case <-db.closing:
			return
		case now := <-ticker.C:
			db.sweepExpiredSnapshots(now)
		}
	}
}

// markLevelsLocked flips the busy flags for a compaction's level pair.
// Caller holds busyMu.
func (db *DB) markLevelsLocked(level int, busy bool) {
	db.levelBusy[level] = busy
	if level+1 < version.NumLevels {
		db.levelBusy[level+1] = busy
	}
}

// tryLockLevels attempts to claim a level pair for a forced compaction.
func (db *DB) tryLockLevels(level int) bool {
	db.busyMu.Lock()
	defer db.busyMu.Unlock()
	if db.levelBusy[level] || (level+1 < version.NumLevels && db.levelBusy[level+1]) {
		return false
	}
	db.markLevelsLocked(level, true)
	return true
}

func (db *DB) unlockLevels(level int) {
	db.busyMu.Lock()
	db.markLevelsLocked(level, false)
	db.busyMu.Unlock()
}

// runCompaction executes c and installs its edit, releasing c.
func (db *DB) runCompaction(c *version.Compaction) error {
	defer c.Release()
	// The version-GC horizon must be read under the exclusive lock, the
	// same way beforeMerge does for memtable merges.
	db.lock.LockExclusive()
	dropBelow := db.mergeHorizonLocked()
	db.lock.UnlockExclusive()

	start := time.Now()
	db.obs.Event(obs.Event{Type: obs.EvCompactionStart, Level: c.Level})
	edit, stats, err := db.compactor.Run(c, dropBelow)
	if err != nil {
		return err
	}
	if err := db.versions.LogAndApply(edit); err != nil {
		// Keep the outputs even though nothing was installed: the aborted
		// manifest append may survive a crash (see flushImm), and recovery
		// would then need these tables. Unpublished outputs become orphans
		// reclaimed at the next Open.
		return err
	}
	db.metrics.compactions.Add(1)
	db.metrics.compactionBytes.Add(stats.BytesWritten)
	db.obs.Event(obs.Event{
		Type: obs.EvCompactionEnd, Level: c.Level,
		Bytes: stats.BytesWritten, Dur: time.Since(start),
	})
	return nil
}

// CompactRange forces a full sweep: flush the memtable, then push every
// level's data down one level at a time, merging away shadowed versions.
// Used by tools, tests, and the memory-sweep benchmark.
func (db *DB) CompactRange() error {
	if db.closed.Load() {
		return ErrClosed
	}
	// Force a rotation regardless of size.
	if db.memLen() > 0 {
		if err := db.forceFlush(); err != nil {
			return err
		}
	}
	for level := 0; level < version.NumLevels-1; level++ {
		for {
			if err := db.writeGate(); err != nil {
				return err
			}
			if !db.tryLockLevels(level) {
				time.Sleep(time.Millisecond)
				continue
			}
			c := db.versions.PickForcedCompaction(level)
			if c == nil {
				db.unlockLevels(level)
				break
			}
			err := db.runCompaction(c)
			db.unlockLevels(level)
			if err != nil {
				db.reportForeground("compact-range", err)
				return err
			}
			break
		}
	}
	return nil
}

// Flush synchronously rotates the memtable and merges it into L0, even
// below the spill threshold. After Flush returns, every previously
// acknowledged write is in the disk component.
func (db *DB) Flush() error {
	if db.closed.Load() {
		return ErrClosed
	}
	if db.memLen() == 0 && db.imm.Load() == nil {
		return db.writeGate()
	}
	return db.forceFlush()
}

func (db *DB) memLen() int {
	mt := db.mem.Load()
	if mt == nil {
		return 0
	}
	return mt.Len()
}

// forceFlush synchronously rotates and flushes the current memtable, even
// below the size threshold. A pending frozen memtable (an in-flight or
// previously failed merge) is drained first. Transient failures are
// retried through the same health machinery as the background loop, up to
// the degraded stall budget; corruption and fatal states fail immediately.
func (db *DB) forceFlush() error {
	boff := db.newBackoff()
	var degradedSince time.Time
	for {
		select {
		case <-db.closing:
			return ErrClosed
		default:
		}
		if err := db.writeGate(); err != nil {
			return err
		}
		if db.health.State() == health.Degraded {
			if degradedSince.IsZero() {
				degradedSince = time.Now()
			} else if time.Since(degradedSince) > db.opts.DegradedStallTimeout {
				return wrapHealthErr(ErrDegraded, db.health.Err())
			}
		} else {
			degradedSince = time.Time{}
		}

		db.flushMu.Lock()
		var err error
		done := false
		if db.imm.Load() != nil {
			err = db.supervised(db.flushImm)
		} else {
			err = db.supervised(db.rotateAndFlush)
			done = err == nil
		}
		db.flushMu.Unlock()
		// settleBG clears the health episode on success and sleeps out the
		// backoff on a transient failure; done distinguishes "drained the
		// leftover frozen table, own rotation still pending" from finished.
		if db.settleBG(originFlush, err, boff) && done {
			db.kickCompaction()
			return nil
		}
	}
}
