package core

import (
	"errors"
	"testing"

	"clsm/internal/version"
)

// TestValidateRejectsNonsense walks every field Validate guards and checks
// both the direct call and the Open-time enforcement wrap ErrInvalidOptions.
func TestValidateRejectsNonsense(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Options)
	}{
		{"negative MemtableSize", func(o *Options) { o.MemtableSize = -1 }},
		{"negative BlockCacheSize", func(o *Options) { o.BlockCacheSize = -1 }},
		{"negative L0SlowdownTrigger", func(o *Options) { o.L0SlowdownTrigger = -1 }},
		{"negative L0StopTrigger", func(o *Options) { o.L0StopTrigger = -2 }},
		{"inverted L0 triggers", func(o *Options) { o.L0SlowdownTrigger = 10; o.L0StopTrigger = 4 }},
		{"negative CompactionThreads", func(o *Options) { o.CompactionThreads = -1 }},
		{"negative SnapshotTTL", func(o *Options) { o.SnapshotTTL = -1 }},
		{"negative RetryBaseDelay", func(o *Options) { o.RetryBaseDelay = -1 }},
		{"negative RetryMaxDelay", func(o *Options) { o.RetryMaxDelay = -1 }},
		{"negative DegradedStallTimeout", func(o *Options) { o.DegradedStallTimeout = -1 }},
		{"negative WriteRateLimit", func(o *Options) { o.WriteRateLimit = -1 }},
		{"unknown SchedulerProfile", func(o *Options) { o.SchedulerProfile = "warp-speed" }},
		{"negative Disk.L0CompactionTrigger", func(o *Options) { o.Disk.L0CompactionTrigger = -1 }},
		{"negative Disk.BaseLevelBytes", func(o *Options) { o.Disk.BaseLevelBytes = -1 }},
		{"negative Disk.TableFileSize", func(o *Options) { o.Disk.TableFileSize = -1 }},
		{"negative Disk.BlockSize", func(o *Options) { o.Disk.BlockSize = -1 }},
		{"negative Disk.BloomBitsPerKey", func(o *Options) { o.Disk.BloomBitsPerKey = -1 }},
		{"negative ValueThreshold", func(o *Options) { o.ValueThreshold = -1 }},
		{"negative ValueLogSegmentSize", func(o *Options) { o.ValueLogSegmentSize = -1 }},
		{"ValueLogGCRatio above 1", func(o *Options) { o.ValueLogGCRatio = 1.5 }},
		{"ValueThreshold above MemtableSize", func(o *Options) {
			o.MemtableSize = 1 << 10
			o.ValueThreshold = 2 << 10
		}},
		{"ValueThreshold without any log", func(o *Options) {
			o.ValueThreshold = 64
			o.DisableWAL = true
			o.SyncWrites = true
		}},
	}
	for _, tc := range cases {
		var o Options
		tc.mut(&o)
		if err := o.Validate(); !errors.Is(err, ErrInvalidOptions) {
			t.Errorf("%s: Validate = %v, want ErrInvalidOptions", tc.name, err)
		}
		if db, err := Open(o); !errors.Is(err, ErrInvalidOptions) {
			if db != nil {
				db.Close()
			}
			t.Errorf("%s: Open = %v, want ErrInvalidOptions", tc.name, err)
		}
	}
}

// TestValidateAcceptsDefaultsAndProfiles: the zero value and every named
// profile are valid configurations.
func TestValidateAcceptsDefaultsAndProfiles(t *testing.T) {
	if err := (Options{}).Validate(); err != nil {
		t.Fatalf("zero Options: %v", err)
	}
	if err := (Options{}).WithDefaults().Validate(); err != nil {
		t.Fatalf("defaulted Options: %v", err)
	}
	for _, p := range []string{"", "default", "throughput", "latency", "legacy"} {
		o := Options{SchedulerProfile: p}
		if err := o.Validate(); err != nil {
			t.Errorf("profile %q: %v", p, err)
		}
	}
	// A full sensible configuration passes untouched.
	o := Options{
		MemtableSize:      1 << 20,
		L0SlowdownTrigger: 4,
		L0StopTrigger:     8,
		CompactionThreads: 2,
		WriteRateLimit:    1 << 20,
		SchedulerProfile:  "latency",
		Disk:              version.Options{}.WithDefaults(),
	}
	if err := o.Validate(); err != nil {
		t.Fatalf("sensible Options: %v", err)
	}
}

// TestOpenRejectsInvertedTriggersAfterDefaults: setting only L0StopTrigger
// below the *defaulted* slowdown trigger is contradictory even though both
// raw fields validate individually — Open must still refuse it.
func TestOpenRejectsInvertedTriggersAfterDefaults(t *testing.T) {
	o := Options{L0StopTrigger: 2} // slowdown defaults to 8
	if err := o.Validate(); err != nil {
		t.Fatalf("raw Validate should pass (stop set, slowdown unset): %v", err)
	}
	db, err := Open(o)
	if !errors.Is(err, ErrInvalidOptions) {
		if db != nil {
			db.Close()
		}
		t.Fatalf("Open = %v, want ErrInvalidOptions after defaults", err)
	}
}
