//go:build !race

// Allocation-regression tests for the hot paths. They are excluded under
// the race detector, which instruments allocations and inflates the
// counts; scripts/check.sh runs them in a separate non-race pass.

package core

import (
	"fmt"
	"runtime"
	"testing"

	"clsm/internal/storage"
)

// TestWritePathAllocs pins the put hot path at ≤ 1 allocation per
// operation: the skip-list node. Batch encoding goes into a pooled WAL
// buffer whose ownership transfers to the logger, the internal-key scratch
// is pooled, and the logger's request/buffer/channel machinery is fully
// recycled. (The rare extras — arena chunk growth, the 1-in-256 tall
// skip-list tower — vanish in AllocsPerRun's integer average.)
func TestWritePathAllocs(t *testing.T) {
	opts := testOptions(storage.NewMemFS())
	opts.MemtableSize = 256 << 20 // no rotation during the measurement
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	key := []byte("alloc-test-key")
	value := []byte("alloc-test-value-0123456789abcdef")
	// Warm the pools and the arena.
	for i := 0; i < 2000; i++ {
		if err := db.Put(key, value); err != nil {
			t.Fatal(err)
		}
	}
	// Quiesce: a collection landing inside the window flushes the pools
	// and shows up as phantom per-op allocations.
	runtime.GC()
	allocs := testing.AllocsPerRun(5000, func() {
		if err := db.Put(key, value); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Fatalf("Put allocates %.0f times per op, want <= 1", allocs)
	}
}

// TestGetPathAllocs pins the read hot path for a cache-hit Pd lookup at
// ≤ 1 allocation per operation: the seek key is pooled scratch, the
// skip-list misses on Pm/P'm are allocation-free virtual-key seeks, and
// the SSTable point read runs on a pooled block-iterator pair over cached
// blocks.
func TestGetPathAllocs(t *testing.T) {
	opts := testOptions(storage.NewMemFS())
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	const n = 512
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key%06d", i)
		if err := db.Put([]byte(k), []byte("value-"+k)); err != nil {
			t.Fatal(err)
		}
	}
	// Push everything into the disk component so gets exercise Pd.
	if err := db.CompactRange(); err != nil {
		t.Fatal(err)
	}
	key := []byte("key000256")
	// Warm the block cache and the iterator pools.
	for i := 0; i < 200; i++ {
		if _, ok, err := db.Get(key); err != nil || !ok {
			t.Fatalf("warmup Get = %v, %v", ok, err)
		}
	}
	runtime.GC()
	allocs := testing.AllocsPerRun(5000, func() {
		v, ok, err := db.Get(key)
		if err != nil || !ok || len(v) == 0 {
			t.Fatalf("Get = %q, %v, %v", v, ok, err)
		}
	})
	if allocs > 1 {
		t.Fatalf("Get allocates %.0f times per op, want <= 1", allocs)
	}
}

// TestWritePathAllocsWithThreshold re-pins the put gate with key-value
// separation enabled: a value below the threshold must take the identical
// inline path — the routing decision is a length compare, not an
// allocation.
func TestWritePathAllocsWithThreshold(t *testing.T) {
	opts := testOptions(storage.NewMemFS())
	opts.MemtableSize = 256 << 20
	opts.ValueThreshold = 1024
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	key := []byte("alloc-test-key")
	value := []byte("alloc-test-value-0123456789abcdef") // 33 B, well inline
	for i := 0; i < 2000; i++ {
		if err := db.Put(key, value); err != nil {
			t.Fatal(err)
		}
	}
	runtime.GC()
	allocs := testing.AllocsPerRun(5000, func() {
		if err := db.Put(key, value); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Fatalf("Put with threshold allocates %.0f times per op, want <= 1", allocs)
	}
}

// TestGetPathAllocsWithThreshold re-pins the read gate with separation
// enabled: inline values never consult the value log, so the cache-hit Pd
// lookup keeps its budget.
func TestGetPathAllocsWithThreshold(t *testing.T) {
	opts := testOptions(storage.NewMemFS())
	opts.ValueThreshold = 1024
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	const n = 512
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key%06d", i)
		if err := db.Put([]byte(k), []byte("value-"+k)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.CompactRange(); err != nil {
		t.Fatal(err)
	}
	key := []byte("key000256")
	for i := 0; i < 200; i++ {
		if _, ok, err := db.Get(key); err != nil || !ok {
			t.Fatalf("warmup Get = %v, %v", ok, err)
		}
	}
	runtime.GC()
	allocs := testing.AllocsPerRun(5000, func() {
		v, ok, err := db.Get(key)
		if err != nil || !ok || len(v) == 0 {
			t.Fatalf("Get = %q, %v, %v", v, ok, err)
		}
	})
	if allocs > 1 {
		t.Fatalf("Get with threshold allocates %.0f times per op, want <= 1", allocs)
	}
}

// TestTxnReadAllocs pins the transactional read path — a snapshot get
// inside an open Txn — at ≤ 1 allocation per operation, same budget as the
// plain Get gate. The read-set and write-buffer probes are map lookups
// keyed by an unretained string(key) conversion (no allocation), the
// read-set insert amortizes to zero over repeat reads, and the underlying
// GetAt is the pinned Pd path.
func TestTxnReadAllocs(t *testing.T) {
	opts := testOptions(storage.NewMemFS())
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	const n = 512
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key%06d", i)
		if err := db.Put([]byte(k), []byte("value-"+k)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.CompactRange(); err != nil {
		t.Fatal(err)
	}
	txn, err := db.BeginTxn()
	if err != nil {
		t.Fatal(err)
	}
	defer txn.Rollback()
	key := []byte("key000256")
	for i := 0; i < 200; i++ {
		if _, ok, err := txn.Get(key); err != nil || !ok {
			t.Fatalf("warmup txn.Get = %v, %v", ok, err)
		}
	}
	runtime.GC()
	allocs := testing.AllocsPerRun(5000, func() {
		v, ok, err := txn.Get(key)
		if err != nil || !ok || len(v) == 0 {
			t.Fatalf("txn.Get = %q, %v, %v", v, ok, err)
		}
	})
	if allocs > 1 {
		t.Fatalf("txn.Get allocates %.0f times per op, want <= 1", allocs)
	}
}
