package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"clsm/internal/batch"
	"clsm/internal/storage"
	"clsm/internal/version"
)

// TestModelRandomOps drives the engine with a random operation stream and
// checks every observable against an in-memory model map, interleaving
// flushes, full compactions, and close/reopen cycles.
func TestModelRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(2025))
	fs := storage.NewMemFS()
	db := mustOpen(t, fs)
	model := map[string]string{}

	key := func() []byte { return []byte(fmt.Sprintf("key%03d", rng.Intn(400))) }

	const steps = 8000
	for i := 0; i < steps; i++ {
		switch op := rng.Intn(100); {
		case op < 45: // put
			k, v := key(), fmt.Sprintf("v%d", i)
			if err := db.Put(k, []byte(v)); err != nil {
				t.Fatal(err)
			}
			model[string(k)] = v
		case op < 55: // delete
			k := key()
			if err := db.Delete(k); err != nil {
				t.Fatal(err)
			}
			delete(model, string(k))
		case op < 85: // get
			k := key()
			v, ok, err := db.Get(k)
			if err != nil {
				t.Fatal(err)
			}
			want, wok := model[string(k)]
			if ok != wok || (ok && string(v) != want) {
				t.Fatalf("step %d: Get(%s) = %q,%v want %q,%v", i, k, v, ok, want, wok)
			}
		case op < 90: // batch
			var b batch.Batch
			for j := 0; j < rng.Intn(5)+1; j++ {
				k, v := key(), fmt.Sprintf("b%d-%d", i, j)
				b.Put(k, []byte(v))
				model[string(k)] = v
			}
			if err := db.Write(&b); err != nil {
				t.Fatal(err)
			}
		case op < 94: // RMW append
			k := key()
			err := db.RMW(k, func(old []byte, exists bool) []byte {
				if !exists {
					return []byte("r")
				}
				if len(old) > 64 {
					return old[:1]
				}
				return append(append([]byte(nil), old...), 'r')
			})
			if err != nil {
				t.Fatal(err)
			}
			// mirror in model
			old, exists := model[string(k)]
			switch {
			case !exists:
				model[string(k)] = "r"
			case len(old) > 64:
				model[string(k)] = old[:1]
			default:
				model[string(k)] = old + "r"
			}
		case op < 96: // full scan vs model
			verifyScan(t, db, model)
		case op < 98: // compaction sweep
			if err := db.CompactRange(); err != nil {
				t.Fatal(err)
			}
		default: // close + reopen (recovery path)
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}
			db = mustOpen(t, fs)
		}
	}
	verifyScan(t, db, model)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// One final recovery pass.
	db = mustOpen(t, fs)
	verifyScan(t, db, model)
	db.Close()
}

func verifyScan(t *testing.T, db *DB, model map[string]string) {
	t.Helper()
	it, err := db.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	var got []string
	for it.First(); it.Valid(); it.Next() {
		got = append(got, string(it.Key())+"="+string(it.Value()))
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	var want []string
	for k, v := range model {
		want = append(want, k+"="+v)
	}
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("scan saw %d entries, model has %d\n got: %v\nwant: %v",
			len(got), len(want), clip(got), clip(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("scan mismatch at %d: got %q want %q", i, got[i], want[i])
		}
	}
}

func clip(s []string) []string {
	if len(s) > 12 {
		return s[:12]
	}
	return s
}

// TestCrashRecoveryPrefixConsistency simulates crashes by truncating the
// newest WAL at random points: after reopening, the store must contain a
// prefix-consistent state — every key either its latest logged value or a
// value that was logged earlier, never garbage.
func TestCrashRecoveryPrefixConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		fs := storage.NewMemFS()
		db := mustOpen(t, fs)
		// Each key's value records its version; later versions supersede.
		history := map[string][]string{}
		for i := 0; i < 300; i++ {
			k := fmt.Sprintf("k%02d", rng.Intn(40))
			v := fmt.Sprintf("%s@%d", k, i)
			if err := db.Put([]byte(k), []byte(v)); err != nil {
				t.Fatal(err)
			}
			history[k] = append(history[k], v)
		}
		db.Close()

		// "Crash": chop bytes off the newest log file.
		names, _ := fs.List()
		var logs []string
		for _, n := range names {
			if kind, _, ok := version.ParseFileName(n); ok && kind == version.KindLog {
				logs = append(logs, n)
			}
		}
		if len(logs) > 0 {
			target := logs[len(logs)-1]
			data, _ := fs.ReadFile(target)
			if len(data) > 1 {
				cut := rng.Intn(len(data)-1) + 1
				fs.WriteFile(target, data[:cut])
			}
		}

		db2, err := Open(testOptions(fs))
		if err != nil {
			t.Fatalf("trial %d: reopen: %v", trial, err)
		}
		for k, versions := range history {
			v, ok, err := db2.Get([]byte(k))
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				continue // whole history lost to the truncation: acceptable
			}
			found := false
			for _, hv := range versions {
				if string(v) == hv {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("trial %d: Get(%s) = %q, not any logged version", trial, k, v)
			}
		}
		db2.Close()
	}
}

// TestIteratorSnapshotStability: an iterator must observe exactly the state
// at its creation, regardless of writes, flushes, and compactions that
// happen while it is open.
func TestIteratorSnapshotStability(t *testing.T) {
	db := mustOpen(t, storage.NewMemFS())
	defer db.Close()
	for i := 0; i < 200; i++ {
		db.Put([]byte(fmt.Sprintf("s%03d", i)), []byte("orig"))
	}
	it, err := db.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()

	// Mutate heavily afterwards.
	for i := 0; i < 200; i += 2 {
		db.Put([]byte(fmt.Sprintf("s%03d", i)), []byte("mut"))
	}
	for i := 1; i < 200; i += 4 {
		db.Delete([]byte(fmt.Sprintf("s%03d", i)))
	}
	if err := db.CompactRange(); err != nil {
		t.Fatal(err)
	}

	n := 0
	for it.First(); it.Valid(); it.Next() {
		if !bytes.Equal(it.Value(), []byte("orig")) {
			t.Fatalf("iterator saw post-snapshot value %q at %s", it.Value(), it.Key())
		}
		n++
	}
	if n != 200 {
		t.Fatalf("iterator saw %d keys, want 200", n)
	}
}
