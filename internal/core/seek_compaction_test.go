package core

import (
	"fmt"
	"testing"
	"time"

	"clsm/internal/storage"
	"clsm/internal/version"
)

// Seek-triggered compaction: a file whose gets repeatedly miss (forcing the
// search to fall through to deeper levels) exhausts its seek allowance and
// gets compacted even though no size trigger fires.
func TestSeekTriggeredCompaction(t *testing.T) {
	opts := testOptions(storage.NewMemFS())
	opts.Disk = version.Options{
		BaseLevelBytes:      64 << 20, // huge: no size-triggered compaction
		TableFileSize:       32 << 10,
		L0CompactionTrigger: 100, // L0 never triggers by count
		AllowSeekCompaction: true,
	}
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	// Build two overlapping L0 files: misses on keys present only in the
	// second file charge the first file's seek budget.
	for i := 0; i < 200; i++ {
		db.Put([]byte(fmt.Sprintf("k%04d", i)), []byte("v1"))
	}
	if err := db.forceFlush(); err != nil {
		t.Fatal(err)
	}
	for i := 100; i < 300; i++ {
		db.Put([]byte(fmt.Sprintf("k%04d", i)), []byte("v2"))
	}
	if err := db.forceFlush(); err != nil {
		t.Fatal(err)
	}
	if n := db.level0Count(); n != 2 {
		t.Fatalf("setup: L0 has %d files", n)
	}

	// A get that must consult BOTH files charges the first file's seek
	// budget (it wasted a seek): absent keys inside the overlap region
	// [100,200) range-match both files. Shrink the allowance so a handful
	// of such gets exhausts it deterministically.
	v := db.versions.Current()
	v.Levels[0][0].AllowedSeeks.Store(1)
	v.Unref()
	for i := 0; i < 50; i++ {
		db.Get([]byte(fmt.Sprintf("k%04dx", 100+i))) // absent, in both ranges
	}
	db.kickCompaction()

	deadline := time.Now().Add(5 * time.Second)
	for db.level0Count() > 1 {
		if time.Now().After(deadline) {
			t.Fatalf("seek-triggered compaction never ran (L0=%d, compactions=%d)",
				db.level0Count(), db.Metrics().Compactions)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
