package core

import (
	"bytes"
	"fmt"
	"testing"

	"clsm/internal/storage"
)

func TestApproximateSize(t *testing.T) {
	db := mustOpen(t, storage.NewMemFS())
	defer db.Close()
	val := bytes.Repeat([]byte("v"), 200)
	for i := 0; i < 5000; i++ {
		db.Put([]byte(fmt.Sprintf("k%05d", i)), val)
	}
	if err := db.CompactRange(); err != nil {
		t.Fatal(err)
	}

	whole := db.ApproximateSize(nil, nil)
	if whole == 0 {
		t.Fatal("whole-range estimate is zero")
	}
	half := db.ApproximateSize([]byte("k02500"), nil)
	if half == 0 || half >= whole {
		t.Fatalf("upper-half estimate %d vs whole %d", half, whole)
	}
	// Roughly proportional: the top half should be 25-75%% of the total.
	if ratio := float64(half) / float64(whole); ratio < 0.25 || ratio > 0.75 {
		t.Errorf("half-range ratio %.2f, expected ~0.5", ratio)
	}
	empty := db.ApproximateSize([]byte("zzz"), nil)
	if empty != 0 {
		t.Errorf("out-of-range estimate %d, want 0", empty)
	}
	slice := db.ApproximateSize([]byte("k01000"), []byte("k02000"))
	if slice == 0 || slice >= whole {
		t.Errorf("slice estimate %d out of bounds (whole %d)", slice, whole)
	}
}

func TestSeekForPrev(t *testing.T) {
	db := mustOpen(t, storage.NewMemFS())
	defer db.Close()
	for _, k := range []string{"b", "d", "f"} {
		db.Put([]byte(k), []byte("v"+k))
	}
	db.Delete([]byte("d"))
	db.Put([]byte("d2"), []byte("vd2"))

	it, _ := db.NewIterator()
	defer it.Close()

	cases := []struct {
		seek string
		want string // "" = invalid
	}{
		{"a", ""},   // everything sorts above
		{"b", "b"},  // exact hit
		{"c", "b"},  // between keys
		{"d", "b"},  // d deleted: skip the tombstone to the predecessor
		{"e", "d2"}, // d2 visible
		{"z", "f"},  // past the end -> last
	}

	for _, c := range cases {
		it.SeekForPrev([]byte(c.seek))
		if c.want == "" {
			if it.Valid() {
				t.Fatalf("SeekForPrev(%q) = %q, want invalid", c.seek, it.Key())
			}
			continue
		}
		if !it.Valid() || string(it.Key()) != c.want {
			t.Fatalf("SeekForPrev(%q) = %q (valid=%v), want %q", c.seek, it.Key(), it.Valid(), c.want)
		}
	}
}
