package core

import (
	"context"
	"time"

	"clsm/internal/batch"
	"clsm/internal/keys"
	"clsm/internal/obs"
	"clsm/internal/version"
	"clsm/internal/vlog"
	"clsm/internal/wal"
)

// Value-log garbage collection (docs/VALUELOG.md): live-ratio-driven
// segment rewrites. Compactions account garbage bytes per segment as they
// drop pointer entries; once a sealed segment's garbage fraction crosses
// Options.ValueLogGCRatio it becomes a rewrite candidate. The rewrite scans
// the segment, re-appends every still-live value to the head of the log,
// relinks the keys to the new pointers through the RMW conflict check, and
// — only after the relinked pointers are flushed into the disk component —
// logs the segment's retirement in the manifest. Physical removal is
// deferred further until no snapshot old enough to resolve the old pointers
// remains (vlog.ReapRetired).

// originVlogGC is the health origin of value-log GC work.
const originVlogGC = "vlog-gc"

// vlogGCPending reports whether a GC pass has work: a rewrite candidate or
// retired segments awaiting removal. Called by the planner every pass, so
// it must stay allocation-free.
func (db *DB) vlogGCPending() bool {
	if db.vlog.RetiredPending() > 0 {
		return true
	}
	_, ok := db.versions.VlogGCCandidate(db.opts.ValueLogGCRatio, db.vlogGCSkip)
	return ok
}

// runVlogGCJob is the scheduler job body: one candidate rewrite (or, with
// no candidate, just a reap pass) through the health machinery.
func (db *DB) runVlogGCJob() {
	if !db.bgRunnable() {
		return
	}
	db.vlogGCMu.Lock()
	_, err := db.vlogGCOnce()
	db.vlogGCMu.Unlock()
	db.settleBG(originVlogGC, err, db.vlogBoff)
}

// CompactValueLog synchronously garbage-collects the value log: every
// segment whose garbage fraction is at or past Options.ValueLogGCRatio is
// rewritten (live values relinked to the log head) and retired, and
// reclaimable retired segments are removed. It returns when no candidate
// remains or ctx is done. Safe to call concurrently with writes; rewrites
// are serialized against the background GC job.
func (db *DB) CompactValueLog(ctx context.Context) error {
	if db.closed.Load() {
		return ErrClosed
	}
	if err := db.writeGate(); err != nil {
		return err
	}
	db.vlogGCMu.Lock()
	defer db.vlogGCMu.Unlock()
	for {
		if err := ctxErr(ctx); err != nil {
			return err
		}
		select {
		case <-db.closing:
			return ErrClosed
		default:
		}
		worked, err := db.vlogGCOnce()
		if err != nil {
			db.reportForeground(originVlogGC, err)
			return err
		}
		if !worked {
			return nil
		}
	}
}

// vlogGCOnce performs one GC unit: reap whatever retired segments have
// become reclaimable, then rewrite and retire at most one candidate
// segment. Returns worked=false when no candidate remained. Caller holds
// vlogGCMu.
func (db *DB) vlogGCOnce() (worked bool, err error) {
	db.vlog.ReapRetired(db.oracle.MinSnapshot())
	num, ok := db.versions.VlogGCCandidate(db.opts.ValueLogGCRatio, db.vlogGCSkip)
	if !ok {
		return false, nil
	}
	var size uint64
	for _, m := range db.versions.VlogSegments() {
		if m.Num == num {
			size = m.Size
			break
		}
	}
	if err := db.rewriteVlogSegment(num, size); err != nil {
		return false, err
	}
	return true, nil
}

// rewriteVlogSegment relocates segment num's live values and retires it.
func (db *DB) rewriteVlogSegment(num, size uint64) error {
	start := time.Now()
	relinked := 0
	err := db.vlog.ScanSegment(num, func(key []byte, ts uint64, ptr vlog.Pointer, value []byte) error {
		select {
		case <-db.closing:
			return ErrClosed
		default:
		}
		return db.relinkValue(key, ts, ptr, value, &relinked)
	})
	if err != nil {
		return err
	}
	if relinked > 0 {
		// The relinked values must be durable before their pointers can
		// become the only reachable copy, and the pointers must be in the
		// disk component before retirement: any version pinned after the
		// retirement edit then resolves through the new pointers, which is
		// what lets checkpoints link a consistent segment set.
		if err := db.vlog.WaitSync(); err != nil {
			return err
		}
		if err := db.forceFlush(); err != nil {
			return err
		}
	}
	// An entry judged dead during the scan may be superseded only by a
	// version that is not yet durable: an in-flight put appends its value
	// to the value log and enqueues its WAL record before inserting into
	// the memtable, and acks only after the syncs. Once the retirement
	// edit lands, recovery discards pointer records into this segment —
	// so everything the scan observed as newer must be fully on disk
	// first (value bytes AND WAL record: recovery drops a record whose
	// value bytes are unreadable), or a crash could regress an acked
	// write. These two barriers cover exactly the observed set: visible
	// in the memtable ⟹ value appended and record enqueued.
	if err := db.vlog.WaitSync(); err != nil {
		return err
	}
	if logger := db.log.Load(); logger != nil {
		if err := logger.Flush(); err != nil {
			return err
		}
	}
	var e version.Edit
	e.DeleteVlogSegment(num)
	// Snapshots installed from here on see the relinked pointers; earlier
	// ones may still resolve old pointers into the segment, so physical
	// removal waits until the oldest live snapshot has passed retireTS.
	retireTS := db.oracle.Now()
	if err := db.versions.LogAndApply(&e); err != nil {
		return err
	}
	db.vlog.Retire(num, retireTS, size)
	db.vlog.ReapRetired(db.oracle.MinSnapshot())
	db.obs.VlogGCRewrites.Add(uint64(relinked))
	db.metrics.vlogGCRuns.Add(1)
	db.obs.Event(obs.Event{Type: obs.EvVlogGC, Bytes: size, Dur: time.Since(start)})
	return nil
}

// relinkValue re-appends one scanned entry's value to the log head and
// points its key at the copy, if and only if the entry is still the key's
// newest version.
//
// The exclusive lock is load-bearing, not a convenience: a put holds the
// shared lock across its whole sequence (timestamp assignment → value
// routing → WAL enqueue → memtable insert), so there is a window where a
// LOWER-timestamped put has its timestamp but is not yet visible in the
// memtable. Under the shared lock the relink's liveness check would pass,
// its fresh (higher) timestamp would win, and the old value would be
// resurrected over the concurrent put — the memtable conflict check
// cannot see a version that has not been inserted yet. Exclusive
// acquisition waits out every in-flight shared holder, making the
// check-and-insert atomic with respect to all writes (the same discipline
// atomic batches use).
func (db *DB) relinkValue(key []byte, ts uint64, ptr vlog.Pointer, value []byte, relinked *int) error {
	db.lock.LockExclusive()
	defer db.lock.UnlockExclusive()
	mt := db.mem.Load()
	if mt == nil {
		return ErrClosed
	}
	raw, vts, kind, readTS, found, err := db.readLatestRawLocked(mt, key)
	if err != nil {
		return err
	}
	// Live means: the newest version is a pointer entry naming exactly
	// this segment and offset. Timestamp equality alone is not enough —
	// a GC crash after relinking leaves two pointer versions to the same
	// value, and only the one actually stored must be chased.
	if !found || kind != keys.KindValuePtr || vts != ts {
		return nil
	}
	if p, ok := vlog.DecodePointer(raw); !ok || p.Seg != ptr.Seg || p.Off != ptr.Off {
		return nil
	}
	newTS, slot := db.oracle.GetTS()
	defer db.oracle.Done(slot)
	np, err := db.vlog.Append(key, newTS, value)
	if err != nil {
		return err
	}
	nb := vlog.AppendPointer(nil, np)
	if !mt.InsertRMWKind(key, newTS, keys.KindValuePtr, nb, readTS) {
		return nil // concurrent writer superseded the value: nothing to relink
	}
	if logger := db.log.Load(); logger != nil {
		buf := wal.GetBuf()
		*buf = batch.AppendSingle((*buf)[:0], keys.KindValuePtr, newTS, key, nb)
		if err := logger.AppendOwned(buf); err != nil {
			return err
		}
	}
	*relinked++
	return nil
}
