package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"

	"clsm/internal/batch"
	"clsm/internal/storage"
)

func TestTxnCommitAtomicVisible(t *testing.T) {
	db := mustOpen(t, storage.NewMemFS())
	defer db.Close()

	if err := db.Put([]byte("a"), []byte("a0")); err != nil {
		t.Fatal(err)
	}
	txn, err := db.BeginTxn()
	if err != nil {
		t.Fatal(err)
	}
	if v, ok, err := txn.Get([]byte("a")); err != nil || !ok || string(v) != "a0" {
		t.Fatalf("txn.Get(a) = %q,%v,%v", v, ok, err)
	}
	if err := txn.Put([]byte("a"), []byte("a1")); err != nil {
		t.Fatal(err)
	}
	if err := txn.Put([]byte("b"), []byte("b1")); err != nil {
		t.Fatal(err)
	}
	if err := txn.Delete([]byte("c")); err != nil {
		t.Fatal(err)
	}
	// Buffered writes invisible outside the txn, visible inside it.
	if _, ok, _ := db.Get([]byte("b")); ok {
		t.Fatal("uncommitted write visible outside the txn")
	}
	if v, ok, _ := txn.Get([]byte("a")); !ok || string(v) != "a1" {
		t.Fatalf("read-your-writes: got %q,%v", v, ok)
	}
	if _, ok, _ := txn.Get([]byte("c")); ok {
		t.Fatal("buffered delete not visible inside the txn")
	}
	if err := txn.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if txn.CommitTS() == 0 {
		t.Fatal("CommitTS = 0 after a writing commit")
	}
	for _, kv := range [][2]string{{"a", "a1"}, {"b", "b1"}} {
		if v, ok, err := db.Get([]byte(kv[0])); err != nil || !ok || string(v) != kv[1] {
			t.Fatalf("Get(%s) after commit = %q,%v,%v", kv[0], v, ok, err)
		}
	}
	// Double-finish is rejected, Rollback after finish is a safe no-op.
	if err := txn.Commit(); !errors.Is(err, ErrClosed) {
		t.Fatalf("second Commit = %v, want wrapped ErrClosed", err)
	}
	txn.Rollback()

	m := db.Metrics()
	if m.Txns != 1 || m.TxnConflicts != 0 {
		t.Fatalf("Metrics Txns=%d TxnConflicts=%d, want 1, 0", m.Txns, m.TxnConflicts)
	}
}

func TestTxnReadConflict(t *testing.T) {
	db := mustOpen(t, storage.NewMemFS())
	defer db.Close()

	if err := db.Put([]byte("x"), []byte("x0")); err != nil {
		t.Fatal(err)
	}
	txn, err := db.BeginTxn()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := txn.Get([]byte("x")); err != nil {
		t.Fatal(err)
	}
	// Concurrent writer updates a read-set key after the snapshot.
	if err := db.Put([]byte("x"), []byte("x1")); err != nil {
		t.Fatal(err)
	}
	if err := txn.Put([]byte("y"), []byte("y1")); err != nil {
		t.Fatal(err)
	}
	err = txn.Commit()
	if !errors.Is(err, ErrTxnConflict) {
		t.Fatalf("Commit = %v, want wrapped ErrTxnConflict", err)
	}
	if _, ok, _ := db.Get([]byte("y")); ok {
		t.Fatal("conflicted txn leaked a write")
	}
	if m := db.Metrics(); m.TxnConflicts != 1 {
		t.Fatalf("TxnConflicts = %d, want 1", m.TxnConflicts)
	}
}

func TestTxnWriteWriteConflict(t *testing.T) {
	db := mustOpen(t, storage.NewMemFS())
	defer db.Close()

	txn, err := db.BeginTxn()
	if err != nil {
		t.Fatal(err)
	}
	// Blind write to a key another writer touches first: the write set is
	// validated too, so the slower committer loses.
	if err := txn.Put([]byte("w"), []byte("mine")); err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("w"), []byte("theirs")); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); !errors.Is(err, ErrTxnConflict) {
		t.Fatalf("Commit = %v, want wrapped ErrTxnConflict", err)
	}
	if v, _, _ := db.Get([]byte("w")); string(v) != "theirs" {
		t.Fatalf("w = %q, want the first-committed value", v)
	}
}

// A version flushed to the disk component between snapshot and commit must
// still be detected: the validation path reads version timestamps out of
// sstables, not just memtables.
func TestTxnConflictAcrossFlush(t *testing.T) {
	db := mustOpen(t, storage.NewMemFS())
	defer db.Close()

	if err := db.Put([]byte("k"), []byte("v0")); err != nil {
		t.Fatal(err)
	}
	txn, err := db.BeginTxn()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := txn.Get([]byte("k")); err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("k"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	// Push the conflicting version through the full pipeline: flush it out
	// of the memtables and compact so it is served from Pd.
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.CompactRange(); err != nil {
		t.Fatal(err)
	}
	if err := txn.Put([]byte("k"), []byte("mine")); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); !errors.Is(err, ErrTxnConflict) {
		t.Fatalf("Commit after flush = %v, want wrapped ErrTxnConflict", err)
	}

	// And the inverse: a non-conflicting txn commits across a flush.
	txn2, err := db.BeginTxn()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := txn2.Get([]byte("k")); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := txn2.Put([]byte("other"), []byte("ok")); err != nil {
		t.Fatal(err)
	}
	if err := txn2.Commit(); err != nil {
		t.Fatalf("independent commit across flush: %v", err)
	}
}

func TestTxnSnapshotIsolation(t *testing.T) {
	db := mustOpen(t, storage.NewMemFS())
	defer db.Close()

	if err := db.Put([]byte("s"), []byte("old")); err != nil {
		t.Fatal(err)
	}
	txn, err := db.BeginTxn()
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("s"), []byte("new")); err != nil {
		t.Fatal(err)
	}
	// Reads stay pinned at the snapshot even after the external write.
	if v, ok, err := txn.Get([]byte("s")); err != nil || !ok || string(v) != "old" {
		t.Fatalf("txn.Get = %q,%v,%v, want the snapshot value", v, ok, err)
	}
	txn.Rollback()
}

func TestTxnReadOnlyAndRollback(t *testing.T) {
	db := mustOpen(t, storage.NewMemFS())
	defer db.Close()

	if err := db.Put([]byte("r"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Read-only txns commit trivially even when their reads went stale.
	txn, err := db.BeginTxn()
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := txn.Has([]byte("r")); err != nil || !ok {
		t.Fatalf("Has = %v,%v", ok, err)
	}
	if err := db.Put([]byte("r"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatalf("read-only Commit: %v", err)
	}
	if txn.CommitTS() != 0 {
		t.Fatal("read-only commit claimed a commit timestamp")
	}

	// Rollback discards writes.
	txn2, err := db.BeginTxn()
	if err != nil {
		t.Fatal(err)
	}
	if err := txn2.Put([]byte("gone"), []byte("x")); err != nil {
		t.Fatal(err)
	}
	txn2.Rollback()
	if _, ok, _ := db.Get([]byte("gone")); ok {
		t.Fatal("rolled-back write visible")
	}
	if err := txn2.Put([]byte("late"), nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put after Rollback = %v, want wrapped ErrClosed", err)
	}
}

func TestTxnClosureAPI(t *testing.T) {
	db := mustOpen(t, storage.NewMemFS())
	defer db.Close()

	if err := db.Txn(func(txn *Txn) error {
		return txn.Put([]byte("k"), []byte("v"))
	}); err != nil {
		t.Fatalf("Txn: %v", err)
	}
	if v, ok, _ := db.Get([]byte("k")); !ok || string(v) != "v" {
		t.Fatalf("Get = %q,%v", v, ok)
	}

	sentinel := errors.New("abort")
	if err := db.Txn(func(txn *Txn) error {
		if err := txn.Put([]byte("k"), []byte("clobbered")); err != nil {
			return err
		}
		return sentinel
	}); !errors.Is(err, sentinel) {
		t.Fatalf("Txn = %v, want the fn error", err)
	}
	if v, _, _ := db.Get([]byte("k")); string(v) != "v" {
		t.Fatalf("aborted closure leaked a write: %q", v)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := db.TxnCtx(ctx, func(txn *Txn) error { return nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("TxnCtx on canceled ctx = %v", err)
	}
}

// A retry loop over conflicting increments must converge to the exact sum
// — the transactional counterpart of the RMW counter test.
func TestTxnRetryConvergence(t *testing.T) {
	db := mustOpen(t, storage.NewMemFS())
	defer db.Close()

	key := []byte("counter")
	if err := db.Put(key, []byte("0")); err != nil {
		t.Fatal(err)
	}
	increment := func() error {
		for {
			err := db.Txn(func(txn *Txn) error {
				v, _, err := txn.Get(key)
				if err != nil {
					return err
				}
				var n int
				fmt.Sscanf(string(v), "%d", &n)
				return txn.Put(key, []byte(fmt.Sprintf("%d", n+1)))
			})
			if !errors.Is(err, ErrTxnConflict) {
				return err
			}
		}
	}
	done := make(chan error, 4)
	for g := 0; g < 4; g++ {
		go func() {
			for i := 0; i < 25; i++ {
				if err := increment(); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 4; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if v, _, _ := db.Get(key); string(v) != "100" {
		t.Fatalf("counter = %q, want 100", v)
	}
}

func TestTxnWriteCtxChecks(t *testing.T) {
	db := mustOpen(t, storage.NewMemFS())
	defer db.Close()

	if err := db.Put([]byte("p"), []byte("v0")); err != nil {
		t.Fatal(err)
	}
	mkBatch := func(k, v string) *batch.Batch {
		var b batch.Batch
		b.Put([]byte(k), []byte(v))
		return &b
	}

	// Matching checks commit.
	checks := []ReadCheck{
		{Key: []byte("p"), Value: []byte("v0"), Exists: true},
		{Key: []byte("absent"), Exists: false},
	}
	if err := db.TxnWriteCtx(context.Background(), checks, mkBatch("p", "v1")); err != nil {
		t.Fatalf("TxnWriteCtx: %v", err)
	}
	if v, _, _ := db.Get([]byte("p")); string(v) != "v1" {
		t.Fatalf("p = %q", v)
	}

	// Stale value check conflicts without applying anything.
	err := db.TxnWriteCtx(context.Background(), []ReadCheck{
		{Key: []byte("p"), Value: []byte("v0"), Exists: true},
	}, mkBatch("p", "v2"))
	if !errors.Is(err, ErrTxnConflict) {
		t.Fatalf("stale check = %v, want wrapped ErrTxnConflict", err)
	}
	if v, _, _ := db.Get([]byte("p")); string(v) != "v1" {
		t.Fatalf("conflicted TxnWrite applied: p = %q", v)
	}

	// Existence mismatch conflicts too.
	err = db.TxnWriteCtx(context.Background(), []ReadCheck{
		{Key: []byte("p"), Exists: false},
	}, nil)
	if !errors.Is(err, ErrTxnConflict) {
		t.Fatalf("existence check = %v, want wrapped ErrTxnConflict", err)
	}
}

func TestTxnAfterClose(t *testing.T) {
	db := mustOpen(t, storage.NewMemFS())
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.BeginTxn(); !errors.Is(err, ErrClosed) {
		t.Fatalf("BeginTxn on closed db = %v", err)
	}
}

// Committed txn writes must survive reopen: the commit record rides the
// same WAL batch encoding recovery already replays.
func TestTxnDurableAcrossReopen(t *testing.T) {
	fs := storage.NewMemFS()
	db := mustOpen(t, fs)
	if err := db.Txn(func(txn *Txn) error {
		if err := txn.Put([]byte("d1"), []byte("v1")); err != nil {
			return err
		}
		return txn.Put([]byte("d2"), []byte("v2"))
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db = mustOpen(t, fs)
	defer db.Close()
	for _, kv := range [][2]string{{"d1", "v1"}, {"d2", "v2"}} {
		v, ok, err := db.Get([]byte(kv[0]))
		if err != nil || !ok || !bytes.Equal(v, []byte(kv[1])) {
			t.Fatalf("Get(%s) after reopen = %q,%v,%v", kv[0], v, ok, err)
		}
	}
}
