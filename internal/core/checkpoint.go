package core

import (
	"clsm/internal/scheduler"
	"clsm/internal/storage"
)

// Checkpoint materializes a consistent, independently openable image of
// the store in dst: the memtable is flushed first (so every acknowledged
// write is in the disk component and the image needs no WAL), then the
// pinned version's sstables are linked — hard links when both sides are
// directories on one device, copies otherwise — alongside a snapshot
// MANIFEST and CURRENT. Writes that land after the flush may or may not
// be included; the image is always some consistent point in time at or
// after the call. Returns the number of tables linked.
func (db *DB) Checkpoint(dst storage.FS) (int, error) {
	if db.closed.Load() {
		return 0, ErrClosed
	}
	if err := db.Flush(); err != nil {
		return 0, err
	}
	n, err := db.versions.Checkpoint(dst)
	if err != nil {
		return n, err
	}
	db.obs.CheckpointLiveLinks.Add(uint64(n))
	return n, nil
}

// RunBackupJob runs fn on the unified scheduler's backup band — the
// lowest priority class, with its own worker slot, so a long backup ship
// never occupies a compaction slot and can never starve a flush — and
// waits for it to finish. Returns without running fn when the store is
// closed, or when background dispatch is paused (read-only quarantine or
// a fatal fault: a store in that state must not drive new background
// I/O).
func (db *DB) RunBackupJob(fn func()) error {
	if db.closed.Load() {
		return ErrClosed
	}
	done := make(chan struct{})
	ok := db.sched.Submit(scheduler.Job{
		Band: scheduler.BandBackup,
		Run:  func() { defer close(done); fn() },
	})
	if !ok {
		return wrapHealthErr(ErrReadOnly, db.health.Err())
	}
	select {
	case <-done:
		return nil
	case <-db.closing:
		// Close drops queued jobs; a job that already started finishes
		// under scheduler.Close, but this caller's store is going away.
		return ErrClosed
	}
}
