package core

import (
	"context"
	"errors"
	"time"

	"clsm/internal/batch"
	"clsm/internal/health"
	"clsm/internal/keys"
	"clsm/internal/memtable"
	"clsm/internal/obs"
	"clsm/internal/vlog"
	"clsm/internal/wal"
)

// ctxDone returns ctx's cancellation channel, tolerating a nil ctx (the
// non-Ctx entry points). A nil channel never fires in a select, so the
// ctx-free hot path pays nothing.
func ctxDone(ctx context.Context) <-chan struct{} {
	if ctx == nil {
		return nil
	}
	return ctx.Done()
}

// ctxErr mirrors ctxDone for point-in-time checks.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// Put stores (key, value). It follows Algorithm 2's put: acquire the
// shared lock, draw a timestamp (registering it in the Active set), log,
// insert into the mutable memtable, release the timestamp, unlock.
func (db *DB) Put(key, value []byte) error {
	return db.write(nil, key, value, keys.KindValue)
}

// PutCtx is Put with cancellation: throttle admission waits, memtable/L0
// stalls, and the bounded degraded-mode stall all return ctx.Err() as soon
// as ctx is done instead of sleeping out their delay. Once the write is
// admitted it completes; cancellation never leaves a half-applied write.
func (db *DB) PutCtx(ctx context.Context, key, value []byte) error {
	return db.write(ctx, key, value, keys.KindValue)
}

// Delete removes key by writing a deletion marker (the paper's ⊥).
func (db *DB) Delete(key []byte) error {
	return db.write(nil, key, nil, keys.KindDelete)
}

// DeleteCtx is Delete with cancellation (see PutCtx).
func (db *DB) DeleteCtx(ctx context.Context, key []byte) error {
	return db.write(ctx, key, nil, keys.KindDelete)
}

func (db *DB) write(ctx context.Context, key, value []byte, kind keys.Kind) error {
	if db.closed.Load() {
		return ErrClosed
	}
	if err := db.writeGate(); err != nil {
		return err
	}
	// One unconditional defer keeps it open-coded (no closure alloc).
	start := time.Now()
	op := obs.OpPut
	if kind == keys.KindDelete {
		op = obs.OpDelete
	}
	defer func() { db.obs.Record(op, time.Since(start)) }()
	if err := db.admitWrite(ctx, len(key)+len(value)); err != nil {
		return err
	}
	if err := db.makeRoomForWrite(ctx); err != nil {
		return err
	}

	logicalBytes := len(key) + len(value)
	db.lock.LockShared()
	mt := db.mem.Load()
	logger := db.log.Load()

	ts, slot := db.oracle.GetTS()
	// Large values divert to the value log before the WAL record carrying
	// their pointer is appended: in sync mode the value bytes are made
	// durable first (WaitSync inside routeValue), so a durable pointer
	// always implies a durable value.
	kind, value, verr := db.routeValue(kind, key, ts, value, logger != nil)
	if verr != nil {
		db.oracle.Done(slot)
		db.lock.UnlockShared()
		return verr
	}
	if logger != nil {
		// Encode the one-entry batch straight into a pooled WAL buffer and
		// hand ownership to the logger: no defensive copy, no allocation.
		buf := wal.GetBuf()
		*buf = batch.AppendSingle((*buf)[:0], kind, ts, key, value)
		if err := logger.AppendOwned(buf); err != nil {
			db.oracle.Done(slot)
			db.lock.UnlockShared()
			return err
		}
	}
	mt.Add(key, ts, kind, value)
	db.oracle.Done(slot)
	db.lock.UnlockShared()

	if kind == keys.KindDelete {
		db.metrics.deletes.Add(1)
	} else {
		db.metrics.puts.Add(1)
	}
	db.metrics.writeBytes.Add(uint64(logicalBytes))
	db.maybeTriggerFlush(mt)
	return nil
}

// Write applies a batch atomically. Like LevelDB (and cLSM, §4), atomic
// batches take the coarse path: the exclusive lock serializes them against
// all puts and snapshot acquisitions, so the batch's contiguous timestamp
// range is exposed all-or-nothing.
//
// When value separation is enabled (Options.ValueThreshold), entries whose
// values the engine routes to the value log are rewritten in place as
// pointer entries: a successfully written batch is consumed and must be
// rebuilt, not resubmitted.
func (db *DB) Write(b *batch.Batch) error {
	return db.writeBatch(nil, b)
}

// WriteCtx is Write with cancellation (see PutCtx): the pre-admission
// waits honor ctx, and once the batch is admitted it applies atomically —
// cancellation never splits a batch.
func (db *DB) WriteCtx(ctx context.Context, b *batch.Batch) error {
	return db.writeBatch(ctx, b)
}

func (db *DB) writeBatch(ctx context.Context, b *batch.Batch) error {
	if db.closed.Load() {
		return ErrClosed
	}
	if err := db.writeGate(); err != nil {
		return err
	}
	if b.Len() == 0 {
		return nil
	}
	start := time.Now()
	defer func() { db.obs.Record(obs.OpWrite, time.Since(start)) }()
	n := 0
	for _, e := range b.Entries() {
		n += len(e.Key) + len(e.Value)
	}
	if err := db.admitWrite(ctx, n); err != nil {
		return err
	}
	if err := db.makeRoomForWrite(ctx); err != nil {
		return err
	}

	db.lock.LockExclusive()
	mt := db.mem.Load()
	logger := db.log.Load()

	first, slot := db.oracle.GetTSBatch(uint64(b.Len()))
	b.SetTimestamps(first)
	// Divert the batch's large values to the value log (rewriting those
	// entries in place as pointer entries) with one group-committed sync
	// for the whole batch, before the WAL record is appended.
	if err := db.routeBatch(b, logger != nil); err != nil {
		db.oracle.Done(slot)
		db.lock.UnlockExclusive()
		return err
	}
	if logger != nil {
		buf := wal.GetBuf()
		*buf = b.Encode((*buf)[:0])
		if err := logger.AppendOwned(buf); err != nil {
			db.oracle.Done(slot)
			db.lock.UnlockExclusive()
			return err
		}
	}
	for _, e := range b.Entries() {
		mt.Add(e.Key, e.TS, e.Kind, e.Value)
	}
	db.oracle.Done(slot)
	db.lock.UnlockExclusive()

	db.metrics.puts.Add(uint64(b.Len()))
	db.metrics.writeBytes.Add(uint64(n))
	db.maybeTriggerFlush(mt)
	return nil
}

// RMW atomically replaces the value of key with f(current). f receives the
// current value (nil, false if the key is absent or deleted) and returns
// the value to store. The implementation is Algorithm 3: optimistic,
// non-blocking, with conflicts detected on the skip list and retried.
func (db *DB) RMW(key []byte, f func(old []byte, exists bool) []byte) error {
	if db.closed.Load() {
		return ErrClosed
	}
	if err := db.writeGate(); err != nil {
		return err
	}
	start := time.Now()
	defer func() { db.obs.Record(obs.OpRMW, time.Since(start)) }()
	// The new value's size is unknown until f runs; charge the key twice as
	// a stand-in for key+value (admission is a rate shaper, not a meter).
	if err := db.admitWrite(nil, 2*len(key)); err != nil {
		return err
	}
	if err := db.makeRoomForWrite(nil); err != nil {
		return err
	}

	db.lock.LockShared()
	defer db.lock.UnlockShared()
	mt := db.mem.Load()
	logger := db.log.Load()

	for attempt := 0; ; attempt++ {
		// Read step (Alg. 3 line 4): newest version across Pm, P'm, Pd.
		val, readTS, exists, err := db.readLatestLocked(mt, key)
		if err != nil {
			if errors.Is(err, vlog.ErrRetired) && attempt < maxDerefRetries {
				// GC relocated the value between the component search and
				// the dereference; the relink is a newer version, so the
				// retry adopts it like any other interfering write.
				continue
			}
			return err
		}
		newVal := f(val, exists)

		ts, slot := db.oracle.GetTS()
		kind, stored, verr := db.routeValue(keys.KindValue, key, ts, newVal, logger != nil)
		if verr != nil {
			db.oracle.Done(slot)
			return verr
		}
		if mt.InsertRMWKind(key, ts, kind, stored, readTS) {
			if logger != nil {
				buf := wal.GetBuf()
				*buf = batch.AppendSingle((*buf)[:0], kind, ts, key, stored)
				if err := logger.AppendOwned(buf); err != nil {
					db.oracle.Done(slot)
					return err
				}
			}
			db.oracle.Done(slot)
			db.metrics.rmws.Add(1)
			db.metrics.rmwRetries.Add(uint64(attempt))
			db.metrics.writeBytes.Add(uint64(len(key) + len(newVal)))
			db.maybeTriggerFlush(mt)
			return nil
		}
		// Conflict (Alg. 3 line 13): release the timestamp and restart.
		// A diverted value becomes unreferenced value-log garbage, swept
		// up by the next GC pass over its segment.
		db.oracle.Done(slot)
	}
}

// routeValue diverts one put's value into the value log when separation is
// enabled and the value is at or past the threshold, returning the pointer
// entry (KindValuePtr, encoded pointer) that replaces it. In sync mode with
// a WAL present it group-syncs the value bytes first, so the WAL record the
// caller appends next can never be durable ahead of the value it points at.
// Small values, deletes, and already-encoded pointers pass through
// untouched — the inline path pays only this comparison.
func (db *DB) routeValue(kind keys.Kind, key []byte, ts uint64, value []byte, logged bool) (keys.Kind, []byte, error) {
	t := db.opts.ValueThreshold
	if t <= 0 || kind != keys.KindValue || len(value) < t {
		return kind, value, nil
	}
	p, err := db.vlog.Append(key, ts, value)
	if err != nil {
		return kind, value, err
	}
	if db.opts.SyncWrites && logged {
		if err := db.vlog.WaitSync(); err != nil {
			return kind, value, err
		}
	}
	return keys.KindValuePtr, vlog.AppendPointer(nil, p), nil
}

// routeBatch is routeValue over a batch: every large value is appended to
// the value log and its entry rewritten in place as a pointer entry, then
// one group-committed WaitSync covers the whole batch (sync mode). Caller
// holds the exclusive lock with timestamps already assigned.
func (db *DB) routeBatch(b *batch.Batch, logged bool) error {
	t := db.opts.ValueThreshold
	if t <= 0 {
		return nil
	}
	routed := false
	ents := b.Entries()
	for i := range ents {
		e := &ents[i]
		if e.Kind != keys.KindValue || len(e.Value) < t {
			continue
		}
		p, err := db.vlog.Append(e.Key, e.TS, e.Value)
		if err != nil {
			return err
		}
		e.Kind = keys.KindValuePtr
		e.Value = vlog.AppendPointer(nil, p)
		routed = true
	}
	if routed && db.opts.SyncWrites && logged {
		return db.vlog.WaitSync()
	}
	return nil
}

// readLatestLocked returns the newest version of key and its timestamp,
// dereferencing a value-log pointer so the caller always sees value bytes.
// The caller holds the shared lock, so the memtable cannot rotate and any
// conflicting concurrent write must land in mt.
func (db *DB) readLatestLocked(mt *memtable.Table, key []byte) (value []byte, readTS uint64, exists bool, err error) {
	raw, _, kind, readTS, found, err := db.readLatestRawLocked(mt, key)
	if err != nil || !found {
		return nil, 0, false, err
	}
	if kind == keys.KindDelete {
		return nil, readTS, false, nil
	}
	if kind == keys.KindValuePtr {
		v, err := db.derefValue(raw)
		if err != nil {
			return nil, 0, false, err
		}
		return v, readTS, true, nil
	}
	return raw, readTS, true, nil
}

// readLatestRawLocked is the undereferenced read step shared by RMW and
// value-log GC: the newest version's raw stored bytes (an inline value or
// an encoded pointer), its kind and timestamp, and the conflict baseline
// readTS for InsertRMW. readTS is the version's timestamp when the hit came
// from Pm and 0 otherwise: every Pm version of the key is strictly newer
// than a non-Pm read (rotation is a write barrier and the shared lock is
// held), so "a version newer than ours appeared in Pm" is exactly "any
// version of the key is in Pm" — a baseline of 0 encodes that, and a retry
// re-reads through Pm and adopts the interfering version.
func (db *DB) readLatestRawLocked(mt *memtable.Table, key []byte) (value []byte, vts uint64, kind keys.Kind, readTS uint64, found bool, err error) {
	if v, ts, k, ok := mt.GetKind(key, keys.MaxTimestamp); ok {
		return v, ts, k, ts, true, nil
	}
	if imm := db.imm.Load(); imm != nil {
		if v, ts, k, ok := imm.GetKind(key, keys.MaxTimestamp); ok {
			return v, ts, k, 0, true, nil
		}
	}
	cur := db.versions.Current()
	if cur == nil {
		return nil, 0, 0, 0, false, ErrClosed
	}
	defer cur.Unref()
	sk := seekScratch.Get().(*[]byte)
	*sk = keys.AppendSeek((*sk)[:0], key, keys.MaxTimestamp)
	v, ts, k, ok, err := cur.Get(*sk)
	seekScratch.Put(sk)
	if err != nil || !ok {
		return nil, 0, 0, 0, false, err
	}
	return v, ts, k, 0, true, nil
}

// maybeTriggerFlush kicks the scheduler's planner when the mutable memtable
// crosses its soft limit (the planner turns the observation into a queued
// flush job).
func (db *DB) maybeTriggerFlush(mt *memtable.Table) {
	if mt.ApproximateSize() >= db.memBudget.Load() {
		db.sched.Kick()
	}
}

// makeRoomForWrite implements the paper's only put-side blocking: when the
// mutable memtable is full but the previous one is still being merged, or
// when L0 backs up, the writer waits outside the lock (never inside, which
// would deadlock the merge's exclusive acquisition). While the engine is
// Degraded the wait is bounded: a write may stall for at most
// DegradedStallTimeout before failing with ErrDegraded, because the merge
// it is waiting for may be retrying against a disk that never recovers.
// A non-nil ctx (the *Ctx entry points) bounds every wait — including the
// degraded stall — by ctx.Done() as well.
func (db *DB) makeRoomForWrite(ctx context.Context) error {
	slowed := false
	done := ctxDone(ctx)
	var degradedSince time.Time
	for {
		select {
		case <-db.closing:
			return ErrClosed
		case <-done:
			return ctx.Err()
		default:
		}
		if err := db.writeGate(); err != nil {
			return err
		}
		if db.health.State() == health.Degraded {
			if degradedSince.IsZero() {
				degradedSince = time.Now()
			} else if time.Since(degradedSince) > db.opts.DegradedStallTimeout {
				return wrapHealthErr(ErrDegraded, db.health.Err())
			}
		} else if !degradedSince.IsZero() {
			degradedSince = time.Time{}
		}

		// The binary L0 gate only runs under the "legacy" scheduler profile;
		// the default profiles replace it with the token-bucket admission
		// controller (admitWrite), which converts the same L0 backlog into a
		// smooth per-write delay instead of a 1ms step and a hard stop.
		if db.legacyGate {
			l0 := db.level0Count()
			switch {
			case !slowed && l0 >= db.opts.L0SlowdownTrigger && l0 < db.opts.L0StopTrigger:
				// Soft backpressure: one millisecond, once, as in LevelDB.
				start := db.stallBegin(obs.CauseL0Slowdown)
				time.Sleep(time.Millisecond)
				db.stallEnd(obs.CauseL0Slowdown, start)
				db.kickCompaction()
				slowed = true
				continue
			case l0 >= db.opts.L0StopTrigger:
				start := db.stallBegin(obs.CauseL0Stop)
				ch := *db.l0Relaxed.Load()
				db.kickCompaction()
				select {
				case <-ch:
				case <-db.closing:
					db.stallEnd(obs.CauseL0Stop, start)
					return ErrClosed
				case <-done:
					db.stallEnd(obs.CauseL0Stop, start)
					return ctx.Err()
				case <-time.After(10 * time.Millisecond):
				}
				db.stallEnd(obs.CauseL0Stop, start)
				continue
			}
		}

		mt := db.mem.Load()
		if mt == nil {
			return ErrClosed
		}
		if mt.ApproximateSize() < db.memBudget.Load() {
			return nil
		}
		// Mutable memtable is full.
		if db.imm.Load() == nil {
			// Rotation is pending; the planner will queue a flush job.
			// Writing into the (soft-limited) full memtable is allowed.
			db.sched.Kick()
			return nil
		}
		// Both memtables full: wait for the in-flight merge (the paper's
		// "blocks puts for short periods ... before batch I/Os").
		start := db.stallBegin(obs.CauseMemtableWait)
		ch := *db.immGone.Load()
		select {
		case <-ch:
		case <-db.closing:
			db.stallEnd(obs.CauseMemtableWait, start)
			return ErrClosed
		case <-done:
			db.stallEnd(obs.CauseMemtableWait, start)
			return ctx.Err()
		case <-time.After(10 * time.Millisecond):
		}
		db.stallEnd(obs.CauseMemtableWait, start)
	}
}

// stallBegin opens a stall episode: counts it, emits the begin event, and
// returns the episode start time for stallEnd.
func (db *DB) stallBegin(cause obs.StallCause) time.Time {
	db.obs.WriteStalls.Inc()
	db.obs.Event(obs.Event{Type: obs.EvStallBegin, Cause: cause})
	return time.Now()
}

// stallEnd closes a stall episode, folding its duration into the stall
// metric and emitting the end event.
func (db *DB) stallEnd(cause obs.StallCause, start time.Time) {
	d := time.Since(start)
	db.metrics.stallNanos.Add(int64(d))
	db.obs.Event(obs.Event{Type: obs.EvStallEnd, Cause: cause, Dur: d})
}

// level0Count reads the version set's atomic L0 mirror: no version
// reference is acquired, so the per-write backpressure probe stays off the
// version refcount cache line.
func (db *DB) level0Count() int {
	return db.versions.L0Count()
}

// kickCompaction asks the scheduler's planner to re-survey the tree now
// (the historical name survives: tests and the forced-flush path use it to
// expedite compaction after creating work).
func (db *DB) kickCompaction() {
	db.sched.Kick()
}
