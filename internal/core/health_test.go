package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"clsm/internal/faultfs"
	"clsm/internal/health"
	"clsm/internal/storage"
	"clsm/internal/wal"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestHealthDegradeRetryResume is the fault-tolerance acceptance scenario:
// three consecutive flush attempts die on injected sstable-write errors,
// the fourth succeeds. The engine must go Degraded (not dead), keep
// accepting writes throughout, retry with backoff, auto-resume to Healthy,
// and serve back every acknowledged write. Under the pre-health behavior
// the first failure killed the flusher and poisoned the engine, so the
// Puts below started failing — this test fails against that.
func TestHealthDegradeRetryResume(t *testing.T) {
	ffs := faultfs.Wrap(storage.NewMemFS())
	var trMu sync.Mutex
	var transitions []health.Transition
	db, err := Open(Options{
		FS:                   ffs,
		MemtableSize:         4 << 10,
		RetryBaseDelay:       time.Millisecond,
		RetryMaxDelay:        4 * time.Millisecond,
		DegradedStallTimeout: 30 * time.Second,
		OnHealthChange: func(tr health.Transition) {
			trMu.Lock()
			transitions = append(transitions, tr)
			trMu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	// Each failed attempt consumes one rule at its first table write, so
	// exactly three attempts fail and the fourth goes through.
	ffs.Arm(
		faultfs.Rule{Op: faultfs.OpWrite, Pattern: "*.sst", N: 1, Kind: faultfs.FaultErr},
		faultfs.Rule{Op: faultfs.OpWrite, Pattern: "*.sst", N: 1, Kind: faultfs.FaultErr},
		faultfs.Rule{Op: faultfs.OpWrite, Pattern: "*.sst", N: 1, Kind: faultfs.FaultErr},
	)

	// Keep writing until the injected faults have tripped at least three
	// retries; every single Put must succeed during the degraded episode.
	acked := map[string]string{}
	pad := strings.Repeat("v", 128)
	for i := 0; db.obs.BGRetries.Load() < 3 || i < 400; i++ {
		if i >= 50000 {
			t.Fatalf("faults never tripped: bg_retries = %d", db.obs.BGRetries.Load())
		}
		k := fmt.Sprintf("key-%05d", i)
		v := pad + k
		if err := db.Put([]byte(k), []byte(v)); err != nil {
			t.Fatalf("Put %s during degraded episode: %v", k, err)
		}
		acked[k] = v
		if i%64 == 0 {
			time.Sleep(time.Millisecond) // give the flusher its turn
		}
	}

	waitFor(t, 10*time.Second, "auto-resume to Healthy", func() bool {
		return db.health.State() == health.Healthy && db.obs.BGAutoResumes.Load() >= 1
	})
	if got := db.obs.BGRetries.Load(); got < 3 {
		t.Errorf("bg_retries = %d, want >= 3", got)
	}
	if db.obs.BGBytesReclaimed.Load() == 0 {
		t.Error("failed attempts reclaimed no partial-output bytes")
	}

	trMu.Lock()
	var sawDegrade, sawResume bool
	for _, tr := range transitions {
		if tr.From == health.Healthy && tr.To == health.Degraded {
			sawDegrade = true
			if !errors.Is(tr.Cause, faultfs.ErrInjected) {
				t.Errorf("degrade cause = %v, want the injected fault", tr.Cause)
			}
		}
		if tr.From == health.Degraded && tr.To == health.Healthy {
			sawResume = true
		}
	}
	trMu.Unlock()
	if !sawDegrade || !sawResume {
		t.Errorf("transitions degrade=%v resume=%v, want both", sawDegrade, sawResume)
	}

	// Drain the rest through the (now healthy) synchronous path and check
	// every acknowledged write reads back.
	if err := db.Flush(); err != nil {
		t.Fatalf("Flush after resume: %v", err)
	}
	for k, want := range acked {
		got, ok, err := db.Get([]byte(k))
		if err != nil || !ok || string(got) != want {
			t.Fatalf("Get %s after resume = %q, %v, %v", k, got, ok, err)
		}
	}
	if st := db.Health(); st.State != health.Healthy || st.Err != nil {
		t.Errorf("final health = %v (%v), want Healthy", st.State, st.Err)
	}
}

// TestHealthReadOnlyQuarantine: a corruption-classified background error
// must quarantine the store read-only — reads, snapshots, and iterators
// keep serving the installed state while every mutation fails with
// ErrReadOnly — and Resume must lift it.
func TestHealthReadOnlyQuarantine(t *testing.T) {
	db, err := Open(Options{MemtableSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	for i := 0; i < 100; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil { // half the data on disk...
		t.Fatal(err)
	}
	for i := 100; i < 120; i++ { // ...half in the memtable
		if err := db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}

	cause := fmt.Errorf("replay 000007.log: %w", wal.ErrCorrupt)
	if class := db.health.Report("test", cause); class != health.ClassCorruption {
		t.Fatalf("Report class = %v, want corruption", class)
	}
	if st := db.health.State(); st != health.ReadOnly {
		t.Fatalf("state = %v, want ReadOnly", st)
	}

	// Reads serve from both components.
	for _, k := range []string{"k050", "k110"} {
		if _, ok, err := db.Get([]byte(k)); err != nil || !ok {
			t.Fatalf("Get %s while read-only = %v, %v", k, ok, err)
		}
	}
	snap, err := db.GetSnapshot()
	if err != nil {
		t.Fatalf("GetSnapshot while read-only: %v", err)
	}
	if _, ok, err := snap.Get([]byte("k000")); err != nil || !ok {
		t.Fatalf("snapshot Get while read-only = %v, %v", ok, err)
	}
	it, err := snap.NewIterator()
	if err != nil {
		t.Fatalf("NewIterator while read-only: %v", err)
	}
	n := 0
	for it.First(); it.Valid(); it.Next() {
		n++
	}
	if err := it.Err(); err != nil || n != 120 {
		t.Fatalf("iterator while read-only: n=%d err=%v", n, err)
	}
	it.Close()
	snap.Close()

	// Mutations fail with the wrapped sentinel.
	if err := db.Put([]byte("x"), []byte("y")); !errors.Is(err, ErrReadOnly) {
		t.Errorf("Put = %v, want ErrReadOnly", err)
	}
	if err := db.Delete([]byte("k000")); !errors.Is(err, ErrReadOnly) {
		t.Errorf("Delete = %v, want ErrReadOnly", err)
	}
	if err := db.RMW([]byte("x"), func(b []byte, _ bool) []byte { return b }); !errors.Is(err, ErrReadOnly) {
		t.Errorf("RMW = %v, want ErrReadOnly", err)
	}
	if err := db.Flush(); !errors.Is(err, ErrReadOnly) {
		t.Errorf("Flush = %v, want ErrReadOnly", err)
	}
	if err := db.CompactRange(); !errors.Is(err, ErrReadOnly) {
		t.Errorf("CompactRange = %v, want ErrReadOnly", err)
	}
	if st := db.Health(); !errors.Is(st.Err, wal.ErrCorrupt) {
		t.Errorf("Health cause = %v, want the corruption", st.Err)
	}

	// Resume lifts the quarantine.
	if err := db.Resume(); err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if st := db.health.State(); st != health.Healthy {
		t.Fatalf("state after Resume = %v", st)
	}
	if err := db.Put([]byte("x"), []byte("y")); err != nil {
		t.Fatalf("Put after Resume: %v", err)
	}
}

// TestHealthPanicRecovered: a panic inside a background merge must be
// contained by the supervisor — recorded as a fatal health error with the
// process still alive — instead of crashing or silently killing the worker.
func TestHealthPanicRecovered(t *testing.T) {
	ffs := faultfs.Wrap(storage.NewMemFS())
	var panicked atomic.Bool
	ffs.SetHook(func(p faultfs.Point) {
		if p.Op == faultfs.OpWrite && strings.HasSuffix(p.Name, ".sst") &&
			panicked.CompareAndSwap(false, true) {
			panic("boom in merge")
		}
	})
	db, err := Open(Options{FS: ffs, MemtableSize: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	for i := 0; i < 400 && db.health.State() == health.Healthy; i++ {
		key := fmt.Sprintf("p%04d", i)
		if err := db.Put([]byte(key), []byte(strings.Repeat("x", 64))); err != nil {
			break // the poisoned state is asserted below
		}
	}
	waitFor(t, 10*time.Second, "panic to surface as Failed", func() bool {
		return db.health.State() == health.Failed
	})

	err = db.Put([]byte("after"), []byte("panic"))
	var pe *health.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Put after panic = %v, want a *health.PanicError", err)
	}
	if !strings.Contains(err.Error(), "background panic") || len(pe.Stack) == 0 {
		t.Errorf("panic error lost its identity: %v (stack %d bytes)", err, len(pe.Stack))
	}
	if err := db.Resume(); err == nil {
		t.Error("Resume of a Failed store succeeded, want sticky failure")
	}
}

// TestHealthCloseInterruptsBackoff: Close of a degraded store must cancel
// the worker's in-flight backoff wait promptly instead of sleeping it out.
func TestHealthCloseInterruptsBackoff(t *testing.T) {
	ffs := faultfs.Wrap(storage.NewMemFS())
	rules := make([]faultfs.Rule, 20)
	for i := range rules {
		rules[i] = faultfs.Rule{Op: faultfs.OpWrite, Pattern: "*.sst", N: 1, Kind: faultfs.FaultErr}
	}
	ffs.Arm(rules...)
	db, err := Open(Options{
		FS:                   ffs,
		MemtableSize:         4 << 10,
		RetryBaseDelay:       30 * time.Second,
		RetryMaxDelay:        30 * time.Second,
		DegradedStallTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; db.obs.BGRetries.Load() == 0; i++ {
		if i >= 50000 {
			t.Fatal("fault never tripped")
		}
		if err := db.Put([]byte(fmt.Sprintf("c%05d", i)), []byte(strings.Repeat("x", 64))); err != nil {
			if errors.Is(err, ErrDegraded) {
				// On a loaded machine the write budget can fill and stall
				// out before the retry counter ticks — the store is in the
				// degraded state the loop was waiting for either way.
				break
			}
			t.Fatalf("Put: %v", err)
		}
	}
	// The flusher is now parked in a ~30s backoff wait.
	start := time.Now()
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("Close of a degraded store took %v, want prompt", d)
	}
}

// TestHealthResumeInterruptsBackoff: an explicit Resume must cut the
// backoff wait short so the retry happens immediately, not after the
// remaining delay.
func TestHealthResumeInterruptsBackoff(t *testing.T) {
	ffs := faultfs.Wrap(storage.NewMemFS())
	ffs.Arm(faultfs.Rule{Op: faultfs.OpWrite, Pattern: "*.sst", N: 1, Kind: faultfs.FaultErr})
	db, err := Open(Options{
		FS:                   ffs,
		MemtableSize:         4 << 10,
		RetryBaseDelay:       30 * time.Second,
		RetryMaxDelay:        30 * time.Second,
		DegradedStallTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; db.obs.BGRetries.Load() == 0; i++ {
		if i >= 50000 {
			t.Fatal("fault never tripped")
		}
		if err := db.Put([]byte(fmt.Sprintf("r%05d", i)), []byte(strings.Repeat("x", 64))); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if err := db.Resume(); err != nil {
		t.Fatalf("Resume: %v", err)
	}
	// The spent rule lets the immediate retry succeed; with a 30s backoff
	// only the resume broadcast can make this fast.
	waitFor(t, 2*time.Second, "flush to complete after Resume", func() bool {
		return db.health.State() == health.Healthy && db.imm.Load() == nil && db.metrics.flushes.Load() > 0
	})
}

// TestHealthDegradedStallTimeout: once the in-memory budget is exhausted
// under a persistent transient fault, a write may stall only for the
// configured bound and must then fail with ErrDegraded, not block forever.
func TestHealthDegradedStallTimeout(t *testing.T) {
	ffs := faultfs.Wrap(storage.NewMemFS())
	rules := make([]faultfs.Rule, 50)
	for i := range rules {
		rules[i] = faultfs.Rule{Op: faultfs.OpWrite, Pattern: "*.sst", N: 1, Kind: faultfs.FaultErr}
	}
	ffs.Arm(rules...)
	db, err := Open(Options{
		FS:                   ffs,
		MemtableSize:         2 << 10,
		RetryBaseDelay:       5 * time.Millisecond,
		RetryMaxDelay:        10 * time.Millisecond,
		DegradedStallTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	var stallErr error
	for i := 0; i < 50000; i++ {
		if err := db.Put([]byte(fmt.Sprintf("s%05d", i)), []byte(strings.Repeat("x", 64))); err != nil {
			stallErr = err
			break
		}
	}
	if !errors.Is(stallErr, ErrDegraded) {
		t.Fatalf("stalled write failed with %v, want ErrDegraded", stallErr)
	}
	if !errors.Is(stallErr, faultfs.ErrInjected) {
		t.Errorf("ErrDegraded lost its cause: %v", stallErr)
	}
}
