package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"clsm/internal/faultfs"
	"clsm/internal/obs"
	"clsm/internal/storage"
)

// slowDiskDB opens an engine on a faultfs-wrapped MemFS whose sstable
// writes are slowed by d, with a small memtable so background work backs up
// quickly under load.
func slowDiskDB(t *testing.T, d time.Duration, opt func(*Options)) (*DB, *faultfs.FS) {
	t.Helper()
	ffs := faultfs.Wrap(storage.NewMemFS())
	ffs.SetDelay(faultfs.OpWrite, "*.sst", d)
	opts := Options{FS: ffs, MemtableSize: 32 << 10}
	if opt != nil {
		opt(&opts)
	}
	db, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { db.Close() })
	return db, ffs
}

// TestThrottleEngagesAndRecovers drives sustained writes against a slow
// disk and asserts the admission controller's whole lifecycle: it
// activates under backlog (throttle-on event, throttled writes recorded),
// it never falls back to the legacy hard L0 stop, and once the load stops
// and the backlog drains it deactivates and the debt gauge returns to
// zero.
func TestThrottleEngagesAndRecovers(t *testing.T) {
	db, ffs := slowDiskDB(t, 2*time.Millisecond, nil)

	value := make([]byte, 512)
	deadline := time.Now().Add(4 * time.Second)
	for i := 0; time.Now().Before(deadline); i++ {
		if err := db.Put([]byte(fmt.Sprintf("key-%06d", i)), value); err != nil {
			t.Fatalf("Put: %v", err)
		}
		if db.obs.WriteThrottle.Count() > 25 {
			break // throttle engaged and shaped a batch of writes
		}
	}
	if n := db.obs.WriteThrottle.Count(); n == 0 {
		t.Fatal("write throttle never engaged under slow-disk load")
	}

	sawOn := false
	for _, e := range db.obs.Trace.Events() {
		if e.Type == obs.EvThrottleOn {
			sawOn = true
			if e.Bytes == 0 {
				t.Error("throttle-on event carries zero rate")
			}
		}
		if e.Type == obs.EvStallBegin && e.Cause == obs.CauseL0Stop {
			t.Error("hard L0 stop fired despite the admission controller")
		}
	}
	if !sawOn {
		t.Error("no throttle-on trace event recorded")
	}

	// Load stopped: un-slow the disk and wait for the backlog to drain and
	// the admitted rate to recover all the way to deactivation.
	ffs.SetDelay(faultfs.OpWrite, "*.sst", 0)
	drained := false
	for wait := time.Now().Add(30 * time.Second); time.Now().Before(wait); {
		if db.obs.CompactionDebt.Load() == 0 && db.obs.ThrottleRate.Load() == 0 {
			drained = true
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !drained {
		t.Fatalf("backlog never drained: debt=%d rate=%d",
			db.obs.CompactionDebt.Load(), db.obs.ThrottleRate.Load())
	}
	if got := db.throttle.Rate(); got != 0 {
		t.Fatalf("throttle still active after drain: rate=%d", got)
	}
}

// TestThrottleWaitsAreGradual asserts the shape of the imposed delays: the
// backpressure arrives as many small per-write waits that pace the load to
// the admitted rate, never as one hard stop — each wait is bounded by the
// controller's 250ms clamp while the total tracks bytes/rate.
func TestThrottleWaitsAreGradual(t *testing.T) {
	// A tiny hard rate limit makes waits deterministic without a slow disk.
	db, _ := slowDiskDB(t, 0, func(o *Options) {
		o.WriteRateLimit = 64 << 10 // 64 KiB/s
	})
	value := make([]byte, 1024)
	var waits []time.Duration
	start := time.Now()
	for i := 0; i < 12; i++ {
		s := time.Now()
		if err := db.Put([]byte(fmt.Sprintf("k%03d", i)), value); err != nil {
			t.Fatalf("Put: %v", err)
		}
		waits = append(waits, time.Since(s))
	}
	elapsed := time.Since(start)
	// ~12 KiB at 64 KiB/s must take ~190ms of imposed delay in total; a
	// binary gate would have admitted everything instantly (burst) or
	// parked a writer for the full 1s clamp.
	if elapsed < 100*time.Millisecond {
		t.Fatalf("load was not paced: 12 KiB at 64 KiB/s finished in %v", elapsed)
	}
	slowed := 0
	for i, w := range waits {
		if w > 500*time.Millisecond {
			t.Fatalf("wait %d = %v: one cliff-sized stall instead of gradual pacing", i, w)
		}
		if w > 5*time.Millisecond {
			slowed++
		}
	}
	if slowed < len(waits)/2 {
		t.Errorf("delay concentrated in %d/%d puts; want it spread across the batch", slowed, len(waits))
	}
}

// TestCloseInterruptsThrottledWriter parks a writer in a clamp-length
// admission wait and closes the store: the writer must return ErrClosed
// promptly instead of sleeping out its delay.
func TestCloseInterruptsThrottledWriter(t *testing.T) {
	db, _ := slowDiskDB(t, 0, func(o *Options) {
		o.WriteRateLimit = 16 // bytes/s: every put waits the full clamp
	})
	var wg sync.WaitGroup
	errC := make(chan error, 1)
	start := time.Now()
	wg.Add(1)
	go func() {
		defer wg.Done()
		errC <- db.Put([]byte("parked"), make([]byte, 256))
	}()
	time.Sleep(50 * time.Millisecond)
	db.Close()
	wg.Wait()
	if err := <-errC; !errors.Is(err, ErrClosed) {
		t.Fatalf("parked Put returned %v, want ErrClosed", err)
	}
	if e := time.Since(start); e > 600*time.Millisecond {
		t.Fatalf("Close took %v to interrupt the throttled writer", e)
	}
}

// TestResumeInterruptsThrottledWriter parks a writer the same way and
// calls Resume: the operator override must admit it immediately and reset
// the bucket.
func TestResumeInterruptsThrottledWriter(t *testing.T) {
	db, _ := slowDiskDB(t, 0, func(o *Options) {
		o.WriteRateLimit = 16
	})
	errC := make(chan error, 1)
	start := time.Now()
	go func() {
		errC <- db.Put([]byte("parked"), make([]byte, 256))
	}()
	time.Sleep(50 * time.Millisecond)
	if err := db.Resume(); err != nil {
		t.Fatalf("Resume: %v", err)
	}
	select {
	case err := <-errC:
		if err != nil {
			t.Fatalf("parked Put returned %v after Resume", err)
		}
	case <-time.After(600 * time.Millisecond):
		t.Fatal("Resume did not release the throttled writer")
	}
	if e := time.Since(start); e > 600*time.Millisecond {
		t.Fatalf("release took %v", e)
	}
}
