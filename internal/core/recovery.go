package core

import (
	"fmt"
	"io"
	"sort"

	"clsm/internal/batch"
	"clsm/internal/keys"
	"clsm/internal/memtable"
	"clsm/internal/version"
	"clsm/internal/vlog"
	"clsm/internal/wal"
)

// pointerReadable reports whether a replayed pointer record dereferences
// cleanly: the segment exists and the entry's framing and checksum match.
func (db *DB) pointerReadable(ptr []byte) bool {
	p, ok := vlog.DecodePointer(ptr)
	if !ok {
		return false
	}
	_, err := db.vlog.Get(p, nil)
	return err == nil
}

// recoverWAL replays the write-ahead logs left by the previous incarnation.
// cLSM relaxes the single-writer constraint, so log records are not in
// timestamp order; every entry carries its own timestamp, and replaying
// them into the versioned memtable restores the correct order (§4).
//
// The replayed state is flushed straight to L0 and the logs removed, so
// the engine always starts with an empty memtable and a fresh WAL.
func (db *DB) recoverWAL() error {
	names, err := db.fs.List()
	if err != nil {
		return err
	}
	minLog := db.versions.LogNum()
	var logs []uint64
	for _, name := range names {
		kind, num, ok := version.ParseFileName(name)
		if !ok || kind != version.KindLog {
			continue
		}
		if num < minLog {
			// Fully merged before the crash; just clean it up.
			if db.fs.Remove(name) == nil {
				db.obs.OrphanFilesRemoved.Add(1)
			}
			continue
		}
		logs = append(logs, num)
	}
	if len(logs) == 0 {
		return nil
	}
	sort.Slice(logs, func(i, j int) bool { return logs[i] < logs[j] })

	mt := memtable.New(0)
	defer mt.Unref()
	var maxTS uint64
	entries := 0
	for _, num := range logs {
		n, m, err := db.replayLog(num, mt)
		if err != nil {
			return err
		}
		entries += n
		if m > maxTS {
			maxTS = m
		}
	}
	db.oracle.Advance(maxTS)

	if entries > 0 {
		edit, _, err := db.compactor.FlushMemtable(mt, maxTS)
		if err != nil {
			return err
		}
		edit.SetLastTS(maxTS)
		edit.SetLogNum(logs[len(logs)-1] + 1)
		if err := db.versions.LogAndApply(edit); err != nil {
			return err
		}
	}
	for _, num := range logs {
		db.fs.Remove(version.LogFileName(num))
	}
	return nil
}

// replayLog feeds one log file's intact record prefix into mt.
func (db *DB) replayLog(num uint64, mt *memtable.Table) (entries int, maxTS uint64, err error) {
	src, err := db.fs.Open(version.LogFileName(num))
	if err != nil {
		return 0, 0, fmt.Errorf("core: open wal %d: %w", num, err)
	}
	defer src.Close()
	r := wal.NewReader(src)
	r.StrictTail = db.opts.StrictWALTail
	for {
		rec, err := r.Next()
		if err == io.EOF {
			if _, torn := r.TornTail(); torn {
				db.obs.WALTornTails.Add(1)
			}
			return entries, maxTS, nil
		}
		if err != nil {
			// Mid-file corruption is a hard error; a torn tail surfaced
			// as io.EOF above and is expected after a crash.
			return entries, maxTS, fmt.Errorf("core: wal %d: %w", num, err)
		}
		es, err := batch.Decode(rec)
		if err != nil {
			return entries, maxTS, fmt.Errorf("core: wal %d: %w", num, err)
		}
		for _, e := range es {
			if e.Kind == keys.KindValuePtr && !db.pointerReadable(e.Value) {
				// A pointer record whose value bytes never became durable
				// (a torn value-log tail, possible only in async mode —
				// sync mode syncs the value before the WAL record) was
				// necessarily unacknowledged: drop it rather than recover
				// a pointer to garbage.
				continue
			}
			mt.Add(e.Key, e.TS, e.Kind, e.Value)
			if e.TS > maxTS {
				maxTS = e.TS
			}
			entries++
			db.obs.RecoveryRecords.Add(1)
		}
	}
}
