package core

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"clsm/internal/storage"
	"clsm/internal/version"
)

// vlogTestOptions enables key-value separation with a low threshold and
// tiny segments so a short test exercises rotation and GC.
func vlogTestOptions(fs storage.FS) Options {
	o := testOptions(fs)
	o.ValueThreshold = 64
	o.ValueLogSegmentSize = 8 << 10
	o.ValueLogGCRatio = 0.3
	return o
}

func bigVal(i, n int) []byte {
	b := make([]byte, 0, n)
	stamp := fmt.Sprintf("big-%06d-", i)
	for len(b) < n {
		b = append(b, stamp...)
	}
	return b[:n]
}

func TestVlogPutGetRoundTrip(t *testing.T) {
	db, err := Open(vlogTestOptions(storage.NewMemFS()))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	// Mix of inline (< threshold) and separated (>= threshold) values.
	for i := 0; i < 200; i++ {
		k := []byte(fmt.Sprintf("key-%04d", i))
		var v []byte
		if i%2 == 0 {
			v = bigVal(i, 200)
		} else {
			v = []byte(fmt.Sprintf("small-%04d", i))
		}
		if err := db.Put(k, v); err != nil {
			t.Fatal(err)
		}
	}
	check := func(stage string) {
		t.Helper()
		for i := 0; i < 200; i++ {
			k := []byte(fmt.Sprintf("key-%04d", i))
			var want []byte
			if i%2 == 0 {
				want = bigVal(i, 200)
			} else {
				want = []byte(fmt.Sprintf("small-%04d", i))
			}
			got, ok, err := db.Get(k)
			if err != nil || !ok {
				t.Fatalf("%s: Get %s = ok=%v err=%v", stage, k, ok, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s: Get %s: %d bytes, want %d", stage, k, len(got), len(want))
			}
		}
	}
	check("memtable")
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	check("after flush")
	if err := db.CompactRange(); err != nil {
		t.Fatal(err)
	}
	check("after compaction")

	m := db.Metrics()
	if m.VlogSegments == 0 {
		t.Fatal("no value-log segments despite 100 large puts")
	}
	if err := db.Delete([]byte("key-0000")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := db.Get([]byte("key-0000")); ok {
		t.Fatal("deleted large value still visible")
	}
}

func TestVlogIteratorAndSnapshot(t *testing.T) {
	db, err := Open(vlogTestOptions(storage.NewMemFS()))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	const n = 50
	for i := 0; i < n; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%03d", i)), bigVal(i, 150)); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := db.GetSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()

	// Overwrite under the snapshot: it must keep resolving the old values.
	for i := 0; i < n; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%03d", i)), bigVal(i+1000, 150)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}

	it, err := snap.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	i := 0
	for it.First(); it.Valid(); it.Next() {
		want := bigVal(i, 150)
		if string(it.Key()) != fmt.Sprintf("k%03d", i) {
			t.Fatalf("iterator key %d = %q", i, it.Key())
		}
		if !bytes.Equal(it.Value(), want) {
			t.Fatalf("iterator value for %q resolved to wrong bytes (%d long)", it.Key(), len(it.Value()))
		}
		i++
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if i != n {
		t.Fatalf("snapshot iterator yielded %d keys, want %d", i, n)
	}
	v, ok, err := snap.Get([]byte("k007"))
	if err != nil || !ok || !bytes.Equal(v, bigVal(7, 150)) {
		t.Fatalf("snapshot Get = ok=%v err=%v (%d bytes)", ok, err, len(v))
	}
}

func TestVlogGCReclaimsGarbage(t *testing.T) {
	db, err := Open(vlogTestOptions(storage.NewMemFS()))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	// Overwrite a small key set many times: most vlog entries become
	// garbage, so GC must find candidates and shrink the segment set.
	const rounds, nKeys = 30, 20
	for r := 0; r < rounds; r++ {
		for i := 0; i < nKeys; i++ {
			if err := db.Put([]byte(fmt.Sprintf("k%03d", i)), bigVal(r*nKeys+i, 300)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.CompactRange(); err != nil {
		t.Fatal(err)
	}
	before := db.Metrics()
	if before.VlogGarbageBytes == 0 {
		t.Fatal("compaction accounted no vlog garbage despite heavy overwrites")
	}
	if err := db.CompactValueLog(context.Background()); err != nil {
		t.Fatal(err)
	}
	after := db.Metrics()
	if after.VlogGCRuns == 0 {
		t.Fatal("CompactValueLog performed no rewrites")
	}
	if after.VlogSegments >= before.VlogSegments {
		t.Fatalf("segments did not shrink: %d -> %d", before.VlogSegments, after.VlogSegments)
	}
	// Latest versions survive the rewrite.
	for i := 0; i < nKeys; i++ {
		want := bigVal((rounds-1)*nKeys+i, 300)
		got, ok, err := db.Get([]byte(fmt.Sprintf("k%03d", i)))
		if err != nil || !ok || !bytes.Equal(got, want) {
			t.Fatalf("after GC: Get k%03d = ok=%v err=%v (%d bytes)", i, ok, err, len(got))
		}
	}
}

func TestVlogReopenRecoversPointers(t *testing.T) {
	fs := storage.NewMemFS()
	db, err := Open(vlogTestOptions(fs))
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	for i := 0; i < n; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%03d", i)), bigVal(i, 180)); err != nil {
			t.Fatal(err)
		}
	}
	// Half stay WAL-only, half are flushed into sstables.
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i += 2 {
		if err := db.Put([]byte(fmt.Sprintf("k%03d", i)), bigVal(i+500, 180)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen WITHOUT the threshold: stored pointers must still resolve —
	// the knob shapes writes, never reads.
	db2, err := Open(testOptions(fs))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	for i := 0; i < n; i++ {
		want := bigVal(i, 180)
		if i%2 == 0 {
			want = bigVal(i+500, 180)
		}
		got, ok, err := db2.Get([]byte(fmt.Sprintf("k%03d", i)))
		if err != nil || !ok || !bytes.Equal(got, want) {
			t.Fatalf("recovered Get k%03d = ok=%v err=%v (%d bytes)", i, ok, err, len(got))
		}
	}
}

func TestVlogTxnLargeValues(t *testing.T) {
	db, err := Open(vlogTestOptions(storage.NewMemFS()))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	if err := db.Txn(func(tx *Txn) error {
		for i := 0; i < 10; i++ {
			if err := tx.Put([]byte(fmt.Sprintf("t%02d", i)), bigVal(i, 256)); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		got, ok, err := db.Get([]byte(fmt.Sprintf("t%02d", i)))
		if err != nil || !ok || !bytes.Equal(got, bigVal(i, 256)) {
			t.Fatalf("txn Get t%02d = ok=%v err=%v", i, ok, err)
		}
	}
	// RMW over a separated value must see the dereferenced bytes.
	if err := db.RMW([]byte("t03"), func(old []byte, exists bool) []byte {
		if !exists || !bytes.Equal(old, bigVal(3, 256)) {
			t.Errorf("RMW saw wrong old value (exists=%v, %d bytes)", exists, len(old))
		}
		return append(old, []byte("-amended")...)
	}); err != nil {
		t.Fatal(err)
	}
	got, ok, _ := db.Get([]byte("t03"))
	if !ok || !bytes.HasSuffix(got, []byte("-amended")) || len(got) != 256+len("-amended") {
		t.Fatalf("RMW result wrong (%d bytes)", len(got))
	}
}

// TestVlogDisabledParity pins the compatibility contract: with the
// threshold off (the default), no value-log files appear and behavior is
// byte-for-byte the inline path.
func TestVlogDisabledParity(t *testing.T) {
	fs := storage.NewMemFS()
	db := mustOpen(t, fs)
	defer db.Close()

	for i := 0; i < 50; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%03d", i)), bigVal(i, 4096)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if m := db.Metrics(); m.VlogSegments != 0 {
		t.Fatalf("threshold disabled but %d vlog segments exist", m.VlogSegments)
	}
	names, err := fs.List()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		if kind, _, ok := version.ParseFileName(name); ok && kind == version.KindValueLog {
			t.Fatalf("threshold disabled but %s exists", name)
		}
	}
	if err := db.CompactValueLog(context.Background()); err != nil {
		t.Fatalf("CompactValueLog on inline store: %v", err)
	}
}
