package core

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"clsm/internal/oracle"
	"clsm/internal/storage"
)

// TestTxnSerializability is the executable form of the commit-validation
// correctness claim: 8 concurrent transactional writers hammer a small hot
// keyspace (reads + writes + deletes, retry on conflict) while a
// background goroutine forces flushes so validation crosses all three
// components; every committed transaction is recorded — snapshot
// timestamp, commit timestamp, snapshot observations, writes — and the
// oracle's serializability checker must find an equivalent serial order
// (or fail naming the offending cycle). Run under -race by check.sh.
func TestTxnSerializability(t *testing.T) {
	db := mustOpen(t, storage.NewMemFS())
	defer db.Close()

	const workers = 8
	const txnsPerWorker = 50
	keyPool := make([][]byte, 12)
	for i := range keyPool {
		keyPool[i] = []byte(fmt.Sprintf("k-%02d", i))
	}

	hist := oracle.NewHistory()
	var conflicts, committed atomic.Uint64
	var idSeq atomic.Int64

	// Background flusher: committed versions migrate Pm -> P'm -> Pd while
	// transactions validate against them.
	stop := make(chan struct{})
	var flusher sync.WaitGroup
	flusher.Add(1)
	go func() {
		defer flusher.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(5 * time.Millisecond):
				_ = db.Flush()
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			for i := 0; i < txnsPerWorker; i++ {
				for attempt := 0; ; attempt++ {
					txn, err := db.BeginTxn()
					if err != nil {
						t.Error(err)
						return
					}
					// Snapshot observations first — reads of keys the txn
					// has already written would reflect the write buffer,
					// not the snapshot, and must not be recorded.
					perm := rng.Perm(len(keyPool))
					var reads []oracle.TxnRead
					for _, ki := range perm[:2] {
						v, ok, err := txn.Get(keyPool[ki])
						if err != nil {
							t.Error(err)
							txn.Rollback()
							return
						}
						reads = append(reads, oracle.TxnRead{
							Key: string(keyPool[ki]), Value: v, Exists: ok,
						})
					}
					// Yield mid-transaction so snapshot windows genuinely
					// overlap even on a single core (otherwise each worker
					// can run its whole loop inside one scheduler quantum
					// and the test never exercises validation).
					runtime.Gosched()
					var writes []oracle.TxnOp
					for j, ki := range perm[2 : 2+1+rng.Intn(2)] {
						key := keyPool[ki]
						if rng.Intn(10) == 0 {
							if err := txn.Delete(key); err != nil {
								t.Error(err)
								return
							}
							writes = append(writes, oracle.TxnOp{Key: string(key), Tombstone: true})
						} else {
							val := []byte(fmt.Sprintf("w%d-%d-%d-%d", w, i, attempt, j))
							if err := txn.Put(key, val); err != nil {
								t.Error(err)
								return
							}
							writes = append(writes, oracle.TxnOp{Key: string(key), Value: val})
						}
					}
					err = txn.Commit()
					if errors.Is(err, ErrTxnConflict) {
						conflicts.Add(1)
						continue
					}
					if err != nil {
						t.Error(err)
						return
					}
					committed.Add(1)
					hist.Add(oracle.TxnRecord{
						ID:         int(idSeq.Add(1)),
						SnapshotTS: txn.SnapshotTS(),
						CommitTS:   txn.CommitTS(),
						Reads:      reads,
						Writes:     writes,
					})
					break
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	flusher.Wait()

	if got := committed.Load(); got != workers*txnsPerWorker {
		t.Fatalf("committed %d txns, want %d", got, workers*txnsPerWorker)
	}
	// A contended run that never conflicts is not exercising validation.
	if conflicts.Load() == 0 {
		t.Fatal("no conflicts on a hot keyspace: validation untested")
	}
	t.Logf("committed=%d conflicts=%d", committed.Load(), conflicts.Load())

	order, err := hist.Check()
	if err != nil {
		t.Fatalf("serializability violated: %v", err)
	}
	if len(order) != int(committed.Load()) {
		t.Fatalf("serial order covers %d of %d txns", len(order), committed.Load())
	}

	// The engine-level invariant behind the checker's success: no committed
	// transaction saw another commit touch a read-set key inside its
	// (snapshot, commit) validation window.
	for _, r := range hist.Records() {
		for _, rd := range r.Reads {
			if ids := hist.VersionsIn(rd.Key, r.SnapshotTS, r.CommitTS-1); len(ids) > 0 {
				t.Fatalf("txn %d read %q at snapshot %d but txns %v wrote it before commit %d",
					r.ID, rd.Key, r.SnapshotTS, ids, r.CommitTS)
			}
		}
	}

	if m := db.Metrics(); m.Txns != committed.Load() || m.TxnConflicts != conflicts.Load() {
		t.Fatalf("metrics Txns=%d TxnConflicts=%d, want %d, %d",
			m.Txns, m.TxnConflicts, committed.Load(), conflicts.Load())
	}
}
