package core

import (
	"bytes"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"clsm/internal/compaction"
	"clsm/internal/iterator"
	"clsm/internal/keys"
	"clsm/internal/memtable"
	"clsm/internal/obs"
	"clsm/internal/syncutil"
	"clsm/internal/version"
)

// Snapshot is a consistent read-only view of the store at one timestamp
// (Algorithm 2's getSnap). It must be released with Close when no longer
// needed, or merges cannot reclaim the versions it pins. When
// Options.SnapshotTTL is set, the engine reclaims forgotten handles after
// the TTL, as the paper's §3.2.1 prescribes; an expired snapshot's reads
// fail with ErrSnapshotExpired.
type Snapshot struct {
	db      *DB
	ts      uint64
	closed  atomic.Bool
	expired atomic.Bool
	created time.Time
}

// ErrSnapshotExpired is returned by reads on a snapshot reclaimed by the
// TTL sweeper.
var ErrSnapshotExpired = errors.New("clsm: snapshot handle expired (TTL)")

// GetSnapshot acquires a snapshot handle. The snapshot is serializable: it
// reflects the store at a single logical time, possibly slightly in the
// past (set Options.LinearizableSnapshots for the blocking, linearizable
// variant described in §3.2.1).
func (db *DB) GetSnapshot() (*Snapshot, error) {
	if db.closed.Load() {
		return nil, ErrClosed
	}
	db.metrics.snapshots.Add(1)
	start := time.Now()
	defer func() { db.obs.Record(obs.OpGetSnapshot, time.Since(start)) }()

	var floor uint64
	if db.opts.LinearizableSnapshots {
		floor = db.oracle.Now()
	}
	db.lock.LockShared()
	ts := db.oracle.SnapshotTS()
	for ts < floor {
		// Linearizable variant: insist on a snapshot no older than the
		// counter observed at call time.
		ts = db.oracle.SnapshotTS()
	}
	db.oracle.InstallSnapshot(ts)
	db.lock.UnlockShared()
	snap := &Snapshot{db: db, ts: ts, created: time.Now()}
	if db.opts.SnapshotTTL > 0 {
		db.snapMu.Lock()
		db.ttlSnaps = append(db.ttlSnaps, snap)
		db.snapMu.Unlock()
	}
	return snap, nil
}

// sweepExpiredSnapshots releases handles older than the TTL so abandoned
// snapshots cannot pin obsolete versions forever.
func (db *DB) sweepExpiredSnapshots(now time.Time) {
	db.snapMu.Lock()
	live := db.ttlSnaps[:0]
	var expired []*Snapshot
	for _, s := range db.ttlSnaps {
		switch {
		case s.closed.Load():
			// Dropped by the application; forget it.
		case now.Sub(s.created) > db.opts.SnapshotTTL:
			expired = append(expired, s)
		default:
			live = append(live, s)
		}
	}
	db.ttlSnaps = live
	db.snapMu.Unlock()
	var reclaimed uint64
	for _, s := range expired {
		if s.closed.CompareAndSwap(false, true) {
			s.expired.Store(true)
			db.oracle.ReleaseSnapshot(s.ts)
			reclaimed++
		}
	}
	if reclaimed > 0 {
		db.obs.Event(obs.Event{Type: obs.EvSnapshotReclaim, Bytes: reclaimed})
	}
}

// TS exposes the snapshot timestamp (tests, tools).
func (s *Snapshot) TS() uint64 { return s.ts }

// Get reads key as of the snapshot.
func (s *Snapshot) Get(key []byte) (value []byte, ok bool, err error) {
	if err := s.usable(); err != nil {
		return nil, false, err
	}
	return s.db.GetAt(key, s.ts)
}

// Has reports whether key was present (not deleted) as of the snapshot,
// mirroring DB.Has for Get/Has symmetry across the read surfaces.
func (s *Snapshot) Has(key []byte) (bool, error) {
	_, ok, err := s.Get(key)
	return ok, err
}

// IterOptions bounds an iterator to the user-key range
// [LowerBound, UpperBound): LowerBound is inclusive, UpperBound exclusive,
// nil means unbounded on that side. Bounds clamp every positioning method
// (Seek, SeekForPrev, First, Last, Next, Prev) and let the iterator skip
// whole sstables that lie outside the range. The iterator copies both
// slices, so the caller may reuse its buffers.
type IterOptions struct {
	LowerBound []byte
	UpperBound []byte
}

// combineIterOptions folds the variadic options: each non-nil field of a
// later option overrides the earlier ones. Bounds are copied.
func combineIterOptions(opts []IterOptions) (IterOptions, error) {
	var o IterOptions
	for _, op := range opts {
		if op.LowerBound != nil {
			o.LowerBound = append([]byte(nil), op.LowerBound...)
		}
		if op.UpperBound != nil {
			o.UpperBound = append([]byte(nil), op.UpperBound...)
		}
	}
	if o.LowerBound != nil && o.UpperBound != nil &&
		bytes.Compare(o.LowerBound, o.UpperBound) > 0 {
		return o, fmt.Errorf("%w: iterator LowerBound %q > UpperBound %q",
			ErrInvalidOptions, o.LowerBound, o.UpperBound)
	}
	return o, nil
}

// NewIterator returns an iterator over the snapshot's visible state,
// optionally bounded (IterOptions).
func (s *Snapshot) NewIterator(opts ...IterOptions) (*Iterator, error) {
	if err := s.usable(); err != nil {
		return nil, err
	}
	o, err := combineIterOptions(opts)
	if err != nil {
		return nil, err
	}
	return s.db.newIterator(s.ts, o)
}

// usable wraps the sentinel with the failing surface so callers get
// context while errors.Is(err, ErrSnapshotExpired/ErrClosed) keeps
// working (the public API's documented error contract).
func (s *Snapshot) usable() error {
	if s.closed.Load() {
		if s.expired.Load() {
			return fmt.Errorf("snapshot read: %w", ErrSnapshotExpired)
		}
		return fmt.Errorf("snapshot read: %w", ErrClosed)
	}
	return nil
}

// Close releases the snapshot handle so merges may garbage-collect the
// versions it pinned. Closing an already-expired handle is a no-op.
func (s *Snapshot) Close() {
	if s.closed.CompareAndSwap(false, true) {
		s.db.oracle.ReleaseSnapshot(s.ts)
	}
}

// NewIterator returns an iterator over the current state of the store,
// optionally bounded (IterOptions). Internally it is a snapshot scan at an
// implicit snapshot, released when the iterator is closed.
func (db *DB) NewIterator(opts ...IterOptions) (*Iterator, error) {
	o, err := combineIterOptions(opts)
	if err != nil {
		return nil, err
	}
	snap, err := db.GetSnapshot()
	if err != nil {
		return nil, err
	}
	it, err := db.newIterator(snap.ts, o)
	if err != nil {
		snap.Close()
		return nil, err
	}
	it.ownedSnap = snap
	return it, nil
}

// Iterator walks user keys in ascending order, exposing for each key the
// newest version visible at the iterator's snapshot time and hiding
// deletion markers. It holds references on every component it reads; Close
// releases them.
type Iterator struct {
	db        *DB
	ts        uint64
	merge     *compaction.MergeIter
	mem, imm  *memtable.Table
	ver       *version.Version
	ownedSnap *Snapshot

	// lower and upper clamp the iterator to [lower, upper); nil means
	// unbounded (IterOptions, copied at creation).
	lower, upper []byte

	key    []byte
	value  []byte
	valid  bool
	err    error
	closed bool
	// dirBack records that the merged cursor was last moved backward: it
	// then rests at (or below) the entry preceding the emitted key, so a
	// direction change to Next must reseek past the current user key.
	dirBack bool
}

// newIterator captures component references and builds the merged view.
func (db *DB) newIterator(ts uint64, o IterOptions) (*Iterator, error) {
	it := &Iterator{db: db, ts: ts, lower: o.LowerBound, upper: o.UpperBound}
	var children []iterator.Iterator

	// Capture in data-flow order, matching Get's traversal argument.
	it.mem = syncutil.Acquire[memtable.Table](&db.mem)
	if it.mem != nil {
		children = append(children, it.mem.NewIterator())
	}
	it.imm = syncutil.Acquire[memtable.Table](&db.imm)
	if it.imm != nil {
		children = append(children, it.imm.NewIterator())
	}
	it.ver = db.versions.Current()
	if it.ver != nil {
		var err error
		children, err = it.ver.IteratorsBounded(children, it.lower, it.upper)
		if err != nil {
			it.Close()
			return nil, err
		}
	}
	it.merge = compaction.NewMergeIter(children)
	return it, nil
}

// First positions at the smallest visible user key (within the bounds).
func (it *Iterator) First() {
	if it.closed {
		return
	}
	if it.lower != nil {
		it.merge.SeekGE(keys.SeekKey(it.lower, it.ts))
	} else {
		it.merge.First()
	}
	it.settle(nil)
}

// Seek positions at the first visible user key >= key (clamped to the
// bounds: a key below LowerBound seeks from LowerBound; a key at or past
// UpperBound invalidates the iterator).
func (it *Iterator) Seek(key []byte) {
	if it.closed {
		return
	}
	if it.lower != nil && bytes.Compare(key, it.lower) < 0 {
		key = it.lower
	}
	if it.upper != nil && bytes.Compare(key, it.upper) >= 0 {
		it.valid = false
		return
	}
	it.merge.SeekGE(keys.SeekKey(key, it.ts))
	it.settle(nil)
}

// Next advances to the next visible user key.
func (it *Iterator) Next() {
	if it.closed || !it.valid {
		return
	}
	start := time.Now()
	defer func() { it.db.obs.Record(obs.OpIterNext, time.Since(start)) }()
	prev := it.key
	if it.dirBack {
		// Direction change: the merged cursor sits at or below the
		// current key. (key, ts=0, kind=0) sorts after every real version
		// of key — timestamps start at 1 — so this seek lands on the
		// first entry strictly past the current user key.
		it.merge.SeekGE(keys.Make(prev, 0, keys.Kind(0)))
		it.settle(prev)
		return
	}
	it.merge.Next()
	it.settle(prev)
}

// SeekForPrev positions at the largest visible user key <= key (RocksDB's
// SeekForPrev): the natural entry point for descending range queries.
// Bounds clamp it like every other positioning method: a key at or past
// UpperBound starts from the last in-bounds key.
func (it *Iterator) SeekForPrev(key []byte) {
	if it.closed {
		return
	}
	if it.lower != nil && bytes.Compare(key, it.lower) < 0 {
		// Nothing at or below key lies within the bounds.
		it.valid = false
		return
	}
	if it.upper != nil && bytes.Compare(key, it.upper) >= 0 {
		it.Last()
		return
	}
	it.Seek(key)
	if !it.valid {
		// Everything visible sorts below key (or the store is empty).
		it.Last()
		return
	}
	if !bytes.Equal(it.key, key) {
		it.Prev()
	}
}

// Last positions at the largest visible user key (within the bounds).
func (it *Iterator) Last() {
	if it.closed {
		return
	}
	if it.upper != nil {
		// SeekKey(upper, MaxTimestamp) sorts before every version of upper,
		// so one backward step from there rests strictly below the bound.
		it.merge.SeekGE(keys.SeekKey(it.upper, keys.MaxTimestamp))
		if it.merge.Valid() {
			it.merge.Prev()
		} else {
			it.merge.Last()
		}
	} else {
		it.merge.Last()
	}
	it.settleBackward()
}

// Prev retreats to the previous visible user key.
func (it *Iterator) Prev() {
	if it.closed || !it.valid {
		return
	}
	cur := it.key
	if !it.dirBack {
		// The merged cursor rests on the emitted entry; step it strictly
		// before the current user key.
		for it.merge.Valid() && bytes.Equal(keys.UserKey(it.merge.Key()), cur) {
			it.merge.Prev()
		}
	}
	it.settleBackward()
}

// settleBackward walks the merged cursor backward to the previous visible
// user key. Moving backward, a user key's versions arrive oldest first, so
// the candidate version is continually replaced by each newer visible one
// until the key group ends; tombstoned and fully-too-new groups are
// skipped.
func (it *Iterator) settleBackward() {
	var (
		candUK   []byte
		candVal  []byte
		candKind keys.Kind
		have     bool
	)
	emit := func() bool {
		if have && candKind != keys.KindDelete {
			it.key = candUK
			if candKind == keys.KindValuePtr {
				v, err := it.db.derefValue(candVal)
				if err != nil {
					it.err = err
					it.valid = false
					return true // stop settling; Err() surfaces the cause
				}
				it.value = v
			} else {
				it.value = candVal
			}
			it.valid = true
			it.dirBack = true
			return true
		}
		return false
	}
	for it.merge.Valid() {
		ik := it.merge.Key()
		uk, ets, kind, ok := keys.Decode(ik)
		if !ok {
			it.fail()
			return
		}
		if it.upper != nil && bytes.Compare(uk, it.upper) >= 0 {
			// Above the bound (reachable via a direction change or a
			// boundary sstable); keep walking down toward it.
			it.merge.Prev()
			continue
		}
		if it.lower != nil && bytes.Compare(uk, it.lower) < 0 {
			// Walked below the bound: the pending candidate's group (if
			// any) is complete, and nothing further back is in range.
			if emit() {
				return
			}
			it.valid = false
			return
		}
		if have && !bytes.Equal(uk, candUK) {
			// The group for candUK is complete; the cursor already sits
			// on the next (smaller) user key, ready for a further Prev.
			if emit() {
				return
			}
			have = false // group was deleted/invisible: keep walking
		}
		if ets <= it.ts {
			// Newer visible version than any seen in this group so far.
			candUK = append([]byte(nil), uk...)
			candVal = it.merge.Value()
			candKind = kind
			have = true
		}
		it.merge.Prev()
	}
	if err := it.merge.Err(); err != nil {
		it.err = err
		it.valid = false
		return
	}
	if emit() {
		return
	}
	it.valid = false
}

// settle advances the merged cursor to the newest visible version of the
// next undecided user key, skipping versions newer than the snapshot,
// older shadowed versions, duplicate entries from overlapping components,
// and tombstones.
func (it *Iterator) settle(skipUK []byte) {
	var decided []byte
	haveDecided := false
	if skipUK != nil {
		decided = skipUK
		haveDecided = true
	}
	for it.merge.Valid() {
		ik := it.merge.Key()
		uk, ets, kind, ok := keys.Decode(ik)
		if !ok {
			it.fail()
			return
		}
		if it.upper != nil && bytes.Compare(uk, it.upper) >= 0 {
			// Ascending past the bound: nothing further is in range.
			it.valid = false
			return
		}
		if haveDecided && bytes.Equal(uk, decided) {
			it.merge.Next()
			continue
		}
		if ets > it.ts {
			// Version too new for this snapshot; an older one may follow.
			it.merge.Next()
			continue
		}
		// Newest visible version of uk decides the key's fate.
		decided = append([]byte(nil), uk...)
		haveDecided = true
		if kind == keys.KindDelete {
			it.merge.Next()
			continue
		}
		it.key = decided
		if kind == keys.KindValuePtr {
			v, err := it.db.derefValue(it.merge.Value())
			if err != nil {
				it.err = err
				it.valid = false
				return
			}
			it.value = v
		} else {
			it.value = it.merge.Value()
		}
		it.valid = true
		it.dirBack = false
		return
	}
	if err := it.merge.Err(); err != nil {
		it.err = err
	}
	it.valid = false
}

func (it *Iterator) fail() {
	it.err = keys.ErrCorruptKey
	it.valid = false
}

// Valid reports whether the iterator is positioned at an entry.
func (it *Iterator) Valid() bool { return !it.closed && it.valid }

// Key returns the current user key. The slice is stable until Close.
func (it *Iterator) Key() []byte { return it.key }

// Value returns the current value. Stable until Close.
func (it *Iterator) Value() []byte { return it.value }

// Err returns the first error encountered.
func (it *Iterator) Err() error { return it.err }

// Close releases component references (and the implicit snapshot for
// iterators created directly from the DB).
func (it *Iterator) Close() {
	if it.closed {
		return
	}
	it.closed = true
	it.valid = false
	if it.mem != nil {
		it.mem.Unref()
	}
	if it.imm != nil {
		it.imm.Unref()
	}
	if it.ver != nil {
		it.ver.Unref()
	}
	if it.ownedSnap != nil {
		it.ownedSnap.Close()
	}
}

// Range copies up to limit visible pairs with keys in [start, end) as of
// the iterator's snapshot. A nil end means "to the last key"; limit <= 0
// means no bound. It is a convenience wrapper over Seek/Next used by the
// range-query benchmarks (§5.1's scan workload).
func (it *Iterator) Range(start, end []byte, limit int) (ks, vs [][]byte, err error) {
	for it.Seek(start); it.Valid(); it.Next() {
		if end != nil && bytes.Compare(it.Key(), end) >= 0 {
			break
		}
		ks = append(ks, append([]byte(nil), it.Key()...))
		vs = append(vs, append([]byte(nil), it.Value()...))
		if limit > 0 && len(ks) >= limit {
			break
		}
	}
	return ks, vs, it.Err()
}
