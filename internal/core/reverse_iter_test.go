package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"clsm/internal/storage"
)

// Backward iteration must see exactly the forward view, reversed, across
// all components (memtable + immutable + multiple disk levels).
func TestIteratorBackwardMatchesForward(t *testing.T) {
	db := mustOpen(t, storage.NewMemFS())
	defer db.Close()

	rng := rand.New(rand.NewSource(17))
	// Layer 1: deep disk data.
	for i := 0; i < 300; i++ {
		db.Put([]byte(fmt.Sprintf("k%04d", i)), []byte("disk"))
	}
	if err := db.CompactRange(); err != nil {
		t.Fatal(err)
	}
	// Layer 2: L0 overwrites and deletes.
	for i := 0; i < 300; i += 3 {
		db.Put([]byte(fmt.Sprintf("k%04d", i)), []byte("l0"))
	}
	for i := 1; i < 300; i += 7 {
		db.Delete([]byte(fmt.Sprintf("k%04d", i)))
	}
	if err := db.forceFlush(); err != nil {
		t.Fatal(err)
	}
	// Layer 3: fresh memtable writes.
	for i := 0; i < 300; i += 5 {
		db.Put([]byte(fmt.Sprintf("k%04d", i)), []byte("mem"))
	}
	_ = rng

	it, err := db.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()

	var fwd []string
	for it.First(); it.Valid(); it.Next() {
		fwd = append(fwd, string(it.Key())+"="+string(it.Value()))
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}

	var bwd []string
	for it.Last(); it.Valid(); it.Prev() {
		bwd = append(bwd, string(it.Key())+"="+string(it.Value()))
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}

	if len(fwd) != len(bwd) {
		t.Fatalf("forward saw %d keys, backward %d", len(fwd), len(bwd))
	}
	for i := range fwd {
		if fwd[i] != bwd[len(bwd)-1-i] {
			t.Fatalf("mismatch at %d: fwd=%q bwd=%q", i, fwd[i], bwd[len(bwd)-1-i])
		}
	}
}

// Direction changes mid-iteration must be consistent.
func TestIteratorDirectionSwitch(t *testing.T) {
	db := mustOpen(t, storage.NewMemFS())
	defer db.Close()
	for i := 0; i < 20; i++ {
		db.Put([]byte(fmt.Sprintf("k%02d", i)), []byte{byte(i)})
	}
	db.CompactRange()
	for i := 0; i < 20; i += 2 { // newer versions in memtable
		db.Put([]byte(fmt.Sprintf("k%02d", i)), []byte{byte(i + 100)})
	}

	it, _ := db.NewIterator()
	defer it.Close()

	it.Seek([]byte("k10"))
	if string(it.Key()) != "k10" {
		t.Fatalf("Seek landed on %q", it.Key())
	}
	it.Next() // k11
	it.Next() // k12
	it.Prev() // back to k11
	if string(it.Key()) != "k11" {
		t.Fatalf("after Next,Next,Prev at %q", it.Key())
	}
	it.Prev() // k10
	it.Prev() // k09
	if string(it.Key()) != "k09" {
		t.Fatalf("at %q, want k09", it.Key())
	}
	it.Next() // k10 again
	if string(it.Key()) != "k10" || it.Value()[0] != 110 {
		t.Fatalf("at %q=%v, want k10=110 (memtable version)", it.Key(), it.Value())
	}
	// Prev from the first key exhausts.
	it.First()
	it.Prev()
	if it.Valid() {
		t.Fatal("Prev before first key still valid")
	}
	// Last lands on the biggest key.
	it.Last()
	if string(it.Key()) != "k19" {
		t.Fatalf("Last = %q", it.Key())
	}
}

// Backward iteration must respect snapshots (skip too-new versions) and
// tombstones, including keys whose only visible version is deleted.
func TestIteratorBackwardSnapshotAndTombstones(t *testing.T) {
	db := mustOpen(t, storage.NewMemFS())
	defer db.Close()
	db.Put([]byte("a"), []byte("a1"))
	db.Put([]byte("b"), []byte("b1"))
	db.Put([]byte("c"), []byte("c1"))
	snap, _ := db.GetSnapshot()
	defer snap.Close()

	db.Put([]byte("b"), []byte("b2")) // too new for snap
	db.Delete([]byte("c"))            // tombstone after snap
	db.Put([]byte("d"), []byte("d1")) // born after snap

	it, err := snap.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	var got []string
	for it.Last(); it.Valid(); it.Prev() {
		got = append(got, string(it.Key())+"="+string(it.Value()))
	}
	want := []string{"c=c1", "b=b1", "a=a1"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("snapshot backward = %v, want %v", got, want)
	}

	// Live view backward: b2 visible, c deleted, d present.
	it2, _ := db.NewIterator()
	defer it2.Close()
	got = nil
	for it2.Last(); it2.Valid(); it2.Prev() {
		got = append(got, string(it2.Key())+"="+string(it2.Value()))
	}
	want = []string{"d=d1", "b=b2", "a=a1"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("live backward = %v, want %v", got, want)
	}
}

// Randomized cross-check against a model map.
func TestIteratorBackwardRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	db := mustOpen(t, storage.NewMemFS())
	defer db.Close()
	model := map[string]string{}
	for i := 0; i < 3000; i++ {
		k := fmt.Sprintf("key%03d", rng.Intn(500))
		switch rng.Intn(10) {
		case 0:
			db.Delete([]byte(k))
			delete(model, k)
		default:
			v := fmt.Sprintf("v%d", i)
			db.Put([]byte(k), []byte(v))
			model[k] = v
		}
		if i%911 == 0 {
			db.CompactRange()
		}
	}
	var want []string
	for k, v := range model {
		want = append(want, k+"="+v)
	}
	sort.Sort(sort.Reverse(sort.StringSlice(want)))

	it, _ := db.NewIterator()
	defer it.Close()
	i := 0
	for it.Last(); it.Valid(); it.Prev() {
		got := string(it.Key()) + "=" + string(it.Value())
		if got != want[i] {
			t.Fatalf("backward position %d: got %q want %q", i, got, want[i])
		}
		i++
	}
	if i != len(want) {
		t.Fatalf("backward saw %d keys, want %d", i, len(want))
	}

	// Seek + Prev: predecessor queries.
	for trial := 0; trial < 200; trial++ {
		probe := fmt.Sprintf("key%03d", rng.Intn(500))
		it.Seek([]byte(probe))
		it.Prev()
		// Expected: largest model key strictly below probe.
		var exp string
		for k := range model {
			if k < probe && k > exp {
				exp = k
			}
		}
		if exp == "" {
			if it.Valid() {
				t.Fatalf("Seek(%q)+Prev = %q, want exhausted", probe, it.Key())
			}
			continue
		}
		if !it.Valid() || string(it.Key()) != exp {
			t.Fatalf("Seek(%q)+Prev = %q (valid=%v), want %q", probe, it.Key(), it.Valid(), exp)
		}
	}
}

// Prev must also work when positioned via Seek at a key that exists.
func TestSeekThenPrevAcrossComponents(t *testing.T) {
	db := mustOpen(t, storage.NewMemFS())
	defer db.Close()
	db.Put([]byte("apple"), []byte("1"))
	db.CompactRange()
	db.Put([]byte("mango"), []byte("2"))
	db.forceFlush()
	db.Put([]byte("zebra"), []byte("3"))

	it, _ := db.NewIterator()
	defer it.Close()
	it.Seek([]byte("mango"))
	if string(it.Key()) != "mango" {
		t.Fatalf("Seek = %q", it.Key())
	}
	it.Prev()
	if !it.Valid() || string(it.Key()) != "apple" {
		t.Fatalf("Prev = %q (valid=%v)", it.Key(), it.Valid())
	}
	it.Next()
	if !bytes.Equal(it.Key(), []byte("mango")) {
		t.Fatalf("Next after Prev = %q", it.Key())
	}
}
