package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"clsm/internal/iterator"
	"clsm/internal/storage"
)

// boundedTestDB layers data across all three components — compacted disk
// levels, L0 overwrites and deletes, fresh memtable writes — so bound
// clamping is exercised against every source an iterator merges.
func boundedTestDB(t *testing.T) *DB {
	t.Helper()
	db := mustOpen(t, storage.NewMemFS())
	t.Cleanup(func() { db.Close() })
	for i := 0; i < 200; i++ {
		db.Put([]byte(fmt.Sprintf("k%04d", i)), []byte("disk"))
	}
	if err := db.CompactRange(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i += 3 {
		db.Put([]byte(fmt.Sprintf("k%04d", i)), []byte("l0"))
	}
	for i := 1; i < 200; i += 7 {
		db.Delete([]byte(fmt.Sprintf("k%04d", i)))
	}
	if err := db.forceFlush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i += 5 {
		db.Put([]byte(fmt.Sprintf("k%04d", i)), []byte("mem"))
	}
	return db
}

// collect drains the iterator forward from First.
func collect(t *testing.T, it *Iterator) []string {
	t.Helper()
	var out []string
	for it.First(); it.Valid(); it.Next() {
		out = append(out, string(it.Key())+"="+string(it.Value()))
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestBoundedIteratorMatchesFiltered compares bounded scans — forward and
// backward — against the unbounded scan filtered to the same range, across
// a grid of bounds including empty ranges and bounds between keys.
func TestBoundedIteratorMatchesFiltered(t *testing.T) {
	db := boundedTestDB(t)

	full, err := db.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()
	all := collect(t, full)

	cases := []struct{ lo, hi string }{
		{"", ""},
		{"k0050", ""},
		{"", "k0150"},
		{"k0050", "k0150"},
		{"k0049x", "k0150x"}, // bounds between keys
		{"k0100", "k0100"},   // empty range
		{"a", "k0000"},       // entirely below the data
		{"z", ""},            // entirely above the data
		{"k0000", "k0001"},   // single key
	}
	for _, tc := range cases {
		var o IterOptions
		if tc.lo != "" {
			o.LowerBound = []byte(tc.lo)
		}
		if tc.hi != "" {
			o.UpperBound = []byte(tc.hi)
		}
		var want []string
		for _, kv := range all {
			k := kv[:bytes.IndexByte([]byte(kv), '=')]
			if tc.lo != "" && k < tc.lo {
				continue
			}
			if tc.hi != "" && k >= tc.hi {
				continue
			}
			want = append(want, kv)
		}

		it, err := db.NewIterator(o)
		if err != nil {
			t.Fatalf("[%q,%q) NewIterator: %v", tc.lo, tc.hi, err)
		}
		got := collect(t, it)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("[%q,%q) forward: got %d keys, want %d\n got=%v\nwant=%v",
				tc.lo, tc.hi, len(got), len(want), got, want)
		}

		var back []string
		for it.Last(); it.Valid(); it.Prev() {
			back = append(back, string(it.Key())+"="+string(it.Value()))
		}
		if err := it.Err(); err != nil {
			t.Fatal(err)
		}
		for i, j := 0, len(back)-1; i < j; i, j = i+1, j-1 {
			back[i], back[j] = back[j], back[i]
		}
		if fmt.Sprint(back) != fmt.Sprint(want) {
			t.Errorf("[%q,%q) backward: got %v want %v", tc.lo, tc.hi, back, want)
		}
		it.Close()
	}
}

// TestBoundedIteratorSeekClamps pins the clamping rules of each positioning
// method at and around the bounds.
func TestBoundedIteratorSeekClamps(t *testing.T) {
	db := boundedTestDB(t)
	it, err := db.NewIterator(IterOptions{
		LowerBound: []byte("k0050"), UpperBound: []byte("k0150"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()

	// Seek below the lower bound starts from the bound.
	it.Seek([]byte("k0000"))
	if !it.Valid() || string(it.Key()) != "k0050" {
		t.Fatalf("Seek below lower: at %q valid=%v, want k0050", it.Key(), it.Valid())
	}
	// Seek at/past the upper bound invalidates.
	it.Seek([]byte("k0150"))
	if it.Valid() {
		t.Fatalf("Seek at upper bound stayed valid at %q", it.Key())
	}
	it.Seek([]byte("k0199"))
	if it.Valid() {
		t.Fatalf("Seek past upper bound stayed valid at %q", it.Key())
	}
	// First/Last land on the extreme in-bounds keys.
	it.First()
	if !it.Valid() || string(it.Key()) != "k0050" {
		t.Fatalf("First: at %q valid=%v, want k0050", it.Key(), it.Valid())
	}
	it.Last()
	if !it.Valid() || string(it.Key()) < "k0140" || string(it.Key()) >= "k0150" {
		t.Fatalf("Last: at %q valid=%v, want a key in [k0140,k0150)", it.Key(), it.Valid())
	}
	last := string(it.Key())
	// Next past Last falls off the range, not past it.
	it.Next()
	if it.Valid() {
		t.Fatalf("Next after Last stayed valid at %q", it.Key())
	}
	// SeekForPrev at/past the upper bound lands on the last in-bounds key.
	it.SeekForPrev([]byte("k0199"))
	if !it.Valid() || string(it.Key()) != last {
		t.Fatalf("SeekForPrev past upper: at %q valid=%v, want %q", it.Key(), it.Valid(), last)
	}
	// SeekForPrev below the lower bound has nothing to land on.
	it.SeekForPrev([]byte("k0049"))
	if it.Valid() {
		t.Fatalf("SeekForPrev below lower stayed valid at %q", it.Key())
	}
	// Prev before First falls off the range.
	it.First()
	it.Prev()
	if it.Valid() {
		t.Fatalf("Prev before First stayed valid at %q", it.Key())
	}
}

// TestIterOptionsValidation pins the error contract: inverted bounds are
// rejected with ErrInvalidOptions on both iterator surfaces, and later
// variadic options override earlier ones field by field.
func TestIterOptionsValidation(t *testing.T) {
	db := boundedTestDB(t)

	bad := IterOptions{LowerBound: []byte("z"), UpperBound: []byte("a")}
	if _, err := db.NewIterator(bad); !errors.Is(err, ErrInvalidOptions) {
		t.Fatalf("DB.NewIterator(inverted) = %v, want ErrInvalidOptions", err)
	}
	snap, err := db.GetSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	if _, err := snap.NewIterator(bad); !errors.Is(err, ErrInvalidOptions) {
		t.Fatalf("Snapshot.NewIterator(inverted) = %v, want ErrInvalidOptions", err)
	}

	// Later options override; the combination may be valid even when pieces
	// arrive separately, and buffers are copied (mutating the caller's slice
	// must not move the bound).
	lo := []byte("k0050")
	it, err := db.NewIterator(
		IterOptions{LowerBound: []byte("z")},
		IterOptions{LowerBound: lo, UpperBound: []byte("k0150")},
	)
	if err != nil {
		t.Fatalf("variadic override: %v", err)
	}
	defer it.Close()
	copy(lo, "XXXXX")
	it.First()
	if !it.Valid() || string(it.Key()) != "k0050" {
		t.Fatalf("combined bounds: First at %q valid=%v, want k0050", it.Key(), it.Valid())
	}
}

// TestBoundedIteratorSkipsTables asserts the point of pushing bounds into
// the version: sstables wholly outside the range never contribute child
// iterators (and so are never opened).
func TestBoundedIteratorSkipsTables(t *testing.T) {
	// A lazy L0 trigger keeps the four flushed files in L0: the test is
	// about bound-driven table skipping, and a background compaction
	// racing the assertions would merge them away.
	opts := testOptions(storage.NewMemFS())
	opts.Disk.L0CompactionTrigger = 100
	db, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()
	// Four disjoint L0 files.
	for _, r := range []string{"a", "b", "c", "d"} {
		for i := 0; i < 20; i++ {
			db.Put([]byte(fmt.Sprintf("%s%04d", r, i)), []byte("v"))
		}
		if err := db.forceFlush(); err != nil {
			t.Fatal(err)
		}
	}
	v := db.versions.Current()
	if v == nil {
		t.Fatal("no current version")
	}
	defer v.Unref()
	if n := len(v.Levels[0]); n < 4 {
		t.Fatalf("expected >=4 L0 files, got %d", n)
	}
	unbounded, err := v.Iterators(nil)
	if err != nil {
		t.Fatal(err)
	}
	bounded, err := v.IteratorsBounded(nil, []byte("b"), []byte("c"))
	if err != nil {
		t.Fatal(err)
	}
	if len(bounded) >= len(unbounded) {
		t.Fatalf("bounds opened %d child iterators, unbounded %d — no tables skipped",
			len(bounded), len(unbounded))
	}
	var _ []iterator.Iterator = bounded
}
