package core

import (
	"errors"
	"fmt"
	"runtime/debug"
	"time"

	"clsm/internal/health"
	"clsm/internal/obs"
)

// Sentinel errors of the degraded and read-only health states. Both are
// wrapped with the concrete cause, so match with errors.Is.
var (
	// ErrDegraded is returned by writes whose bounded stall expired while
	// the engine was retrying a transient background fault.
	ErrDegraded = errors.New("clsm: database degraded (background error backlog)")
	// ErrReadOnly is returned by writes while a corruption error has the
	// store quarantined; reads, snapshots, and iterators keep serving.
	ErrReadOnly = errors.New("clsm: database read-only (corruption quarantine)")
)

// originFlush is the health-reporting origin of the memtable merge path
// (the flush loop and synchronous forced flushes share it: they contend on
// flushMu for the same work).
const originFlush = "flush"

// HealthStatus is a point-in-time view of the engine's background-fault
// state: the state machine position and the error that put it there (nil
// when Healthy).
type HealthStatus struct {
	State health.State
	Err   error
}

// Health reports the engine's current background-fault state.
func (db *DB) Health() HealthStatus {
	st, err := db.health.Status()
	return HealthStatus{State: st, Err: err}
}

// Resume manually returns a Degraded or ReadOnly engine to Healthy — the
// operator freed disk space, or accepts the risk after offline repair. It
// wakes workers parked in backoff waits and writers parked in degraded
// stalls. Resuming a Healthy engine is a no-op; a Failed engine is sticky
// and Resume returns its fatal cause.
func (db *DB) Resume() error {
	if db.closed.Load() {
		return ErrClosed
	}
	if err := db.health.Resume(); err != nil {
		return err
	}
	// Reset the admission throttle: the operator vouched for the disk, so
	// parked writers are admitted immediately and the auto-tuned rate
	// returns to its configured baseline.
	db.throttle.Reset()
	db.wakeStalled(&db.resumed)
	db.sched.Kick()
	return nil
}

// onHealthChange is the monitor's transition callback: it mirrors the state
// into the gauge, emits the trace event, and forwards to the user hook.
func (db *DB) onHealthChange(tr health.Transition) {
	db.obs.HealthState.Store(uint64(tr.To))
	msg := ""
	if tr.Cause != nil {
		msg = tr.Cause.Error()
	}
	switch tr.To {
	case health.Degraded:
		db.obs.Event(obs.Event{Type: obs.EvDegraded, Msg: msg})
	case health.ReadOnly:
		db.obs.Event(obs.Event{Type: obs.EvReadOnly, Msg: msg})
		// Quarantine: background merges must not touch the disk. Pause
		// drops the queue; the planner regenerates it after Resume. (The
		// nil guard covers transitions during Open, before the scheduler
		// exists.)
		if db.sched != nil {
			db.sched.Pause()
		}
	case health.Failed:
		if db.sched != nil {
			db.sched.Pause()
		}
	case health.Healthy:
		db.obs.Event(obs.Event{Type: obs.EvResumed})
		if db.sched != nil {
			db.sched.Resume()
		}
	}
	if db.opts.OnHealthChange != nil {
		db.opts.OnHealthChange(tr)
	}
}

// wrapHealthErr pairs a state sentinel (ErrDegraded, ErrReadOnly) with the
// concrete background error behind it, keeping both reachable through
// errors.Is.
func wrapHealthErr(sentinel, cause error) error {
	if cause == nil {
		return sentinel
	}
	return fmt.Errorf("%w: %w", sentinel, cause)
}

// writeGate is the write-path admission check. Healthy and Degraded admit
// (Degraded writes land in the memtable; the stall machinery bounds them
// when the budget runs out), ReadOnly and Failed reject. The healthy path
// is one atomic load and allocation-free.
func (db *DB) writeGate() error {
	switch db.health.State() {
	case health.Healthy, health.Degraded:
		return nil
	case health.ReadOnly:
		return wrapHealthErr(ErrReadOnly, db.health.Err())
	}
	// Failed: prefer the sticky background error (set by the worker that
	// died); the health cause covers the window before it lands.
	if err := db.backgroundErr(); err != nil {
		return err
	}
	return db.health.Err()
}

// bgRunnable reports whether background merges should run: yes while
// Healthy or Degraded (retrying), no while quarantined or failed.
func (db *DB) bgRunnable() bool {
	s := db.health.State()
	return s == health.Healthy || s == health.Degraded
}

// newBackoff builds a retry schedule from the engine options. Each worker
// owns one (Backoff is not concurrency-safe).
func (db *DB) newBackoff() *health.Backoff {
	return &health.Backoff{Base: db.opts.RetryBaseDelay, Cap: db.opts.RetryMaxDelay}
}

// supervised runs one unit of background work with panic containment:
// a panicking merge becomes a *health.PanicError (classified fatal) instead
// of killing the process. PanicOnBGFault (debug mode) disables the net.
func (db *DB) supervised(fn func() error) (err error) {
	if !db.opts.PanicOnBGFault {
		defer func() {
			if r := recover(); r != nil {
				err = &health.PanicError{Value: r, Stack: debug.Stack()}
			}
		}()
	}
	return fn()
}

// reportForeground folds a synchronous, caller-driven merge failure
// (CompactRange) into the health machine — but only corruption: a store
// whose tables fail their checksums must quarantine read-only no matter
// which path discovered it. Transient errors stay the caller's to retry
// (reporting them would strand a failing origin no background loop ever
// clears), and unclassifiable errors are returned, not escalated — the
// caller's operation failed, the engine itself may be fine.
func (db *DB) reportForeground(origin string, err error) {
	if db.classifier.Classify(err) == health.ClassCorruption {
		db.health.Report(origin, err)
	}
}

// settleBG folds one background attempt's outcome into the health machine
// and reports whether the attempt succeeded. On success the origin is
// cleared (possibly auto-resuming the engine) and the backoff resets. On a
// transient failure settleBG sleeps out the next backoff delay — cut short
// by Close or an explicit Resume — so the caller retries on return. Fatal
// errors poison the engine the historical way; corruption needs no extra
// action (Report already quarantined the store). Call without holding
// flushMu: the backoff wait must not block the other merge driver.
func (db *DB) settleBG(origin string, err error, b *health.Backoff) bool {
	if err == nil {
		if db.health.OK(origin) {
			db.obs.BGAutoResumes.Inc()
		}
		b.Reset()
		return true
	}
	switch db.health.Report(origin, err) {
	case health.ClassTransient:
		db.obs.BGRetries.Inc()
		resumed := *db.resumed.Load()
		select {
		case <-db.closing:
		case <-resumed:
			b.Reset()
		case <-time.After(b.Next()):
		}
	case health.ClassFatal:
		db.setBGErr(err)
	}
	return false
}
