package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"clsm/internal/keys"
	"clsm/internal/memtable"
	"clsm/internal/obs"
	"clsm/internal/syncutil"
	"clsm/internal/vlog"
)

// seekScratch pools the seek-key encodings that Pd lookups build once per
// read. The version search never retains the seek key, so the buffer can
// be recycled as soon as Get returns — keeping the read path free of
// per-operation allocations.
var seekScratch = sync.Pool{New: func() any { return new([]byte) }}

// Get returns the newest value of key, or ok=false if the key is absent or
// deleted. Gets never block (§3.1): component pointers are read with the
// RCU acquire protocol and searched in data-flow order Pm → P'm → Pd,
// which is the reverse of the order the merge updates them, so a
// concurrent rotation can at worst cause the same data to be searched
// twice.
func (db *DB) Get(key []byte) (value []byte, ok bool, err error) {
	return db.GetAt(key, keys.MaxTimestamp)
}

// GetCtx is Get with a context. Gets never block (§3.1), so there is no
// wait to interrupt: the context is checked once at entry — a canceled or
// expired ctx fails fast with ctx.Err() — and the read then runs to
// completion. The variant exists so context-threading callers (the network
// server, request-scoped handlers) keep one uniform signature across the
// whole engine surface.
func (db *DB) GetCtx(ctx context.Context, key []byte) (value []byte, ok bool, err error) {
	if err := ctxErr(ctx); err != nil {
		return nil, false, err
	}
	return db.Get(key)
}

// MultiGetCtx is MultiGet with a context, checked once at entry (see
// GetCtx: reads never block).
func (db *DB) MultiGetCtx(ctx context.Context, ks [][]byte) ([]Value, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	return db.MultiGet(ks)
}

// maxDerefRetries bounds the re-lookup loop a retired-segment dereference
// enters. One retry almost always resolves (the newest version carries the
// relocated pointer); the bound only guards against a pathological chase
// across back-to-back GC cycles.
const maxDerefRetries = 8

// GetAt returns the newest value of key visible at timestamp ts (snapshot
// reads use this with their snapshot time).
func (db *DB) GetAt(key []byte, ts uint64) (value []byte, ok bool, err error) {
	if db.closed.Load() {
		return nil, false, ErrClosed
	}
	db.metrics.gets.Add(1)
	// The latency record is an open-coded defer over lock-free atomics:
	// zero allocations on the hot path (obs.TestRecordPathAllocs).
	start := time.Now()
	defer func() { db.obs.Record(obs.OpGet, time.Since(start)) }()
	for attempt := 0; ; attempt++ {
		value, ok, err = db.getAtOnce(key, ts)
		if err != nil && errors.Is(err, vlog.ErrRetired) && attempt < maxDerefRetries {
			// The pointer's segment was GC-retired between the component
			// search and the dereference; the newest version of the key
			// carries the relocated pointer. Re-run the whole lookup.
			continue
		}
		return value, ok, err
	}
}

// getAtOnce is one component-search + dereference pass of GetAt.
func (db *DB) getAtOnce(key []byte, ts uint64) (value []byte, ok bool, err error) {
	// Pm
	if mt := syncutil.Acquire[memtable.Table](&db.mem); mt != nil {
		v, _, kind, found := mt.GetKind(key, ts)
		if found {
			if kind == keys.KindValuePtr {
				value, err = db.derefValue(v)
				mt.Unref()
				return value, err == nil, err
			}
			v = cloneValue(v, mt)
			mt.Unref()
			if kind == keys.KindDelete {
				return nil, false, nil
			}
			return v, true, nil
		}
		mt.Unref()
	}
	// P'm
	if imm := syncutil.Acquire[memtable.Table](&db.imm); imm != nil {
		v, _, kind, found := imm.GetKind(key, ts)
		if found {
			if kind == keys.KindValuePtr {
				value, err = db.derefValue(v)
				imm.Unref()
				return value, err == nil, err
			}
			v = cloneValue(v, imm)
			imm.Unref()
			if kind == keys.KindDelete {
				return nil, false, nil
			}
			return v, true, nil
		}
		imm.Unref()
	}
	// Pd
	cur := db.versions.Current()
	if cur == nil {
		return nil, false, ErrClosed
	}
	defer cur.Unref()
	sk := seekScratch.Get().(*[]byte)
	*sk = keys.AppendSeek((*sk)[:0], key, ts)
	v, _, kind, found, err := cur.Get(*sk)
	seekScratch.Put(sk)
	if err != nil || !found || kind == keys.KindDelete {
		return nil, false, err
	}
	if kind == keys.KindValuePtr {
		value, err = db.derefValue(v)
		return value, err == nil, err
	}
	// SSTable values alias cached blocks, which the garbage collector
	// keeps alive for as long as the caller holds the slice; no copy is
	// needed.
	return v, true, nil
}

// derefValue resolves an encoded value-log pointer to its value bytes,
// recording the dereference latency. The memtable/sstable slice holding the
// pointer encoding is only read before the first I/O, so callers may drop
// their component reference once derefValue returns.
func (db *DB) derefValue(ptr []byte) ([]byte, error) {
	p, pok := vlog.DecodePointer(ptr)
	if !pok {
		return nil, fmt.Errorf("%w: bad pointer encoding (%d bytes)", vlog.ErrCorrupt, len(ptr))
	}
	start := time.Now()
	v, err := db.vlog.Get(p, nil)
	db.obs.VlogDeref.RecordValue(uint64(time.Since(start) / time.Microsecond))
	return v, err
}

// cloneValue copies a memtable value out before the component reference is
// dropped. Memtable arenas are never recycled while referenced, but the
// caller may hold the value long after the memtable is discarded; copying
// keeps Get's contract independent of component lifetime. (Go's GC would
// keep the arena alive through the slice; the copy bounds memory instead.)
func cloneValue(v []byte, _ *memtable.Table) []byte {
	if v == nil {
		return nil
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out
}

// Has reports whether key is present (not deleted).
func (db *DB) Has(key []byte) (bool, error) {
	_, ok, err := db.Get(key)
	return ok, err
}

// Value is one MultiGet result: the value bytes and whether the key was
// present (not deleted). Data is nil when Exists is false.
type Value struct {
	Data   []byte
	Exists bool
}

// MultiGet returns the newest value of every key in one call. Unlike a
// Get loop it pins the component set — Pm, P'm, and the disk version —
// once for the whole batch and reuses one pooled seek buffer across keys,
// so results are mutually consistent with respect to rotations and version
// installs, and the per-key overhead drops to the searches themselves.
// results[i] corresponds to keys[i]; the first error aborts the batch.
func (db *DB) MultiGet(ks [][]byte) ([]Value, error) {
	return db.multiGet(ks, keys.MaxTimestamp)
}

// MultiGet reads every key as of the snapshot (see DB.MultiGet).
func (s *Snapshot) MultiGet(ks [][]byte) ([]Value, error) {
	if err := s.usable(); err != nil {
		return nil, err
	}
	return s.db.multiGet(ks, s.ts)
}

func (db *DB) multiGet(ks [][]byte, ts uint64) ([]Value, error) {
	if db.closed.Load() {
		return nil, ErrClosed
	}
	if len(ks) == 0 {
		return nil, nil
	}
	db.metrics.gets.Add(uint64(len(ks)))
	start := time.Now()
	defer func() { db.obs.Record(obs.OpMultiGet, time.Since(start)) }()

	// Pin the components once, in the same data-flow order as Get.
	mt := syncutil.Acquire[memtable.Table](&db.mem)
	if mt != nil {
		defer mt.Unref()
	}
	imm := syncutil.Acquire[memtable.Table](&db.imm)
	if imm != nil {
		defer imm.Unref()
	}
	cur := db.versions.Current()
	if cur == nil {
		return nil, ErrClosed
	}
	defer cur.Unref()
	sk := seekScratch.Get().(*[]byte)
	defer seekScratch.Put(sk)

	out := make([]Value, len(ks))
	for i, key := range ks {
		// deref resolves a pointer hit for this key; a retired segment
		// (GC raced the batch's pinned components) falls back to a fresh
		// single-key lookup, which re-pins the newest version.
		deref := func(ptr []byte) error {
			v, err := db.derefValue(ptr)
			if err == nil {
				out[i] = Value{Data: v, Exists: true}
				return nil
			}
			if !errors.Is(err, vlog.ErrRetired) {
				return err
			}
			v, ok, err := db.GetAt(key, ts)
			if err != nil {
				return err
			}
			out[i] = Value{Data: v, Exists: ok}
			return nil
		}
		if mt != nil {
			if v, _, kind, found := mt.GetKind(key, ts); found {
				if kind == keys.KindValuePtr {
					if err := deref(v); err != nil {
						return nil, err
					}
				} else if kind != keys.KindDelete {
					out[i] = Value{Data: cloneValue(v, mt), Exists: true}
				}
				continue
			}
		}
		if imm != nil {
			if v, _, kind, found := imm.GetKind(key, ts); found {
				if kind == keys.KindValuePtr {
					if err := deref(v); err != nil {
						return nil, err
					}
				} else if kind != keys.KindDelete {
					out[i] = Value{Data: cloneValue(v, imm), Exists: true}
				}
				continue
			}
		}
		*sk = keys.AppendSeek((*sk)[:0], key, ts)
		v, _, kind, found, err := cur.Get(*sk)
		if err != nil {
			return nil, err
		}
		if !found || kind == keys.KindDelete {
			continue
		}
		if kind == keys.KindValuePtr {
			if err := deref(v); err != nil {
				return nil, err
			}
			continue
		}
		// SSTable values alias cached blocks (see GetAt); no copy.
		out[i] = Value{Data: v, Exists: true}
	}
	return out, nil
}
