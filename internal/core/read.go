package core

import (
	"context"
	"sync"
	"time"

	"clsm/internal/keys"
	"clsm/internal/memtable"
	"clsm/internal/obs"
	"clsm/internal/syncutil"
)

// seekScratch pools the seek-key encodings that Pd lookups build once per
// read. The version search never retains the seek key, so the buffer can
// be recycled as soon as Get returns — keeping the read path free of
// per-operation allocations.
var seekScratch = sync.Pool{New: func() any { return new([]byte) }}

// Get returns the newest value of key, or ok=false if the key is absent or
// deleted. Gets never block (§3.1): component pointers are read with the
// RCU acquire protocol and searched in data-flow order Pm → P'm → Pd,
// which is the reverse of the order the merge updates them, so a
// concurrent rotation can at worst cause the same data to be searched
// twice.
func (db *DB) Get(key []byte) (value []byte, ok bool, err error) {
	return db.GetAt(key, keys.MaxTimestamp)
}

// GetCtx is Get with a context. Gets never block (§3.1), so there is no
// wait to interrupt: the context is checked once at entry — a canceled or
// expired ctx fails fast with ctx.Err() — and the read then runs to
// completion. The variant exists so context-threading callers (the network
// server, request-scoped handlers) keep one uniform signature across the
// whole engine surface.
func (db *DB) GetCtx(ctx context.Context, key []byte) (value []byte, ok bool, err error) {
	if err := ctxErr(ctx); err != nil {
		return nil, false, err
	}
	return db.Get(key)
}

// MultiGetCtx is MultiGet with a context, checked once at entry (see
// GetCtx: reads never block).
func (db *DB) MultiGetCtx(ctx context.Context, ks [][]byte) ([]Value, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	return db.MultiGet(ks)
}

// GetAt returns the newest value of key visible at timestamp ts (snapshot
// reads use this with their snapshot time).
func (db *DB) GetAt(key []byte, ts uint64) (value []byte, ok bool, err error) {
	if db.closed.Load() {
		return nil, false, ErrClosed
	}
	db.metrics.gets.Add(1)
	// The latency record is an open-coded defer over lock-free atomics:
	// zero allocations on the hot path (obs.TestRecordPathAllocs).
	start := time.Now()
	defer func() { db.obs.Record(obs.OpGet, time.Since(start)) }()

	// Pm
	if mt := syncutil.Acquire[memtable.Table](&db.mem); mt != nil {
		v, deleted, found := mt.Get(key, ts)
		if found {
			v = cloneValue(v, mt)
			mt.Unref()
			if deleted {
				return nil, false, nil
			}
			return v, true, nil
		}
		mt.Unref()
	}
	// P'm
	if imm := syncutil.Acquire[memtable.Table](&db.imm); imm != nil {
		v, deleted, found := imm.Get(key, ts)
		if found {
			v = cloneValue(v, imm)
			imm.Unref()
			if deleted {
				return nil, false, nil
			}
			return v, true, nil
		}
		imm.Unref()
	}
	// Pd
	cur := db.versions.Current()
	if cur == nil {
		return nil, false, ErrClosed
	}
	defer cur.Unref()
	sk := seekScratch.Get().(*[]byte)
	*sk = keys.AppendSeek((*sk)[:0], key, ts)
	v, _, deleted, found, err := cur.Get(*sk)
	seekScratch.Put(sk)
	if err != nil || !found || deleted {
		return nil, false, err
	}
	// SSTable values alias cached blocks, which the garbage collector
	// keeps alive for as long as the caller holds the slice; no copy is
	// needed.
	return v, true, nil
}

// cloneValue copies a memtable value out before the component reference is
// dropped. Memtable arenas are never recycled while referenced, but the
// caller may hold the value long after the memtable is discarded; copying
// keeps Get's contract independent of component lifetime. (Go's GC would
// keep the arena alive through the slice; the copy bounds memory instead.)
func cloneValue(v []byte, _ *memtable.Table) []byte {
	if v == nil {
		return nil
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out
}

// Has reports whether key is present (not deleted).
func (db *DB) Has(key []byte) (bool, error) {
	_, ok, err := db.Get(key)
	return ok, err
}

// Value is one MultiGet result: the value bytes and whether the key was
// present (not deleted). Data is nil when Exists is false.
type Value struct {
	Data   []byte
	Exists bool
}

// MultiGet returns the newest value of every key in one call. Unlike a
// Get loop it pins the component set — Pm, P'm, and the disk version —
// once for the whole batch and reuses one pooled seek buffer across keys,
// so results are mutually consistent with respect to rotations and version
// installs, and the per-key overhead drops to the searches themselves.
// results[i] corresponds to keys[i]; the first error aborts the batch.
func (db *DB) MultiGet(ks [][]byte) ([]Value, error) {
	return db.multiGet(ks, keys.MaxTimestamp)
}

// MultiGet reads every key as of the snapshot (see DB.MultiGet).
func (s *Snapshot) MultiGet(ks [][]byte) ([]Value, error) {
	if err := s.usable(); err != nil {
		return nil, err
	}
	return s.db.multiGet(ks, s.ts)
}

func (db *DB) multiGet(ks [][]byte, ts uint64) ([]Value, error) {
	if db.closed.Load() {
		return nil, ErrClosed
	}
	if len(ks) == 0 {
		return nil, nil
	}
	db.metrics.gets.Add(uint64(len(ks)))
	start := time.Now()
	defer func() { db.obs.Record(obs.OpMultiGet, time.Since(start)) }()

	// Pin the components once, in the same data-flow order as Get.
	mt := syncutil.Acquire[memtable.Table](&db.mem)
	if mt != nil {
		defer mt.Unref()
	}
	imm := syncutil.Acquire[memtable.Table](&db.imm)
	if imm != nil {
		defer imm.Unref()
	}
	cur := db.versions.Current()
	if cur == nil {
		return nil, ErrClosed
	}
	defer cur.Unref()
	sk := seekScratch.Get().(*[]byte)
	defer seekScratch.Put(sk)

	out := make([]Value, len(ks))
	for i, key := range ks {
		if mt != nil {
			if v, deleted, found := mt.Get(key, ts); found {
				if !deleted {
					out[i] = Value{Data: cloneValue(v, mt), Exists: true}
				}
				continue
			}
		}
		if imm != nil {
			if v, deleted, found := imm.Get(key, ts); found {
				if !deleted {
					out[i] = Value{Data: cloneValue(v, imm), Exists: true}
				}
				continue
			}
		}
		*sk = keys.AppendSeek((*sk)[:0], key, ts)
		v, _, deleted, found, err := cur.Get(*sk)
		if err != nil {
			return nil, err
		}
		if found && !deleted {
			// SSTable values alias cached blocks (see GetAt); no copy.
			out[i] = Value{Data: v, Exists: true}
		}
	}
	return out, nil
}
