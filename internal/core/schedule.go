package core

import (
	"context"
	"fmt"
	"time"

	"clsm/internal/compaction"
	"clsm/internal/obs"
	"clsm/internal/scheduler"
	"clsm/internal/version"
)

// This file is the engine side of the unified background scheduler: the
// planner that surveys engine state and submits jobs, the job bodies that
// execute flushes and compactions through the health machinery, and the
// write-path admission controller that converts the scheduler's debt
// signal into smooth backpressure (docs/SCHEDULING.md).

// Job keys. One queue entry per kind of work: the planner resubmits every
// pass and the scheduler dedups by key, so the queue mirrors current state
// instead of accumulating history.
const (
	jobKeyFlush  = "flush"
	jobKeySeek   = "compact-seek"
	jobKeyVlogGC = "vlog-gc"
)

// compactJobKeys names the per-level compaction jobs, doubling as the
// scheduler dedup key and the health monitor origin. Preformatted so the
// planner and job bodies never call fmt.
var compactJobKeys = func() (keys [version.NumLevels]string) {
	for l := range keys {
		keys[l] = fmt.Sprintf("compact-L%d", l)
	}
	return
}()

// originSeek is the health origin of seek-triggered compactions.
const originSeek = "compact-seek"

// plan is the scheduler's Planner callback: it runs every poll tick (and on
// every Kick and job completion), tunes the admission throttle, and submits
// one job per pending unit of work. It must stay allocation-free when the
// tree is in shape — the write path's allocation budget is measured with
// this loop running. The scheduler arrives as an argument because the first
// pass can fire before Open has assigned db.sched.
func (db *DB) plan(sched *scheduler.Scheduler) {
	if db.closed.Load() {
		return
	}
	var debt uint64
	if db.bgRunnable() {
		// Flush work: a frozen memtable waiting to merge, or a mutable one
		// past its spill threshold waiting to rotate. The filling mutable
		// memtable deliberately does NOT count toward debt: write arrival
		// would then read as "debt growing" on every pass and defeat the
		// throttle's hold-while-draining trend detection.
		if imm := db.imm.Load(); imm != nil {
			debt += uint64(imm.ApproximateSize())
			sched.Submit(scheduler.Job{
				Key: jobKeyFlush, Band: scheduler.BandFlush, Run: db.flushRun,
			})
		} else if mt := db.mem.Load(); mt != nil && mt.ApproximateSize() >= db.memBudget.Load() {
			debt += uint64(mt.ApproximateSize())
			sched.Submit(scheduler.Job{
				Key: jobKeyFlush, Band: scheduler.BandFlush, Run: db.flushRun,
			})
		}
		// Compaction work, one job per level whose score demands it, plus a
		// seek-triggered job when hints are pending.
		for _, p := range compaction.Plan(db.versions) {
			if p.Seek {
				sched.Submit(scheduler.Job{
					Key: jobKeySeek, Band: scheduler.BandSeek, Run: db.seekRun,
				})
				continue
			}
			band := scheduler.BandLevel
			if p.Level == 0 {
				band = scheduler.BandL0
			}
			sched.Submit(scheduler.Job{
				Key: compactJobKeys[p.Level], Band: band,
				Score: p.Score, Debt: p.Debt, Run: db.compactRuns[p.Level],
			})
			debt += p.Debt
		}
		// Value-log GC: a segment past the garbage ratio, or retired
		// segments whose snapshot pins may have cleared. Deliberately not
		// counted as debt — reclaiming vlog space does not gate writes.
		if db.vlogGCPending() {
			sched.Submit(scheduler.Job{
				Key: jobKeyVlogGC, Band: scheduler.BandVlogGC, Run: db.vlogGCRun,
			})
		}
	}
	sched.SetDebt(debt)
	db.obs.CompactionDebt.Store(debt)
	db.obs.SchedQueueDepth.Store(uint64(sched.QueueDepth()))
	db.tuneThrottle(debt)
}

// tuneThrottle maps engine backlog onto throttle pressure and applies one
// tuning step: multiplicative decrease while the backlog grows, hold while
// it drains, additive recovery once it is gone (the RocksDB
// delayed-write-rate scheme, with the debt trend deciding grow vs drain).
// Runs on every planner pass with that pass's debt signal, throttled or
// not; the inactive path is cheap and allocation-free.
func (db *DB) tuneThrottle(debt uint64) {
	// Update the flush drain-rate estimate (EWMA over planner passes).
	// Flush completions land in bursts every rotation, so a heavy smoothing
	// factor turns them into a usable bytes/s capacity signal.
	now := time.Now()
	fb := db.metrics.flushBytes.Load()
	if !db.lastDrainAt.IsZero() {
		if dt := now.Sub(db.lastDrainAt).Seconds(); dt > 0 {
			inst := float64(fb-db.lastFlushBytes) / dt
			db.drainEWMA += 0.05 * (inst - db.drainEWMA)
		}
	}
	db.lastDrainAt, db.lastFlushBytes = now, fb

	merging := db.imm.Load() != nil
	p := scheduler.PressureNone
	l0 := db.versions.L0Count()
	switch {
	case l0 >= db.opts.L0StopTrigger:
		p = scheduler.PressureStop
	case l0 >= db.opts.L0SlowdownTrigger:
		p = scheduler.PressureSlow
	}
	atWall := false
	if p == scheduler.PressureNone && merging {
		// Both memtables occupied and the mutable one filling: writers are
		// heading for the memtable-wait stall. Slow them from the halfway
		// mark; once the mutable table is full they are at the wall — the
		// engine's remaining hard stall.
		if mt := db.mem.Load(); mt != nil {
			budget := db.memBudget.Load()
			switch sz := mt.ApproximateSize(); {
			case sz >= budget:
				p, atWall = scheduler.PressureSlow, true
			case sz >= budget/2:
				p = scheduler.PressureSlow
			}
		}
	}
	if atWall {
		db.wallTicks++
	} else {
		db.wallTicks = 0
	}
	if p == scheduler.PressureSlow && debt <= db.lastPlanDebt &&
		(!atWall || db.wallTicks < 3) {
		// Backlog exists but is not growing: decaying further would only
		// waste disk capacity. Two cases. With the flush pipeline idle
		// (no merge in flight) the admitted rate is provably below the
		// disk's drain rate — L0 pressure here means a long compaction is
		// still burning down old debt, not that writers are outrunning the
		// disk — so keep recovering. With a merge in flight, hold: the rate
		// is near the drain rate and nudging it either way oscillates. The
		// memtable wall joins the unconditional decay only once it has
		// persisted a few passes; at the right rate rotation cycles graze
		// the wall for a tick or two just before each merge completes, and
		// reacting to those grazes collapses the rate far below capacity.
		// A held wall means writers are parked — decay until it clears.
		// The stop trigger always decays (emergency brake).
		//
		// Recovery under a backlog is ceilinged by the drain estimate:
		// a long compaction can idle the flush pipeline for hundreds of
		// planner passes, and unchecked additive recovery across them
		// would send writers into the memtable wall at many times the
		// disk's speed, stacking wall waits into exactly the stall cliff
		// this controller removes.
		if merging || (db.drainEWMA > 0 && float64(db.throttle.Rate()) >= db.drainEWMA) {
			p = scheduler.PressureHold
		} else {
			p = scheduler.PressureNone
		}
	}
	db.lastPlanDebt = debt
	rate, change := db.throttle.Tune(p)
	switch change {
	case scheduler.ChangeNone:
		return
	case scheduler.ChangeOn:
		db.obs.Event(obs.Event{Type: obs.EvThrottleOn, Bytes: uint64(rate)})
	case scheduler.ChangeAdjust:
		db.obs.Event(obs.Event{Type: obs.EvThrottleAdjust, Bytes: uint64(rate)})
	case scheduler.ChangeOff:
		db.obs.Event(obs.Event{Type: obs.EvThrottleOff})
	}
	db.obs.ThrottleRate.Store(uint64(rate))
}

// runFlushJob is the flush job body: one rotation-or-merge attempt through
// the same health machinery the old flush loop used. The scheduler's single
// flush slot serializes it; synchronous forced flushes contend on flushMu
// the same way they always have.
func (db *DB) runFlushJob() {
	if !db.bgRunnable() {
		return
	}
	db.flushMu.Lock()
	var err error
	worked := false
	if db.imm.Load() != nil {
		// A previous attempt failed mid-merge: finish that one first.
		worked = true
		err = db.supervised(db.flushImm)
	} else if mt := db.mem.Load(); mt != nil && mt.ApproximateSize() >= db.memBudget.Load() {
		worked = true
		err = db.supervised(db.rotateAndFlush)
	}
	db.flushMu.Unlock()
	if worked {
		// A failed attempt sleeps out its backoff here (occupying the flush
		// slot — there is no other flush to run) and exits; the planner
		// resubmits while the work remains. Completion re-plans via the
		// scheduler's kick, which queues any compaction the flush created.
		db.settleBG(originFlush, err, db.flushBoff)
	}
}

// runCompactionJob is the per-level compaction job body: re-pick the level's
// inputs against the current version (the backlog may have drained since
// planning), claim the level pair, run, settle. The busy table still guards
// adjacent-level overlap — the scheduler serializes same-level jobs by key,
// but L(n)→L(n+1) and L(n+1)→L(n+2) share a level and must not interleave.
func (db *DB) runCompactionJob(level int) {
	if !db.bgRunnable() {
		return
	}
	db.busyMu.Lock()
	if db.levelBusy[level] || (level+1 < version.NumLevels && db.levelBusy[level+1]) {
		db.busyMu.Unlock()
		return
	}
	c := db.versions.PickCompactionAt(level)
	if c == nil {
		db.busyMu.Unlock()
		return
	}
	db.markLevelsLocked(level, true)
	db.busyMu.Unlock()
	err := db.supervised(func() error { return db.runCompaction(c) })
	db.unlockLevels(level)
	if db.settleBG(compactJobKeys[level], err, db.levelBoff[level]) {
		db.wakeStalled(&db.l0Relaxed)
	}
}

// runSeekJob drains one pending seek-compaction hint (read-triggered work,
// scheduled only when nothing more urgent is queued).
func (db *DB) runSeekJob() {
	if !db.bgRunnable() {
		return
	}
	db.busyMu.Lock()
	c := db.versions.PickSeekCompaction(db.levelBusyAt)
	if c == nil {
		db.busyMu.Unlock()
		return
	}
	level := c.Level
	db.markLevelsLocked(level, true)
	db.busyMu.Unlock()
	err := db.supervised(func() error { return db.runCompaction(c) })
	db.unlockLevels(level)
	if db.settleBG(originSeek, err, db.seekBoff) {
		db.wakeStalled(&db.l0Relaxed)
	}
}

// levelBusyAt reports the busy flag of one level (PickSeekCompaction's
// blocked callback; it consults both halves of the pair itself).
func (db *DB) levelBusyAt(level int) bool {
	return level >= 0 && level < version.NumLevels && db.levelBusy[level]
}

// admitWrite charges n bytes against the admission token bucket and sleeps
// out any imposed delay. The healthy path — bucket inactive, or tokens
// available — is one atomic load (plus the bucket's short mutex when
// active) and never allocates. An imposed wait is cut short by Close
// (failing the write), by Resume (the operator override admits parked
// writers immediately), and — on the *Ctx entry points — by ctx.Done()
// (failing the write with ctx.Err()).
func (db *DB) admitWrite(ctx context.Context, n int) error {
	wait := db.throttle.Reserve(n)
	if wait == 0 {
		return nil
	}
	start := time.Now()
	timer := time.NewTimer(wait)
	select {
	case <-timer.C:
	case <-db.closing:
		timer.Stop()
		db.recordThrottleWait(start)
		return ErrClosed
	case <-ctxDone(ctx):
		timer.Stop()
		db.recordThrottleWait(start)
		return ctx.Err()
	case <-*db.resumed.Load():
		timer.Stop()
	}
	db.recordThrottleWait(start)
	return nil
}

// recordThrottleWait folds one admission delay into the throttle histogram
// (microseconds) and the cumulative stall metric.
func (db *DB) recordThrottleWait(start time.Time) {
	d := time.Since(start)
	db.obs.WriteThrottle.RecordValue(uint64(d / time.Microsecond))
	db.metrics.stallNanos.Add(int64(d))
}
