package syncutil

import (
	"hash/fnv"
	"sync"
)

// StripedLock is the textbook lock-striping scheme (Gray & Reuter) the
// paper uses as the baseline for read-modify-write operations in Fig. 9:
// each key hashes to one of N exclusive locks.
type StripedLock struct {
	stripes []sync.Mutex
}

// NewStripedLock returns a striped lock with n stripes (rounded up to a
// power of two, minimum 1).
func NewStripedLock(n int) *StripedLock {
	size := 1
	for size < n {
		size <<= 1
	}
	return &StripedLock{stripes: make([]sync.Mutex, size)}
}

func (s *StripedLock) index(key []byte) int {
	h := fnv.New32a()
	h.Write(key)
	return int(h.Sum32()) & (len(s.stripes) - 1)
}

// Lock acquires the stripe covering key.
func (s *StripedLock) Lock(key []byte) { s.stripes[s.index(key)].Lock() }

// Unlock releases the stripe covering key.
func (s *StripedLock) Unlock(key []byte) { s.stripes[s.index(key)].Unlock() }
