package syncutil

import "sync/atomic"

// Queue is a lock-free multi-producer multi-consumer FIFO queue
// (Michael & Scott), the Go analogue of the libcds non-blocking queue the
// paper uses for its asynchronous logging path (§4).
type Queue[T any] struct {
	head atomic.Pointer[qnode[T]]
	tail atomic.Pointer[qnode[T]]
	size atomic.Int64
}

type qnode[T any] struct {
	v    T
	next atomic.Pointer[qnode[T]]
}

// NewQueue returns an empty queue.
func NewQueue[T any]() *Queue[T] {
	q := &Queue[T]{}
	sentinel := &qnode[T]{}
	q.head.Store(sentinel)
	q.tail.Store(sentinel)
	return q
}

// Enqueue appends v. It never blocks.
func (q *Queue[T]) Enqueue(v T) {
	n := &qnode[T]{v: v}
	for {
		tail := q.tail.Load()
		next := tail.next.Load()
		if tail != q.tail.Load() {
			continue
		}
		if next != nil {
			// Help a lagging enqueuer advance the tail.
			q.tail.CompareAndSwap(tail, next)
			continue
		}
		if tail.next.CompareAndSwap(nil, n) {
			q.tail.CompareAndSwap(tail, n)
			q.size.Add(1)
			return
		}
	}
}

// Dequeue removes and returns the oldest element, or ok=false if empty.
func (q *Queue[T]) Dequeue() (v T, ok bool) {
	for {
		head := q.head.Load()
		tail := q.tail.Load()
		next := head.next.Load()
		if head != q.head.Load() {
			continue
		}
		if next == nil {
			return v, false // empty
		}
		if head == tail {
			// Tail is lagging; help it along.
			q.tail.CompareAndSwap(tail, next)
			continue
		}
		if q.head.CompareAndSwap(head, next) {
			q.size.Add(-1)
			return next.v, true
		}
	}
}

// Len returns the approximate number of queued elements.
func (q *Queue[T]) Len() int { return int(q.size.Load()) }
