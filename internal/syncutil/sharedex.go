// Package syncutil provides the custom synchronization primitives cLSM is
// built from: a writer-preferring shared-exclusive lock, RCU-style
// reference-counted resources, and a striped lock used by the baseline
// read-modify-write implementation (Fig. 9's competitor).
package syncutil

import (
	"runtime"
	"sync/atomic"
	"time"
)

// SharedExclusive is a shared-exclusive (readers-writer) lock that prefers
// exclusive acquisition, as §3.1 of the paper requires: once a merge thread
// announces intent, new shared lockers back off so beforeMerge/afterMerge
// cannot starve. Shared acquisition is a single atomic add in the
// uncontended case, so puts pay almost nothing.
//
// The zero value is an unlocked lock.
type SharedExclusive struct {
	readers atomic.Int64
	writer  atomic.Bool
}

const spinsBeforeYield = 64

// LockShared acquires the lock in shared mode.
func (l *SharedExclusive) LockShared() {
	spins := 0
	for {
		if !l.writer.Load() {
			l.readers.Add(1)
			if !l.writer.Load() {
				return
			}
			// A writer slipped in between the check and the increment;
			// back out and defer to it (writer preference).
			l.readers.Add(-1)
		}
		spins = backoff(spins)
	}
}

// UnlockShared releases a shared acquisition.
func (l *SharedExclusive) UnlockShared() {
	l.readers.Add(-1)
}

// LockExclusive acquires the lock in exclusive mode, waiting out current
// shared holders while blocking new ones.
func (l *SharedExclusive) LockExclusive() {
	spins := 0
	for !l.writer.CompareAndSwap(false, true) {
		spins = backoff(spins)
	}
	spins = 0
	for l.readers.Load() != 0 {
		spins = backoff(spins)
	}
}

// UnlockExclusive releases an exclusive acquisition.
func (l *SharedExclusive) UnlockExclusive() {
	l.writer.Store(false)
}

// backoff spins briefly, then yields, then sleeps, returning the updated
// spin count. Exclusive sections here are a handful of pointer swaps, so
// the sleep tier is rarely reached.
func backoff(spins int) int {
	spins++
	switch {
	case spins < spinsBeforeYield:
		// busy spin
	case spins < spinsBeforeYield*4:
		runtime.Gosched()
	default:
		time.Sleep(10 * time.Microsecond)
	}
	return spins
}
