package syncutil

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSharedExclusiveMutualExclusion(t *testing.T) {
	var l SharedExclusive
	var inExclusive atomic.Int64
	var sharedHolders atomic.Int64
	var violations atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				l.LockShared()
				sharedHolders.Add(1)
				if inExclusive.Load() != 0 {
					violations.Add(1)
				}
				sharedHolders.Add(-1)
				l.UnlockShared()
			}
		}()
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				l.LockExclusive()
				if inExclusive.Add(1) != 1 {
					violations.Add(1)
				}
				if sharedHolders.Load() != 0 {
					violations.Add(1)
				}
				inExclusive.Add(-1)
				l.UnlockExclusive()
			}
		}()
	}
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d mutual-exclusion violations", v)
	}
}

// Writer preference: an exclusive locker must get in even under a constant
// stream of shared lockers.
func TestExclusiveNotStarved(t *testing.T) {
	var l SharedExclusive
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				l.LockShared()
				l.UnlockShared()
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		for i := 0; i < 100; i++ {
			l.LockExclusive()
			l.UnlockExclusive()
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("exclusive locker starved")
	}
	close(stop)
	wg.Wait()
}

type testComp struct {
	RefCounted
	finalized atomic.Bool
}

func TestRefCountedFinalizer(t *testing.T) {
	c := &testComp{}
	c.InitRef(func() { c.finalized.Store(true) })
	c.Ref()
	c.Unref()
	if c.finalized.Load() {
		t.Fatal("finalized too early")
	}
	c.Unref()
	if !c.finalized.Load() {
		t.Fatal("finalizer did not run")
	}
}

func TestAcquireRCU(t *testing.T) {
	var p atomic.Pointer[testComp]
	c1 := &testComp{}
	c1.InitRef(func() { c1.finalized.Store(true) })
	p.Store(c1)

	got := Acquire[testComp](&p)
	if got != c1 {
		t.Fatal("acquired wrong component")
	}
	// Publisher swaps in a new component and drops its reference to c1.
	c2 := &testComp{}
	c2.InitRef(nil)
	p.Store(c2)
	c1.Unref()
	if c1.finalized.Load() {
		t.Fatal("c1 finalized while still referenced by reader")
	}
	got.Unref()
	if !c1.finalized.Load() {
		t.Fatal("c1 not finalized after last reader")
	}
}

func TestAcquireNil(t *testing.T) {
	var p atomic.Pointer[testComp]
	if got := Acquire[testComp](&p); got != nil {
		t.Fatal("expected nil")
	}
}

func TestAcquireUnderSwaps(t *testing.T) {
	var p atomic.Pointer[testComp]
	var finalized atomic.Int64
	mk := func() *testComp {
		c := &testComp{}
		c.InitRef(func() { finalized.Add(1) })
		return c
	}
	p.Store(mk())
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // publisher keeps swapping
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			old := p.Swap(mk())
			old.Unref()
		}
	}()
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20000; j++ {
				c := Acquire[testComp](&p)
				if c == nil {
					t.Error("nil component")
					return
				}
				if c.Refs() <= 0 {
					t.Error("acquired a dead component")
					return
				}
				c.Unref()
			}
		}()
	}
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()
	final := p.Load()
	final.Unref()
}

func TestStripedLock(t *testing.T) {
	s := NewStripedLock(16)
	var wg sync.WaitGroup
	counters := map[string]*int{"a": new(int), "b": new(int), "c": new(int)}
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				for k, c := range counters {
					s.Lock([]byte(k))
					*c++
					s.Unlock([]byte(k))
				}
			}
		}()
	}
	wg.Wait()
	for k, c := range counters {
		if *c != 8000 {
			t.Errorf("counter %s = %d, want 8000", k, *c)
		}
	}
}

func TestStripedLockSizing(t *testing.T) {
	s := NewStripedLock(10)
	if len(s.stripes) != 16 {
		t.Errorf("stripes = %d, want 16", len(s.stripes))
	}
	s = NewStripedLock(0)
	if len(s.stripes) != 1 {
		t.Errorf("stripes = %d, want 1", len(s.stripes))
	}
}
