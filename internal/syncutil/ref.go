package syncutil

import "sync/atomic"

// RefCounted is embedded in resources whose lifetime outlives the global
// pointer that published them — the paper's per-component reference
// counters (§3.1). The creator holds the initial reference; the component
// is destroyed when the count drops to zero.
type RefCounted struct {
	refs      atomic.Int64
	finalized atomic.Bool
	onFinal   func()
}

// InitRef sets the initial reference count to 1 and registers the finalizer
// run when the count reaches zero.
func (r *RefCounted) InitRef(onFinal func()) {
	r.refs.Store(1)
	r.onFinal = onFinal
}

// Ref acquires one reference. It must only be called by a holder of an
// existing reference or inside an RCU read section (see Acquire).
func (r *RefCounted) Ref() { r.refs.Add(1) }

// Unref drops one reference, running the finalizer on the last drop.
//
// The count may touch zero more than once: a reader racing Acquire against
// the publisher's swap can momentarily resurrect a component (Ref after
// the count hit zero) only to discover the pointer moved and drop it
// again. The object is never dereferenced in that window, but the
// finalizer must run exactly once, hence the CAS guard rather than a
// negative-count panic at zero.
func (r *RefCounted) Unref() {
	if n := r.refs.Add(-1); n == 0 {
		if r.onFinal != nil && r.finalized.CompareAndSwap(false, true) {
			r.onFinal()
		}
	} else if n < 0 {
		panic("syncutil: negative reference count")
	}
}

// Refs returns the current count (for tests).
func (r *RefCounted) Refs() int64 { return r.refs.Load() }

// Referenced is the constraint Acquire needs from a component.
type Referenced interface {
	Ref()
	Unref()
}

// Acquire implements the paper's RCU-like pointer hand-off: load the
// published pointer, take a reference, and re-check that the pointer has
// not been swapped in the meantime. If it has, the stale reference is
// dropped and the load retries. The returned component is safe to use until
// the caller Unrefs it, even after the publisher discards it.
//
// Acquire returns nil when the pointer is nil (e.g. no immutable memtable
// is currently being merged).
func Acquire[T any, PT interface {
	Referenced
	*T
}](p *atomic.Pointer[T]) PT {
	for {
		c := PT(p.Load())
		if c == nil {
			return nil
		}
		c.Ref()
		if PT(p.Load()) == c {
			return c
		}
		c.Unref()
	}
}
