package harness

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"clsm/internal/baseline"
	"clsm/internal/workload"
)

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("Count = %d", h.Count())
	}
	p50 := h.Quantile(0.5)
	if p50 < 400*time.Microsecond || p50 > 620*time.Microsecond {
		t.Errorf("p50 = %v, want ~500us", p50)
	}
	p90 := h.Quantile(0.9)
	if p90 < 780*time.Microsecond || p90 > 1050*time.Microsecond {
		t.Errorf("p90 = %v, want ~900us", p90)
	}
	if h.Quantile(0) > h.Quantile(1) {
		t.Error("quantiles not monotone")
	}
	if h.Max() != 1000*time.Microsecond || h.Min() != time.Microsecond {
		t.Errorf("min/max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := 0; i < 100; i++ {
		a.Record(time.Millisecond)
		b.Record(10 * time.Millisecond)
	}
	a.Merge(b)
	if a.Count() != 200 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if p := a.Quantile(0.25); p > 2*time.Millisecond {
		t.Errorf("p25 = %v", p)
	}
	if p := a.Quantile(0.75); p < 8*time.Millisecond {
		t.Errorf("p75 = %v", p)
	}
	a.Merge(nil) // no-op
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.9) != 0 || h.Mean() != 0 {
		t.Error("empty histogram should report zeros")
	}
}

func TestRunCountsOps(t *testing.T) {
	s, err := baseline.New(baseline.NameCLSM, Smoke.coreOptions(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res, err := Run(s, Spec{
		Threads:      4,
		OpsPerThread: 500,
		Mix:          workload.Mix{GetRatio: 0.5},
		Workload:     workload.Config{KeySpace: 1000, KeySize: 8, ValueSize: 64},
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 2000 {
		t.Fatalf("Ops = %d, want 2000", res.Ops)
	}
	if res.Hist.Count() == 0 {
		t.Fatal("no latency samples recorded")
	}
	if res.Throughput() <= 0 {
		t.Fatal("throughput not positive")
	}
}

func TestPreloadMakesKeysReadable(t *testing.T) {
	s, err := baseline.New(baseline.NameCLSM, Smoke.coreOptions(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	cfg := workload.Config{KeySpace: 5000, KeySize: 8, ValueSize: 32}
	if err := Preload(s, cfg, 5000, 4); err != nil {
		t.Fatal(err)
	}
	g := workload.New(cfg, 99)
	miss := 0
	for i := int64(0); i < 5000; i += 101 {
		if _, ok, err := s.Get(g.Key(i)); err != nil {
			t.Fatal(err)
		} else if !ok {
			miss++
		}
	}
	if miss != 0 {
		t.Fatalf("%d preloaded keys unreadable", miss)
	}
}

// Every figure runner must complete at smoke scale and produce a full
// series grid.
func TestFiguresSmoke(t *testing.T) {
	sc := Smoke
	sc.Duration = 60 * time.Millisecond
	sc.KeySpace, sc.Preload = 20_000, 8_000
	sc.Threads = []int{1, 2}
	sc.ReadThreads = []int{2}

	check := func(t *testing.T, fig *Figure, wantSeries int, err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		if len(fig.Series) != wantSeries {
			t.Fatalf("%s: %d series, want %d", fig.ID, len(fig.Series), wantSeries)
		}
		for _, s := range fig.Series {
			if len(s.Points) == 0 {
				t.Fatalf("%s/%s: no points", fig.ID, s.Store)
			}
			for _, p := range s.Points {
				if p.Throughput <= 0 {
					t.Fatalf("%s/%s: zero throughput at x=%g", fig.ID, s.Store, p.X)
				}
			}
		}
		var buf bytes.Buffer
		fig.WriteTable(&buf)
		if !strings.Contains(buf.String(), fig.ID) {
			t.Fatalf("table output missing figure id: %s", buf.String())
		}
	}

	t.Run("fig5", func(t *testing.T) {
		fig, err := Fig5(sc)
		check(t, fig, 5, err)
		var buf bytes.Buffer
		fig.WriteLatencyTable(&buf)
		if !strings.Contains(buf.String(), "p90") {
			t.Fatal("latency table missing p90")
		}
	})
	t.Run("fig6", func(t *testing.T) {
		fig, err := Fig6(sc)
		check(t, fig, 5, err)
	})
	t.Run("fig7a", func(t *testing.T) {
		fig, err := Fig7a(sc)
		check(t, fig, 5, err)
	})
	t.Run("fig7b", func(t *testing.T) {
		fig, err := Fig7b(sc)
		check(t, fig, 4, err)
	})
	t.Run("fig8", func(t *testing.T) {
		fig, err := Fig8(sc)
		check(t, fig, 2, err)
	})
	t.Run("fig9", func(t *testing.T) {
		fig, err := Fig9(sc)
		check(t, fig, 2, err)
	})
	t.Run("fig10", func(t *testing.T) {
		figs, err := Fig10(sc)
		if err != nil {
			t.Fatal(err)
		}
		if len(figs) != 4 {
			t.Fatalf("fig10 produced %d datasets", len(figs))
		}
		for _, fig := range figs {
			check(t, fig, 4, nil)
		}
	})
	t.Run("fig1", func(t *testing.T) {
		sc1 := sc
		sc1.Threads = []int{4}
		fig, err := Fig1(sc1)
		check(t, fig, 3, err)
	})
	t.Run("fig11", func(t *testing.T) {
		sc11 := sc
		sc11.Preload = 4000
		fig, err := Fig11(sc11)
		check(t, fig, 2, err)
	})
}

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"smoke", "small", "full", ""} {
		if _, err := ScaleByName(name); err != nil {
			t.Errorf("ScaleByName(%q): %v", name, err)
		}
	}
	if _, err := ScaleByName("nope"); err == nil {
		t.Error("bad scale accepted")
	}
}
