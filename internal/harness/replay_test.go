package harness

import (
	"bytes"
	"testing"

	"clsm/internal/baseline"
	"clsm/internal/workload"
)

func TestReplayTrace(t *testing.T) {
	var buf bytes.Buffer
	cfg := workload.Config{KeySpace: 500, KeySize: 8, ValueSize: 64}
	mix := workload.Mix{GetRatio: 0.4, ScanRatio: 0.1, RMWRatio: 0.1, ScanMin: 3, ScanMax: 6}
	const n = 2000
	if err := workload.RecordSynthetic(&buf, cfg, mix, n, 11); err != nil {
		t.Fatal(err)
	}

	s, err := baseline.New(baseline.NameCLSM, Smoke.CoreOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := Preload(s, cfg, 500, 4); err != nil {
		t.Fatal(err)
	}

	res, err := ReplayTrace(s, &buf, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != n {
		t.Fatalf("replayed %d ops, want %d", res.Ops, n)
	}
	if res.Throughput() <= 0 || res.Hist.Count() == 0 {
		t.Fatalf("bad result: %+v", res)
	}
	// The replay's writes must be visible afterwards.
	m := s.Metrics()
	if m.Puts == 0 || m.Gets == 0 {
		t.Fatalf("replay did not mix ops: %+v", m)
	}
}

func TestReplayTraceCorruptStream(t *testing.T) {
	s, err := baseline.New(baseline.NameCLSM, Smoke.CoreOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := ReplayTrace(s, bytes.NewReader([]byte{0xff, 0x01, 'k'}), 2); err == nil {
		t.Fatal("corrupt trace accepted")
	}
}
