package harness

import (
	"fmt"
	"io"
	"sync"
	"time"

	"clsm/internal/baseline"
	"clsm/internal/core"
	"clsm/internal/storage"
	"clsm/internal/version"
	"clsm/internal/workload"
)

// Scale bundles the dataset/duration knobs of an experiment run. The paper
// uses a 150 GB dataset on a 16-core Xeon; Full approximates its shape on
// one machine, Small finishes a figure in tens of seconds, and Smoke keeps
// unit tests and `go test -bench` fast.
type Scale struct {
	Name         string
	KeySpace     int64
	Preload      int64
	Duration     time.Duration
	MemtableSize int64
	BlockCache   int64
	BaseLevel    int64
	TableFile    int64
	Threads      []int // write/mixed thread ladder (paper: 1..16)
	ReadThreads  []int // read thread ladder (paper: 1..128)
}

// Predefined scales.
var (
	// Smoke is for tests and testing.B benchmarks.
	Smoke = Scale{
		Name: "smoke", KeySpace: 40_000, Preload: 20_000,
		Duration:     150 * time.Millisecond,
		MemtableSize: 1 << 20, BlockCache: 8 << 20,
		BaseLevel: 512 << 10, TableFile: 128 << 10,
		Threads:     []int{1, 4},
		ReadThreads: []int{1, 4, 16},
	}
	// Small regenerates every figure in a few minutes.
	Small = Scale{
		Name: "small", KeySpace: 2_000_000, Preload: 400_000,
		Duration:     2 * time.Second,
		MemtableSize: 16 << 20, BlockCache: 128 << 20,
		BaseLevel: 8 << 20, TableFile: 2 << 20,
		Threads:     []int{1, 2, 4, 8, 16},
		ReadThreads: []int{1, 2, 4, 8, 16, 32, 64, 128},
	}
	// Full approximates the paper's configuration (128 MB memtables,
	// deeper thread ladders, longer measurement windows).
	Full = Scale{
		Name: "full", KeySpace: 50_000_000, Preload: 10_000_000,
		Duration:     10 * time.Second,
		MemtableSize: 128 << 20, BlockCache: 1 << 30,
		BaseLevel: 64 << 20, TableFile: 8 << 20,
		Threads:     []int{1, 2, 4, 8, 16},
		ReadThreads: []int{1, 2, 4, 8, 16, 32, 64, 128},
	}
)

// ScaleByName resolves a preset.
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "smoke":
		return Smoke, nil
	case "small", "":
		return Small, nil
	case "full":
		return Full, nil
	}
	return Scale{}, fmt.Errorf("harness: unknown scale %q (smoke|small|full)", name)
}

// CoreOptions builds engine options matching the scale, on a fresh
// in-memory filesystem (exported for external benchmarks).
func (sc Scale) CoreOptions() core.Options { return sc.coreOptions(nil) }

func (sc Scale) coreOptions(fs storage.FS) core.Options {
	if fs == nil {
		fs = storage.NewMemFS()
	}
	return core.Options{
		FS:             fs,
		MemtableSize:   sc.MemtableSize,
		BlockCacheSize: sc.BlockCache,
		Disk: version.Options{
			BaseLevelBytes:  sc.BaseLevel,
			TableFileSize:   sc.TableFile,
			BloomBitsPerKey: 10,
		},
	}
}

// Point is one measurement of one store.
type Point struct {
	X          float64 // thread count, MB, etc.
	Throughput float64 // ops/sec (or keys/sec where the figure says so)
	P90        time.Duration
}

// Series is one store's curve.
type Series struct {
	Store  string
	Points []Point
}

// Figure is a regenerated table/figure.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// WriteTable renders the figure as the tabular equivalent of the paper's
// plot: one row per X value, one column per store.
func (f Figure) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "\n== %s: %s ==\n", f.ID, f.Title)
	fmt.Fprintf(w, "%-12s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(w, "%18s", s.Store)
	}
	fmt.Fprintf(w, "    (%s)\n", f.YLabel)
	if len(f.Series) == 0 {
		return
	}
	for i := range f.Series[0].Points {
		fmt.Fprintf(w, "%-12g", f.Series[0].Points[i].X)
		for _, s := range f.Series {
			if i < len(s.Points) {
				fmt.Fprintf(w, "%18s", FormatThroughput(s.Points[i].Throughput))
			} else {
				fmt.Fprintf(w, "%18s", "-")
			}
		}
		fmt.Fprintln(w)
	}
}

// WriteLatencyTable renders the throughput-vs-latency view (Figs. 5b, 6b).
func (f Figure) WriteLatencyTable(w io.Writer) {
	fmt.Fprintf(w, "\n== %s: %s — 90th percentile latency ==\n", f.ID, f.Title)
	for _, s := range f.Series {
		fmt.Fprintf(w, "%s:\n", s.Store)
		for _, p := range s.Points {
			lat := "-"
			if p.P90 > 0 {
				lat = p.P90.Round(time.Microsecond).String()
			}
			fmt.Fprintf(w, "  %3g threads  %10s Kops/s  p90=%s\n",
				p.X, FormatThroughput(p.Throughput), lat)
		}
	}
}

// runLadder measures one store model across a thread ladder.
func runLadder(name baseline.Name, sc Scale, threads []int, mix workload.Mix,
	wcfg workload.Config, preload int64, opts core.Options) (Series, error) {

	series := Series{Store: string(name)}
	for _, th := range threads {
		s, err := baseline.New(name, opts)
		if err != nil {
			return series, err
		}
		if preload > 0 {
			if err := Preload(s, wcfg, preload, 8); err != nil {
				s.Close()
				return series, err
			}
		}
		res, err := Run(s, Spec{
			Threads:  th,
			Duration: sc.Duration,
			Mix:      mix,
			Workload: wcfg,
			Seed:     int64(th) * 31,
		})
		cerr := s.Close()
		if err != nil {
			return series, err
		}
		if cerr != nil {
			return series, cerr
		}
		tput := res.Throughput()
		if mix.ScanRatio > 0 {
			tput = res.KeysPerSec()
		}
		series.Points = append(series.Points, Point{
			X:          float64(th),
			Throughput: tput,
			P90:        res.Hist.Quantile(0.90),
		})
	}
	return series, nil
}

// runModels measures several models over the same ladder. Each model gets
// a fresh filesystem via mkOpts.
func runModels(models []baseline.Name, sc Scale, threads []int, mix workload.Mix,
	wcfg workload.Config, preload int64, mkOpts func(baseline.Name) core.Options) (*Figure, error) {

	fig := &Figure{}
	for _, name := range models {
		s, err := runLadder(name, sc, threads, mix, wcfg, preload, mkOpts(name))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

func defaultMkOpts(sc Scale) func(baseline.Name) core.Options {
	return func(baseline.Name) core.Options { return sc.coreOptions(nil) }
}

// Fig5 reproduces Fig. 5: 100 % uniform writes, 8 B keys / 256 B values,
// throughput and 90th-percentile latency per thread count.
func Fig5(sc Scale) (*Figure, error) {
	wcfg := workload.Config{
		KeySpace: sc.KeySpace, KeySize: 8, ValueSize: 256, Dist: workload.Uniform,
	}
	fig, err := runModels(baseline.AllModels, sc, sc.Threads,
		workload.Mix{}, wcfg, 0, defaultMkOpts(sc))
	if err != nil {
		return nil, err
	}
	fig.ID, fig.Title = "fig5", "Write performance (100% put, uniform keys)"
	fig.XLabel, fig.YLabel = "threads", "Kops/s"
	return fig, nil
}

// Fig6 reproduces Fig. 6: 100 % reads with locality (90 % of accesses on
// 10 % of the data), thread ladder up to 128.
func Fig6(sc Scale) (*Figure, error) {
	wcfg := workload.Config{
		KeySpace: sc.Preload, KeySize: 8, ValueSize: 256, Dist: workload.Hotspot,
	}
	fig, err := runModels(baseline.AllModels, sc, sc.ReadThreads,
		workload.Mix{GetRatio: 1}, wcfg, sc.Preload, defaultMkOpts(sc))
	if err != nil {
		return nil, err
	}
	fig.ID, fig.Title = "fig6", "Read performance (100% get, 90/10 hotspot)"
	fig.XLabel, fig.YLabel = "threads", "Kops/s"
	return fig, nil
}

// Fig7a reproduces Fig. 7a: 1:1 read/write mix.
func Fig7a(sc Scale) (*Figure, error) {
	wcfg := workload.Config{
		KeySpace: sc.Preload, KeySize: 8, ValueSize: 256, Dist: workload.Hotspot,
	}
	fig, err := runModels(baseline.AllModels, sc, sc.Threads,
		workload.Mix{GetRatio: 0.5}, wcfg, sc.Preload, defaultMkOpts(sc))
	if err != nil {
		return nil, err
	}
	fig.ID, fig.Title = "fig7a", "Mixed read/write throughput (50%/50%)"
	fig.XLabel, fig.YLabel = "threads", "Kops/s"
	return fig, nil
}

// Fig7b reproduces Fig. 7b: scan/write mix. Ranges span 10-20 keys and
// scans are an order of magnitude rarer than writes, keeping keys written
// and scanned balanced; the metric is keys/sec. bLSM is excluded (no
// consistent scans), as in the paper.
func Fig7b(sc Scale) (*Figure, error) {
	wcfg := workload.Config{
		KeySpace: sc.Preload, KeySize: 8, ValueSize: 256, Dist: workload.Hotspot,
	}
	models := []baseline.Name{baseline.NameRocksDB, baseline.NameLevelDB,
		baseline.NameHyper, baseline.NameCLSM}
	fig, err := runModels(models, sc, sc.Threads,
		workload.Mix{ScanRatio: 1.0 / 11, ScanMin: 10, ScanMax: 20},
		wcfg, sc.Preload, defaultMkOpts(sc))
	if err != nil {
		return nil, err
	}
	fig.ID, fig.Title = "fig7b", "Mixed scan/write throughput (1:10 scans:writes, ranges 10-20)"
	fig.XLabel, fig.YLabel = "threads", "Kkeys/s"
	return fig, nil
}

// Fig8 reproduces Fig. 8: mixed read/write throughput at 8 threads as a
// function of the memory component size — LevelDB stops benefiting early,
// cLSM keeps converting RAM into throughput.
func Fig8(sc Scale) (*Figure, error) {
	sizesMB := []int64{1, 4, 8, 16, 32, 64}
	if sc.Name == "full" {
		sizesMB = []int64{1, 16, 32, 64, 128, 256, 512}
	}
	if sc.Name == "smoke" {
		sizesMB = []int64{1, 4}
	}
	wcfg := workload.Config{
		KeySpace: sc.Preload, KeySize: 8, ValueSize: 256, Dist: workload.Hotspot,
	}
	threads := 8
	if sc.Name == "smoke" {
		threads = 4
	}
	fig := &Figure{
		ID:     "fig8",
		Title:  fmt.Sprintf("Mixed read/write vs memtable size (%d threads)", threads),
		XLabel: "memtable MB", YLabel: "Kops/s",
	}
	for _, name := range []baseline.Name{baseline.NameLevelDB, baseline.NameCLSM} {
		series := Series{Store: string(name)}
		for _, mb := range sizesMB {
			opts := sc.coreOptions(nil)
			opts.MemtableSize = mb << 20
			s, err := baseline.New(name, opts)
			if err != nil {
				return nil, err
			}
			if err := Preload(s, wcfg, sc.Preload, 8); err != nil {
				s.Close()
				return nil, err
			}
			res, err := Run(s, Spec{
				Threads: threads, Duration: sc.Duration,
				Mix: workload.Mix{GetRatio: 0.5}, Workload: wcfg,
				Seed: mb,
			})
			cerr := s.Close()
			if err != nil {
				return nil, err
			}
			if cerr != nil {
				return nil, cerr
			}
			series.Points = append(series.Points, Point{
				X: float64(mb), Throughput: res.Throughput(), P90: res.Hist.Quantile(0.9),
			})
		}
		fig.Series = append(fig.Series, series)
	}
	return fig, nil
}

// Fig9 reproduces Fig. 9: 100 % put-if-absent read-modify-write with
// locality — cLSM's lock-free RMW (Algorithm 3) against the textbook
// lock-striping implementation on the LevelDB model.
func Fig9(sc Scale) (*Figure, error) {
	wcfg := workload.Config{
		KeySpace: sc.KeySpace, KeySize: 8, ValueSize: 256, Dist: workload.Hotspot,
	}
	models := []baseline.Name{baseline.NameStriped, baseline.NameCLSM}
	fig, err := runModels(models, sc, sc.Threads,
		workload.Mix{RMWRatio: 1}, wcfg, 0, defaultMkOpts(sc))
	if err != nil {
		return nil, err
	}
	fig.ID, fig.Title = "fig9", "Read-modify-write throughput (100% put-if-absent)"
	fig.XLabel, fig.YLabel = "threads", "Kops/s"
	return fig, nil
}

// Fig10 reproduces Fig. 10: four synthetic reconstructions of the §5.2
// production workloads — 40 B keys, 1 KiB values, heavy-tailed key
// popularity, read ratios 93 %, 85 %, 96 %, 86 %.
func Fig10(sc Scale) ([]*Figure, error) {
	readRatios := []float64{0.93, 0.85, 0.96, 0.86}
	models := []baseline.Name{baseline.NameRocksDB, baseline.NameLevelDB,
		baseline.NameHyper, baseline.NameCLSM}
	var figs []*Figure
	for i, rr := range readRatios {
		wcfg := workload.Config{
			KeySpace: sc.Preload, KeySize: 40, ValueSize: 1024,
			Dist: workload.ProductionSynth,
		}
		preload := sc.Preload / 4 // 1 KiB values: keep preload volume sane
		wcfg.KeySpace = preload
		fig, err := runModels(models, sc, sc.Threads,
			workload.Mix{GetRatio: rr}, wcfg, preload, defaultMkOpts(sc))
		if err != nil {
			return nil, err
		}
		fig.ID = fmt.Sprintf("fig10%c", 'a'+i)
		fig.Title = fmt.Sprintf("Production dataset %d (%d%% reads)", i+1, int(rr*100))
		fig.XLabel, fig.YLabel = "threads", "Kops/s"
		figs = append(figs, fig)
	}
	return figs, nil
}

// Fig1 reproduces Fig. 1: resource-shared cLSM (one big partition, all
// threads) versus resource-isolated LevelDB/HyperLevelDB (four partitions,
// a quarter of the threads each) on the production workload.
func Fig1(sc Scale) (*Figure, error) {
	wcfg := workload.Config{
		KeySpace: sc.Preload / 4, KeySize: 40, ValueSize: 1024,
		Dist: workload.ProductionSynth,
	}
	preloadPerPart := sc.Preload / 16
	mix := workload.Mix{GetRatio: 0.9}
	fig := &Figure{
		ID:     "fig1",
		Title:  "Partitioned (4x LevelDB/Hyper) vs shared (1x cLSM), production workload",
		XLabel: "threads", YLabel: "Kops/s",
	}
	var threads []int
	for _, th := range sc.Threads {
		if th >= 4 {
			threads = append(threads, th)
		}
	}

	for _, name := range []baseline.Name{baseline.NameLevelDB, baseline.NameHyper} {
		series := Series{Store: "4x" + string(name)}
		for _, th := range threads {
			tput, err := runPartitioned(name, sc, th, 4, mix, wcfg, preloadPerPart)
			if err != nil {
				return nil, err
			}
			series.Points = append(series.Points, Point{X: float64(th), Throughput: tput})
		}
		fig.Series = append(fig.Series, series)
	}
	clsmSeries, err := runLadder(baseline.NameCLSM, sc, threads, mix, wcfg,
		preloadPerPart*4, sc.coreOptions(nil))
	if err != nil {
		return nil, err
	}
	clsmSeries.Store = "1x cLSM"
	fig.Series = append(fig.Series, clsmSeries)
	return fig, nil
}

// runPartitioned drives parts store instances concurrently, each with
// threads/parts workers on its own key space, and sums throughput.
func runPartitioned(name baseline.Name, sc Scale, threads, parts int,
	mix workload.Mix, wcfg workload.Config, preloadPerPart int64) (float64, error) {

	perPart := threads / parts
	if perPart < 1 {
		perPart = 1
	}
	stores := make([]baseline.Store, parts)
	for p := range stores {
		s, err := baseline.New(name, sc.coreOptions(nil))
		if err != nil {
			return 0, err
		}
		stores[p] = s
		if err := Preload(s, wcfg, preloadPerPart, 4); err != nil {
			return 0, err
		}
	}
	defer func() {
		for _, s := range stores {
			s.Close()
		}
	}()

	var wg sync.WaitGroup
	results := make([]Result, parts)
	errs := make([]error, parts)
	for p := range stores {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			results[p], errs[p] = Run(stores[p], Spec{
				Threads:  perPart,
				Duration: sc.Duration,
				Mix:      mix,
				Workload: wcfg,
				Seed:     int64(p+1) * 97,
			})
		}(p)
	}
	wg.Wait()
	var total float64
	for p := range results {
		if errs[p] != nil {
			return 0, errs[p]
		}
		total += results[p].Throughput()
	}
	return total, nil
}

// Fig11 reproduces Fig. 11: the disk-bound regime. The database is bulk
// loaded with sequentially increasing 10 B keys / 400 B values on a
// bandwidth-throttled device, then updated under uniform random writes
// while compaction runs continuously. RocksDB uses multi-threaded
// compaction; cLSM keeps its single merge thread.
func Fig11(sc Scale) (*Figure, error) {
	fig := &Figure{
		ID:     "fig11",
		Title:  "Heavy disk-compaction workload (throttled device, 100% update)",
		XLabel: "threads", YLabel: "Kops/s",
	}
	nKeys := sc.Preload
	wcfg := workload.Config{KeySpace: nKeys, KeySize: 10, ValueSize: 400, Dist: workload.Uniform}
	// Scale the simulated device so compaction, not the memtable, is the
	// bottleneck: ~4x the expected write volume per second.
	bandwidth := int64(64 << 20)
	if sc.Name == "smoke" {
		bandwidth = 8 << 20
	}

	for _, model := range []struct {
		name    baseline.Name
		threads int
	}{{baseline.NameRocksDB, 3}, {baseline.NameCLSM, 1}} {
		series := Series{Store: string(model.name)}
		for _, th := range sc.Threads {
			fs := storage.NewThrottledMemFS(bandwidth)
			opts := sc.coreOptions(fs)
			opts.CompactionThreads = model.threads
			s, err := baseline.New(model.name, opts)
			if err != nil {
				return nil, err
			}
			if err := preloadSequential(s, wcfg, nKeys); err != nil {
				s.Close()
				return nil, err
			}
			res, err := Run(s, Spec{
				Threads: th, Duration: sc.Duration,
				Mix: workload.Mix{}, Workload: wcfg, Seed: int64(th),
			})
			cerr := s.Close()
			if err != nil {
				return nil, err
			}
			if cerr != nil {
				return nil, cerr
			}
			series.Points = append(series.Points, Point{
				X: float64(th), Throughput: res.Throughput(), P90: res.Hist.Quantile(0.9),
			})
		}
		fig.Series = append(fig.Series, series)
	}
	return fig, nil
}

// preloadSequential bulk loads keys in physical order (Fig. 11's setup).
func preloadSequential(s baseline.Store, cfg workload.Config, n int64) error {
	cfg = cfg.WithDefaults()
	g := workload.New(cfg, 1)
	var kbuf []byte
	for i := int64(0); i < n; i++ {
		kbuf = workload.SequentialKey(kbuf, i, cfg.KeySize)
		if err := s.Put(copyKey(kbuf), g.Value(i)); err != nil {
			return err
		}
	}
	return nil
}
