package harness

import (
	"io"
	"sync"
	"sync/atomic"
	"time"

	"clsm/internal/baseline"
	"clsm/internal/workload"
)

// ReplayTrace drives a store with a pre-recorded operation trace (see
// workload.TraceWriter), fanning records out to the given number of worker
// goroutines — the mechanism for running real production logs against any
// store model, as the paper's §5.2 evaluation does.
//
// Records are dispatched in order through a channel; per-key ordering
// across workers is therefore not guaranteed (matching the paper's
// partition servers, where independent clients race).
func ReplayTrace(s baseline.Store, r io.Reader, threads int) (Result, error) {
	if threads < 1 {
		threads = 1
	}
	tr := workload.NewTraceReader(r)

	ops := make(chan workload.TraceOp, 4*threads)
	var (
		wg      sync.WaitGroup
		done    atomic.Uint64
		keys    atomic.Uint64
		firstE  atomic.Pointer[error]
		hists   = make([]*Histogram, threads)
		started = time.Now()
	)
	for w := 0; w < threads; w++ {
		hists[w] = NewHistogram()
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			hist := hists[w]
			i := 0
			for op := range ops {
				i++
				sample := i%16 == 0
				var t0 time.Time
				if sample {
					t0 = time.Now()
				}
				var err error
				var visited int
				switch op.Op {
				case workload.TracePut:
					err = s.Put(op.Key, op.Value)
					visited = 1
				case workload.TraceGet:
					_, _, err = s.Get(op.Key)
					visited = 1
				case workload.TraceDelete:
					err = s.Delete(op.Key)
					visited = 1
				case workload.TraceScan:
					visited, err = s.Scan(op.Key, op.ScanLen)
				case workload.TraceRMW:
					val := op.Value
					err = s.RMW(op.Key, func([]byte, bool) []byte { return val })
					visited = 1
				}
				if err != nil {
					firstE.CompareAndSwap(nil, &err)
					// Drain remaining ops so the feeder never blocks.
					continue
				}
				if sample {
					hist.Record(time.Since(t0))
				}
				done.Add(1)
				keys.Add(uint64(visited))
			}
		}(w)
	}

	var feedErr error
	for {
		op, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			feedErr = err
			break
		}
		ops <- op
	}
	close(ops)
	wg.Wait()

	if feedErr != nil {
		return Result{}, feedErr
	}
	if e := firstE.Load(); e != nil {
		return Result{}, *e
	}
	agg := NewHistogram()
	for _, h := range hists {
		agg.Merge(h)
	}
	return Result{
		Threads: threads,
		Ops:     done.Load(),
		Keys:    keys.Load(),
		Elapsed: time.Since(started),
		Hist:    agg,
	}, nil
}
