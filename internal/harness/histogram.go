// Package harness measures store throughput and latency and regenerates
// every table and figure of the paper's evaluation (§5). See DESIGN.md for
// the experiment index.
package harness

import (
	"math"
	"time"
)

// Histogram is a log-bucketed latency histogram (HDR-style): buckets grow
// geometrically by ~7 % from 64 ns to ~100 s, giving better-than-10 %
// quantile resolution with a few hundred buckets. Not safe for concurrent
// use — each worker records into its own and merges at the end.
type Histogram struct {
	counts []uint64
	total  uint64
	min    time.Duration
	max    time.Duration
}

const (
	histMinNanos = 64
	histGrowth   = 1.07
	histBuckets  = 320 // 64ns * 1.07^320 ≈ 160 s
)

var histBounds [histBuckets]float64

func init() {
	b := float64(histMinNanos)
	for i := range histBounds {
		histBounds[i] = b
		b *= histGrowth
	}
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make([]uint64, histBuckets)}
}

func bucketFor(d time.Duration) int {
	n := float64(d.Nanoseconds())
	if n < histMinNanos {
		return 0
	}
	i := int(math.Log(n/histMinNanos) / math.Log(histGrowth))
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// Record adds one sample.
func (h *Histogram) Record(d time.Duration) {
	h.counts[bucketFor(d)]++
	h.total++
	if h.min == 0 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.total += other.total
	if other.min != 0 && (h.min == 0 || other.min < h.min) {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.total }

// Quantile returns the latency at quantile q in [0, 1].
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(q * float64(h.total))
	if target >= h.total {
		return h.max
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum > target {
			return time.Duration(histBounds[i])
		}
	}
	return h.max
}

// Mean returns the approximate mean latency.
func (h *Histogram) Mean() time.Duration {
	if h.total == 0 {
		return 0
	}
	var sum float64
	for i, c := range h.counts {
		sum += histBounds[i] * float64(c)
	}
	return time.Duration(sum / float64(h.total))
}

// Min and Max report the extreme samples.
func (h *Histogram) Min() time.Duration { return h.min }

// Max reports the largest sample.
func (h *Histogram) Max() time.Duration { return h.max }
