package harness

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"clsm/internal/baseline"
	"clsm/internal/workload"
)

// Spec describes one measurement run against one store.
type Spec struct {
	// Threads is the number of worker goroutines issuing operations.
	Threads int
	// Duration bounds the timed phase.
	Duration time.Duration
	// OpsPerThread, when > 0, bounds the run by count instead of time.
	OpsPerThread int
	// Mix is the operation mixture; Workload the key/value shape.
	Mix      workload.Mix
	Workload workload.Config
	// Preload inserts this many keys (indexes 0..Preload-1) before the
	// timed phase so reads have something to find.
	Preload int64
	// SampleEvery records the latency of one in every N operations
	// (default 16) to keep measurement overhead off the hot path.
	SampleEvery int
	// Seed makes runs reproducible.
	Seed int64
}

// Result is the outcome of a run.
type Result struct {
	Threads int
	Ops     uint64
	Keys    uint64 // keys touched (scans count their whole range)
	Elapsed time.Duration
	Hist    *Histogram
}

// Throughput returns operations per second.
func (r Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds()
}

// KeysPerSec returns keys accessed per second (the Fig. 7b metric).
func (r Result) KeysPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Keys) / r.Elapsed.Seconds()
}

// Preload bulk-inserts the initial dataset with parallel writers.
func Preload(s baseline.Store, cfg workload.Config, n int64, parallel int) error {
	cfg = cfg.WithDefaults()
	if parallel < 1 {
		parallel = 4
	}
	var wg sync.WaitGroup
	errs := make(chan error, parallel)
	stride := (n + int64(parallel) - 1) / int64(parallel)
	for w := 0; w < parallel; w++ {
		lo := int64(w) * stride
		hi := lo + stride
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int64) {
			defer wg.Done()
			g := workload.New(cfg, lo+1)
			for i := lo; i < hi; i++ {
				if err := s.Put(copyKey(g.Key(i)), g.Value(i)); err != nil {
					errs <- err
					return
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
		return nil
	}
}

func copyKey(k []byte) []byte {
	// Stores may retain the key slice briefly (WAL queue); the generator
	// reuses its buffer, so hand the store a stable copy.
	out := make([]byte, len(k))
	copy(out, k)
	return out
}

// Run executes the timed phase and returns the aggregate result.
func Run(s baseline.Store, spec Spec) (Result, error) {
	if spec.Threads < 1 {
		spec.Threads = 1
	}
	if spec.SampleEvery < 1 {
		spec.SampleEvery = 16
	}
	if spec.Duration <= 0 && spec.OpsPerThread <= 0 {
		spec.Duration = time.Second
	}
	cfg := spec.Workload.WithDefaults()

	var (
		wg      sync.WaitGroup
		ops     atomic.Uint64
		keyN    atomic.Uint64
		stop    atomic.Bool
		firstE  atomic.Pointer[error]
		hists   = make([]*Histogram, spec.Threads)
		started = make(chan struct{})
	)

	for w := 0; w < spec.Threads; w++ {
		hists[w] = NewHistogram()
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			g := workload.New(cfg, spec.Seed*1024+int64(w)+7)
			rng := rand.New(rand.NewSource(spec.Seed*8192 + int64(w)))
			hist := hists[w]
			<-started
			var localOps, localKeys uint64
			for i := 0; spec.OpsPerThread <= 0 || i < spec.OpsPerThread; i++ {
				if i%64 == 0 && stop.Load() {
					break
				}
				sample := i%spec.SampleEvery == 0
				var t0 time.Time
				if sample {
					t0 = time.Now()
				}
				if err := doOp(s, g, rng, spec.Mix, &localKeys); err != nil {
					firstE.CompareAndSwap(nil, &err)
					break
				}
				if sample {
					hist.Record(time.Since(t0))
				}
				localOps++
			}
			ops.Add(localOps)
			keyN.Add(localKeys)
		}(w)
	}

	begin := time.Now()
	close(started)
	if spec.Duration > 0 {
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-time.After(spec.Duration):
			stop.Store(true)
			<-done
		case <-done:
		}
	} else {
		wg.Wait()
	}
	elapsed := time.Since(begin)

	if e := firstE.Load(); e != nil {
		return Result{}, *e
	}
	agg := NewHistogram()
	for _, h := range hists {
		agg.Merge(h)
	}
	return Result{
		Threads: spec.Threads,
		Ops:     ops.Load(),
		Keys:    keyN.Load(),
		Elapsed: elapsed,
		Hist:    agg,
	}, nil
}

// doOp executes one operation of the mixture.
func doOp(s baseline.Store, g *workload.Generator, rng *rand.Rand, mix workload.Mix, keys *uint64) error {
	idx := g.NextIndex()
	switch mix.NextOp(rng) {
	case workload.OpGet:
		_, _, err := s.Get(g.Key(idx))
		*keys++
		return err
	case workload.OpScan:
		n := mix.ScanLen(rng)
		visited, err := s.Scan(g.Key(idx), n)
		*keys += uint64(visited)
		return err
	case workload.OpRMW:
		*keys++
		return s.RMW(copyKey(g.Key(idx)), putIfAbsent)
	default:
		*keys++
		return s.Put(copyKey(g.Key(idx)), g.Value(idx))
	}
}

// putIfAbsent is the paper's Fig. 9 RMW flavor: keep the existing value if
// present, install a fresh one otherwise.
func putIfAbsent(old []byte, exists bool) []byte {
	if exists {
		return old
	}
	var v [16]byte
	binary.BigEndian.PutUint64(v[:], 1)
	return v[:]
}

// FormatThroughput renders ops/s in the paper's "ops/sec x10^3" unit.
func FormatThroughput(opsPerSec float64) string {
	return fmt.Sprintf("%.1f", opsPerSec/1000)
}
