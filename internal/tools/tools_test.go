package tools

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"clsm/internal/core"
	"clsm/internal/storage"
	"clsm/internal/version"
)

// buildDB fills a database and leaves it closed, returning its filesystem.
func buildDB(t *testing.T) *storage.MemFS {
	t.Helper()
	fs := storage.NewMemFS()
	db, err := core.Open(core.Options{
		FS:           fs,
		MemtableSize: 32 << 10,
		Disk:         version.Options{BaseLevelBytes: 128 << 10, TableFileSize: 16 << 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		db.Put([]byte(fmt.Sprintf("key%05d", i)), []byte(fmt.Sprintf("value-%d", i)))
	}
	if err := db.CompactRange(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ { // leave something in the WAL
		db.Put([]byte(fmt.Sprintf("tail%02d", i)), []byte("t"))
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestCheckHealthyDB(t *testing.T) {
	fs := buildDB(t)
	res, err := Check(fs)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("healthy database reported corrupt:\n%s", res.Summary())
	}
	if res.Tables == 0 {
		t.Fatal("no tables checked")
	}
	if res.Logs == 0 || res.LogRecords == 0 {
		t.Fatalf("no WAL records checked: %+v", res)
	}
	if !strings.Contains(res.Summary(), "OK") {
		t.Fatal("summary missing OK")
	}
}

func TestCheckDetectsTableCorruption(t *testing.T) {
	fs := buildDB(t)
	// Flip a byte in the middle of some live table.
	names, _ := fs.List()
	for _, n := range names {
		if kind, _, ok := version.ParseFileName(n); ok && kind == version.KindTable {
			data, _ := fs.ReadFile(n)
			data[len(data)/2] ^= 0xff
			fs.WriteFile(n, data)
			break
		}
	}
	res, err := Check(fs)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Fatal("corrupted table not detected")
	}
}

func TestCheckDetectsMissingTable(t *testing.T) {
	fs := buildDB(t)
	names, _ := fs.List()
	for _, n := range names {
		if kind, _, ok := version.ParseFileName(n); ok && kind == version.KindTable {
			fs.Remove(n)
			break
		}
	}
	res, err := Check(fs)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Fatal("missing table not detected")
	}
	if len(res.Problems) == 0 {
		t.Fatal("missing-table problem not reported")
	}
}

func TestDumpers(t *testing.T) {
	fs := buildDB(t)
	names, _ := fs.List()
	var tableNum, logNum uint64
	for _, n := range names {
		kind, num, ok := version.ParseFileName(n)
		if !ok {
			continue
		}
		switch kind {
		case version.KindTable:
			tableNum = num
		case version.KindLog:
			logNum = num
		}
	}

	var buf bytes.Buffer
	if err := DumpTable(fs, tableNum, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "key") {
		t.Fatal("table dump empty")
	}

	buf.Reset()
	if err := DumpLog(fs, logNum, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "PUT") {
		t.Fatalf("wal dump missing records: %q", clip(buf.String()))
	}

	buf.Reset()
	if err := DumpManifest(fs, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "edit 0") {
		t.Fatal("manifest dump empty")
	}
}

func clip(s string) string {
	if len(s) > 200 {
		return s[:200]
	}
	return s
}
