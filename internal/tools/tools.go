// Package tools implements offline inspection and verification of a cLSM
// database directory: structural checks of every SSTable, the MANIFEST,
// and the write-ahead logs — the equivalent of LevelDB's ldb/dump
// utilities. All operations are read-only.
package tools

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"clsm/internal/batch"
	"clsm/internal/keys"
	"clsm/internal/sstable"
	"clsm/internal/storage"
	"clsm/internal/version"
	"clsm/internal/wal"
)

// CheckResult reports the outcome of a database verification.
type CheckResult struct {
	Tables      int
	TableErrors []string
	Logs        int
	LogErrors   []string
	LogRecords  int
	Manifest    string
	Levels      [version.NumLevels]int
	Problems    []string
}

// OK reports whether the database passed every check.
func (r *CheckResult) OK() bool {
	return len(r.TableErrors) == 0 && len(r.LogErrors) == 0 && len(r.Problems) == 0
}

// Summary renders a human-readable report.
func (r *CheckResult) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "manifest: %s\n", r.Manifest)
	fmt.Fprintf(&b, "levels:   %v\n", r.Levels)
	fmt.Fprintf(&b, "tables:   %d checked, %d bad\n", r.Tables, len(r.TableErrors))
	fmt.Fprintf(&b, "wals:     %d checked (%d records), %d bad\n", r.Logs, r.LogRecords, len(r.LogErrors))
	for _, e := range r.TableErrors {
		fmt.Fprintf(&b, "  TABLE: %s\n", e)
	}
	for _, e := range r.LogErrors {
		fmt.Fprintf(&b, "  WAL:   %s\n", e)
	}
	for _, p := range r.Problems {
		fmt.Fprintf(&b, "  META:  %s\n", p)
	}
	if r.OK() {
		b.WriteString("OK\n")
	} else {
		b.WriteString("CORRUPTION DETECTED\n")
	}
	return b.String()
}

// Check verifies the whole database directory.
func Check(fs storage.FS) (*CheckResult, error) {
	res := &CheckResult{}

	// 1. CURRENT -> MANIFEST.
	cur, err := fs.ReadFile(version.CurrentFileName)
	if err != nil {
		return nil, fmt.Errorf("tools: no CURRENT file: %w", err)
	}
	res.Manifest = strings.TrimSpace(string(cur))
	levels, err := manifestState(fs, res.Manifest)
	if err != nil {
		return nil, err
	}
	for l, files := range levels {
		res.Levels[l] = len(files)
	}

	// 2. Every live table must exist, parse, and be internally sorted;
	// its bounds must match the manifest.
	names, err := fs.List()
	if err != nil {
		return nil, err
	}
	onDisk := map[string]bool{}
	for _, n := range names {
		onDisk[n] = true
	}
	for level, files := range levels {
		var prevLargest []byte
		for _, fd := range files {
			name := version.TableFileName(fd.Num)
			if !onDisk[name] {
				res.Problems = append(res.Problems,
					fmt.Sprintf("manifest references missing table %s (L%d)", name, level))
				continue
			}
			res.Tables++
			if err := verifyTable(fs, fd); err != nil {
				res.TableErrors = append(res.TableErrors, fmt.Sprintf("%s: %v", name, err))
			}
			if level > 0 {
				if prevLargest != nil &&
					string(keys.UserKey(fd.Smallest)) <= string(keys.UserKey(prevLargest)) {
					res.Problems = append(res.Problems,
						fmt.Sprintf("L%d files overlap in user-key space at %s", level, name))
				}
				prevLargest = fd.Largest
			}
		}
	}

	// 3. WAL files must hold a parseable record prefix.
	for _, n := range names {
		kind, _, ok := version.ParseFileName(n)
		if !ok || kind != version.KindLog {
			continue
		}
		res.Logs++
		recs, err := checkLog(fs, n)
		res.LogRecords += recs
		if err != nil {
			res.LogErrors = append(res.LogErrors, fmt.Sprintf("%s: %v", n, err))
		}
	}
	return res, nil
}

// manifestState replays the manifest and returns the per-level live file
// descriptors.
func manifestState(fs storage.FS, name string) ([version.NumLevels][]version.FileDesc, error) {
	var levels [version.NumLevels][]version.FileDesc
	src, err := fs.Open(name)
	if err != nil {
		return levels, fmt.Errorf("tools: open manifest: %w", err)
	}
	defer src.Close()
	byNum := map[uint64]version.FileDesc{}
	atLevel := map[uint64]int{}
	r := wal.NewReader(src)
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return levels, fmt.Errorf("tools: manifest: %w", err)
		}
		edit, err := version.DecodeEdit(rec)
		if err != nil {
			return levels, fmt.Errorf("tools: manifest: %w", err)
		}
		for _, d := range edit.Deleted {
			delete(byNum, d.Num)
			delete(atLevel, d.Num)
		}
		for _, a := range edit.Added {
			byNum[a.Meta.Num] = a.Meta
			atLevel[a.Meta.Num] = a.Level
		}
	}
	for num, fd := range byNum {
		levels[atLevel[num]] = append(levels[atLevel[num]], fd)
	}
	for l := range levels {
		sort.Slice(levels[l], func(i, j int) bool {
			return keys.Compare(levels[l][i].Smallest, levels[l][j].Smallest) < 0
		})
	}
	return levels, nil
}

// verifyTable walks the whole table, checking block checksums (done by the
// reader), entry ordering, and manifest-recorded bounds.
func verifyTable(fs storage.FS, fd version.FileDesc) error {
	src, err := fs.Open(version.TableFileName(fd.Num))
	if err != nil {
		return err
	}
	r, err := sstable.NewReader(src, fd.Num, nil)
	if err != nil {
		src.Close()
		return err
	}
	defer r.Close()
	it := r.NewIterator()
	var prev []byte
	n := 0
	for it.First(); it.Valid(); it.Next() {
		if prev != nil && keys.Compare(prev, it.Key()) >= 0 {
			return fmt.Errorf("entries out of order at #%d", n)
		}
		if n == 0 && keys.Compare(it.Key(), fd.Smallest) != 0 {
			return fmt.Errorf("first key %s != manifest smallest %s",
				keys.String(it.Key()), keys.String(fd.Smallest))
		}
		prev = append(prev[:0], it.Key()...)
		n++
	}
	if err := it.Err(); err != nil {
		return err
	}
	if n != fd.Entries {
		return fmt.Errorf("entry count %d != manifest %d", n, fd.Entries)
	}
	if n > 0 && keys.Compare(prev, fd.Largest) != 0 {
		return fmt.Errorf("last key %s != manifest largest %s",
			keys.String(prev), keys.String(fd.Largest))
	}
	return nil
}

// checkLog parses every record in a WAL's intact prefix.
func checkLog(fs storage.FS, name string) (int, error) {
	src, err := fs.Open(name)
	if err != nil {
		return 0, err
	}
	defer src.Close()
	r := wal.NewReader(src)
	n := 0
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		if _, err := batch.Decode(rec); err != nil {
			return n, fmt.Errorf("record %d: %w", n, err)
		}
		n++
	}
}

// DumpTable writes every entry of table num to w.
func DumpTable(fs storage.FS, num uint64, w io.Writer) error {
	src, err := fs.Open(version.TableFileName(num))
	if err != nil {
		return err
	}
	r, err := sstable.NewReader(src, num, nil)
	if err != nil {
		src.Close()
		return err
	}
	defer r.Close()
	it := r.NewIterator()
	for it.First(); it.Valid(); it.Next() {
		fmt.Fprintf(w, "%s => %q\n", keys.String(it.Key()), clipBytes(it.Value(), 64))
	}
	return it.Err()
}

// DumpLog writes every WAL record's decoded entries to w.
func DumpLog(fs storage.FS, num uint64, w io.Writer) error {
	src, err := fs.Open(version.LogFileName(num))
	if err != nil {
		return err
	}
	defer src.Close()
	r := wal.NewReader(src)
	recN := 0
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		entries, err := batch.Decode(rec)
		if err != nil {
			return err
		}
		for _, e := range entries {
			op := "PUT"
			if e.Kind == keys.KindDelete {
				op = "DEL"
			}
			fmt.Fprintf(w, "rec %d %s %q@%d => %q\n", recN, op, e.Key, e.TS, clipBytes(e.Value, 64))
		}
		recN++
	}
}

// DumpManifest writes the decoded edit sequence to w.
func DumpManifest(fs storage.FS, w io.Writer) error {
	cur, err := fs.ReadFile(version.CurrentFileName)
	if err != nil {
		return err
	}
	src, err := fs.Open(strings.TrimSpace(string(cur)))
	if err != nil {
		return err
	}
	defer src.Close()
	r := wal.NewReader(src)
	n := 0
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		edit, err := version.DecodeEdit(rec)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "edit %d: log=%d next=%d lastTS=%d\n", n, edit.LogNum, edit.NextFileNum, edit.LastTS)
		for _, a := range edit.Added {
			fmt.Fprintf(w, "  + L%d #%d %d bytes, %d entries [%s .. %s]\n",
				a.Level, a.Meta.Num, a.Meta.Size, a.Meta.Entries,
				keys.String(a.Meta.Smallest), keys.String(a.Meta.Largest))
		}
		for _, d := range edit.Deleted {
			fmt.Fprintf(w, "  - L%d #%d\n", d.Level, d.Num)
		}
		n++
	}
}

func clipBytes(b []byte, n int) []byte {
	if len(b) > n {
		return append(append([]byte(nil), b[:n]...), []byte("...")...)
	}
	return b
}
