// Package iterator defines the iteration contract shared by memtables,
// SSTables, and the merging machinery.
package iterator

// Iterator walks entries in ascending internal-key order. Implementations
// are single-goroutine; concurrency comes from each reader holding its own
// iterator over immutable (or weakly consistent) components.
type Iterator interface {
	// First positions at the smallest entry.
	First()
	// SeekGE positions at the first entry with internal key >= ikey.
	SeekGE(ikey []byte)
	// Next advances by one entry. Only legal when Valid.
	Next()
	// Valid reports whether the iterator is positioned at an entry.
	Valid() bool
	// Key returns the internal key at the cursor. The slice is only valid
	// until the next positioning call.
	Key() []byte
	// Value returns the value at the cursor, with the same lifetime as Key.
	Value() []byte
	// Err returns the first I/O or corruption error encountered, if any.
	// An iterator with a pending error reports Valid() == false.
	Err() error
}

// Bidirectional extends Iterator with reverse traversal. Every component
// iterator that feeds user-facing scans implements it; compaction-only
// iterators (which merge strictly forward) need not.
type Bidirectional interface {
	Iterator
	// Prev steps to the predecessor entry. Only legal when Valid.
	Prev()
	// Last positions at the largest entry.
	Last()
}
