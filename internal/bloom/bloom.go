// Package bloom implements the Bloom filter used to short-circuit SSTable
// lookups (Bloom 1970, as adopted by LevelDB). It uses double hashing: two
// base hashes combined as g_i = h1 + i*h2 simulate k independent hash
// functions with one pass over the key.
package bloom

import "encoding/binary"

// Filter is an immutable serialized Bloom filter. The last byte stores the
// number of probes k.
type Filter []byte

// BitsPerKey is the standard space budget (10 bits/key ≈ 1% false positives).
const BitsPerKey = 10

// New builds a filter over the given keys with the standard bits-per-key
// budget.
func New(keyHashes []uint64) Filter {
	return NewWithBits(keyHashes, BitsPerKey)
}

// NewWithBits builds a filter with an explicit bits-per-key budget.
func NewWithBits(keyHashes []uint64, bitsPerKey int) Filter {
	if bitsPerKey < 1 {
		bitsPerKey = 1
	}
	// k = ln2 * bits/key, clamped to a sane range.
	k := uint8(float64(bitsPerKey) * 0.69)
	if k < 1 {
		k = 1
	}
	if k > 30 {
		k = 30
	}
	nBits := len(keyHashes) * bitsPerKey
	if nBits < 64 {
		nBits = 64
	}
	nBytes := (nBits + 7) / 8
	nBits = nBytes * 8
	f := make(Filter, nBytes+1)
	f[nBytes] = k
	for _, h := range keyHashes {
		h1 := uint32(h)
		h2 := uint32(h >> 32)
		for i := uint8(0); i < k; i++ {
			pos := (h1 + uint32(i)*h2) % uint32(nBits)
			f[pos/8] |= 1 << (pos % 8)
		}
	}
	return f
}

// MayContain reports whether the filter possibly contains a key with the
// given hash. False negatives never occur for keys the filter was built
// over.
func (f Filter) MayContain(h uint64) bool {
	if len(f) < 2 {
		return true // degenerate filter: claim everything
	}
	k := f[len(f)-1]
	if k > 30 {
		// Reserved encoding from a newer version: fail open.
		return true
	}
	nBits := uint32((len(f) - 1) * 8)
	h1 := uint32(h)
	h2 := uint32(h >> 32)
	for i := uint8(0); i < k; i++ {
		pos := (h1 + uint32(i)*h2) % nBits
		if f[pos/8]&(1<<(pos%8)) == 0 {
			return false
		}
	}
	return true
}

// Hash is the 64-bit key hash fed to the filter — a FNV-1a variant inlined
// for speed on the hot read path.
func Hash(key []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	// Final avalanche so h1/h2 halves are well mixed even for short keys.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

// Marshal frames the filter for embedding in an SSTable (length-prefixed).
func (f Filter) Marshal(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(f)))
	return append(dst, f...)
}

// Unmarshal parses a framed filter, returning the remaining bytes.
func Unmarshal(data []byte) (Filter, []byte, bool) {
	l, n := binary.Uvarint(data)
	if n <= 0 || l > uint64(len(data)-n) {
		return nil, nil, false
	}
	return Filter(data[n : n+int(l)]), data[n+int(l):], true
}
