package bloom

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func hashes(keys []string) []uint64 {
	hs := make([]uint64, len(keys))
	for i, k := range keys {
		hs[i] = Hash([]byte(k))
	}
	return hs
}

func TestNoFalseNegatives(t *testing.T) {
	var ks []string
	for i := 0; i < 10000; i++ {
		ks = append(ks, fmt.Sprintf("key-%d", i))
	}
	f := New(hashes(ks))
	for _, k := range ks {
		if !f.MayContain(Hash([]byte(k))) {
			t.Fatalf("false negative for %q", k)
		}
	}
}

func TestFalsePositiveRate(t *testing.T) {
	var ks []string
	for i := 0; i < 10000; i++ {
		ks = append(ks, fmt.Sprintf("member-%d", i))
	}
	f := New(hashes(ks))
	fp := 0
	const probes = 10000
	for i := 0; i < probes; i++ {
		if f.MayContain(Hash([]byte(fmt.Sprintf("absent-%d", i)))) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.03 {
		t.Errorf("false positive rate %.4f exceeds 3%% at 10 bits/key", rate)
	}
}

func TestEmptyFilter(t *testing.T) {
	f := New(nil)
	// An empty filter may answer anything but must not crash; with no bits
	// set it should reject.
	if f.MayContain(Hash([]byte("x"))) {
		t.Log("empty filter claims containment (allowed but suboptimal)")
	}
}

func TestDegenerateFilterFailsOpen(t *testing.T) {
	if !Filter(nil).MayContain(1) {
		t.Error("nil filter must fail open")
	}
	if !Filter([]byte{0x00, 99}).MayContain(1) {
		t.Error("filter with reserved k must fail open")
	}
}

func TestMarshalUnmarshal(t *testing.T) {
	f := New(hashes([]string{"a", "b", "c"}))
	framed := f.Marshal(nil)
	framed = append(framed, 0xde, 0xad)
	g, rest, ok := Unmarshal(framed)
	if !ok || len(rest) != 2 {
		t.Fatalf("Unmarshal ok=%v rest=%d", ok, len(rest))
	}
	for _, k := range []string{"a", "b", "c"} {
		if !g.MayContain(Hash([]byte(k))) {
			t.Errorf("unmarshaled filter lost %q", k)
		}
	}
	if _, _, ok := Unmarshal([]byte{0xff}); ok {
		t.Error("Unmarshal accepted truncated framing")
	}
}

// Property: membership is always reported for inserted hashes, any filter
// size.
func TestNoFalseNegativesQuick(t *testing.T) {
	f := func(raw []uint64, bits uint8) bool {
		bpk := int(bits%20) + 1
		flt := NewWithBits(raw, bpk)
		for _, h := range raw {
			if !flt.MayContain(h) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestHashDispersion(t *testing.T) {
	// Short sequential keys must not collide in either 32-bit half.
	seen := map[uint64]bool{}
	for i := 0; i < 100000; i++ {
		h := Hash([]byte(fmt.Sprintf("%d", i)))
		if seen[h] {
			t.Fatalf("hash collision at %d", i)
		}
		seen[h] = true
	}
}
