package skiplist

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"clsm/internal/keys"
)

func TestIteratorReverse(t *testing.T) {
	l := New()
	rng := rand.New(rand.NewSource(5))
	var all [][]byte
	for i := 0; i < 2000; i++ {
		ik := ik(fmt.Sprintf("key%04d", rng.Intn(700)), uint64(i+1))
		l.Insert(ik, []byte("v"))
		all = append(all, ik)
	}
	sort.Slice(all, func(i, j int) bool { return keys.Compare(all[i], all[j]) < 0 })

	it := l.NewIterator()
	i := len(all) - 1
	for it.Last(); it.Valid(); it.Prev() {
		if !bytes.Equal(it.Key(), all[i]) {
			t.Fatalf("reverse position %d: got %s want %s",
				i, keys.String(it.Key()), keys.String(all[i]))
		}
		i--
	}
	if i != -1 {
		t.Fatalf("reverse stopped at %d", i)
	}
}

func TestSeekThenPrevSkiplist(t *testing.T) {
	l := New()
	for i := 0; i < 100; i++ {
		l.Insert(ik(fmt.Sprintf("k%03d", i*2), uint64(i+1)), []byte("v"))
	}
	it := l.NewIterator()
	// Seek between entries, then Prev.
	it.SeekGE(keys.SeekKey([]byte("k101"), keys.MaxTimestamp))
	if !it.Valid() || string(keys.UserKey(it.Key())) != "k102" {
		t.Fatalf("SeekGE = %s", keys.String(it.Key()))
	}
	it.Prev()
	if !it.Valid() || string(keys.UserKey(it.Key())) != "k100" {
		t.Fatalf("Prev = %s", keys.String(it.Key()))
	}
	// Prev at the very first entry exhausts.
	it.First()
	it.Prev()
	if it.Valid() {
		t.Fatal("Prev before first valid")
	}
	// Last on empty list.
	empty := New().NewIterator()
	empty.Last()
	if empty.Valid() {
		t.Fatal("Last on empty list valid")
	}
}
