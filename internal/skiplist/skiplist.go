// Package skiplist implements the lock-free concurrent skip list at the
// heart of cLSM's in-memory component.
//
// The list stores internal keys (see internal/keys) in ascending order —
// user key ascending, timestamp descending — and supports:
//
//   - non-blocking concurrent Insert (CAS splice, Herlihy & Shavit style;
//     the list is insert-only, so no deletion marking is needed),
//   - weakly consistent iterators: an element present for the whole
//     duration of a scan is guaranteed to be observed (§3.2 of the paper),
//   - the optimistic conflict-detecting insert used by Algorithm 3
//     (read-modify-write): InsertRMW performs one attempt and reports a
//     conflict if a newer version of the user key raced in.
//
// Nodes live for the lifetime of the list; key and value bytes are copied
// into a lock-free arena, mirroring the paper's per-component allocator.
package skiplist

import (
	"sync/atomic"

	"clsm/internal/arena"
	"clsm/internal/keys"
)

const (
	maxHeight = 20
	// branching factor 4: P(level up) = 1/4, as in LevelDB.
	branchBits = 2
	// inlineHeight is the tower size embedded in every node. With p = 1/4,
	// P(height > 4) = 4^-4 ≈ 0.39%, so the overflow slice — the second
	// allocation per insert — is paid by one node in ~256.
	inlineHeight = 4
)

type node struct {
	key []byte // internal key, arena-backed
	val []byte // value bytes, arena-backed
	// tower[i] is the successor at level i < inlineHeight; taller nodes
	// spill levels [inlineHeight, height) into ext. Only levels below the
	// node's drawn height are valid.
	tower [inlineHeight]atomic.Pointer[node]
	ext   []atomic.Pointer[node]
}

func newNode(key, val []byte, height int) *node {
	n := &node{key: key, val: val}
	if height > inlineHeight {
		n.ext = make([]atomic.Pointer[node], height-inlineHeight)
	}
	return n
}

func (n *node) nextPtr(level int) *atomic.Pointer[node] {
	if level < inlineHeight {
		return &n.tower[level]
	}
	return &n.ext[level-inlineHeight]
}

func (n *node) loadNext(level int) *node { return n.nextPtr(level).Load() }

// List is a concurrent insert-only skip list over internal keys.
type List struct {
	head    *node
	arena   *arena.Arena
	height  atomic.Int32 // current max height in use
	seed    atomic.Uint64
	entries atomic.Int64
}

// New returns an empty list backed by a fresh arena.
func New() *List {
	l := &List{arena: arena.New(0)}
	l.head = newNode(nil, nil, maxHeight)
	l.height.Store(1)
	l.seed.Store(0x9e3779b97f4a7c15)
	return l
}

// Len returns the number of entries inserted so far.
func (l *List) Len() int { return int(l.entries.Load()) }

// MemoryUsage returns the approximate bytes retained by entries.
func (l *List) MemoryUsage() int64 { return l.arena.Allocated() }

// randomHeight draws a height with geometric distribution (p = 1/4) from a
// lock-free splitmix64 stream, so concurrent inserters never contend on a
// RNG lock.
func (l *List) randomHeight() int {
	z := l.seed.Add(0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	h := 1
	for h < maxHeight && z&((1<<branchBits)-1) == 0 {
		h++
		z >>= branchBits
	}
	return h
}

// findSplice fills preds/succs with the nodes straddling ikey at every
// level: preds[i] < ikey <= succs[i]. It returns true if succs[0] holds a
// key equal to ikey.
func (l *List) findSplice(ikey []byte, preds, succs *[maxHeight]*node) bool {
	h := int(l.height.Load())
	prev := l.head
	equal := false
	for i := maxHeight - 1; i >= 0; i-- {
		if i >= h {
			preds[i], succs[i] = l.head, nil
			continue
		}
		next := prev.loadNext(i)
		for next != nil {
			c := keys.Compare(next.key, ikey)
			if c >= 0 {
				if i == 0 && c == 0 {
					equal = true
				}
				break
			}
			prev = next
			next = prev.loadNext(i)
		}
		preds[i], succs[i] = prev, next
	}
	return equal
}

// Insert adds (ikey, value) to the list. Internal keys are expected to be
// unique (each put draws a fresh timestamp); inserting a duplicate internal
// key is a no-op returning false.
func (l *List) Insert(ikey, value []byte) bool {
	k := l.arena.Append(ikey)
	v := l.arena.Append(value)
	height := l.randomHeight()
	n := newNode(k, v, height)

	// Raise the list height if needed. A racy CAS-max is fine: a stale
	// lower height only costs an extra level walk.
	for {
		h := l.height.Load()
		if int(h) >= height || l.height.CompareAndSwap(h, int32(height)) {
			break
		}
	}

	var preds, succs [maxHeight]*node
	for {
		if l.findSplice(k, &preds, &succs) {
			return false // duplicate internal key
		}
		// Splice bottom level first: that makes the node logically present.
		n.tower[0].Store(succs[0])
		if preds[0].nextPtr(0).CompareAndSwap(succs[0], n) {
			break
		}
		// Lost the race; recompute the splice.
	}
	l.linkUpper(n, height, &preds, &succs)
	l.entries.Add(1)
	return true
}

// linkUpper links n into levels [1, height). Upper levels are an index only;
// failures simply recompute the splice for that level.
func (l *List) linkUpper(n *node, height int, preds, succs *[maxHeight]*node) {
	for i := 1; i < height; i++ {
		for {
			n.nextPtr(i).Store(succs[i])
			if preds[i].nextPtr(i).CompareAndSwap(succs[i], n) {
				break
			}
			l.findSpliceLevel(n.key, i, preds, succs)
		}
	}
}

// findSpliceLevel recomputes the splice at a single level.
func (l *List) findSpliceLevel(ikey []byte, level int, preds, succs *[maxHeight]*node) {
	prev := preds[level]
	if prev == nil {
		prev = l.head
	}
	// The previously computed pred may now sort after ikey only if it was
	// never < ikey, which findSplice guarantees against; it can only have
	// gained new successors. Walk forward from it.
	next := prev.loadNext(level)
	for next != nil && keys.Compare(next.key, ikey) < 0 {
		prev = next
		next = prev.loadNext(level)
	}
	preds[level], succs[level] = prev, next
}

// InsertRMW performs one optimistic attempt of Algorithm 3's update step:
// insert ikey (a fresh version of user key uk with timestamp newer than
// readTS) unless a conflicting version — one with timestamp greater than
// readTS — has appeared. It returns:
//
//	ok=true            inserted
//	ok=false           conflict detected or CAS lost; caller must release
//	                   its timestamp and restart the whole RMW loop
func (l *List) InsertRMW(ikey, value []byte, readTS uint64) bool {
	uk := keys.UserKey(ikey)
	var preds, succs [maxHeight]*node
	if l.findSplice(ikey, &preds, &succs) {
		return false // duplicate timestamp: impossible in practice, treat as conflict
	}

	// Conflict detection (paper Alg. 3 lines 6 and 8, adapted to
	// timestamp-descending order): the successor at the bottom level holds
	// the newest pre-existing version of uk, if any. If that version is
	// newer than what the caller read, another writer interfered.
	if s := succs[0]; s != nil {
		sk := keys.UserKey(s.key)
		if string(sk) == string(uk) && keys.Timestamp(s.key) > readTS {
			return false
		}
	}
	// The predecessor can only hold uk if a concurrent writer obtained an
	// even newer timestamp and spliced it in ahead of us.
	if p := preds[0]; p != l.head {
		if string(keys.UserKey(p.key)) == string(uk) {
			return false
		}
	}

	k := l.arena.Append(ikey)
	v := l.arena.Append(value)
	height := l.randomHeight()
	n := newNode(k, v, height)
	for {
		h := l.height.Load()
		if int(h) >= height || l.height.CompareAndSwap(h, int32(height)) {
			break
		}
	}
	n.tower[0].Store(succs[0])
	if !preds[0].nextPtr(0).CompareAndSwap(succs[0], n) {
		// Alg. 3 line 13: failed CAS means some insert interfered; restart.
		return false
	}
	l.linkUpper(n, height, &preds, &succs)
	l.entries.Add(1)
	return true
}

// Iterator walks the list in internal-key order. It is weakly consistent:
// entries inserted before the iterator passes their position are observed;
// entries inserted behind the cursor are not revisited.
type Iterator struct {
	list *List
	node *node
}

// NewIterator returns an iterator positioned before the first entry.
func (l *List) NewIterator() *Iterator { return &Iterator{list: l} }

// Valid reports whether the iterator is positioned at an entry.
func (it *Iterator) Valid() bool { return it.node != nil }

// Key returns the internal key at the cursor. Valid only when Valid().
func (it *Iterator) Key() []byte { return it.node.key }

// Value returns the value at the cursor. Valid only when Valid().
func (it *Iterator) Value() []byte { return it.node.val }

// First positions the iterator at the smallest entry.
func (it *Iterator) First() {
	it.node = it.list.head.loadNext(0)
}

// Next advances to the successor entry.
func (it *Iterator) Next() {
	it.node = it.node.loadNext(0)
}

// SeekGE positions the iterator at the first entry with key >= ikey.
func (it *Iterator) SeekGE(ikey []byte) {
	var preds, succs [maxHeight]*node
	it.list.findSplice(ikey, &preds, &succs)
	it.node = succs[0]
}

// Prev steps to the predecessor entry. The list is singly linked, so this
// re-descends from the head (O(log n)), exactly like LevelDB's memtable
// iterator.
func (it *Iterator) Prev() {
	it.node = it.list.findLessThan(it.node.key)
}

// Last positions the iterator at the largest entry.
func (it *Iterator) Last() {
	it.node = it.list.findLast()
}

// findLessThan returns the last node whose key sorts strictly before ikey,
// or nil when no such node exists.
func (l *List) findLessThan(ikey []byte) *node {
	prev := l.head
	for i := int(l.height.Load()) - 1; i >= 0; i-- {
		next := prev.loadNext(i)
		for next != nil && keys.Compare(next.key, ikey) < 0 {
			prev = next
			next = prev.loadNext(i)
		}
	}
	if prev == l.head {
		return nil
	}
	return prev
}

// findLast returns the last node of the list, or nil when empty.
func (l *List) findLast() *node {
	prev := l.head
	for i := int(l.height.Load()) - 1; i >= 0; i-- {
		for {
			next := prev.loadNext(i)
			if next == nil {
				break
			}
			prev = next
		}
	}
	if prev == l.head {
		return nil
	}
	return prev
}

// seekGE returns the first node whose key sorts at or after the virtual
// seek key (uk, trailer), without materializing the seek key — the list's
// point-read path performs no allocation.
func (l *List) seekGE(uk []byte, trailer uint64) *node {
	prev := l.head
	var next *node
	for i := int(l.height.Load()) - 1; i >= 0; i-- {
		next = prev.loadNext(i)
		for next != nil && keys.CompareSeek(next.key, uk, trailer) < 0 {
			prev = next
			next = prev.loadNext(i)
		}
	}
	return next
}

// Get returns the newest version of user key uk visible at timestamp ts.
// ok is false if the list holds no version of uk at or below ts.
func (l *List) Get(uk []byte, ts uint64) (value []byte, valTS uint64, kind keys.Kind, ok bool) {
	n := l.seekGE(uk, keys.SeekTrailer(ts))
	if n == nil {
		return nil, 0, 0, false
	}
	k, kts, kk, valid := keys.Decode(n.key)
	if !valid || string(k) != string(uk) {
		return nil, 0, 0, false
	}
	return n.val, kts, kk, true
}
