package skiplist

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"clsm/internal/keys"
)

func ik(k string, ts uint64) []byte { return keys.Make([]byte(k), ts, keys.KindValue) }

func TestInsertAndGet(t *testing.T) {
	l := New()
	l.Insert(ik("a", 1), []byte("v1"))
	l.Insert(ik("a", 3), []byte("v3"))
	l.Insert(ik("b", 2), []byte("w2"))

	v, ts, kind, ok := l.Get([]byte("a"), keys.MaxTimestamp)
	if !ok || string(v) != "v3" || ts != 3 || kind != keys.KindValue {
		t.Fatalf("Get(a, max) = %q,%d,%d,%v", v, ts, kind, ok)
	}
	v, ts, _, ok = l.Get([]byte("a"), 2)
	if !ok || string(v) != "v1" || ts != 1 {
		t.Fatalf("Get(a, 2) = %q,%d,%v", v, ts, ok)
	}
	if _, _, _, ok := l.Get([]byte("c"), keys.MaxTimestamp); ok {
		t.Fatal("Get(c) should miss")
	}
	if _, _, _, ok := l.Get([]byte("b"), 1); ok {
		t.Fatal("Get(b, 1) should miss: only version is ts=2")
	}
}

func TestDuplicateInsert(t *testing.T) {
	l := New()
	if !l.Insert(ik("a", 1), []byte("x")) {
		t.Fatal("first insert failed")
	}
	if l.Insert(ik("a", 1), []byte("y")) {
		t.Fatal("duplicate internal key insert should be rejected")
	}
	if l.Len() != 1 {
		t.Fatalf("Len = %d", l.Len())
	}
}

func TestIteratorOrder(t *testing.T) {
	l := New()
	rng := rand.New(rand.NewSource(42))
	var want []string
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("key%04d", rng.Intn(400))
		ts := uint64(i + 1)
		l.Insert(ik(k, ts), []byte("v"))
		want = append(want, string(ik(k, ts)))
	}
	sort.Slice(want, func(i, j int) bool {
		return keys.Compare([]byte(want[i]), []byte(want[j])) < 0
	})
	it := l.NewIterator()
	i := 0
	for it.First(); it.Valid(); it.Next() {
		if !bytes.Equal(it.Key(), []byte(want[i])) {
			t.Fatalf("position %d: got %s want %s", i, keys.String(it.Key()), keys.String([]byte(want[i])))
		}
		i++
	}
	if i != len(want) {
		t.Fatalf("iterated %d entries, want %d", i, len(want))
	}
}

func TestSeekGE(t *testing.T) {
	l := New()
	l.Insert(ik("b", 5), []byte("b5"))
	l.Insert(ik("d", 7), []byte("d7"))

	it := l.NewIterator()
	it.SeekGE(keys.SeekKey([]byte("a"), keys.MaxTimestamp))
	if !it.Valid() || string(keys.UserKey(it.Key())) != "b" {
		t.Fatal("SeekGE(a) should land on b")
	}
	it.SeekGE(keys.SeekKey([]byte("c"), keys.MaxTimestamp))
	if !it.Valid() || string(keys.UserKey(it.Key())) != "d" {
		t.Fatal("SeekGE(c) should land on d")
	}
	it.SeekGE(keys.SeekKey([]byte("e"), keys.MaxTimestamp))
	if it.Valid() {
		t.Fatal("SeekGE(e) should be exhausted")
	}
}

// Model-based property test: the skip list must agree with a sorted map.
func TestAgainstModel(t *testing.T) {
	l := New()
	model := map[string]struct {
		ts uint64
		v  string
	}{}
	rng := rand.New(rand.NewSource(7))
	for i := 1; i <= 5000; i++ {
		k := fmt.Sprintf("k%03d", rng.Intn(300))
		v := fmt.Sprintf("v%d", i)
		ts := uint64(i)
		l.Insert(ik(k, ts), []byte(v))
		if m, ok := model[k]; !ok || ts > m.ts {
			model[k] = struct {
				ts uint64
				v  string
			}{ts, v}
		}
	}
	for k, want := range model {
		v, ts, _, ok := l.Get([]byte(k), keys.MaxTimestamp)
		if !ok || string(v) != want.v || ts != want.ts {
			t.Fatalf("Get(%s) = %q,%d,%v; want %q,%d", k, v, ts, ok, want.v, want.ts)
		}
	}
}

func TestConcurrentInsertAllVisible(t *testing.T) {
	l := New()
	const workers = 8
	const perWorker = 3000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				ts := uint64(w*perWorker + i + 1)
				k := fmt.Sprintf("key%05d", ts)
				l.Insert(ik(k, ts), []byte(k))
			}
		}(w)
	}
	wg.Wait()
	if l.Len() != workers*perWorker {
		t.Fatalf("Len = %d, want %d", l.Len(), workers*perWorker)
	}
	// every key readable
	for ts := uint64(1); ts <= workers*perWorker; ts++ {
		k := fmt.Sprintf("key%05d", ts)
		v, _, _, ok := l.Get([]byte(k), keys.MaxTimestamp)
		if !ok || string(v) != k {
			t.Fatalf("lost insert %s", k)
		}
	}
	// order invariant
	it := l.NewIterator()
	var prev []byte
	n := 0
	for it.First(); it.Valid(); it.Next() {
		if prev != nil && keys.Compare(prev, it.Key()) >= 0 {
			t.Fatalf("order violation at entry %d", n)
		}
		prev = append(prev[:0], it.Key()...)
		n++
	}
	if n != workers*perWorker {
		t.Fatalf("iterator saw %d entries", n)
	}
}

// Weak consistency: entries present before a scan starts are always seen.
func TestIteratorWeakConsistency(t *testing.T) {
	l := New()
	for i := 1; i <= 100; i++ {
		l.Insert(ik(fmt.Sprintf("stable%03d", i), uint64(i)), []byte("x"))
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ts := uint64(1000)
		for {
			select {
			case <-stop:
				return
			default:
				ts++
				l.Insert(ik(fmt.Sprintf("noise%06d", ts), ts), []byte("n"))
			}
		}
	}()
	for round := 0; round < 50; round++ {
		seen := 0
		it := l.NewIterator()
		for it.First(); it.Valid(); it.Next() {
			if bytes.HasPrefix(keys.UserKey(it.Key()), []byte("stable")) {
				seen++
			}
		}
		if seen != 100 {
			t.Fatalf("scan missed stable entries: saw %d", seen)
		}
	}
	close(stop)
	wg.Wait()
}

func TestInsertRMWConflicts(t *testing.T) {
	l := New()
	l.Insert(ik("k", 5), []byte("v5"))

	// No conflict: we read ts=5, no newer version exists.
	if !l.InsertRMW(ik("k", 6), []byte("v6"), 5) {
		t.Fatal("expected success")
	}
	// Conflict: we read ts=5 but ts=6 now exists.
	if l.InsertRMW(ik("k", 7), []byte("v7"), 5) {
		t.Fatal("expected conflict: version 6 is newer than read ts 5")
	}
	// Success after re-reading ts=6.
	if !l.InsertRMW(ik("k", 8), []byte("v8"), 6) {
		t.Fatal("expected success after fresh read")
	}
	// Key absent from memtable (read from disk at ts=0): first version wins...
	if !l.InsertRMW(ik("fresh", 9), []byte("f"), 0) {
		t.Fatal("expected success for fresh key")
	}
	// ...and a second writer that also read "absent" must conflict.
	if l.InsertRMW(ik("fresh", 10), []byte("g"), 0) {
		t.Fatal("expected conflict for stale absent-read")
	}
}

// Counter increments through InsertRMW must never be lost.
func TestRMWCounterLosesNothing(t *testing.T) {
	l := New()
	const workers = 8
	const perWorker = 500
	var tsCounter struct {
		sync.Mutex
		n uint64
	}
	nextTS := func() uint64 {
		tsCounter.Lock()
		defer tsCounter.Unlock()
		tsCounter.n++
		return tsCounter.n
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				for {
					v, readTS, _, ok := l.Get([]byte("ctr"), keys.MaxTimestamp)
					var cur int
					if ok {
						fmt.Sscanf(string(v), "%d", &cur)
					} else {
						readTS = 0
					}
					ts := nextTS()
					if l.InsertRMW(ik("ctr", ts), []byte(fmt.Sprintf("%d", cur+1)), readTS) {
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	v, _, _, ok := l.Get([]byte("ctr"), keys.MaxTimestamp)
	if !ok {
		t.Fatal("counter missing")
	}
	var got int
	fmt.Sscanf(string(v), "%d", &got)
	if got != workers*perWorker {
		t.Fatalf("counter = %d, want %d (lost updates)", got, workers*perWorker)
	}
}

func TestMemoryUsageGrows(t *testing.T) {
	l := New()
	before := l.MemoryUsage()
	l.Insert(ik("key", 1), bytes.Repeat([]byte("v"), 1000))
	if l.MemoryUsage() <= before {
		t.Error("MemoryUsage did not grow")
	}
}
