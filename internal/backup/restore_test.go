package backup

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"clsm/internal/core"
	"clsm/internal/health"
	"clsm/internal/storage"
)

// TestRestoreAfterQuarantine is the disaster-recovery drill: a store that
// corruption has quarantined read-only keeps serving reads (take nothing
// away from it), its last backup restores into a fresh directory, and the
// restored store reopens healthy — serving every write acknowledged
// before the backup — and accepts writes again.
func TestRestoreAfterQuarantine(t *testing.T) {
	fs := storage.NewMemFS()
	db := openDB(t, fs)
	defer db.Close()

	for i := 0; i < 200; i++ {
		mustPut(t, db, fmt.Sprintf("key-%03d", i), fmt.Sprintf("val-%d", i))
	}
	eng := New(storage.NewMemFS(), Options{})
	if _, err := eng.Backup(Source{DB: db}); err != nil {
		t.Fatalf("backup: %v", err)
	}

	// Corrupt every sstable in place, then force a compaction over them:
	// the checksum failure is classified as corruption and quarantines
	// the store read-only.
	names, err := fs.List()
	if err != nil {
		t.Fatal(err)
	}
	corrupted := 0
	for _, name := range names {
		if !strings.HasSuffix(name, ".sst") {
			continue
		}
		data, err := fs.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		for i := range data {
			data[i] ^= 0x5a
		}
		if err := fs.WriteFile(name, data); err != nil {
			t.Fatal(err)
		}
		corrupted++
	}
	if corrupted == 0 {
		t.Fatal("no sstables on disk to corrupt")
	}
	db.CompactRange() // error expected; the state change is what matters
	if st := db.Health().State; st != health.ReadOnly {
		t.Fatalf("health after corrupted compaction = %v, want ReadOnly", st)
	}
	if err := db.Put([]byte("after"), []byte("x")); !errors.Is(err, core.ErrReadOnly) {
		t.Fatalf("put on quarantined store = %v, want ErrReadOnly", err)
	}

	// Restore the backup into a fresh directory and reopen: every write
	// acked before the backup is served, and the store is writable.
	target := storage.NewMemFS()
	if _, err := eng.Restore(0, func(string) (storage.FS, error) { return target, nil }); err != nil {
		t.Fatalf("restore: %v", err)
	}
	re := openDB(t, target)
	defer re.Close()
	for i := 0; i < 200; i++ {
		checkGet(t, re, fmt.Sprintf("key-%03d", i), fmt.Sprintf("val-%d", i))
	}
	if st := re.Health().State; st != health.Healthy {
		t.Fatalf("restored store health = %v, want Healthy", st)
	}
	mustPut(t, re, "after", "restored")
	checkGet(t, re, "after", "restored")
}
