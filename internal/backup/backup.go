// Package backup implements incremental backup and point-in-time restore
// on top of engine checkpoints, shipping through a pluggable remote
// storage.FS "object store".
//
// A backup is a checkpoint (a consistent image of one or more stores —
// the shards of a sharded store each contribute one) whose files are
// uploaded as content-addressed objects: every sstable and checkpoint
// manifest is stored under a name derived from the SHA-256 of its bytes.
// Content addressing is what makes backups incremental — an sstable whose
// content the previous backup's manifest already names is skipped, so
// successive backups ship only the tables flushes and compactions created
// since — and what makes restores verified: every downloaded object is
// re-hashed against its name before it is written into the target
// directory.
//
// Each completed backup writes a JSON backup manifest (BACKUP-%06d)
// naming its stores, their CURRENT contents, and the object behind every
// file, then repoints LATEST at it; LATEST is the commit point, so a
// backup that dies mid-ship is never visible to restores. Remote faults
// are classified with internal/health semantics: transient errors retry
// with capped jittered backoff per object, anything else aborts the
// backup cleanly — objects uploaded by the failed run are deleted (they
// are provably unshared: shared content would have been skipped), a
// backup-failed event is traced, and the previous backup remains the
// restore point.
package backup

import (
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"time"

	"clsm/internal/health"
	"clsm/internal/obs"
	"clsm/internal/storage"
	"clsm/internal/version"
)

// ErrBackupFailed wraps every error a backup run aborts on, after its
// partial uploads have been garbage-collected. Match with errors.Is.
var ErrBackupFailed = errors.New("backup: backup failed")

// ErrNoBackup is returned when the remote tier holds no completed backup.
var ErrNoBackup = errors.New("backup: no completed backup")

// ErrObjectCorrupt is returned by restore when a downloaded object's
// content does not hash to its name (remote bit rot or a torn upload that
// somehow became visible).
var ErrObjectCorrupt = errors.New("backup: object content does not match its name")

// latestName is the remote pointer object naming the newest completed
// backup manifest — the backup commit point.
const latestName = "LATEST"

// ManifestName returns the remote name of backup manifest id.
func ManifestName(id uint64) string { return fmt.Sprintf("BACKUP-%06d", id) }

// ObjectName content-addresses data.
func ObjectName(data []byte) string { return fmt.Sprintf("obj-%x", sha256.Sum256(data)) }

// TableObject maps one engine file to its remote object.
type TableObject struct {
	// Name is the file's name inside the store directory (000005.sst,
	// MANIFEST-000012).
	Name string `json:"name"`
	// Object is the content-addressed remote object holding its bytes.
	Object string `json:"object"`
	// Size is the file length, double-checked on restore.
	Size int64 `json:"size"`
}

// StoreImage is one store's (or one shard's) slice of a backup.
type StoreImage struct {
	// Prefix distinguishes the shards of a sharded store (shard-000, …);
	// empty for an unsharded store.
	Prefix string `json:"prefix,omitempty"`
	// Current is the verbatim content of the checkpoint's CURRENT file.
	Current string `json:"current"`
	// Manifest is the checkpoint's snapshot MANIFEST.
	Manifest TableObject `json:"manifest"`
	// Tables are the live sstables of the checkpointed version.
	Tables []TableObject `json:"tables"`
}

// Manifest describes one completed backup.
type Manifest struct {
	ID   uint64 `json:"id"`
	Prev uint64 `json:"prev,omitempty"` // previous backup id (0 = none)
	// Stores holds one image per store; sharded stores contribute one
	// per shard under its directory prefix.
	Stores []StoreImage `json:"stores"`
}

// objects returns every remote object the manifest references.
func (m *Manifest) objects() map[string]bool {
	set := make(map[string]bool)
	if m == nil {
		return set
	}
	for _, st := range m.Stores {
		set[st.Manifest.Object] = true
		for _, t := range st.Tables {
			set[t.Object] = true
		}
	}
	return set
}

// Checkpointer materializes a consistent store image into dst and reports
// how many tables it linked. Implemented by core.DB.Checkpoint.
type Checkpointer interface {
	Checkpoint(dst storage.FS) (int, error)
}

// Source is one store to include in a backup.
type Source struct {
	// Prefix labels the store's image in the backup manifest (the shard
	// directory name for sharded stores; empty for unsharded).
	Prefix string
	// DB produces the checkpoint.
	DB Checkpointer
}

// Options tunes an Engine.
type Options struct {
	// Classifier decides which remote errors are worth retrying. The
	// zero value knows the OS-level transient conditions and the
	// Temporary()/Timeout() conventions.
	Classifier health.Classifier
	// RetryBase and RetryCap bound the per-object retry backoff
	// (health.DefaultBackoffBase/Cap when zero).
	RetryBase time.Duration
	RetryCap  time.Duration
	// MaxAttempts caps upload/download attempts per object (default 5).
	MaxAttempts int
	// Observer receives backup counters, the upload-latency histogram,
	// and the backup lifecycle events. Defaults to a fresh Observer.
	Observer *obs.Observer
}

// Engine ships backups to (and restores from) one remote object store.
// Methods are not safe for concurrent use with each other; the engine
// serializes backups by construction (one store ships one backup at a
// time, on the scheduler's backup band).
type Engine struct {
	remote storage.FS
	opts   Options
}

// New builds an engine over the remote object store.
func New(remote storage.FS, opts Options) *Engine {
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 5
	}
	if opts.Observer == nil {
		opts.Observer = obs.New()
	}
	return &Engine{remote: remote, opts: opts}
}

// Remote exposes the underlying object store (tests, tools).
func (e *Engine) Remote() storage.FS { return e.remote }

// Latest returns the id and manifest of the most recent completed backup,
// or ErrNoBackup when none exists.
func (e *Engine) Latest() (uint64, *Manifest, error) {
	b, err := e.remote.ReadFile(latestName)
	if errors.Is(err, storage.ErrNotExist) {
		return 0, nil, ErrNoBackup
	}
	if err != nil {
		return 0, nil, err
	}
	var id uint64
	if _, err := fmt.Sscanf(strings.TrimSpace(string(b)), "%d", &id); err != nil || id == 0 {
		return 0, nil, fmt.Errorf("backup: malformed LATEST %q", b)
	}
	m, err := e.Load(id)
	return id, m, err
}

// Load fetches and decodes backup manifest id.
func (e *Engine) Load(id uint64) (*Manifest, error) {
	b, err := e.remote.ReadFile(ManifestName(id))
	if errors.Is(err, storage.ErrNotExist) {
		return nil, fmt.Errorf("%w: id %d", ErrNoBackup, id)
	}
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("backup: decode manifest %d: %w", id, err)
	}
	return &m, nil
}

// Backup checkpoints every source and ships the images incrementally: a
// table whose content the previous backup already holds is skipped
// (backup_files_skipped), everything else is uploaded content-addressed
// with per-object transient retry. On success the backup manifest and the
// LATEST pointer are written — in that order, so LATEST always names a
// complete backup — and the manifest is returned. On failure the run's
// partial uploads are removed, a backup-failed event is traced, and the
// error wraps ErrBackupFailed.
func (e *Engine) Backup(sources ...Source) (*Manifest, error) {
	o := e.opts.Observer
	o.Event(obs.Event{Type: obs.EvBackupStart})

	prevID, prev, err := e.Latest()
	if err != nil && !errors.Is(err, ErrNoBackup) {
		return nil, e.fail(nil, err)
	}
	have := prev.objects()

	m := &Manifest{ID: prevID + 1, Prev: prevID}
	var uploaded []string
	shippedBefore := o.BackupBytesShipped.Load()
	boff := &health.Backoff{Base: e.opts.RetryBase, Cap: e.opts.RetryCap}

	for _, src := range sources {
		// Checkpoint into volatile staging: the links pin nothing on the
		// remote path, and the staging image dies with the run.
		staging := storage.NewMemFS()
		if _, err := src.DB.Checkpoint(staging); err != nil {
			return nil, e.fail(uploaded, fmt.Errorf("checkpoint %q: %w", src.Prefix, err))
		}
		st, err := e.ship(staging, src.Prefix, have, &uploaded, boff)
		if err != nil {
			return nil, e.fail(uploaded, err)
		}
		m.Stores = append(m.Stores, *st)
	}

	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, e.fail(uploaded, err)
	}
	if err := e.put(ManifestName(m.ID), data, &uploaded, boff); err != nil {
		return nil, e.fail(uploaded, err)
	}
	if err := e.put(latestName, []byte(fmt.Sprintf("%d\n", m.ID)), nil, boff); err != nil {
		return nil, e.fail(uploaded, err)
	}
	o.Event(obs.Event{Type: obs.EvBackupEnd, Bytes: o.BackupBytesShipped.Load() - shippedBefore})
	return m, nil
}

// fail garbage-collects the aborted run's uploads (content addressing
// guarantees they are unshared: content a previous backup holds was
// skipped, not re-uploaded) and traces the failure.
func (e *Engine) fail(uploaded []string, err error) error {
	for _, name := range uploaded {
		e.remote.Remove(name)
	}
	e.opts.Observer.Event(obs.Event{Type: obs.EvBackupFailed, Msg: err.Error()})
	return fmt.Errorf("%w: %v", ErrBackupFailed, err)
}

// ship uploads one staged checkpoint. have accumulates the object names
// known to exist remotely — seeded from the previous backup's manifest
// and extended by this run's uploads, so identical tables (across shards,
// or across backups) ship exactly once.
func (e *Engine) ship(staging storage.FS, prefix string, have map[string]bool, uploaded *[]string, boff *health.Backoff) (*StoreImage, error) {
	cur, err := staging.ReadFile(version.CurrentFileName)
	if err != nil {
		return nil, fmt.Errorf("staging CURRENT: %w", err)
	}
	st := &StoreImage{Prefix: prefix, Current: string(cur)}

	names, err := staging.List()
	if err != nil {
		return nil, err
	}
	for _, name := range names {
		kind, _, ok := version.ParseFileName(name)
		if !ok || kind == version.KindCurrent || kind == version.KindLog {
			continue
		}
		data, err := staging.ReadFile(name)
		if err != nil {
			return nil, err
		}
		entry := TableObject{Name: name, Object: ObjectName(data), Size: int64(len(data))}
		if have[entry.Object] {
			if kind == version.KindTable {
				e.opts.Observer.BackupFilesSkipped.Add(1)
			}
		} else {
			if err := e.put(entry.Object, data, uploaded, boff); err != nil {
				return nil, err
			}
			have[entry.Object] = true
		}
		switch kind {
		case version.KindTable, version.KindValueLog:
			// Value-log segments restore exactly like tables: named files
			// the manifest's segment records expect to find on disk.
			st.Tables = append(st.Tables, entry)
		case version.KindManifest:
			st.Manifest = entry
		}
	}
	if st.Manifest.Object == "" {
		return nil, fmt.Errorf("backup: staged checkpoint %q has no manifest", prefix)
	}
	return st, nil
}

// put uploads one object, retrying transient remote faults with capped
// jittered backoff up to MaxAttempts; any other class aborts immediately.
func (e *Engine) put(name string, data []byte, uploaded *[]string, boff *health.Backoff) error {
	o := e.opts.Observer
	for attempt := 1; ; attempt++ {
		start := time.Now()
		err := e.remote.WriteFile(name, data)
		o.BackupUpload.RecordValue(uint64(time.Since(start).Microseconds()))
		if err == nil {
			o.BackupBytesShipped.Add(uint64(len(data)))
			if uploaded != nil {
				*uploaded = append(*uploaded, name)
			}
			boff.Reset()
			return nil
		}
		if e.opts.Classifier.Classify(err) != health.ClassTransient || attempt >= e.opts.MaxAttempts {
			// The failed PUT may have left partial content under the
			// object's name (a torn multipart upload). GC-tracked names
			// are this run's own, so removing is always safe; the LATEST
			// pointer (uploaded == nil) must never be removed — it still
			// names the previous completed backup.
			if uploaded != nil {
				e.remote.Remove(name)
			}
			return fmt.Errorf("upload %s: %w", name, err)
		}
		time.Sleep(boff.Next())
	}
}

// Restore materializes backup id (0 selects the latest) through mkfs,
// which maps each store image's prefix to its target filesystem (an
// unsharded backup calls it once with ""). Every object is verified
// against its content address before it is written; CURRENT is written
// last, so an interrupted restore is never mistaken for a complete store.
// The restored directories open as ordinary stores.
func (e *Engine) Restore(id uint64, mkfs func(prefix string) (storage.FS, error)) (*Manifest, error) {
	var m *Manifest
	var err error
	if id == 0 {
		_, m, err = e.Latest()
	} else {
		m, err = e.Load(id)
	}
	if err != nil {
		return nil, err
	}
	for _, st := range m.Stores {
		dst, err := mkfs(st.Prefix)
		if err != nil {
			return nil, err
		}
		if err := e.restoreStore(st, dst); err != nil {
			return nil, err
		}
	}
	return m, nil
}

func (e *Engine) restoreStore(st StoreImage, dst storage.FS) error {
	for _, t := range st.Tables {
		if err := e.fetch(t, dst); err != nil {
			return err
		}
	}
	if err := e.fetch(st.Manifest, dst); err != nil {
		return err
	}
	return dst.WriteFile(version.CurrentFileName, []byte(st.Current))
}

// fetch downloads one object (retrying transients), verifies its size and
// content address, and writes it under its store name.
func (e *Engine) fetch(t TableObject, dst storage.FS) error {
	boff := &health.Backoff{Base: e.opts.RetryBase, Cap: e.opts.RetryCap}
	var data []byte
	for attempt := 1; ; attempt++ {
		var err error
		data, err = e.remote.ReadFile(t.Object)
		if err == nil {
			break
		}
		if e.opts.Classifier.Classify(err) != health.ClassTransient || attempt >= e.opts.MaxAttempts {
			return fmt.Errorf("backup: fetch %s (%s): %w", t.Name, t.Object, err)
		}
		time.Sleep(boff.Next())
	}
	if int64(len(data)) != t.Size || ObjectName(data) != t.Object {
		return fmt.Errorf("%w: %s (%s)", ErrObjectCorrupt, t.Object, t.Name)
	}
	return dst.WriteFile(t.Name, data)
}
