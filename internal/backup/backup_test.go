package backup

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"clsm/internal/core"
	"clsm/internal/faultfs"
	"clsm/internal/obs"
	"clsm/internal/storage"
)

func openDB(t *testing.T, fs storage.FS) *core.DB {
	t.Helper()
	db, err := core.Open(core.Options{FS: fs, MemtableSize: 4 << 10})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return db
}

func mustPut(t *testing.T, db *core.DB, k, v string) {
	t.Helper()
	if err := db.Put([]byte(k), []byte(v)); err != nil {
		t.Fatalf("put %s: %v", k, err)
	}
}

func checkGet(t *testing.T, db *core.DB, k, want string) {
	t.Helper()
	v, ok, err := db.Get([]byte(k))
	if err != nil || !ok {
		t.Fatalf("get %s: ok=%v err=%v", k, ok, err)
	}
	if string(v) != want {
		t.Fatalf("get %s = %q, want %q", k, v, want)
	}
}

// TestCheckpointOpensIndependently: a checkpoint of a live store is a
// complete store of its own — it opens from the checkpoint filesystem and
// serves every key written before the checkpoint.
func TestCheckpointOpensIndependently(t *testing.T) {
	src := storage.NewMemFS()
	db := openDB(t, src)
	for i := 0; i < 200; i++ {
		mustPut(t, db, fmt.Sprintf("key-%03d", i), fmt.Sprintf("val-%d", i))
	}
	ckpt := storage.NewMemFS()
	n, err := db.Checkpoint(ckpt)
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if n == 0 {
		t.Fatal("checkpoint linked no tables")
	}
	if got := db.Observer().CheckpointLiveLinks.Load(); got != uint64(n) {
		t.Fatalf("checkpoint_live_links = %d, want %d", got, n)
	}
	// Mutate the source after the checkpoint; the image must not move.
	mustPut(t, db, "key-000", "mutated")
	if err := db.Close(); err != nil {
		t.Fatalf("close src: %v", err)
	}

	re := openDB(t, ckpt)
	defer re.Close()
	checkGet(t, re, "key-000", "val-0")
	checkGet(t, re, "key-199", "val-199")
}

// TestIncrementalBackupRestore: a second backup ships only tables created
// since the first (backup_files_skipped > 0, object store holds each
// content exactly once), and restore of each backup serves exactly its
// point-in-time image.
func TestIncrementalBackupRestore(t *testing.T) {
	db := openDB(t, storage.NewMemFS())
	defer db.Close()
	o := obs.New()
	eng := New(storage.NewMemFS(), Options{Observer: o})

	for i := 0; i < 100; i++ {
		mustPut(t, db, fmt.Sprintf("a-%03d", i), "one")
	}
	m1, err := eng.Backup(Source{DB: db})
	if err != nil {
		t.Fatalf("backup 1: %v", err)
	}
	if m1.ID != 1 || m1.Prev != 0 {
		t.Fatalf("backup 1 ids = %d/%d", m1.ID, m1.Prev)
	}
	if len(m1.Stores) != 1 || len(m1.Stores[0].Tables) == 0 {
		t.Fatalf("backup 1 shape: %+v", m1)
	}
	if o.BackupFilesSkipped.Load() != 0 {
		t.Fatalf("first backup skipped %d files", o.BackupFilesSkipped.Load())
	}

	for i := 0; i < 100; i++ {
		mustPut(t, db, fmt.Sprintf("b-%03d", i), "two")
	}
	m2, err := eng.Backup(Source{DB: db})
	if err != nil {
		t.Fatalf("backup 2: %v", err)
	}
	if m2.ID != 2 || m2.Prev != 1 {
		t.Fatalf("backup 2 ids = %d/%d", m2.ID, m2.Prev)
	}
	if o.BackupFilesSkipped.Load() == 0 {
		t.Fatal("second backup re-shipped every table (backup_files_skipped = 0)")
	}
	if o.BackupBytesShipped.Load() == 0 {
		t.Fatal("backup_bytes_shipped = 0")
	}

	// The object store holds each distinct content exactly once: every
	// object named by either manifest exists, and no object exists that
	// neither names (no leaked partials, no duplicates by construction
	// of content addressing).
	want := m1.objects()
	for k := range m2.objects() {
		want[k] = true
	}
	names, err := eng.Remote().List()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		if strings.HasPrefix(name, "obj-") && !want[name] {
			t.Fatalf("unreferenced object %s", name)
		}
		delete(want, name)
	}
	for k := range want {
		t.Fatalf("missing object %s", k)
	}

	// Restore backup 1: point-in-time — a-keys only.
	fs1 := storage.NewMemFS()
	if _, err := eng.Restore(1, func(string) (storage.FS, error) { return fs1, nil }); err != nil {
		t.Fatalf("restore 1: %v", err)
	}
	r1 := openDB(t, fs1)
	checkGet(t, r1, "a-000", "one")
	if _, ok, _ := r1.Get([]byte("b-000")); ok {
		t.Fatal("restore of backup 1 surfaced a key written after it")
	}
	r1.Close()

	// Restore latest (id 0): both generations.
	fs2 := storage.NewMemFS()
	if _, err := eng.Restore(0, func(string) (storage.FS, error) { return fs2, nil }); err != nil {
		t.Fatalf("restore latest: %v", err)
	}
	r2 := openDB(t, fs2)
	checkGet(t, r2, "a-099", "one")
	checkGet(t, r2, "b-099", "two")
	r2.Close()
}

// TestBackupTransientRetry: an injected transient remote fault is retried
// and the backup completes.
func TestBackupTransientRetry(t *testing.T) {
	db := openDB(t, storage.NewMemFS())
	defer db.Close()
	remote := faultfs.Wrap(storage.NewMemFS())
	remote.Arm(
		faultfs.Rule{Op: faultfs.OpWriteFile, N: 1, Kind: faultfs.FaultErr},
		faultfs.Rule{Op: faultfs.OpWriteFile, N: 2, Kind: faultfs.FaultErr},
	)
	o := obs.New()
	eng := New(remote, Options{Observer: o, RetryBase: time.Millisecond, RetryCap: 2 * time.Millisecond})

	mustPut(t, db, "k", "v")
	if _, err := eng.Backup(Source{DB: db}); err != nil {
		t.Fatalf("backup with transient faults: %v", err)
	}
	fs := storage.NewMemFS()
	if _, err := eng.Restore(0, func(string) (storage.FS, error) { return fs, nil }); err != nil {
		t.Fatalf("restore: %v", err)
	}
	re := openDB(t, fs)
	defer re.Close()
	checkGet(t, re, "k", "v")
}

// fatalFS fails one named write with an unclassifiable error.
type fatalFS struct {
	storage.FS
	failPrefix string
	failed     bool
}

var errPermanent = errors.New("remote bucket deleted")

func (f *fatalFS) WriteFile(name string, data []byte) error {
	if !f.failed && f.failPrefix != "" && strings.HasPrefix(name, f.failPrefix) {
		f.failed = true
		return errPermanent
	}
	return f.FS.WriteFile(name, data)
}

// TestBackupFatalAbortGC: a fatal remote fault aborts the run cleanly —
// the error wraps ErrBackupFailed, the run's partial uploads are removed,
// the previous backup stays restorable, and a backup-failed event is
// traced.
func TestBackupFatalAbortGC(t *testing.T) {
	db := openDB(t, storage.NewMemFS())
	defer db.Close()
	inner := storage.NewMemFS()
	remote := &fatalFS{FS: inner}
	o := obs.New()
	eng := New(remote, Options{Observer: o})

	mustPut(t, db, "a", "1")
	if _, err := eng.Backup(Source{DB: db}); err != nil {
		t.Fatalf("backup 1: %v", err)
	}
	before, _ := inner.List()

	// Second backup: new table upload hits the fatal fault.
	mustPut(t, db, "b", "2")
	remote.failPrefix = "obj-"
	_, err := eng.Backup(Source{DB: db})
	if !errors.Is(err, ErrBackupFailed) {
		t.Fatalf("err = %v, want ErrBackupFailed", err)
	}
	after, _ := inner.List()
	if len(after) != len(before) {
		t.Fatalf("aborted backup leaked objects: before %v, after %v", before, after)
	}
	var sawFail bool
	for _, e := range o.Trace.Events() {
		if e.Type == obs.EvBackupFailed {
			sawFail = true
		}
	}
	if !sawFail {
		t.Fatal("no backup-failed event traced")
	}

	// The previous backup is still the restore point.
	fs := storage.NewMemFS()
	m, err := eng.Restore(0, func(string) (storage.FS, error) { return fs, nil })
	if err != nil {
		t.Fatalf("restore after abort: %v", err)
	}
	if m.ID != 1 {
		t.Fatalf("restored backup id = %d, want 1", m.ID)
	}
	re := openDB(t, fs)
	defer re.Close()
	checkGet(t, re, "a", "1")
	if _, ok, _ := re.Get([]byte("b")); ok {
		t.Fatal("aborted backup's data surfaced in restore")
	}
}

// TestRestoreVerifiesContent: a corrupted remote object is detected by
// the restore's content-address check instead of being written through.
func TestRestoreVerifiesContent(t *testing.T) {
	db := openDB(t, storage.NewMemFS())
	defer db.Close()
	inner := storage.NewMemFS()
	eng := New(inner, Options{})

	mustPut(t, db, "k", "v")
	m, err := eng.Backup(Source{DB: db})
	if err != nil {
		t.Fatal(err)
	}
	obj := m.Stores[0].Tables[0].Object
	data, _ := inner.ReadFile(obj)
	data[len(data)/2] ^= 0x40
	inner.WriteFile(obj, data)

	fs := storage.NewMemFS()
	_, err = eng.Restore(0, func(string) (storage.FS, error) { return fs, nil })
	if !errors.Is(err, ErrObjectCorrupt) {
		t.Fatalf("err = %v, want ErrObjectCorrupt", err)
	}
}

// TestBackupOnScheduler: the whole backup runs as a backup-band job on
// the engine's unified scheduler and still completes while foreground
// writes keep flowing.
func TestBackupOnScheduler(t *testing.T) {
	db := openDB(t, storage.NewMemFS())
	defer db.Close()
	eng := New(storage.NewMemFS(), Options{})
	for i := 0; i < 50; i++ {
		mustPut(t, db, fmt.Sprintf("k-%02d", i), "v")
	}
	var m *Manifest
	var berr error
	if err := db.RunBackupJob(func() {
		m, berr = eng.Backup(Source{DB: db})
	}); err != nil {
		t.Fatalf("RunBackupJob: %v", err)
	}
	if berr != nil {
		t.Fatalf("backup on scheduler: %v", berr)
	}
	if m == nil || m.ID != 1 {
		t.Fatalf("manifest = %+v", m)
	}
}
