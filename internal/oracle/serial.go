package oracle

// Serializability checker for committed optimistic transactions.
//
// The engine's commit-time validation claims: if Commit succeeds, the
// transaction is serializable at its commit timestamp. This file is the
// executable form of that claim. Concurrent harnesses record one TxnRecord
// per committed transaction — its snapshot timestamp, commit timestamp,
// snapshot observations (read set), and buffered writes — and
// CheckSerializable rebuilds the multi-version serialization graph:
//
//   - the version order of each key is the commit-timestamp order of its
//     writers (commit batches draw disjoint contiguous ranges, so this is
//     total);
//   - each read is resolved to the version it must have observed — the
//     newest version at or below the reader's snapshot timestamp — and the
//     recorded observation is checked against that version's value;
//   - edges: wr (version writer → its readers), ww (consecutive writers of
//     a key), rw (reader → the writer that overwrote the version it read).
//
// An acyclic graph proves an equivalent serial order exists (any
// topological order); the checker returns one and re-executes the history
// in that order as a belt-and-braces replay. A cycle is a serializability
// violation and is reported edge by edge.

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// TxnRead is one snapshot observation: the transaction read Key and saw
// Value (or absence when Exists is false). Observations must be external —
// reads served from the transaction's own write buffer say nothing about
// the snapshot and must not be recorded.
type TxnRead struct {
	Key    string
	Value  []byte
	Exists bool
}

// TxnOp is one committed write of a transaction.
type TxnOp struct {
	Key       string
	Value     []byte
	Tombstone bool
}

// TxnRecord is one committed transaction as the checker sees it.
type TxnRecord struct {
	ID         int    // caller-chosen; cycle reports use it
	SnapshotTS uint64 // reads pinned here
	CommitTS   uint64 // first timestamp of the commit batch
	Reads      []TxnRead
	Writes     []TxnOp
}

// History accumulates committed TxnRecords from concurrent workers. All
// methods are safe for concurrent use; Add deep-copies values so callers
// may reuse buffers.
type History struct {
	mu   sync.Mutex
	txns []TxnRecord
}

// NewHistory returns an empty history.
func NewHistory() *History { return &History{} }

// Add records one committed transaction.
func (h *History) Add(r TxnRecord) {
	cp := r
	cp.Reads = make([]TxnRead, len(r.Reads))
	for i, rd := range r.Reads {
		cp.Reads[i] = TxnRead{Key: rd.Key, Exists: rd.Exists}
		if rd.Exists {
			cp.Reads[i].Value = append([]byte(nil), rd.Value...)
		}
	}
	cp.Writes = make([]TxnOp, len(r.Writes))
	for i, w := range r.Writes {
		cp.Writes[i] = TxnOp{Key: w.Key, Tombstone: w.Tombstone}
		if !w.Tombstone {
			cp.Writes[i].Value = append([]byte(nil), w.Value...)
		}
	}
	h.mu.Lock()
	h.txns = append(h.txns, cp)
	h.mu.Unlock()
}

// Records returns a snapshot of the accumulated transactions.
func (h *History) Records() []TxnRecord {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]TxnRecord(nil), h.txns...)
}

// VersionsIn returns the IDs of transactions that wrote key with a commit
// timestamp in (lo, hi], in commit order — the history-side mirror of the
// engine's commit-time interval validation. A committed transaction that
// read key must see an empty interval (SnapshotTS, CommitTS) for it, or
// validation let a conflict through.
func (h *History) VersionsIn(key string, lo, hi uint64) []int {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []TxnRecord
	for _, t := range h.txns {
		if t.CommitTS <= lo || t.CommitTS > hi {
			continue
		}
		for _, w := range t.Writes {
			if w.Key == key {
				out = append(out, t)
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].CommitTS < out[j].CommitTS })
	ids := make([]int, len(out))
	for i, t := range out {
		ids[i] = t.ID
	}
	return ids
}

// Check runs CheckSerializable over the accumulated records.
func (h *History) Check() ([]int, error) {
	return CheckSerializable(h.Records())
}

// serialEdge is one precedence constraint with its provenance.
type serialEdge struct {
	to     int
	reason string
}

// CheckSerializable verifies that txns (committed transactions) have an
// equivalent serial execution. On success it returns the IDs of one valid
// serial order. On failure the error pinpoints either a mis-resolved read
// (an observation that matches no legal version) or the offending
// dependency cycle, edge by edge.
func CheckSerializable(txns []TxnRecord) ([]int, error) {
	n := len(txns)
	if n == 0 {
		return nil, nil
	}
	order := make([]int, n) // indices into txns, sorted by commit ts
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return txns[order[a]].CommitTS < txns[order[b]].CommitTS })
	for i := 1; i < n; i++ {
		a, b := &txns[order[i-1]], &txns[order[i]]
		if a.CommitTS == b.CommitTS {
			return nil, fmt.Errorf("txns %d and %d share commit ts %d: commit batches must draw disjoint timestamp ranges", a.ID, b.ID, a.CommitTS)
		}
	}

	// Per-key writer chains in version (= commit ts) order.
	writers := make(map[string][]int) // key -> txn indices, commit order
	for _, ti := range order {
		for _, w := range txns[ti].Writes {
			writers[w.Key] = append(writers[w.Key], ti)
		}
	}

	adj := make([]map[int]string, n) // adj[from][to] = reason for the edge
	addEdge := func(from, to int, reason string) {
		if from == to {
			return
		}
		if adj[from] == nil {
			adj[from] = make(map[int]string)
		}
		if _, dup := adj[from][to]; !dup {
			adj[from][to] = reason
		}
	}

	// ww: consecutive writers of each key.
	for key, ws := range writers {
		for i := 1; i < len(ws); i++ {
			addEdge(ws[i-1], ws[i], fmt.Sprintf("ww %q", key))
		}
	}

	// Resolve each read to the version it must have observed (newest writer
	// at or below the snapshot), check the observation, and add wr/rw edges.
	writeOf := func(ti int, key string) *TxnOp {
		ws := txns[ti].Writes
		for i := len(ws) - 1; i >= 0; i-- { // last write of the key wins
			if ws[i].Key == key {
				return &ws[i]
			}
		}
		return nil
	}
	for _, ti := range order {
		t := &txns[ti]
		for ri := range t.Reads {
			rd := &t.Reads[ri]
			ws := writers[rd.Key]
			// Newest writer with CommitTS <= SnapshotTS (excluding t: its
			// own write cannot precede its snapshot — validation forbids it).
			from := -1
			next := -1
			for _, wi := range ws {
				if wi == ti {
					continue
				}
				if txns[wi].CommitTS <= t.SnapshotTS {
					from = wi
				} else if next == -1 {
					next = wi
				}
			}
			// The observation must match the resolved version.
			if from == -1 {
				if rd.Exists {
					return nil, fmt.Errorf("txn %d read %q = %q at snapshot %d, but no committed txn wrote the key by then (fabricated read)",
						t.ID, rd.Key, rd.Value, t.SnapshotTS)
				}
			} else {
				w := writeOf(from, rd.Key)
				if w.Tombstone != !rd.Exists || (rd.Exists && !bytes.Equal(rd.Value, w.Value)) {
					got := "absent"
					if rd.Exists {
						got = fmt.Sprintf("%q", rd.Value)
					}
					want := "a tombstone"
					if !w.Tombstone {
						want = fmt.Sprintf("%q", w.Value)
					}
					return nil, fmt.Errorf("txn %d read %q = %s at snapshot %d, but the newest version by then (txn %d, commit %d) wrote %s",
						t.ID, rd.Key, got, t.SnapshotTS, txns[from].ID, txns[from].CommitTS, want)
				}
				addEdge(from, ti, fmt.Sprintf("wr %q", rd.Key))
			}
			if next != -1 {
				// Anti-dependency: t read the version next overwrote, so t
				// must serialize before next.
				addEdge(ti, next, fmt.Sprintf("rw %q", rd.Key))
			}
		}
	}

	// Kahn's algorithm; ties broken by commit order for a stable result.
	indeg := make([]int, n)
	for _, m := range adj {
		for to := range m {
			indeg[to]++
		}
	}
	serial := make([]int, 0, n)
	used := make([]bool, n)
	for len(serial) < n {
		pick := -1
		for _, ti := range order {
			if !used[ti] && indeg[ti] == 0 {
				pick = ti
				break
			}
		}
		if pick == -1 {
			return nil, fmt.Errorf("no serial order exists: %s", describeCycle(txns, adj, used))
		}
		used[pick] = true
		serial = append(serial, pick)
		for to := range adj[pick] {
			indeg[to]--
		}
	}

	// Replay in the serial order: every observation must match the state an
	// actual serial execution would present. This is redundant when the
	// graph construction is correct — it guards the checker itself.
	state := make(map[string]*TxnOp)
	for _, ti := range serial {
		t := &txns[ti]
		for ri := range t.Reads {
			rd := &t.Reads[ri]
			cur := state[rd.Key]
			exists := cur != nil && !cur.Tombstone
			if exists != rd.Exists || (exists && !bytes.Equal(cur.Value, rd.Value)) {
				return nil, fmt.Errorf("replay diverged: txn %d read %q but the serial state disagrees (checker bug)", t.ID, rd.Key)
			}
		}
		for wi := range t.Writes {
			state[t.Writes[wi].Key] = &t.Writes[wi]
		}
	}

	ids := make([]int, n)
	for i, ti := range serial {
		ids[i] = txns[ti].ID
	}
	return ids, nil
}

// describeCycle extracts one dependency cycle among the not-yet-emitted
// nodes and renders it edge by edge ("txn 3 -[rw "k"]-> txn 5 -...").
func describeCycle(txns []TxnRecord, adj []map[int]string, used []bool) string {
	n := len(txns)
	const (
		white = 0 // unvisited
		gray  = 1 // on the DFS stack
		black = 2 // fully explored, not on any cycle reachable from here
	)
	color := make([]int, n)
	var stack []int
	var cycle []int
	var dfs func(u int) bool
	dfs = func(u int) bool {
		color[u] = gray
		stack = append(stack, u)
		for to := range adj[u] {
			if used[to] {
				continue
			}
			switch color[to] {
			case gray:
				// Back edge: the cycle is the stack suffix from to.
				for i, s := range stack {
					if s == to {
						cycle = append(append([]int(nil), stack[i:]...), to)
						return true
					}
				}
			case white:
				if dfs(to) {
					return true
				}
			}
		}
		color[u] = black
		stack = stack[:len(stack)-1]
		return false
	}
	for i := 0; i < n; i++ {
		if !used[i] && color[i] == white {
			stack = stack[:0]
			if dfs(i) {
				break
			}
		}
	}
	if len(cycle) == 0 {
		return "cycle extraction failed"
	}
	var b strings.Builder
	for i := 0; i < len(cycle)-1; i++ {
		fmt.Fprintf(&b, "txn %d -[%s]-> ", txns[cycle[i]].ID, adj[cycle[i]][cycle[i+1]])
	}
	fmt.Fprintf(&b, "txn %d", txns[cycle[len(cycle)-1]].ID)
	return b.String()
}
