package oracle

import (
	"strings"
	"testing"
)

func TestModelGet(t *testing.T) {
	m := NewModel()
	if _, ok := m.Get("a"); ok {
		t.Fatal("empty model returned a value")
	}
	m.Begin(1, Op{Key: "a", Value: []byte("v1")}).Ack(2)
	m.Begin(3, Op{Key: "a", Value: []byte("v2")}).Ack(4)
	if v, ok := m.Get("a"); !ok || string(v) != "v2" {
		t.Fatalf("Get = %q,%v, want v2,true", v, ok)
	}
	m.Begin(5, Op{Key: "a", Tombstone: true}).Ack(6)
	if _, ok := m.Get("a"); ok {
		t.Fatal("deleted key still visible")
	}
}

func TestCheckCrashInvariants(t *testing.T) {
	build := func() *Model {
		m := NewModel()
		m.Begin(1, Op{Key: "a", Value: []byte("v1")}).Ack(2) // acked at 2
		m.Begin(3, Op{Key: "a", Value: []byte("v2")})        // never acked
		m.Begin(5, Op{Key: "a", Tombstone: true}).Ack(6)     // delete acked at 6
		return m
	}
	cases := []struct {
		name    string
		got     string
		ok      bool
		cutoff  uint64
		wantIdx int
		wantErr string // substring, "" = pass
	}{
		{"required-v1", "v1", true, 2, 0, ""},
		{"unacked-may-appear", "v2", true, 4, 1, ""},
		{"unacked-may-be-absent-via-v1", "v1", true, 4, 0, ""},
		{"pre-start-absent-ok", "", false, 0, -1, ""},
		{"lost-acked-write", "", false, 2, 0, "durably acked"},
		{"stale-after-ack", "v1", true, 6, 0, "stale"},
		{"acked-delete-absent", "", false, 6, 2, ""},
		{"fabricated", "vX", true, 2, 0, "fabricated"},
		{"future-value", "v2", true, 2, 0, "fabricated"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := build()
			idx, err := m.CheckCrash("a", []byte(tc.got), tc.ok, tc.cutoff)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected violation: %v", err)
				}
				if idx != tc.wantIdx {
					t.Fatalf("matchIdx = %d, want %d", idx, tc.wantIdx)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

func TestCheckBatchAtomicity(t *testing.T) {
	m := NewModel()
	m.Begin(1, Op{Key: "x", Value: []byte("x0")}).Ack(2)
	m.Begin(3, // batch: x→x1, y→y1
		Op{Key: "x", Value: []byte("x1")},
		Op{Key: "y", Value: []byte("y1")},
	).Ack(4)

	// Consistent: both members recovered (x idx 1, y idx 0).
	if errs := m.CheckBatchAtomicity(map[string]int{"x": 1, "y": 0}); len(errs) != 0 {
		t.Fatalf("false positive: %v", errs)
	}
	// Consistent: neither member recovered (x shows pre-batch x0, y absent).
	if errs := m.CheckBatchAtomicity(map[string]int{"x": 0, "y": -1}); len(errs) != 0 {
		t.Fatalf("false positive: %v", errs)
	}
	// Split: x shows the batch value, y still pre-batch.
	errs := m.CheckBatchAtomicity(map[string]int{"x": 1, "y": -1})
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "split") {
		t.Fatalf("split batch not detected: %v", errs)
	}
}

func TestModelKeys(t *testing.T) {
	m := NewModel()
	m.Begin(1, Op{Key: "b"}, Op{Key: "a"})
	got := m.Keys()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Keys = %v", got)
	}
}
