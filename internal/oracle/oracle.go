// Package oracle implements the timestamp management of cLSM's snapshot
// algorithm (Algorithm 2 of the paper): a global time counter, the Active
// set of acquired-but-possibly-unwritten timestamps, the snapTime fence,
// and the list of installed snapshots consulted by merges.
package oracle

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// activeSlots bounds the number of concurrently in-flight put timestamps.
// The Active set is a fixed array of atomic slots: Add claims an empty slot
// with a CAS, Remove clears it, FindMin scans. All operations are
// non-blocking; FindMin is O(activeSlots), which only the (rare) getSnap
// and merge paths pay. 256 slots comfortably exceed any realistic writer
// count (the paper evaluates up to 16 hardware threads).
const activeSlots = 256

// ActiveSet tracks timestamps handed to writers that may not yet have been
// inserted into the memtable.
type ActiveSet struct {
	slots [activeSlots]atomic.Uint64
	hint  atomic.Uint32
	// count over-approximates the number of occupied slots: incremented
	// before a slot is claimed, decremented after it is released. It lets
	// FindMin return immediately in the common no-writer-in-flight case
	// without weakening the visibility argument — a writer whose Add
	// precedes a FindMin in the seq-cst order has already bumped count.
	count atomic.Int64
}

// Add claims a slot for ts and returns its index for O(1) removal.
func (s *ActiveSet) Add(ts uint64) int {
	s.count.Add(1)
	start := int(s.hint.Add(1))
	for i := 0; ; i++ {
		idx := (start + i) % activeSlots
		if s.slots[idx].Load() == 0 && s.slots[idx].CompareAndSwap(0, ts) {
			return idx
		}
		if i >= activeSlots {
			// All slots busy: more than activeSlots concurrent writers.
			// Yield and rescan; progress is guaranteed because every slot
			// holder is mid-put and will release promptly.
			runtime.Gosched()
			i = 0
		}
	}
}

// Remove releases the slot previously returned by Add.
func (s *ActiveSet) Remove(slot int) {
	s.slots[slot].Store(0)
	s.count.Add(-1)
}

// FindMin returns the smallest active timestamp, or 0 if none is active.
func (s *ActiveSet) FindMin() uint64 {
	if s.count.Load() == 0 {
		return 0
	}
	var min uint64
	for i := range s.slots {
		if v := s.slots[i].Load(); v != 0 && (min == 0 || v < min) {
			min = v
		}
	}
	return min
}

// Oracle issues put timestamps and snapshot times with the serializability
// guarantee of Algorithm 2: a snapshot time never falls at or above a
// timestamp that is still active, and a put whose timestamp is overtaken by
// snapTime rolls it back and draws a fresh one.
type Oracle struct {
	timeCounter atomic.Uint64
	snapTime    atomic.Uint64
	active      ActiveSet

	mu        sync.Mutex // guards snapshots (getSnap/merge path only)
	snapshots map[uint64]int
}

// New returns an oracle starting at timestamp 1 (0 is reserved to mean
// "empty" in the Active set).
func New() *Oracle {
	return &Oracle{snapshots: make(map[uint64]int)}
}

// Advance fast-forwards the time counter to at least ts. Used by recovery
// to resume above the largest logged timestamp.
func (o *Oracle) Advance(ts uint64) {
	for {
		cur := o.timeCounter.Load()
		if cur >= ts || o.timeCounter.CompareAndSwap(cur, ts) {
			return
		}
	}
}

// Now returns the most recently issued timestamp.
func (o *Oracle) Now() uint64 { return o.timeCounter.Load() }

// GetTS implements Algorithm 2's getTS: atomically increment the counter,
// publish the timestamp in the Active set, and retry if a concurrent
// getSnap has already fenced at or above it. The returned slot must be
// passed to Done once the write is in the memtable.
func (o *Oracle) GetTS() (ts uint64, slot int) {
	for {
		ts = o.timeCounter.Add(1)
		slot = o.active.Add(ts)
		if ts <= o.snapTime.Load() {
			o.active.Remove(slot)
			continue
		}
		return ts, slot
	}
}

// GetTSBatch reserves n consecutive timestamps for an atomic batch,
// returning the first. The first timestamp is registered in the Active set
// (it lower-bounds the whole range, which is all FindMin needs); the same
// rollback rule as GetTS applies.
func (o *Oracle) GetTSBatch(n uint64) (first uint64, slot int) {
	if n == 0 {
		n = 1
	}
	for {
		end := o.timeCounter.Add(n)
		first = end - n + 1
		slot = o.active.Add(first)
		if first <= o.snapTime.Load() {
			o.active.Remove(slot)
			continue
		}
		return first, slot
	}
}

// Done removes a timestamp from the Active set (put completed its insert).
func (o *Oracle) Done(slot int) { o.active.Remove(slot) }

// ActiveMin exposes the smallest in-flight put timestamp (tests, debugging).
func (o *Oracle) ActiveMin() uint64 { return o.active.FindMin() }

// SnapshotTS computes a serializable snapshot time (Algorithm 2's getSnap
// body, lines 9–14): start from the current counter, step below the oldest
// active timestamp, advance the snapTime fence monotonically, then wait for
// straggler puts below the fence to finish or roll back.
func (o *Oracle) SnapshotTS() uint64 {
	ts := o.timeCounter.Load()
	if m := o.active.FindMin(); m != 0 && m-1 < ts {
		ts = m - 1
	}
	// Atomically advance snapTime to max(snapTime, ts).
	for {
		cur := o.snapTime.Load()
		if ts <= cur {
			break
		}
		if o.snapTime.CompareAndSwap(cur, ts) {
			break
		}
	}
	// Wait until no active put holds a timestamp below the fence. Each
	// such put either finishes its insert (it acquired the timestamp
	// before the fence moved) or rolls back in GetTS.
	fence := o.snapTime.Load()
	spins := 0
	for {
		m := o.active.FindMin()
		if m == 0 || m > fence {
			break
		}
		spins++
		if spins > 64 {
			runtime.Gosched()
		}
	}
	return fence
}

// SnapTime returns the current snapshot fence (tests).
func (o *Oracle) SnapTime() uint64 { return o.snapTime.Load() }

// InstallSnapshot registers a snapshot handle so merges preserve versions
// it can still see. Per §3.2.1 the caller must hold the engine's shared
// lock, which orders installation against beforeMerge's query; the internal
// mutex only serializes concurrent installs.
func (o *Oracle) InstallSnapshot(ts uint64) {
	o.mu.Lock()
	o.snapshots[ts]++
	o.mu.Unlock()
}

// ReleaseSnapshot drops a snapshot handle (application API call or TTL).
func (o *Oracle) ReleaseSnapshot(ts uint64) {
	o.mu.Lock()
	if n := o.snapshots[ts]; n <= 1 {
		delete(o.snapshots, ts)
	} else {
		o.snapshots[ts] = n - 1
	}
	o.mu.Unlock()
}

// MinSnapshot returns the smallest installed snapshot timestamp, or 0 when
// none is installed. beforeMerge calls this under the exclusive lock; the
// merge then keeps, for every key, the newest version at or below every
// installed snapshot.
func (o *Oracle) MinSnapshot() uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	var min uint64
	for ts := range o.snapshots {
		if min == 0 || ts < min {
			min = ts
		}
	}
	return min
}
