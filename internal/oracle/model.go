package oracle

// Model is a reference key-value store mirrored alongside the real engine
// by correctness harnesses. It records every write with the filesystem
// step interval over which it executed, so a crash image captured at step
// c can be checked against the two recovery invariants:
//
//  1. durability — every operation acknowledged at or before c (its WAL
//     sync completed) is visible with the right value;
//  2. no fabrication — recovery never surfaces a value that was not
//     written at or before c (no torn-record garbage, no half-applied
//     batch).
//
// The model is exact only where writes to a key are issued sequentially
// (the crash workload is single-threaded; the concurrent harness shards
// keys per goroutine), which keeps per-key histories totally ordered.
import (
	"bytes"
	"fmt"
	"sort"
	"sync"
)

// Op is one model write: a put, or a delete when Tombstone is set.
type Op struct {
	Key       string
	Value     []byte
	Tombstone bool
}

// ModelVersion is one entry in a key's write history.
type ModelVersion struct {
	Value     []byte
	Tombstone bool
	Batch     uint64 // nonzero groups versions written by one atomic batch
	Start     uint64 // fs step observed before the operation was issued
	Ack       uint64 // fs step observed after it returned durably; 0 = never
}

type batchMember struct {
	key string
	idx int
}

// Model mirrors the writes applied to a store.
type Model struct {
	mu       sync.Mutex
	keys     map[string][]ModelVersion
	batches  map[uint64][]batchMember
	batchSeq uint64
}

// NewModel returns an empty model.
func NewModel() *Model {
	return &Model{
		keys:    make(map[string][]ModelVersion),
		batches: make(map[uint64][]batchMember),
	}
}

// Pending is a write recorded in the model but not yet acknowledged by the
// store. Call Ack once the store returns success.
type Pending struct {
	m    *Model
	refs []batchMember
}

// Begin records ops (atomically grouped when more than one) as issued at
// fs step start. The returned Pending must be Acked if and only if the
// store acknowledges the write as durable.
func (m *Model) Begin(start uint64, ops ...Op) *Pending {
	m.mu.Lock()
	defer m.mu.Unlock()
	var batch uint64
	if len(ops) > 1 {
		m.batchSeq++
		batch = m.batchSeq
	}
	p := &Pending{m: m}
	for _, op := range ops {
		vs := m.keys[op.Key]
		idx := len(vs)
		m.keys[op.Key] = append(vs, ModelVersion{
			Value:     append([]byte(nil), op.Value...),
			Tombstone: op.Tombstone,
			Batch:     batch,
			Start:     start,
		})
		if batch != 0 {
			m.batches[batch] = append(m.batches[batch], batchMember{op.Key, idx})
		}
		p.refs = append(p.refs, batchMember{op.Key, idx})
	}
	return p
}

// Ack marks the pending write as acknowledged durable at fs step step.
func (p *Pending) Ack(step uint64) {
	p.m.mu.Lock()
	defer p.m.mu.Unlock()
	for _, r := range p.refs {
		p.m.keys[r.key][r.idx].Ack = step
	}
}

// VersionsIn returns the indices of key's versions issued in the fs-step
// interval (lo, hi] — the model-side analogue of the engine's commit-time
// validation query ("did any version of this key appear since my
// snapshot?"). The transactional crash workload uses it to bound which
// versions a recovered image may legally surface.
func (m *Model) VersionsIn(key string, lo, hi uint64) []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []int
	vs := m.keys[key]
	for i := range vs {
		if s := vs[i].Start; s > lo && s <= hi {
			out = append(out, i)
		}
	}
	return out
}

// Get returns the latest written value of key (exact under sequential
// per-key writes). ok is false if the key was never written or its latest
// version is a tombstone.
func (m *Model) Get(key string) (value []byte, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	vs := m.keys[key]
	if len(vs) == 0 || vs[len(vs)-1].Tombstone {
		return nil, false
	}
	return vs[len(vs)-1].Value, true
}

// Keys returns every key the model has seen, sorted.
func (m *Model) Keys() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.keys))
	for k := range m.keys {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// CheckCrash validates the state of one key recovered from a crash image
// captured at fs step cutoff. (got, ok) is the recovered read result.
//
// The recovered state must be some version v_i of the key's history with
// i at or after the newest acknowledged-by-cutoff version (invariant 1)
// and Start ≤ cutoff (invariant 2) — or the never-written state when
// nothing was required. matchIdx reports which version matched (-1 for
// never-written); when several match, the newest is preferred, which keeps
// CheckBatchAtomicity free of false alarms. A non-nil error describes the
// invariant violated.
func (m *Model) CheckCrash(key string, got []byte, ok bool, cutoff uint64) (matchIdx int, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	vs := m.keys[key]
	reqIdx := -1
	for i := range vs {
		if vs[i].Ack != 0 && vs[i].Ack <= cutoff {
			reqIdx = i
		}
	}
	matches := func(v *ModelVersion) bool {
		if v.Tombstone {
			return !ok
		}
		return ok && bytes.Equal(got, v.Value)
	}
	for i := len(vs) - 1; i >= reqIdx && i >= 0; i-- {
		if vs[i].Start > cutoff {
			continue
		}
		if matches(&vs[i]) {
			return i, nil
		}
	}
	if reqIdx == -1 && !ok {
		return -1, nil
	}

	// Violation. Classify it for the report.
	if ok {
		for i := range vs {
			if vs[i].Start <= cutoff && !vs[i].Tombstone && bytes.Equal(got, vs[i].Value) {
				// The value was written, but before a version that the
				// cutoff made mandatory: a lost acknowledged write.
				return 0, fmt.Errorf("key %q: recovered stale value %q (version %d) but version %d was durably acked at step %d ≤ cutoff %d",
					key, got, i, reqIdx, vs[reqIdx].Ack, cutoff)
			}
		}
		return 0, fmt.Errorf("key %q: recovered fabricated value %q never written at or before cutoff %d", key, got, cutoff)
	}
	return 0, fmt.Errorf("key %q: missing after recovery, but version %d (%q) was durably acked at step %d ≤ cutoff %d",
		key, reqIdx, vs[reqIdx].Value, vs[reqIdx].Ack, cutoff)
}

// CheckBatchAtomicity takes the per-key matchIdx map produced by calling
// CheckCrash on every model key against one crash image, and reports every
// atomic batch that recovered split: one member's own version visible
// while another member still shows pre-batch state. Because a batch is a
// single WAL record, any such split is a real atomicity violation.
//
// Only a value (non-tombstone) member counts as applied evidence: an
// absent key matches a tombstone member whether or not the batch reached
// the medium, so a tombstone match proves nothing by itself.
func (m *Model) CheckBatchAtomicity(match map[string]int) []error {
	m.mu.Lock()
	defer m.mu.Unlock()
	var errs []error
	for id, members := range m.batches {
		appliedKey, missingKey := "", ""
		for _, mem := range members {
			mi, checked := match[mem.key]
			if !checked {
				continue
			}
			if mi == mem.idx && !m.keys[mem.key][mem.idx].Tombstone {
				appliedKey = mem.key
			} else if mi < mem.idx {
				missingKey = mem.key
			}
		}
		if appliedKey != "" && missingKey != "" {
			errs = append(errs, fmt.Errorf("batch %d split by recovery: member %q applied, member %q still pre-batch", id, appliedKey, missingKey))
		}
	}
	return errs
}
