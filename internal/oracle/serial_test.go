package oracle

import (
	"strings"
	"testing"
)

func rec(id int, snap, commit uint64, reads []TxnRead, writes []TxnOp) TxnRecord {
	return TxnRecord{ID: id, SnapshotTS: snap, CommitTS: commit, Reads: reads, Writes: writes}
}

func rd(key, val string) TxnRead {
	if val == "" {
		return TxnRead{Key: key, Exists: false}
	}
	return TxnRead{Key: key, Value: []byte(val), Exists: true}
}

func wr(key, val string) TxnOp {
	if val == "" {
		return TxnOp{Key: key, Tombstone: true}
	}
	return TxnOp{Key: key, Value: []byte(val)}
}

// A clean OCC history — each txn's reads reflect the newest committed
// version at its snapshot — must admit a serial order.
func TestCheckSerializableAccepts(t *testing.T) {
	txns := []TxnRecord{
		rec(1, 0, 10, nil, []TxnOp{wr("a", "a1"), wr("b", "b1")}),
		rec(2, 11, 20, []TxnRead{rd("a", "a1")}, []TxnOp{wr("a", "a2")}),
		rec(3, 25, 30, []TxnRead{rd("a", "a2"), rd("b", "b1")}, []TxnOp{wr("c", "c3")}),
		// Read-only txn observing an old snapshot: serializes early.
		rec(4, 12, 35, []TxnRead{rd("a", "a1"), rd("c", "")}, nil),
		// Tombstone then read-absent.
		rec(5, 31, 40, []TxnRead{rd("c", "c3")}, []TxnOp{wr("c", "")}),
		rec(6, 41, 50, []TxnRead{rd("c", "")}, []TxnOp{wr("b", "b6")}),
	}
	order, err := CheckSerializable(txns)
	if err != nil {
		t.Fatalf("valid history rejected: %v", err)
	}
	if len(order) != len(txns) {
		t.Fatalf("serial order has %d txns, want %d", len(order), len(txns))
	}
	// txn 4 must serialize before txn 2 (it read a1, which 2 overwrote).
	pos := map[int]int{}
	for i, id := range order {
		pos[id] = i
	}
	if pos[4] > pos[2] {
		t.Fatalf("serial order %v places txn 4 after txn 2, but 4 read the version 2 overwrote", order)
	}
}

// Write skew: T1 reads a and writes b, T2 reads b and writes a, both from
// the same initial snapshot. Snapshot isolation admits it; serializability
// does not — the checker must report the rw/rw cycle.
func TestCheckSerializableDetectsWriteSkew(t *testing.T) {
	setup := rec(1, 0, 10, nil, []TxnOp{wr("a", "a0"), wr("b", "b0")})
	t1 := rec(2, 15, 20, []TxnRead{rd("a", "a0")}, []TxnOp{wr("b", "b-skew")})
	t2 := rec(3, 15, 30, []TxnRead{rd("b", "b0")}, []TxnOp{wr("a", "a-skew")})
	_, err := CheckSerializable([]TxnRecord{setup, t1, t2})
	if err == nil {
		t.Fatal("write-skew history accepted")
	}
	if !strings.Contains(err.Error(), "rw") || !strings.Contains(err.Error(), "txn 2") || !strings.Contains(err.Error(), "txn 3") {
		t.Fatalf("cycle report %q does not name the rw edges between txn 2 and txn 3", err)
	}
}

// An observation that matches no version at the snapshot is a consistency
// violation even without a cycle.
func TestCheckSerializableDetectsBadRead(t *testing.T) {
	txns := []TxnRecord{
		rec(1, 0, 10, nil, []TxnOp{wr("a", "a1")}),
		// Claims to have read a value nobody had written by its snapshot.
		rec(2, 11, 20, []TxnRead{rd("a", "a-future")}, []TxnOp{wr("b", "b2")}),
	}
	if _, err := CheckSerializable(txns); err == nil {
		t.Fatal("fabricated read accepted")
	}
	// Reading a version before it committed is equally illegal.
	txns = []TxnRecord{
		rec(1, 0, 10, nil, []TxnOp{wr("a", "a1")}),
		rec(2, 5, 20, []TxnRead{rd("a", "a1")}, nil), // snapshot 5 < commit 10
	}
	if _, err := CheckSerializable(txns); err == nil {
		t.Fatal("read from the future accepted")
	}
}

func TestCheckSerializableDuplicateCommitTS(t *testing.T) {
	txns := []TxnRecord{
		rec(1, 0, 10, nil, []TxnOp{wr("a", "x")}),
		rec(2, 0, 10, nil, []TxnOp{wr("b", "y")}),
	}
	if _, err := CheckSerializable(txns); err == nil {
		t.Fatal("duplicate commit timestamps accepted")
	}
}

func TestHistoryVersionsIn(t *testing.T) {
	h := NewHistory()
	h.Add(rec(1, 0, 10, nil, []TxnOp{wr("a", "a1")}))
	h.Add(rec(2, 11, 20, nil, []TxnOp{wr("a", "a2"), wr("b", "b2")}))
	h.Add(rec(3, 21, 30, nil, []TxnOp{wr("b", "b3")}))

	if got := h.VersionsIn("a", 0, 30); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("VersionsIn(a, 0, 30) = %v, want [1 2]", got)
	}
	// Half-open interval: lo exclusive, hi inclusive.
	if got := h.VersionsIn("a", 10, 20); len(got) != 1 || got[0] != 2 {
		t.Fatalf("VersionsIn(a, 10, 20) = %v, want [2]", got)
	}
	if got := h.VersionsIn("b", 20, 25); len(got) != 0 {
		t.Fatalf("VersionsIn(b, 20, 25) = %v, want empty", got)
	}
	// A committed reader of "a" at snapshot 11, commit 20 must see an empty
	// interval — the invariant concurrent harnesses assert per read key.
	if got := h.VersionsIn("a", 11, 19); len(got) != 0 {
		t.Fatalf("validation interval not empty: %v", got)
	}
}

func TestModelVersionsIn(t *testing.T) {
	m := NewModel()
	m.Begin(5, Op{Key: "k", Value: []byte("v1")}).Ack(6)
	m.Begin(10, Op{Key: "k", Value: []byte("v2")}).Ack(12)
	m.Begin(20, Op{Key: "k", Tombstone: true}).Ack(22)

	if got := m.VersionsIn("k", 0, 30); len(got) != 3 {
		t.Fatalf("VersionsIn = %v, want 3 versions", got)
	}
	if got := m.VersionsIn("k", 5, 10); len(got) != 1 || got[0] != 1 {
		t.Fatalf("VersionsIn(5,10] = %v, want [1]", got)
	}
	if got := m.VersionsIn("k", 20, 30); len(got) != 0 {
		t.Fatalf("VersionsIn(20,30] = %v, want empty (start 20 excluded)", got)
	}
	if got := m.VersionsIn("absent", 0, 100); len(got) != 0 {
		t.Fatalf("VersionsIn(absent) = %v", got)
	}
}

// The checker must catch a lost update: two txns read the same version and
// both overwrote it (the classic race OCC validation exists to prevent).
func TestCheckSerializableDetectsLostUpdate(t *testing.T) {
	txns := []TxnRecord{
		rec(1, 0, 10, nil, []TxnOp{wr("x", "0")}),
		rec(2, 12, 20, []TxnRead{rd("x", "0")}, []TxnOp{wr("x", "1")}),
		// Also read "0" (snapshot taken before txn 2 committed) but
		// committed after txn 2: its update clobbers txn 2's.
		rec(3, 12, 30, []TxnRead{rd("x", "0")}, []TxnOp{wr("x", "1b")}),
	}
	_, err := CheckSerializable(txns)
	if err == nil {
		t.Fatal("lost update accepted")
	}
	if !strings.Contains(err.Error(), "rw") {
		t.Fatalf("report %q lacks the rw anti-dependency", err)
	}
}
