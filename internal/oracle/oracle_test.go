package oracle

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestGetTSMonotonic(t *testing.T) {
	o := New()
	ts1, s1 := o.GetTS()
	ts2, s2 := o.GetTS()
	if ts2 <= ts1 {
		t.Fatalf("timestamps not increasing: %d then %d", ts1, ts2)
	}
	o.Done(s1)
	o.Done(s2)
}

func TestActiveSetAddRemoveFindMin(t *testing.T) {
	var s ActiveSet
	if s.FindMin() != 0 {
		t.Fatal("empty set FindMin != 0")
	}
	a := s.Add(10)
	b := s.Add(5)
	c := s.Add(20)
	if m := s.FindMin(); m != 5 {
		t.Fatalf("FindMin = %d, want 5", m)
	}
	s.Remove(b)
	if m := s.FindMin(); m != 10 {
		t.Fatalf("FindMin = %d, want 10", m)
	}
	s.Remove(a)
	s.Remove(c)
	if s.FindMin() != 0 {
		t.Fatal("set should be empty")
	}
}

// The Fig. 3 scenario: a snapshot must not land at or above an active put
// timestamp.
func TestSnapshotBelowActivePuts(t *testing.T) {
	o := New()
	ts1, s1 := o.GetTS() // active put, not yet written
	_, s2 := o.GetTS()   // another active put
	// Fig. 3 of the paper: with timestamps ts1, ts1+1 both active, the
	// snapshot must land below ts1. The fence is ts1-1, which is below
	// both active timestamps, so SnapshotTS does not block here.
	got := o.SnapshotTS()
	if got >= ts1 {
		t.Fatalf("snapshot %d >= active put ts %d", got, ts1)
	}
	o.Done(s1)
	o.Done(s2)
}

// The Fig. 4 race: a put whose timestamp is at or below snapTime must roll
// back and draw a fresh one.
func TestPutRollsBackBelowSnapTime(t *testing.T) {
	o := New()
	ts, slot := o.GetTS()
	o.Done(slot)
	snap := o.SnapshotTS()
	if snap < ts {
		t.Fatalf("snapshot %d below completed put %d", snap, ts)
	}
	ts2, slot2 := o.GetTS()
	if ts2 <= snap {
		t.Fatalf("new put ts %d not above snapTime %d", ts2, snap)
	}
	o.Done(slot2)
}

func TestSnapshotMonotonic(t *testing.T) {
	o := New()
	var prev uint64
	for i := 0; i < 100; i++ {
		ts, slot := o.GetTS()
		o.Done(slot)
		_ = ts
		s := o.SnapshotTS()
		if s < prev {
			t.Fatalf("snapshot time moved backwards: %d then %d", prev, s)
		}
		prev = s
	}
}

func TestAdvance(t *testing.T) {
	o := New()
	o.Advance(1000)
	if o.Now() != 1000 {
		t.Fatalf("Now = %d", o.Now())
	}
	o.Advance(500) // never moves backwards
	if o.Now() != 1000 {
		t.Fatalf("Now after backwards Advance = %d", o.Now())
	}
	ts, slot := o.GetTS()
	o.Done(slot)
	if ts != 1001 {
		t.Fatalf("ts after Advance = %d", ts)
	}
}

func TestSnapshotListMin(t *testing.T) {
	o := New()
	if o.MinSnapshot() != 0 {
		t.Fatal("MinSnapshot on empty list")
	}
	o.InstallSnapshot(30)
	o.InstallSnapshot(10)
	o.InstallSnapshot(10)
	o.InstallSnapshot(20)
	if m := o.MinSnapshot(); m != 10 {
		t.Fatalf("MinSnapshot = %d", m)
	}
	o.ReleaseSnapshot(10)
	if m := o.MinSnapshot(); m != 10 {
		t.Fatalf("MinSnapshot after one release = %d (refcounted)", m)
	}
	o.ReleaseSnapshot(10)
	if m := o.MinSnapshot(); m != 20 {
		t.Fatalf("MinSnapshot = %d", m)
	}
}

// Serializability core property under concurrency: every snapshot timestamp
// must be fully "settled" — no put may later insert with a timestamp at or
// below any returned snapshot unless that put's timestamp was already
// removed from Active before the snapshot was taken.
func TestConcurrentPutsAndSnapshots(t *testing.T) {
	o := New()
	var putters, snappers sync.WaitGroup
	var maxSnap atomic.Uint64
	var violations atomic.Int64
	stop := make(chan struct{})

	for w := 0; w < 4; w++ {
		putters.Add(1)
		go func() {
			defer putters.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ts, slot := o.GetTS()
				// Simulate the memtable insert: by Algorithm 2 the insert
				// happens while ts is in Active. If a snapshot >= ts was
				// already fixed, serializability is broken.
				if s := maxSnap.Load(); s >= ts {
					violations.Add(1)
				}
				o.Done(slot)
			}
		}()
	}
	for w := 0; w < 2; w++ {
		snappers.Add(1)
		go func() {
			defer snappers.Done()
			for i := 0; i < 2000; i++ {
				s := o.SnapshotTS()
				for {
					cur := maxSnap.Load()
					if s <= cur || maxSnap.CompareAndSwap(cur, s) {
						break
					}
				}
			}
		}()
	}
	snappers.Wait()
	close(stop)
	putters.Wait()
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d serializability violations", v)
	}
}

func TestGetTSParallelUnique(t *testing.T) {
	o := New()
	const workers = 8
	const per = 5000
	seen := make([]map[uint64]bool, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		seen[w] = make(map[uint64]bool, per)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				ts, slot := o.GetTS()
				seen[w][ts] = true
				o.Done(slot)
			}
		}(w)
	}
	wg.Wait()
	all := make(map[uint64]bool)
	for w := range seen {
		for ts := range seen[w] {
			if all[ts] {
				t.Fatalf("duplicate timestamp %d", ts)
			}
			all[ts] = true
		}
	}
	if len(all) != workers*per {
		t.Fatalf("got %d unique timestamps, want %d", len(all), workers*per)
	}
}
