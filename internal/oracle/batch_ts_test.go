package oracle

import "testing"

func TestGetTSBatchContiguous(t *testing.T) {
	o := New()
	first, slot := o.GetTSBatch(5)
	if first != 1 {
		t.Fatalf("first = %d", first)
	}
	if o.Now() != 5 {
		t.Fatalf("counter = %d, want 5", o.Now())
	}
	// The range's lower bound is active, fencing snapshots below it.
	if m := o.ActiveMin(); m != first {
		t.Fatalf("ActiveMin = %d, want %d", m, first)
	}
	// A snapshot taken while the batch is in flight must land strictly
	// below the whole range (it cannot see half a batch).
	if snap := o.SnapshotTS(); snap >= first {
		t.Fatalf("snapshot %d inside/after active batch starting at %d", snap, first)
	}
	o.Done(slot)
	// Once the batch is committed, snapshots may cover it entirely.
	if snap := o.SnapshotTS(); snap < 5 {
		t.Fatalf("post-batch snapshot %d below committed range end 5", snap)
	}
}

func TestGetTSBatchZero(t *testing.T) {
	o := New()
	first, slot := o.GetTSBatch(0) // treated as 1
	o.Done(slot)
	if first != 1 || o.Now() != 1 {
		t.Fatalf("first=%d now=%d", first, o.Now())
	}
}

func TestGetTSBatchRollsBackUnderFence(t *testing.T) {
	o := New()
	// Take a snapshot to raise the fence.
	ts, slot := o.GetTS()
	o.Done(slot)
	fence := o.SnapshotTS()
	if fence < ts {
		t.Fatalf("fence %d < %d", fence, ts)
	}
	// A batch must start strictly above the fence.
	first, slot2 := o.GetTSBatch(3)
	defer o.Done(slot2)
	if first <= fence {
		t.Fatalf("batch first %d <= fence %d", first, fence)
	}
}
