package shard

import (
	"fmt"
	"testing"
	"time"

	"clsm/internal/cache"
	"clsm/internal/core"
	"clsm/internal/obs"
	"clsm/internal/storage"
)

// TestGovernorShiftsBudget drives a skewed workload — every write lands
// on shard 0 — and asserts the adaptive governor moves memtable quota
// from the idle shard to the hot one while respecting floor and total
// budget.
func TestGovernorShiftsBudget(t *testing.T) {
	const (
		total = 16 << 20
		mem   = 1 << 20
	)
	pool := cache.New(2 << 20)
	var opts Options
	for i := 0; i < 2; i++ {
		opts.Engines = append(opts.Engines, core.Options{
			FS:           storage.NewMemFS(),
			MemtableSize: mem,
			BlockCache:   pool.View(i),
			Observer:     obs.New(),
		})
	}
	opts.Governor = GovernorConfig{
		TotalBytes: total,
		Cache:      pool,
		Interval:   2 * time.Millisecond,
	}
	db := mustOpen(t, opts)
	defer db.Close()

	// Collect keys that route to shard 0 of 2.
	var hot [][]byte
	for i := 0; len(hot) < 512; i++ {
		k := []byte(fmt.Sprintf("hot%06d", i))
		if IndexOf(k, 2) == 0 {
			hot = append(hot, k)
		}
	}
	val := make([]byte, 4<<10)
	deadline := time.Now().Add(3 * time.Second)
	shifted := false
	for time.Now().Before(deadline) {
		for _, k := range hot {
			if err := db.Put(k, val); err != nil {
				t.Fatal(err)
			}
		}
		b := db.MemtableBudgets()
		if b[0] > b[1] {
			shifted = true
			break
		}
	}
	b := db.MemtableBudgets()
	if !shifted {
		t.Fatalf("governor never shifted quota to the hot shard: budgets %v", b)
	}
	// Floors respected and the split stays inside the total budget.
	floor := opts.Governor.ShardFloor
	if floor == 0 {
		floor = 256 << 10 // default clamp
	}
	if b[1] < floor {
		t.Errorf("cold shard squeezed below floor: %d < %d", b[1], floor)
	}
	if sum := b[0] + b[1] + pool.Capacity(); sum > total+total/8 {
		t.Errorf("memtable quotas + cache exceed budget: %d > %d", sum, total)
	}
}

// TestGovernorStatic: Static mode must leave the configured budgets
// untouched no matter the workload.
func TestGovernorStatic(t *testing.T) {
	opts := testOptions(2, 1<<20)
	opts.Governor = GovernorConfig{TotalBytes: 16 << 20, Static: true}
	db := mustOpen(t, opts)
	defer db.Close()
	for i := 0; i < 2000; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%05d", i)), make([]byte, 512)); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(50 * time.Millisecond)
	for i, b := range db.MemtableBudgets() {
		if b != 1<<20 {
			t.Errorf("static governor changed shard %d budget to %d", i, b)
		}
	}
}

// TestAggregatedObserver: the facade Observer must sum counters across
// shards.
func TestAggregatedObserver(t *testing.T) {
	db := mustOpen(t, testOptions(3, 1<<20))
	defer db.Close()
	for i := 0; i < 300; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%05d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	agg := db.Observer()
	var perShard uint64
	for _, o := range db.Observers() {
		perShard += o.WALAppends.Load()
	}
	if got := agg.WALAppends.Load(); got != perShard {
		t.Errorf("aggregate WALAppends = %d, per-shard sum = %d", got, perShard)
	}
	if perShard == 0 {
		t.Error("no WAL appends recorded across shards")
	}
}
