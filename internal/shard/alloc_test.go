//go:build !race

package shard

import (
	"fmt"
	"runtime"
	"testing"
)

// The acceptance bar from the unsharded engine carries through the
// facade: routing (inline FNV-1a) and the shard dispatch must not add
// allocations on the hot paths.

func TestWritePathAllocs(t *testing.T) {
	opts := testOptions(4, 256<<20)
	db := mustOpen(t, opts)
	defer db.Close()

	key := []byte("alloc-bench-key")
	value := []byte("alloc-bench-value-0123456789")
	for i := 0; i < 2000; i++ {
		if err := db.Put(key, value); err != nil {
			t.Fatal(err)
		}
	}
	runtime.GC()
	avg := testing.AllocsPerRun(5000, func() {
		if err := db.Put(key, value); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 1 {
		t.Fatalf("sharded Put allocates %.2f allocs/op, want <= 1", avg)
	}
}

func TestGetPathAllocs(t *testing.T) {
	opts := testOptions(4, 256<<20)
	db := mustOpen(t, opts)
	defer db.Close()

	for i := 0; i < 512; i++ {
		k := []byte(fmt.Sprintf("key%06d", i))
		if err := db.Put(k, []byte("value-0123456789")); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.CompactRange(); err != nil {
		t.Fatal(err)
	}
	key := []byte("key000256")
	for i := 0; i < 200; i++ {
		if _, _, err := db.Get(key); err != nil {
			t.Fatal(err)
		}
	}
	runtime.GC()
	avg := testing.AllocsPerRun(5000, func() {
		if _, _, err := db.Get(key); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 1 {
		t.Fatalf("sharded Get allocates %.2f allocs/op, want <= 1", avg)
	}
}
