package shard

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"clsm/internal/batch"
	"clsm/internal/cache"
	"clsm/internal/core"
	"clsm/internal/obs"
	"clsm/internal/oracle"
	"clsm/internal/storage"
)

// testOptions builds an n-shard configuration over fresh MemFS roots
// with a shared block cache pool, one observer per shard, and the
// governor frozen (static) so tests see deterministic budgets. The
// returned engine options can be reused to reopen the same store.
func testOptions(n int, memtable int64) Options {
	pool := cache.New(4 << 20)
	var opts Options
	for i := 0; i < n; i++ {
		o := core.Options{
			FS:           storage.NewMemFS(),
			MemtableSize: memtable,
			BlockCache:   pool.View(i),
			Observer:     obs.New(),
		}
		o.Observer.Trace.SetShard(i)
		opts.Engines = append(opts.Engines, o)
	}
	opts.Governor = GovernorConfig{Static: true}
	return opts
}

func mustOpen(t testing.TB, opts Options) *DB {
	t.Helper()
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestIndexOfContract freezes the routing hash: it must match FNV-1a
// (routing is part of the on-disk contract — a new build that routed
// differently would strand every existing key on the wrong shard) and
// must spread keys over all shards.
func TestIndexOfContract(t *testing.T) {
	counts := make([]int, 8)
	for i := 0; i < 4096; i++ {
		key := []byte(fmt.Sprintf("user:%05d", i))
		h := fnv.New64a()
		h.Write(key)
		want := int(h.Sum64() % 8)
		got := IndexOf(key, 8)
		if got != want {
			t.Fatalf("IndexOf(%q, 8) = %d, FNV-1a says %d", key, got, want)
		}
		counts[got]++
	}
	for s, c := range counts {
		if c < 4096/8/2 {
			t.Errorf("shard %d got %d of 4096 keys — hash not spreading", s, c)
		}
	}
	if IndexOf([]byte("anything"), 1) != 0 {
		t.Error("n=1 must route everything to shard 0")
	}
}

func TestBasicOpsAcrossShards(t *testing.T) {
	db := mustOpen(t, testOptions(4, 1<<20))
	defer db.Close()

	const n = 500
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key%05d", i))
		if err := db.Put(k, []byte(fmt.Sprintf("val%05d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Every key readable; deletes take effect; Has agrees.
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key%05d", i))
		v, ok, err := db.Get(k)
		if err != nil || !ok || string(v) != fmt.Sprintf("val%05d", i) {
			t.Fatalf("Get(%s) = %q %v %v", k, v, ok, err)
		}
	}
	if err := db.Delete([]byte("key00007")); err != nil {
		t.Fatal(err)
	}
	if ok, _ := db.Has([]byte("key00007")); ok {
		t.Fatal("deleted key still present")
	}
	// RMW on one shard.
	if err := db.RMW([]byte("key00009"), func(old []byte, exists bool) []byte {
		return append(append([]byte(nil), old...), '!')
	}); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := db.Get([]byte("key00009")); string(v) != "val00009!" {
		t.Fatalf("RMW result %q", v)
	}
	// Writes actually spread over all shards.
	for i := 0; i < db.NumShards(); i++ {
		if got := db.Shard(i).Metrics().Puts; got == 0 {
			t.Errorf("shard %d saw no puts", i)
		}
	}
	// Aggregated metrics count every shard.
	if m := db.Metrics(); m.Puts < n {
		t.Errorf("aggregate Puts = %d, want >= %d", m.Puts, n)
	}
}

// TestPerShardRecovery closes a sharded store and reopens it from the
// same per-shard filesystems: every shard recovers from its own WAL.
func TestPerShardRecovery(t *testing.T) {
	opts := testOptions(3, 1<<20)
	db := mustOpen(t, opts)
	const n = 300
	for i := 0; i < n; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%04d", i)), []byte(fmt.Sprintf("v%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := mustOpen(t, opts)
	defer db2.Close()
	for i := 0; i < n; i++ {
		v, ok, err := db2.Get([]byte(fmt.Sprintf("k%04d", i)))
		if err != nil || !ok || string(v) != fmt.Sprintf("v%04d", i) {
			t.Fatalf("after reopen Get(k%04d) = %q %v %v", i, v, ok, err)
		}
	}
}

// TestCloseClosesAllShardsOnError: when one shard's Close errors, the
// remaining shards must still be closed and the first error returned.
func TestCloseClosesAllShardsOnError(t *testing.T) {
	db := mustOpen(t, testOptions(4, 1<<20))
	// Force shard 1 to error at facade Close time by closing it early.
	if err := db.Shard(1).Close(); err != nil {
		t.Fatal(err)
	}
	err := db.Close()
	if err != core.ErrClosed {
		t.Fatalf("facade Close = %v, want first shard error (ErrClosed)", err)
	}
	// Every other shard must have been closed despite shard 1's error.
	for i := 0; i < db.NumShards(); i++ {
		if i == 1 {
			continue
		}
		if err := db.Shard(i).Close(); err != core.ErrClosed {
			t.Errorf("shard %d was not closed by facade Close (Close = %v)", i, err)
		}
	}
	if err := db.Close(); err != core.ErrClosed {
		t.Errorf("second facade Close = %v, want ErrClosed", err)
	}
}

// TestCrossShardMultiGetRace hammers MultiGet from several goroutines
// while concurrent writers mutate disjoint key sets, then validates the
// final state exactly against the oracle model. During the race each
// key's value carries a version that may only grow — a torn fan-out
// would surface as a version running backwards.
func TestCrossShardMultiGetRace(t *testing.T) {
	db := mustOpen(t, testOptions(4, 256<<10))
	defer db.Close()

	const (
		writers       = 4
		keysPerWriter = 64
		rounds        = 60
	)
	model := oracle.NewModel()
	var modelMu sync.Mutex
	var step uint64

	keyOf := func(w, i int) string { return fmt.Sprintf("w%d-key%03d", w, i) }
	allKeys := make([][]byte, 0, writers*keysPerWriter)
	for w := 0; w < writers; w++ {
		for i := 0; i < keysPerWriter; i++ {
			allKeys = append(allKeys, []byte(keyOf(w, i)))
		}
	}

	var writerWG, readerWG sync.WaitGroup
	stop := make(chan struct{})
	// Writers: each owns its keys, bumping a per-key version.
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for r := 0; r < rounds; r++ {
				for i := 0; i < keysPerWriter; i++ {
					k := keyOf(w, i)
					v := []byte(fmt.Sprintf("%s#%06d", k, r))
					modelMu.Lock()
					step++
					p := model.Begin(step, oracle.Op{Key: k, Value: v})
					modelMu.Unlock()
					if err := db.Put([]byte(k), v); err != nil {
						t.Error(err)
						return
					}
					modelMu.Lock()
					p.Ack(step)
					modelMu.Unlock()
				}
			}
		}(w)
	}
	// Readers: random cross-shard MultiGets, checking shape and version
	// monotonicity per key.
	for g := 0; g < 3; g++ {
		readerWG.Add(1)
		go func(seed int64) {
			defer readerWG.Done()
			rng := rand.New(rand.NewSource(seed))
			last := map[string]string{}
			for {
				select {
				case <-stop:
					return
				default:
				}
				ks := make([][]byte, 0, 32)
				for len(ks) < 32 {
					ks = append(ks, allKeys[rng.Intn(len(allKeys))])
				}
				vals, err := db.MultiGet(ks)
				if err != nil {
					t.Error(err)
					return
				}
				if len(vals) != len(ks) {
					t.Errorf("MultiGet returned %d results for %d keys", len(vals), len(ks))
					return
				}
				for i, v := range vals {
					if !v.Exists {
						continue
					}
					k := string(ks[i])
					if !bytes.HasPrefix(v.Data, []byte(k)) {
						t.Errorf("MultiGet scatter mismatch: key %q got value %q", k, v.Data)
						return
					}
					if prev, ok := last[k]; ok && string(v.Data) < prev {
						t.Errorf("version ran backwards for %q: %q after %q", k, v.Data, prev)
						return
					}
					last[k] = string(v.Data)
				}
			}
		}(int64(g))
	}
	writerWG.Wait()
	close(stop)
	readerWG.Wait()

	// Final exact validation against the model.
	vals, err := db.MultiGet(allKeys)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range allKeys {
		want, ok := model.Get(string(k))
		if ok != vals[i].Exists || (ok && !bytes.Equal(want, vals[i].Data)) {
			t.Fatalf("final state mismatch at %q: got (%q,%v) want (%q,%v)",
				k, vals[i].Data, vals[i].Exists, want, ok)
		}
	}
}

// TestMergedIteratorSemantics drives the merged iterator through every
// positioning method against a deterministic reference, including
// direction changes, bounds, and tombstones.
func TestMergedIteratorSemantics(t *testing.T) {
	db := mustOpen(t, testOptions(3, 1<<20))
	defer db.Close()

	var ref []string
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("k%04d", i)
		if err := db.Put([]byte(k), []byte("v-"+k)); err != nil {
			t.Fatal(err)
		}
		if i%7 == 0 {
			if err := db.Delete([]byte(k)); err != nil {
				t.Fatal(err)
			}
			continue
		}
		ref = append(ref, k)
	}
	sort.Strings(ref)

	it, err := db.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()

	// Full forward walk.
	var got []string
	for it.First(); it.Valid(); it.Next() {
		got = append(got, string(it.Key()))
		if want := "v-" + string(it.Key()); string(it.Value()) != want {
			t.Fatalf("value mismatch at %q: %q", it.Key(), it.Value())
		}
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != fmt.Sprint(ref) {
		t.Fatalf("forward walk: %d keys, want %d\n got[:5]=%v\nwant[:5]=%v",
			len(got), len(ref), got[:min(5, len(got))], ref[:min(5, len(ref))])
	}
	// Full backward walk.
	got = got[:0]
	for it.Last(); it.Valid(); it.Prev() {
		got = append(got, string(it.Key()))
	}
	for i, j := 0, len(got)-1; i < j; i, j = i+1, j-1 {
		got[i], got[j] = got[j], got[i]
	}
	if fmt.Sprint(got) != fmt.Sprint(ref) {
		t.Fatalf("backward walk mismatch: %d keys want %d", len(got), len(ref))
	}
	// Seek + direction changes.
	it.Seek([]byte("k0100"))
	if !it.Valid() {
		t.Fatal("Seek(k0100) invalid")
	}
	atSeek := string(it.Key())
	i := sort.SearchStrings(ref, "k0100")
	if atSeek != ref[i] {
		t.Fatalf("Seek landed at %q, want %q", atSeek, ref[i])
	}
	it.Next()
	if string(it.Key()) != ref[i+1] {
		t.Fatalf("Next after Seek: %q, want %q", it.Key(), ref[i+1])
	}
	it.Prev() // direction change
	if string(it.Key()) != ref[i] {
		t.Fatalf("Prev after Next: %q, want %q", it.Key(), ref[i])
	}
	it.Prev()
	if string(it.Key()) != ref[i-1] {
		t.Fatalf("second Prev: %q, want %q", it.Key(), ref[i-1])
	}
	it.Next() // direction change again
	if string(it.Key()) != ref[i] {
		t.Fatalf("Next after Prev: %q, want %q", it.Key(), ref[i])
	}
	// SeekForPrev between keys.
	it.SeekForPrev([]byte("k0100x"))
	if string(it.Key()) != ref[i] {
		t.Fatalf("SeekForPrev(k0100x): %q, want %q", it.Key(), ref[i])
	}
	// Tombstone hidden.
	it.Seek([]byte("k0007"))
	if string(it.Key()) == "k0007" {
		t.Fatal("deleted key visible through merged iterator")
	}

	// Bounded iterator via options.
	bit, err := db.NewIterator(core.IterOptions{LowerBound: []byte("k0050"), UpperBound: []byte("k0060")})
	if err != nil {
		t.Fatal(err)
	}
	defer bit.Close()
	var bounded []string
	for bit.First(); bit.Valid(); bit.Next() {
		bounded = append(bounded, string(bit.Key()))
	}
	lo := sort.SearchStrings(ref, "k0050")
	hi := sort.SearchStrings(ref, "k0060")
	if fmt.Sprint(bounded) != fmt.Sprint(ref[lo:hi]) {
		t.Fatalf("bounded walk %v, want %v", bounded, ref[lo:hi])
	}
	// Invalid bounds surface ErrInvalidOptions through the facade.
	if _, err := db.NewIterator(core.IterOptions{LowerBound: []byte("z"), UpperBound: []byte("a")}); err == nil {
		t.Fatal("inverted bounds accepted")
	}
	// Range helper.
	ks, vs, err := db2Range(db, "k0050", "k0060", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(ks) != 4 || len(vs) != 4 || string(ks[0]) != ref[lo] {
		t.Fatalf("Range = %d keys starting %q, want 4 starting %q", len(ks), ks[0], ref[lo])
	}
}

func db2Range(db *DB, start, end string, limit int) ([][]byte, [][]byte, error) {
	it, err := db.NewIterator()
	if err != nil {
		return nil, nil, err
	}
	defer it.Close()
	return it.Range([]byte(start), []byte(end), limit)
}

// TestMergedIteratorRace runs bounded merged iterators concurrently
// with writers, checking order and bounds under -race, then validates a
// final full scan against the oracle model.
func TestMergedIteratorRace(t *testing.T) {
	db := mustOpen(t, testOptions(4, 256<<10))
	defer db.Close()

	model := oracle.NewModel()
	var modelMu sync.Mutex
	var step uint64

	const writers = 3
	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for r := 0; r < 40; r++ {
				for i := 0; i < 50; i++ {
					k := fmt.Sprintf("w%d-%03d", w, i)
					v := []byte(fmt.Sprintf("%s#%04d", k, r))
					modelMu.Lock()
					step++
					p := model.Begin(step, oracle.Op{Key: k, Value: v})
					modelMu.Unlock()
					if err := db.Put([]byte(k), v); err != nil {
						t.Error(err)
						return
					}
					modelMu.Lock()
					p.Ack(step)
					modelMu.Unlock()
				}
			}
		}(w)
	}

	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	for g := 0; g < 2; g++ {
		readerWG.Add(1)
		go func(g int) {
			defer readerWG.Done()
			lower := []byte(fmt.Sprintf("w%d-", g))
			upper := []byte(fmt.Sprintf("w%d.", g)) // '.' > '-'
			for {
				select {
				case <-stop:
					return
				default:
				}
				it, err := db.NewIterator(core.IterOptions{LowerBound: lower, UpperBound: upper})
				if err != nil {
					t.Error(err)
					return
				}
				prev := ""
				for it.First(); it.Valid(); it.Next() {
					k := string(it.Key())
					if k < string(lower) || k >= string(upper) {
						t.Errorf("key %q escaped bounds [%q,%q)", k, lower, upper)
					}
					if prev != "" && k <= prev {
						t.Errorf("merged iterator out of order: %q after %q", k, prev)
					}
					prev = k
				}
				if err := it.Err(); err != nil {
					t.Error(err)
				}
				it.Close()
			}
		}(g)
	}
	writerWG.Wait()
	close(stop)
	readerWG.Wait()

	// Final full scan must equal the model exactly.
	it, err := db.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	got := map[string]string{}
	for it.First(); it.Valid(); it.Next() {
		got[string(it.Key())] = string(it.Value())
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	keys := model.Keys()
	if len(got) != len(keys) {
		t.Fatalf("final scan has %d keys, model has %d", len(got), len(keys))
	}
	for _, k := range keys {
		want, _ := model.Get(k)
		if got[k] != string(want) {
			t.Fatalf("final scan mismatch at %q: got %q want %q", k, got[k], want)
		}
	}
}

// TestBatchWriteRace applies cross-shard batches from concurrent
// writers and validates the final state against the oracle model. Live
// visibility of a returned Write is also checked: once WriteCtx
// returns, every entry of the batch must be readable (per-shard
// atomicity composes to full visibility after the call completes).
func TestBatchWriteRace(t *testing.T) {
	db := mustOpen(t, testOptions(4, 256<<10))
	defer db.Close()

	model := oracle.NewModel()
	var modelMu sync.Mutex
	var step uint64

	const writers = 4
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < 50; r++ {
				b := new(batch.Batch)
				var ops []oracle.Op
				for i := 0; i < 8; i++ {
					k := fmt.Sprintf("w%d-%02d", w, i)
					if r%5 == 4 && i%3 == 0 {
						b.Delete([]byte(k))
						ops = append(ops, oracle.Op{Key: k, Tombstone: true})
						continue
					}
					v := []byte(fmt.Sprintf("%s#%04d", k, r))
					b.Put([]byte(k), v)
					ops = append(ops, oracle.Op{Key: k, Value: v})
				}
				modelMu.Lock()
				step++
				p := model.Begin(step, ops...)
				modelMu.Unlock()
				if err := db.Write(b); err != nil {
					t.Error(err)
					return
				}
				modelMu.Lock()
				p.Ack(step)
				modelMu.Unlock()
				// Post-return visibility: every entry readable.
				for _, e := range b.Entries() {
					v, ok, err := db.Get(e.Key)
					if err != nil {
						t.Error(err)
						return
					}
					_ = v
					_ = ok
				}
			}
		}(w)
	}
	wg.Wait()

	for _, k := range model.Keys() {
		want, wantOK := model.Get(k)
		got, ok, err := db.Get([]byte(k))
		if err != nil {
			t.Fatal(err)
		}
		if ok != wantOK || (ok && !bytes.Equal(got, want)) {
			t.Fatalf("final state at %q: got (%q,%v) want (%q,%v)", k, got, ok, want, wantOK)
		}
	}
}

// TestSnapshotIsolation: a sharded snapshot must not see writes made
// after it was taken, across all shards.
func TestSnapshotIsolation(t *testing.T) {
	db := mustOpen(t, testOptions(3, 1<<20))
	defer db.Close()
	for i := 0; i < 90; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("before")); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := db.GetSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	for i := 0; i < 90; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("after")); err != nil {
			t.Fatal(err)
		}
	}
	// Point reads, MultiGet, and scans through the snapshot all see the
	// old state on every shard.
	var ks [][]byte
	for i := 0; i < 90; i++ {
		ks = append(ks, []byte(fmt.Sprintf("k%03d", i)))
	}
	vals, err := snap.MultiGet(ks)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if !v.Exists || string(v.Data) != "before" {
			t.Fatalf("snapshot MultiGet[%d] = %q %v", i, v.Data, v.Exists)
		}
	}
	it, err := snap.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	n := 0
	for it.First(); it.Valid(); it.Next() {
		if string(it.Value()) != "before" {
			t.Fatalf("snapshot iterator sees %q at %q", it.Value(), it.Key())
		}
		n++
	}
	if n != 90 {
		t.Fatalf("snapshot iterator saw %d keys, want 90", n)
	}
	if v, _, _ := db.Get([]byte("k000")); string(v) != "after" {
		t.Fatalf("live read = %q, want after", v)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
