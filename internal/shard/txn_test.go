package shard

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"testing"

	"clsm/internal/batch"
	"clsm/internal/core"
)

// openTxnDB opens an n-shard in-memory store for the txn tests.
func openTxnDB(t *testing.T, n int) *DB {
	t.Helper()
	opts := Options{}
	for i := 0; i < n; i++ {
		opts.Engines = append(opts.Engines, core.Options{})
	}
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

// shardKeys returns one key per requested shard, probing a printable
// keyspace with IndexOf (routing is part of the on-disk contract, so the
// probe is deterministic).
func shardKeys(t *testing.T, n, want int) [][]byte {
	t.Helper()
	out := make([][]byte, want)
	seen := 0
	for i := 0; seen < want && i < 10000; i++ {
		k := []byte(fmt.Sprintf("probe-%04d", i))
		if s := IndexOf(k, n); s < want && out[s] == nil {
			out[s] = k
			seen++
		}
	}
	if seen < want {
		t.Fatalf("could not find keys for %d shards", want)
	}
	return out
}

// TestTxnSingleShard: a transaction whose keys all route to one shard
// commits atomically through the facade, with read-your-writes and
// conflict detection intact.
func TestTxnSingleShard(t *testing.T) {
	db := openTxnDB(t, 4)
	ks := shardKeys(t, 4, 2)
	k := ks[0]

	// Find a second key on k's shard.
	var k2 []byte
	for i := 0; ; i++ {
		c := []byte(fmt.Sprintf("mate-%04d", i))
		if IndexOf(c, 4) == IndexOf(k, 4) {
			k2 = c
			break
		}
	}

	txn, err := db.BeginTxn()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := txn.Get(k); err != nil || ok {
		t.Fatalf("fresh read = %v,%v", ok, err)
	}
	txn.Put(k, []byte("a"))
	txn.Put(k2, []byte("b"))
	if v, ok, _ := txn.Get(k2); !ok || string(v) != "b" {
		t.Fatalf("read-your-writes = %q,%v", v, ok)
	}
	if s := txn.Shard(); s != IndexOf(k, 4) {
		t.Fatalf("pinned shard %d, key routes to %d", s, IndexOf(k, 4))
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := db.Get(k2); !ok || string(v) != "b" {
		t.Fatalf("committed read = %q,%v", v, ok)
	}

	// A conflicting direct write between snapshot and commit conflicts.
	txn2, _ := db.BeginTxn()
	if _, _, err := txn2.Get(k); err != nil {
		t.Fatal(err)
	}
	if err := db.Put(k, []byte("external")); err != nil {
		t.Fatal(err)
	}
	txn2.Put(k2, []byte("c"))
	if err := txn2.Commit(); !errors.Is(err, core.ErrTxnConflict) {
		t.Fatalf("commit after external write = %v, want ErrTxnConflict", err)
	}
}

// TestTxnCrossShardRejected: the second shard's key fails the operation
// with ErrInvalidOptions, the transaction stays usable, and nothing from
// the rejected key ever lands.
func TestTxnCrossShardRejected(t *testing.T) {
	db := openTxnDB(t, 4)
	ks := shardKeys(t, 4, 2)

	txn, err := db.BeginTxn()
	if err != nil {
		t.Fatal(err)
	}
	if err := txn.Put(ks[0], []byte("v0")); err != nil {
		t.Fatal(err)
	}
	if err := txn.Put(ks[1], []byte("v1")); !errors.Is(err, core.ErrInvalidOptions) {
		t.Fatalf("cross-shard Put = %v, want ErrInvalidOptions", err)
	}
	if _, _, err := txn.Get(ks[1]); !errors.Is(err, core.ErrInvalidOptions) {
		t.Fatalf("cross-shard Get = %v, want ErrInvalidOptions", err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatalf("commit on pinned shard after rejection: %v", err)
	}
	if v, ok, _ := db.Get(ks[0]); !ok || string(v) != "v0" {
		t.Fatalf("pinned-shard write = %q,%v", v, ok)
	}
	if _, ok, _ := db.Get(ks[1]); ok {
		t.Fatal("rejected cross-shard write landed")
	}
}

// TestTxnWriteCtxRouting: the stateless form routes to the single owning
// shard and rejects mixed-shard checks/entries without touching any
// engine.
func TestTxnWriteCtxRouting(t *testing.T) {
	db := openTxnDB(t, 4)
	ks := shardKeys(t, 4, 2)
	ctx := context.Background()

	var b batch.Batch
	b.Put(ks[0], []byte("v"))
	checks := []core.ReadCheck{{Key: ks[0], Exists: false}}
	if err := db.TxnWriteCtx(ctx, checks, &b); err != nil {
		t.Fatalf("single-shard TxnWriteCtx: %v", err)
	}
	if v, ok, _ := db.Get(ks[0]); !ok || string(v) != "v" {
		t.Fatalf("committed = %q,%v", v, ok)
	}

	// Entries spanning two shards.
	var b2 batch.Batch
	b2.Put(ks[0], []byte("x"))
	b2.Put(ks[1], []byte("y"))
	if err := db.TxnWriteCtx(ctx, nil, &b2); !errors.Is(err, core.ErrInvalidOptions) {
		t.Fatalf("cross-shard entries = %v, want ErrInvalidOptions", err)
	}
	// Check on one shard, entry on another.
	var b3 batch.Batch
	b3.Put(ks[1], []byte("y"))
	if err := db.TxnWriteCtx(ctx, checks, &b3); !errors.Is(err, core.ErrInvalidOptions) {
		t.Fatalf("check/entry shard mismatch = %v, want ErrInvalidOptions", err)
	}
	if v, _, _ := db.Get(ks[0]); string(v) != "v" {
		t.Fatalf("rejected request mutated state: %q", v)
	}
	if _, ok, _ := db.Get(ks[1]); ok {
		t.Fatal("rejected request wrote the other shard")
	}

	// Empty request is a no-op, not an error.
	if err := db.TxnWriteCtx(ctx, nil, nil); err != nil {
		t.Fatalf("empty TxnWriteCtx: %v", err)
	}
}

// TestTxnShardConcurrent: per-shard counters incremented by concurrent
// retry loops through the facade — lost updates would show up as a short
// final sum; run under -race in check.sh.
func TestTxnShardConcurrent(t *testing.T) {
	const shards = 4
	db := openTxnDB(t, shards)
	keys := shardKeys(t, shards, shards)

	const workers, perWorker = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := keys[w%shards]
			for i := 0; i < perWorker; i++ {
				for {
					err := db.Txn(func(txn *Txn) error {
						v, _, err := txn.Get(key)
						if err != nil {
							return err
						}
						n, _ := strconv.Atoi(string(v))
						return txn.Put(key, []byte(strconv.Itoa(n+1)))
					})
					if err == nil {
						break
					}
					if !errors.Is(err, core.ErrTxnConflict) {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, key := range keys {
		v, _, err := db.Get(key)
		if err != nil {
			t.Fatal(err)
		}
		n, _ := strconv.Atoi(string(v))
		total += n
	}
	if total != workers*perWorker {
		t.Fatalf("counters sum to %d, want %d (lost updates)", total, workers*perWorker)
	}

	m := db.Metrics()
	if m.Txns < uint64(workers*perWorker) {
		t.Fatalf("aggregated Txns = %d, want >= %d", m.Txns, workers*perWorker)
	}
}
