package shard

import (
	"context"
	"fmt"

	"clsm/internal/batch"
	"clsm/internal/core"
)

// Txn is an optimistic transaction on a sharded store. Transactions are
// single-shard: shards are fully independent engines with independent
// oracles and WALs, so a cross-shard transaction would need a distributed
// commit protocol the store deliberately does not have (the same boundary
// batch atomicity stops at — see docs/SHARDING.md). The owning shard is
// pinned by the first operation's key; any later key routing to a
// different shard fails that operation with ErrInvalidOptions, leaving
// the transaction usable on its pinned shard.
//
// Because the shard is unknown until the first operation, the snapshot is
// taken there, not at Begin — indistinguishable to the caller, who cannot
// have observed anything through the transaction before its first read.
type Txn struct {
	db    *DB
	ctx   context.Context // begin context, applied at the deferred begin
	inner *core.Txn
	shard int // pinned shard; -1 until the first operation
	done  bool
}

// BeginTxn starts a transaction (see Txn).
func (db *DB) BeginTxn() (*Txn, error) { return db.BeginTxnCtx(nil) }

// BeginTxnCtx is BeginTxn with a context, checked at the deferred
// per-shard begin.
func (db *DB) BeginTxnCtx(ctx context.Context) (*Txn, error) {
	if db.closed.Load() {
		return nil, core.ErrClosed
	}
	return &Txn{db: db, ctx: ctx, shard: -1}, nil
}

// pin resolves key's shard, beginning the underlying engine transaction
// on first use and rejecting keys owned by any other shard after that.
func (t *Txn) pin(key []byte) (*core.Txn, error) {
	if t.done {
		return nil, fmt.Errorf("transaction already finished: %w", core.ErrClosed)
	}
	s := IndexOf(key, len(t.db.shards))
	if t.inner == nil {
		inner, err := t.db.shards[s].BeginTxnCtx(t.ctx)
		if err != nil {
			return nil, err
		}
		t.shard, t.inner = s, inner
		return inner, nil
	}
	if s != t.shard {
		return nil, fmt.Errorf(
			"%w: transaction pinned to shard %d cannot touch key %q on shard %d (transactions are single-shard)",
			core.ErrInvalidOptions, t.shard, key, s)
	}
	return t.inner, nil
}

// Get reads key at the transaction's snapshot (see core.Txn.Get).
func (t *Txn) Get(key []byte) (value []byte, ok bool, err error) {
	inner, err := t.pin(key)
	if err != nil {
		return nil, false, err
	}
	return inner.Get(key)
}

// Has reports whether key is visible to the transaction.
func (t *Txn) Has(key []byte) (bool, error) {
	_, ok, err := t.Get(key)
	return ok, err
}

// Put buffers (key, value) for commit (see core.Txn.Put).
func (t *Txn) Put(key, value []byte) error {
	inner, err := t.pin(key)
	if err != nil {
		return err
	}
	return inner.Put(key, value)
}

// Delete buffers a deletion marker for key.
func (t *Txn) Delete(key []byte) error {
	inner, err := t.pin(key)
	if err != nil {
		return err
	}
	return inner.Delete(key)
}

// Pending returns the number of buffered writes.
func (t *Txn) Pending() int {
	if t.inner == nil {
		return 0
	}
	return t.inner.Pending()
}

// SnapshotTS exposes the pinned shard's snapshot timestamp (0 before the
// first operation; timestamps are per-shard and only comparable within
// one shard).
func (t *Txn) SnapshotTS() uint64 {
	if t.inner == nil {
		return 0
	}
	return t.inner.SnapshotTS()
}

// CommitTS returns the committed batch's first timestamp on the pinned
// shard, or 0 (see core.Txn.CommitTS).
func (t *Txn) CommitTS() uint64 {
	if t.inner == nil {
		return 0
	}
	return t.inner.CommitTS()
}

// Shard returns the pinned shard index, or -1 if no operation has run.
func (t *Txn) Shard() int { return t.shard }

// Rollback discards the transaction; always safe to defer.
func (t *Txn) Rollback() {
	if t.done {
		return
	}
	t.done = true
	if t.inner != nil {
		t.inner.Rollback()
	}
}

// Commit validates and applies the transaction on its pinned shard. A
// transaction that never ran an operation commits trivially.
func (t *Txn) Commit() error { return t.CommitCtx(nil) }

// CommitCtx is Commit with cancellation (see core.Txn.CommitCtx).
func (t *Txn) CommitCtx(ctx context.Context) error {
	if t.done {
		return fmt.Errorf("transaction already finished: %w", core.ErrClosed)
	}
	t.done = true
	if t.inner == nil {
		return nil
	}
	return t.inner.CommitCtx(ctx)
}

// Txn runs fn inside a transaction: commit on nil, roll back otherwise
// (see core.DB.Txn).
func (db *DB) Txn(fn func(*Txn) error) error { return db.TxnCtx(nil, fn) }

// TxnCtx is Txn with cancellation.
func (db *DB) TxnCtx(ctx context.Context, fn func(*Txn) error) error {
	t, err := db.BeginTxnCtx(ctx)
	if err != nil {
		return err
	}
	if err := fn(t); err != nil {
		t.Rollback()
		return err
	}
	return t.CommitCtx(ctx)
}

// TxnWriteCtx routes a stateless remote transaction to the single shard
// owning every check and entry key, rejecting cross-shard requests with
// ErrInvalidOptions before any engine work happens.
func (db *DB) TxnWriteCtx(ctx context.Context, checks []core.ReadCheck, b *batch.Batch) error {
	if db.closed.Load() {
		return core.ErrClosed
	}
	n := len(db.shards)
	s := -1
	route := func(key []byte) error {
		i := IndexOf(key, n)
		if s == -1 {
			s = i
			return nil
		}
		if i != s {
			return fmt.Errorf(
				"%w: transactional write touches shard %d and shard %d (key %q); transactions are single-shard",
				core.ErrInvalidOptions, s, i, key)
		}
		return nil
	}
	for i := range checks {
		if err := route(checks[i].Key); err != nil {
			return err
		}
	}
	if b != nil {
		for _, e := range b.Entries() {
			if err := route(e.Key); err != nil {
				return err
			}
		}
	}
	if s == -1 {
		return nil // nothing to check, nothing to write
	}
	return db.shards[s].TxnWriteCtx(ctx, checks, b)
}
