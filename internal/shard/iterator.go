package shard

import (
	"bytes"
	"context"

	"clsm/internal/core"
)

// Snapshot is a read-only view of a sharded store: one pinned core
// snapshot per shard. Each shard's view is individually consistent (a
// timestamp from that shard's oracle); the views are acquired together
// but the store has no global timestamp, so a write racing GetSnapshot
// may be visible on one shard's view and not another's. Single-key
// reads and scans are unaffected — every user key lives on exactly one
// shard (docs/SHARDING.md).
type Snapshot struct {
	db    *DB
	snaps []*core.Snapshot
}

// GetSnapshot acquires one snapshot per shard. On error the snapshots
// already acquired are released.
func (db *DB) GetSnapshot() (*Snapshot, error) {
	s := &Snapshot{db: db, snaps: make([]*core.Snapshot, len(db.shards))}
	for i, eng := range db.shards {
		snap, err := eng.GetSnapshot()
		if err != nil {
			for _, acquired := range s.snaps[:i] {
				acquired.Close()
			}
			return nil, err
		}
		s.snaps[i] = snap
	}
	return s, nil
}

// TS returns the largest per-shard snapshot timestamp. Shard oracles
// are independent, so this is an advisory progress number (useful for
// logging), not a cross-shard ordering point.
func (s *Snapshot) TS() uint64 {
	var ts uint64
	for _, snap := range s.snaps {
		if t := snap.TS(); t > ts {
			ts = t
		}
	}
	return ts
}

// Close releases every per-shard snapshot.
func (s *Snapshot) Close() {
	for _, snap := range s.snaps {
		snap.Close()
	}
}

// Get reads key from the owning shard's snapshot.
func (s *Snapshot) Get(key []byte) (value []byte, ok bool, err error) {
	return s.snaps[IndexOf(key, len(s.snaps))].Get(key)
}

// Has reports whether key is present in the owning shard's snapshot.
func (s *Snapshot) Has(key []byte) (bool, error) {
	return s.snaps[IndexOf(key, len(s.snaps))].Has(key)
}

// MultiGet reads every key through the snapshot, fanned out like
// DB.MultiGet.
func (s *Snapshot) MultiGet(ks [][]byte) ([]core.Value, error) {
	return multiGet(context.Background(), ks, len(s.snaps), func(_ context.Context, i int, group [][]byte) ([]core.Value, error) {
		return s.snaps[i].MultiGet(group)
	})
}

// NewIterator returns a merged iterator over every shard's snapshot,
// optionally bounded (core.IterOptions semantics).
func (s *Snapshot) NewIterator(opts ...core.IterOptions) (*Iterator, error) {
	return newIterator(s.snaps, nil, opts)
}

// NewIterator returns a merged iterator over a fresh implicit snapshot.
func (db *DB) NewIterator(opts ...core.IterOptions) (*Iterator, error) {
	snap, err := db.GetSnapshot()
	if err != nil {
		return nil, err
	}
	it, err := newIterator(snap.snaps, snap, opts)
	if err != nil {
		snap.Close()
		return nil, err
	}
	return it, nil
}

func newIterator(snaps []*core.Snapshot, owned *Snapshot, opts []core.IterOptions) (*Iterator, error) {
	it := &Iterator{children: make([]*core.Iterator, len(snaps)), cur: -1, ownedSnap: owned}
	for i, snap := range snaps {
		child, err := snap.NewIterator(opts...)
		if err != nil {
			for _, c := range it.children[:i] {
				c.Close()
			}
			return nil, err
		}
		it.children[i] = child
	}
	return it, nil
}

// Iterator k-way-merges the per-shard iterators into one ascending
// user-key sequence. The hash partition makes per-shard key sets
// disjoint, so the merge is a pure tournament over at most N cursors
// (argmin/argmax scans — N is small, so a heap would buy nothing) with
// no duplicate resolution. Bounds, snapshot visibility, and tombstone
// hiding are all enforced by the children.
type Iterator struct {
	children []*core.Iterator
	cur      int  // index of the child at the merge front; -1 = invalid
	back     bool // last positioning direction was backward
	kbuf     []byte
	// ownedSnap is the implicit snapshot of a DB.NewIterator; closed
	// with the iterator. Nil for snapshot-scoped iterators.
	ownedSnap *Snapshot
}

// First positions at the smallest key.
func (it *Iterator) First() {
	for _, c := range it.children {
		c.First()
	}
	it.back = false
	it.pickMin()
}

// Last positions at the largest key.
func (it *Iterator) Last() {
	for _, c := range it.children {
		c.Last()
	}
	it.back = true
	it.pickMax()
}

// Seek positions at the first key >= key.
func (it *Iterator) Seek(key []byte) {
	for _, c := range it.children {
		c.Seek(key)
	}
	it.back = false
	it.pickMin()
}

// SeekForPrev positions at the last key <= key.
func (it *Iterator) SeekForPrev(key []byte) {
	for _, c := range it.children {
		c.SeekForPrev(key)
	}
	it.back = true
	it.pickMax()
}

// Next advances to the next larger key.
func (it *Iterator) Next() {
	if it.cur < 0 {
		return
	}
	if it.back {
		// Direction change: children other than the front are parked at
		// keys <= the current one. Re-seek everyone past the current key;
		// only the owning child can land exactly on it (keys are
		// disjoint), so advance that one off it.
		it.kbuf = append(it.kbuf[:0], it.Key()...)
		for _, c := range it.children {
			c.Seek(it.kbuf)
			if c.Valid() && bytes.Equal(c.Key(), it.kbuf) {
				c.Next()
			}
		}
		it.back = false
	} else {
		it.children[it.cur].Next()
	}
	it.pickMin()
}

// Prev steps back to the next smaller key.
func (it *Iterator) Prev() {
	if it.cur < 0 {
		return
	}
	if !it.back {
		it.kbuf = append(it.kbuf[:0], it.Key()...)
		for _, c := range it.children {
			c.SeekForPrev(it.kbuf)
			if c.Valid() && bytes.Equal(c.Key(), it.kbuf) {
				c.Prev()
			}
		}
		it.back = true
	} else {
		it.children[it.cur].Prev()
	}
	it.pickMax()
}

func (it *Iterator) pickMin() {
	it.cur = -1
	for i, c := range it.children {
		if !c.Valid() {
			continue
		}
		if it.cur < 0 || bytes.Compare(c.Key(), it.children[it.cur].Key()) < 0 {
			it.cur = i
		}
	}
}

func (it *Iterator) pickMax() {
	it.cur = -1
	for i, c := range it.children {
		if !c.Valid() {
			continue
		}
		if it.cur < 0 || bytes.Compare(c.Key(), it.children[it.cur].Key()) > 0 {
			it.cur = i
		}
	}
}

// Valid reports whether the iterator is positioned at a key.
func (it *Iterator) Valid() bool { return it.cur >= 0 }

// Key returns the current key (valid until the next positioning call).
func (it *Iterator) Key() []byte { return it.children[it.cur].Key() }

// Value returns the current value (valid until the next positioning
// call).
func (it *Iterator) Value() []byte { return it.children[it.cur].Value() }

// Err returns the first error any shard's iterator encountered.
func (it *Iterator) Err() error {
	for _, c := range it.children {
		if err := c.Err(); err != nil {
			return err
		}
	}
	return nil
}

// Close releases every per-shard iterator (and the implicit snapshot,
// for iterators from DB.NewIterator).
func (it *Iterator) Close() {
	for _, c := range it.children {
		c.Close()
	}
	if it.ownedSnap != nil {
		it.ownedSnap.Close()
	}
	it.cur = -1
}

// Range collects up to limit key/value pairs in [start, end) (limit <= 0
// = unbounded), mirroring core.Iterator.Range.
func (it *Iterator) Range(start, end []byte, limit int) (ks, vs [][]byte, err error) {
	for it.Seek(start); it.Valid(); it.Next() {
		if end != nil && bytes.Compare(it.Key(), end) >= 0 {
			break
		}
		ks = append(ks, append([]byte(nil), it.Key()...))
		vs = append(vs, append([]byte(nil), it.Value()...))
		if limit > 0 && len(ks) >= limit {
			break
		}
	}
	return ks, vs, it.Err()
}
