// Package shard implements horizontal sharding: a facade that
// hash-partitions keys across N fully independent cLSM engine instances
// — per-shard memtable, WAL, version set, scheduler, and health state —
// removing the global write chokepoints (one oracle counter, one WAL
// drain, one memtable) the source paper identifies as the scaling
// limits of a single store. Smaller per-shard data volumes also keep
// each shard's LSM tree shallower, cutting compaction write
// amplification.
//
// Cross-shard operations preserve per-shard semantics: MultiGet fans
// out in parallel with one pinned component set per touched shard,
// iterators k-way-merge per-shard bounded iterators (user keys are
// disjoint across shards, so the merge is a tournament, not a dedup),
// and atomic batches split into per-shard sub-batches — atomicity is
// per shard, not across shards (see docs/SHARDING.md).
//
// On top of the facade sits a global memory governor (governor.go): one
// arbiter holding a fixed byte budget that shifts memtable quota
// between shards and the shared block cache from observed per-shard
// write/read pressure, so a hot shard borrows memory from cold ones
// instead of stalling.
package shard

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"clsm/internal/batch"
	"clsm/internal/core"
	"clsm/internal/keys"
	"clsm/internal/obs"
)

// Options configures a sharded store. The caller (the public API's
// option lowering) prepares one fully lowered core.Options per shard —
// each with its own FS root, its own Observer, and (usually) a
// namespaced View of one shared block cache.
type Options struct {
	// Engines are the per-shard engine configurations; len(Engines) is
	// the shard count and is part of the store's on-disk contract.
	Engines []core.Options

	// Governor configures the global memory governor. The zero value
	// disables it (budgets stay at their configured static split).
	Governor GovernorConfig
}

// DB is a sharded store. All methods are safe for concurrent use.
type DB struct {
	shards []*core.DB
	obs    []*obs.Observer
	gov    *governor
	closed atomic.Bool
}

// IndexOf returns the shard owning key among n shards. The hash is
// FNV-1a, inlined so routing allocates nothing; it is stable across
// processes and versions because routing is part of the on-disk
// contract of a sharded store (a key written to shard i must route to
// shard i on every future open).
func IndexOf(key []byte, n int) int {
	if n <= 1 {
		return 0
	}
	h := uint64(14695981039346656037)
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return int(h % uint64(n))
}

// Open opens every shard engine and starts the memory governor. A
// failure opening shard i closes the shards already opened and returns
// shard i's error.
func Open(opts Options) (*DB, error) {
	n := len(opts.Engines)
	if n < 1 {
		return nil, fmt.Errorf("%w: sharded open with %d engine configs", core.ErrInvalidOptions, n)
	}
	db := &DB{}
	for i, eopts := range opts.Engines {
		eng, err := core.Open(eopts)
		if err != nil {
			for _, s := range db.shards {
				s.Close()
			}
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		db.shards = append(db.shards, eng)
		db.obs = append(db.obs, eng.Observer())
	}
	db.gov = startGovernor(db.shards, opts.Governor)
	return db, nil
}

// NumShards returns the shard count.
func (db *DB) NumShards() int { return len(db.shards) }

// Shard exposes one shard engine (tests, tools).
func (db *DB) Shard(i int) *core.DB { return db.shards[i] }

func (db *DB) route(key []byte) *core.DB {
	return db.shards[IndexOf(key, len(db.shards))]
}

// Close stops the governor and closes every shard. All shards are
// closed even when one errors; the first error is returned.
func (db *DB) Close() error {
	if !db.closed.CompareAndSwap(false, true) {
		return core.ErrClosed
	}
	db.gov.stop()
	var firstErr error
	for _, s := range db.shards {
		if err := s.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Put stores (key, value) on the owning shard.
func (db *DB) Put(key, value []byte) error { return db.route(key).Put(key, value) }

// PutCtx is Put with cancellation.
func (db *DB) PutCtx(ctx context.Context, key, value []byte) error {
	return db.route(key).PutCtx(ctx, key, value)
}

// Get returns the current value of key from the owning shard.
func (db *DB) Get(key []byte) (value []byte, ok bool, err error) {
	return db.route(key).Get(key)
}

// GetCtx is Get with a context, checked once at entry.
func (db *DB) GetCtx(ctx context.Context, key []byte) (value []byte, ok bool, err error) {
	return db.route(key).GetCtx(ctx, key)
}

// Has reports whether key is present (not deleted).
func (db *DB) Has(key []byte) (bool, error) { return db.route(key).Has(key) }

// Delete removes key on the owning shard.
func (db *DB) Delete(key []byte) error { return db.route(key).Delete(key) }

// DeleteCtx is Delete with cancellation.
func (db *DB) DeleteCtx(ctx context.Context, key []byte) error {
	return db.route(key).DeleteCtx(ctx, key)
}

// RMW atomically replaces key's value with f(current) on the owning
// shard (single-key RMW never crosses shards).
func (db *DB) RMW(key []byte, f func(old []byte, exists bool) []byte) error {
	return db.route(key).RMW(key, f)
}

// MultiGet reads every key in one call. Keys are grouped by owning
// shard and the groups are fanned out in parallel, each against a
// single pinned component set on its shard — results are mutually
// consistent per shard (not across shards). results[i] corresponds to
// ks[i]; the first error aborts the batch.
func (db *DB) MultiGet(ks [][]byte) ([]core.Value, error) {
	return db.MultiGetCtx(context.Background(), ks)
}

// MultiGetCtx is MultiGet with a context, checked once at entry.
func (db *DB) MultiGetCtx(ctx context.Context, ks [][]byte) ([]core.Value, error) {
	return multiGet(ctx, ks, len(db.shards), func(ctx context.Context, s int, group [][]byte) ([]core.Value, error) {
		return db.shards[s].MultiGetCtx(ctx, group)
	})
}

// multiGet is the shared fan-out: group ks by shard, read each group
// through fetch (parallel when more than one shard is touched), and
// scatter the group results back to their original positions.
func multiGet(ctx context.Context, ks [][]byte, n int,
	fetch func(ctx context.Context, s int, group [][]byte) ([]core.Value, error)) ([]core.Value, error) {
	if len(ks) == 0 {
		return nil, nil
	}
	if n == 1 {
		return fetch(ctx, 0, ks)
	}
	groups := make([][][]byte, n) // keys routed to each shard
	where := make([][]int, n)     // their original positions
	touched := 0
	for i, k := range ks {
		s := IndexOf(k, n)
		if groups[s] == nil {
			touched++
		}
		groups[s] = append(groups[s], k)
		where[s] = append(where[s], i)
	}
	out := make([]core.Value, len(ks))
	scatter := func(s int, vals []core.Value) {
		for j, v := range vals {
			out[where[s][j]] = v
		}
	}
	if touched == 1 {
		for s := range groups {
			if groups[s] != nil {
				vals, err := fetch(ctx, s, groups[s])
				if err != nil {
					return nil, err
				}
				scatter(s, vals)
			}
		}
		return out, nil
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		ferr error
	)
	for s := range groups {
		if groups[s] == nil {
			continue
		}
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			vals, err := fetch(ctx, s, groups[s])
			if err != nil {
				mu.Lock()
				if ferr == nil {
					ferr = err
				}
				mu.Unlock()
				return
			}
			scatter(s, vals)
		}(s)
	}
	wg.Wait()
	if ferr != nil {
		return nil, ferr
	}
	return out, nil
}

// Write applies the batch, split into per-shard sub-batches, each
// applied atomically with its shard's group commit. Atomicity is per
// shard: a crash can persist one shard's sub-batch and not another's
// (each sub-batch still applies all-or-nothing). Cross-shard sub-batch
// commits run in parallel so sync-mode latency is the slowest shard,
// not the sum.
func (db *DB) Write(b *batch.Batch) error { return db.WriteCtx(context.Background(), b) }

// WriteCtx is Write with cancellation (per sub-batch; an already
// committed sub-batch is never rolled back).
func (db *DB) WriteCtx(ctx context.Context, b *batch.Batch) error {
	n := len(db.shards)
	if n == 1 {
		return db.shards[0].WriteCtx(ctx, b)
	}
	if b.Len() == 0 {
		return nil
	}
	subs := make([]*batch.Batch, n)
	touched := 0
	for _, e := range b.Entries() {
		s := IndexOf(e.Key, n)
		if subs[s] == nil {
			subs[s] = new(batch.Batch)
			touched++
		}
		if e.Kind == keys.KindDelete {
			subs[s].Delete(e.Key)
		} else {
			subs[s].Put(e.Key, e.Value)
		}
	}
	if touched == 1 {
		for s, sub := range subs {
			if sub != nil {
				return db.shards[s].WriteCtx(ctx, sub)
			}
		}
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		ferr error
	)
	for s, sub := range subs {
		if sub == nil {
			continue
		}
		wg.Add(1)
		go func(s int, sub *batch.Batch) {
			defer wg.Done()
			if err := db.shards[s].WriteCtx(ctx, sub); err != nil {
				mu.Lock()
				if ferr == nil {
					ferr = err
				}
				mu.Unlock()
			}
		}(s, sub)
	}
	wg.Wait()
	return ferr
}

// Flush synchronously merges every shard's memtable into its disk
// component. All shards are flushed even when one errors; the first
// error is returned.
func (db *DB) Flush() error { return db.each((*core.DB).Flush) }

// CompactRange synchronously flushes and fully compacts every shard.
func (db *DB) CompactRange() error { return db.each((*core.DB).CompactRange) }

// CompactValueLog garbage-collects every shard's value log; all shards
// run even when one errors, and the first error is returned.
func (db *DB) CompactValueLog(ctx context.Context) error {
	return db.each(func(s *core.DB) error { return s.CompactValueLog(ctx) })
}

// Resume clears retryable health states on every shard.
func (db *DB) Resume() error { return db.each((*core.DB).Resume) }

func (db *DB) each(f func(*core.DB) error) error {
	var firstErr error
	for _, s := range db.shards {
		if err := f(s); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Metrics returns the element-wise sum of every shard's counters.
func (db *DB) Metrics() core.Metrics {
	var m core.Metrics
	for _, s := range db.shards {
		sm := s.Metrics()
		m.Puts += sm.Puts
		m.Gets += sm.Gets
		m.Deletes += sm.Deletes
		m.RMWs += sm.RMWs
		m.RMWRetries += sm.RMWRetries
		m.Txns += sm.Txns
		m.TxnConflicts += sm.TxnConflicts
		m.Snapshots += sm.Snapshots
		m.Flushes += sm.Flushes
		m.Compactions += sm.Compactions
		m.FlushBytes += sm.FlushBytes
		m.CompactionBytes += sm.CompactionBytes
		m.StallTime += sm.StallTime
		m.WriteStalls += sm.WriteStalls
		m.CacheHits += sm.CacheHits
		m.CacheMisses += sm.CacheMisses
		m.DiskBytes += sm.DiskBytes
		m.DiskFiles += sm.DiskFiles
		m.VlogSegments += sm.VlogSegments
		m.VlogGarbageBytes += sm.VlogGarbageBytes
		m.VlogGCRuns += sm.VlogGCRuns
		for i := range m.LevelSize {
			m.LevelSize[i] += sm.LevelSize[i]
		}
	}
	return m
}

// Health reports the worst shard's health state (states are ordered by
// severity) together with that shard's error.
func (db *DB) Health() core.HealthStatus {
	var worst core.HealthStatus
	for _, s := range db.shards {
		h := s.Health()
		if h.State > worst.State {
			worst = h
		}
	}
	return worst
}

// ApproximateSize sums the shards' on-disk estimates for [start, end).
func (db *DB) ApproximateSize(start, end []byte) uint64 {
	var n uint64
	for _, s := range db.shards {
		n += s.ApproximateSize(start, end)
	}
	return n
}

// Observers returns the per-shard observers, indexed by shard.
func (db *DB) Observers() []*obs.Observer { return db.obs }

// Observer returns a point-in-time aggregate of every shard's
// instrumentation (see obs.Aggregate); call again for fresh numbers.
func (db *DB) Observer() *obs.Observer { return obs.Aggregate(db.obs...) }

// MemtableBudgets returns the current per-shard memtable budgets (the
// governor moves these at runtime).
func (db *DB) MemtableBudgets() []int64 {
	out := make([]int64, len(db.shards))
	for i, s := range db.shards {
		out[i] = s.MemtableBudget()
	}
	return out
}
