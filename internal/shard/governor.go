package shard

import (
	"sync"
	"time"

	"clsm/internal/cache"
	"clsm/internal/core"
)

// GovernorConfig configures the global memory governor: one arbiter
// holding a fixed byte budget and shifting memtable quota between
// shards — and between the shard pool and the shared block cache —
// from observed per-shard pressure. Modeled on "Breaking Down Memory
// Walls" (PAPERS.md): static per-partition budgets leave throughput on
// the table when load is skewed, because a hot shard flushes tiny
// memtables while cold shards sit on idle quota.
type GovernorConfig struct {
	// TotalBytes is the fixed budget: the sum of all shards' memtable
	// quotas plus the shared cache's capacity is held at this value.
	// <= 0 disables the governor entirely.
	TotalBytes int64

	// Cache is the shared block cache pool (the parent handle, not a
	// per-shard view); when non-nil the governor resizes it as part of
	// the arbitration. Nil restricts arbitration to memtable quotas.
	Cache *cache.Cache

	// CacheMin and CacheMax clamp the cache's share of TotalBytes.
	// Defaults: TotalBytes/16 and TotalBytes/2.
	CacheMin, CacheMax int64

	// ShardFloor is the minimum memtable quota any shard can be
	// squeezed to (default TotalBytes/(8*shards), at least 256 KiB —
	// matching the engine-side clamp in SetMemtableBudget).
	ShardFloor int64

	// Interval is the survey period (default 25ms — a few engine
	// planner ticks per adjustment).
	Interval time.Duration

	// Static freezes the configured equal-split budgets: the governor
	// goroutine never starts. This is the A/B baseline for
	// BENCH_shard.json and the "I want predictable quotas" escape
	// hatch.
	Static bool
}

// governor is the arbiter goroutine's state. All EWMA state is owned by
// the loop; Budgets-style introspection goes through the engines'
// atomics, so there is no shared mutable state to lock.
type governor struct {
	shards []*core.DB
	cfg    GovernorConfig

	writeEW []float64 // per-shard write arrival EWMA (bytes/tick)
	debtEW  []float64 // per-shard flush+compaction debt EWMA (bytes)
	prevW   []uint64  // previous cumulative writeBytes sample

	prevHits, prevMiss uint64
	missEW             float64 // cache miss-ratio EWMA

	cacheTarget int64

	stopCh chan struct{}
	done   sync.WaitGroup
}

// startGovernor validates the config, fills defaults, and starts the
// arbiter loop. It returns a no-op governor (stop is still safe) when
// the config disables arbitration.
func startGovernor(shards []*core.DB, cfg GovernorConfig) *governor {
	g := &governor{shards: shards, cfg: cfg}
	if cfg.TotalBytes <= 0 || cfg.Static || len(shards) == 0 {
		return g
	}
	n := int64(len(shards))
	if g.cfg.CacheMin <= 0 {
		g.cfg.CacheMin = cfg.TotalBytes / 16
	}
	if g.cfg.CacheMax <= 0 {
		g.cfg.CacheMax = cfg.TotalBytes / 2
	}
	if g.cfg.ShardFloor <= 0 {
		g.cfg.ShardFloor = cfg.TotalBytes / (8 * n)
	}
	if g.cfg.ShardFloor < 256<<10 {
		g.cfg.ShardFloor = 256 << 10
	}
	if g.cfg.Interval <= 0 {
		g.cfg.Interval = 25 * time.Millisecond
	}
	if g.cfg.Cache != nil {
		g.cacheTarget = clamp(g.cfg.Cache.Capacity(), g.cfg.CacheMin, g.cfg.CacheMax)
	}
	g.writeEW = make([]float64, len(shards))
	g.debtEW = make([]float64, len(shards))
	g.prevW = make([]uint64, len(shards))
	for i, s := range shards {
		g.prevW[i] = s.Pressure().WriteBytes
	}
	g.stopCh = make(chan struct{})
	g.done.Add(1)
	go g.loop()
	return g
}

func (g *governor) stop() {
	if g.stopCh != nil {
		close(g.stopCh)
		g.done.Wait()
	}
}

func (g *governor) loop() {
	defer g.done.Done()
	t := time.NewTicker(g.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-g.stopCh:
			return
		case <-t.C:
			g.tick()
		}
	}
}

// tick runs one arbitration pass: sample pressure, update the EWMAs,
// pick a cache target, and redistribute the memtable pool
// proportionally to write pressure (with floors and hysteresis).
func (g *governor) tick() {
	const alpha = 0.3 // EWMA smoothing per tick
	var hits, misses uint64
	var totalDebt float64
	for i, s := range g.shards {
		p := s.Pressure()
		dw := float64(p.WriteBytes - g.prevW[i])
		g.prevW[i] = p.WriteBytes
		g.writeEW[i] += alpha * (dw - g.writeEW[i])
		inst := float64(p.Debt) + float64(p.ImmBytes)
		g.debtEW[i] += alpha * (inst - g.debtEW[i])
		totalDebt += g.debtEW[i]
		hits += p.CacheHits
		misses += p.CacheMisses
	}
	dh, dm := float64(hits-g.prevHits), float64(misses-g.prevMiss)
	g.prevHits, g.prevMiss = hits, misses
	if dh+dm > 0 {
		g.missEW += alpha * (dm/(dh+dm) - g.missEW)
	}

	n := int64(len(g.shards))
	floorSum := g.cfg.ShardFloor * n

	// Cache arbitration: under sustained flush debt the memtables are
	// the bottleneck — shrink the cache one step and hand the bytes to
	// the shard pool. With the write side calm and misses high, grow
	// it back. One step per tick, clamped, so the cache never whipsaws.
	if g.cfg.Cache != nil {
		step := g.cfg.TotalBytes / 32
		memPool := g.cfg.TotalBytes - g.cacheTarget
		target := g.cacheTarget
		switch {
		case totalDebt > float64(memPool)/4:
			target -= step
		case g.missEW > 0.2 && totalDebt < float64(memPool)/16:
			target += step
		}
		target = clamp(target, g.cfg.CacheMin, g.cfg.CacheMax)
		if max := g.cfg.TotalBytes - floorSum; target > max {
			target = max
		}
		if target != g.cacheTarget {
			g.cacheTarget = target
			g.cfg.Cache.Resize(target)
		}
	}

	// Memtable arbitration: split the pool above the floors in
	// proportion to each shard's write-pressure weight. Weight blends
	// arrival rate with standing flush debt so a shard that is already
	// behind keeps its quota while it drains.
	memPool := g.cfg.TotalBytes - g.cacheTarget
	spread := memPool - floorSum
	if spread < 0 {
		spread = 0
	}
	var sumW float64
	for i := range g.shards {
		sumW += g.weight(i)
	}
	for i, s := range g.shards {
		quota := g.cfg.ShardFloor
		if sumW > 0 {
			quota += int64(float64(spread) * g.weight(i) / sumW)
		} else {
			quota += spread / n
		}
		// Hysteresis: apply only a >1/8 relative move, so quotas settle
		// instead of chasing sampling noise.
		cur := s.MemtableBudget()
		if delta := quota - cur; delta > cur/8 || delta < -cur/8 {
			s.SetMemtableBudget(quota)
		}
	}
}

func (g *governor) weight(i int) float64 {
	return g.writeEW[i] + g.debtEW[i]/4
}

func clamp(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
