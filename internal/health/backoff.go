package health

import (
	"math/rand"
	"time"
)

// Default backoff bounds used when a Backoff's fields are zero.
const (
	DefaultBackoffBase = 25 * time.Millisecond
	DefaultBackoffCap  = 2 * time.Second
)

// Backoff computes capped exponential retry delays with jitter for one
// background worker. The nth delay is drawn uniformly from the upper half
// of [0, min(Base<<n, Cap)): the exponential keeps a persistently failing
// worker from hammering a sick disk, the cap bounds auto-resume latency
// once the fault clears, and the jitter de-synchronizes workers that all
// tripped on the same fault (the thundering-retry problem). Not safe for
// concurrent use — each worker owns one.
type Backoff struct {
	Base time.Duration // first delay; DefaultBackoffBase when zero
	Cap  time.Duration // largest delay; DefaultBackoffCap when zero

	attempts int
}

// Next returns the delay to wait before the next retry and advances the
// schedule.
func (b *Backoff) Next() time.Duration {
	base, cap := b.Base, b.Cap
	if base <= 0 {
		base = DefaultBackoffBase
	}
	if cap <= 0 {
		cap = DefaultBackoffCap
	}
	if cap < base {
		cap = base
	}
	d := cap
	if shift := b.attempts; shift < 32 && base<<shift < cap {
		d = base << shift
	}
	b.attempts++
	// Upper-half jitter: [d/2, d]. Keeps the exponential shape while
	// spreading simultaneous retries across half a period.
	half := d / 2
	return half + time.Duration(rand.Int63n(int64(half)+1))
}

// Attempts returns how many delays Next has handed out since the last
// Reset — the retry count of the current episode.
func (b *Backoff) Attempts() int { return b.attempts }

// Reset rewinds the schedule after a success.
func (b *Backoff) Reset() { b.attempts = 0 }
