package health

import (
	"errors"
	"fmt"
	"os"
	"syscall"
	"testing"
	"time"
)

var errCorruptSentinel = errors.New("test: corrupt record")

// tempErr mimics faultfs.ErrInjected / net.Error temporary conditions.
type tempErr struct{}

func (tempErr) Error() string   { return "test: flaky device" }
func (tempErr) Temporary() bool { return true }

type timeoutErr struct{}

func (timeoutErr) Error() string { return "test: deadline" }
func (timeoutErr) Timeout() bool { return true }

func testClassifier() Classifier {
	return Classifier{Corrupt: []error{errCorruptSentinel}}
}

func TestClassify(t *testing.T) {
	c := testClassifier()
	cases := []struct {
		name string
		err  error
		want Class
	}{
		{"enospc", syscall.ENOSPC, ClassTransient},
		{"enospc-wrapped", &os.PathError{Op: "write", Path: "000001.sst", Err: syscall.ENOSPC}, ClassTransient},
		{"eio", fmt.Errorf("flush: %w", syscall.EIO), ClassTransient},
		{"edquot", syscall.EDQUOT, ClassTransient},
		{"temporary", tempErr{}, ClassTransient},
		{"temporary-wrapped", fmt.Errorf("compaction: %w", tempErr{}), ClassTransient},
		{"timeout", timeoutErr{}, ClassTransient},
		{"deadline", os.ErrDeadlineExceeded, ClassTransient},
		{"corrupt", errCorruptSentinel, ClassCorruption},
		{"corrupt-wrapped", fmt.Errorf("wal 7: %w", errCorruptSentinel), ClassCorruption},
		{"panic", &PanicError{Value: "boom"}, ClassFatal},
		{"unknown", errors.New("some logic bug"), ClassFatal},
	}
	for _, tc := range cases {
		if got := c.Classify(tc.err); got != tc.want {
			t.Errorf("Classify(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestClassifyCorruptionWins checks that a corruption sentinel wrapped in a
// "temporary" coat is still corruption: retrying cannot repair a bad block.
func TestClassifyCorruptionWins(t *testing.T) {
	c := testClassifier()
	err := fmt.Errorf("%w: %w", errCorruptSentinel, tempErr{})
	if got := c.Classify(err); got != ClassCorruption {
		t.Fatalf("Classify(corrupt+temporary) = %v, want ClassCorruption", got)
	}
}

func TestMonitorDegradeAndAutoResume(t *testing.T) {
	var trs []Transition
	m := NewMonitor(testClassifier(), func(tr Transition) { trs = append(trs, tr) })

	if m.State() != Healthy {
		t.Fatalf("initial state = %v", m.State())
	}
	if m.OK("flush") {
		t.Fatal("OK on a healthy monitor reported a resume")
	}

	if cl := m.Report("flush", syscall.ENOSPC); cl != ClassTransient {
		t.Fatalf("Report class = %v", cl)
	}
	if m.State() != Degraded {
		t.Fatalf("state after transient = %v", m.State())
	}
	if m.Err() == nil {
		t.Fatal("degraded monitor has no cause")
	}

	// A different origin succeeding must not end the episode.
	if m.OK("compact-0") {
		t.Fatal("unrelated origin cleared the degraded state")
	}
	if m.State() != Degraded {
		t.Fatalf("state = %v after unrelated OK", m.State())
	}

	// The failing origin recovering does.
	if !m.OK("flush") {
		t.Fatal("OK(flush) did not auto-resume")
	}
	if m.State() != Healthy || m.Err() != nil {
		t.Fatalf("state = %v, err = %v after auto-resume", m.State(), m.Err())
	}

	want := []Transition{
		{From: Healthy, To: Degraded},
		{From: Degraded, To: Healthy},
	}
	if len(trs) != len(want) {
		t.Fatalf("transitions = %+v", trs)
	}
	for i, tr := range trs {
		if tr.From != want[i].From || tr.To != want[i].To {
			t.Fatalf("transition %d = %+v, want %+v", i, tr, want[i])
		}
	}
	if trs[0].Cause == nil || trs[1].Cause != nil {
		t.Fatalf("transition causes = %v, %v", trs[0].Cause, trs[1].Cause)
	}
}

// TestMonitorMultiOrigin: with two origins failing, the episode ends only
// when the second one recovers.
func TestMonitorMultiOrigin(t *testing.T) {
	m := NewMonitor(testClassifier(), nil)
	m.Report("flush", syscall.ENOSPC)
	m.Report("compact-0", syscall.EIO)
	if m.OK("flush") {
		t.Fatal("resumed while compact-0 still failing")
	}
	if !m.OK("compact-0") {
		t.Fatal("did not resume when the last origin recovered")
	}
}

func TestMonitorEscalation(t *testing.T) {
	m := NewMonitor(testClassifier(), nil)
	m.Report("flush", syscall.ENOSPC)
	if cl := m.Report("compact-0", errCorruptSentinel); cl != ClassCorruption {
		t.Fatalf("class = %v", cl)
	}
	if m.State() != ReadOnly {
		t.Fatalf("state = %v, want ReadOnly", m.State())
	}
	// Neither a transient report nor a success de-escalates a quarantine.
	m.Report("flush", syscall.ENOSPC)
	if m.State() != ReadOnly {
		t.Fatal("transient error de-escalated ReadOnly")
	}
	if m.OK("flush") || m.State() != ReadOnly {
		t.Fatal("OK de-escalated ReadOnly")
	}
	// Manual resume clears the quarantine.
	if err := m.Resume(); err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if m.State() != Healthy || m.Err() != nil {
		t.Fatalf("state = %v, err = %v after Resume", m.State(), m.Err())
	}
}

func TestMonitorFatalSticky(t *testing.T) {
	m := NewMonitor(testClassifier(), nil)
	cause := errors.New("logic bug")
	if cl := m.Report("flush", cause); cl != ClassFatal {
		t.Fatalf("class = %v", cl)
	}
	if m.State() != Failed {
		t.Fatalf("state = %v", m.State())
	}
	if err := m.Resume(); !errors.Is(err, cause) {
		t.Fatalf("Resume on failed monitor = %v, want sticky %v", err, cause)
	}
	if m.State() != Failed {
		t.Fatal("Resume un-stuck a failed monitor")
	}
}

func TestPanicErrorClassifiesFatal(t *testing.T) {
	m := NewMonitor(testClassifier(), nil)
	err := fmt.Errorf("flush: %w", &PanicError{Value: "index out of range"})
	if cl := m.Report("flush", err); cl != ClassFatal {
		t.Fatalf("class = %v", cl)
	}
	if m.State() != Failed {
		t.Fatalf("state = %v", m.State())
	}
}

func TestBackoff(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Cap: 80 * time.Millisecond}
	// Expected raw (pre-jitter) schedule: 10, 20, 40, 80, 80, ... with each
	// delay jittered into [d/2, d].
	raw := []time.Duration{10, 20, 40, 80, 80, 80}
	for i, r := range raw {
		d := b.Next()
		lo, hi := r*time.Millisecond/2, r*time.Millisecond
		if d < lo || d > hi {
			t.Fatalf("delay %d = %v, want in [%v, %v]", i, d, lo, hi)
		}
	}
	if b.Attempts() != len(raw) {
		t.Fatalf("Attempts = %d", b.Attempts())
	}
	b.Reset()
	if b.Attempts() != 0 {
		t.Fatalf("Attempts after Reset = %d", b.Attempts())
	}
	if d := b.Next(); d > 10*time.Millisecond {
		t.Fatalf("post-reset delay = %v, want <= base", d)
	}

	// The zero value must produce sane defaults and never overflow even
	// after many attempts.
	var z Backoff
	for i := 0; i < 100; i++ {
		d := z.Next()
		if d <= 0 || d > DefaultBackoffCap {
			t.Fatalf("zero-value delay %d = %v", i, d)
		}
	}
}
