// Package health is the engine's background-error state machine. It turns
// "a flush failed" from a process-lifetime death sentence into a managed
// episode: every background error is classified as transient, corruption,
// or fatal, and the classification drives a four-state machine
//
//	Healthy ──transient──▶ Degraded ──retry ok──▶ Healthy
//	   │                      │
//	   │                   corruption
//	corruption                ▼
//	   └───────────────▶ ReadOnly ──Resume()──▶ Healthy
//	                          │
//	 (any state) ──fatal──▶ Failed        (sticky)
//
// modeled on RocksDB's ErrorHandler but stdlib-only. The design premise is
// the paper's: the in-memory write path keeps moving while disk components
// are maintained asynchronously, so a transient disk error (ENOSPC, an
// injected I/O fault, a timeout) must stall and retry the background
// pipeline — never kill it. Corruption quarantines the store into
// read-only mode (the current version still serves reads); only genuinely
// unclassifiable errors poison the engine the way every error used to.
//
// The package is deliberately engine-agnostic: the engine supplies the
// corruption sentinels it knows about (WAL, sstable, manifest), reports
// outcomes per origin ("flush", "compact-0", ...), and reacts to the
// transition callback. See docs/FAULT_TOLERANCE.md for the full policy.
package health

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"syscall"
)

// State is the engine health state. States are ordered by severity:
// Report never de-escalates, so a corruption error observed while
// Degraded moves the machine to ReadOnly, and nothing short of a
// successful retry (Degraded) or an explicit Resume (Degraded, ReadOnly)
// moves it back down. Failed is sticky.
type State uint32

// Health states, in escalating severity order.
const (
	// Healthy: background flushes and compactions are running normally.
	Healthy State = iota
	// Degraded: a transient background error is being retried with
	// backoff. Writes are accepted until the immutable-memtable/L0 budget
	// is exhausted, then stalled for a bounded period, then failed with
	// the engine's ErrDegraded.
	Degraded
	// ReadOnly: a corruption error quarantined the store. Reads,
	// snapshots, and iterators keep serving off the current version;
	// writes, flushes, and compactions fail with the engine's ErrReadOnly.
	ReadOnly
	// Failed: an unclassifiable error (or a background panic) poisoned
	// the engine — the pre-health sticky-error behavior.
	Failed
)

// String names the state for logs and metric export.
func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case ReadOnly:
		return "read-only"
	case Failed:
		return "failed"
	}
	return "unknown"
}

// Class is the severity classification of one background error.
type Class uint8

// Error classes, from most to least recoverable.
const (
	// ClassTransient errors (ENOSPC, injected I/O faults, timeouts) are
	// retried with capped exponential backoff.
	ClassTransient Class = iota
	// ClassCorruption errors (torn WAL mid-file, bad sstable block,
	// corrupt manifest edit) quarantine the store into read-only mode:
	// retrying cannot help, but the installed version is still intact.
	ClassCorruption
	// ClassFatal errors are everything the classifier cannot vouch for;
	// they keep the historical sticky-error behavior.
	ClassFatal
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassTransient:
		return "transient"
	case ClassCorruption:
		return "corruption"
	case ClassFatal:
		return "fatal"
	}
	return "unknown"
}

// PanicError wraps a panic recovered from a background goroutine so it can
// travel the error-classification path (always ClassFatal) instead of
// silently killing the worker.
type PanicError struct {
	Value any    // the recovered panic value
	Stack []byte // the goroutine stack at recovery time
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("background panic: %v", e.Value)
}

// transientErrnos are OS error codes that describe a full, busy, or
// interrupted medium rather than a broken one — conditions that can clear
// on their own (an operator frees disk space, a device hiccup passes).
var transientErrnos = []error{
	syscall.ENOSPC, syscall.EDQUOT, syscall.EIO, syscall.EAGAIN,
	syscall.EINTR, syscall.EBUSY, syscall.ETIMEDOUT,
}

// Classifier maps one background error to its Class. The zero value knows
// the OS-level transient conditions and the timeout conventions; the
// engine adds its own sentinels for the formats it owns.
type Classifier struct {
	// Corrupt lists sentinels classified as ClassCorruption (checked
	// first: a corrupt record is corruption even if some wrapper also
	// claims to be temporary).
	Corrupt []error
	// Transient lists additional sentinels classified as ClassTransient.
	Transient []error
}

// Classify maps a non-nil background error to its class. Unknown errors
// are ClassFatal: an error nobody can vouch for must not be retried
// against (it could be a logic bug repeating forever) nor shrugged off.
func (c Classifier) Classify(err error) Class {
	for _, s := range c.Corrupt {
		if errors.Is(err, s) {
			return ClassCorruption
		}
	}
	var pe *PanicError
	if errors.As(err, &pe) {
		return ClassFatal
	}
	for _, s := range c.Transient {
		if errors.Is(err, s) {
			return ClassTransient
		}
	}
	for _, s := range transientErrnos {
		if errors.Is(err, s) {
			return ClassTransient
		}
	}
	if errors.Is(err, os.ErrDeadlineExceeded) {
		return ClassTransient
	}
	// net.Error conventions: anything that self-reports as a timeout or a
	// temporary condition is worth retrying (faultfs's injected faults
	// report Temporary, mirroring how a flaky device presents).
	var timeout interface{ Timeout() bool }
	if errors.As(err, &timeout) && timeout.Timeout() {
		return ClassTransient
	}
	var temp interface{ Temporary() bool }
	if errors.As(err, &temp) && temp.Temporary() {
		return ClassTransient
	}
	return ClassFatal
}

// Transition describes one state change, delivered to the monitor's
// callback outside the monitor's locks (a slow observer cannot block
// Report on the background hot path — but see NewMonitor for ordering).
type Transition struct {
	From, To State
	Cause    error // the error that drove the change; nil when To is Healthy
}

// Monitor is the background-error state machine. One instance belongs to
// one engine; all methods are safe for concurrent use.
type Monitor struct {
	classifier Classifier
	state      atomic.Uint32

	mu      sync.Mutex
	cause   error
	failing map[string]struct{} // origins with an unresolved transient error

	// cbMu serializes callback delivery so observers see transitions in
	// commit order.
	cbMu     sync.Mutex
	onChange func(Transition)
}

// NewMonitor builds a Healthy monitor. onChange (may be nil) receives
// every state transition; it is called outside the state lock but under a
// delivery lock, so callbacks arrive one at a time, in order.
func NewMonitor(c Classifier, onChange func(Transition)) *Monitor {
	return &Monitor{
		classifier: c,
		failing:    map[string]struct{}{},
		onChange:   onChange,
	}
}

// State returns the current state (one atomic load; hot-path safe).
func (m *Monitor) State() State { return State(m.state.Load()) }

// Status returns the current state and the error that caused it (nil when
// Healthy).
func (m *Monitor) Status() (State, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return State(m.state.Load()), m.cause
}

// Err returns the cause of the current non-Healthy state, or nil.
func (m *Monitor) Err() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cause
}

// Report classifies err (non-nil) from the named origin and escalates the
// state machine accordingly. It returns the class so the caller can pick
// its recovery action (retry with backoff, park, or poison).
func (m *Monitor) Report(origin string, err error) Class {
	class := m.classifier.Classify(err)
	var target State
	switch class {
	case ClassTransient:
		target = Degraded
	case ClassCorruption:
		target = ReadOnly
	default:
		target = Failed
	}

	m.mu.Lock()
	if class == ClassTransient {
		m.failing[origin] = struct{}{}
	}
	cur := State(m.state.Load())
	if target < cur {
		// Never de-escalate: a transient error while quarantined does not
		// un-quarantine anything.
		m.mu.Unlock()
		return class
	}
	if target == cur {
		if cur != Healthy {
			m.cause = err // refresh the cause at equal severity
		}
		m.mu.Unlock()
		return class
	}
	m.cause = err
	m.state.Store(uint32(target))
	m.mu.Unlock()
	m.fire(Transition{From: cur, To: target, Cause: err})
	return class
}

// OK records a successful background operation from origin. Clearing the
// last failing origin of a Degraded monitor auto-resumes it to Healthy;
// OK reports whether this call performed that transition. On a Healthy
// monitor OK is one atomic load.
func (m *Monitor) OK(origin string) bool {
	if State(m.state.Load()) != Degraded {
		return false
	}
	m.mu.Lock()
	if State(m.state.Load()) != Degraded {
		m.mu.Unlock()
		return false
	}
	delete(m.failing, origin)
	if len(m.failing) > 0 {
		// Another worker is still failing; the episode is not over.
		m.mu.Unlock()
		return false
	}
	m.cause = nil
	m.state.Store(uint32(Healthy))
	m.mu.Unlock()
	m.fire(Transition{From: Degraded, To: Healthy})
	return true
}

// Resume manually returns a Degraded or ReadOnly monitor to Healthy — the
// operator fixed the disk, or accepts the corruption risk after offline
// repair. Resume of a Healthy monitor is a no-op; a Failed monitor is
// sticky and Resume returns its fatal cause.
func (m *Monitor) Resume() error {
	m.mu.Lock()
	cur := State(m.state.Load())
	switch cur {
	case Healthy:
		m.mu.Unlock()
		return nil
	case Failed:
		err := m.cause
		m.mu.Unlock()
		if err == nil {
			err = errors.New("health: engine failed")
		}
		return err
	}
	m.failing = map[string]struct{}{}
	m.cause = nil
	m.state.Store(uint32(Healthy))
	m.mu.Unlock()
	m.fire(Transition{From: cur, To: Healthy})
	return nil
}

func (m *Monitor) fire(tr Transition) {
	m.cbMu.Lock()
	defer m.cbMu.Unlock()
	if m.onChange != nil {
		m.onChange(tr)
	}
}
