package workload

import (
	"bytes"
	"io"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	ops := []TraceOp{
		{Op: TracePut, Key: []byte("k1"), Value: []byte("v1")},
		{Op: TraceGet, Key: []byte("k2")},
		{Op: TraceDelete, Key: []byte("k3")},
		{Op: TraceScan, Key: []byte("k4"), ScanLen: 17},
		{Op: TraceRMW, Key: []byte("k5"), Value: []byte("v5")},
		{Op: TracePut, Key: []byte(""), Value: []byte("")}, // empty key/value
	}
	var buf bytes.Buffer
	w := NewTraceWriter(&buf)
	for _, op := range ops {
		if err := w.Write(op); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != int64(len(ops)) {
		t.Fatalf("Count = %d", w.Count())
	}

	r := NewTraceReader(&buf)
	for i, want := range ops {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if got.Op != want.Op || !bytes.Equal(got.Key, want.Key) ||
			!bytes.Equal(got.Value, want.Value) || got.ScanLen != want.ScanLen {
			t.Fatalf("op %d: got %+v want %+v", i, got, want)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestTraceRejectsBadOp(t *testing.T) {
	var buf bytes.Buffer
	w := NewTraceWriter(&buf)
	if err := w.Write(TraceOp{Op: 'x', Key: []byte("k")}); err == nil {
		t.Fatal("bad op accepted by writer")
	}
	// Reader-side: corrupt op byte.
	r := NewTraceReader(bytes.NewReader([]byte{'z', 1, 'k'}))
	if _, err := r.Next(); err == nil {
		t.Fatal("bad op accepted by reader")
	}
}

func TestTraceTruncated(t *testing.T) {
	var buf bytes.Buffer
	w := NewTraceWriter(&buf)
	w.Write(TraceOp{Op: TracePut, Key: []byte("key"), Value: []byte("value")})
	w.Flush()
	full := buf.Bytes()
	for cut := 1; cut < len(full); cut++ {
		r := NewTraceReader(bytes.NewReader(full[:cut]))
		if _, err := r.Next(); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
}

func TestRecordSynthetic(t *testing.T) {
	var buf bytes.Buffer
	cfg := Config{KeySpace: 100, KeySize: 8, ValueSize: 32}
	mix := Mix{GetRatio: 0.5, ScanRatio: 0.1, ScanMin: 2, ScanMax: 5}
	if err := RecordSynthetic(&buf, cfg, mix, 500, 7); err != nil {
		t.Fatal(err)
	}
	r := NewTraceReader(&buf)
	counts := map[byte]int{}
	n := 0
	for {
		op, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		counts[op.Op]++
		n++
		if op.Op == TraceScan && (op.ScanLen < 2 || op.ScanLen > 5) {
			t.Fatalf("scan len %d out of range", op.ScanLen)
		}
	}
	if n != 500 {
		t.Fatalf("replayed %d ops", n)
	}
	if counts[TraceGet] == 0 || counts[TracePut] == 0 || counts[TraceScan] == 0 {
		t.Fatalf("mix not represented: %v", counts)
	}
	// Determinism: same seed, same bytes.
	var buf2 bytes.Buffer
	RecordSynthetic(&buf2, cfg, mix, 500, 7)
	var buf3 bytes.Buffer
	RecordSynthetic(&buf3, cfg, mix, 500, 7)
	if !bytes.Equal(buf2.Bytes(), buf3.Bytes()) {
		t.Fatal("RecordSynthetic not deterministic")
	}
}
