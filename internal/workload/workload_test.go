package workload

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestFormatKeyDeterministicAndFixedWidth(t *testing.T) {
	a := FormatKey(nil, 42, 8)
	b := FormatKey(nil, 42, 8)
	if !bytes.Equal(a, b) {
		t.Fatal("FormatKey not deterministic")
	}
	if len(a) != 8 {
		t.Fatalf("len = %d", len(a))
	}
	c := FormatKey(nil, 43, 8)
	if bytes.Equal(a, c) {
		t.Fatal("distinct indexes collide")
	}
}

func TestFormatKeyNoCollisions(t *testing.T) {
	seen := map[string]bool{}
	for i := int64(0); i < 200000; i++ {
		k := string(FormatKey(nil, i, 16))
		if seen[k] {
			t.Fatalf("collision at %d", i)
		}
		seen[k] = true
	}
}

func TestSequentialKeyOrdered(t *testing.T) {
	prev := SequentialKey(nil, 0, 10)
	for i := int64(1); i < 1000; i++ {
		k := SequentialKey(nil, i, 10)
		if bytes.Compare(prev, k) >= 0 {
			t.Fatalf("sequential keys not ordered at %d", i)
		}
		prev = append(prev[:0], k...)
	}
}

func TestUniformCoversSpace(t *testing.T) {
	g := New(Config{KeySpace: 100, Dist: Uniform}, 1)
	seen := map[int64]bool{}
	for i := 0; i < 10000; i++ {
		idx := g.NextIndex()
		if idx < 0 || idx >= 100 {
			t.Fatalf("index %d out of range", idx)
		}
		seen[idx] = true
	}
	if len(seen) < 95 {
		t.Fatalf("uniform draw covered only %d/100 keys", len(seen))
	}
}

func TestHotspotSkew(t *testing.T) {
	g := New(Config{KeySpace: 1000, Dist: Hotspot, HotFraction: 0.1, HotAccess: 0.9}, 2)
	hot := 0
	const draws = 100000
	for i := 0; i < draws; i++ {
		if g.NextIndex() < 100 {
			hot++
		}
	}
	frac := float64(hot) / draws
	// 90% hot traffic + ~10% of the uniform remainder lands in the hot range.
	if frac < 0.85 || frac > 0.95 {
		t.Fatalf("hot fraction = %.3f, want ~0.91", frac)
	}
}

func TestZipfSkew(t *testing.T) {
	g := New(Config{KeySpace: 100000, Dist: Zipf, ZipfS: 1.2}, 3)
	counts := map[int64]int{}
	const draws = 200000
	for i := 0; i < draws; i++ {
		counts[g.NextIndex()]++
	}
	// Rank-0 key must dominate.
	if counts[0] < draws/20 {
		t.Fatalf("zipf rank-0 count = %d, too flat", counts[0])
	}
}

func TestSequentialWraps(t *testing.T) {
	g := New(Config{KeySpace: 5, Dist: Sequential}, 4)
	var got []int64
	for i := 0; i < 12; i++ {
		got = append(got, g.NextIndex())
	}
	want := []int64{0, 1, 2, 3, 4, 0, 1, 2, 3, 4, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sequential stream %v", got)
		}
	}
}

// ProductionSynth must reproduce the paper's marginals: a heavy tail where
// a few percent of keys draw the majority of requests, and ~10% singleton
// accesses.
func TestProductionSynthMarginals(t *testing.T) {
	g := New(Config{KeySpace: 100000, Dist: ProductionSynth}, 5)
	counts := map[int64]int{}
	singletons := 0
	const draws = 300000
	for i := 0; i < draws; i++ {
		idx := g.NextIndex()
		if idx >= 100000 {
			singletons++
			continue
		}
		counts[idx]++
	}
	sf := float64(singletons) / draws
	if sf < 0.07 || sf > 0.13 {
		t.Fatalf("singleton fraction = %.3f, want ~0.10", sf)
	}
	// Top 10% of accessed keys should account for >= 75% of non-singleton
	// traffic (paper: "10% of the keys stand for more than 75%").
	var freqs []int
	total := 0
	for _, c := range counts {
		freqs = append(freqs, c)
		total += c
	}
	// simple selection: sort descending
	for i := 0; i < len(freqs); i++ {
		for j := i + 1; j < len(freqs); j++ {
			if freqs[j] > freqs[i] {
				freqs[i], freqs[j] = freqs[j], freqs[i]
			}
		}
		if i > len(freqs)/10+1 {
			break
		}
	}
	top := 0
	for i := 0; i < (len(freqs)+9)/10; i++ {
		top += freqs[i]
	}
	if frac := float64(top) / float64(total); frac < 0.75 {
		t.Fatalf("top-10%% keys draw %.2f of traffic, want >= 0.75", frac)
	}
}

func TestMixRatios(t *testing.T) {
	m := Mix{GetRatio: 0.5, ScanRatio: 0.2, RMWRatio: 0.1}
	rng := rand.New(rand.NewSource(6))
	counts := map[OpKind]int{}
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[m.NextOp(rng)]++
	}
	check := func(k OpKind, want float64) {
		got := float64(counts[k]) / draws
		if got < want-0.02 || got > want+0.02 {
			t.Errorf("op %d ratio %.3f want %.2f", k, got, want)
		}
	}
	check(OpGet, 0.5)
	check(OpScan, 0.2)
	check(OpRMW, 0.1)
	check(OpPut, 0.2)
}

func TestScanLenBounds(t *testing.T) {
	m := Mix{ScanMin: 10, ScanMax: 20}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		n := m.ScanLen(rng)
		if n < 10 || n > 20 {
			t.Fatalf("scan len %d out of [10,20]", n)
		}
	}
	if (Mix{ScanMin: 5, ScanMax: 5}).ScanLen(rng) != 5 {
		t.Fatal("degenerate scan range")
	}
	if (Mix{}).ScanLen(rng) != 1 {
		t.Fatal("zero scan range should clamp to 1")
	}
}

func TestValueDeterministic(t *testing.T) {
	g := New(Config{ValueSize: 64}, 8)
	v1 := append([]byte(nil), g.Value(7)...)
	v2 := g.Value(7)
	if !bytes.Equal(v1, v2) {
		t.Fatal("Value not deterministic")
	}
	if len(v1) != 64 {
		t.Fatalf("value size %d", len(v1))
	}
}
