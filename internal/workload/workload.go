// Package workload generates the key/value streams the paper's evaluation
// uses: uniform writes (Fig. 5), hotspot reads with 90 % of accesses on
// 10 % of the data (Fig. 6–9), sequential bulk loads (Fig. 11), and
// synthetic reconstructions of the production serving logs of §5.2.
package workload

import (
	"encoding/binary"
	"fmt"
	"math/rand"
)

// Dist selects a key distribution.
type Dist int

// Supported key distributions.
const (
	// Uniform draws keys uniformly from the key space.
	Uniform Dist = iota
	// Hotspot draws HotAccess of operations from the first HotFraction
	// of the (block-permuted) key space — the paper's read benchmark
	// uses 90 % of accesses on 10 % of blocks.
	Hotspot
	// Zipf draws keys with a Zipf(s) frequency distribution over ranks,
	// rank-to-key mapping scrambled.
	Zipf
	// Sequential emits keys in increasing order (bulk load, Fig. 11).
	Sequential
	// ProductionSynth reproduces the §5.2 production distribution
	// marginals: heavy tail where ~1-2 % of keys draw >50 % of requests,
	// ~10 % of keys draw >75 %, and ~10 % of keys appear only once.
	ProductionSynth
)

// Config describes a workload.
type Config struct {
	// KeySpace is the number of distinct keys.
	KeySpace int64
	// KeySize and ValueSize are the formatted sizes in bytes. The paper
	// uses 8 B keys / 256 B values for synthetic workloads, 40 B / 1 KiB
	// for production, and 10 B / 400 B for the disk-bound benchmark.
	KeySize   int
	ValueSize int
	// Dist picks the key distribution; the fields below tune it.
	Dist        Dist
	HotFraction float64 // Hotspot: fraction of keys that are hot (default 0.1)
	HotAccess   float64 // Hotspot: fraction of accesses to hot keys (default 0.9)
	ZipfS       float64 // Zipf/ProductionSynth skew (default 1.1)
	// SingletonFraction is the share of ProductionSynth accesses hitting
	// once-only keys (default 0.1).
	SingletonFraction float64
}

// WithDefaults fills unset tuning fields.
func (c Config) WithDefaults() Config {
	if c.KeySpace <= 0 {
		c.KeySpace = 1 << 20
	}
	if c.KeySize <= 0 {
		c.KeySize = 8
	}
	if c.ValueSize < 0 {
		c.ValueSize = 0
	} else if c.ValueSize == 0 {
		c.ValueSize = 256
	}
	if c.HotFraction <= 0 || c.HotFraction > 1 {
		c.HotFraction = 0.1
	}
	if c.HotAccess <= 0 || c.HotAccess > 1 {
		c.HotAccess = 0.9
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.1
	}
	if c.SingletonFraction <= 0 || c.SingletonFraction >= 1 {
		c.SingletonFraction = 0.1
	}
	return c
}

// Generator produces keys and values for one worker. Not safe for
// concurrent use; create one per goroutine with distinct seeds.
type Generator struct {
	cfg  Config
	rng  *rand.Rand
	zipf *rand.Zipf
	seq  int64
	// singleton counter for ProductionSynth's once-only tail, kept outside
	// the main key space.
	singleton int64
	keyBuf    []byte
	valBuf    []byte
}

// New creates a generator with a deterministic seed.
func New(cfg Config, seed int64) *Generator {
	cfg = cfg.WithDefaults()
	g := &Generator{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(seed)),
		keyBuf: make([]byte, cfg.KeySize),
		valBuf: make([]byte, cfg.ValueSize),
	}
	if cfg.Dist == Zipf || cfg.Dist == ProductionSynth {
		g.zipf = rand.NewZipf(g.rng, cfg.ZipfS, 1, uint64(cfg.KeySpace-1))
	}
	// Pre-fill the value with compressible-but-not-trivial content.
	for i := range g.valBuf {
		g.valBuf[i] = byte('a' + (i*7)%26)
	}
	return g
}

// KeySpace reports the configured key-space size.
func (g *Generator) KeySpace() int64 { return g.cfg.KeySpace }

// NextIndex draws the next key index according to the distribution.
func (g *Generator) NextIndex() int64 {
	c := &g.cfg
	switch c.Dist {
	case Uniform:
		return g.rng.Int63n(c.KeySpace)
	case Hotspot:
		if g.rng.Float64() < c.HotAccess {
			hot := int64(float64(c.KeySpace) * c.HotFraction)
			if hot < 1 {
				hot = 1
			}
			return g.rng.Int63n(hot)
		}
		return g.rng.Int63n(c.KeySpace)
	case Zipf:
		return int64(g.zipf.Uint64())
	case Sequential:
		i := g.seq
		g.seq++
		if g.seq >= c.KeySpace {
			g.seq = 0
		}
		return i
	case ProductionSynth:
		if g.rng.Float64() < c.SingletonFraction {
			// Once-only key, drawn from a disjoint suffix space.
			g.singleton++
			return c.KeySpace + g.singleton
		}
		return int64(g.zipf.Uint64())
	default:
		return g.rng.Int63n(c.KeySpace)
	}
}

// Key formats the key for index i. The returned slice is reused by the
// next call.
func (g *Generator) Key(i int64) []byte {
	return FormatKey(g.keyBuf, i, g.cfg.KeySize)
}

// NextKey draws and formats the next key.
func (g *Generator) NextKey() []byte { return g.Key(g.NextIndex()) }

// Value returns a value for index i: a deterministic function of the key
// so verification is possible. The slice is reused by the next call.
func (g *Generator) Value(i int64) []byte {
	if len(g.valBuf) >= 8 {
		binary.BigEndian.PutUint64(g.valBuf, uint64(i))
	}
	return g.valBuf
}

// FormatKey writes a fixed-width key for index i into buf (reallocating if
// needed). Indexes are bit-scrambled so "hot" ranges are spread across the
// key space like real hashed row keys, then hex-coded so keys are printable
// and ordered deterministically.
func FormatKey(buf []byte, i int64, size int) []byte {
	if cap(buf) < size {
		buf = make([]byte, size)
	}
	buf = buf[:size]
	x := scramble(uint64(i))
	const hex = "0123456789abcdef"
	for p := size - 1; p >= 0; p-- {
		buf[p] = hex[x&0xf]
		x >>= 4
	}
	return buf
}

// SequentialKey writes an order-preserving key (bulk loads need physical
// ordering, so no scrambling).
func SequentialKey(buf []byte, i int64, size int) []byte {
	if cap(buf) < size {
		buf = make([]byte, size)
	}
	buf = buf[:size]
	s := fmt.Sprintf("%0*d", size, i)
	copy(buf, s[len(s)-size:])
	return buf
}

// scramble is a 64-bit mix (splitmix64 finalizer) used as a deterministic
// pseudo-permutation of key indexes.
func scramble(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// OpKind is the operation type of a mixed workload.
type OpKind int

// Operation kinds emitted by Mix.
const (
	OpPut OpKind = iota
	OpGet
	OpScan
	OpRMW
)

// Mix describes an operation mixture by ratio (must sum to <= 1; the
// remainder goes to puts).
type Mix struct {
	GetRatio  float64
	ScanRatio float64
	RMWRatio  float64
	// ScanMin/ScanMax bound the range length of scan operations
	// (Fig. 7b uses 10-20 keys).
	ScanMin, ScanMax int
}

// NextOp draws the next operation kind.
func (m Mix) NextOp(rng *rand.Rand) OpKind {
	r := rng.Float64()
	switch {
	case r < m.GetRatio:
		return OpGet
	case r < m.GetRatio+m.ScanRatio:
		return OpScan
	case r < m.GetRatio+m.ScanRatio+m.RMWRatio:
		return OpRMW
	default:
		return OpPut
	}
}

// ScanLen draws a scan length in [ScanMin, ScanMax].
func (m Mix) ScanLen(rng *rand.Rand) int {
	if m.ScanMax <= m.ScanMin {
		return max(m.ScanMin, 1)
	}
	return m.ScanMin + rng.Intn(m.ScanMax-m.ScanMin+1)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
