package workload

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
)

// The trace facility records an operation stream to a compact binary file
// and replays it later. The paper's §5.2 evaluation replays production
// serving logs; users with real logs can convert them to this format and
// drive the harness with their own traffic instead of the synthetic
// ProductionSynth reconstruction.
//
// Format: one record per op —
//
//	op    byte    ('p' put, 'g' get, 'd' delete, 's' scan, 'r' rmw)
//	klen  uvarint, key bytes
//	vlen  uvarint, value bytes   (puts and rmws; scan length for scans)

// TraceOp is one replayable operation.
type TraceOp struct {
	Op    byte
	Key   []byte
	Value []byte
	// ScanLen is the range length for scan ops.
	ScanLen int
}

// Trace op codes.
const (
	TracePut    = 'p'
	TraceGet    = 'g'
	TraceDelete = 'd'
	TraceScan   = 's'
	TraceRMW    = 'r'
)

// ErrBadTrace reports a malformed trace stream.
var ErrBadTrace = errors.New("workload: malformed trace")

// TraceWriter serializes operations to an io.Writer.
type TraceWriter struct {
	w   *bufio.Writer
	buf []byte
	n   int64
}

// NewTraceWriter wraps w.
func NewTraceWriter(w io.Writer) *TraceWriter {
	return &TraceWriter{w: bufio.NewWriter(w)}
}

// Write appends one operation.
func (t *TraceWriter) Write(op TraceOp) error {
	t.buf = t.buf[:0]
	t.buf = append(t.buf, op.Op)
	t.buf = binary.AppendUvarint(t.buf, uint64(len(op.Key)))
	t.buf = append(t.buf, op.Key...)
	switch op.Op {
	case TracePut, TraceRMW:
		t.buf = binary.AppendUvarint(t.buf, uint64(len(op.Value)))
		t.buf = append(t.buf, op.Value...)
	case TraceScan:
		t.buf = binary.AppendUvarint(t.buf, uint64(op.ScanLen))
	case TraceGet, TraceDelete:
	default:
		return fmt.Errorf("%w: op %q", ErrBadTrace, op.Op)
	}
	if _, err := t.w.Write(t.buf); err != nil {
		return err
	}
	t.n++
	return nil
}

// Count returns the number of ops written.
func (t *TraceWriter) Count() int64 { return t.n }

// Flush drains the buffer to the underlying writer.
func (t *TraceWriter) Flush() error { return t.w.Flush() }

// TraceReader deserializes operations from an io.Reader.
type TraceReader struct {
	r *bufio.Reader
}

// NewTraceReader wraps r.
func NewTraceReader(r io.Reader) *TraceReader {
	return &TraceReader{r: bufio.NewReader(r)}
}

// Next returns the next operation or io.EOF at the clean end of the
// stream. The returned slices are freshly allocated.
func (t *TraceReader) Next() (TraceOp, error) {
	opb, err := t.r.ReadByte()
	if err != nil {
		return TraceOp{}, err // io.EOF passes through
	}
	op := TraceOp{Op: opb}
	key, err := t.readBytes()
	if err != nil {
		return TraceOp{}, err
	}
	op.Key = key
	switch opb {
	case TracePut, TraceRMW:
		v, err := t.readBytes()
		if err != nil {
			return TraceOp{}, err
		}
		op.Value = v
	case TraceScan:
		n, err := binary.ReadUvarint(t.r)
		if err != nil {
			return TraceOp{}, t.truncated(err)
		}
		op.ScanLen = int(n)
	case TraceGet, TraceDelete:
	default:
		return TraceOp{}, fmt.Errorf("%w: op byte %#x", ErrBadTrace, opb)
	}
	return op, nil
}

func (t *TraceReader) readBytes() ([]byte, error) {
	n, err := binary.ReadUvarint(t.r)
	if err != nil {
		return nil, t.truncated(err)
	}
	if n > 64<<20 {
		return nil, fmt.Errorf("%w: implausible length %d", ErrBadTrace, n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(t.r, b); err != nil {
		return nil, t.truncated(err)
	}
	return b, nil
}

// truncated maps mid-record EOF to a corruption error (a clean stream ends
// only between records).
func (t *TraceReader) truncated(err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return fmt.Errorf("%w: truncated record", ErrBadTrace)
	}
	return err
}

// RecordSynthetic writes n operations of the given mix/config to w —
// a convenience for producing shareable, reproducible trace files.
func RecordSynthetic(w io.Writer, cfg Config, mix Mix, n int64, seed int64) error {
	cfg = cfg.WithDefaults()
	g := New(cfg, seed)
	rng := rand.New(rand.NewSource(seed ^ 0x5f5f))
	tw := NewTraceWriter(w)
	for i := int64(0); i < n; i++ {
		idx := g.NextIndex()
		op := TraceOp{Key: append([]byte(nil), g.Key(idx)...)}
		switch mix.NextOp(rng) {
		case OpGet:
			op.Op = TraceGet
		case OpScan:
			op.Op = TraceScan
			op.ScanLen = mix.ScanLen(rng)
		case OpRMW:
			op.Op = TraceRMW
			op.Value = append([]byte(nil), g.Value(idx)...)
		default:
			op.Op = TracePut
			op.Value = append([]byte(nil), g.Value(idx)...)
		}
		if err := tw.Write(op); err != nil {
			return err
		}
	}
	return tw.Flush()
}
