// Package batch defines the serialized representation of a group of write
// operations. The same encoding is the WAL record payload and the unit of
// the public atomic-batch API, so a logged batch replays exactly.
//
// Layout:
//
//	count   uvarint
//	entries count times:
//	  kind  byte          (keys.KindValue | keys.KindValuePtr | keys.KindDelete)
//	  ts    uvarint       (timestamp assigned at apply time)
//	  klen  uvarint, key bytes
//	  vlen  uvarint, value bytes   (KindValue: the user value;
//	                                KindValuePtr: the encoded vlog pointer)
package batch

import (
	"encoding/binary"
	"errors"
	"fmt"

	"clsm/internal/keys"
)

// Entry is one decoded write operation.
type Entry struct {
	Kind  keys.Kind
	TS    uint64
	Key   []byte
	Value []byte
}

// ErrCorrupt reports a malformed batch encoding.
var ErrCorrupt = errors.New("batch: corrupt encoding")

// Batch accumulates write operations for atomic application.
type Batch struct {
	entries []Entry
}

// Put queues a key/value write.
func (b *Batch) Put(key, value []byte) {
	b.entries = append(b.entries, Entry{Kind: keys.KindValue, Key: key, Value: value})
}

// Delete queues a deletion (a ⊥ marker in the paper's terminology).
func (b *Batch) Delete(key []byte) {
	b.entries = append(b.entries, Entry{Kind: keys.KindDelete, Key: key})
}

// Len returns the number of queued operations.
func (b *Batch) Len() int { return len(b.entries) }

// Reset clears the batch for reuse.
func (b *Batch) Reset() { b.entries = b.entries[:0] }

// Entries exposes the queued operations. The engine stamps TS fields before
// encoding.
func (b *Batch) Entries() []Entry { return b.entries }

// SetTimestamps assigns consecutive timestamps starting at base to the
// entries and returns the first unused timestamp.
func (b *Batch) SetTimestamps(base uint64) uint64 {
	for i := range b.entries {
		b.entries[i].TS = base + uint64(i)
	}
	return base + uint64(len(b.entries))
}

// Encode appends the serialized batch to dst.
func (b *Batch) Encode(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b.entries)))
	for i := range b.entries {
		e := &b.entries[i]
		dst = append(dst, byte(e.Kind))
		dst = binary.AppendUvarint(dst, e.TS)
		dst = binary.AppendUvarint(dst, uint64(len(e.Key)))
		dst = append(dst, e.Key...)
		if e.Kind != keys.KindDelete {
			dst = binary.AppendUvarint(dst, uint64(len(e.Value)))
			dst = append(dst, e.Value...)
		}
	}
	return dst
}

// AppendSingle appends the encoding of a one-entry batch to dst without
// constructing a Batch — the allocation-free form the engine's Put/Delete
// hot path uses to encode straight into a pooled WAL buffer. The output is
// byte-identical to Encode on a one-entry batch.
func AppendSingle(dst []byte, kind keys.Kind, ts uint64, key, value []byte) []byte {
	dst = append(dst, 1) // count
	dst = append(dst, byte(kind))
	dst = binary.AppendUvarint(dst, ts)
	dst = binary.AppendUvarint(dst, uint64(len(key)))
	dst = append(dst, key...)
	if kind != keys.KindDelete {
		dst = binary.AppendUvarint(dst, uint64(len(value)))
		dst = append(dst, value...)
	}
	return dst
}

// Decode parses a serialized batch. The returned entries alias data.
func Decode(data []byte) ([]Entry, error) {
	count, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, ErrCorrupt
	}
	data = data[n:]
	if count > uint64(len(data)) { // each entry is at least 1 byte
		return nil, fmt.Errorf("%w: implausible count %d", ErrCorrupt, count)
	}
	entries := make([]Entry, 0, count)
	for i := uint64(0); i < count; i++ {
		if len(data) < 1 {
			return nil, ErrCorrupt
		}
		kind := keys.Kind(data[0])
		if kind != keys.KindValue && kind != keys.KindDelete && kind != keys.KindValuePtr {
			return nil, fmt.Errorf("%w: bad kind %d", ErrCorrupt, kind)
		}
		data = data[1:]
		ts, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, ErrCorrupt
		}
		data = data[n:]
		key, rest, err := takeBytes(data)
		if err != nil {
			return nil, err
		}
		data = rest
		e := Entry{Kind: kind, TS: ts, Key: key}
		if kind != keys.KindDelete {
			val, rest, err := takeBytes(data)
			if err != nil {
				return nil, err
			}
			data = rest
			e.Value = val
		}
		entries = append(entries, e)
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(data))
	}
	return entries, nil
}

func takeBytes(data []byte) (b, rest []byte, err error) {
	l, n := binary.Uvarint(data)
	if n <= 0 || l > uint64(len(data)-n) {
		return nil, nil, ErrCorrupt
	}
	return data[n : n+int(l)], data[n+int(l):], nil
}
