package batch

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"clsm/internal/keys"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	var b Batch
	b.Put([]byte("k1"), []byte("v1"))
	b.Delete([]byte("k2"))
	b.Put([]byte(""), []byte("")) // empty key/value are legal
	next := b.SetTimestamps(100)
	if next != 103 {
		t.Fatalf("SetTimestamps returned %d", next)
	}

	enc := b.Encode(nil)
	entries, err := Decode(enc)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(entries) != 3 {
		t.Fatalf("decoded %d entries", len(entries))
	}
	if entries[0].Kind != keys.KindValue || string(entries[0].Key) != "k1" ||
		string(entries[0].Value) != "v1" || entries[0].TS != 100 {
		t.Errorf("entry 0 = %+v", entries[0])
	}
	if entries[1].Kind != keys.KindDelete || string(entries[1].Key) != "k2" || entries[1].TS != 101 {
		t.Errorf("entry 1 = %+v", entries[1])
	}
	if entries[2].TS != 102 {
		t.Errorf("entry 2 ts = %d", entries[2].TS)
	}
}

func TestDecodeCorrupt(t *testing.T) {
	cases := [][]byte{
		{},                 // empty
		{0x01},             // count=1, no entry
		{0x01, 0x07},       // bad kind
		{0x02, 0x01, 0x01}, // count=2, truncated
	}
	for i, c := range cases {
		if _, err := Decode(c); err == nil {
			t.Errorf("case %d: Decode accepted corrupt input", i)
		}
	}
	// trailing garbage
	var b Batch
	b.Put([]byte("k"), []byte("v"))
	b.SetTimestamps(1)
	enc := append(b.Encode(nil), 0xff)
	if _, err := Decode(enc); err == nil {
		t.Error("trailing garbage accepted")
	}
}

func TestReset(t *testing.T) {
	var b Batch
	b.Put([]byte("a"), []byte("b"))
	b.Reset()
	if b.Len() != 0 {
		t.Errorf("Len after Reset = %d", b.Len())
	}
}

func TestRoundTripQuick(t *testing.T) {
	f := func(ops []struct {
		Key, Val []byte
		Del      bool
	}, base uint64) bool {
		var b Batch
		for _, op := range ops {
			if op.Del {
				b.Delete(op.Key)
			} else {
				b.Put(op.Key, op.Val)
			}
		}
		base &= keys.MaxTimestamp - uint64(len(ops)) // avoid overflow past 56 bits
		b.SetTimestamps(base)
		entries, err := Decode(b.Encode(nil))
		if err != nil || len(entries) != len(ops) {
			return false
		}
		for i, op := range ops {
			e := entries[i]
			if !bytes.Equal(e.Key, op.Key) || e.TS != base+uint64(i) {
				return false
			}
			if op.Del != (e.Kind == keys.KindDelete) {
				return false
			}
			if !op.Del && !bytes.Equal(e.Value, op.Val) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestAppendSingleMatchesEncode pins the contract the WAL hot path relies
// on: AppendSingle emits byte-for-byte what Encode produces for a
// one-entry batch, so single puts and batch replay share one decoder.
func TestAppendSingleMatchesEncode(t *testing.T) {
	cases := []struct {
		kind       keys.Kind
		ts         uint64
		key, value string
	}{
		{keys.KindValue, 1, "k", "v"},
		{keys.KindValue, 1 << 40, "key", string(bytes.Repeat([]byte{0xab}, 300))},
		{keys.KindValue, 0, "", ""},
		{keys.KindDelete, 7, "gone", "ignored-for-deletes"},
	}
	for _, c := range cases {
		var b Batch
		if c.kind == keys.KindDelete {
			b.Delete([]byte(c.key))
		} else {
			b.Put([]byte(c.key), []byte(c.value))
		}
		b.SetTimestamps(c.ts)
		want := b.Encode(nil)
		got := AppendSingle(nil, c.kind, c.ts, []byte(c.key), []byte(c.value))
		if !bytes.Equal(got, want) {
			t.Errorf("AppendSingle(%v, %d, %q) = %x, Encode = %x", c.kind, c.ts, c.key, got, want)
		}
		entries, err := Decode(got)
		if err != nil {
			t.Fatalf("Decode(AppendSingle): %v", err)
		}
		if len(entries) != 1 || entries[0].TS != c.ts || string(entries[0].Key) != c.key {
			t.Errorf("round trip = %+v", entries)
		}
	}
	// AppendSingle must append, not overwrite.
	pre := []byte("prefix")
	out := AppendSingle(pre, keys.KindValue, 9, []byte("k"), []byte("v"))
	if !bytes.HasPrefix(out, pre) {
		t.Error("AppendSingle clobbered existing dst bytes")
	}
}
