package storage

import (
	"io"
	"testing"
	"time"
)

// exerciseFS runs the common FS contract against an implementation.
func exerciseFS(t *testing.T, fs FS) {
	t.Helper()
	// Create + write + open + read
	f, err := fs.Create("000001.log")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := f.Write([]byte("hello ")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if _, err := f.Write([]byte("world")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r, err := fs.Open("000001.log")
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if r.Size() != 11 {
		t.Errorf("Size = %d, want 11", r.Size())
	}
	buf := make([]byte, 5)
	if _, err := r.ReadAt(buf, 6); err != nil && err != io.EOF {
		t.Fatalf("ReadAt: %v", err)
	}
	if string(buf) != "world" {
		t.Errorf("ReadAt = %q", buf)
	}
	// Read past EOF
	if n, err := r.ReadAt(buf, 100); err != io.EOF || n != 0 {
		t.Errorf("ReadAt past EOF = %d, %v", n, err)
	}
	// Short read at tail
	big := make([]byte, 20)
	n, err := r.ReadAt(big, 6)
	if n != 5 || err != io.EOF {
		t.Errorf("short ReadAt = %d, %v", n, err)
	}
	r.Close()

	// Open missing
	if _, err := fs.Open("nope"); err != ErrNotExist {
		t.Errorf("Open missing = %v, want ErrNotExist", err)
	}
	if _, err := fs.ReadFile("nope"); err != ErrNotExist {
		t.Errorf("ReadFile missing = %v, want ErrNotExist", err)
	}

	// WriteFile/ReadFile/Rename/List/Remove
	if err := fs.WriteFile("CURRENT", []byte("MANIFEST-1\n")); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	b, err := fs.ReadFile("CURRENT")
	if err != nil || string(b) != "MANIFEST-1\n" {
		t.Fatalf("ReadFile = %q, %v", b, err)
	}
	if err := fs.Rename("CURRENT", "CURRENT.bak"); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	names, err := fs.List()
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	want := map[string]bool{"000001.log": true, "CURRENT.bak": true}
	for _, n := range names {
		delete(want, n)
	}
	if len(want) != 0 {
		t.Errorf("List missing %v (got %v)", want, names)
	}
	if err := fs.Remove("CURRENT.bak"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if _, err := fs.Open("CURRENT.bak"); err != ErrNotExist {
		t.Errorf("Open removed = %v", err)
	}
}

func TestMemFS(t *testing.T) { exerciseFS(t, NewMemFS()) }

func TestOSFS(t *testing.T) {
	fs, err := NewOSFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	exerciseFS(t, fs)
}

func TestMemFSTotalSize(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.Create("a")
	f.Write(make([]byte, 100))
	f.Close()
	fs.WriteFile("b", make([]byte, 50))
	if got := fs.TotalSize(); got != 150 {
		t.Errorf("TotalSize = %d", got)
	}
}

func TestThrottledWrites(t *testing.T) {
	fs := NewThrottledMemFS(1 << 20) // 1 MiB/s
	f, _ := fs.Create("x")
	start := time.Now()
	// Write 512 KiB: should take roughly 0.25-0.5s after the initial burst
	// allowance.
	for i := 0; i < 8; i++ {
		f.Write(make([]byte, 64<<10))
	}
	elapsed := time.Since(start)
	if elapsed < 100*time.Millisecond {
		t.Errorf("throttle ineffective: 512KiB at 1MiB/s took %v", elapsed)
	}
	f.Close()
}

func TestWriteToClosedFile(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.Create("x")
	f.Close()
	if _, err := f.Write([]byte("y")); err == nil {
		t.Error("write to closed file succeeded")
	}
}

func TestCleanPath(t *testing.T) {
	for _, bad := range []string{"", ".", "..", "a/b", `a\b`} {
		if CleanPath(bad) == nil {
			t.Errorf("CleanPath(%q) accepted", bad)
		}
	}
	if err := CleanPath("000001.sst"); err != nil {
		t.Errorf("CleanPath rejected valid name: %v", err)
	}
}
